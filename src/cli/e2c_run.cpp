/// \file e2c_run.cpp
/// \brief The E2C command-line front-end.
///
/// Mirrors the GUI workflow without programming input from the user: load an
/// EET CSV and a workload CSV (or generate one at a named intensity), pick a
/// scheduling policy and machine-queue size, run (optionally animated in the
/// terminal), and save any of the four reports plus Gantt/HTML artifacts.
///
/// Examples:
///   e2c_run --eet data/eet_hetero.csv --workload data/workload_medium.csv
///           --policy MECT --summary -
///   e2c_run --eet data/eet_hetero.csv --generate medium --policy MM
///           --queue-size 2 --task-report out/tasks.csv --gantt out/run.svg
///   e2c_run --eet data/eet_hetero.csv --generate high --policy FCFS --live
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "exp/scenario.hpp"
#include "exp/tenants.hpp"
#include "fault/fault_model.hpp"
#include "hetero/machine_catalog.hpp"
#include "hetero/pet_matrix.hpp"
#include "net/comm_model.hpp"
#include "reports/report.hpp"
#include "sched/registry.hpp"
#include "sched/simulation.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/string_util.hpp"
#include "viz/ascii_view.hpp"
#include "viz/controller.hpp"
#include "viz/gantt_svg.hpp"
#include "viz/html_report.hpp"
#include "workload/generator.hpp"
#include "workload/trace_stats.hpp"

namespace {

struct Options {
  std::string eet_path;
  std::string workload_path;
  std::optional<std::string> generate_intensity;
  std::string policy = "FCFS";
  std::string sched_impl = "fast";
  std::size_t queue_size = 2;
  std::uint64_t seed = 42;
  double duration = 200.0;
  bool live = false;
  double speed = 50.0;
  std::optional<std::string> summary_out;
  std::optional<std::string> task_out;
  std::optional<std::string> machine_out;
  std::optional<std::string> tenant_out;
  std::optional<std::string> full_out;
  std::optional<std::string> missed_out;
  std::optional<std::string> trace_stats_out;
  std::optional<std::string> gantt_out;
  std::optional<std::string> html_out;
  bool list_policies = false;
  bool help = false;
  // stochastic execution
  std::optional<std::string> pet_kind;
  double pet_cv = 0.3;
  // communication model
  std::optional<double> payload_mb;
  double bandwidth = 100.0;
  double link_latency = 0.0;
  // elasticity
  bool autoscale = false;
  // fault injection
  std::optional<double> mtbf;
  double mttr = 5.0;
  std::uint64_t fault_seed = 0xFA17FA17ULL;
  std::optional<std::string> fault_trace;
  std::size_t max_retries = 3;
  double retry_backoff = 1.0;
  double retry_backoff_factor = 2.0;
  double retry_max_backoff = 300.0;
  // recovery strategy (defaults must match fault::RecoveryConfig for the
  // flags-without-fault-source guard below)
  std::string recovery = "resubmit";
  double checkpoint_interval = 0.0;
  double checkpoint_cost = 0.5;
  double restart_cost = 0.5;
  std::size_t replicas = 2;
  // shared checkpoint-I/O channel (defaults must match fault::IoConfig for
  // the flags-without-channel guard below)
  std::optional<double> io_bandwidth;
  std::string io_strategy = "selfish";
  double io_checkpoint_bytes = 0.0;
  double io_restart_bytes = 0.0;
  std::size_t io_writers = 1;
  // multi-tenant workloads
  std::size_t tenants = 1;
};

void print_usage() {
  std::cout <<
      R"(e2c_run — E2C heterogeneous-computing simulator (headless front-end)

Inputs:
  --eet FILE            EET matrix CSV (required unless --list-policies)
  --workload FILE       workload trace CSV
  --generate LEVEL      generate a workload instead: low | medium | high
  --duration SECONDS    arrival window for --generate (default 200)
  --seed N              generator seed (default 42)

Scheduling:
  --policy NAME         scheduling policy (default FCFS); see --list-policies
  --queue-size N        machine queue size for batch policies (default 2,
                        0 = unbounded; immediate policies are always unbounded)
  --sched-impl NAME     batch-mapper implementation: fast | reference
                        (default fast; both emit identical decisions —
                        reference is the plain full-rescan oracle)

Visualization:
  --live                animate the run in the terminal
  --speed X             simulated seconds per wall second for --live (default 50)

Substrates (optional):
  --pet KIND            stochastic execution times: normal | uniform |
                        exponential | lognormal (EET becomes the mean)
  --pet-cv X            coefficient of variation for --pet (default 0.3)
  --payload-mb X        enable the communication model with X MB per task
  --bandwidth Y         link bandwidth MB/s for --payload-mb (default 100)
  --latency Z           link latency seconds for --payload-mb (default 0)
  --autoscale           elastic fleet: machine 1 always on, the rest
                        powered by the autoscaler

Fault injection (optional):
  --mtbf X              enable stochastic machine failures with mean time
                        between failures X seconds (exponential)
  --mttr Y              mean time to repair seconds (default 5)
  --fault-seed N        seed of the failure processes (default 4195875351)
  --fault-trace FILE    trace-driven failures instead: CSV with header
                        machine,fail_time,repair_time (0-based machine index)
  --max-retries N       retries per fault-aborted task (default 3)
  --retry-backoff X     seconds before the first retry (default 1)
  --retry-backoff-factor X  backoff multiplier per retry (default 2)
  --retry-max-backoff X ceiling in seconds for any single backoff (default 300)

Recovery strategy (optional, needs --mtbf or --fault-trace):
  --recovery NAME       resubmit | checkpoint | replicate (default resubmit)
  --checkpoint-interval X  τ seconds between checkpoints; 0 = the Young/Daly
                        optimum sqrt(2*C*MTBF) (default 0)
  --checkpoint-cost X   C: seconds per checkpoint write (default 0.5)
  --restart-cost X      R: seconds to reload the last checkpoint (default 0.5)
  --replicas K          copies per task for --recovery replicate (default 2)

Shared checkpoint I/O (optional, needs --recovery checkpoint):
  --io-bandwidth B      enable the shared checkpoint channel with aggregate
                        bandwidth B bytes/s; concurrent checkpoint writes and
                        restart reads fair-share it and stretch each other
  --io-strategy NAME    selfish | cooperative (default selfish); cooperative
                        admits at most --io-writers concurrent checkpoint
                        writes and defers the rest
  --io-ckpt-bytes X     checkpoint image size in bytes; 0 (default) derives
                        checkpoint-cost * bandwidth
  --io-restart-bytes X  restart image size in bytes; 0 (default) derives
                        restart-cost * bandwidth
  --io-writers K        concurrent-writer cap for cooperative (default 1)

Multi-tenant workloads (optional, needs --generate):
  --tenants N           split the generated load across N independent tenants
                        sharing the machine set (and the I/O channel); the
                        run prints a per-tenant waste decomposition

Reports (PATH or '-' for stdout):
  --summary PATH        Summary Report CSV
  --task-report PATH    Task Report CSV
  --machine-report PATH Machine Report CSV
  --tenant-report PATH  per-tenant waste decomposition CSV (multi-tenant runs)
  --full-report PATH    Full Report CSV
  --missed-report PATH  Missed Tasks CSV (Fig. 4 panel)
  --trace-stats PATH    workload analysis CSV (rates, mix, offered load)
  --gantt PATH          execution Gantt as SVG
  --html PATH           one-page HTML report

Misc:
  --list-policies       print registered scheduling policies and exit
  --help                this text

Exit codes:
  0 success, 1 internal error, 2 invalid input (bad flags or malformed
  CSV/config), 3 I/O error (unreadable or unwritable file)
)";
}

Options parse_args(const std::vector<std::string>& args) {
  Options options;
  const auto need_value = [&](std::size_t i, const std::string& flag) {
    e2c::require_input(i + 1 < args.size(), "missing value for " + flag);
    return args[i + 1];
  };
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--help" || arg == "-h") options.help = true;
    else if (arg == "--list-policies") options.list_policies = true;
    else if (arg == "--live") options.live = true;
    else if (arg == "--eet") options.eet_path = need_value(i++, arg);
    else if (arg == "--workload") options.workload_path = need_value(i++, arg);
    else if (arg == "--generate") options.generate_intensity = need_value(i++, arg);
    else if (arg == "--policy") options.policy = need_value(i++, arg);
    else if (arg == "--sched-impl") options.sched_impl = need_value(i++, arg);
    else if (arg == "--pet") options.pet_kind = need_value(i++, arg);
    else if (arg == "--autoscale") options.autoscale = true;
    else if (arg == "--summary") options.summary_out = need_value(i++, arg);
    else if (arg == "--task-report") options.task_out = need_value(i++, arg);
    else if (arg == "--machine-report") options.machine_out = need_value(i++, arg);
    else if (arg == "--tenant-report") options.tenant_out = need_value(i++, arg);
    else if (arg == "--full-report") options.full_out = need_value(i++, arg);
    else if (arg == "--missed-report") options.missed_out = need_value(i++, arg);
    else if (arg == "--trace-stats") options.trace_stats_out = need_value(i++, arg);
    else if (arg == "--gantt") options.gantt_out = need_value(i++, arg);
    else if (arg == "--html") options.html_out = need_value(i++, arg);
    else if (arg == "--queue-size") {
      const auto value = e2c::util::parse_int(need_value(i++, arg));
      e2c::require_input(value.has_value() && *value >= 0, "--queue-size needs an integer >= 0");
      options.queue_size = static_cast<std::size_t>(*value);
    } else if (arg == "--seed") {
      const auto value = e2c::util::parse_int(need_value(i++, arg));
      e2c::require_input(value.has_value() && *value >= 0, "--seed needs an integer >= 0");
      options.seed = static_cast<std::uint64_t>(*value);
    } else if (arg == "--duration") {
      const auto value = e2c::util::parse_double(need_value(i++, arg));
      e2c::require_input(value.has_value() && *value > 0, "--duration needs a number > 0");
      options.duration = *value;
    } else if (arg == "--speed") {
      const auto value = e2c::util::parse_double(need_value(i++, arg));
      e2c::require_input(value.has_value() && *value > 0, "--speed needs a number > 0");
      options.speed = *value;
    } else if (arg == "--pet-cv") {
      const auto value = e2c::util::parse_double(need_value(i++, arg));
      e2c::require_input(value.has_value() && *value >= 0, "--pet-cv needs a number >= 0");
      options.pet_cv = *value;
    } else if (arg == "--payload-mb") {
      const auto value = e2c::util::parse_double(need_value(i++, arg));
      e2c::require_input(value.has_value() && *value >= 0,
                         "--payload-mb needs a number >= 0");
      options.payload_mb = *value;
    } else if (arg == "--bandwidth") {
      const auto value = e2c::util::parse_double(need_value(i++, arg));
      e2c::require_input(value.has_value() && *value > 0, "--bandwidth needs a number > 0");
      options.bandwidth = *value;
    } else if (arg == "--latency") {
      const auto value = e2c::util::parse_double(need_value(i++, arg));
      e2c::require_input(value.has_value() && *value >= 0, "--latency needs a number >= 0");
      options.link_latency = *value;
    } else if (arg == "--mtbf") {
      const auto value = e2c::util::parse_double(need_value(i++, arg));
      e2c::require_input(value.has_value() && *value > 0, "--mtbf needs a number > 0");
      options.mtbf = *value;
    } else if (arg == "--mttr") {
      const auto value = e2c::util::parse_double(need_value(i++, arg));
      e2c::require_input(value.has_value() && *value > 0, "--mttr needs a number > 0");
      options.mttr = *value;
    } else if (arg == "--fault-seed") {
      const auto value = e2c::util::parse_int(need_value(i++, arg));
      e2c::require_input(value.has_value() && *value >= 0,
                         "--fault-seed needs an integer >= 0");
      options.fault_seed = static_cast<std::uint64_t>(*value);
    } else if (arg == "--fault-trace") {
      options.fault_trace = need_value(i++, arg);
    } else if (arg == "--max-retries") {
      const auto value = e2c::util::parse_int(need_value(i++, arg));
      e2c::require_input(value.has_value() && *value >= 0,
                         "--max-retries needs an integer >= 0");
      options.max_retries = static_cast<std::size_t>(*value);
    } else if (arg == "--retry-backoff") {
      const auto value = e2c::util::parse_double(need_value(i++, arg));
      e2c::require_input(value.has_value() && *value >= 0,
                         "--retry-backoff needs a number >= 0");
      options.retry_backoff = *value;
    } else if (arg == "--retry-backoff-factor") {
      const auto value = e2c::util::parse_double(need_value(i++, arg));
      e2c::require_input(value.has_value() && *value >= 1,
                         "--retry-backoff-factor needs a number >= 1");
      options.retry_backoff_factor = *value;
    } else if (arg == "--retry-max-backoff") {
      const auto value = e2c::util::parse_double(need_value(i++, arg));
      e2c::require_input(value.has_value() && *value > 0,
                         "--retry-max-backoff needs a number > 0");
      options.retry_max_backoff = *value;
    } else if (arg == "--recovery") {
      options.recovery = need_value(i++, arg);
    } else if (arg == "--checkpoint-interval") {
      const auto value = e2c::util::parse_double(need_value(i++, arg));
      e2c::require_input(value.has_value() && *value >= 0,
                         "--checkpoint-interval needs a number >= 0");
      options.checkpoint_interval = *value;
    } else if (arg == "--checkpoint-cost") {
      const auto value = e2c::util::parse_double(need_value(i++, arg));
      e2c::require_input(value.has_value() && *value >= 0,
                         "--checkpoint-cost needs a number >= 0");
      options.checkpoint_cost = *value;
    } else if (arg == "--restart-cost") {
      const auto value = e2c::util::parse_double(need_value(i++, arg));
      e2c::require_input(value.has_value() && *value >= 0,
                         "--restart-cost needs a number >= 0");
      options.restart_cost = *value;
    } else if (arg == "--replicas") {
      const auto value = e2c::util::parse_int(need_value(i++, arg));
      e2c::require_input(value.has_value() && *value >= 1,
                         "--replicas needs an integer >= 1");
      options.replicas = static_cast<std::size_t>(*value);
    } else if (arg == "--io-bandwidth") {
      const auto value = e2c::util::parse_double(need_value(i++, arg));
      e2c::require_input(value.has_value() && *value > 0,
                         "--io-bandwidth needs a number > 0");
      options.io_bandwidth = *value;
    } else if (arg == "--io-strategy") {
      options.io_strategy = need_value(i++, arg);
    } else if (arg == "--io-ckpt-bytes") {
      const auto value = e2c::util::parse_double(need_value(i++, arg));
      e2c::require_input(value.has_value() && *value >= 0,
                         "--io-ckpt-bytes needs a number >= 0");
      options.io_checkpoint_bytes = *value;
    } else if (arg == "--io-restart-bytes") {
      const auto value = e2c::util::parse_double(need_value(i++, arg));
      e2c::require_input(value.has_value() && *value >= 0,
                         "--io-restart-bytes needs a number >= 0");
      options.io_restart_bytes = *value;
    } else if (arg == "--io-writers") {
      const auto value = e2c::util::parse_int(need_value(i++, arg));
      e2c::require_input(value.has_value() && *value >= 1,
                         "--io-writers needs an integer >= 1");
      options.io_writers = static_cast<std::size_t>(*value);
    } else if (arg == "--tenants") {
      const auto value = e2c::util::parse_int(need_value(i++, arg));
      e2c::require_input(value.has_value() && *value >= 1,
                         "--tenants needs an integer >= 1");
      options.tenants = static_cast<std::size_t>(*value);
    } else {
      throw e2c::InputError("unknown argument: " + arg + " (see --help)");
    }
  }
  return options;
}

e2c::workload::Intensity parse_intensity(const std::string& name) {
  using e2c::workload::Intensity;
  if (e2c::util::iequals(name, "low")) return Intensity::kLow;
  if (e2c::util::iequals(name, "medium")) return Intensity::kMedium;
  if (e2c::util::iequals(name, "high")) return Intensity::kHigh;
  throw e2c::InputError("unknown intensity '" + name + "' (low|medium|high)");
}

void write_rows(const std::optional<std::string>& path,
                const std::vector<std::vector<std::string>>& rows) {
  if (!path) return;
  if (*path == "-") {
    std::cout << e2c::util::to_csv(rows);
  } else {
    e2c::util::write_csv_file(*path, rows);
    std::cout << "wrote " << *path << "\n";
  }
}

int run(const Options& options) {
  using namespace e2c;

  if (options.help) {
    print_usage();
    return 0;
  }
  // Validated (exit 2 on an unknown name) and installed before any policy is
  // constructed — policies capture the default at construction.
  sched::set_default_sched_impl(sched::parse_sched_impl(options.sched_impl));
  if (options.list_policies) {
    std::cout << "registered scheduling policies:\n";
    for (const std::string& name : sched::PolicyRegistry::instance().names()) {
      const auto policy = sched::make_policy(name);
      std::cout << "  " << util::pad_right(name, 10) << " ("
                << (policy->mode() == sched::PolicyMode::kImmediate ? "immediate" : "batch")
                << ")\n";
    }
    return 0;
  }
  require_input(!options.eet_path.empty(), "--eet is required (see --help)");

  hetero::EetMatrix eet = hetero::EetMatrix::load_csv(options.eet_path);
  sched::SystemConfig system = sched::make_default_system(eet, options.queue_size);

  if (options.pet_kind) {
    system.pet = hetero::PetMatrix::homoscedastic(
        eet, hetero::parse_pet_kind(*options.pet_kind), options.pet_cv);
    std::cout << "stochastic execution: " << *options.pet_kind
              << " (cv=" << options.pet_cv << ")\n";
  }
  if (options.payload_mb) {
    system.comm = net::CommModel::uniform(
        eet.task_type_count(), eet.machine_type_count(), *options.payload_mb,
        net::LinkSpec{options.link_latency, options.bandwidth});
    std::cout << "communication model: " << *options.payload_mb << " MB/task at "
              << options.bandwidth << " MB/s\n";
  }
  if (options.mtbf || options.fault_trace) {
    require_input(!(options.mtbf && options.fault_trace),
                  "--mtbf and --fault-trace are mutually exclusive");
    system.faults.enabled = true;
    if (options.fault_trace) {
      system.faults.mode = fault::FaultMode::kTrace;
      system.faults.trace = fault::load_fault_trace_csv(*options.fault_trace);
      std::cout << "fault injection: trace " << *options.fault_trace << " ("
                << system.faults.trace.size() << " spans)\n";
    } else {
      system.faults.mtbf = *options.mtbf;
      system.faults.mttr = options.mttr;
      system.faults.seed = options.fault_seed;
      std::cout << "fault injection: mtbf=" << *options.mtbf
                << "s mttr=" << options.mttr << "s seed=" << options.fault_seed << "\n";
    }
    system.faults.retry.max_retries = options.max_retries;
    system.faults.retry.backoff_base = options.retry_backoff;
    system.faults.retry.backoff_factor = options.retry_backoff_factor;
    system.faults.retry.max_backoff = options.retry_max_backoff;
    fault::RecoveryConfig& recovery = system.faults.recovery;
    recovery.strategy = fault::parse_recovery_strategy(options.recovery);
    recovery.checkpoint_interval = options.checkpoint_interval;
    recovery.checkpoint_cost = options.checkpoint_cost;
    recovery.restart_cost = options.restart_cost;
    recovery.replicas = options.replicas;
    if (options.io_bandwidth) {
      fault::IoConfig& io = system.faults.io;
      io.enabled = true;
      io.bandwidth = *options.io_bandwidth;
      io.checkpoint_bytes = options.io_checkpoint_bytes;
      io.restart_bytes = options.io_restart_bytes;
      io.strategy = fault::parse_io_strategy(options.io_strategy);
      io.max_writers = options.io_writers;
    } else {
      require_input(options.io_strategy == "selfish" &&
                        options.io_checkpoint_bytes == 0.0 &&
                        options.io_restart_bytes == 0.0 && options.io_writers == 1,
                    "--io-strategy/--io-ckpt-bytes/--io-restart-bytes/--io-writers "
                    "need --io-bandwidth");
    }
    // Fail fast (exit 2) on an inconsistent combination — e.g. auto-τ with a
    // fault trace, or more replicas than machines — before building anything.
    system.faults.validate(system.machines.size());
    if (system.faults.io.enabled) {
      const fault::IoConfig& io = system.faults.io;
      std::cout << "io channel: bandwidth=" << io.bandwidth << " B/s strategy="
                << fault::io_strategy_name(io.strategy);
      if (io.strategy == fault::IoStrategy::kCooperative) {
        std::cout << " max_writers=" << io.max_writers;
      }
      std::cout << " write=" << io.effective_checkpoint_bytes(recovery.checkpoint_cost)
                << " B read=" << io.effective_restart_bytes(recovery.restart_cost)
                << " B\n";
    }
    if (recovery.strategy == fault::RecoveryStrategy::kCheckpoint) {
      std::cout << "recovery: checkpoint interval=";
      if (options.checkpoint_interval > 0.0) {
        std::cout << options.checkpoint_interval << "s (fixed)";
      } else {
        std::cout << util::format_fixed(system.faults.effective_checkpoint_interval(), 2)
                  << "s (Young/Daly)";
      }
      std::cout << " cost=" << options.checkpoint_cost
                << "s restart=" << options.restart_cost << "s\n";
    } else if (recovery.strategy == fault::RecoveryStrategy::kReplicate) {
      std::cout << "recovery: replicate k=" << options.replicas << "\n";
    }
  } else {
    require_input(options.max_retries == 3 && options.retry_backoff == 1.0 &&
                      options.retry_backoff_factor == 2.0 &&
                      options.retry_max_backoff == 300.0 &&
                      options.fault_seed == 0xFA17FA17ULL &&
                      options.recovery == "resubmit" &&
                      options.checkpoint_interval == 0.0 &&
                      options.checkpoint_cost == 0.5 && options.restart_cost == 0.5 &&
                      options.replicas == 2 && !options.io_bandwidth &&
                      options.io_strategy == "selfish" &&
                      options.io_checkpoint_bytes == 0.0 &&
                      options.io_restart_bytes == 0.0 && options.io_writers == 1,
                  "retry/fault/recovery/io flags need --mtbf or --fault-trace");
  }
  if (options.autoscale) {
    system.autoscaler.enabled = true;
    system.autoscaler.interval = 2.0;
    system.autoscaler.queue_high = 4;
    system.autoscaler.queue_low = 0;
    system.autoscaler.boot_delay = 2.0;
    system.autoscaler.min_online = 1;
    for (std::size_t m = 1; m < system.machines.size(); ++m) {
      system.autoscaler.initially_offline.push_back(m);
    }
    std::cout << "autoscaler enabled (machine 1 always on)\n";
  }

  workload::Workload trace;
  std::vector<std::string> tenant_names;
  if (options.tenants > 1) {
    require_input(options.generate_intensity.has_value(),
                  "--tenants needs --generate (tenant traces are synthesized "
                  "per tenant; a workload CSV is single-tenant)");
    std::vector<hetero::MachineTypeId> machine_types;
    for (const auto& machine : system.machines) machine_types.push_back(machine.type);
    const double total_rho =
        workload::intensity_offered_load(parse_intensity(*options.generate_intensity));
    std::vector<e2c::exp::TenantSpec> tenants;
    for (std::size_t i = 0; i < options.tenants; ++i) {
      e2c::exp::TenantSpec spec;
      spec.name = "tenant" + std::to_string(i);
      spec.rho = total_rho / static_cast<double>(options.tenants);
      spec.duration = options.duration;
      spec.seed = options.seed + i;
      tenants.push_back(std::move(spec));
    }
    trace = e2c::exp::make_multi_tenant_workload(system, tenants);
    tenant_names = e2c::exp::tenant_names(tenants);
    std::cout << "generated " << trace.size() << " tasks across " << options.tenants
              << " tenants at aggregate intensity '" << *options.generate_intensity
              << "'\n";
  } else if (options.generate_intensity) {
    std::vector<hetero::MachineTypeId> machine_types;
    for (const auto& machine : system.machines) machine_types.push_back(machine.type);
    workload::GeneratorConfig generator = workload::config_for_intensity(
        eet, machine_types, parse_intensity(*options.generate_intensity),
        options.duration, options.seed);
    trace = workload::generate_workload(eet, generator);
    std::cout << "generated " << trace.size() << " tasks at intensity '"
              << *options.generate_intensity << "'\n";
  } else {
    require_input(!options.workload_path.empty(),
                  "either --workload or --generate is required");
    trace = workload::Workload::load_csv(options.workload_path, eet);
  }

  viz::SimulationController controller([&] {
    auto simulation =
        std::make_unique<sched::Simulation>(system, sched::make_policy(options.policy));
    simulation->load(trace);
    if (!tenant_names.empty()) simulation->set_tenant_names(tenant_names);
    return simulation;
  });

  if (options.live) {
    controller.set_speed(options.speed);
    viz::AsciiViewOptions view;
    view.clear_screen = true;
    controller.play([&](const sched::Simulation& simulation) {
      std::cout << viz::render_frame(simulation, view) << std::flush;
      return true;
    });
    view.clear_screen = false;
    std::cout << viz::render_frame(controller.simulation(), view);
  } else {
    controller.run_to_completion();
  }

  const sched::Simulation& simulation = controller.simulation();
  const auto& counters = simulation.counters();
  std::cout << "policy=" << simulation.policy().name() << " tasks=" << counters.total
            << " completed=" << counters.completed << " cancelled=" << counters.cancelled
            << " dropped=" << counters.dropped;
  if (system.faults.enabled) {
    std::cout << " failed=" << counters.failed << " requeued=" << counters.requeued;
  }
  std::cout << " completion=" << util::format_fixed(counters.completion_percent(), 2)
            << "%\n";
  std::cout << viz::render_missed_panel(simulation);

  if (simulation.tenant_names().size() > 1) {
    for (const exp::TenantOutcome& tenant : exp::tenant_outcomes(simulation)) {
      std::cout << "  " << tenant.name << ": tasks=" << tenant.tasks
                << " completed=" << tenant.completed
                << " useful=" << util::format_fixed(tenant.useful_seconds, 2)
                << "s lost=" << util::format_fixed(tenant.lost_seconds, 2)
                << "s ckpt=" << util::format_fixed(tenant.checkpoint_overhead_seconds, 2)
                << "s waste=" << util::format_fixed(tenant.waste_seconds(), 2) << "s\n";
    }
  }

  write_rows(options.summary_out, reports::summary_report(simulation));
  write_rows(options.task_out, reports::task_report(simulation));
  write_rows(options.machine_out, reports::machine_report(simulation));
  write_rows(options.tenant_out, exp::tenant_report_rows(simulation));
  write_rows(options.full_out, reports::full_report(simulation));
  write_rows(options.missed_out, reports::missed_report(simulation));
  if (options.trace_stats_out) {
    auto stats_rows =
        workload::trace_stats_csv(workload::compute_trace_stats(trace, eet), eet);
    std::vector<hetero::MachineTypeId> machine_types;
    for (const auto& machine : system.machines) machine_types.push_back(machine.type);
    stats_rows.push_back({"offered_load",
                          util::format_fixed(
                              workload::offered_load(trace, eet, machine_types), 3)});
    write_rows(options.trace_stats_out, stats_rows);
  }
  if (options.gantt_out) {
    viz::save_gantt_svg(simulation, *options.gantt_out);
    std::cout << "wrote " << *options.gantt_out << "\n";
  }
  if (options.html_out) {
    viz::save_html_report(simulation, *options.html_out);
    std::cout << "wrote " << *options.html_out << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Exit codes: 0 success, 1 internal error, 2 invalid input, 3 I/O error.
  try {
    return run(parse_args({argv + 1, argv + argc}));
  } catch (const e2c::InputError& error) {
    std::cerr << "e2c_run: " << error.what() << "\n";
    return 2;
  } catch (const e2c::IoError& error) {
    std::cerr << "e2c_run: " << error.what() << "\n";
    return 3;
  } catch (const std::exception& error) {
    std::cerr << "e2c_run: " << error.what() << "\n";
    return 1;
  }
}
