/// \file e2c_experiment.cpp
/// \brief Config-driven experiment runner: sweeps from an INI file.
///
///   $ e2c_experiment data/experiment_example.ini
///
/// Runs the policy x intensity sweep described by the file, prints the
/// grouped bar chart and the result CSV to stdout, and writes any outputs
/// ([output] csv / chart_svg) the file requests. See exp/spec_io.hpp for the
/// config grammar.
#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "exp/spec_io.hpp"
#include "sched/policy.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/string_util.hpp"
#include "viz/bar_chart.hpp"

int main(int argc, char** argv) {
  using namespace e2c;
  try {
    std::vector<std::string> positional;
    std::string sched_impl = "fast";
    bool progress = false;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--help") {
        positional.clear();
        break;
      }
      if (arg == "--sched-impl") {
        require_input(i + 1 < argc, "missing value for --sched-impl");
        sched_impl = argv[++i];
      } else if (arg == "--progress") {
        progress = true;
      } else {
        positional.push_back(arg);
      }
    }
    if (positional.empty()) {
      std::cout << "usage: e2c_experiment CONFIG.ini [workers] [--sched-impl fast|reference]"
                   " [--progress]\n"
                   "Runs the experiment sweep described by CONFIG.ini.\n"
                   "  --progress   print a per-cell progress line to stderr\n"
                   "Exit codes: 0 success, 1 internal error, 2 invalid input,\n"
                   "3 I/O error.\n";
      return argc < 2 ? 2 : 0;
    }
    // Validated (exit 2 on an unknown name) and installed before the sweep
    // constructs any policy; workers read it concurrently but only after this
    // single startup write.
    sched::set_default_sched_impl(sched::parse_sched_impl(sched_impl));
    std::size_t workers = 0;
    if (positional.size() > 1) {
      // std::stoul would accept "-1" (wrapping to SIZE_MAX workers) and exit
      // 1 on junk; validate like e2c_run's numeric options instead.
      const auto value = util::parse_int(positional[1]);
      require_input(value.has_value() && *value >= 0,
                    "workers must be an integer >= 0");
      workers = static_cast<std::size_t>(*value);
    }
    const util::IniFile ini = util::IniFile::load(positional[0]);
    const auto outputs = exp::outputs_from_ini(ini);
    exp::ProgressFn on_progress;
    const auto started = std::chrono::steady_clock::now();
    if (progress) {
      // stderr so piping/redirecting the report (stdout) stays clean.
      on_progress = [started](std::size_t done, std::size_t total,
                              const exp::CellResult& cell) {
        const double elapsed =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
                .count();
        const double reps = static_cast<double>(done) *
                            static_cast<double>(cell.runs.size());
        std::fprintf(stderr,
                     "[e2c_experiment] cell %zu/%zu (%s/%s) done  elapsed %.1fs  %.1f reps/s\n",
                     done, total, cell.policy.c_str(),
                     workload::intensity_name(cell.intensity), elapsed,
                     elapsed > 0.0 ? reps / elapsed : 0.0);
      };
    }
    const auto result = exp::run_experiment_file(ini, workers, on_progress);

    std::cout << viz::render_bar_chart(exp::completion_chart(result, outputs.title))
              << "\n"
              << util::to_csv(exp::result_csv(result));
    if (outputs.csv_path) std::cout << "wrote " << *outputs.csv_path << "\n";
    if (outputs.chart_svg_path) std::cout << "wrote " << *outputs.chart_svg_path << "\n";
    return 0;
  } catch (const InputError& error) {
    std::cerr << "e2c_experiment: " << error.what() << "\n";
    return 2;
  } catch (const IoError& error) {
    std::cerr << "e2c_experiment: " << error.what() << "\n";
    return 3;
  } catch (const std::exception& error) {
    std::cerr << "e2c_experiment: " << error.what() << "\n";
    return 1;
  }
}
