/// \file e2c_experiment.cpp
/// \brief Config-driven experiment runner: sweeps from an INI file.
///
///   $ e2c_experiment data/experiment_example.ini
///
/// Runs the policy x intensity sweep described by the file, prints the
/// grouped bar chart and the result CSV to stdout, and writes any outputs
/// ([output] csv / chart_svg) the file requests. See exp/spec_io.hpp for the
/// config grammar.
///
/// `--backend procs` runs the sweep on crash-isolated worker processes with
/// per-cell timeouts, retry, a resumable journal (`--journal` / `--resume`)
/// and SIGINT/SIGTERM graceful drain — see exp/process_pool.hpp.
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <mutex>
#include <string>
#include <vector>

#include "exp/spec_io.hpp"
#include "sched/policy.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/string_util.hpp"
#include "viz/bar_chart.hpp"

int main(int argc, char** argv) {
  using namespace e2c;
  try {
    std::vector<std::string> positional;
    std::string sched_impl = "fast";
    bool progress = false;
    exp::RunOptions options;
    bool timeout_given = false;
    bool retries_given = false;
    const auto flag_value = [&](int& i, const std::string& flag) {
      require_input(i + 1 < argc, "missing value for " + flag);
      return std::string(argv[++i]);
    };
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--help") {
        positional.clear();
        break;
      }
      if (arg == "--sched-impl") {
        sched_impl = flag_value(i, arg);
      } else if (arg == "--progress") {
        progress = true;
      } else if (arg == "--backend") {
        options.backend = exp::parse_backend(flag_value(i, arg));
      } else if (arg == "--cell-timeout") {
        const std::string value = flag_value(i, arg);
        const auto seconds = util::parse_double(value);
        require_input(seconds.has_value() && *seconds > 0.0,
                      "--cell-timeout must be a number of seconds > 0, got '" +
                          value + "' (--cell-timeout)");
        options.cell_timeout = *seconds;
        timeout_given = true;
      } else if (arg == "--max-retries") {
        const std::string value = flag_value(i, arg);
        const auto count = util::parse_int(value);
        require_input(count.has_value() && *count > 0,
                      "--max-retries must be an integer > 0, got '" + value +
                          "' (--max-retries)");
        options.max_retries = static_cast<std::size_t>(*count);
        retries_given = true;
      } else if (arg == "--journal") {
        options.journal_path = flag_value(i, arg);
      } else if (arg == "--resume") {
        options.resume = true;
      } else {
        positional.push_back(arg);
      }
    }
    if (positional.empty()) {
      std::cout
          << "usage: e2c_experiment CONFIG.ini [workers] [--sched-impl fast|reference]\n"
             "         [--backend threads|procs] [--cell-timeout S] [--max-retries N]\n"
             "         [--journal PATH] [--resume] [--progress]\n"
             "Runs the experiment sweep described by CONFIG.ini.\n"
             "  workers           worker threads (or --backend procs process slots);\n"
             "                    0 = hardware concurrency (default); the resolved\n"
             "                    count is reported in the sweep summary\n"
             "  --backend procs   crash-isolated worker processes: per-cell timeouts,\n"
             "                    crash retry, graceful degradation (status column)\n"
             "  --cell-timeout S  SIGKILL + requeue a cell after S seconds (procs)\n"
             "  --max-retries N   requeues per cell before it is recorded failed (procs)\n"
             "  --journal PATH    append-only fsync'd per-cell journal\n"
             "  --resume          skip cells the journal already records as completed\n"
             "  --progress        print a per-cell progress line to stderr\n"
             "Exit codes: 0 success, 1 internal error, 2 invalid input,\n"
             "3 I/O error.\n";
      return argc < 2 ? 2 : 0;
    }
    // Supervision knobs only mean something on the process backend; reject
    // silently-ignored flags the same way e2c_run rejects recovery flags
    // without a fault source.
    if (options.backend != exp::Backend::kProcs) {
      require_input(!timeout_given,
                    "--cell-timeout needs --backend procs (the threads backend "
                    "cannot interrupt a cell)");
      require_input(!retries_given,
                    "--max-retries needs --backend procs (the threads backend "
                    "cannot retry a crashed cell)");
    }
    require_input(!options.resume || !options.journal_path.empty(),
                  "--resume needs --journal PATH (the journal holds the completed "
                  "cells to skip)");
    // Validated (exit 2 on an unknown name) and installed before the sweep
    // constructs any policy; workers read it concurrently but only after this
    // single startup write.
    sched::set_default_sched_impl(sched::parse_sched_impl(sched_impl));
    if (positional.size() > 1) {
      // std::stoul would accept "-1" (wrapping to SIZE_MAX workers) and exit
      // 1 on junk; validate like e2c_run's numeric options instead.
      const auto value = util::parse_int(positional[1]);
      require_input(value.has_value() && *value >= 0,
                    "workers must be an integer >= 0 (0 = hardware concurrency), got '" +
                        positional[1] + "' (workers)");
      options.workers = static_cast<std::size_t>(*value);
    }
    const util::IniFile ini = util::IniFile::load(positional[0]);
    const auto outputs = exp::outputs_from_ini(ini);
    const auto started = std::chrono::steady_clock::now();
    if (progress) {
      // stderr so piping/redirecting the report (stdout) stays clean. The
      // line is built first and emitted as ONE write() behind a mutex, so
      // per-cell lines from concurrent workers never interleave.
      options.progress = [started](std::size_t done, std::size_t total,
                                   const exp::CellResult& cell) {
        static std::mutex progress_mutex;
        const double elapsed =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
                .count();
        const double reps = static_cast<double>(done) *
                            static_cast<double>(cell.runs.size());
        char line[256];
        const int length = std::snprintf(
            line, sizeof line,
            "[e2c_experiment] cell %zu/%zu (%s/%s) %s  elapsed %.1fs  %.1f reps/s\n",
            done, total, cell.policy.c_str(),
            workload::intensity_name(cell.intensity),
            exp::cell_status_name(cell.status), elapsed,
            elapsed > 0.0 ? reps / elapsed : 0.0);
        if (length > 0) {
          const std::scoped_lock lock(progress_mutex);
          (void)!::write(STDERR_FILENO, line,
                         std::min(static_cast<std::size_t>(length), sizeof line));
        }
      };
    }
    options.drain_on_signals = options.backend == exp::Backend::kProcs;
    const auto result = exp::run_experiment_file(ini, options);

    // A drained sweep has holes, and completion_chart requires every cell;
    // print what completed plus the health line so the run is still useful.
    if (!result.health.drained) {
      std::cout << viz::render_bar_chart(exp::completion_chart(result, outputs.title))
                << "\n";
    }
    std::cout << util::to_csv(exp::result_csv(result));
    const auto& health = result.health;
    std::cout << "sweep: " << result.cells.size() << "/"
              << result.spec.policies.size() * result.spec.intensities.size()
              << " cells (" << health.completed_cells << " completed, "
              << health.failed_cells << " failed, " << health.retries
              << " retries, " << health.resumed_cells << " resumed) on "
              << health.workers << (health.workers == 1 ? " worker\n" : " workers\n");
    if (health.drained) {
      std::cout << "sweep drained after signal: in-flight cells finished, journal "
                   "flushed; re-run with --resume to continue\n";
    }
    if (outputs.csv_path) std::cout << "wrote " << *outputs.csv_path << "\n";
    if (outputs.chart_svg_path) std::cout << "wrote " << *outputs.chart_svg_path << "\n";
    return 0;
  } catch (const InputError& error) {
    std::cerr << "e2c_experiment: " << error.what() << "\n";
    return 2;
  } catch (const IoError& error) {
    std::cerr << "e2c_experiment: " << error.what() << "\n";
    return 3;
  } catch (const std::exception& error) {
    std::cerr << "e2c_experiment: " << error.what() << "\n";
    return 1;
  }
}
