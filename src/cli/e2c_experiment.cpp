/// \file e2c_experiment.cpp
/// \brief Config-driven experiment runner: sweeps from an INI file.
///
///   $ e2c_experiment data/experiment_example.ini
///
/// Runs the policy x intensity sweep described by the file, prints the
/// grouped bar chart and the result CSV to stdout, and writes any outputs
/// ([output] csv / chart_svg) the file requests. See exp/spec_io.hpp for the
/// config grammar.
///
/// `--backend procs` runs the sweep on crash-isolated worker processes with
/// per-cell timeouts, retry, a resumable journal (`--journal` / `--resume`)
/// and SIGINT/SIGTERM graceful drain — see exp/process_pool.hpp.
///
/// `--serve SOCKET` turns the binary into a resident sweep service: a
/// persistent pool of pre-forked workers keeps specs, traces, and Simulation
/// engines warm across requests, so repeat submissions skip all setup.
/// `--submit SOCKET CONFIG.ini` sends a sweep to a running service and
/// produces output byte-identical to running the config directly — see
/// exp/serve.hpp.
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <iterator>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "exp/serve.hpp"
#include "exp/spec_io.hpp"
#include "sched/policy.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/string_util.hpp"
#include "viz/bar_chart.hpp"
#include "viz/bar_chart_svg.hpp"

namespace {

/// Every flag the binary understands — the roster behind unknown-flag
/// nearest-match suggestions.
const std::vector<std::string> kKnownFlags = {
    "--help",      "--sched-impl",    "--progress", "--backend",
    "--cell-timeout", "--max-retries", "--journal",  "--resume",
    "--serve",     "--submit",        "--serve-workers", "--backlog",
};

std::string read_text_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw e2c::IoError("cannot read config file '" + path + "'");
  std::string text((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  if (in.bad()) throw e2c::IoError("cannot read config file '" + path + "'");
  return text;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace e2c;
  try {
    std::vector<std::string> positional;
    std::string sched_impl = "fast";
    bool help = false;
    bool progress = false;
    exp::RunOptions options;
    bool backend_given = false;
    bool timeout_given = false;
    bool retries_given = false;
    std::string serve_socket;
    std::string submit_socket;
    std::size_t serve_workers = 0;
    bool serve_workers_given = false;
    std::size_t backlog = 4;
    bool backlog_given = false;
    const auto flag_value = [&](int& i, const std::string& flag) {
      require_input(i + 1 < argc, "missing value for " + flag);
      return std::string(argv[++i]);
    };
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--help") {
        help = true;
        break;
      }
      if (arg == "--sched-impl") {
        sched_impl = flag_value(i, arg);
      } else if (arg == "--progress") {
        progress = true;
      } else if (arg == "--backend") {
        options.backend = exp::parse_backend(flag_value(i, arg));
        backend_given = true;
      } else if (arg == "--cell-timeout") {
        const std::string value = flag_value(i, arg);
        const auto seconds = util::parse_double(value);
        require_input(seconds.has_value() && *seconds > 0.0,
                      "--cell-timeout must be a number of seconds > 0, got '" +
                          value + "' (--cell-timeout)");
        options.cell_timeout = *seconds;
        timeout_given = true;
      } else if (arg == "--max-retries") {
        const std::string value = flag_value(i, arg);
        const auto count = util::parse_int(value);
        require_input(count.has_value() && *count > 0,
                      "--max-retries must be an integer > 0, got '" + value +
                          "' (--max-retries)");
        options.max_retries = static_cast<std::size_t>(*count);
        retries_given = true;
      } else if (arg == "--journal") {
        options.journal_path = flag_value(i, arg);
      } else if (arg == "--resume") {
        options.resume = true;
      } else if (arg == "--serve") {
        serve_socket = flag_value(i, arg);
        require_input(!serve_socket.empty(),
                      "--serve needs a socket path, got an empty string (--serve)");
      } else if (arg == "--submit") {
        submit_socket = flag_value(i, arg);
        require_input(!submit_socket.empty(),
                      "--submit needs a socket path, got an empty string (--submit)");
      } else if (arg == "--serve-workers") {
        const std::string value = flag_value(i, arg);
        const auto count = util::parse_int(value);
        require_input(count.has_value() && *count > 0,
                      "--serve-workers must be an integer > 0, got '" + value +
                          "' (--serve-workers)");
        serve_workers = static_cast<std::size_t>(*count);
        serve_workers_given = true;
      } else if (arg == "--backlog") {
        const std::string value = flag_value(i, arg);
        const auto count = util::parse_int(value);
        require_input(count.has_value() && *count > 0,
                      "--backlog must be an integer > 0, got '" + value +
                          "' (--backlog)");
        backlog = static_cast<std::size_t>(*count);
        backlog_given = true;
      } else if (util::starts_with(arg, "--")) {
        std::string message = "unknown flag '" + arg + "'";
        if (const auto suggestion = util::nearest_match(arg, kKnownFlags)) {
          message += " — did you mean '" + *suggestion + "'?";
        }
        message += " (see --help)";
        throw InputError(message);
      } else {
        positional.push_back(arg);
      }
    }
    const bool serve_mode = !serve_socket.empty();
    const bool submit_mode = !submit_socket.empty();
    if (help || (!serve_mode && !submit_mode && positional.empty())) {
      std::cout
          << "usage: e2c_experiment CONFIG.ini [workers] [--sched-impl fast|reference]\n"
             "         [--backend threads|procs] [--cell-timeout S] [--max-retries N]\n"
             "         [--journal PATH] [--resume] [--progress]\n"
             "       e2c_experiment --serve SOCKET [--serve-workers N] [--backlog N]\n"
             "         [--cell-timeout S] [--max-retries N] [--journal PREFIX]\n"
             "       e2c_experiment --submit SOCKET CONFIG.ini [--progress]\n"
             "Runs the experiment sweep described by CONFIG.ini.\n"
             "  workers           worker threads (or --backend procs process slots);\n"
             "                    0 = hardware concurrency (default); the resolved\n"
             "                    count is reported in the sweep summary\n"
             "  --backend procs   crash-isolated worker processes: per-cell timeouts,\n"
             "                    crash retry, graceful degradation (status column)\n"
             "  --cell-timeout S  SIGKILL + requeue a cell after S seconds (procs)\n"
             "  --max-retries N   requeues per cell before it is recorded failed (procs)\n"
             "  --journal PATH    append-only fsync'd per-cell journal\n"
             "  --resume          skip cells the journal already records as completed\n"
             "  --progress        print a per-cell progress line to stderr\n"
             "  --serve SOCKET    resident sweep service on a Unix socket: pre-forked\n"
             "                    workers keep specs, traces, and simulations warm\n"
             "                    across submissions; SIGTERM drains and exits 0\n"
             "  --submit SOCKET   send CONFIG.ini to a running service; output is\n"
             "                    byte-identical to running the config directly\n"
             "  --serve-workers N persistent worker processes (default: hardware)\n"
             "  --backlog N       jobs in service before submits are busy-rejected\n"
             "                    (default 4)\n"
             "Exit codes: 0 success, 1 internal error, 2 invalid input,\n"
             "3 I/O error.\n";
      return argc < 2 ? 2 : 0;
    }

    // Mode exclusivity and per-mode flag validation: every flag must mean
    // something in the chosen mode, or the invocation is rejected (exit 2)
    // rather than silently ignored.
    require_input(!(serve_mode && submit_mode),
                  "--serve and --submit are mutually exclusive: one invocation is "
                  "either the service or a client (--serve/--submit)");
    if (serve_mode) {
      require_input(positional.empty(),
                    "--serve takes no CONFIG.ini or workers argument: configs arrive "
                    "from --submit clients, workers from --serve-workers (--serve)");
      require_input(!backend_given,
                    "--backend does not apply to --serve: the service always runs "
                    "its own worker-process pool (--backend)");
      require_input(!options.resume,
                    "--resume does not apply to --serve: each submitted job writes "
                    "its own journal under --journal PREFIX (--resume)");
      require_input(!progress,
                    "--progress does not apply to --serve: the service already logs "
                    "per-job lines to stderr (--progress)");
    } else {
      require_input(!serve_workers_given,
                    "--serve-workers needs --serve (worker counts for direct runs "
                    "are the positional workers argument) (--serve-workers)");
      require_input(!backlog_given, "--backlog needs --serve (--backlog)");
    }
    if (submit_mode) {
      require_input(!positional.empty(),
                    "--submit needs a CONFIG.ini to send to the service (--submit)");
      require_input(positional.size() == 1,
                    "--submit takes exactly one CONFIG.ini and no workers argument: "
                    "the service owns the worker pool (--submit)");
      require_input(!backend_given,
                    "--backend does not apply to --submit: the sweep runs inside "
                    "the service (--backend)");
      require_input(!timeout_given && !retries_given,
                    "--cell-timeout/--max-retries do not apply to --submit: "
                    "supervision knobs are set on the service (--submit)");
      require_input(options.journal_path.empty() && !options.resume,
                    "--journal/--resume do not apply to --submit: the service "
                    "journals each job under its own --journal PREFIX (--submit)");
      require_input(sched_impl == "fast",
                    "--sched-impl does not apply to --submit: the scheduler "
                    "implementation is chosen when the service starts (--sched-impl)");
    }

    if (!serve_mode && !submit_mode) {
      // Supervision knobs only mean something on the process backend; reject
      // silently-ignored flags the same way e2c_run rejects recovery flags
      // without a fault source.
      if (options.backend != exp::Backend::kProcs) {
        require_input(!timeout_given,
                      "--cell-timeout needs --backend procs (the threads backend "
                      "cannot interrupt a cell)");
        require_input(!retries_given,
                      "--max-retries needs --backend procs (the threads backend "
                      "cannot retry a crashed cell)");
      }
      require_input(!options.resume || !options.journal_path.empty(),
                    "--resume needs --journal PATH (the journal holds the completed "
                    "cells to skip)");
    }

    if (serve_mode) {
      // Validated (exit 2 on an unknown name) and installed before any worker
      // forks; workers inherit the setting.
      sched::set_default_sched_impl(sched::parse_sched_impl(sched_impl));
      exp::ServeOptions serve_options;
      serve_options.socket_path = serve_socket;
      serve_options.workers = serve_workers;
      serve_options.backlog = backlog;
      serve_options.cell_timeout = options.cell_timeout;
      serve_options.max_retries = options.max_retries;
      serve_options.journal_prefix = options.journal_path;
      serve_options.drain_on_signals = true;
      serve_options.log = [](std::string_view message) {
        std::string line = "[e2c_serve] ";
        line.append(message);
        line += "\n";
        (void)!::write(STDERR_FILENO, line.data(), line.size());
      };
      const std::size_t served = exp::run_serve(serve_options);
      std::cout << "service drained: " << served
                << (served == 1 ? " job served\n" : " jobs served\n");
      return 0;
    }

    const auto started = std::chrono::steady_clock::now();
    if (progress) {
      // stderr so piping/redirecting the report (stdout) stays clean. The
      // line is built first and emitted as ONE write() behind a mutex, so
      // per-cell lines from concurrent workers never interleave.
      options.progress = [started](std::size_t done, std::size_t total,
                                   const exp::CellResult& cell) {
        static std::mutex progress_mutex;
        const double elapsed =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
                .count();
        const double reps = static_cast<double>(done) *
                            static_cast<double>(cell.runs.size());
        char line[256];
        const int length = std::snprintf(
            line, sizeof line,
            "[e2c_experiment] cell %zu/%zu (%s/%s) %s  elapsed %.1fs  %.1f reps/s\n",
            done, total, cell.policy.c_str(),
            workload::intensity_name(cell.intensity),
            exp::cell_status_name(cell.status), elapsed,
            elapsed > 0.0 ? reps / elapsed : 0.0);
        if (length > 0) {
          const std::scoped_lock lock(progress_mutex);
          (void)!::write(STDERR_FILENO, line,
                         std::min(static_cast<std::size_t>(length), sizeof line));
        }
      };
    }

    exp::ExperimentResult result;
    exp::ExperimentOutputs outputs;
    if (submit_mode) {
      // The config text travels verbatim: the service and its workers parse
      // the same bytes with the same parser, so the submitted sweep is the
      // same sweep a direct run would execute. Outputs are written
      // client-side, against the client's working directory.
      const std::string config_text = read_text_file(positional[0]);
      const util::IniFile ini = util::IniFile::parse(config_text, positional[0]);
      outputs = exp::outputs_from_ini(ini);
      result = exp::submit_job(submit_socket, config_text, options.progress);
      if (outputs.csv_path) {
        util::write_csv_file(*outputs.csv_path, exp::result_csv(result));
      }
      if (outputs.chart_svg_path) {
        viz::save_bar_chart_svg(exp::completion_chart(result, outputs.title),
                                *outputs.chart_svg_path);
      }
    } else {
      sched::set_default_sched_impl(sched::parse_sched_impl(sched_impl));
      if (positional.size() > 1) {
        // std::stoul would accept "-1" (wrapping to SIZE_MAX workers) and exit
        // 1 on junk; validate like e2c_run's numeric options instead.
        const auto value = util::parse_int(positional[1]);
        require_input(value.has_value() && *value >= 0,
                      "workers must be an integer >= 0 (0 = hardware concurrency), got '" +
                          positional[1] + "' (workers)");
        options.workers = static_cast<std::size_t>(*value);
      }
      const util::IniFile ini = util::IniFile::load(positional[0]);
      outputs = exp::outputs_from_ini(ini);
      options.drain_on_signals = options.backend == exp::Backend::kProcs;
      result = exp::run_experiment_file(ini, options);
    }

    // A drained sweep has holes, and completion_chart requires every cell;
    // print what completed plus the health line so the run is still useful.
    if (!result.health.drained) {
      std::cout << viz::render_bar_chart(exp::completion_chart(result, outputs.title))
                << "\n";
    }
    std::cout << util::to_csv(exp::result_csv(result));
    const auto& health = result.health;
    std::cout << "sweep: " << result.cells.size() << "/"
              << result.spec.policies.size() * result.spec.intensities.size()
              << " cells (" << health.completed_cells << " completed, "
              << health.failed_cells << " failed, " << health.retries
              << " retries, " << health.resumed_cells << " resumed) on "
              << health.workers << (health.workers == 1 ? " worker\n" : " workers\n");
    if (health.drained) {
      std::cout << "sweep drained after signal: in-flight cells finished, journal "
                   "flushed; re-run with --resume to continue\n";
    }
    if (outputs.csv_path) std::cout << "wrote " << *outputs.csv_path << "\n";
    if (outputs.chart_svg_path) std::cout << "wrote " << *outputs.chart_svg_path << "\n";
    return 0;
  } catch (const InputError& error) {
    std::cerr << "e2c_experiment: " << error.what() << "\n";
    return 2;
  } catch (const IoError& error) {
    std::cerr << "e2c_experiment: " << error.what() << "\n";
    return 3;
  } catch (const std::exception& error) {
    std::cerr << "e2c_experiment: " << error.what() << "\n";
    return 1;
  }
}
