/// \file framing.hpp
/// \brief Binary payload encoding and length-prefixed frame I/O over fds.
///
/// The process-backend experiment runner ships `CellResult` payloads from
/// worker processes to the supervising parent over pipes, and persists the
/// same payloads (hex-armored) in the crash-safe sweep journal. Both sides
/// of a pipe are forks of one binary on one machine, so the encoding is the
/// native byte order with fixed-width fields — simple, and bit-exact for
/// doubles, which is what the byte-identical-results guarantee needs.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace e2c::util {

/// Appends fixed-width fields to a byte buffer.
class ByteWriter {
 public:
  void u8(std::uint8_t value) { buffer_.push_back(static_cast<char>(value)); }
  void u32(std::uint32_t value) { raw(&value, sizeof value); }
  void u64(std::uint64_t value) { raw(&value, sizeof value); }
  /// Doubles round-trip bit-exactly: the raw 8 bytes, not a decimal print.
  void f64(double value) { raw(&value, sizeof value); }
  /// Length-prefixed (u32) byte string.
  void str(std::string_view value);

  /// Drops the contents but keeps the allocation — the recycled-buffer
  /// pattern of the serve loop, where one writer is reused per frame so
  /// steady-state encoding never touches the allocator.
  void clear() noexcept { buffer_.clear(); }

  [[nodiscard]] const std::string& bytes() const noexcept { return buffer_; }
  [[nodiscard]] std::string take() noexcept { return std::move(buffer_); }

 private:
  void raw(const void* data, std::size_t size);

  std::string buffer_;
};

/// Bounds-checked reads over a byte buffer; throws e2c::InputError on any
/// truncated or overlong payload so corrupt frames surface as input errors,
/// never as out-of-bounds reads.
class ByteReader {
 public:
  explicit ByteReader(std::string_view bytes) noexcept : bytes_(bytes) {}

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] double f64();
  [[nodiscard]] std::string str();

  /// True when every byte has been consumed — decoders check this so a
  /// frame with trailing garbage is rejected, not silently accepted.
  [[nodiscard]] bool exhausted() const noexcept { return offset_ == bytes_.size(); }

 private:
  void raw(void* out, std::size_t size);

  std::string_view bytes_;
  std::size_t offset_ = 0;
};

/// Writes one length-prefixed frame (u32 payload size + payload bytes) to
/// \p fd, looping over partial writes and EINTR. Throws e2c::IoError on any
/// write failure (including EPIPE — callers supervising subprocesses treat
/// that as the peer having died).
void write_frame(int fd, std::string_view payload);

/// Reads one length-prefixed frame from \p fd (blocking). Returns nullopt on
/// clean EOF before any byte of the frame; throws e2c::IoError when the peer
/// hangs up mid-frame (a truncated frame is how a crashed writer looks).
[[nodiscard]] std::optional<std::string> read_frame(int fd);

/// Zero-copy variant of write_frame: the 4-byte length header and \p payload
/// go out in one writev() — the payload is never copied into a combined
/// buffer, so a caller encoding into a recycled ByteWriter writes frames
/// with zero allocations and zero extra copies. Semantics match write_frame
/// (loops over partial writes and EINTR, throws e2c::IoError on failure).
/// Note: unlike write_frame, header and payload may land in separate
/// write()s under a partial write, so this is for stream sockets and for
/// writers the peer supervises via EOF — not for the crash-journal pipe
/// path that counts on single-write atomicity.
void write_frame_zc(int fd, std::string_view payload);

/// Recycled-buffer variant of read_frame: reads the next frame's payload
/// into \p payload (replacing its contents, reusing its capacity). Returns
/// false on clean EOF before any byte of the frame; throws e2c::IoError on a
/// mid-frame hangup. The steady-state serve loop calls this with one
/// long-lived buffer per connection, so frame reads stop allocating once
/// the buffer has grown to the session's largest frame.
[[nodiscard]] bool read_frame_into(int fd, std::string& payload);

/// Lowercase hex armor for embedding binary payloads in line-oriented files.
[[nodiscard]] std::string hex_encode(std::string_view bytes);

/// Inverse of hex_encode; throws e2c::InputError on odd length or non-hex
/// characters.
[[nodiscard]] std::string hex_decode(std::string_view text);

}  // namespace e2c::util
