/// \file ini.hpp
/// \brief Minimal INI-style config parser for experiment files.
///
/// Grammar: `[section]` headers, `key = value` pairs, `#`/`;` comments
/// (full-line or trailing), blank lines ignored. Keys are case-insensitive
/// and scoped to their section; values keep internal whitespace. This is the
/// no-programming-input configuration path for the experiment harness —
/// the CLI counterpart of filling in the GUI's dialogs.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace e2c::util {

/// A parsed INI document.
class IniFile {
 public:
  /// Parses INI text. Throws e2c::InputError on malformed lines (a line
  /// that is neither a section, a pair, a comment, nor blank). \p source is
  /// the display name (usually a path) used by where() locators.
  [[nodiscard]] static IniFile parse(const std::string& text,
                                     const std::string& source = {});

  /// Reads and parses a file. Throws e2c::IoError / e2c::InputError.
  [[nodiscard]] static IniFile load(const std::string& path);

  /// Value of section.key, if present (case-insensitive lookup).
  [[nodiscard]] std::optional<std::string> get(const std::string& section,
                                               const std::string& key) const;

  /// Value or \p fallback.
  [[nodiscard]] std::string get_or(const std::string& section, const std::string& key,
                                   const std::string& fallback) const;

  /// Numeric accessors; throw e2c::InputError when present but malformed.
  [[nodiscard]] std::optional<double> get_double(const std::string& section,
                                                 const std::string& key) const;
  [[nodiscard]] std::optional<long long> get_int(const std::string& section,
                                                 const std::string& key) const;

  /// Splits a comma-separated value into trimmed items; empty when absent.
  [[nodiscard]] std::vector<std::string> get_list(const std::string& section,
                                                  const std::string& key) const;

  /// Human-readable locator of section.key's defining line (the last
  /// assignment, which is the one get() returns): "path:N" when the file was
  /// loaded from disk, "line N" for in-memory text, or "section.key" when
  /// the pair does not exist. For validation error messages.
  [[nodiscard]] std::string where(const std::string& section,
                                  const std::string& key) const;

  /// True if the section exists (even if empty).
  [[nodiscard]] bool has_section(const std::string& section) const noexcept;

  /// All section names in file order.
  [[nodiscard]] std::vector<std::string> sections() const;

 private:
  struct Entry {
    std::string section;
    std::string key;
    std::string value;
    std::size_t line = 0;
  };
  std::vector<Entry> entries_;
  std::vector<std::string> section_order_;
  std::string source_;  ///< display name for where(); empty for in-memory text
};

}  // namespace e2c::util
