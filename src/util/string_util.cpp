#include "util/string_util.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdlib>
#include <sstream>

namespace e2c::util {

std::string_view trim(std::string_view text) noexcept {
  const auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\f' || c == '\v';
  };
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && is_space(text[begin])) ++begin;
  while (end > begin && is_space(text[end - 1])) --end;
  return text.substr(begin, end - begin);
}

std::vector<std::string> split(std::string_view text, char delimiter) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == delimiter) {
      fields.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return fields;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

bool iequals(std::string_view a, std::string_view b) noexcept {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    char x = a[i];
    char y = b[i];
    if (x >= 'A' && x <= 'Z') x = static_cast<char>(x - 'A' + 'a');
    if (y >= 'A' && y <= 'Z') y = static_cast<char>(y - 'A' + 'a');
    if (x != y) return false;
  }
  return true;
}

namespace {

// strtod on a bounded copy: the slow path for inputs std::from_chars does not
// cover (hex floats, out-of-range magnitudes) and for toolchains without
// floating-point from_chars. Locale issues are avoided by rejecting ','.
std::optional<double> parse_double_strtod(std::string_view text) noexcept {
  std::string buffer(text);
  const char* begin = buffer.c_str();
  char* end = nullptr;
  const double value = std::strtod(begin, &end);
  if (end != begin + buffer.size()) return std::nullopt;
  return value;
}

}  // namespace

std::optional<double> parse_double(std::string_view text) noexcept {
  text = trim(text);
  if (text.empty()) return std::nullopt;
#if defined(__cpp_lib_to_chars)
  // Hot path: std::from_chars parses in place — no copy, no locale. strtod
  // accepts a few forms from_chars does not, which are routed to the slow
  // path to keep the accepted grammar identical: a single leading '+', hex
  // floats ("0x1p3"), and out-of-range magnitudes (strtod saturates to ±inf
  // or 0 instead of failing).
  std::string_view body = text;
  if (body.front() == '+') {
    body.remove_prefix(1);
    if (body.empty() || body.front() == '+' || body.front() == '-') return std::nullopt;
  }
  std::string_view digits = body;
  if (!digits.empty() && digits.front() == '-') digits.remove_prefix(1);
  if (digits.size() > 1 && digits[0] == '0' && (digits[1] == 'x' || digits[1] == 'X')) {
    return parse_double_strtod(body);
  }
  double value = 0.0;
  const auto [ptr, ec] = std::from_chars(body.data(), body.data() + body.size(), value);
  if (ec == std::errc::result_out_of_range) return parse_double_strtod(body);
  if (ec != std::errc{} || ptr != body.data() + body.size()) return std::nullopt;
  return value;
#else
  return parse_double_strtod(text);
#endif
}

std::optional<long long> parse_int(std::string_view text) noexcept {
  text = trim(text);
  if (text.empty()) return std::nullopt;
  long long value = 0;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) return std::nullopt;
  return value;
}

std::string format_fixed(double value, int decimals) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(decimals);
  out << value;
  return out.str();
}

std::string pad_left(std::string_view text, std::size_t width) {
  if (text.size() >= width) return std::string(text);
  return std::string(width - text.size(), ' ') + std::string(text);
}

std::string pad_right(std::string_view text, std::size_t width) {
  if (text.size() >= width) return std::string(text);
  return std::string(text) + std::string(width - text.size(), ' ');
}

bool starts_with(std::string_view text, std::string_view prefix) noexcept {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

std::size_t edit_distance(std::string_view a, std::string_view b) {
  const std::string la = to_lower(a);
  const std::string lb = to_lower(b);
  // Single-row Levenshtein DP; both operands are short identifiers.
  std::vector<std::size_t> row(lb.size() + 1);
  for (std::size_t j = 0; j <= lb.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= la.size(); ++i) {
    std::size_t diagonal = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= lb.size(); ++j) {
      const std::size_t substitute = diagonal + (la[i - 1] == lb[j - 1] ? 0 : 1);
      diagonal = row[j];
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, substitute});
    }
  }
  return row[lb.size()];
}

std::optional<std::string> nearest_match(std::string_view name,
                                         const std::vector<std::string>& candidates) {
  const std::size_t threshold = 1 + name.size() / 3;
  std::optional<std::string> best;
  std::size_t best_distance = threshold + 1;
  for (const std::string& candidate : candidates) {
    const std::size_t distance = edit_distance(name, candidate);
    if (distance < best_distance) {
      best_distance = distance;
      best = candidate;
    }
  }
  return best;
}

}  // namespace e2c::util
