#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace e2c::util {

void RunningStats::add(double value) noexcept {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double RunningStats::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double mean(const std::vector<double>& values) noexcept {
  if (values.empty()) return 0.0;
  double total = 0.0;
  for (double v : values) total += v;
  return total / static_cast<double>(values.size());
}

double median(std::vector<double> values) noexcept {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const std::size_t n = values.size();
  if (n % 2 == 1) return values[n / 2];
  return 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

double stddev(const std::vector<double>& values) noexcept {
  if (values.size() < 2) return 0.0;
  const double m = mean(values);
  double sum_sq = 0.0;
  for (double v : values) sum_sq += (v - m) * (v - m);
  return std::sqrt(sum_sq / static_cast<double>(values.size() - 1));
}

double percentile(std::vector<double> values, double pct) noexcept {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  if (pct <= 0.0) return values.front();
  if (pct >= 100.0) return values.back();
  const double rank = pct / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

double student_t95(std::size_t df) noexcept {
  // Two-sided 95% critical values of Student's t distribution. With the
  // replication counts typical of simulation experiments (3-30 runs), the
  // normal approximation z=1.96 understates the interval badly — at n=4
  // (df=3) the true factor is 3.182, a 62% wider interval. z remains the
  // large-sample limit.
  static constexpr double kTable[] = {
      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
      2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
      2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};
  if (df == 0) return 0.0;
  if (df <= 30) return kTable[df - 1];
  if (df <= 40) return 2.021;
  if (df <= 60) return 2.000;
  if (df <= 120) return 1.980;
  return 1.96;
}

double ci95_half_width(const std::vector<double>& values) noexcept {
  if (values.size() < 2) return 0.0;
  return student_t95(values.size() - 1) * stddev(values) /
         std::sqrt(static_cast<double>(values.size()));
}

double jain_fairness(const std::vector<double>& values) noexcept {
  if (values.empty()) return 1.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double v : values) {
    sum += v;
    sum_sq += v * v;
  }
  if (sum_sq == 0.0) return 1.0;
  return sum * sum / (static_cast<double>(values.size()) * sum_sq);
}

std::optional<double> percent_improvement(double a, double b) noexcept {
  if (a == 0.0) return std::nullopt;
  return (b - a) / a * 100.0;
}

}  // namespace e2c::util
