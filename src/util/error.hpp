/// \file error.hpp
/// \brief Exception hierarchy for the E2C simulator.
///
/// All errors thrown by E2C libraries derive from e2c::Error so callers can
/// catch simulator faults separately from standard-library failures.
#pragma once

#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>

namespace e2c {

/// Root of the E2C exception hierarchy.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Malformed or inconsistent user input (CSV files, EET/workload mismatch,
/// invalid configuration values).
class InputError : public Error {
 public:
  using Error::Error;
};

/// Violation of an internal simulator invariant; indicates a bug in E2C
/// itself rather than in user input.
class InvariantError : public Error {
 public:
  using Error::Error;
};

/// Failure to read from or write to the filesystem.
class IoError : public Error {
 public:
  using Error::Error;
};

/// A scheduling policy name that is not present in the policy registry.
class UnknownPolicyError : public InputError {
 public:
  using InputError::InputError;
};

/// Throws InvariantError with \p message if \p condition is false.
///
/// Used for internal consistency checks that must hold in release builds
/// (unlike assert, which vanishes under NDEBUG).
inline void require(bool condition, const char* message) {
  if (!condition) throw InvariantError(message);
}

inline void require(bool condition, const std::string& message) {
  if (!condition) throw InvariantError(message);
}

/// Lazy-message form for hot paths: \p message_fn is only invoked — and its
/// string only built — when the check fails. Checks like schedule_at's
/// not-in-the-past guard run once per event; eagerly formatting their
/// messages put string allocation on the simulator's hot path.
template <typename MessageFn,
          typename = std::enable_if_t<std::is_invocable_r_v<std::string, MessageFn>>>
inline void require(bool condition, MessageFn&& message_fn) {
  if (!condition) throw InvariantError(std::forward<MessageFn>(message_fn)());
}

/// Throws InputError with \p message if \p condition is false.
inline void require_input(bool condition, const char* message) {
  if (!condition) throw InputError(message);
}

inline void require_input(bool condition, const std::string& message) {
  if (!condition) throw InputError(message);
}

/// Lazy-message form; see require().
template <typename MessageFn,
          typename = std::enable_if_t<std::is_invocable_r_v<std::string, MessageFn>>>
inline void require_input(bool condition, MessageFn&& message_fn) {
  if (!condition) throw InputError(std::forward<MessageFn>(message_fn)());
}

}  // namespace e2c
