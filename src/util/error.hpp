/// \file error.hpp
/// \brief Exception hierarchy for the E2C simulator.
///
/// All errors thrown by E2C libraries derive from e2c::Error so callers can
/// catch simulator faults separately from standard-library failures.
#pragma once

#include <stdexcept>
#include <string>

namespace e2c {

/// Root of the E2C exception hierarchy.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Malformed or inconsistent user input (CSV files, EET/workload mismatch,
/// invalid configuration values).
class InputError : public Error {
 public:
  using Error::Error;
};

/// Violation of an internal simulator invariant; indicates a bug in E2C
/// itself rather than in user input.
class InvariantError : public Error {
 public:
  using Error::Error;
};

/// Failure to read from or write to the filesystem.
class IoError : public Error {
 public:
  using Error::Error;
};

/// A scheduling policy name that is not present in the policy registry.
class UnknownPolicyError : public InputError {
 public:
  using InputError::InputError;
};

/// Throws InvariantError with \p message if \p condition is false.
///
/// Used for internal consistency checks that must hold in release builds
/// (unlike assert, which vanishes under NDEBUG).
inline void require(bool condition, const std::string& message) {
  if (!condition) throw InvariantError(message);
}

/// Throws InputError with \p message if \p condition is false.
inline void require_input(bool condition, const std::string& message) {
  if (!condition) throw InputError(message);
}

}  // namespace e2c
