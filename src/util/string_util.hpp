/// \file string_util.hpp
/// \brief Small string helpers shared across libraries.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace e2c::util {

/// Removes leading/trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view text) noexcept;

/// Splits on a single-character delimiter; keeps empty fields.
[[nodiscard]] std::vector<std::string> split(std::string_view text, char delimiter);

/// Lower-cases ASCII letters.
[[nodiscard]] std::string to_lower(std::string_view text);

/// Case-insensitive ASCII equality.
[[nodiscard]] bool iequals(std::string_view a, std::string_view b) noexcept;

/// Parses a double; nullopt on malformed or partial input.
[[nodiscard]] std::optional<double> parse_double(std::string_view text) noexcept;

/// Parses a non-negative integer; nullopt on malformed or partial input.
[[nodiscard]] std::optional<long long> parse_int(std::string_view text) noexcept;

/// Formats a double with fixed \p decimals digits (reports use 2).
[[nodiscard]] std::string format_fixed(double value, int decimals = 2);

/// Left-pads \p text with spaces to width \p width (no-op if already wider).
[[nodiscard]] std::string pad_left(std::string_view text, std::size_t width);

/// Right-pads \p text with spaces to width \p width.
[[nodiscard]] std::string pad_right(std::string_view text, std::size_t width);

/// True if \p text starts with \p prefix.
[[nodiscard]] bool starts_with(std::string_view text, std::string_view prefix) noexcept;

/// Case-insensitive Levenshtein edit distance between two ASCII strings.
[[nodiscard]] std::size_t edit_distance(std::string_view a, std::string_view b);

/// The candidate closest to \p name by case-insensitive edit distance, when
/// that distance is small enough to be a plausible typo (at most
/// 1 + |name| / 3 edits); nullopt otherwise. Ties resolve to the earliest
/// candidate, so suggestions are deterministic.
[[nodiscard]] std::optional<std::string> nearest_match(
    std::string_view name, const std::vector<std::string>& candidates);

}  // namespace e2c::util
