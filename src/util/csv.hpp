/// \file csv.hpp
/// \brief RFC-4180-style CSV reading and writing.
///
/// E2C's file formats (EET matrix, workload trace, reports) are CSV, matching
/// the original simulator so that course material and student spreadsheets
/// interoperate. The parser supports quoted fields, embedded commas/quotes/
/// newlines, and both LF and CRLF line endings.
#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace e2c::util {

/// A parsed CSV document: rows of string fields, each row tagged with the
/// 1-based source line it started on so loaders can point error messages at
/// the exact spot in the file the user has open.
struct CsvTable {
  std::vector<std::vector<std::string>> rows;
  /// 1-based source line each row starts on (parallel to rows).
  std::vector<std::size_t> row_lines;
  /// File path when read from disk; empty for in-memory text.
  std::string source;

  /// Number of rows.
  [[nodiscard]] std::size_t row_count() const noexcept { return rows.size(); }

  /// True when no rows were parsed.
  [[nodiscard]] bool empty() const noexcept { return rows.empty(); }

  /// Locator for error messages: "path:line" when the table came from a
  /// file, "line N" for in-memory text.
  [[nodiscard]] std::string where(std::size_t row_index) const;
};

/// Parses CSV text. Throws e2c::InputError on unterminated quotes.
/// Trailing newline does not create an empty final row; completely blank
/// lines are skipped (students' hand-edited files often contain them).
/// \p source, when given, names the origin (file path) in error locators.
[[nodiscard]] CsvTable parse_csv(std::string_view text, std::string source = {});

/// Reads and parses a CSV file. Throws e2c::IoError if unreadable and
/// e2c::InputError on malformed content. The result's locators carry \p path.
[[nodiscard]] CsvTable read_csv_file(const std::string& path);

/// A zero-copy CSV document: the raw text is read once into an owned
/// contiguous buffer and every field is a std::string_view into it. Only
/// fields that need unescaping (embedded "" quotes, swallowed '\r') are
/// materialized, into a stable side arena. Grammar, blank-line skipping,
/// line counting and error locators are identical to parse_csv()/CsvTable —
/// the loaders' `path:line` InputError contract is unchanged.
///
/// Views stay valid for the lifetime of the document (moves included: the
/// buffer and arena live behind stable allocations).
class CsvDoc {
 public:
  CsvDoc() = default;

  /// Number of (non-blank) rows.
  [[nodiscard]] std::size_t row_count() const noexcept {
    return row_offsets_.empty() ? 0 : row_offsets_.size() - 1;
  }

  /// True when no rows were parsed.
  [[nodiscard]] bool empty() const noexcept { return row_count() == 0; }

  /// Fields of row \p r, in column order.
  [[nodiscard]] std::span<const std::string_view> row(std::size_t r) const noexcept {
    return {fields_.data() + row_offsets_[r], row_offsets_[r + 1] - row_offsets_[r]};
  }

  /// File path when read from disk; empty for in-memory text.
  [[nodiscard]] const std::string& source() const noexcept { return source_; }

  /// Locator for error messages: "path:line" when the document came from a
  /// file, "line N" for in-memory text. Same format as CsvTable::where().
  [[nodiscard]] std::string where(std::size_t row_index) const;

 private:
  friend CsvDoc parse_csv_doc(std::string text, std::string source);

  std::unique_ptr<std::string> text_;  ///< stable storage the views point into
  /// Escaped fields materialized out of line; deque keeps element addresses
  /// stable as it grows.
  std::unique_ptr<std::deque<std::string>> arena_;
  std::vector<std::string_view> fields_;
  /// Prefix offsets into fields_: row r spans [row_offsets_[r], row_offsets_[r+1]).
  std::vector<std::uint32_t> row_offsets_;
  /// 1-based source line each row starts on.
  std::vector<std::size_t> row_lines_;
  std::string source_;
};

/// Parses CSV text into a zero-copy document (takes ownership of the text).
/// Throws e2c::InputError on unterminated quotes, with the same message and
/// locator as parse_csv().
[[nodiscard]] CsvDoc parse_csv_doc(std::string text, std::string source = {});

/// Reads a CSV file once into a contiguous buffer and parses it zero-copy.
/// Throws e2c::IoError if unreadable, e2c::InputError on malformed content.
[[nodiscard]] CsvDoc read_csv_doc(const std::string& path);

/// Quotes a field if it contains a comma, quote, or newline.
[[nodiscard]] std::string csv_escape(std::string_view field);

/// Serializes rows to CSV text (LF line endings, fields escaped as needed).
[[nodiscard]] std::string to_csv(const std::vector<std::vector<std::string>>& rows);

/// Writes rows to a file. Throws e2c::IoError on failure.
void write_csv_file(const std::string& path,
                    const std::vector<std::vector<std::string>>& rows);

}  // namespace e2c::util
