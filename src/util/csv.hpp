/// \file csv.hpp
/// \brief RFC-4180-style CSV reading and writing.
///
/// E2C's file formats (EET matrix, workload trace, reports) are CSV, matching
/// the original simulator so that course material and student spreadsheets
/// interoperate. The parser supports quoted fields, embedded commas/quotes/
/// newlines, and both LF and CRLF line endings.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace e2c::util {

/// A parsed CSV document: rows of string fields, each row tagged with the
/// 1-based source line it started on so loaders can point error messages at
/// the exact spot in the file the user has open.
struct CsvTable {
  std::vector<std::vector<std::string>> rows;
  /// 1-based source line each row starts on (parallel to rows).
  std::vector<std::size_t> row_lines;
  /// File path when read from disk; empty for in-memory text.
  std::string source;

  /// Number of rows.
  [[nodiscard]] std::size_t row_count() const noexcept { return rows.size(); }

  /// True when no rows were parsed.
  [[nodiscard]] bool empty() const noexcept { return rows.empty(); }

  /// Locator for error messages: "path:line" when the table came from a
  /// file, "line N" for in-memory text.
  [[nodiscard]] std::string where(std::size_t row_index) const;
};

/// Parses CSV text. Throws e2c::InputError on unterminated quotes.
/// Trailing newline does not create an empty final row; completely blank
/// lines are skipped (students' hand-edited files often contain them).
/// \p source, when given, names the origin (file path) in error locators.
[[nodiscard]] CsvTable parse_csv(std::string_view text, std::string source = {});

/// Reads and parses a CSV file. Throws e2c::IoError if unreadable and
/// e2c::InputError on malformed content. The result's locators carry \p path.
[[nodiscard]] CsvTable read_csv_file(const std::string& path);

/// Quotes a field if it contains a comma, quote, or newline.
[[nodiscard]] std::string csv_escape(std::string_view field);

/// Serializes rows to CSV text (LF line endings, fields escaped as needed).
[[nodiscard]] std::string to_csv(const std::vector<std::vector<std::string>>& rows);

/// Writes rows to a file. Throws e2c::IoError on failure.
void write_csv_file(const std::string& path,
                    const std::vector<std::vector<std::string>>& rows);

}  // namespace e2c::util
