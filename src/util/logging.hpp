/// \file logging.hpp
/// \brief Minimal thread-safe leveled logger used across the simulator.
///
/// The logger writes to an arbitrary std::ostream (stderr by default) and is
/// intentionally tiny: E2C is an educational tool and the log output is part
/// of its teaching surface, so messages are kept human-readable.
#pragma once

#include <mutex>
#include <ostream>
#include <sstream>
#include <string>
#include <string_view>

namespace e2c::util {

/// Severity levels in increasing order of importance.
enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

/// Returns the fixed-width display name of a level ("TRACE", "INFO", ...).
std::string_view log_level_name(LogLevel level) noexcept;

/// Parses a case-insensitive level name; returns kInfo for unknown names.
LogLevel parse_log_level(std::string_view name) noexcept;

/// Process-wide logger. Thread-safe: each emitted line is written atomically.
class Logger {
 public:
  /// Returns the singleton logger instance.
  static Logger& instance();

  /// Sets the minimum severity that will be emitted.
  void set_level(LogLevel level) noexcept;

  /// Currently configured minimum severity.
  [[nodiscard]] LogLevel level() const noexcept;

  /// Redirects output to \p sink. The sink must outlive all logging calls.
  /// Pass nullptr to restore the default (stderr).
  void set_sink(std::ostream* sink) noexcept;

  /// Emits one line at \p level tagged with \p component.
  void log(LogLevel level, std::string_view component, std::string_view message);

  /// True if a message at \p level would currently be emitted.
  [[nodiscard]] bool enabled(LogLevel level) const noexcept;

 private:
  Logger() = default;
  mutable std::mutex mutex_;
  LogLevel level_ = LogLevel::kWarn;
  std::ostream* sink_ = nullptr;  // nullptr => std::cerr
};

/// Convenience wrappers: E2C_LOG(level, component) << "message" << value;
class LogLine {
 public:
  LogLine(LogLevel level, std::string_view component)
      : level_(level), component_(component), live_(Logger::instance().enabled(level)) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() {
    if (live_) Logger::instance().log(level_, component_, stream_.str());
  }
  template <typename T>
  LogLine& operator<<(const T& value) {
    if (live_) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  bool live_;
  std::ostringstream stream_;
};

}  // namespace e2c::util

#define E2C_LOG(level, component) ::e2c::util::LogLine((level), (component))
#define E2C_LOG_INFO(component) E2C_LOG(::e2c::util::LogLevel::kInfo, (component))
#define E2C_LOG_WARN(component) E2C_LOG(::e2c::util::LogLevel::kWarn, (component))
#define E2C_LOG_ERROR(component) E2C_LOG(::e2c::util::LogLevel::kError, (component))
#define E2C_LOG_DEBUG(component) E2C_LOG(::e2c::util::LogLevel::kDebug, (component))
