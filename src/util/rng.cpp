#include "util/rng.hpp"

#include <cmath>
#include <numbers>

namespace e2c::util {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) noexcept : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
  // xoshiro must not start in the all-zero state.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 0x9E3779B97F4A7C15ULL;
  }
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::next_double() noexcept {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * next_double();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = std::uint64_t(-1) - std::uint64_t(-1) % span;
  std::uint64_t value = next_u64();
  while (value >= limit) value = next_u64();
  return lo + static_cast<std::int64_t>(value % span);
}

double Rng::exponential(double lambda) noexcept {
  // Inverse-CDF; next_double() < 1 so the log argument is > 0.
  return -std::log(1.0 - next_double()) / lambda;
}

double Rng::normal(double mean, double stddev) noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1 = next_double();
  while (u1 <= 0.0) u1 = next_double();
  const double u2 = next_double();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return mean + stddev * radius * std::cos(angle);
}

double Rng::lognormal(double mu, double sigma) noexcept {
  return std::exp(normal(mu, sigma));
}

bool Rng::bernoulli(double p) noexcept { return next_double() < p; }

std::size_t Rng::weighted_index(const std::vector<double>& weights) noexcept {
  double total = 0.0;
  for (double w : weights) total += (w > 0.0 ? w : 0.0);
  if (total <= 0.0) {
    return static_cast<std::size_t>(
        uniform_int(0, static_cast<std::int64_t>(weights.size()) - 1));
  }
  double target = next_double() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (target < w) return i;
    target -= w;
  }
  return weights.size() - 1;
}

Rng Rng::split() noexcept {
  // Derive a child seed from the parent stream; deterministic and
  // collision-resistant enough for experiment replication fan-out.
  std::uint64_t child_seed = next_u64() ^ 0xD2B74407B1CE6E93ULL;
  return Rng(child_seed);
}

}  // namespace e2c::util
