/// \file stats.hpp
/// \brief Descriptive statistics used by reports, experiments and the
/// education (survey/quiz) substrate.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

namespace e2c::util {

/// Streaming accumulator (Welford) for mean/variance without storing samples.
class RunningStats {
 public:
  /// Adds one observation.
  void add(double value) noexcept;

  /// Number of observations so far.
  [[nodiscard]] std::size_t count() const noexcept { return count_; }

  /// Arithmetic mean; 0 when empty.
  [[nodiscard]] double mean() const noexcept { return mean_; }

  /// Unbiased sample variance; 0 with fewer than two observations.
  [[nodiscard]] double variance() const noexcept;

  /// Square root of variance().
  [[nodiscard]] double stddev() const noexcept;

  /// Smallest observation; NaN when empty.
  [[nodiscard]] double min() const noexcept { return min_; }

  /// Largest observation; NaN when empty.
  [[nodiscard]] double max() const noexcept { return max_; }

  /// Merges another accumulator into this one (parallel reduction).
  void merge(const RunningStats& other) noexcept;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Mean of \p values; 0 for an empty vector.
[[nodiscard]] double mean(const std::vector<double>& values) noexcept;

/// Median (linear-interpolated between middle elements for even sizes);
/// 0 for an empty vector. Does not modify the input.
[[nodiscard]] double median(std::vector<double> values) noexcept;

/// Unbiased sample standard deviation; 0 with fewer than two values.
[[nodiscard]] double stddev(const std::vector<double>& values) noexcept;

/// Percentile in [0, 100] with linear interpolation (NIST R-7 definition);
/// 0 for an empty vector.
[[nodiscard]] double percentile(std::vector<double> values, double pct) noexcept;

/// Two-sided 95% critical value of Student's t distribution with \p df
/// degrees of freedom (tabulated for df <= 30, coarser breakpoints to
/// df = 120, then the normal limit 1.96); 0 when df == 0.
[[nodiscard]] double student_t95(std::size_t df) noexcept;

/// Half-width of the 95% confidence interval of the mean,
/// t_{0.975, n-1} * s / sqrt(n); 0 with fewer than two values. Uses the
/// small-sample Student-t critical value — experiment replication counts are
/// routinely in the single digits, where the z=1.96 normal approximation
/// understates the interval.
[[nodiscard]] double ci95_half_width(const std::vector<double>& values) noexcept;

/// Jain's fairness index over non-negative allocations:
/// (sum x)^2 / (n * sum x^2). Equals 1 for perfectly equal allocations and
/// approaches 1/n in the most unfair case. Returns 1 for empty or all-zero
/// input (vacuously fair).
[[nodiscard]] double jain_fairness(const std::vector<double>& values) noexcept;

/// Relative improvement (b - a) / a as a percentage; nullopt when a == 0.
[[nodiscard]] std::optional<double> percent_improvement(double a, double b) noexcept;

}  // namespace e2c::util
