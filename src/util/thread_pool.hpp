/// \file thread_pool.hpp
/// \brief Task-based thread pool for parallel experiment replication.
///
/// Follows C++ Core Guidelines CP.4 ("think in terms of tasks, rather than
/// threads"): callers submit callables and receive futures; no raw thread
/// management leaks into client code. The experiment harness uses it to run
/// independent simulation replications concurrently (each replication owns
/// its engine and split RNG stream, so there is no shared mutable state —
/// CP.2/CP.3).
#pragma once

#include <condition_variable>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace e2c::util {

/// Fixed-size worker pool. Joins all workers on destruction (CP.23/CP.25:
/// threads are scoped to the pool object's lifetime).
class ThreadPool {
 public:
  /// Creates \p worker_count workers; 0 selects hardware concurrency
  /// (at least 1).
  explicit ThreadPool(std::size_t worker_count = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains outstanding tasks and joins all workers.
  ~ThreadPool();

  /// Submits a callable; the returned future yields its result.
  /// Tasks must not block on other tasks submitted to the same pool.
  template <typename F>
  [[nodiscard]] auto submit(F&& task) -> std::future<std::invoke_result_t<F>> {
    using Result = std::invoke_result_t<F>;
    auto packaged = std::make_shared<std::packaged_task<Result()>>(std::forward<F>(task));
    std::future<Result> result = packaged->get_future();
    {
      std::scoped_lock lock(mutex_);
      if (stopping_) throw std::runtime_error("ThreadPool: submit after shutdown");
      tasks_.emplace([packaged] { (*packaged)(); });
    }
    wakeup_.notify_one();
    return result;
  }

  /// Number of worker threads.
  [[nodiscard]] std::size_t worker_count() const noexcept { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable wakeup_;
  bool stopping_ = false;
};

}  // namespace e2c::util
