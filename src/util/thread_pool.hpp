/// \file thread_pool.hpp
/// \brief Task-based thread pool for parallel experiment replication.
///
/// Follows C++ Core Guidelines CP.4 ("think in terms of tasks, rather than
/// threads"): callers submit callables and receive futures; no raw thread
/// management leaks into client code. The experiment harness uses it to run
/// independent simulation replications concurrently (each replication owns
/// its engine and split RNG stream, so there is no shared mutable state —
/// CP.2/CP.3).
///
/// Internally the pool keeps one task queue per worker with work stealing:
/// the owner pops from its queue's front, an idle worker steals from another
/// queue's back, so a queue's mutex is contended only when stealing actually
/// happens. The previous design — one std::queue behind one mutex, with a
/// notify per submit — serialized every push *and* every pop through the
/// same lock and showed up as flat worker scaling in the sweep bench.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace e2c::util {

/// Fixed-size worker pool. Joins all workers on destruction (CP.23/CP.25:
/// threads are scoped to the pool object's lifetime).
class ThreadPool {
 public:
  /// Creates \p worker_count workers; 0 selects hardware concurrency
  /// (at least 1).
  explicit ThreadPool(std::size_t worker_count = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains outstanding tasks and joins all workers.
  ~ThreadPool();

  /// What a requested worker count of 0 means: hardware concurrency, at
  /// least 1. The single normalization point — the pool constructor, the
  /// process backend's slot count, and the CLI summary all resolve through
  /// here so "0 workers" cannot mean different things in different layers.
  [[nodiscard]] static std::size_t resolve_worker_count(std::size_t requested) noexcept;

  /// Submits a callable; the returned future yields its result.
  /// Tasks must not block on other tasks submitted to the same pool.
  template <typename F>
  [[nodiscard]] auto submit(F&& task) -> std::future<std::invoke_result_t<F>> {
    using Result = std::invoke_result_t<F>;
    auto packaged = std::make_shared<std::packaged_task<Result()>>(std::forward<F>(task));
    std::future<Result> result = packaged->get_future();
    enqueue_one([packaged] { (*packaged)(); });
    return result;
  }

  /// Submits a homogeneous batch in one synchronization episode: tasks are
  /// spread over the per-worker queues in contiguous chunks (one lock
  /// acquisition per queue, not per task) and the workers are woken by a
  /// single notify. Futures are returned in task order regardless of which
  /// worker executes what.
  template <typename F>
  [[nodiscard]] auto submit_bulk(std::vector<F> tasks)
      -> std::vector<std::future<std::invoke_result_t<F&>>> {
    using Result = std::invoke_result_t<F&>;
    std::vector<std::future<Result>> futures;
    futures.reserve(tasks.size());
    std::vector<std::function<void()>> wrapped;
    wrapped.reserve(tasks.size());
    for (F& task : tasks) {
      auto packaged = std::make_shared<std::packaged_task<Result()>>(std::move(task));
      futures.push_back(packaged->get_future());
      wrapped.emplace_back([packaged] { (*packaged)(); });
    }
    enqueue_batch(std::move(wrapped));
    return futures;
  }

  /// Number of worker threads.
  [[nodiscard]] std::size_t worker_count() const noexcept { return workers_.size(); }

 private:
  /// One queue per worker. The owner pops the front; thieves take the back.
  struct WorkerQueue {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  void enqueue_one(std::function<void()> task);
  void enqueue_batch(std::vector<std::function<void()>> tasks);
  /// Pops from the own queue, then tries to steal; decrements pending_ on
  /// success. Returns false when every queue came up empty.
  [[nodiscard]] bool try_pop(std::size_t self, std::function<void()>& out);
  void worker_loop(std::size_t self);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;
  /// Guards only the sleep/wake protocol; never held while queuing or
  /// running tasks. pending_ is incremented *before* the task is pushed
  /// (so it can never undercount and strand a sleeper) and decremented
  /// after a successful pop.
  std::mutex sleep_mutex_;
  std::condition_variable wakeup_;
  std::atomic<std::size_t> pending_{0};
  std::atomic<std::size_t> next_queue_{0};  ///< round-robin submit cursor
  std::atomic<bool> stopping_{false};
};

}  // namespace e2c::util
