#include "util/framing.hpp"

#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/error.hpp"

namespace e2c::util {

void ByteWriter::raw(const void* data, std::size_t size) {
  buffer_.append(static_cast<const char*>(data), size);
}

void ByteWriter::str(std::string_view value) {
  u32(static_cast<std::uint32_t>(value.size()));
  buffer_.append(value.data(), value.size());
}

void ByteReader::raw(void* out, std::size_t size) {
  require_input(size <= bytes_.size() - offset_, "frame: truncated payload");
  std::memcpy(out, bytes_.data() + offset_, size);
  offset_ += size;
}

std::uint8_t ByteReader::u8() {
  std::uint8_t value = 0;
  raw(&value, sizeof value);
  return value;
}

std::uint32_t ByteReader::u32() {
  std::uint32_t value = 0;
  raw(&value, sizeof value);
  return value;
}

std::uint64_t ByteReader::u64() {
  std::uint64_t value = 0;
  raw(&value, sizeof value);
  return value;
}

double ByteReader::f64() {
  double value = 0.0;
  raw(&value, sizeof value);
  return value;
}

std::string ByteReader::str() {
  const std::uint32_t size = u32();
  require_input(size <= bytes_.size() - offset_, "frame: truncated string");
  std::string value(bytes_.data() + offset_, size);
  offset_ += size;
  return value;
}

namespace {

void write_all(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t written = ::write(fd, data, size);
    if (written < 0) {
      if (errno == EINTR) continue;
      throw IoError(std::string("pipe: write failed: ") + std::strerror(errno));
    }
    data += written;
    size -= static_cast<std::size_t>(written);
  }
}

/// Reads exactly \p size bytes; returns the count actually read, which is
/// short only when the peer closed the pipe.
std::size_t read_upto(int fd, char* out, std::size_t size) {
  std::size_t total = 0;
  while (total < size) {
    const ssize_t got = ::read(fd, out + total, size - total);
    if (got < 0) {
      if (errno == EINTR) continue;
      throw IoError(std::string("pipe: read failed: ") + std::strerror(errno));
    }
    if (got == 0) break;  // EOF
    total += static_cast<std::size_t>(got);
  }
  return total;
}

}  // namespace

void write_frame(int fd, std::string_view payload) {
  // One buffer, one write loop: small frames land in a single atomic write,
  // so a SIGKILL'd writer leaves either nothing or a decodable prefix.
  std::string framed;
  const auto size = static_cast<std::uint32_t>(payload.size());
  framed.reserve(sizeof size + payload.size());
  framed.append(reinterpret_cast<const char*>(&size), sizeof size);
  framed.append(payload.data(), payload.size());
  write_all(fd, framed.data(), framed.size());
}

std::optional<std::string> read_frame(int fd) {
  std::string payload;
  if (!read_frame_into(fd, payload)) return std::nullopt;
  return payload;
}

void write_frame_zc(int fd, std::string_view payload) {
  std::uint32_t size = static_cast<std::uint32_t>(payload.size());
  iovec iov[2];
  iov[0].iov_base = &size;
  iov[0].iov_len = sizeof size;
  iov[1].iov_base = const_cast<char*>(payload.data());
  iov[1].iov_len = payload.size();
  int index = 0;
  while (index < 2) {
    const ssize_t written = ::writev(fd, &iov[index], 2 - index);
    if (written < 0) {
      if (errno == EINTR) continue;
      throw IoError(std::string("frame: writev failed: ") + std::strerror(errno));
    }
    auto remaining = static_cast<std::size_t>(written);
    while (index < 2 && remaining >= iov[index].iov_len) {
      remaining -= iov[index].iov_len;
      ++index;
    }
    if (index < 2 && remaining > 0) {
      iov[index].iov_base = static_cast<char*>(iov[index].iov_base) + remaining;
      iov[index].iov_len -= remaining;
    }
  }
}

bool read_frame_into(int fd, std::string& payload) {
  std::uint32_t size = 0;
  const std::size_t header = read_upto(fd, reinterpret_cast<char*>(&size), sizeof size);
  if (header == 0) {
    payload.clear();
    return false;  // clean EOF between frames
  }
  if (header < sizeof size) throw IoError("pipe: peer closed mid-frame header");
  payload.resize(size);
  if (read_upto(fd, payload.data(), size) < size) {
    throw IoError("pipe: peer closed mid-frame payload");
  }
  return true;
}

std::string hex_encode(std::string_view bytes) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string text;
  text.reserve(bytes.size() * 2);
  for (const char byte : bytes) {
    const auto value = static_cast<unsigned char>(byte);
    text.push_back(kDigits[value >> 4]);
    text.push_back(kDigits[value & 0xF]);
  }
  return text;
}

namespace {

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string hex_decode(std::string_view text) {
  require_input(text.size() % 2 == 0, "hex payload has odd length");
  std::string bytes;
  bytes.reserve(text.size() / 2);
  for (std::size_t i = 0; i < text.size(); i += 2) {
    const int hi = hex_digit(text[i]);
    const int lo = hex_digit(text[i + 1]);
    require_input(hi >= 0 && lo >= 0, "hex payload has non-hex characters");
    bytes.push_back(static_cast<char>((hi << 4) | lo));
  }
  return bytes;
}

}  // namespace e2c::util
