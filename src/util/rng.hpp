/// \file rng.hpp
/// \brief Deterministic, splittable pseudo-random number generation.
///
/// E2C requires bit-identical replay of a simulation given a seed: the
/// step-debugging workflow of the paper (pause / "Increment" / reset) only
/// makes sense if re-running a scenario reproduces the same trajectory.
/// std::mt19937 distributions are not guaranteed identical across standard
/// library implementations, so E2C ships its own generator (xoshiro256**,
/// public-domain algorithm by Blackman & Vigna) and its own distribution
/// transforms. Streams can be split deterministically so that parallel
/// experiment replications never share a stream.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace e2c::util {

/// SplitMix64 step: used to expand a 64-bit seed into generator state.
/// Exposed because tests and the workload generator use it for stable
/// per-entity sub-seeds.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256** generator with deterministic seeding and stream splitting.
class Rng {
 public:
  /// Constructs a generator from a 64-bit seed. Equal seeds give equal
  /// streams on every platform.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept;

  /// Next raw 64-bit value.
  [[nodiscard]] std::uint64_t next_u64() noexcept;

  /// Uniform double in [0, 1) with 53 bits of precision.
  [[nodiscard]] double next_double() noexcept;

  /// Uniform double in [lo, hi). Requires lo <= hi.
  [[nodiscard]] double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Exponentially distributed value with rate \p lambda (> 0).
  /// Mean is 1/lambda; used for Poisson arrival inter-times.
  [[nodiscard]] double exponential(double lambda) noexcept;

  /// Normally distributed value (Box–Muller, deterministic two-call cache).
  [[nodiscard]] double normal(double mean, double stddev) noexcept;

  /// Log-normal: exp(normal(mu, sigma)).
  [[nodiscard]] double lognormal(double mu, double sigma) noexcept;

  /// Bernoulli trial with success probability \p p in [0, 1].
  [[nodiscard]] bool bernoulli(double p) noexcept;

  /// Samples an index in [0, weights.size()) proportionally to weights.
  /// Zero total weight falls back to uniform choice. Requires non-empty,
  /// non-negative weights.
  [[nodiscard]] std::size_t weighted_index(const std::vector<double>& weights) noexcept;

  /// Returns a new independent generator derived from this one's stream.
  /// Splitting is deterministic: the Nth split of a given generator is the
  /// same on every run.
  [[nodiscard]] Rng split() noexcept;

  /// Fisher–Yates shuffle of a vector, in place.
  template <typename T>
  void shuffle(std::vector<T>& values) noexcept {
    for (std::size_t i = values.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(values[i - 1], values[j]);
    }
  }

  /// The seed this generator was constructed with (for reporting).
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

 private:
  std::array<std::uint64_t, 4> state_{};
  std::uint64_t seed_ = 0;
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace e2c::util
