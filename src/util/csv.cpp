#include "util/csv.hpp"

#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace e2c::util {

std::string CsvTable::where(std::size_t row_index) const {
  const std::size_t line = row_index < row_lines.size() ? row_lines[row_index] : 0;
  if (source.empty()) return "line " + std::to_string(line);
  return source + ":" + std::to_string(line);
}

CsvTable parse_csv(std::string_view text, std::string source) {
  CsvTable table;
  table.source = std::move(source);
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;  // row has at least one character/field marker
  std::size_t line = 1;        // 1-based source line of the cursor
  std::size_t row_line = 1;    // source line the current row started on

  auto end_field = [&] {
    row.push_back(std::move(field));
    field.clear();
    field_started = true;
  };
  auto end_row = [&] {
    end_field();
    // Skip rows that are entirely empty (blank line).
    const bool blank = row.size() == 1 && row[0].empty();
    if (!blank) {
      table.rows.push_back(std::move(row));
      table.row_lines.push_back(row_line);
    }
    row.clear();
    field_started = false;
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    // A row starts at the first character after the previous row ended.
    if (row.empty() && field.empty() && !field_started) row_line = line;
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        if (c == '\n') ++line;
        field.push_back(c);
      }
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        field_started = true;
        break;
      case ',':
        end_field();
        break;
      case '\r':
        // Swallow; the following '\n' (if any) ends the row.
        break;
      case '\n':
        end_row();
        ++line;
        break;
      default:
        field.push_back(c);
        break;
    }
  }
  if (in_quotes) {
    const std::string at = table.source.empty()
                               ? "line " + std::to_string(row_line)
                               : table.source + ":" + std::to_string(row_line);
    throw InputError("CSV: unterminated quoted field (" + at + ")");
  }
  if (field_started || !field.empty() || !row.empty()) end_row();
  return table;
}

CsvTable read_csv_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open CSV file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_csv(buffer.str(), path);
}

std::string csv_escape(std::string_view field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string(field);
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += '"';
  return out;
}

std::string to_csv(const std::vector<std::vector<std::string>>& rows) {
  std::string out;
  for (const auto& row : rows) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out.push_back(',');
      out += csv_escape(row[i]);
    }
    out.push_back('\n');
  }
  return out;
}

void write_csv_file(const std::string& path,
                    const std::vector<std::vector<std::string>>& rows) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw IoError("cannot open CSV file for writing: " + path);
  out << to_csv(rows);
  if (!out) throw IoError("failed writing CSV file: " + path);
}

}  // namespace e2c::util
