#include "util/csv.hpp"

#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace e2c::util {

std::string CsvTable::where(std::size_t row_index) const {
  const std::size_t line = row_index < row_lines.size() ? row_lines[row_index] : 0;
  if (source.empty()) return "line " + std::to_string(line);
  return source + ":" + std::to_string(line);
}

CsvTable parse_csv(std::string_view text, std::string source) {
  CsvTable table;
  table.source = std::move(source);
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;  // row has at least one character/field marker
  std::size_t line = 1;        // 1-based source line of the cursor
  std::size_t row_line = 1;    // source line the current row started on

  auto end_field = [&] {
    row.push_back(std::move(field));
    field.clear();
    field_started = true;
  };
  auto end_row = [&] {
    end_field();
    // Skip rows that are entirely empty (blank line).
    const bool blank = row.size() == 1 && row[0].empty();
    if (!blank) {
      table.rows.push_back(std::move(row));
      table.row_lines.push_back(row_line);
    }
    row.clear();
    field_started = false;
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    // A row starts at the first character after the previous row ended.
    if (row.empty() && field.empty() && !field_started) row_line = line;
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        if (c == '\n') ++line;
        field.push_back(c);
      }
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        field_started = true;
        break;
      case ',':
        end_field();
        break;
      case '\r':
        // Swallow; the following '\n' (if any) ends the row.
        break;
      case '\n':
        end_row();
        ++line;
        break;
      default:
        field.push_back(c);
        break;
    }
  }
  if (in_quotes) {
    const std::string at = table.source.empty()
                               ? "line " + std::to_string(row_line)
                               : table.source + ":" + std::to_string(row_line);
    throw InputError("CSV: unterminated quoted field (" + at + ")");
  }
  if (field_started || !field.empty() || !row.empty()) end_row();
  return table;
}

namespace {

// Reads a whole file in one go into a size-reserved string — one read, one
// allocation — instead of the ostringstream << rdbuf() idiom, which buffers
// the bytes twice (stream buffer, then str() copy).
std::string read_file_text(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open CSV file: " + path);
  in.seekg(0, std::ios::end);
  const std::streamoff size = in.tellg();
  std::string text;
  if (size > 0) {
    text.resize(static_cast<std::size_t>(size));
    in.seekg(0, std::ios::beg);
    in.read(text.data(), size);
    if (!in) throw IoError("failed reading CSV file: " + path);
  } else if (size < 0) {
    // Non-seekable source (pipe/special file): fall back to streaming.
    std::ostringstream buffer;
    buffer << in.rdbuf();
    text = std::move(buffer).str();
  }
  return text;
}

}  // namespace

CsvTable read_csv_file(const std::string& path) {
  return parse_csv(read_file_text(path), path);
}

std::string CsvDoc::where(std::size_t row_index) const {
  const std::size_t line = row_index < row_lines_.size() ? row_lines_[row_index] : 0;
  if (source_.empty()) return "line " + std::to_string(line);
  return source_ + ":" + std::to_string(line);
}

CsvDoc parse_csv_doc(std::string text, std::string source) {
  CsvDoc doc;
  doc.source_ = std::move(source);
  doc.text_ = std::make_unique<std::string>(std::move(text));
  const std::string& buf = *doc.text_;
  doc.row_offsets_.push_back(0);

  // Same state machine as parse_csv(), but the current field is tracked as a
  // slice [field_begin, field_begin + field_len) of the buffer for as long as
  // its content is contiguous; the first discontinuity (escaped quote,
  // swallowed '\r', text around quotes) demotes it to a materialized copy.
  bool in_quotes = false;
  bool field_started = false;  // row has at least one character/field marker
  bool field_empty = true;     // no content characters yet in this field
  bool simple = true;          // field is still a direct buffer slice
  std::size_t field_begin = 0;
  std::size_t field_len = 0;
  std::string scratch;
  std::size_t row_fields = 0;  // completed fields in the current row
  std::size_t line = 1;        // 1-based source line of the cursor
  std::size_t row_line = 1;    // source line the current row started on

  auto push_char = [&](char c, std::size_t pos) {
    field_empty = false;
    if (simple) {
      if (field_len == 0) {
        field_begin = pos;
        field_len = 1;
        return;
      }
      if (pos == field_begin + field_len) {
        ++field_len;
        return;
      }
      scratch.assign(buf, field_begin, field_len);
      simple = false;
    }
    scratch.push_back(c);
  };
  auto end_field = [&] {
    if (simple) {
      doc.fields_.push_back(std::string_view(buf).substr(field_begin, field_len));
    } else {
      if (!doc.arena_) doc.arena_ = std::make_unique<std::deque<std::string>>();
      doc.arena_->push_back(std::move(scratch));
      doc.fields_.push_back(doc.arena_->back());
      scratch.clear();
    }
    field_len = 0;
    field_empty = true;
    simple = true;
    field_started = true;
    ++row_fields;
  };
  auto end_row = [&] {
    end_field();
    // Skip rows that are entirely empty (blank line).
    const bool blank = row_fields == 1 && doc.fields_.back().empty();
    if (blank) {
      doc.fields_.pop_back();
    } else {
      doc.row_offsets_.push_back(static_cast<std::uint32_t>(doc.fields_.size()));
      doc.row_lines_.push_back(row_line);
    }
    row_fields = 0;
    field_started = false;
  };

  for (std::size_t i = 0; i < buf.size(); ++i) {
    const char c = buf[i];
    // A row starts at the first character after the previous row ended.
    if (row_fields == 0 && field_empty && !field_started) row_line = line;
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < buf.size() && buf[i + 1] == '"') {
          push_char('"', i);
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        if (c == '\n') ++line;
        push_char(c, i);
      }
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        field_started = true;
        break;
      case ',':
        end_field();
        break;
      case '\r':
        // Swallow; the following '\n' (if any) ends the row.
        break;
      case '\n':
        end_row();
        ++line;
        break;
      default:
        push_char(c, i);
        break;
    }
  }
  if (in_quotes) {
    const std::string at = doc.source_.empty()
                               ? "line " + std::to_string(row_line)
                               : doc.source_ + ":" + std::to_string(row_line);
    throw InputError("CSV: unterminated quoted field (" + at + ")");
  }
  if (field_started || !field_empty || row_fields > 0) end_row();
  return doc;
}

CsvDoc read_csv_doc(const std::string& path) {
  return parse_csv_doc(read_file_text(path), path);
}

std::string csv_escape(std::string_view field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string(field);
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += '"';
  return out;
}

std::string to_csv(const std::vector<std::vector<std::string>>& rows) {
  std::string out;
  for (const auto& row : rows) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out.push_back(',');
      out += csv_escape(row[i]);
    }
    out.push_back('\n');
  }
  return out;
}

void write_csv_file(const std::string& path,
                    const std::vector<std::vector<std::string>>& rows) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw IoError("cannot open CSV file for writing: " + path);
  out << to_csv(rows);
  if (!out) throw IoError("failed writing CSV file: " + path);
}

}  // namespace e2c::util
