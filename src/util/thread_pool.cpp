#include "util/thread_pool.hpp"

#include <algorithm>
#include <stdexcept>

namespace e2c::util {

std::size_t ThreadPool::resolve_worker_count(std::size_t requested) noexcept {
  if (requested != 0) return requested;
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(std::size_t worker_count) {
  worker_count = resolve_worker_count(worker_count);
  queues_.reserve(worker_count);
  for (std::size_t i = 0; i < worker_count; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(worker_count);
  for (std::size_t i = 0; i < worker_count; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  stopping_.store(true);
  {
    // Empty critical section: a worker between its predicate check and its
    // sleep still holds sleep_mutex_, so acquiring it here orders the
    // stopping_ store before the notify that worker must not miss.
    std::scoped_lock lock(sleep_mutex_);
  }
  wakeup_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::enqueue_one(std::function<void()> task) {
  if (stopping_.load()) throw std::runtime_error("ThreadPool: submit after shutdown");
  const std::size_t index =
      next_queue_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
  pending_.fetch_add(1);
  {
    std::scoped_lock lock(queues_[index]->mutex);
    queues_[index]->tasks.push_back(std::move(task));
  }
  {
    std::scoped_lock lock(sleep_mutex_);
  }
  wakeup_.notify_one();
}

void ThreadPool::enqueue_batch(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  if (stopping_.load()) throw std::runtime_error("ThreadPool: submit after shutdown");
  const std::size_t queue_count = queues_.size();
  const std::size_t chunk = (tasks.size() + queue_count - 1) / queue_count;
  pending_.fetch_add(tasks.size());
  const std::size_t base =
      next_queue_.fetch_add(1, std::memory_order_relaxed) % queue_count;
  std::size_t begin = 0;
  for (std::size_t q = 0; q < queue_count && begin < tasks.size(); ++q) {
    const std::size_t end = std::min(tasks.size(), begin + chunk);
    WorkerQueue& queue = *queues_[(base + q) % queue_count];
    std::scoped_lock lock(queue.mutex);
    for (std::size_t i = begin; i < end; ++i) {
      queue.tasks.push_back(std::move(tasks[i]));
    }
    begin = end;
  }
  {
    std::scoped_lock lock(sleep_mutex_);
  }
  wakeup_.notify_all();
}

bool ThreadPool::try_pop(std::size_t self, std::function<void()>& out) {
  const std::size_t queue_count = queues_.size();
  for (std::size_t offset = 0; offset < queue_count; ++offset) {
    WorkerQueue& queue = *queues_[(self + offset) % queue_count];
    std::scoped_lock lock(queue.mutex);
    if (queue.tasks.empty()) continue;
    if (offset == 0) {
      out = std::move(queue.tasks.front());
      queue.tasks.pop_front();
    } else {
      // Steal from the victim's tail: the owner keeps its cache-warm front,
      // the thief takes the coldest task.
      out = std::move(queue.tasks.back());
      queue.tasks.pop_back();
    }
    pending_.fetch_sub(1);
    return true;
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t self) {
  std::function<void()> task;
  for (;;) {
    if (try_pop(self, task)) {
      task();
      task = nullptr;
      continue;
    }
    std::unique_lock lock(sleep_mutex_);
    wakeup_.wait(lock, [this] { return stopping_.load() || pending_.load() > 0; });
    if (pending_.load() == 0 && stopping_.load()) return;
  }
}

}  // namespace e2c::util
