#include "util/thread_pool.hpp"

#include <algorithm>

namespace e2c::util {

ThreadPool::ThreadPool(std::size_t worker_count) {
  if (worker_count == 0) {
    worker_count = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(worker_count);
  for (std::size_t i = 0; i < worker_count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::scoped_lock lock(mutex_);
    stopping_ = true;
  }
  wakeup_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      wakeup_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

}  // namespace e2c::util
