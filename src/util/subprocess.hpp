/// \file subprocess.hpp
/// \brief Thin RAII helpers over fork/pipe/waitpid for process supervision.
///
/// The experiment process pool forks one worker per slot and talks to each
/// over a pair of pipes. These helpers keep the raw POSIX plumbing (fd
/// lifetimes, EINTR loops, zombie reaping) out of the supervision logic.
#pragma once

#include <sys/types.h>

#include <utility>

namespace e2c::util {

/// A unidirectional pipe; both ends close automatically on destruction.
/// Ends can be released individually (the fork pattern: parent closes the
/// child's end and vice versa).
class Pipe {
 public:
  /// Creates the pipe; throws e2c::IoError on failure.
  Pipe();
  ~Pipe();

  Pipe(Pipe&& other) noexcept
      : read_fd_(std::exchange(other.read_fd_, -1)),
        write_fd_(std::exchange(other.write_fd_, -1)) {}
  Pipe& operator=(Pipe&&) = delete;
  Pipe(const Pipe&) = delete;
  Pipe& operator=(const Pipe&) = delete;

  [[nodiscard]] int read_fd() const noexcept { return read_fd_; }
  [[nodiscard]] int write_fd() const noexcept { return write_fd_; }

  void close_read() noexcept;
  void close_write() noexcept;

 private:
  int read_fd_ = -1;
  int write_fd_ = -1;
};

/// How a reaped child process ended.
struct ExitStatus {
  bool exited = false;    ///< normal _exit/return
  int exit_code = 0;      ///< valid when exited
  bool signalled = false; ///< killed by a signal
  int term_signal = 0;    ///< valid when signalled
};

/// Blocking waitpid on \p pid, looping over EINTR; throws e2c::IoError if
/// the child cannot be reaped.
[[nodiscard]] ExitStatus wait_for_exit(pid_t pid);

/// Scoped SIGPIPE suppression: a supervisor writing to a pipe whose worker
/// just died must see EPIPE from write(), not a fatal signal. Restores the
/// previous disposition on destruction.
class SigpipeGuard {
 public:
  SigpipeGuard();
  ~SigpipeGuard();
  SigpipeGuard(const SigpipeGuard&) = delete;
  SigpipeGuard& operator=(const SigpipeGuard&) = delete;

 private:
  void (*previous_)(int);
};

}  // namespace e2c::util
