#include "util/logging.hpp"

#include <iostream>

namespace e2c::util {

std::string_view log_level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}

LogLevel parse_log_level(std::string_view name) noexcept {
  auto eq = [&](std::string_view target) {
    if (name.size() != target.size()) return false;
    for (size_t i = 0; i < name.size(); ++i) {
      char a = name[i];
      if (a >= 'A' && a <= 'Z') a = static_cast<char>(a - 'A' + 'a');
      if (a != target[i]) return false;
    }
    return true;
  };
  if (eq("trace")) return LogLevel::kTrace;
  if (eq("debug")) return LogLevel::kDebug;
  if (eq("info")) return LogLevel::kInfo;
  if (eq("warn") || eq("warning")) return LogLevel::kWarn;
  if (eq("error")) return LogLevel::kError;
  if (eq("off") || eq("none")) return LogLevel::kOff;
  return LogLevel::kInfo;
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::set_level(LogLevel level) noexcept {
  std::scoped_lock lock(mutex_);
  level_ = level;
}

LogLevel Logger::level() const noexcept {
  std::scoped_lock lock(mutex_);
  return level_;
}

void Logger::set_sink(std::ostream* sink) noexcept {
  std::scoped_lock lock(mutex_);
  sink_ = sink;
}

bool Logger::enabled(LogLevel level) const noexcept {
  std::scoped_lock lock(mutex_);
  return level >= level_ && level_ != LogLevel::kOff;
}

void Logger::log(LogLevel level, std::string_view component, std::string_view message) {
  std::scoped_lock lock(mutex_);
  if (level < level_ || level_ == LogLevel::kOff) return;
  std::ostream& out = sink_ ? *sink_ : std::cerr;
  out << "[" << log_level_name(level) << "] [" << component << "] " << message << "\n";
}

}  // namespace e2c::util
