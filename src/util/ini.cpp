#include "util/ini.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "util/error.hpp"
#include "util/string_util.hpp"

namespace e2c::util {

namespace {
std::string strip_comment(std::string_view line) {
  // A comment starts at an unquoted '#' or ';' (values here are never quoted).
  const auto pos = line.find_first_of("#;");
  if (pos != std::string_view::npos) line = line.substr(0, pos);
  return std::string(trim(line));
}
}  // namespace

IniFile IniFile::parse(const std::string& text, const std::string& source) {
  IniFile ini;
  ini.source_ = source;
  std::string section;
  std::istringstream stream(text);
  std::string raw;
  std::size_t line_number = 0;
  while (std::getline(stream, raw)) {
    ++line_number;
    const std::string line = strip_comment(raw);
    if (line.empty()) continue;
    if (line.front() == '[') {
      require_input(line.back() == ']' && line.size() > 2,
                    "INI line " + std::to_string(line_number) + ": malformed section");
      section = to_lower(trim(std::string_view(line).substr(1, line.size() - 2)));
      if (std::find(ini.section_order_.begin(), ini.section_order_.end(), section) ==
          ini.section_order_.end()) {
        ini.section_order_.push_back(section);
      }
      continue;
    }
    const auto eq = line.find('=');
    require_input(eq != std::string::npos,
                  "INI line " + std::to_string(line_number) + ": expected key = value");
    const std::string key = to_lower(trim(std::string_view(line).substr(0, eq)));
    const std::string value{trim(std::string_view(line).substr(eq + 1))};
    require_input(!key.empty(), "INI line " + std::to_string(line_number) + ": empty key");
    ini.entries_.push_back(Entry{section, key, value, line_number});
  }
  return ini;
}

IniFile IniFile::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open config file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str(), path);
}

std::string IniFile::where(const std::string& section, const std::string& key) const {
  const std::string s = to_lower(section);
  const std::string k = to_lower(key);
  // The last assignment wins in get(), so locate that one.
  for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
    if (it->section == s && it->key == k) {
      if (source_.empty()) return "line " + std::to_string(it->line);
      return source_ + ":" + std::to_string(it->line);
    }
  }
  return section + "." + key;
}

std::optional<std::string> IniFile::get(const std::string& section,
                                        const std::string& key) const {
  const std::string s = to_lower(section);
  const std::string k = to_lower(key);
  // Last assignment wins, as in most INI dialects.
  std::optional<std::string> value;
  for (const Entry& entry : entries_) {
    if (entry.section == s && entry.key == k) value = entry.value;
  }
  return value;
}

std::string IniFile::get_or(const std::string& section, const std::string& key,
                            const std::string& fallback) const {
  return get(section, key).value_or(fallback);
}

std::optional<double> IniFile::get_double(const std::string& section,
                                          const std::string& key) const {
  const auto value = get(section, key);
  if (!value) return std::nullopt;
  const auto parsed = parse_double(*value);
  require_input(parsed.has_value(),
                "INI: " + section + "." + key + " is not a number: '" + *value + "'");
  return parsed;
}

std::optional<long long> IniFile::get_int(const std::string& section,
                                          const std::string& key) const {
  const auto value = get(section, key);
  if (!value) return std::nullopt;
  const auto parsed = parse_int(*value);
  require_input(parsed.has_value(),
                "INI: " + section + "." + key + " is not an integer: '" + *value + "'");
  return parsed;
}

std::vector<std::string> IniFile::get_list(const std::string& section,
                                           const std::string& key) const {
  const auto value = get(section, key);
  if (!value) return {};
  std::vector<std::string> items;
  for (const std::string& field : split(*value, ',')) {
    const auto item = trim(field);
    if (!item.empty()) items.emplace_back(item);
  }
  return items;
}

bool IniFile::has_section(const std::string& section) const noexcept {
  const std::string s = to_lower(section);
  return std::find(section_order_.begin(), section_order_.end(), s) !=
         section_order_.end();
}

std::vector<std::string> IniFile::sections() const { return section_order_; }

}  // namespace e2c::util
