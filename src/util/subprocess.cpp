#include "util/subprocess.hpp"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>

#include "util/error.hpp"

namespace e2c::util {

Pipe::Pipe() {
  int fds[2] = {-1, -1};
  if (::pipe(fds) != 0) {
    throw IoError(std::string("pipe() failed: ") + std::strerror(errno));
  }
  read_fd_ = fds[0];
  write_fd_ = fds[1];
}

Pipe::~Pipe() {
  close_read();
  close_write();
}

void Pipe::close_read() noexcept {
  if (read_fd_ >= 0) {
    ::close(read_fd_);
    read_fd_ = -1;
  }
}

void Pipe::close_write() noexcept {
  if (write_fd_ >= 0) {
    ::close(write_fd_);
    write_fd_ = -1;
  }
}

ExitStatus wait_for_exit(pid_t pid) {
  int status = 0;
  while (::waitpid(pid, &status, 0) < 0) {
    if (errno == EINTR) continue;
    throw IoError(std::string("waitpid failed: ") + std::strerror(errno));
  }
  ExitStatus result;
  if (WIFEXITED(status)) {
    result.exited = true;
    result.exit_code = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    result.signalled = true;
    result.term_signal = WTERMSIG(status);
  }
  return result;
}

SigpipeGuard::SigpipeGuard() : previous_(::signal(SIGPIPE, SIG_IGN)) {}

SigpipeGuard::~SigpipeGuard() { ::signal(SIGPIPE, previous_); }

}  // namespace e2c::util
