#include "mem/model_cache.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/string_util.hpp"

namespace e2c::mem {

const char* eviction_policy_name(EvictionPolicy policy) noexcept {
  switch (policy) {
    case EvictionPolicy::kLru: return "lru";
    case EvictionPolicy::kFifo: return "fifo";
    case EvictionPolicy::kNone: return "none";
  }
  return "unknown";
}

EvictionPolicy parse_eviction_policy(const std::string& name) {
  for (EvictionPolicy policy :
       {EvictionPolicy::kLru, EvictionPolicy::kFifo, EvictionPolicy::kNone}) {
    if (util::iequals(name, eviction_policy_name(policy))) return policy;
  }
  throw InputError("unknown eviction policy: '" + name + "'");
}

ModelCache::ModelCache(double capacity_mb, std::vector<double> model_mb,
                       std::vector<double> load_seconds, EvictionPolicy eviction)
    : capacity_mb_(capacity_mb),
      model_mb_(std::move(model_mb)),
      load_seconds_(std::move(load_seconds)),
      eviction_(eviction),
      warm_(model_mb_.size(), false) {
  require_input(capacity_mb_ > 0.0, "model cache: capacity must be > 0");
  require_input(model_mb_.size() == load_seconds_.size(),
                "model cache: one load penalty per model required");
  for (double mb : model_mb_) {
    require_input(mb > 0.0, "model cache: model sizes must be > 0");
  }
  for (double s : load_seconds_) {
    require_input(s >= 0.0, "model cache: load penalties must be >= 0");
  }
}

double ModelCache::on_execute(hetero::TaskTypeId type) {
  require_input(type < model_mb_.size(), "model cache: task type out of range");

  if (eviction_ == EvictionPolicy::kNone) {
    ++misses_;
    return load_seconds_[type];
  }
  if (warm_[type]) {
    ++hits_;
    touch(type);
    return 0.0;
  }
  ++misses_;
  const double needed = model_mb_[type];
  if (needed > capacity_mb_) {
    // The model can never be resident; always a cold start.
    return load_seconds_[type];
  }
  evict_until_fits(needed);
  warm_[type] = true;
  used_mb_ += needed;
  order_.push_back(type);
  return load_seconds_[type];
}

bool ModelCache::is_warm(hetero::TaskTypeId type) const noexcept {
  return type < warm_.size() && warm_[type];
}

std::vector<hetero::TaskTypeId> ModelCache::warm_types() const {
  return {order_.begin(), order_.end()};
}

double ModelCache::hit_rate() const noexcept {
  const std::size_t total = hits_ + misses_;
  return total == 0 ? 1.0 : static_cast<double>(hits_) / static_cast<double>(total);
}

void ModelCache::reset() {
  order_.clear();
  std::fill(warm_.begin(), warm_.end(), false);
  used_mb_ = 0.0;
  hits_ = 0;
  misses_ = 0;
}

void ModelCache::evict_until_fits(double needed_mb) {
  while (used_mb_ + needed_mb > capacity_mb_ && !order_.empty()) {
    const hetero::TaskTypeId victim = order_.front();
    order_.pop_front();
    warm_[victim] = false;
    used_mb_ -= model_mb_[victim];
  }
}

void ModelCache::touch(hetero::TaskTypeId type) {
  if (eviction_ != EvictionPolicy::kLru) return;  // FIFO ignores recency
  const auto it = std::find(order_.begin(), order_.end(), type);
  if (it != order_.end()) {
    order_.erase(it);
    order_.push_back(type);
  }
}

}  // namespace e2c::mem
