/// \file model_cache.hpp
/// \brief Multi-tenant memory substrate — the Edge-MultiAI extension.
///
/// The paper (§3) notes that E2C was extended "to simulate the memory
/// allocation policies of multi-tenant applications on a homogeneous edge
/// computing system" (Zobaed et al., UCC'22). This module reproduces that
/// substrate: each task type is an application whose model occupies memory;
/// a machine that still holds the model warm executes the task at its EET,
/// while a cold start pays an extra load penalty and must make room by
/// evicting other warm models.
#pragma once

#include <cstddef>
#include <deque>
#include <string>
#include <vector>

#include "hetero/types.hpp"

namespace e2c::mem {

/// Which warm model to evict when memory is needed.
enum class EvictionPolicy : int {
  kLru,   ///< least-recently-used model goes first
  kFifo,  ///< oldest-loaded model goes first
  kNone,  ///< never cache: every execution is a cold start
};

/// Display name ("lru", "fifo", "none").
[[nodiscard]] const char* eviction_policy_name(EvictionPolicy policy) noexcept;

/// Parses a case-insensitive policy name; throws e2c::InputError if unknown.
[[nodiscard]] EvictionPolicy parse_eviction_policy(const std::string& name);

/// Static description of the memory landscape of a system.
struct MemoryModel {
  /// Model footprint per task type (MB, > 0).
  std::vector<double> model_mb;
  /// Cold-start load penalty per task type (seconds, >= 0), added to the
  /// task's execution time when its model is not warm.
  std::vector<double> load_seconds;
  /// Memory capacity per machine *type* (MB, > 0).
  std::vector<double> machine_memory_mb;
  EvictionPolicy eviction = EvictionPolicy::kLru;
};

/// Warm-model cache of ONE machine instance.
///
/// on_execute(type) is called when an execution starts; it returns the extra
/// seconds (0 for a warm hit), updates the warm set and eviction metadata,
/// and counts hits/misses. Deterministic.
class ModelCache {
 public:
  /// \param capacity_mb machine memory (must be > 0)
  /// \param model_mb per-type footprints (each must fit within capacity
  ///        or the type can never be cached and always cold-starts)
  /// \param load_seconds per-type cold penalties
  ModelCache(double capacity_mb, std::vector<double> model_mb,
             std::vector<double> load_seconds, EvictionPolicy eviction);

  /// Registers an execution of \p type; returns the cold-start penalty in
  /// seconds (0 when the model was warm).
  [[nodiscard]] double on_execute(hetero::TaskTypeId type);

  /// True if the model of \p type is currently warm.
  [[nodiscard]] bool is_warm(hetero::TaskTypeId type) const noexcept;

  /// Warm model types, in eviction order (next victim first).
  [[nodiscard]] std::vector<hetero::TaskTypeId> warm_types() const;

  /// Memory currently occupied by warm models (MB).
  [[nodiscard]] double used_mb() const noexcept { return used_mb_; }

  /// Executions that found their model warm.
  [[nodiscard]] std::size_t hits() const noexcept { return hits_; }

  /// Executions that cold-started.
  [[nodiscard]] std::size_t misses() const noexcept { return misses_; }

  /// hits / (hits + misses); 1.0 before any execution.
  [[nodiscard]] double hit_rate() const noexcept;

  /// Returns the cache to its cold initial state (no warm models, zeroed
  /// counters), keeping the configured capacities and footprints. Used when
  /// a Simulation is reset for reuse across replications.
  void reset();

 private:
  void evict_until_fits(double needed_mb);
  void touch(hetero::TaskTypeId type);

  double capacity_mb_;
  std::vector<double> model_mb_;
  std::vector<double> load_seconds_;
  EvictionPolicy eviction_;

  std::deque<hetero::TaskTypeId> order_;  ///< eviction order, victim at front
  std::vector<bool> warm_;
  double used_mb_ = 0.0;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

}  // namespace e2c::mem
