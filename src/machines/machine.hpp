/// \file machine.hpp
/// \brief A simulated machine: bounded local queue, sequential executor,
/// two-state power model.
///
/// Per the paper (§3): "the task is appended to the local queue of the
/// assigned machine until the machine queue is saturated. Tasks are executed
/// on the assigned machine in a sequential manner... If a task missed its
/// deadline while executing on the machine, it is dropped from the machine."
#pragma once

#include <cstddef>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "fault/io_channel.hpp"
#include "hetero/types.hpp"
#include "mem/model_cache.hpp"
#include "workload/task_state.hpp"

namespace e2c::machines {

/// Unbounded machine-queue capacity (immediate-mode scheduling uses this;
/// see the paper's Fig. 3: "machine queue size is limited to infinite for
/// immediate policies").
inline constexpr std::size_t kUnboundedQueue = 0;

/// Receives machine lifecycle callbacks. Implemented by the simulation layer
/// to update task records and re-invoke batch schedulers when a queue slot
/// frees up.
class MachineListener {
 public:
  virtual ~MachineListener() = default;

  /// A task finished executing (always before its deadline; the simulation
  /// drops tasks whose deadline fires first). \p task is the row index into
  /// the run's TaskStateSoA.
  virtual void on_task_completed(std::size_t task, hetero::MachineId machine) = 0;

  /// A task left the machine (completed or removed), freeing queue capacity.
  virtual void on_slot_freed(hetero::MachineId machine) = 0;
};

/// Power/availability state of a machine. Online and Offline are the
/// elasticity states (autoscaler); Failed is the fault-injection state — the
/// machine crashed, aborted its committed work, and is awaiting repair.
enum class MachineState : std::uint8_t { kOnline, kOffline, kFailed };

/// Display name of a machine state ("online", "offline", "failed").
[[nodiscard]] const char* machine_state_name(MachineState state) noexcept;

/// Checkpointing parameters shared by every machine of one simulation. The
/// machine interleaves work segments with checkpoint writes every \p interval
/// work-seconds (each costing \p cost wallclock seconds), and a task that
/// arrives with committed progress pays \p restart_cost once before resuming.
struct CheckpointSpec {
  double interval = 0.0;      ///< τ: work seconds between checkpoint writes
  double cost = 0.0;          ///< C: wallclock seconds per checkpoint write
  double restart_cost = 0.0;  ///< R: wallclock seconds to reload a checkpoint
};

/// One committed checkpoint, recorded for the Gantt chart's tick marks.
struct CheckpointMark {
  workload::TaskId task = 0;
  core::SimTime time = 0.0;
};

/// A closed or still-open failure interval; end is kTimeInfinity while the
/// machine is down. Consumed by the Gantt/availability reporting.
struct FailureSpan {
  core::SimTime start = 0.0;
  core::SimTime end = core::kTimeInfinity;
};

/// Accumulated activity/energy figures for one machine.
struct MachineStats {
  double busy_seconds = 0.0;       ///< total time spent executing
  double observed_seconds = 0.0;   ///< horizon used for energy/utilization
  std::size_t tasks_completed = 0; ///< tasks that ran to completion here
  std::size_t tasks_dropped = 0;   ///< tasks removed mid-queue or mid-run
  std::size_t tasks_aborted = 0;   ///< tasks evicted by machine failures
  std::size_t failures = 0;        ///< number of failure events

  /// Fraction of observed time spent executing (0 when nothing observed).
  [[nodiscard]] double utilization() const noexcept {
    return observed_seconds > 0.0 ? busy_seconds / observed_seconds : 0.0;
  }
};

/// A single machine instance bound to an engine.
///
/// The machine schedules its own completion events; removal (deadline drop)
/// cancels the in-flight completion. All operations are O(queue length) or
/// better. Not thread-safe (one engine per thread).
class Machine {
 public:
  /// \param queue_capacity maximum tasks waiting in the local queue, not
  ///        counting the running task; kUnboundedQueue means unlimited.
  Machine(core::Engine& engine, hetero::MachineId id, std::string name,
          hetero::MachineTypeId type, hetero::MachineTypeSpec power,
          std::size_t queue_capacity);

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  /// Registers the listener invoked on completions/slot releases.
  void set_listener(MachineListener* listener) noexcept { listener_ = listener; }

  /// Attaches the run's SoA task state. The machine reads/writes task rows
  /// (status, timestamps, waste accumulators) through this; enqueue()/
  /// remove()/fail() speak row indices into it. Not owned; must outlive the
  /// machine's activity.
  void set_task_state(workload::TaskStateSoA* state) noexcept { task_state_ = state; }

  /// Attaches a warm-model cache (Edge-MultiAI memory substrate). When set,
  /// each execution start consults the cache and a cold start extends the
  /// task's execution by the model-load penalty. Not owned; must outlive
  /// the machine's activity. Pass nullptr to detach.
  void set_model_cache(mem::ModelCache* cache) noexcept { model_cache_ = cache; }

  /// The attached warm-model cache, if any.
  [[nodiscard]] const mem::ModelCache* model_cache() const noexcept {
    return model_cache_;
  }

  /// Attaches the checkpoint/restart spec (recovery strategy "checkpoint").
  /// When set with interval > 0, executions interleave work segments with
  /// checkpoint writes and record committed progress on the task so a later
  /// run resumes instead of restarting from zero. Not owned; must outlive the
  /// machine's activity. Pass nullptr to disable (resubmit semantics).
  void set_checkpoint_spec(const CheckpointSpec* spec) noexcept { checkpoint_ = spec; }

  /// Attaches the shared checkpoint-I/O channel. When set (alongside a
  /// checkpoint spec), checkpoint writes and restart reads become bandwidth-
  /// arbitrated transfers on the channel instead of fixed-cost events, so
  /// their wallclock stretches with contention. The overhead charged to the
  /// task is then the *elapsed* transfer time (including any cooperative
  /// admission wait), keeping the waste invariant exact. Not owned; must
  /// outlive the machine's activity. Pass nullptr to restore fixed costs.
  void set_io_channel(fault::IoChannel* channel) noexcept { io_channel_ = channel; }

  /// Committed checkpoints in commit order, for visualization.
  [[nodiscard]] const std::vector<CheckpointMark>& checkpoint_marks() const noexcept {
    return checkpoint_marks_;
  }

  /// Instance id within the system.
  [[nodiscard]] hetero::MachineId id() const noexcept { return id_; }

  /// Display name, e.g. "m1" or "gpu-0".
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Machine type (EET column) of this instance.
  [[nodiscard]] hetero::MachineTypeId type() const noexcept { return type_; }

  /// Power model of this instance.
  [[nodiscard]] const hetero::MachineTypeSpec& power() const noexcept { return power_; }

  /// True when a task is currently executing.
  [[nodiscard]] bool busy() const noexcept { return running_.has_value(); }

  /// Current power/availability state. Machines start online.
  [[nodiscard]] MachineState state() const noexcept { return state_; }

  /// True when the machine is powered on (accepting work). Machines start
  /// online; the elasticity substrate (autoscaler) toggles this and a
  /// failure forces it false until repair.
  [[nodiscard]] bool online() const noexcept { return state_ == MachineState::kOnline; }

  /// True while the machine is down with an injected fault.
  [[nodiscard]] bool failed() const noexcept { return state_ == MachineState::kFailed; }

  /// Powers the machine on/off at simulated time \p now. Powering off does
  /// not abort the running task or drop queued ones — the machine *drains*
  /// (finishes its committed work) but accepts no new assignments; energy
  /// accounting charges idle power only while online. Requires \p now to be
  /// non-decreasing across calls. No-op while the machine is failed: only
  /// repair() can bring a crashed machine back.
  void set_online(bool online, core::SimTime now);

  /// Crashes the machine at \p now: the running task is aborted (its partial
  /// execution is charged to busy time/energy) and the local queue is
  /// flushed. Returns the evicted task rows, running task first, then queue
  /// order — the simulation layer decides whether each is retried. The
  /// machine draws no power until repair(). Requires the machine online.
  [[nodiscard]] std::vector<std::size_t> fail(core::SimTime now);

  /// Repairs a failed machine at \p now: it re-enters the online pool with
  /// an empty queue. Requires the machine failed.
  void repair(core::SimTime now);

  /// Failure intervals so far (last one open-ended while failed).
  [[nodiscard]] const std::vector<FailureSpan>& failure_spans() const noexcept {
    return failure_spans_;
  }

  /// Seconds spent failed over [0, horizon].
  [[nodiscard]] double failed_seconds(core::SimTime horizon) const;

  /// Observed availability over [0, horizon]: 1 - failed/horizon. 1.0 for a
  /// zero horizon or a machine that never failed. Fault-aware policies use
  /// this to discount flaky machines.
  [[nodiscard]] double availability(core::SimTime horizon) const;

  /// Seconds spent online over [0, horizon].
  [[nodiscard]] double online_seconds(core::SimTime horizon) const;

  /// Number of tasks waiting in the local queue (excluding the running one).
  [[nodiscard]] std::size_t queue_length() const noexcept { return queue_.size(); }

  /// True if enqueue() would be accepted right now (requires the machine to
  /// be online and, for bounded queues, a free waiting slot).
  [[nodiscard]] bool has_queue_space() const noexcept;

  /// Earliest simulated time at which a newly assigned task could start:
  /// now when idle, otherwise the completion time of the running task plus
  /// the execution times of everything queued. This is the "ready time" that
  /// MECT/MM-style policies add the EET to.
  [[nodiscard]] core::SimTime ready_time() const;

  /// Expected completion time of a hypothetical task with execution time
  /// \p exec_seconds if it were assigned now.
  [[nodiscard]] core::SimTime expected_completion(double exec_seconds) const {
    return ready_time() + exec_seconds;
  }

  /// Assigns a task by row index (paper: appends to the local machine
  /// queue). Starts it immediately when the machine is idle. Requires queue
  /// space and exec_seconds > 0. Updates the task row (status, machine,
  /// times).
  void enqueue(std::size_t task, double exec_seconds);

  /// Removes a task (by row index) before it finishes (deadline drop).
  /// Cancels the pending completion if the task was running and pulls the
  /// next queued task in. Returns false when the task is not on this machine.
  bool remove(std::size_t task);

  /// Ids of queued tasks, front (next to run) first.
  [[nodiscard]] std::vector<workload::TaskId> queued_task_ids() const;

  /// Id of the running task, if any.
  [[nodiscard]] std::optional<workload::TaskId> running_task_id() const noexcept;

  /// Finalizes accounting at \p horizon (usually the end of the simulation)
  /// and returns activity statistics. Requires horizon >= engine.now() of
  /// the last activity; partial busy time of an in-flight task is counted.
  [[nodiscard]] MachineStats finalize_stats(core::SimTime horizon) const;

  /// Energy in joules consumed over [0, horizon] under the two-state model:
  /// busy_seconds * busy_watts + idle_seconds * idle_watts.
  [[nodiscard]] double energy_joules(core::SimTime horizon) const;

  /// Dynamic (execution-attributable) energy over [0, horizon]:
  /// busy_seconds * busy_watts. This is the quantity energy-aware policies
  /// (ELARE/FELARE) optimize; the remainder of energy_joules() is the static
  /// idle draw, which accrues with wall time regardless of mapping.
  [[nodiscard]] double dynamic_energy_joules(core::SimTime horizon) const;

  /// Returns the machine to its initial idle/online state (empty queue, no
  /// running task, zeroed accounting), keeping its identity, power model,
  /// queue capacity and attached listener/cache/checkpoint pointers. Requires
  /// the owning engine to have been rewound to time 0 first; any pending
  /// completion events must already be gone with it.
  void reset();

 private:
  struct QueueEntry {
    std::size_t task;  ///< row index into the SoA task state
    double exec_seconds;
  };
  /// What the machine is doing within one task's occupancy of the executor.
  enum class RunPhase : std::uint8_t {
    kRestart,     ///< reloading the last checkpoint (restart_cost)
    kWork,        ///< executing useful work
    kCheckpoint,  ///< writing a checkpoint (cost); commits on completion
  };
  struct RunningEntry {
    std::size_t task = 0;         ///< row index into the SoA task state
    double exec_seconds = 0.0;    ///< full from-scratch execution on this machine
    double work_total = 0.0;      ///< work remaining at start: (1-base)·exec
    double work_done = 0.0;       ///< work executed in closed work segments
    double work_committed = 0.0;  ///< work protected by committed checkpoints
    double base_fraction = 0.0;   ///< committed progress carried in from prior runs
    RunPhase phase = RunPhase::kWork;
    core::SimTime phase_started_at = 0.0;
    core::SimTime started_at = 0.0;
    core::SimTime finish_at = 0.0;  ///< projected completion incl. overheads
    core::EventId pending_event = 0;
    fault::TransferId io_transfer = fault::kNoTransfer;  ///< in-flight channel transfer
  };

  void start_next();
  void begin_work_segment();
  void on_checkpoint_write();
  void on_checkpoint_commit();
  void on_restart_loaded();
  void on_completion();
  /// Projected wallclock for the whole run: restart + work + checkpoint writes.
  [[nodiscard]] double projected_run_seconds(const RunningEntry& run) const;
  /// Per-write / per-restart wallclock estimate: the fixed cost, or the
  /// channel's uncontended transfer time. Require a checkpoint spec.
  [[nodiscard]] double checkpoint_write_estimate() const;
  [[nodiscard]] double restart_read_estimate() const;
  /// Charges an interrupted run's waste (lost work, partial-phase overhead,
  /// machine wallclock) to the task record; returns the elapsed wallclock.
  double settle_aborted_run(const RunningEntry& run, core::SimTime now) const;

  core::Engine& engine_;
  hetero::MachineId id_;
  std::string name_;
  hetero::MachineTypeId type_;
  hetero::MachineTypeSpec power_;
  std::size_t queue_capacity_;
  MachineListener* listener_ = nullptr;
  workload::TaskStateSoA* task_state_ = nullptr;
  mem::ModelCache* model_cache_ = nullptr;
  const CheckpointSpec* checkpoint_ = nullptr;
  fault::IoChannel* io_channel_ = nullptr;
  std::vector<CheckpointMark> checkpoint_marks_;

  MachineState state_ = MachineState::kOnline;
  core::SimTime online_since_ = 0.0;      ///< start of the current online span
  double accumulated_online_ = 0.0;       ///< closed online spans
  std::vector<FailureSpan> failure_spans_;

  std::deque<QueueEntry> queue_;
  std::optional<RunningEntry> running_;

  double busy_seconds_ = 0.0;  ///< completed/aborted execution time so far
  std::size_t completed_ = 0;
  std::size_t dropped_ = 0;
  std::size_t aborted_ = 0;    ///< evicted by failures
};

}  // namespace e2c::machines
