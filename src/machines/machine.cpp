#include "machines/machine.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace e2c::machines {

const char* machine_state_name(MachineState state) noexcept {
  switch (state) {
    case MachineState::kOnline: return "online";
    case MachineState::kOffline: return "offline";
    case MachineState::kFailed: return "failed";
  }
  return "unknown";
}

Machine::Machine(core::Engine& engine, hetero::MachineId id, std::string name,
                 hetero::MachineTypeId type, hetero::MachineTypeSpec power,
                 std::size_t queue_capacity)
    : engine_(engine),
      id_(id),
      name_(std::move(name)),
      type_(type),
      power_(std::move(power)),
      queue_capacity_(queue_capacity) {}

bool Machine::has_queue_space() const noexcept {
  if (state_ != MachineState::kOnline) return false;
  if (queue_capacity_ == kUnboundedQueue) return true;
  return queue_.size() < queue_capacity_;
}

void Machine::set_online(bool online, core::SimTime now) {
  if (state_ == MachineState::kFailed) return;  // only repair() revives a crash
  const bool is_online = state_ == MachineState::kOnline;
  if (online == is_online) return;
  if (online) {
    online_since_ = now;
  } else {
    accumulated_online_ += std::max(0.0, now - online_since_);
  }
  state_ = online ? MachineState::kOnline : MachineState::kOffline;
}

std::vector<std::size_t> Machine::fail(core::SimTime now) {
  require(state_ == MachineState::kOnline, "Machine::fail: machine '" + name_ +
                                               "' is not online");
  std::vector<std::size_t> evicted;
  evicted.reserve(queue_.size() + 1);
  if (running_) {
    RunningEntry run = *running_;
    running_.reset();
    engine_.cancel(run.pending_event);
    if (io_channel_ && run.io_transfer != fault::kNoTransfer) {
      // The crash tears down the in-flight transfer; freed bandwidth
      // re-shares across the survivors immediately.
      io_channel_->cancel(run.io_transfer);
    }
    // The partial execution still burned time and energy; the task record
    // keeps the loss decomposition (lost vs checkpointed-and-kept).
    busy_seconds_ += settle_aborted_run(run, now);
    evicted.push_back(run.task);
  }
  for (const QueueEntry& entry : queue_) evicted.push_back(entry.task);
  queue_.clear();
  aborted_ += evicted.size();

  accumulated_online_ += std::max(0.0, now - online_since_);
  state_ = MachineState::kFailed;
  failure_spans_.push_back(FailureSpan{now, core::kTimeInfinity});
  return evicted;
}

void Machine::repair(core::SimTime now) {
  require(state_ == MachineState::kFailed, "Machine::repair: machine '" + name_ +
                                               "' is not failed");
  require(!failure_spans_.empty(), "Machine::repair: no open failure span");
  failure_spans_.back().end = now;
  state_ = MachineState::kOnline;
  online_since_ = now;
}

double Machine::failed_seconds(core::SimTime horizon) const {
  double total = 0.0;
  for (const FailureSpan& span : failure_spans_) {
    if (span.start >= horizon) break;
    total += std::min(span.end, horizon) - span.start;
  }
  return total;
}

double Machine::availability(core::SimTime horizon) const {
  if (horizon <= 0.0) return 1.0;
  return std::max(0.0, 1.0 - failed_seconds(horizon) / horizon);
}

double Machine::online_seconds(core::SimTime horizon) const {
  double total = accumulated_online_;
  if (state_ == MachineState::kOnline) total += std::max(0.0, horizon - online_since_);
  return std::min(total, horizon);
}

core::SimTime Machine::ready_time() const {
  core::SimTime ready = engine_.now();
  if (running_) ready = running_->finish_at;
  for (const QueueEntry& entry : queue_) ready += entry.exec_seconds;
  return ready;
}

void Machine::enqueue(std::size_t task, double exec_seconds) {
  require(exec_seconds > 0.0, "Machine::enqueue: execution time must be > 0");
  require(has_queue_space(),
          [this] { return "Machine::enqueue: machine queue '" + name_ + "' saturated"; });
  task_state_->status[task] = workload::TaskStatus::kInMachineQueue;
  task_state_->machine[task] = static_cast<std::uint32_t>(id_);
  // A task that transferred first was assigned earlier; keep that timestamp.
  if (!core::time_set(task_state_->assignment_time[task])) {
    task_state_->assignment_time[task] = engine_.now();
  }
  queue_.push_back(QueueEntry{task, exec_seconds});
  if (!running_) start_next();
}

double Machine::checkpoint_write_estimate() const {
  return io_channel_ ? io_channel_->uncontended_write_seconds() : checkpoint_->cost;
}

double Machine::restart_read_estimate() const {
  return io_channel_ ? io_channel_->uncontended_read_seconds()
                     : checkpoint_->restart_cost;
}

double Machine::projected_run_seconds(const RunningEntry& run) const {
  double total = run.work_total;
  if (run.base_fraction > 0.0 && checkpoint_ && restart_read_estimate() > 0.0) {
    total += restart_read_estimate();
  }
  if (checkpoint_ && checkpoint_->interval > 0.0 &&
      run.work_total > checkpoint_->interval) {
    // One write per full interval; the final partial segment runs straight
    // to completion without a trailing checkpoint. Under a contended channel
    // this is the uncontended lower bound — ready_time is an estimate anyway.
    const double writes =
        std::ceil(run.work_total / checkpoint_->interval) - 1.0;
    total += writes * checkpoint_write_estimate();
  }
  return total;
}

void Machine::start_next() {
  require(!running_, "Machine::start_next while busy");
  if (queue_.empty()) return;
  QueueEntry entry = queue_.front();
  queue_.pop_front();

  const core::SimTime now = engine_.now();
  // Cold starts extend the execution by the model-load penalty; schedulers
  // plan on the warm EET, so the penalty is exactly the mis-estimation the
  // memory-allocation studies investigate.
  const double cold_penalty =
      model_cache_ ? model_cache_->on_execute(task_state_->type(entry.task)) : 0.0;
  RunningEntry run;
  run.task = entry.task;
  run.exec_seconds = entry.exec_seconds + cold_penalty;
  // Committed checkpoints travel with the task as a work fraction, so a
  // restart on a *different* machine resumes the remaining fraction at that
  // machine's own speed.
  run.base_fraction = std::clamp(task_state_->completed_fraction[entry.task], 0.0, 1.0);
  run.work_total = (1.0 - run.base_fraction) * run.exec_seconds;
  run.started_at = now;
  run.finish_at = now + projected_run_seconds(run);
  task_state_->status[entry.task] = workload::TaskStatus::kRunning;
  task_state_->start_time[entry.task] = now;
  running_ = run;

  if (checkpoint_ && run.base_fraction > 0.0 && restart_read_estimate() > 0.0) {
    running_->phase = RunPhase::kRestart;
    running_->phase_started_at = now;
    if (io_channel_) {
      running_->pending_event = core::kNoEvent;
      running_->io_transfer = io_channel_->begin_restart_read(
          task_state_->id(run.task), name_.c_str(), [this] { on_restart_loaded(); });
    } else {
      running_->pending_event = engine_.schedule_at(
          now + checkpoint_->restart_cost, core::EventPriority::kCompletion,
          core::EventLabel("restart task=", task_state_->id(run.task), " machine=",
                           name_.c_str()),
          [this] { on_restart_loaded(); });
    }
  } else {
    begin_work_segment();
  }
  // The freed queue slot becomes visible to batch schedulers immediately.
  if (listener_) listener_->on_slot_freed(id_);
}

void Machine::begin_work_segment() {
  require(running_.has_value(), "Machine::begin_work_segment with no running task");
  RunningEntry& run = *running_;
  const core::SimTime now = engine_.now();
  run.phase = RunPhase::kWork;
  run.phase_started_at = now;
  const double remaining = std::max(0.0, run.work_total - run.work_done);
  if (checkpoint_ && checkpoint_->interval > 0.0 && remaining > checkpoint_->interval) {
    run.pending_event = engine_.schedule_at(
        now + checkpoint_->interval, core::EventPriority::kCompletion,
        core::EventLabel("checkpoint task=", task_state_->id(run.task), " machine=",
                         name_.c_str()),
        [this] { on_checkpoint_write(); });
  } else {
    run.pending_event = engine_.schedule_at(
        now + remaining, core::EventPriority::kCompletion,
        core::EventLabel("complete task=", task_state_->id(run.task), " machine=",
                         name_.c_str()),
        [this] { on_completion(); });
  }
}

void Machine::on_checkpoint_write() {
  require(running_.has_value(), "Machine::on_checkpoint_write with no running task");
  RunningEntry& run = *running_;
  run.work_done += checkpoint_->interval;
  run.phase = RunPhase::kCheckpoint;
  run.phase_started_at = engine_.now();
  if (io_channel_) {
    // The write's wallclock is decided by the channel: it stretches with
    // concurrent transfers and, under kCooperative, includes admission wait.
    run.pending_event = core::kNoEvent;
    run.io_transfer = io_channel_->begin_checkpoint_write(
        task_state_->id(run.task), name_.c_str(), [this] { on_checkpoint_commit(); });
  } else if (checkpoint_->cost > 0.0) {
    run.pending_event = engine_.schedule_at(
        engine_.now() + checkpoint_->cost, core::EventPriority::kCompletion,
        core::EventLabel("commit task=", task_state_->id(run.task), " machine=",
                         name_.c_str()),
        [this] { on_checkpoint_commit(); });
  } else {
    on_checkpoint_commit();
  }
}

void Machine::on_checkpoint_commit() {
  require(running_.has_value(), "Machine::on_checkpoint_commit with no running task");
  RunningEntry& run = *running_;
  const core::SimTime now = engine_.now();
  const double segment = run.work_done - run.work_committed;
  run.work_committed = run.work_done;
  const std::size_t task = run.task;
  task_state_->useful_seconds[task] += segment;
  // Fixed path: charge exactly the configured cost (bit-identity with PR 2 —
  // `(a+c)-a` is not `c` in floats). Channel path: charge the elapsed
  // transfer time, which is what contention actually stretched.
  task_state_->checkpoint_overhead_seconds[task] +=
      io_channel_ ? std::max(0.0, now - run.phase_started_at) : checkpoint_->cost;
  run.io_transfer = fault::kNoTransfer;
  task_state_->completed_fraction[task] =
      std::min(1.0, run.base_fraction + run.work_committed / run.exec_seconds);
  if (task_state_->has_checkpoint_column()) task_state_->checkpoint_times[task].push_back(now);
  checkpoint_marks_.push_back(CheckpointMark{task_state_->id(task), now});
  begin_work_segment();
}

void Machine::on_restart_loaded() {
  require(running_.has_value(), "Machine::on_restart_loaded with no running task");
  task_state_->checkpoint_overhead_seconds[running_->task] +=
      io_channel_ ? std::max(0.0, engine_.now() - running_->phase_started_at)
                  : checkpoint_->restart_cost;
  running_->io_transfer = fault::kNoTransfer;
  begin_work_segment();
}

void Machine::on_completion() {
  require(running_.has_value(), "Machine::on_completion with no running task");
  RunningEntry run = *running_;
  running_.reset();

  const core::SimTime now = engine_.now();
  const double elapsed = std::max(0.0, now - run.started_at);
  busy_seconds_ += elapsed;
  ++completed_;
  const std::size_t task = run.task;
  // The final (uncheckpointed) work segment is useful too: it completed.
  task_state_->useful_seconds[task] += std::max(0.0, run.work_total - run.work_committed);
  task_state_->machine_seconds[task] += elapsed;
  task_state_->completed_fraction[task] = 1.0;
  task_state_->status[task] = workload::TaskStatus::kCompleted;
  task_state_->completion_time[task] = now;

  if (listener_) listener_->on_task_completed(task, id_);
  start_next();
}

double Machine::settle_aborted_run(const RunningEntry& run, core::SimTime now) const {
  const double elapsed = std::max(0.0, now - run.started_at);
  double work_executed = run.work_done;
  if (run.phase == RunPhase::kWork) {
    work_executed += std::max(0.0, now - run.phase_started_at);
  }
  work_executed = std::min(work_executed, run.work_total);
  const std::size_t task = run.task;
  // Useful (committed) work was already credited at each commit; only the
  // un-committed tail is lost. A partially written checkpoint or restart
  // phase is overhead that bought nothing, but it still occupied the machine.
  task_state_->lost_seconds[task] += std::max(0.0, work_executed - run.work_committed);
  if (run.phase != RunPhase::kWork) {
    task_state_->checkpoint_overhead_seconds[task] += std::max(0.0, now - run.phase_started_at);
  }
  task_state_->machine_seconds[task] += elapsed;
  return elapsed;
}

bool Machine::remove(std::size_t task) {
  if (running_ && running_->task == task) {
    RunningEntry run = *running_;
    running_.reset();
    engine_.cancel(run.pending_event);
    if (io_channel_ && run.io_transfer != fault::kNoTransfer) {
      io_channel_->cancel(run.io_transfer);
    }
    // Partial execution still consumed energy/time; the same waste settlement
    // as a crash keeps useful+lost+overhead == machine wallclock for deadline
    // drops and replica cancels too.
    busy_seconds_ += settle_aborted_run(run, engine_.now());
    ++dropped_;
    start_next();
    // start_next() only notifies when it actually started a queued task; with
    // an empty local queue the machine goes idle here and the slot that just
    // opened must still be advertised, or batch-queue tasks wait forever for
    // a scheduling trigger that never comes.
    if (!running_ && listener_) listener_->on_slot_freed(id_);
    return true;
  }
  const auto it = std::find_if(queue_.begin(), queue_.end(), [task](const QueueEntry& e) {
    return e.task == task;
  });
  if (it == queue_.end()) return false;
  queue_.erase(it);
  ++dropped_;
  if (listener_) listener_->on_slot_freed(id_);
  return true;
}

std::vector<workload::TaskId> Machine::queued_task_ids() const {
  std::vector<workload::TaskId> ids;
  ids.reserve(queue_.size());
  for (const QueueEntry& entry : queue_) ids.push_back(task_state_->id(entry.task));
  return ids;
}

std::optional<workload::TaskId> Machine::running_task_id() const noexcept {
  if (!running_) return std::nullopt;
  return task_state_->id(running_->task);
}

MachineStats Machine::finalize_stats(core::SimTime horizon) const {
  MachineStats stats;
  stats.busy_seconds = busy_seconds_;
  if (running_) {
    // Count the in-flight task's execution up to the horizon.
    stats.busy_seconds += std::max(0.0, std::min(horizon, running_->finish_at) -
                                            running_->started_at);
  }
  stats.observed_seconds = horizon;
  stats.tasks_completed = completed_;
  stats.tasks_dropped = dropped_;
  stats.tasks_aborted = aborted_;
  stats.failures = failure_spans_.size();
  return stats;
}

double Machine::energy_joules(core::SimTime horizon) const {
  const MachineStats stats = finalize_stats(horizon);
  const double busy = std::min(stats.busy_seconds, horizon);
  // Idle power is drawn only while online; an offline machine consumes
  // nothing (the point of the autoscaler).
  const double idle = std::max(0.0, online_seconds(horizon) - busy);
  return busy * power_.busy_watts + idle * power_.idle_watts;
}

double Machine::dynamic_energy_joules(core::SimTime horizon) const {
  const MachineStats stats = finalize_stats(horizon);
  return std::min(stats.busy_seconds, horizon) * power_.busy_watts;
}

void Machine::reset() {
  queue_.clear();
  running_.reset();
  checkpoint_marks_.clear();
  state_ = MachineState::kOnline;
  online_since_ = 0.0;
  accumulated_online_ = 0.0;
  failure_spans_.clear();
  busy_seconds_ = 0.0;
  completed_ = 0;
  dropped_ = 0;
  aborted_ = 0;
}

}  // namespace e2c::machines
