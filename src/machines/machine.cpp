#include "machines/machine.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace e2c::machines {

const char* machine_state_name(MachineState state) noexcept {
  switch (state) {
    case MachineState::kOnline: return "online";
    case MachineState::kOffline: return "offline";
    case MachineState::kFailed: return "failed";
  }
  return "unknown";
}

Machine::Machine(core::Engine& engine, hetero::MachineId id, std::string name,
                 hetero::MachineTypeId type, hetero::MachineTypeSpec power,
                 std::size_t queue_capacity)
    : engine_(engine),
      id_(id),
      name_(std::move(name)),
      type_(type),
      power_(std::move(power)),
      queue_capacity_(queue_capacity) {}

bool Machine::has_queue_space() const noexcept {
  if (state_ != MachineState::kOnline) return false;
  if (queue_capacity_ == kUnboundedQueue) return true;
  return queue_.size() < queue_capacity_;
}

void Machine::set_online(bool online, core::SimTime now) {
  if (state_ == MachineState::kFailed) return;  // only repair() revives a crash
  const bool is_online = state_ == MachineState::kOnline;
  if (online == is_online) return;
  if (online) {
    online_since_ = now;
  } else {
    accumulated_online_ += std::max(0.0, now - online_since_);
  }
  state_ = online ? MachineState::kOnline : MachineState::kOffline;
}

std::vector<workload::Task*> Machine::fail(core::SimTime now) {
  require(state_ == MachineState::kOnline, "Machine::fail: machine '" + name_ +
                                               "' is not online");
  std::vector<workload::Task*> evicted;
  evicted.reserve(queue_.size() + 1);
  if (running_) {
    RunningEntry run = *running_;
    running_.reset();
    engine_.cancel(run.completion_event);
    // The partial execution still burned time and energy.
    busy_seconds_ += std::max(0.0, now - run.started_at);
    evicted.push_back(run.task);
  }
  for (const QueueEntry& entry : queue_) evicted.push_back(entry.task);
  queue_.clear();
  aborted_ += evicted.size();

  accumulated_online_ += std::max(0.0, now - online_since_);
  state_ = MachineState::kFailed;
  failure_spans_.push_back(FailureSpan{now, core::kTimeInfinity});
  return evicted;
}

void Machine::repair(core::SimTime now) {
  require(state_ == MachineState::kFailed, "Machine::repair: machine '" + name_ +
                                               "' is not failed");
  require(!failure_spans_.empty(), "Machine::repair: no open failure span");
  failure_spans_.back().end = now;
  state_ = MachineState::kOnline;
  online_since_ = now;
}

double Machine::failed_seconds(core::SimTime horizon) const {
  double total = 0.0;
  for (const FailureSpan& span : failure_spans_) {
    if (span.start >= horizon) break;
    total += std::min(span.end, horizon) - span.start;
  }
  return total;
}

double Machine::availability(core::SimTime horizon) const {
  if (horizon <= 0.0) return 1.0;
  return std::max(0.0, 1.0 - failed_seconds(horizon) / horizon);
}

double Machine::online_seconds(core::SimTime horizon) const {
  double total = accumulated_online_;
  if (state_ == MachineState::kOnline) total += std::max(0.0, horizon - online_since_);
  return std::min(total, horizon);
}

core::SimTime Machine::ready_time() const {
  core::SimTime ready = engine_.now();
  if (running_) ready = running_->finish_at;
  for (const QueueEntry& entry : queue_) ready += entry.exec_seconds;
  return ready;
}

void Machine::enqueue(workload::Task& task, double exec_seconds) {
  require(exec_seconds > 0.0, "Machine::enqueue: execution time must be > 0");
  require(has_queue_space(), "Machine::enqueue: machine queue '" + name_ + "' saturated");
  task.status = workload::TaskStatus::kInMachineQueue;
  task.assigned_machine = id_;
  // A task that transferred first was assigned earlier; keep that timestamp.
  if (!task.assignment_time) task.assignment_time = engine_.now();
  queue_.push_back(QueueEntry{&task, exec_seconds});
  if (!running_) start_next();
}

void Machine::start_next() {
  require(!running_, "Machine::start_next while busy");
  if (queue_.empty()) return;
  QueueEntry entry = queue_.front();
  queue_.pop_front();

  const core::SimTime now = engine_.now();
  // Cold starts extend the execution by the model-load penalty; schedulers
  // plan on the warm EET, so the penalty is exactly the mis-estimation the
  // memory-allocation studies investigate.
  const double cold_penalty =
      model_cache_ ? model_cache_->on_execute(entry.task->type) : 0.0;
  RunningEntry run;
  run.task = entry.task;
  run.exec_seconds = entry.exec_seconds + cold_penalty;
  run.started_at = now;
  run.finish_at = now + run.exec_seconds;
  run.completion_event = engine_.schedule_at(
      run.finish_at, core::EventPriority::kCompletion,
      "complete task=" + std::to_string(entry.task->id) + " machine=" + name_,
      [this] { on_completion(); });
  entry.task->status = workload::TaskStatus::kRunning;
  entry.task->start_time = now;
  running_ = run;
  // The freed queue slot becomes visible to batch schedulers immediately.
  if (listener_) listener_->on_slot_freed(id_);
}

void Machine::on_completion() {
  require(running_.has_value(), "Machine::on_completion with no running task");
  RunningEntry run = *running_;
  running_.reset();

  busy_seconds_ += run.exec_seconds;
  ++completed_;
  run.task->status = workload::TaskStatus::kCompleted;
  run.task->completion_time = engine_.now();

  if (listener_) listener_->on_task_completed(*run.task, id_);
  start_next();
}

bool Machine::remove(workload::TaskId task_id) {
  if (running_ && running_->task->id == task_id) {
    RunningEntry run = *running_;
    running_.reset();
    engine_.cancel(run.completion_event);
    // Partial execution still consumed energy/time.
    busy_seconds_ += engine_.now() - run.started_at;
    ++dropped_;
    start_next();
    return true;
  }
  const auto it = std::find_if(queue_.begin(), queue_.end(), [task_id](const QueueEntry& e) {
    return e.task->id == task_id;
  });
  if (it == queue_.end()) return false;
  queue_.erase(it);
  ++dropped_;
  if (listener_) listener_->on_slot_freed(id_);
  return true;
}

std::vector<workload::TaskId> Machine::queued_task_ids() const {
  std::vector<workload::TaskId> ids;
  ids.reserve(queue_.size());
  for (const QueueEntry& entry : queue_) ids.push_back(entry.task->id);
  return ids;
}

std::optional<workload::TaskId> Machine::running_task_id() const noexcept {
  if (!running_) return std::nullopt;
  return running_->task->id;
}

MachineStats Machine::finalize_stats(core::SimTime horizon) const {
  MachineStats stats;
  stats.busy_seconds = busy_seconds_;
  if (running_) {
    // Count the in-flight task's execution up to the horizon.
    stats.busy_seconds += std::max(0.0, std::min(horizon, running_->finish_at) -
                                            running_->started_at);
  }
  stats.observed_seconds = horizon;
  stats.tasks_completed = completed_;
  stats.tasks_dropped = dropped_;
  stats.tasks_aborted = aborted_;
  stats.failures = failure_spans_.size();
  return stats;
}

double Machine::energy_joules(core::SimTime horizon) const {
  const MachineStats stats = finalize_stats(horizon);
  const double busy = std::min(stats.busy_seconds, horizon);
  // Idle power is drawn only while online; an offline machine consumes
  // nothing (the point of the autoscaler).
  const double idle = std::max(0.0, online_seconds(horizon) - busy);
  return busy * power_.busy_watts + idle * power_.idle_watts;
}

double Machine::dynamic_energy_joules(core::SimTime horizon) const {
  const MachineStats stats = finalize_stats(horizon);
  return std::min(stats.busy_seconds, horizon) * power_.busy_watts;
}

}  // namespace e2c::machines
