#include "exp/serve.hpp"

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "exp/cell_codec.hpp"
#include "exp/job_codec.hpp"
#include "exp/journal.hpp"
#include "exp/scenario.hpp"
#include "exp/sim_pool.hpp"
#include "exp/spec_io.hpp"
#include "sched/registry.hpp"
#include "util/error.hpp"
#include "util/framing.hpp"
#include "util/ini.hpp"
#include "util/string_util.hpp"
#include "util/subprocess.hpp"
#include "util/thread_pool.hpp"

namespace e2c::exp {

namespace {

using Clock = std::chrono::steady_clock;

/// Jobs a worker keeps warm at once. Eviction is FIFO and mirrored by the
/// supervisor, which only sends kLoadJob when its mirror says the worker
/// lacks the key — the two sides must stay in lockstep.
constexpr std::size_t kWorkerJobCacheCap = 4;

/// One (policy, intensity) cell in (policy-major, intensity-minor) order —
/// the same slot layout as the process backend, so the client reassembles
/// cells into the canonical order by slot index alone.
struct Slot {
  std::string policy;
  workload::Intensity intensity = workload::Intensity::kLow;
};

std::vector<Slot> build_slots(const ExperimentSpec& spec) {
  std::vector<Slot> slots;
  slots.reserve(spec.policies.size() * spec.intensities.size());
  for (const std::string& policy : spec.policies) {
    for (const workload::Intensity intensity : spec.intensities) {
      slots.push_back({policy, intensity});
    }
  }
  return slots;
}

// ---- drain signals (the process-pool pattern; see process_pool.cpp) ------

volatile sig_atomic_t g_serve_drain_requested = 0;

extern "C" void e2c_serve_drain_handler(int) { g_serve_drain_requested = 1; }

class ScopedDrainHandlers {
 public:
  explicit ScopedDrainHandlers(bool enable) : installed_(enable) {
    if (!installed_) return;
    g_serve_drain_requested = 0;
    struct sigaction action {};
    action.sa_handler = e2c_serve_drain_handler;
    sigemptyset(&action.sa_mask);
    action.sa_flags = 0;  // no SA_RESTART: poll() must wake with EINTR
    ::sigaction(SIGINT, &action, &old_int_);
    ::sigaction(SIGTERM, &action, &old_term_);
  }
  ~ScopedDrainHandlers() {
    if (!installed_) return;
    ::sigaction(SIGINT, &old_int_, nullptr);
    ::sigaction(SIGTERM, &old_term_, nullptr);
  }
  ScopedDrainHandlers(const ScopedDrainHandlers&) = delete;
  ScopedDrainHandlers& operator=(const ScopedDrainHandlers&) = delete;

 private:
  bool installed_;
  struct sigaction old_int_ {};
  struct sigaction old_term_ {};
};

// ---- socket plumbing -----------------------------------------------------

sockaddr_un socket_address(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  require_input(path.size() < sizeof(addr.sun_path),
                "socket path '" + path + "' is too long (max " +
                    std::to_string(sizeof(addr.sun_path) - 1) + " bytes)");
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

/// Closes an fd on scope exit; release() keeps it open.
class FdGuard {
 public:
  explicit FdGuard(int fd) noexcept : fd_(fd) {}
  ~FdGuard() {
    if (fd_ >= 0) ::close(fd_);
  }
  FdGuard(const FdGuard&) = delete;
  FdGuard& operator=(const FdGuard&) = delete;
  [[nodiscard]] int get() const noexcept { return fd_; }
  int release() noexcept { return std::exchange(fd_, -1); }

 private:
  int fd_;
};

/// Binds and listens on \p path. A stale socket file (nothing accepting:
/// connect says ECONNREFUSED) is unlinked and rebound; a live service or a
/// non-socket file in the way is the caller's mistake → InputError.
int make_listen_socket(const std::string& path) {
  const sockaddr_un addr = socket_address(path);
  struct stat st {};
  if (::lstat(path.c_str(), &st) == 0 && !S_ISSOCK(st.st_mode)) {
    throw InputError("--serve: '" + path +
                     "' exists and is not a socket — refusing to replace it");
  }
  // Nonblocking listener: a pending connection that is aborted between
  // poll() and accept() must make accept fail with EAGAIN, not block the
  // supervisor until the next client shows up. Accepted connections do not
  // inherit the flag; they rely on SO_RCVTIMEO/SO_SNDTIMEO instead.
  FdGuard fd(::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK, 0));
  if (fd.get() < 0) {
    throw IoError(std::string("--serve: socket() failed: ") + std::strerror(errno));
  }
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    if (errno != EADDRINUSE) {
      throw IoError("--serve: cannot bind '" + path + "': " + std::strerror(errno));
    }
    // Live service, or stale socket from a dead one? Probing disambiguates.
    FdGuard probe(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (probe.get() >= 0 &&
        ::connect(probe.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof addr) == 0) {
      throw InputError("--serve: a live service is already listening on '" + path + "'");
    }
    ::unlink(path.c_str());
    if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
      throw IoError("--serve: cannot rebind stale socket '" + path +
                    "': " + std::strerror(errno));
    }
  }
  if (::listen(fd.get(), SOMAXCONN) != 0) {
    ::unlink(path.c_str());
    throw IoError("--serve: listen on '" + path + "' failed: " + std::strerror(errno));
  }
  return fd.release();
}

int connect_to_service(const std::string& path) {
  const sockaddr_un addr = socket_address(path);
  FdGuard fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (fd.get() < 0) {
    throw IoError(std::string("--submit: socket() failed: ") + std::strerror(errno));
  }
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    const int err = errno;
    if (err == ENOENT) {
      throw InputError("--submit: no service socket at '" + path +
                       "' (start one with `e2c_experiment --serve " + path + "`)");
    }
    if (err == ECONNREFUSED) {
      throw InputError("--submit: socket '" + path +
                       "' is stale — no service is listening on it (restart "
                       "`e2c_experiment --serve`)");
    }
    throw IoError("--submit: cannot connect to '" + path + "': " + std::strerror(err));
  }
  return fd.release();
}

// ---- worker side ---------------------------------------------------------

/// Fault-injection hooks for tests and the CI serve lane, matched on
/// "slot/rep" (e.g. "1/0"):
///   E2C_SERVE_TEST_CRASH_UNIT    raise(SIGKILL) on the unit's first attempt
///   E2C_SERVE_TEST_CRASH_ALWAYS  raise(SIGKILL) on every attempt — exhausts
///                                retries and degrades the cell to kFailed
///   E2C_SERVE_TEST_HANG_UNIT     loop in pause() forever (every attempt)
///   E2C_SERVE_TEST_UNIT_DELAY_MS sleep before computing any unit
bool unit_matches(const char* env, std::uint32_t slot, std::uint32_t rep) {
  if (env == nullptr) return false;
  return std::to_string(slot) + "/" + std::to_string(rep) == env;
}

/// A job a worker keeps warm: parsed spec, its SystemConfig (the sim_pool
/// lease key), and every paired trace generated so far. Two submissions with
/// identical config text share one entry — that is the repeat-submission
/// fast path: no parse, no trace regeneration, warm Simulation leases.
struct CachedJob {
  std::uint64_t key = 0;
  ExperimentSpec spec;
  std::shared_ptr<const sched::SystemConfig> system;
  std::vector<hetero::MachineTypeId> machine_types;
  std::vector<Slot> slots;
  /// Paired traces by (intensity, replication) — shared across every policy
  /// slot of the job, exactly like the shared data plane.
  std::map<std::pair<int, std::uint32_t>, std::shared_ptr<const workload::Workload>>
      traces;
};

CachedJob* find_cached(std::deque<CachedJob>& cache, std::uint64_t key) {
  for (CachedJob& job : cache) {
    if (job.key == key) return &job;
  }
  return nullptr;
}

[[noreturn]] void serve_worker_main(int cmd_fd, int res_fd) {
  // Only the supervisor reacts to drain signals; a Ctrl-C on the foreground
  // process group must not kill in-flight units mid-drain.
  ::signal(SIGINT, SIG_IGN);
  ::signal(SIGTERM, SIG_IGN);
  const char* crash_unit = std::getenv("E2C_SERVE_TEST_CRASH_UNIT");
  const char* crash_always = std::getenv("E2C_SERVE_TEST_CRASH_ALWAYS");
  const char* hang_unit = std::getenv("E2C_SERVE_TEST_HANG_UNIT");
  const char* delay_ms = std::getenv("E2C_SERVE_TEST_UNIT_DELAY_MS");
  std::deque<CachedJob> cache;
  std::string frame;        // recycled inbound frame buffer
  util::ByteWriter writer;  // recycled outbound frame buffer
  for (;;) {
    bool got = false;
    try {
      got = util::read_frame_into(cmd_fd, frame);
    } catch (...) {
      ::_exit(0);
    }
    if (!got) ::_exit(0);  // supervisor closed the command pipe
    try {
      switch (peek_job_frame(frame)) {
        case JobFrame::kShutdown:
          ::_exit(0);
        case JobFrame::kLoadJob: {
          const WorkerLoadJob load = decode_worker_load_job(frame);
          if (find_cached(cache, load.job_key) != nullptr) break;
          if (cache.size() >= kWorkerJobCacheCap) {
            // Evicting a job drops its Simulation leases too, so the lease
            // cache stays bounded by the job cache, not service lifetime.
            purge_simulations(cache.front().system.get());
            cache.pop_front();
          }
          CachedJob job;
          job.key = load.job_key;
          job.spec = spec_from_ini(util::IniFile::parse(load.ini_text, "serve job"));
          job.system = std::make_shared<const sched::SystemConfig>(job.spec.system);
          job.machine_types = machine_types_of(*job.system);
          job.slots = build_slots(job.spec);
          cache.push_back(std::move(job));
          break;
        }
        case JobFrame::kRunUnit: {
          const WorkerRunUnit unit = decode_worker_run_unit(frame);
          CachedJob* job = find_cached(cache, unit.job_key);
          if (job == nullptr) ::_exit(3);  // supervisor mirror out of sync
          const Slot& slot = job->slots.at(unit.slot);
          if (unit.attempt == 0 && unit_matches(crash_unit, unit.slot, unit.rep)) {
            ::raise(SIGKILL);
          }
          if (unit_matches(crash_always, unit.slot, unit.rep)) {
            ::raise(SIGKILL);
          }
          if (unit_matches(hang_unit, unit.slot, unit.rep)) {
            for (;;) ::pause();
          }
          if (delay_ms != nullptr) {
            if (const auto parsed = util::parse_int(delay_ms); parsed && *parsed > 0) {
              ::usleep(static_cast<useconds_t>(*parsed) * 1000);
            }
          }
          auto& trace = job->traces[{static_cast<int>(slot.intensity), unit.rep}];
          if (!trace) {
            trace = std::make_shared<const workload::Workload>(detail::generate_trace(
                job->spec, job->machine_types, slot.intensity, unit.rep));
          }
          sched::Simulation& simulation =
              lease_simulation(job->system, sched::make_policy(slot.policy));
          simulation.load(trace);
          simulation.run();
          WorkerUnitResult result;
          result.job_key = unit.job_key;
          result.slot = unit.slot;
          result.rep = unit.rep;
          result.attempt = unit.attempt;
          result.metrics_payload =
              encode_metrics_payload(reports::compute_metrics(simulation));
          writer.clear();
          encode_worker_unit_result(writer, result);
          util::write_frame_zc(res_fd, writer.bytes());
          break;
        }
        default:
          ::_exit(3);  // protocol violation
      }
    } catch (...) {
      // A throwing unit is a crash as far as supervision is concerned: the
      // supervisor requeues it and eventually fails the cell.
      ::_exit(3);
    }
  }
}

// ---- supervisor side -----------------------------------------------------

/// One (job, slot, replication) work item awaiting dispatch.
struct Unit {
  std::uint64_t job_id = 0;
  std::uint32_t slot = 0;
  std::uint32_t rep = 0;
  std::uint32_t attempt = 0;
  Clock::time_point release;  ///< backoff: not dispatchable before this
};

struct ServeWorker {
  pid_t pid = -1;
  std::unique_ptr<util::Pipe> cmd;  ///< supervisor writes load/run frames
  std::unique_ptr<util::Pipe> res;  ///< supervisor reads unit results
  bool alive = false;
  bool busy = false;
  Unit unit{};  ///< in-flight unit when busy
  std::uint64_t unit_key = 0;
  Clock::time_point started;
  /// Supervisor's mirror of the worker's job cache (FIFO of job keys).
  std::deque<std::uint64_t> loaded;
};

/// One admitted sweep: its parsed spec, the client connection streaming
/// results, and per-slot completion state.
struct ServeJob {
  std::uint64_t id = 0;
  std::uint64_t key = 0;
  std::string ini_text;
  ExperimentSpec spec;
  std::vector<Slot> slots;
  std::uint32_t reps = 0;
  int client_fd = -1;
  bool client_dead = false;
  std::vector<std::optional<reports::Metrics>> metrics;  ///< slot-major × rep
  std::vector<std::uint32_t> slot_remaining;             ///< reps left per slot
  std::vector<char> slot_failed;
  std::vector<std::uint32_t> slot_retries;
  std::size_t cells_done = 0;
  std::size_t completed = 0;
  std::size_t failed = 0;
  std::size_t retries = 0;
  std::optional<SweepJournal> journal;
};

void spawn_serve_worker(ServeWorker& worker, std::vector<ServeWorker>& workers,
                        const std::vector<int>& close_in_child) {
  worker.cmd = std::make_unique<util::Pipe>();
  worker.res = std::make_unique<util::Pipe>();
  const pid_t pid = ::fork();
  if (pid < 0) {
    throw IoError(std::string("serve: fork failed: ") + std::strerror(errno));
  }
  if (pid == 0) {
    // Child: drop sibling pipe ends (a sibling holding a dead worker's
    // result pipe would suppress the EOF used for crash detection) and the
    // supervisor's sockets (the listener and every client connection — a
    // worker holding a client fd would suppress client-hangup detection).
    for (ServeWorker& other : workers) {
      if (&other == &worker || !other.cmd) continue;
      other.cmd.reset();
      other.res.reset();
    }
    for (const int fd : close_in_child) ::close(fd);
    worker.cmd->close_write();
    worker.res->close_read();
    serve_worker_main(worker.cmd->read_fd(), worker.res->write_fd());
  }
  worker.pid = pid;
  worker.cmd->close_read();
  worker.res->close_write();
  worker.alive = true;
  worker.busy = false;
  worker.loaded.clear();
}

}  // namespace

std::size_t run_serve(const ServeOptions& options) {
  const std::size_t pool_size = util::ThreadPool::resolve_worker_count(options.workers);
  const std::size_t backlog = std::max<std::size_t>(1, options.backlog);
  const auto say = [&](const std::string& message) {
    if (options.log) options.log(message);
  };

  const int listen_fd = make_listen_socket(options.socket_path);
  ScopedDrainHandlers drain_handlers(options.drain_on_signals);
  util::SigpipeGuard sigpipe_guard;

  std::vector<ServeWorker> workers(pool_size);
  std::map<std::uint64_t, ServeJob> jobs;
  std::deque<Unit> ready;
  std::uint64_t next_job_id = 1;
  std::size_t jobs_served = 0;
  std::string frame;        // recycled inbound frame buffer
  util::ByteWriter writer;  // recycled outbound frame buffer

  /// Fds the supervisor owns that forked workers must not inherit.
  const auto child_close_list = [&] {
    std::vector<int> fds{listen_fd};
    for (const auto& [id, job] : jobs) {
      if (job.client_fd >= 0) fds.push_back(job.client_fd);
    }
    return fds;
  };

  /// Records a finished (ok or failed) cell: journal, stream to the client,
  /// bump counters. A write failure marks the client dead; the job is
  /// cancelled at the next finalize pass.
  const auto emit_cell = [&](ServeJob& job, std::uint32_t slot, const CellResult& cell) {
    if (cell.status == CellStatus::kOk) {
      ++job.completed;
    } else {
      ++job.failed;
    }
    ++job.cells_done;
    if (job.journal) job.journal->append(slot, cell);
    if (job.client_dead) return;
    JobCell cell_frame;
    cell_frame.slot = slot;
    cell_frame.cells_done = static_cast<std::uint32_t>(job.cells_done);
    cell_frame.cells_total = static_cast<std::uint32_t>(job.slots.size());
    cell_frame.cell_payload = encode_cell(cell);
    writer.clear();
    encode_job_cell(writer, cell_frame);
    try {
      util::write_frame_zc(job.client_fd, writer.bytes());
    } catch (const IoError&) {
      job.client_dead = true;
    }
  };

  const auto handle_unit_failure = [&](ServeJob& job, const Unit& unit) {
    if (job.slot_failed[unit.slot] != 0) return;  // cell already given up on
    if (unit.attempt < options.max_retries) {
      ++job.retries;
      ++job.slot_retries[unit.slot];
      const double backoff =
          std::min(options.max_backoff,
                   options.backoff_base * std::pow(options.backoff_factor,
                                                   static_cast<double>(unit.attempt)));
      ready.push_back({job.id, unit.slot, unit.rep, unit.attempt + 1,
                       Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                          std::chrono::duration<double>(backoff))});
      say("job " + std::to_string(job.id) + ": unit " + std::to_string(unit.slot) +
          "/" + std::to_string(unit.rep) + " failed (attempt " +
          std::to_string(unit.attempt + 1) + "), requeued");
    } else {
      // Retries exhausted: the whole cell degrades to kFailed. The failed
      // cell still flows through emit_cell so the journal records it, the
      // client receives it, and cells_done advances — otherwise the job
      // could never finalize and both sides would wait forever.
      job.slot_failed[unit.slot] = 1;
      ready.erase(std::remove_if(ready.begin(), ready.end(),
                                 [&](const Unit& pending) {
                                   return pending.job_id == job.id &&
                                          pending.slot == unit.slot;
                                 }),
                  ready.end());
      for (std::uint32_t rep = 0; rep < job.reps; ++rep) {
        job.metrics[unit.slot * job.reps + rep].reset();
      }
      CellResult failed;
      failed.policy = job.slots[unit.slot].policy;
      failed.intensity = job.slots[unit.slot].intensity;
      failed.status = CellStatus::kFailed;
      failed.attempts = unit.attempt + 1;
      say("job " + std::to_string(job.id) + ": cell " + std::to_string(unit.slot) +
          " failed after " + std::to_string(unit.attempt + 1) + " attempts");
      emit_cell(job, unit.slot, failed);
    }
  };

  /// A unit result completed its slot: assemble the cell in replication
  /// order — bit-exact Metrics, same merge order as every other backend.
  const auto complete_slot = [&](ServeJob& job, std::uint32_t slot) {
    CellResult cell;
    cell.policy = job.slots[slot].policy;
    cell.intensity = job.slots[slot].intensity;
    cell.runs.reserve(job.reps);
    for (std::uint32_t rep = 0; rep < job.reps; ++rep) {
      cell.runs.push_back(std::move(*job.metrics[slot * job.reps + rep]));
      job.metrics[slot * job.reps + rep].reset();
    }
    cell.attempts = 1 + job.slot_retries[slot];
    emit_cell(job, slot, cell);
  };

  const auto reap = [&](ServeWorker& worker, bool charge_attempt) {
    (void)util::wait_for_exit(worker.pid);
    worker.alive = false;
    const bool was_busy = worker.busy;
    worker.busy = false;
    worker.cmd.reset();
    worker.res.reset();
    worker.loaded.clear();
    if (was_busy && charge_attempt) {
      if (const auto it = jobs.find(worker.unit.job_id); it != jobs.end()) {
        handle_unit_failure(it->second, worker.unit);
      }
    }
  };

  const auto kill_all = [&] {
    for (ServeWorker& worker : workers) {
      if (!worker.alive) continue;
      ::kill(worker.pid, SIGKILL);
      (void)util::wait_for_exit(worker.pid);
      worker.alive = false;
    }
  };

  /// Closes client connections and erases jobs that are finished (send
  /// kDone) or abandoned (drop their pending units).
  const auto finalize_jobs = [&] {
    for (auto it = jobs.begin(); it != jobs.end();) {
      ServeJob& job = it->second;
      if (job.client_dead) {
        ready.erase(std::remove_if(
                        ready.begin(), ready.end(),
                        [&](const Unit& unit) { return unit.job_id == job.id; }),
                    ready.end());
        if (job.client_fd >= 0) ::close(job.client_fd);
        say("job " + std::to_string(job.id) + ": client went away, cancelled");
        it = jobs.erase(it);
        continue;
      }
      if (job.cells_done == job.slots.size()) {
        JobDone done;
        done.completed_cells = job.completed;
        done.failed_cells = job.failed;
        done.retries = job.retries;
        done.workers = pool_size;
        writer.clear();
        encode_job_done(writer, done);
        try {
          util::write_frame_zc(job.client_fd, writer.bytes());
        } catch (const IoError&) {
          // Result already journaled; nothing left to salvage for a client
          // that vanished between the last cell and the done frame.
        }
        ::close(job.client_fd);
        ++jobs_served;
        say("job " + std::to_string(job.id) + " done: " + std::to_string(job.completed) +
            " ok, " + std::to_string(job.failed) + " failed, " +
            std::to_string(job.retries) + " retries");
        it = jobs.erase(it);
        continue;
      }
      ++it;
    }
  };

  /// One accept(): read the submit frame, admit or busy-reject, queue units.
  const auto accept_client = [&](bool draining) {
    const int raw_fd = ::accept(listen_fd, nullptr, nullptr);
    if (raw_fd < 0) return;
    FdGuard fd(raw_fd);
    // A stalled client must not wedge the single-threaded supervisor in
    // either direction: a submitter that never finishes its frame (read
    // side) or a receiver that stops draining its socket buffer (write
    // side, e.g. SIGSTOPed). The timeouts stick to the fd, so every later
    // emit_cell / done-frame write is covered too; a timed-out write throws
    // IoError, which marks the client dead exactly like a hangup.
    timeval timeout{};
    timeout.tv_sec = 5;
    ::setsockopt(fd.get(), SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof timeout);
    ::setsockopt(fd.get(), SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof timeout);
    try {
      if (!util::read_frame_into(fd.get(), frame)) return;
      if (peek_job_frame(frame) != JobFrame::kSubmit) return;
      JobSubmit submit = decode_job_submit(frame);
      if (draining || jobs.size() >= backlog) {
        JobBusy busy;
        busy.in_service = static_cast<std::uint32_t>(jobs.size());
        busy.backlog = static_cast<std::uint32_t>(backlog);
        busy.draining = draining ? 1 : 0;
        writer.clear();
        encode_job_busy(writer, busy);
        util::write_frame_zc(fd.get(), writer.bytes());
        say(draining ? "rejected submit: draining"
                     : "rejected submit: backlog full (" + std::to_string(jobs.size()) +
                           "/" + std::to_string(backlog) + ")");
        return;
      }
      ServeJob job;
      try {
        job.spec = spec_from_ini(util::IniFile::parse(submit.ini_text, "submitted config"));
        require_input(!job.spec.policies.empty(), "submitted config: no policies");
        require_input(!job.spec.intensities.empty(), "submitted config: no intensities");
        require_input(job.spec.replications > 0,
                      "submitted config: replications must be > 0");
        for (const std::string& policy : job.spec.policies) {
          require_input(sched::PolicyRegistry::instance().contains(policy),
                        "submitted config: unknown policy '" + policy + "'");
        }
        if (!options.journal_prefix.empty()) {
          job.journal.emplace(SweepJournal::create(
              options.journal_prefix + ".job" + std::to_string(next_job_id),
              spec_digest(job.spec),
              job.spec.policies.size() * job.spec.intensities.size()));
        }
      } catch (const std::exception& rejection) {
        writer.clear();
        encode_job_error(writer, {rejection.what()});
        util::write_frame_zc(fd.get(), writer.bytes());
        say(std::string("rejected submit: ") + rejection.what());
        return;
      }
      job.id = next_job_id++;
      job.key = job_key_of(submit.ini_text);
      job.ini_text = std::move(submit.ini_text);
      job.slots = build_slots(job.spec);
      job.reps = static_cast<std::uint32_t>(job.spec.replications);
      job.metrics.assign(job.slots.size() * job.reps, std::nullopt);
      job.slot_remaining.assign(job.slots.size(), job.reps);
      job.slot_failed.assign(job.slots.size(), 0);
      job.slot_retries.assign(job.slots.size(), 0);
      JobAccepted accepted;
      accepted.job_id = job.id;
      accepted.cells_total = static_cast<std::uint32_t>(job.slots.size());
      accepted.replications = job.reps;
      accepted.workers = static_cast<std::uint32_t>(pool_size);
      writer.clear();
      encode_job_accepted(writer, accepted);
      util::write_frame_zc(fd.get(), writer.bytes());
      const auto now = Clock::now();
      for (std::uint32_t slot = 0; slot < job.slots.size(); ++slot) {
        for (std::uint32_t rep = 0; rep < job.reps; ++rep) {
          ready.push_back({job.id, slot, rep, 0, now});
        }
      }
      say("accepted job " + std::to_string(job.id) + ": " +
          std::to_string(job.slots.size()) + " cells x " + std::to_string(job.reps) +
          " reps (" + std::to_string(jobs.size() + 1) + "/" + std::to_string(backlog) +
          " in service)");
      job.client_fd = fd.release();
      jobs.emplace(job.id, std::move(job));
    } catch (const Error&) {
      // Unreadable or unparsable submit conversation: drop the connection.
    }
  };

  /// Next dispatchable unit; units of cancelled jobs are swept out here.
  const auto pop_ready = [&](Clock::time_point now) -> std::optional<Unit> {
    for (auto it = ready.begin(); it != ready.end();) {
      if (jobs.find(it->job_id) == jobs.end()) {
        it = ready.erase(it);
        continue;
      }
      if (it->release <= now) {
        const Unit unit = *it;
        ready.erase(it);
        return unit;
      }
      ++it;
    }
    return std::nullopt;
  };

  const auto handle_worker_result = [&](ServeWorker& worker) {
    const WorkerUnitResult result = decode_worker_unit_result(frame);
    if (!worker.busy || result.job_key != worker.unit_key ||
        result.slot != worker.unit.slot || result.rep != worker.unit.rep ||
        result.attempt != worker.unit.attempt) {
      // A worker answering off-script has lost the plot; recycle it and
      // recover whatever it was supposed to be computing.
      ::kill(worker.pid, SIGKILL);
      reap(worker, /*charge_attempt=*/true);
      return;
    }
    worker.busy = false;
    const auto it = jobs.find(worker.unit.job_id);
    if (it == jobs.end()) return;  // job cancelled while the unit was in flight
    ServeJob& job = it->second;
    if (job.slot_failed[result.slot] != 0) return;  // cell already failed
    auto& cell_metrics = job.metrics[result.slot * job.reps + result.rep];
    if (cell_metrics.has_value()) return;  // duplicate (late retry landed twice)
    cell_metrics = decode_metrics_payload(result.metrics_payload);
    if (--job.slot_remaining[result.slot] == 0) complete_slot(job, result.slot);
  };

  say("listening on " + options.socket_path + ": " + std::to_string(pool_size) +
      " workers, backlog " + std::to_string(backlog));

  try {
    {
      const std::vector<int> extra = child_close_list();
      for (ServeWorker& worker : workers) spawn_serve_worker(worker, workers, extra);
    }

    for (;;) {
      const bool draining = g_serve_drain_requested != 0;
      if (draining && jobs.empty()) break;

      // Keep the resident pool at strength while there is (or may soon be)
      // work; a drain still respawns, because admitted jobs must finish.
      if (!jobs.empty() || !ready.empty()) {
        std::optional<std::vector<int>> extra;
        for (ServeWorker& worker : workers) {
          if (worker.alive) continue;
          if (!extra) extra = child_close_list();
          spawn_serve_worker(worker, workers, *extra);
          say("respawned worker (pid " + std::to_string(worker.pid) + ")");
        }
      }

      // Dispatch released units to idle workers, loading the job into the
      // worker's warm cache first when the mirror says it is absent.
      const auto now = Clock::now();
      for (ServeWorker& worker : workers) {
        if (!worker.alive || worker.busy) continue;
        const auto unit = pop_ready(now);
        if (!unit) break;
        ServeJob& job = jobs.at(unit->job_id);
        try {
          if (std::find(worker.loaded.begin(), worker.loaded.end(), job.key) ==
              worker.loaded.end()) {
            if (worker.loaded.size() >= kWorkerJobCacheCap) worker.loaded.pop_front();
            writer.clear();
            encode_worker_load_job(writer, {job.key, job.ini_text});
            util::write_frame_zc(worker.cmd->write_fd(), writer.bytes());
            worker.loaded.push_back(job.key);
          }
          writer.clear();
          encode_worker_run_unit(writer, {job.key, unit->slot, unit->rep, unit->attempt});
          util::write_frame_zc(worker.cmd->write_fd(), writer.bytes());
        } catch (const IoError&) {
          // Worker died while idle (external kill): the attempt never
          // started, so it is not charged against the cell.
          ready.push_front(*unit);
          reap(worker, /*charge_attempt=*/false);
          continue;
        }
        worker.busy = true;
        worker.unit = *unit;
        worker.unit_key = job.key;
        worker.started = now;
      }

      // Poll timeout: nearest of unit deadline, backoff release, or a 200 ms
      // responsiveness cap (drain requests must not wait long).
      int timeout_ms = 200;
      const auto clamp_timeout = [&](Clock::time_point when) {
        const auto remaining =
            std::chrono::duration_cast<std::chrono::milliseconds>(when - Clock::now())
                .count();
        timeout_ms = std::max(
            0, std::min<int>(timeout_ms,
                             static_cast<int>(std::max<long long>(0, remaining))));
      };
      if (options.cell_timeout > 0.0) {
        for (const ServeWorker& worker : workers) {
          if (worker.alive && worker.busy) {
            clamp_timeout(worker.started +
                          std::chrono::duration_cast<Clock::duration>(
                              std::chrono::duration<double>(options.cell_timeout)));
          }
        }
      }
      for (const Unit& unit : ready) clamp_timeout(unit.release);

      std::vector<pollfd> fds;
      std::vector<ServeWorker*> worker_of;
      std::vector<std::uint64_t> job_of;
      fds.push_back({listen_fd, POLLIN, 0});
      worker_of.push_back(nullptr);
      job_of.push_back(0);
      for (ServeWorker& worker : workers) {
        if (!worker.alive) continue;
        fds.push_back({worker.res->read_fd(), POLLIN, 0});
        worker_of.push_back(&worker);
        job_of.push_back(0);
      }
      for (auto& [id, job] : jobs) {
        if (job.client_fd < 0 || job.client_dead) continue;
        fds.push_back({job.client_fd, POLLIN, 0});
        worker_of.push_back(nullptr);
        job_of.push_back(id);
      }

      const int rc = ::poll(fds.data(), static_cast<nfds_t>(fds.size()), timeout_ms);
      if (rc < 0 && errno != EINTR) {
        throw IoError(std::string("serve: poll failed: ") + std::strerror(errno));
      }

      if (rc > 0) {
        for (std::size_t i = 0; i < fds.size(); ++i) {
          if (fds[i].revents == 0) continue;
          if (fds[i].fd == listen_fd) {
            accept_client(draining);
            continue;
          }
          if (ServeWorker* worker = worker_of[i]; worker != nullptr) {
            if (!worker->alive) continue;  // reaped earlier this sweep
            bool dead = false;
            if ((fds[i].revents & POLLIN) != 0) {
              try {
                if (util::read_frame_into(worker->res->read_fd(), frame)) {
                  handle_worker_result(*worker);
                } else {
                  dead = true;
                }
              } catch (const IoError&) {
                dead = true;  // torn frame: the worker crashed mid-write
              } catch (const InputError&) {
                ::kill(worker->pid, SIGKILL);
                dead = true;  // undecodable payload: treat like a crash
              }
            } else if ((fds[i].revents & (POLLHUP | POLLERR | POLLNVAL)) != 0) {
              dead = true;
            }
            if (dead && worker->alive) reap(*worker, /*charge_attempt=*/true);
            continue;
          }
          // Client connection: submitters never speak after kSubmit, so any
          // readable event is a hangup (or a protocol breach) — cancel.
          if (const auto it = jobs.find(job_of[i]); it != jobs.end()) {
            it->second.client_dead = true;
          }
        }
      }

      // Per-unit wall-clock timeout: SIGKILL and requeue.
      if (options.cell_timeout > 0.0) {
        const auto deadline_now = Clock::now();
        for (ServeWorker& worker : workers) {
          if (!worker.alive || !worker.busy) continue;
          const double elapsed =
              std::chrono::duration<double>(deadline_now - worker.started).count();
          if (elapsed >= options.cell_timeout) {
            say("job " + std::to_string(worker.unit.job_id) + ": unit " +
                std::to_string(worker.unit.slot) + "/" +
                std::to_string(worker.unit.rep) + " timed out, killing worker");
            ::kill(worker.pid, SIGKILL);
            reap(worker, /*charge_attempt=*/true);
          }
        }
      }

      finalize_jobs();
    }

    // Drained: ask each worker to exit, then close the command pipes. A
    // worker wedged in a hung unit gets two seconds before SIGKILL.
    for (ServeWorker& worker : workers) {
      if (!worker.alive) continue;
      writer.clear();
      encode_worker_shutdown(writer);
      try {
        util::write_frame_zc(worker.cmd->write_fd(), writer.bytes());
      } catch (const IoError&) {
        // Already dead; collected below.
      }
      worker.cmd.reset();
    }
    const auto shutdown_deadline = Clock::now() + std::chrono::seconds(2);
    for (ServeWorker& worker : workers) {
      if (!worker.alive) continue;
      for (;;) {
        int status = 0;
        const pid_t reaped = ::waitpid(worker.pid, &status, WNOHANG);
        if (reaped == worker.pid || (reaped < 0 && errno != EINTR)) break;
        if (Clock::now() >= shutdown_deadline) {
          ::kill(worker.pid, SIGKILL);
          (void)util::wait_for_exit(worker.pid);
          break;
        }
        ::usleep(10 * 1000);
      }
      worker.alive = false;
    }
  } catch (...) {
    kill_all();
    for (auto& [id, job] : jobs) {
      if (job.client_fd >= 0) ::close(job.client_fd);
    }
    ::close(listen_fd);
    ::unlink(options.socket_path.c_str());
    throw;
  }

  ::close(listen_fd);
  ::unlink(options.socket_path.c_str());
  say("drained: served " + std::to_string(jobs_served) + " job(s)");
  return jobs_served;
}

ExperimentResult submit_job(const std::string& socket_path, const std::string& ini_text,
                            const ProgressFn& progress) {
  // Parse locally first: config mistakes surface with full locators without
  // a round-trip, and the local spec doubles as the result's spec (the same
  // deterministic parse the service and its workers run on the same bytes).
  ExperimentSpec spec =
      spec_from_ini(util::IniFile::parse(ini_text, "submitted config"));

  util::SigpipeGuard sigpipe_guard;
  FdGuard fd(connect_to_service(socket_path));

  util::ByteWriter writer;
  encode_job_submit(writer, {ini_text});
  util::write_frame_zc(fd.get(), writer.bytes());

  std::string frame;
  std::optional<JobAccepted> accepted;
  std::vector<std::optional<CellResult>> cells;
  SweepHealth health;
  for (bool done = false; !done;) {
    if (!util::read_frame_into(fd.get(), frame)) {
      throw IoError("--submit: service closed the connection mid-job (did it crash?)");
    }
    switch (peek_job_frame(frame)) {
      case JobFrame::kBusy: {
        const JobBusy busy = decode_job_busy(frame);
        if (busy.draining != 0) {
          throw IoError("--submit: service at '" + socket_path +
                        "' is draining and no longer admits jobs");
        }
        throw IoError("--submit: service busy: " + std::to_string(busy.in_service) +
                      " job(s) in service (backlog " + std::to_string(busy.backlog) +
                      ") — retry later");
      }
      case JobFrame::kError:
        throw InputError("--submit: service rejected the config: " +
                         decode_job_error(frame).message);
      case JobFrame::kAccepted: {
        accepted = decode_job_accepted(frame);
        cells.assign(accepted->cells_total, std::nullopt);
        break;
      }
      case JobFrame::kCell: {
        require_input(accepted.has_value(), "--submit: cell frame before acceptance");
        const JobCell cell_frame = decode_job_cell(frame);
        require_input(cell_frame.slot < cells.size(),
                      "--submit: cell frame for out-of-range slot");
        cells[cell_frame.slot] = decode_cell(cell_frame.cell_payload);
        if (progress) {
          progress(cell_frame.cells_done, cell_frame.cells_total,
                   *cells[cell_frame.slot]);
        }
        break;
      }
      case JobFrame::kDone: {
        require_input(accepted.has_value(), "--submit: done frame before acceptance");
        const JobDone job_done = decode_job_done(frame);
        health.completed_cells = job_done.completed_cells;
        health.failed_cells = job_done.failed_cells;
        health.retries = job_done.retries;
        health.workers = job_done.workers;
        done = true;
        break;
      }
      default:
        throw IoError("--submit: unexpected frame from service");
    }
  }

  ExperimentResult result;
  result.spec = std::move(spec);
  result.health = health;
  result.cells.reserve(cells.size());
  for (auto& cell : cells) {
    require_input(cell.has_value(), "--submit: job finished with missing cells");
    result.cells.push_back(std::move(*cell));
  }
  return result;
}

}  // namespace e2c::exp
