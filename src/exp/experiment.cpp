#include "exp/experiment.hpp"

#include <cstring>
#include <future>
#include <map>
#include <memory>
#include <optional>

#include "exp/journal.hpp"
#include "exp/process_pool.hpp"
#include "exp/scenario.hpp"
#include "exp/sim_pool.hpp"
#include "sched/registry.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/string_util.hpp"
#include "util/thread_pool.hpp"

namespace e2c::exp {

const char* cell_status_name(CellStatus status) noexcept {
  return status == CellStatus::kOk ? "ok" : "failed";
}

const char* backend_name(Backend backend) noexcept {
  return backend == Backend::kThreads ? "threads" : "procs";
}

Backend parse_backend(const std::string& name) {
  if (util::iequals(name, "threads")) return Backend::kThreads;
  if (util::iequals(name, "procs")) return Backend::kProcs;
  std::string message = "unknown experiment backend: '" + name + "'";
  if (const auto suggestion = util::nearest_match(name, {"threads", "procs"})) {
    message += " — did you mean '" + *suggestion + "'?";
  }
  message += " (valid: threads | procs)";
  throw InputError(message);
}

double CellResult::mean_of(double (*field)(const reports::Metrics&)) const {
  if (runs.empty()) return 0.0;
  double total = 0.0;
  for (const reports::Metrics& metrics : runs) total += field(metrics);
  return total / static_cast<double>(runs.size());
}

double CellResult::mean_completion_percent() const {
  return mean_of([](const reports::Metrics& m) { return m.completion_percent; });
}

double CellResult::ci95_completion_percent() const {
  std::vector<double> values;
  values.reserve(runs.size());
  for (const reports::Metrics& metrics : runs) values.push_back(metrics.completion_percent);
  return util::ci95_half_width(values);
}

double CellResult::mean_energy_joules() const {
  return mean_of([](const reports::Metrics& m) { return m.total_energy_joules; });
}

double CellResult::mean_type_fairness() const {
  return mean_of([](const reports::Metrics& m) { return m.type_fairness_jain; });
}

const CellResult& ExperimentResult::cell(const std::string& policy,
                                         workload::Intensity intensity) const {
  for (const CellResult& c : cells) {
    if (c.policy == policy && c.intensity == intensity) return c;
  }
  throw InputError("experiment: no cell for policy '" + policy + "' at intensity '" +
                   workload::intensity_name(intensity) + "'");
}

std::uint64_t workload_seed(std::uint64_t base_seed, workload::Intensity intensity,
                            std::size_t replication) noexcept {
  // SplitMix-style mixing keeps distinct (intensity, rep) pairs independent
  // while remaining a pure function of the inputs.
  std::uint64_t state = base_seed ^ (0x632BE59BD9B4E019ULL *
                                     (static_cast<std::uint64_t>(intensity) + 1));
  state ^= 0x9E3779B97F4A7C15ULL * (static_cast<std::uint64_t>(replication) + 1);
  return util::splitmix64(state);
}

namespace {

/// Generator config of the paired trace for one (intensity, replication) —
/// identical for every policy, and identical across data planes.
workload::GeneratorConfig generator_for(
    const ExperimentSpec& spec, const std::vector<hetero::MachineTypeId>& machine_types,
    workload::Intensity intensity, std::size_t replication) {
  workload::GeneratorConfig generator = workload::config_for_intensity(
      spec.system.eet, machine_types, intensity, spec.duration,
      workload_seed(spec.base_seed, intensity, replication));
  generator.arrival = spec.arrival;
  generator.deadline_factor_lo = spec.deadline_factor_lo;
  generator.deadline_factor_hi = spec.deadline_factor_hi;
  return generator;
}

reports::Metrics run_single(const ExperimentSpec& spec, const std::string& policy_name,
                            workload::Intensity intensity, std::size_t replication) {
  const auto machine_types = machine_types_of(spec.system);
  const workload::Workload trace = workload::generate_workload(
      spec.system.eet, generator_for(spec, machine_types, intensity, replication));

  sched::Simulation simulation(spec.system, sched::make_policy(policy_name));
  simulation.load(trace);
  simulation.run();
  return reports::compute_metrics(simulation);
}

/// One cell on the shared data plane: a single Simulation, reset between
/// replications, loading traces that are shared read-only across cells.
CellResult run_cell_shared(
    const std::shared_ptr<const sched::SystemConfig>& system,
    const std::string& policy_name, workload::Intensity intensity,
    const std::vector<std::shared_ptr<const workload::Workload>>& traces) {
  CellResult cell;
  cell.policy = policy_name;
  cell.intensity = intensity;
  cell.runs.reserve(traces.size());
  std::unique_ptr<sched::Simulation> simulation;
  for (const auto& trace : traces) {
    // A fresh policy instance per replication: policies may carry state.
    std::unique_ptr<sched::Policy> policy = sched::make_policy(policy_name);
    if (!simulation) {
      simulation = std::make_unique<sched::Simulation>(system, std::move(policy));
    } else {
      simulation->reset(std::move(policy));
    }
    simulation->load(trace);
    simulation->run();
    cell.runs.push_back(reports::compute_metrics(*simulation));
  }
  return cell;
}

void validate_spec(const ExperimentSpec& spec) {
  require_input(!spec.policies.empty(), "experiment: no policies");
  require_input(!spec.intensities.empty(), "experiment: no intensities");
  require_input(spec.replications > 0, "experiment: replications must be > 0");
  for (const std::string& policy : spec.policies) {
    require_input(sched::PolicyRegistry::instance().contains(policy),
                  "experiment: unknown policy '" + policy + "'");
  }
}

void fnv1a(std::uint64_t& hash, std::uint64_t value) noexcept {
  for (int shift = 0; shift < 64; shift += 8) {
    hash ^= (value >> shift) & 0xFF;
    hash *= 0x100000001B3ULL;
  }
}

void fnv1a_str(std::uint64_t& hash, const std::string& text) noexcept {
  fnv1a(hash, text.size());
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001B3ULL;
  }
}

std::uint64_t double_bits(double value) noexcept {
  std::uint64_t bits = 0;
  static_assert(sizeof bits == sizeof value);
  std::memcpy(&bits, &value, sizeof bits);
  return bits;
}

/// Runs the sweep on the in-process thread pool, skipping cells already in
/// \p resumed and journaling each freshly computed cell.
///
/// Work is sharded per (cell, replication): a 4x3 sweep is 120 independent
/// replication tasks rather than 12 coarse cell tasks, so the pool stays fed
/// at any worker count. Tasks are bulk-submitted (one lock per worker queue,
/// one wake) and their futures merge back into cells in deterministic
/// slot-major, replication-minor order — the result CSV is byte-identical
/// across worker counts and to the process backend.
ExperimentResult run_experiment_threads(const ExperimentSpec& spec,
                                        const RunOptions& options,
                                        std::map<std::size_t, CellResult> resumed,
                                        SweepJournal* journal) {
  ExperimentResult result;
  result.spec = spec;
  result.health.resumed_cells = resumed.size();
  const std::size_t intensity_count = spec.intensities.size();
  const std::size_t cells_total = spec.policies.size() * intensity_count;
  const std::size_t fresh_total = cells_total - resumed.size();
  const std::size_t reps = spec.replications;

  std::size_t fresh_done = 0;
  const auto record = [&](std::size_t slot, CellResult cell, bool fresh) {
    if (cell.status == CellStatus::kOk) {
      ++result.health.completed_cells;
    } else {
      ++result.health.failed_cells;
    }
    if (fresh && journal != nullptr) journal->append(slot, cell);
    result.cells.push_back(std::move(cell));
    if (fresh && options.progress) {
      options.progress(++fresh_done, fresh_total, result.cells.back());
    }
  };

  util::ThreadPool pool(options.workers);
  result.health.workers = pool.worker_count();

  // Build one replication task per fresh (slot, rep), slot-major. Both data
  // planes produce the same task shape; they differ only in how a task
  // provisions its trace and Simulation.
  using RepTask = std::function<reports::Metrics()>;
  std::vector<RepTask> tasks;
  tasks.reserve(fresh_total * reps);

  // kShared inputs, built once and aliased read-only by every task: one
  // SystemConfig for every leased Simulation, one trace per (intensity,
  // replication) for every policy. Declared at this scope so they outlive
  // the futures.
  std::shared_ptr<const sched::SystemConfig> system;
  std::vector<std::vector<std::shared_ptr<const workload::Workload>>> traces;
  if (options.plane == DataPlane::kShared) {
    system = std::make_shared<const sched::SystemConfig>(spec.system);
    const auto machine_types = machine_types_of(spec.system);
    traces.reserve(intensity_count);
    for (workload::Intensity intensity : spec.intensities) {
      std::vector<std::shared_ptr<const workload::Workload>> per_rep;
      per_rep.reserve(reps);
      for (std::size_t rep = 0; rep < reps; ++rep) {
        per_rep.push_back(std::make_shared<const workload::Workload>(
            workload::generate_workload(spec.system.eet,
                                        generator_for(spec, machine_types, intensity, rep))));
      }
      traces.push_back(std::move(per_rep));
    }
  }

  std::size_t slot = 0;
  for (const std::string& policy : spec.policies) {
    for (std::size_t i = 0; i < intensity_count; ++i, ++slot) {
      if (resumed.count(slot) != 0) continue;
      const workload::Intensity intensity = spec.intensities[i];
      for (std::size_t rep = 0; rep < reps; ++rep) {
        if (options.plane == DataPlane::kShared) {
          tasks.push_back([system, policy, trace = traces[i][rep]] {
            sched::Simulation& simulation =
                lease_simulation(system, sched::make_policy(policy));
            simulation.load(trace);
            simulation.run();
            return reports::compute_metrics(simulation);
          });
        } else {
          tasks.push_back([&spec, policy, intensity, rep] {
            return run_single(spec, policy, intensity, rep);
          });
        }
      }
    }
  }
  std::vector<std::future<reports::Metrics>> futures = pool.submit_bulk(std::move(tasks));

  // Merge replications back into cells in slot order. A replication that
  // threw marks its cell failed (empty runs, status row) and the sweep keeps
  // going — the threads backend degrades exactly like the procs backend
  // instead of aborting the whole sweep out of future::get().
  result.cells.reserve(cells_total);
  std::size_t next_future = 0;
  slot = 0;
  for (const std::string& policy : spec.policies) {
    for (std::size_t i = 0; i < intensity_count; ++i, ++slot) {
      if (auto found = resumed.find(slot); found != resumed.end()) {
        record(slot, std::move(found->second), /*fresh=*/false);
        continue;
      }
      CellResult cell;
      cell.policy = policy;
      cell.intensity = spec.intensities[i];
      cell.runs.reserve(reps);
      bool threw = false;
      for (std::size_t rep = 0; rep < reps; ++rep) {
        try {
          reports::Metrics metrics = futures[next_future + rep].get();
          if (!threw) cell.runs.push_back(std::move(metrics));
        } catch (...) {
          threw = true;
        }
      }
      next_future += reps;
      if (threw) {
        cell.runs.clear();
        cell.status = CellStatus::kFailed;
      }
      record(slot, std::move(cell), /*fresh=*/true);
    }
  }
  return result;
}

}  // namespace

std::uint64_t spec_digest(const ExperimentSpec& spec) noexcept {
  std::uint64_t hash = 0xCBF29CE484222325ULL;  // FNV-1a offset basis
  fnv1a(hash, spec.policies.size());
  for (const std::string& policy : spec.policies) fnv1a_str(hash, policy);
  fnv1a(hash, spec.intensities.size());
  for (const workload::Intensity intensity : spec.intensities) {
    fnv1a(hash, static_cast<std::uint64_t>(intensity));
  }
  fnv1a(hash, spec.replications);
  fnv1a(hash, double_bits(spec.duration));
  fnv1a(hash, spec.base_seed);
  fnv1a(hash, static_cast<std::uint64_t>(spec.arrival));
  fnv1a(hash, double_bits(spec.deadline_factor_lo));
  fnv1a(hash, double_bits(spec.deadline_factor_hi));
  // System shape and the fault/recovery knobs that change results; not a
  // full config fingerprint, but enough to reject resuming a different
  // sweep by accident.
  fnv1a(hash, spec.system.machines.size());
  fnv1a(hash, spec.system.machine_queue_capacity);
  fnv1a(hash, spec.system.faults.enabled ? 1 : 0);
  if (spec.system.faults.enabled) {
    fnv1a(hash, double_bits(spec.system.faults.mtbf));
    fnv1a(hash, double_bits(spec.system.faults.mttr));
    fnv1a(hash, spec.system.faults.seed);
  }
  return hash;
}

namespace detail {

workload::Workload generate_trace(const ExperimentSpec& spec,
                                  const std::vector<hetero::MachineTypeId>& machine_types,
                                  workload::Intensity intensity,
                                  std::size_t replication) {
  return workload::generate_workload(
      spec.system.eet, generator_for(spec, machine_types, intensity, replication));
}

CellResult compute_cell(const ExperimentSpec& spec, const std::string& policy,
                        workload::Intensity intensity) {
  const auto system = std::make_shared<const sched::SystemConfig>(spec.system);
  const auto machine_types = machine_types_of(spec.system);
  std::vector<std::shared_ptr<const workload::Workload>> traces;
  traces.reserve(spec.replications);
  for (std::size_t rep = 0; rep < spec.replications; ++rep) {
    traces.push_back(std::make_shared<const workload::Workload>(
        workload::generate_workload(spec.system.eet,
                                    generator_for(spec, machine_types, intensity, rep))));
  }
  return run_cell_shared(system, policy, intensity, traces);
}

}  // namespace detail

ExperimentResult run_experiment(const ExperimentSpec& spec, const RunOptions& options) {
  validate_spec(spec);
  require_input(options.cell_timeout >= 0.0, "experiment: cell_timeout must be >= 0");
  require_input(!options.resume || !options.journal_path.empty(),
                "experiment: resume needs a journal path");

  const std::size_t cells_total = spec.policies.size() * spec.intensities.size();
  const std::uint64_t digest = spec_digest(spec);

  std::map<std::size_t, CellResult> resumed;
  std::optional<SweepJournal> journal;
  if (!options.journal_path.empty()) {
    if (options.resume) {
      JournalContents contents = read_journal(options.journal_path);
      require_input(contents.digest == digest,
                    "experiment: journal '" + options.journal_path +
                        "' records a different sweep (spec digest mismatch); "
                        "refusing to merge its results");
      require_input(contents.cells_total == cells_total,
                    "experiment: journal '" + options.journal_path +
                        "' records a different cell count");
      for (auto& [slot, cell] : contents.cells) {
        // Failed cells get another chance on resume; only completed cells
        // are skipped.
        if (cell.status == CellStatus::kOk && slot < cells_total) {
          resumed.emplace(slot, std::move(cell));
        }
      }
      journal.emplace(SweepJournal::append_to(options.journal_path, digest, cells_total));
    } else {
      journal.emplace(SweepJournal::create(options.journal_path, digest, cells_total));
    }
  }

  if (options.backend == Backend::kProcs) {
    return run_experiment_procs(spec, options, std::move(resumed),
                                journal ? &*journal : nullptr);
  }
  return run_experiment_threads(spec, options, std::move(resumed),
                                journal ? &*journal : nullptr);
}

ExperimentResult run_experiment(const ExperimentSpec& spec, std::size_t workers,
                                DataPlane plane, const ProgressFn& progress) {
  RunOptions options;
  options.workers = workers;
  options.plane = plane;
  options.progress = progress;
  return run_experiment(spec, options);
}

viz::BarChart completion_chart(const ExperimentResult& result, std::string title) {
  viz::BarChart chart;
  chart.title = std::move(title);
  for (workload::Intensity intensity : result.spec.intensities) {
    chart.groups.emplace_back(workload::intensity_name(intensity));
  }
  for (const std::string& policy : result.spec.policies) {
    viz::BarSeries series;
    series.name = policy;
    for (workload::Intensity intensity : result.spec.intensities) {
      series.values.push_back(result.cell(policy, intensity).mean_completion_percent());
    }
    chart.series.push_back(std::move(series));
  }
  return chart;
}

std::vector<std::vector<std::string>> result_csv(const ExperimentResult& result) {
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"policy", "intensity", "completion_percent_mean",
                  "completion_percent_ci95", "energy_joules_mean", "type_fairness_mean",
                  "replications", "status"});
  for (const CellResult& cell : result.cells) {
    rows.push_back({cell.policy, workload::intensity_name(cell.intensity),
                    util::format_fixed(cell.mean_completion_percent(), 2),
                    util::format_fixed(cell.ci95_completion_percent(), 2),
                    util::format_fixed(cell.mean_energy_joules(), 1),
                    util::format_fixed(cell.mean_type_fairness(), 4),
                    std::to_string(cell.runs.size()),
                    cell_status_name(cell.status)});
  }
  return rows;
}

}  // namespace e2c::exp
