#include "exp/experiment.hpp"

#include <future>
#include <memory>

#include "exp/scenario.hpp"
#include "sched/registry.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"
#include "util/string_util.hpp"
#include "util/thread_pool.hpp"

namespace e2c::exp {

double CellResult::mean_of(double (*field)(const reports::Metrics&)) const {
  if (runs.empty()) return 0.0;
  double total = 0.0;
  for (const reports::Metrics& metrics : runs) total += field(metrics);
  return total / static_cast<double>(runs.size());
}

double CellResult::mean_completion_percent() const {
  return mean_of([](const reports::Metrics& m) { return m.completion_percent; });
}

double CellResult::ci95_completion_percent() const {
  std::vector<double> values;
  values.reserve(runs.size());
  for (const reports::Metrics& metrics : runs) values.push_back(metrics.completion_percent);
  return util::ci95_half_width(values);
}

double CellResult::mean_energy_joules() const {
  return mean_of([](const reports::Metrics& m) { return m.total_energy_joules; });
}

double CellResult::mean_type_fairness() const {
  return mean_of([](const reports::Metrics& m) { return m.type_fairness_jain; });
}

const CellResult& ExperimentResult::cell(const std::string& policy,
                                         workload::Intensity intensity) const {
  for (const CellResult& c : cells) {
    if (c.policy == policy && c.intensity == intensity) return c;
  }
  throw InputError("experiment: no cell for policy '" + policy + "' at intensity '" +
                   workload::intensity_name(intensity) + "'");
}

std::uint64_t workload_seed(std::uint64_t base_seed, workload::Intensity intensity,
                            std::size_t replication) noexcept {
  // SplitMix-style mixing keeps distinct (intensity, rep) pairs independent
  // while remaining a pure function of the inputs.
  std::uint64_t state = base_seed ^ (0x632BE59BD9B4E019ULL *
                                     (static_cast<std::uint64_t>(intensity) + 1));
  state ^= 0x9E3779B97F4A7C15ULL * (static_cast<std::uint64_t>(replication) + 1);
  return util::splitmix64(state);
}

namespace {

/// Generator config of the paired trace for one (intensity, replication) —
/// identical for every policy, and identical across data planes.
workload::GeneratorConfig generator_for(
    const ExperimentSpec& spec, const std::vector<hetero::MachineTypeId>& machine_types,
    workload::Intensity intensity, std::size_t replication) {
  workload::GeneratorConfig generator = workload::config_for_intensity(
      spec.system.eet, machine_types, intensity, spec.duration,
      workload_seed(spec.base_seed, intensity, replication));
  generator.arrival = spec.arrival;
  generator.deadline_factor_lo = spec.deadline_factor_lo;
  generator.deadline_factor_hi = spec.deadline_factor_hi;
  return generator;
}

reports::Metrics run_single(const ExperimentSpec& spec, const std::string& policy_name,
                            workload::Intensity intensity, std::size_t replication) {
  const auto machine_types = machine_types_of(spec.system);
  const workload::Workload trace = workload::generate_workload(
      spec.system.eet, generator_for(spec, machine_types, intensity, replication));

  sched::Simulation simulation(spec.system, sched::make_policy(policy_name));
  simulation.load(trace);
  simulation.run();
  return reports::compute_metrics(simulation);
}

/// One cell on the shared data plane: a single Simulation, reset between
/// replications, loading traces that are shared read-only across cells.
CellResult run_cell_shared(
    const std::shared_ptr<const sched::SystemConfig>& system,
    const std::string& policy_name, workload::Intensity intensity,
    const std::vector<std::shared_ptr<const workload::Workload>>& traces) {
  CellResult cell;
  cell.policy = policy_name;
  cell.intensity = intensity;
  cell.runs.reserve(traces.size());
  std::unique_ptr<sched::Simulation> simulation;
  for (const auto& trace : traces) {
    // A fresh policy instance per replication: policies may carry state.
    std::unique_ptr<sched::Policy> policy = sched::make_policy(policy_name);
    if (!simulation) {
      simulation = std::make_unique<sched::Simulation>(system, std::move(policy));
    } else {
      simulation->reset(std::move(policy));
    }
    simulation->load(trace);
    simulation->run();
    cell.runs.push_back(reports::compute_metrics(*simulation));
  }
  return cell;
}

}  // namespace

ExperimentResult run_experiment(const ExperimentSpec& spec, std::size_t workers,
                                DataPlane plane, const ProgressFn& progress) {
  require_input(!spec.policies.empty(), "experiment: no policies");
  require_input(!spec.intensities.empty(), "experiment: no intensities");
  require_input(spec.replications > 0, "experiment: replications must be > 0");
  for (const std::string& policy : spec.policies) {
    require_input(sched::PolicyRegistry::instance().contains(policy),
                  "experiment: unknown policy '" + policy + "'");
  }

  ExperimentResult result;
  result.spec = spec;
  const std::size_t cells_total = spec.policies.size() * spec.intensities.size();

  util::ThreadPool pool(workers);

  if (plane == DataPlane::kShared) {
    // Build the immutable inputs once: one SystemConfig for every
    // Simulation, one trace per (intensity, replication) for every policy.
    const auto system = std::make_shared<const sched::SystemConfig>(spec.system);
    const auto machine_types = machine_types_of(spec.system);
    std::vector<std::vector<std::shared_ptr<const workload::Workload>>> traces;
    traces.reserve(spec.intensities.size());
    for (workload::Intensity intensity : spec.intensities) {
      std::vector<std::shared_ptr<const workload::Workload>> per_rep;
      per_rep.reserve(spec.replications);
      for (std::size_t rep = 0; rep < spec.replications; ++rep) {
        per_rep.push_back(std::make_shared<const workload::Workload>(
            workload::generate_workload(spec.system.eet,
                                        generator_for(spec, machine_types, intensity, rep))));
      }
      traces.push_back(std::move(per_rep));
    }

    std::vector<std::future<CellResult>> futures;
    futures.reserve(cells_total);
    for (const std::string& policy : spec.policies) {
      for (std::size_t i = 0; i < spec.intensities.size(); ++i) {
        const workload::Intensity intensity = spec.intensities[i];
        futures.push_back(pool.submit([system, policy, intensity, &traces, i] {
          return run_cell_shared(system, policy, intensity, traces[i]);
        }));
      }
    }
    result.cells.reserve(futures.size());
    for (auto& future : futures) {
      result.cells.push_back(future.get());
      if (progress) progress(result.cells.size(), cells_total, result.cells.back());
    }
    return result;
  }

  struct PendingCell {
    CellResult cell;
    std::vector<std::future<reports::Metrics>> futures;
  };
  std::vector<PendingCell> pending;
  pending.reserve(cells_total);

  for (const std::string& policy : spec.policies) {
    for (workload::Intensity intensity : spec.intensities) {
      PendingCell cell;
      cell.cell.policy = policy;
      cell.cell.intensity = intensity;
      for (std::size_t rep = 0; rep < spec.replications; ++rep) {
        cell.futures.push_back(pool.submit([&spec, policy, intensity, rep] {
          return run_single(spec, policy, intensity, rep);
        }));
      }
      pending.push_back(std::move(cell));
    }
  }

  result.cells.reserve(pending.size());
  for (PendingCell& cell : pending) {
    cell.cell.runs.reserve(cell.futures.size());
    for (auto& future : cell.futures) cell.cell.runs.push_back(future.get());
    result.cells.push_back(std::move(cell.cell));
    if (progress) progress(result.cells.size(), cells_total, result.cells.back());
  }
  return result;
}

viz::BarChart completion_chart(const ExperimentResult& result, std::string title) {
  viz::BarChart chart;
  chart.title = std::move(title);
  for (workload::Intensity intensity : result.spec.intensities) {
    chart.groups.emplace_back(workload::intensity_name(intensity));
  }
  for (const std::string& policy : result.spec.policies) {
    viz::BarSeries series;
    series.name = policy;
    for (workload::Intensity intensity : result.spec.intensities) {
      series.values.push_back(result.cell(policy, intensity).mean_completion_percent());
    }
    chart.series.push_back(std::move(series));
  }
  return chart;
}

std::vector<std::vector<std::string>> result_csv(const ExperimentResult& result) {
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"policy", "intensity", "completion_percent_mean",
                  "completion_percent_ci95", "energy_joules_mean", "type_fairness_mean",
                  "replications"});
  for (const CellResult& cell : result.cells) {
    rows.push_back({cell.policy, workload::intensity_name(cell.intensity),
                    util::format_fixed(cell.mean_completion_percent(), 2),
                    util::format_fixed(cell.ci95_completion_percent(), 2),
                    util::format_fixed(cell.mean_energy_joules(), 1),
                    util::format_fixed(cell.mean_type_fairness(), 4),
                    std::to_string(cell.runs.size())});
  }
  return rows;
}

}  // namespace e2c::exp
