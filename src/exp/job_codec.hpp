/// \file job_codec.hpp
/// \brief Versioned binary codec for the resident sweep service's framed
/// protocol — the job-level sibling of cell_codec.
///
/// Two conversations share this vocabulary, both carried as length-prefixed
/// frames (util/framing) whose payload starts with [version u8][kind u8]:
///
///   client <-> service (Unix-domain socket):
///     kSubmit   client -> service   the sweep config as INI text
///     kAccepted service -> client   job admitted; id + shape echo
///     kBusy     service -> client   backlog full or draining; try later
///     kCell     service -> client   one finished cell (encode_cell payload)
///     kDone     service -> client   sweep health; the job is complete
///     kError    service -> client   config rejected; human-readable message
///
///   service <-> worker (pre-forked process, pipes):
///     kLoadJob    service -> worker  cache a job's spec (keyed by ini digest)
///     kRunUnit    service -> worker  compute one (cell, replication)
///     kShutdown   service -> worker  exit cleanly
///     kUnitResult worker -> service  one replication's Metrics payload
///
/// Both sides are builds of this repository on one machine (the process-pool
/// convention), so fields are native-endian and fixed-width; doubles travel
/// as raw bytes inside the nested cell/metrics payloads, which is what keeps
/// `--submit` results byte-identical to direct runs. decode_* reject wrong
/// versions, wrong kinds, truncated and overlong payloads with
/// e2c::InputError so a corrupt frame surfaces loudly, never as garbage.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "util/framing.hpp"

namespace e2c::exp {

/// Bump when any frame layout changes; decoders reject other versions so a
/// stale client or worker binary fails loudly instead of mis-parsing.
inline constexpr std::uint8_t kJobCodecVersion = 1;

/// Discriminator byte of every serve-protocol frame.
enum class JobFrame : std::uint8_t {
  kSubmit = 1,
  kAccepted = 2,
  kBusy = 3,
  kCell = 4,
  kDone = 5,
  kError = 6,
  kLoadJob = 7,
  kRunUnit = 8,
  kShutdown = 9,
  kUnitResult = 10,
};

/// Kind of a frame payload without consuming it; throws e2c::InputError on
/// an empty/wrong-version payload or an out-of-range kind byte.
[[nodiscard]] JobFrame peek_job_frame(std::string_view payload);

/// Stable key of a job's config text (FNV-1a): the warm-cache identity used
/// by service and workers. Two submissions with identical INI text share
/// cached specs, traces, and Simulation leases.
[[nodiscard]] std::uint64_t job_key_of(std::string_view ini_text) noexcept;

// ---- client <-> service --------------------------------------------------

struct JobSubmit {
  std::string ini_text;  ///< the full experiment config, verbatim
};

struct JobAccepted {
  std::uint64_t job_id = 0;       ///< service-assigned, unique per service run
  std::uint32_t cells_total = 0;  ///< policies x intensities
  std::uint32_t replications = 0;
  std::uint32_t workers = 0;      ///< resolved size of the persistent pool
};

struct JobBusy {
  std::uint32_t in_service = 0;  ///< jobs admitted and not yet finished
  std::uint32_t backlog = 0;     ///< admission bound the request exceeded
  std::uint8_t draining = 0;     ///< 1 when the service is shutting down
};

struct JobCell {
  std::uint32_t slot = 0;        ///< (policy-major, intensity-minor) index
  std::uint32_t cells_done = 0;  ///< finished cells of this job so far
  std::uint32_t cells_total = 0;
  std::string cell_payload;      ///< encode_cell bytes (bit-exact doubles)
};

struct JobDone {
  std::uint64_t completed_cells = 0;
  std::uint64_t failed_cells = 0;
  std::uint64_t retries = 0;
  std::uint64_t workers = 0;
};

struct JobError {
  std::string message;
};

// ---- service <-> worker --------------------------------------------------

struct WorkerLoadJob {
  std::uint64_t job_key = 0;  ///< job_key_of(ini_text); cache identity
  std::string ini_text;
};

struct WorkerRunUnit {
  std::uint64_t job_key = 0;
  std::uint32_t slot = 0;
  std::uint32_t rep = 0;
  std::uint32_t attempt = 0;  ///< 0 on first dispatch; for the crash hooks
};

struct WorkerUnitResult {
  std::uint64_t job_key = 0;
  std::uint32_t slot = 0;
  std::uint32_t rep = 0;
  std::uint32_t attempt = 0;
  std::string metrics_payload;  ///< encode_metrics_payload bytes
};

// Encoders append a complete payload to \p writer (recycled by the caller
// between frames); decoders parse a whole payload and reject leftovers.

void encode_job_submit(util::ByteWriter& writer, const JobSubmit& frame);
[[nodiscard]] JobSubmit decode_job_submit(std::string_view payload);

void encode_job_accepted(util::ByteWriter& writer, const JobAccepted& frame);
[[nodiscard]] JobAccepted decode_job_accepted(std::string_view payload);

void encode_job_busy(util::ByteWriter& writer, const JobBusy& frame);
[[nodiscard]] JobBusy decode_job_busy(std::string_view payload);

void encode_job_cell(util::ByteWriter& writer, const JobCell& frame);
[[nodiscard]] JobCell decode_job_cell(std::string_view payload);

void encode_job_done(util::ByteWriter& writer, const JobDone& frame);
[[nodiscard]] JobDone decode_job_done(std::string_view payload);

void encode_job_error(util::ByteWriter& writer, const JobError& frame);
[[nodiscard]] JobError decode_job_error(std::string_view payload);

void encode_worker_load_job(util::ByteWriter& writer, const WorkerLoadJob& frame);
[[nodiscard]] WorkerLoadJob decode_worker_load_job(std::string_view payload);

void encode_worker_run_unit(util::ByteWriter& writer, const WorkerRunUnit& frame);
[[nodiscard]] WorkerRunUnit decode_worker_run_unit(std::string_view payload);

void encode_worker_shutdown(util::ByteWriter& writer);

void encode_worker_unit_result(util::ByteWriter& writer, const WorkerUnitResult& frame);
[[nodiscard]] WorkerUnitResult decode_worker_unit_result(std::string_view payload);

}  // namespace e2c::exp
