/// \file process_pool.hpp
/// \brief Crash-isolated multi-process execution backend for sweeps.
///
/// One worker OS process per slot; (policy, intensity) cells are sharded
/// over a work queue and each finished cell travels back to the supervising
/// parent as one serialized frame. The parent is a single-threaded
/// supervisor: it dispatches cells, enforces per-cell wall-clock timeouts
/// (SIGKILL + requeue), detects crashes via pipe hangup + waitpid, retries
/// with exponential backoff up to `max_retries`, then records the cell as
/// failed and lets the rest of the sweep complete (graceful degradation).
/// SIGINT/SIGTERM (when `drain_on_signals` is set) stop dispatching, let
/// in-flight cells finish, flush the journal, and return partial results.
///
/// Cell computation inside a worker regenerates its traces from the spec (a
/// pure function of the seed), so fault-free sweeps are byte-identical to
/// the threads backend.
#pragma once

#include <cstddef>
#include <map>

#include "exp/experiment.hpp"
#include "exp/journal.hpp"

namespace e2c::exp {

/// Runs the sweep on forked worker processes. \p resumed maps slot index →
/// cell restored from the journal (merged into the result, not recomputed);
/// \p journal (may be null) receives each freshly completed or failed cell.
/// Called by run_experiment when options.backend == Backend::kProcs.
[[nodiscard]] ExperimentResult run_experiment_procs(
    const ExperimentSpec& spec, const RunOptions& options,
    std::map<std::size_t, CellResult> resumed, SweepJournal* journal);

}  // namespace e2c::exp
