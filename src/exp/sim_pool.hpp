/// \file sim_pool.hpp
/// \brief Worker-local Simulation leases for the sharded experiment plane.
///
/// The sharded sweep runs one task per (cell, replication). Building a
/// Simulation per replication would put an engine + machines + dense task
/// vectors allocation on every task and turn the sweep into cross-thread
/// malloc traffic; instead each pool worker keeps a thread-local cache of
/// Simulations keyed by (SystemConfig, policy mode) and leases one per
/// replication, reset(policy) between leases. reset() returns the engine to
/// its just-constructed state (PR 5's guarantee, proven by the plane
/// equivalence tests), so a leased engine is observationally identical to a
/// fresh one and results stay byte-identical across worker counts and
/// lease interleavings.
///
/// The cache key includes the policy mode because the machine-queue
/// capacity is baked in at construction (batch policies bounded, immediate
/// unbounded) and reset() refuses a mode change. Each entry keeps its
/// SystemConfig alive via shared_ptr; entries die with their worker thread
/// when the pool joins at the end of the sweep.
#pragma once

#include <memory>

#include "sched/simulation.hpp"

namespace e2c::exp {

/// Leases this thread's Simulation for \p config and the mode of \p policy:
/// an existing engine is reset(policy) in place, otherwise a new one is
/// constructed and cached. The reference stays valid for the current
/// replication only (the next lease on this thread may reset it).
[[nodiscard]] sched::Simulation& lease_simulation(
    const std::shared_ptr<const sched::SystemConfig>& config,
    std::unique_ptr<sched::Policy> policy);

/// Drops every cached Simulation of the calling thread keyed by \p config.
/// Sweep workers never need this (entries die with the worker thread), but
/// the resident serve workers live across jobs: when a worker evicts a job
/// from its warm cache it purges the job's leases too, so the lease cache
/// stays bounded by the job cache instead of growing with service lifetime.
void purge_simulations(const sched::SystemConfig* config) noexcept;

}  // namespace e2c::exp
