/// \file scenario.hpp
/// \brief The classroom scenarios of the paper's §4 assignment.
///
/// Two systems, matching the assignment setup and the quiz dimensions
/// (3-5 task types, 4 machines):
///  - homogeneous: four identical CPU machines (every EET row constant);
///  - heterogeneous: x86 CPU + GPU + FPGA + ASIC with an *inconsistent* EET
///    (each accelerator is best at different task types), which is the case
///    Table 1 says CloudSim/iCanCloud-style tools cannot model.
///
/// Task types follow the paper's IoT example: object detection, noise
/// removal, image enhancement, speech recognition, face recognition.
#pragma once

#include "sched/simulation.hpp"

namespace e2c::exp {

/// Four identical CPU machines; five task types with constant rows.
[[nodiscard]] sched::SystemConfig homogeneous_classroom(
    std::size_t machine_queue_capacity = 2);

/// x86-cpu / gpu / fpga / asic machines; five task types, inconsistent EET.
[[nodiscard]] sched::SystemConfig heterogeneous_classroom(
    std::size_t machine_queue_capacity = 2);

/// The machine-type id of each machine instance, for capacity calibration.
[[nodiscard]] std::vector<hetero::MachineTypeId> machine_types_of(
    const sched::SystemConfig& config);

}  // namespace e2c::exp
