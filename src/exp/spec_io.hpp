/// \file spec_io.hpp
/// \brief Experiment specs from INI config files — the researcher workflow
/// without writing C++.
///
/// Example config (see data/experiment_example.ini):
///
///   [system]
///   scenario = heterogeneous      ; or homogeneous, or eet = path/to.csv
///   queue_size = 2
///
///   [faults]                      ; optional; presence enables fault injection
///   mtbf = 100                    ; mean time between failures (s)
///   mttr = 5                      ; mean time to repair (s)
///   seed = 4199266839             ; master seed for the failure processes
///   trace = faults.csv            ; optional: trace-driven instead of stochastic
///   max_retries = 3               ; retries per aborted task
///   backoff = 1.0                 ; seconds before the first retry
///   backoff_factor = 2.0          ; backoff multiplier per retry
///   max_backoff = 300             ; ceiling (s) for any single backoff
///   enabled = true                ; set false to keep the section but opt out
///
///   [recovery]                    ; optional; needs [faults]
///   strategy = checkpoint         ; resubmit | checkpoint | replicate
///   checkpoint_interval = 0       ; τ (s); 0 = Young/Daly √(2·C·MTBF)
///   checkpoint_cost = 0.5         ; C (s) per checkpoint write
///   restart_cost = 0.5            ; R (s) to reload the last checkpoint
///   replicas = 2                  ; k copies for strategy = replicate
///
///   [io]                          ; optional; needs [recovery] strategy = checkpoint
///   bandwidth = 100e6             ; bytes/s of the shared checkpoint channel (required)
///   checkpoint_bytes = 0          ; image size per write; 0 = checkpoint_cost·bandwidth
///   restart_bytes = 0             ; image size per read; 0 = restart_cost·bandwidth
///   strategy = selfish            ; selfish | cooperative
///   max_writers = 1               ; concurrent-writer cap for cooperative
///
///   [sweep]
///   policies = FCFS, MECT, MM
///   intensities = low, medium, high
///   replications = 20
///   duration = 300
///   seed = 42
///   arrival = poisson
///   deadline_lo = 2.0
///   deadline_hi = 4.0
///
///   [output]
///   title = my experiment
///   csv = results.csv             ; optional
///   chart_svg = results.svg       ; optional
#pragma once

#include <optional>
#include <string>

#include "exp/experiment.hpp"
#include "util/ini.hpp"

namespace e2c::exp {

/// Output destinations of a config-driven experiment.
struct ExperimentOutputs {
  std::string title = "experiment";
  std::optional<std::string> csv_path;
  std::optional<std::string> chart_svg_path;
};

/// Builds an ExperimentSpec from a parsed config. Throws e2c::InputError on
/// missing/invalid fields (unknown scenario, unknown policy names are caught
/// later by run_experiment).
[[nodiscard]] ExperimentSpec spec_from_ini(const util::IniFile& ini);

/// Reads the [output] section.
[[nodiscard]] ExperimentOutputs outputs_from_ini(const util::IniFile& ini);

/// Runs an already-parsed config end to end — runs the sweep, writes the
/// configured outputs, and returns the result. Callers that need the
/// [output] section for their own reporting (e2c_experiment) parse the INI
/// once and pass it here instead of having the file re-read. \p progress
/// (optional) fires after each cell (see exp::ProgressFn).
[[nodiscard]] ExperimentResult run_experiment_file(const util::IniFile& ini,
                                                   std::size_t workers = 0,
                                                   const ProgressFn& progress = {});

/// Full-options variant: backend selection, per-cell timeouts, journal and
/// resume all come from \p options (e2c_experiment's flag surface).
[[nodiscard]] ExperimentResult run_experiment_file(const util::IniFile& ini,
                                                   const RunOptions& options);

/// Convenience: load a config file and run it end to end.
[[nodiscard]] ExperimentResult run_experiment_file(const std::string& path,
                                                   std::size_t workers = 0,
                                                   const ProgressFn& progress = {});

}  // namespace e2c::exp
