#include "exp/tenants.hpp"

#include <algorithm>

#include "exp/scenario.hpp"
#include "util/error.hpp"
#include "util/string_util.hpp"
#include "workload/generator.hpp"

namespace e2c::exp {

workload::Workload make_multi_tenant_workload(const sched::SystemConfig& system,
                                              const std::vector<TenantSpec>& tenants) {
  require_input(!tenants.empty(), "multi-tenant workload: at least one tenant required");
  const auto machine_types = machine_types_of(system);
  std::vector<workload::TaskDef> merged;
  for (std::size_t i = 0; i < tenants.size(); ++i) {
    const TenantSpec& tenant = tenants[i];
    require_input(tenant.rho > 0.0, "multi-tenant workload: tenant '" + tenant.name +
                                        "' offered load must be > 0");
    require_input(tenant.duration > 0.0, "multi-tenant workload: tenant '" +
                                             tenant.name + "' duration must be > 0");
    const auto config = workload::config_for_offered_load(
        system.eet, machine_types, tenant.rho, tenant.duration, tenant.seed);
    const workload::Workload part = workload::generate_workload(system.eet, config);
    merged.reserve(merged.size() + part.size());
    for (workload::TaskDef def : part.tasks()) {
      def.tenant = static_cast<std::uint32_t>(i);
      merged.push_back(def);
    }
  }
  // Merge by (arrival, tenant, per-tenant id) — a total order independent of
  // per-tenant trace sizes — then renumber dense so index == id inside the
  // simulation (the fast task_index path).
  std::stable_sort(merged.begin(), merged.end(),
                   [](const workload::TaskDef& a, const workload::TaskDef& b) {
                     if (a.arrival != b.arrival) return a.arrival < b.arrival;
                     if (a.tenant != b.tenant) return a.tenant < b.tenant;
                     return a.id < b.id;
                   });
  for (std::size_t j = 0; j < merged.size(); ++j) {
    merged[j].id = static_cast<workload::TaskId>(j);
  }
  return workload::Workload(std::move(merged));
}

std::vector<std::string> tenant_names(const std::vector<TenantSpec>& tenants) {
  std::vector<std::string> names;
  names.reserve(tenants.size());
  for (const TenantSpec& tenant : tenants) names.push_back(tenant.name);
  return names;
}

std::vector<TenantOutcome> tenant_outcomes(const sched::Simulation& simulation) {
  const std::vector<std::string>& names = simulation.tenant_names();
  const workload::TaskStateSoA& state = simulation.task_state();
  std::size_t count = names.size();
  for (std::size_t i = 0; i < state.size(); ++i) {
    count = std::max(count, static_cast<std::size_t>(state.tenant(i)) + 1);
  }
  std::vector<TenantOutcome> outcomes(std::max<std::size_t>(count, 1));
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    outcomes[i].name = i < names.size() ? names[i] : "tenant" + std::to_string(i);
  }
  for (std::size_t i = 0; i < state.size(); ++i) {
    TenantOutcome& outcome = outcomes[state.tenant(i)];
    // Replica clones fold into their tenant's waste but are not submissions.
    const bool is_clone =
        state.has_replica_column() && state.replica_of[i] != workload::kNoTaskId;
    if (!is_clone) ++outcome.tasks;
    if (state.completed(i)) ++outcome.completed;
    outcome.useful_seconds += state.useful_seconds[i];
    outcome.lost_seconds += state.lost_seconds[i];
    outcome.checkpoint_overhead_seconds += state.checkpoint_overhead_seconds[i];
    outcome.machine_seconds += state.machine_seconds[i];
    if (state.has_checkpoint_column()) outcome.checkpoints += state.checkpoint_times[i].size();
  }
  return outcomes;
}

std::vector<std::vector<std::string>> tenant_report_rows(
    const sched::Simulation& simulation) {
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"tenant", "tasks", "completed", "useful_s", "lost_s",
                  "checkpoint_overhead_s", "waste_s", "machine_s", "checkpoints"});
  for (const TenantOutcome& tenant : tenant_outcomes(simulation)) {
    rows.push_back({tenant.name, std::to_string(tenant.tasks),
                    std::to_string(tenant.completed),
                    util::format_fixed(tenant.useful_seconds, 3),
                    util::format_fixed(tenant.lost_seconds, 3),
                    util::format_fixed(tenant.checkpoint_overhead_seconds, 3),
                    util::format_fixed(tenant.waste_seconds(), 3),
                    util::format_fixed(tenant.machine_seconds, 3),
                    std::to_string(tenant.checkpoints)});
  }
  return rows;
}

}  // namespace e2c::exp
