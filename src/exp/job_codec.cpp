#include "exp/job_codec.hpp"

#include "util/error.hpp"

namespace e2c::exp {

namespace {

void put_header(util::ByteWriter& writer, JobFrame kind) {
  writer.u8(kJobCodecVersion);
  writer.u8(static_cast<std::uint8_t>(kind));
}

/// Consumes and validates the [version][kind] header.
util::ByteReader open_payload(std::string_view payload, JobFrame expected,
                              const char* what) {
  util::ByteReader reader(payload);
  require_input(reader.u8() == kJobCodecVersion,
                std::string(what) + ": unsupported job codec version");
  require_input(static_cast<JobFrame>(reader.u8()) == expected,
                std::string(what) + ": unexpected frame kind");
  return reader;
}

void close_payload(const util::ByteReader& reader, const char* what) {
  require_input(reader.exhausted(), std::string(what) + ": trailing bytes");
}

}  // namespace

JobFrame peek_job_frame(std::string_view payload) {
  util::ByteReader reader(payload);
  require_input(reader.u8() == kJobCodecVersion,
                "job frame: unsupported job codec version");
  const std::uint8_t kind = reader.u8();
  require_input(kind >= static_cast<std::uint8_t>(JobFrame::kSubmit) &&
                    kind <= static_cast<std::uint8_t>(JobFrame::kUnitResult),
                "job frame: unknown frame kind");
  return static_cast<JobFrame>(kind);
}

std::uint64_t job_key_of(std::string_view ini_text) noexcept {
  std::uint64_t hash = 0xCBF29CE484222325ULL;  // FNV-1a offset basis
  for (const char c : ini_text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

void encode_job_submit(util::ByteWriter& writer, const JobSubmit& frame) {
  put_header(writer, JobFrame::kSubmit);
  writer.str(frame.ini_text);
}

JobSubmit decode_job_submit(std::string_view payload) {
  auto reader = open_payload(payload, JobFrame::kSubmit, "submit frame");
  JobSubmit frame;
  frame.ini_text = reader.str();
  close_payload(reader, "submit frame");
  return frame;
}

void encode_job_accepted(util::ByteWriter& writer, const JobAccepted& frame) {
  put_header(writer, JobFrame::kAccepted);
  writer.u64(frame.job_id);
  writer.u32(frame.cells_total);
  writer.u32(frame.replications);
  writer.u32(frame.workers);
}

JobAccepted decode_job_accepted(std::string_view payload) {
  auto reader = open_payload(payload, JobFrame::kAccepted, "accepted frame");
  JobAccepted frame;
  frame.job_id = reader.u64();
  frame.cells_total = reader.u32();
  frame.replications = reader.u32();
  frame.workers = reader.u32();
  close_payload(reader, "accepted frame");
  return frame;
}

void encode_job_busy(util::ByteWriter& writer, const JobBusy& frame) {
  put_header(writer, JobFrame::kBusy);
  writer.u32(frame.in_service);
  writer.u32(frame.backlog);
  writer.u8(frame.draining);
}

JobBusy decode_job_busy(std::string_view payload) {
  auto reader = open_payload(payload, JobFrame::kBusy, "busy frame");
  JobBusy frame;
  frame.in_service = reader.u32();
  frame.backlog = reader.u32();
  frame.draining = reader.u8();
  close_payload(reader, "busy frame");
  return frame;
}

void encode_job_cell(util::ByteWriter& writer, const JobCell& frame) {
  put_header(writer, JobFrame::kCell);
  writer.u32(frame.slot);
  writer.u32(frame.cells_done);
  writer.u32(frame.cells_total);
  writer.str(frame.cell_payload);
}

JobCell decode_job_cell(std::string_view payload) {
  auto reader = open_payload(payload, JobFrame::kCell, "cell frame");
  JobCell frame;
  frame.slot = reader.u32();
  frame.cells_done = reader.u32();
  frame.cells_total = reader.u32();
  frame.cell_payload = reader.str();
  close_payload(reader, "cell frame");
  return frame;
}

void encode_job_done(util::ByteWriter& writer, const JobDone& frame) {
  put_header(writer, JobFrame::kDone);
  writer.u64(frame.completed_cells);
  writer.u64(frame.failed_cells);
  writer.u64(frame.retries);
  writer.u64(frame.workers);
}

JobDone decode_job_done(std::string_view payload) {
  auto reader = open_payload(payload, JobFrame::kDone, "done frame");
  JobDone frame;
  frame.completed_cells = reader.u64();
  frame.failed_cells = reader.u64();
  frame.retries = reader.u64();
  frame.workers = reader.u64();
  close_payload(reader, "done frame");
  return frame;
}

void encode_job_error(util::ByteWriter& writer, const JobError& frame) {
  put_header(writer, JobFrame::kError);
  writer.str(frame.message);
}

JobError decode_job_error(std::string_view payload) {
  auto reader = open_payload(payload, JobFrame::kError, "error frame");
  JobError frame;
  frame.message = reader.str();
  close_payload(reader, "error frame");
  return frame;
}

void encode_worker_load_job(util::ByteWriter& writer, const WorkerLoadJob& frame) {
  put_header(writer, JobFrame::kLoadJob);
  writer.u64(frame.job_key);
  writer.str(frame.ini_text);
}

WorkerLoadJob decode_worker_load_job(std::string_view payload) {
  auto reader = open_payload(payload, JobFrame::kLoadJob, "load-job frame");
  WorkerLoadJob frame;
  frame.job_key = reader.u64();
  frame.ini_text = reader.str();
  close_payload(reader, "load-job frame");
  return frame;
}

void encode_worker_run_unit(util::ByteWriter& writer, const WorkerRunUnit& frame) {
  put_header(writer, JobFrame::kRunUnit);
  writer.u64(frame.job_key);
  writer.u32(frame.slot);
  writer.u32(frame.rep);
  writer.u32(frame.attempt);
}

WorkerRunUnit decode_worker_run_unit(std::string_view payload) {
  auto reader = open_payload(payload, JobFrame::kRunUnit, "run-unit frame");
  WorkerRunUnit frame;
  frame.job_key = reader.u64();
  frame.slot = reader.u32();
  frame.rep = reader.u32();
  frame.attempt = reader.u32();
  close_payload(reader, "run-unit frame");
  return frame;
}

void encode_worker_shutdown(util::ByteWriter& writer) {
  put_header(writer, JobFrame::kShutdown);
}

void encode_worker_unit_result(util::ByteWriter& writer,
                               const WorkerUnitResult& frame) {
  put_header(writer, JobFrame::kUnitResult);
  writer.u64(frame.job_key);
  writer.u32(frame.slot);
  writer.u32(frame.rep);
  writer.u32(frame.attempt);
  writer.str(frame.metrics_payload);
}

WorkerUnitResult decode_worker_unit_result(std::string_view payload) {
  auto reader = open_payload(payload, JobFrame::kUnitResult, "unit-result frame");
  WorkerUnitResult frame;
  frame.job_key = reader.u64();
  frame.slot = reader.u32();
  frame.rep = reader.u32();
  frame.attempt = reader.u32();
  frame.metrics_payload = reader.str();
  close_payload(reader, "unit-result frame");
  return frame;
}

}  // namespace e2c::exp
