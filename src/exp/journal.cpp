#include "exp/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "exp/cell_codec.hpp"
#include "util/error.hpp"
#include "util/framing.hpp"
#include "util/string_util.hpp"

namespace e2c::exp {

namespace {

constexpr std::string_view kHeaderTag = "e2c-sweep-journal v1 ";

std::string header_line(std::uint64_t digest, std::size_t cells_total) {
  char line[96];
  std::snprintf(line, sizeof line, "e2c-sweep-journal v1 digest=%016llx cells=%zu\n",
                static_cast<unsigned long long>(digest), cells_total);
  return line;
}

void write_fsync(int fd, const std::string& data, const char* what) {
  const char* cursor = data.data();
  std::size_t remaining = data.size();
  while (remaining > 0) {
    const ssize_t written = ::write(fd, cursor, remaining);
    if (written < 0) {
      if (errno == EINTR) continue;
      throw IoError(std::string(what) + ": write failed: " + std::strerror(errno));
    }
    cursor += written;
    remaining -= static_cast<std::size_t>(written);
  }
  if (::fsync(fd) != 0) {
    throw IoError(std::string(what) + ": fsync failed: " + std::strerror(errno));
  }
}

}  // namespace

SweepJournal SweepJournal::create(const std::string& path, std::uint64_t digest,
                                  std::size_t cells_total) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    throw IoError("journal: cannot create '" + path + "': " + std::strerror(errno));
  }
  SweepJournal journal(fd);
  write_fsync(fd, header_line(digest, cells_total), "journal");
  return journal;
}

SweepJournal SweepJournal::append_to(const std::string& path, std::uint64_t digest,
                                     std::size_t cells_total) {
  // Validates the header the same way read_journal does, so an append handle
  // can never extend a journal from a different sweep.
  const JournalContents contents = read_journal(path);
  require_input(contents.digest == digest,
                "journal '" + path + "': spec digest mismatch");
  require_input(contents.cells_total == cells_total,
                "journal '" + path + "': cell count mismatch");
  const int fd = ::open(path.c_str(), O_WRONLY | O_APPEND);
  if (fd < 0) {
    throw IoError("journal: cannot append to '" + path + "': " + std::strerror(errno));
  }
  return SweepJournal(fd);
}

void SweepJournal::append(std::size_t slot, const CellResult& cell) {
  std::string line = "cell " + std::to_string(slot) + " " +
                     util::hex_encode(encode_cell(cell)) + "\n";
  write_fsync(fd_, line, "journal");
}

SweepJournal::SweepJournal(SweepJournal&& other) noexcept
    : fd_(other.fd_) {
  other.fd_ = -1;
}

SweepJournal::~SweepJournal() {
  if (fd_ >= 0) ::close(fd_);
}

JournalContents read_journal(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) throw IoError("journal: cannot read '" + path + "'");
  std::ostringstream buffer;
  buffer << file.rdbuf();
  const std::string text = buffer.str();

  JournalContents contents;
  std::size_t offset = 0;
  bool saw_header = false;
  while (offset < text.size()) {
    const std::size_t newline = text.find('\n', offset);
    const bool complete = newline != std::string::npos;
    const std::string_view line(text.data() + offset,
                                (complete ? newline : text.size()) - offset);
    const std::size_t next = complete ? newline + 1 : text.size();
    const bool is_last = next >= text.size();

    if (!saw_header) {
      // The header is written in one fsync'd write before any record; a
      // journal torn inside it is unusable and reported as malformed.
      require_input(util::starts_with(line, kHeaderTag),
                    "journal '" + path + "': missing header line");
      unsigned long long digest = 0;
      std::size_t cells = 0;
      if (std::sscanf(std::string(line).c_str(),
                      "e2c-sweep-journal v1 digest=%llx cells=%zu", &digest,
                      &cells) != 2) {
        throw InputError("journal '" + path + "': malformed header line");
      }
      contents.digest = digest;
      contents.cells_total = cells;
      saw_header = true;
      offset = next;
      continue;
    }

    bool parsed = false;
    if (util::starts_with(line, "cell ")) {
      const auto fields = util::split(line, ' ');
      if (fields.size() == 3) {
        const auto slot = util::parse_int(fields[1]);
        if (slot.has_value() && *slot >= 0) {
          try {
            CellResult cell = decode_cell(util::hex_decode(fields[2]));
            contents.cells.insert_or_assign(static_cast<std::size_t>(*slot),
                                            std::move(cell));
            parsed = true;
          } catch (const InputError&) {
            parsed = false;  // torn or corrupt payload
          }
        }
      }
    }
    if (!parsed) {
      // A torn final record is the expected SIGKILL artifact; corruption
      // anywhere else means the file is not append-only damage.
      require_input(is_last && !complete,
                    "journal '" + path + "': corrupt record (not a torn tail)");
    }
    offset = next;
  }
  require_input(saw_header, "journal '" + path + "': empty file");
  return contents;
}

}  // namespace e2c::exp
