/// \file serve.hpp
/// \brief Resident sweep service: `e2c_experiment --serve` and `--submit`.
///
/// The process backend (PR 7) made sweeps crash-isolated; the sharded plane
/// (PR 8) made them scale. Both still pay full process spawn plus
/// Simulation/arena warm-up on every invocation. The serve mode moves that
/// cost out of the request path: one long-running service listens on a
/// Unix-domain socket, keeps a persistent pool of pre-forked worker
/// processes, and shards each submitted sweep's (cell, replication) units
/// across them. Workers cache parsed specs, paired traces, and Simulation
/// leases keyed by the config text's digest, so a repeat submission runs
/// replications against warm engines — no fork, no arena rebuild, no trace
/// regeneration.
///
/// Supervision carries over from the process backend: per-unit wall-clock
/// timeouts (SIGKILL + requeue), crash detection via pipe hangup, retry
/// with exponential backoff, graceful degradation to failed cells, per-job
/// crash-safe journals, and a SIGTERM/SIGINT drain that finishes every
/// admitted job (journaling results as cells complete) before exiting 0.
/// Admission is a bounded queue: beyond `backlog` jobs in service, a submit
/// is answered with a busy frame and closed — the service never queues
/// unboundedly. Results stream back to each client as per-cell frames and
/// are byte-identical to a direct `--backend procs` run of the same config.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <string_view>

#include "exp/experiment.hpp"

namespace e2c::exp {

/// Everything `run_serve` needs. Defaults match the process backend's
/// supervision knobs.
struct ServeOptions {
  std::string socket_path;      ///< Unix-domain socket to listen on
  std::size_t workers = 0;      ///< persistent pool size; 0 = hardware concurrency
  std::size_t backlog = 4;      ///< max jobs in service before busy-reject
  double cell_timeout = 0.0;    ///< wall-clock budget (s) per work unit; 0 = off
  std::size_t max_retries = 2;  ///< crash/timeout requeues per unit before the cell fails
  double backoff_base = 0.05;   ///< delay (s) before the first requeue
  double backoff_factor = 2.0;  ///< multiplier per further requeue
  double max_backoff = 1.0;     ///< ceiling (s) for any single backoff
  /// Per-job crash-safe journals at "<prefix>.job<id>" (the PR-7 format,
  /// readable by exp::read_journal). Empty disables journaling.
  std::string journal_prefix;
  /// Install SIGINT/SIGTERM handlers that drain the service: stop admitting
  /// (busy frames carry the draining flag), finish every admitted job, then
  /// return. CLI-facing; library callers that own signals leave this off
  /// and stop the service by signalling the process themselves.
  bool drain_on_signals = true;
  /// Service log lines ("accepted job 3", "worker 2 crashed, requeued...").
  /// Null = silent.
  std::function<void(std::string_view)> log;
};

/// Runs the service until a drain signal arrives and every admitted job has
/// finished. Returns the number of jobs served to completion. Throws
/// e2c::InputError for an unusable socket path (a live service already
/// listening, or a non-socket file in the way) and e2c::IoError for system
/// failures. A stale socket file — left by a crashed service, nothing
/// listening — is removed and rebound automatically.
std::size_t run_serve(const ServeOptions& options);

/// Client half: submits \p ini_text (a full experiment config) to the
/// service at \p socket_path, streams per-cell results (firing \p progress
/// per finished cell, in completion order), and returns the assembled
/// result — cells in (policy-major, intensity-minor) order, byte-identical
/// in result_csv to a direct run of the same config. Throws e2c::InputError
/// when no service listens at the path or the service rejects the config,
/// and e2c::IoError when the service is busy (retryable) or dies mid-job.
[[nodiscard]] ExperimentResult submit_job(const std::string& socket_path,
                                          const std::string& ini_text,
                                          const ProgressFn& progress = {});

}  // namespace e2c::exp
