#include "exp/process_pool.hpp"

#include <poll.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "exp/cell_codec.hpp"
#include "util/error.hpp"
#include "util/framing.hpp"
#include "util/string_util.hpp"
#include "util/subprocess.hpp"
#include "util/thread_pool.hpp"

namespace e2c::exp {

namespace {

using Clock = std::chrono::steady_clock;

/// Dispatch frame slot value that tells a worker to exit cleanly.
constexpr std::uint32_t kTerminateSlot = 0xFFFFFFFFu;

/// One (policy, intensity) cell in (policy-major, intensity-minor) order.
struct Slot {
  std::string policy;
  workload::Intensity intensity = workload::Intensity::kLow;
};

std::vector<Slot> build_slots(const ExperimentSpec& spec) {
  std::vector<Slot> slots;
  slots.reserve(spec.policies.size() * spec.intensities.size());
  for (const std::string& policy : spec.policies) {
    for (const workload::Intensity intensity : spec.intensities) {
      slots.push_back({policy, intensity});
    }
  }
  return slots;
}

// ---- graceful drain on SIGINT/SIGTERM ----------------------------------

volatile sig_atomic_t g_drain_requested = 0;

extern "C" void e2c_drain_handler(int) { g_drain_requested = 1; }

/// Installs SIGINT/SIGTERM handlers that request a drain; restores the
/// previous dispositions on destruction. No SA_RESTART: poll() must return
/// EINTR so the supervisor notices the request promptly.
class ScopedDrainHandlers {
 public:
  explicit ScopedDrainHandlers(bool enable) : installed_(enable) {
    if (!installed_) return;
    g_drain_requested = 0;
    struct sigaction action {};
    action.sa_handler = e2c_drain_handler;
    sigemptyset(&action.sa_mask);
    action.sa_flags = 0;
    ::sigaction(SIGINT, &action, &old_int_);
    ::sigaction(SIGTERM, &action, &old_term_);
  }
  ~ScopedDrainHandlers() {
    if (!installed_) return;
    ::sigaction(SIGINT, &old_int_, nullptr);
    ::sigaction(SIGTERM, &old_term_, nullptr);
  }
  ScopedDrainHandlers(const ScopedDrainHandlers&) = delete;
  ScopedDrainHandlers& operator=(const ScopedDrainHandlers&) = delete;

 private:
  bool installed_;
  struct sigaction old_int_ {};
  struct sigaction old_term_ {};
};

// ---- worker side --------------------------------------------------------

/// Fault-injection hooks for tests and the CI crash lane, matched on
/// "POLICY/intensity" (e.g. "MECT/low"):
///   E2C_EXP_TEST_CRASH_CELL    raise(SIGKILL) on the cell's first attempt
///   E2C_EXP_TEST_HANG_CELL     loop in pause() forever (every attempt)
///   E2C_EXP_TEST_CELL_DELAY_MS sleep before computing any cell
bool cell_matches(const char* env, const Slot& slot) {
  if (env == nullptr) return false;
  return slot.policy + "/" + workload::intensity_name(slot.intensity) == env;
}

[[noreturn]] void worker_main(const ExperimentSpec& spec,
                              const std::vector<Slot>& slots, int cmd_fd,
                              int res_fd) {
  // Only the supervisor reacts to SIGINT/SIGTERM: a Ctrl-C reaching the
  // whole foreground process group must not kill in-flight cells mid-drain.
  ::signal(SIGINT, SIG_IGN);
  ::signal(SIGTERM, SIG_IGN);
  const char* crash_cell = std::getenv("E2C_EXP_TEST_CRASH_CELL");
  const char* hang_cell = std::getenv("E2C_EXP_TEST_HANG_CELL");
  const char* delay_ms = std::getenv("E2C_EXP_TEST_CELL_DELAY_MS");
  for (;;) {
    std::optional<std::string> frame;
    try {
      frame = util::read_frame(cmd_fd);
    } catch (...) {
      ::_exit(0);
    }
    if (!frame) ::_exit(0);  // supervisor closed the queue
    util::ByteReader reader(*frame);
    const std::uint32_t slot_index = reader.u32();
    if (slot_index == kTerminateSlot) ::_exit(0);
    const std::uint32_t attempt = reader.u32();
    const Slot& slot = slots[slot_index];
    if (attempt == 0 && cell_matches(crash_cell, slot)) ::raise(SIGKILL);
    if (cell_matches(hang_cell, slot)) {
      for (;;) ::pause();
    }
    if (delay_ms != nullptr) {
      if (const auto parsed = util::parse_int(delay_ms); parsed && *parsed > 0) {
        ::usleep(static_cast<useconds_t>(*parsed) * 1000);
      }
    }
    CellResult cell;
    try {
      cell = detail::compute_cell(spec, slot.policy, slot.intensity);
    } catch (...) {
      // A throwing cell is a crash as far as supervision is concerned: the
      // parent retries it and eventually records it failed.
      ::_exit(3);
    }
    cell.attempts = attempt + 1;
    util::ByteWriter writer;
    writer.u32(slot_index);
    writer.str(encode_cell(cell));
    try {
      util::write_frame(res_fd, writer.bytes());
    } catch (...) {
      ::_exit(0);  // supervisor went away
    }
  }
}

// ---- parent side --------------------------------------------------------

struct Worker {
  pid_t pid = -1;
  std::unique_ptr<util::Pipe> cmd;  ///< parent writes dispatch frames
  std::unique_ptr<util::Pipe> res;  ///< parent reads result frames
  bool alive = false;
  bool busy = false;
  std::uint32_t slot = 0;
  std::uint32_t attempt = 0;
  Clock::time_point started;
};

struct ReadyCell {
  std::uint32_t slot = 0;
  std::uint32_t attempt = 0;
  Clock::time_point release;  ///< backoff: not dispatchable before this
};

void spawn_worker(Worker& worker, std::vector<Worker>& workers,
                  const ExperimentSpec& spec, const std::vector<Slot>& slots) {
  worker.cmd = std::make_unique<util::Pipe>();
  worker.res = std::make_unique<util::Pipe>();
  const pid_t pid = ::fork();
  if (pid < 0) {
    throw IoError(std::string("process pool: fork failed: ") + std::strerror(errno));
  }
  if (pid == 0) {
    // Child: drop every other worker's pipe ends — a sibling holding a dead
    // worker's result-pipe write end would suppress the EOF the supervisor
    // uses for crash detection.
    for (Worker& other : workers) {
      if (&other == &worker || !other.cmd) continue;
      other.cmd.reset();
      other.res.reset();
    }
    worker.cmd->close_write();
    worker.res->close_read();
    worker_main(spec, slots, worker.cmd->read_fd(), worker.res->write_fd());
  }
  worker.pid = pid;
  worker.cmd->close_read();
  worker.res->close_write();
  worker.alive = true;
  worker.busy = false;
}

}  // namespace

ExperimentResult run_experiment_procs(const ExperimentSpec& spec,
                                      const RunOptions& options,
                                      std::map<std::size_t, CellResult> resumed,
                                      SweepJournal* journal) {
  const std::vector<Slot> slots = build_slots(spec);
  const std::size_t cells_total = slots.size();

  SweepHealth health;
  health.resumed_cells = resumed.size();
  health.completed_cells = resumed.size();  // resumed records are all ok

  std::vector<std::optional<CellResult>> results(cells_total);
  for (auto& [slot, cell] : resumed) results[slot] = std::move(cell);

  std::deque<ReadyCell> ready;
  const auto start = Clock::now();
  for (std::size_t slot = 0; slot < cells_total; ++slot) {
    if (!results[slot]) ready.push_back({static_cast<std::uint32_t>(slot), 0, start});
  }
  const std::size_t fresh_total = ready.size();
  std::size_t unresolved = fresh_total;
  std::size_t fresh_done = 0;

  ScopedDrainHandlers drain_handlers(options.drain_on_signals);
  util::SigpipeGuard sigpipe_guard;

  // Same normalization as the threads backend: 0 means hardware concurrency,
  // resolved in exactly one place so the reported count cannot disagree.
  std::size_t pool_size = util::ThreadPool::resolve_worker_count(options.workers);
  health.workers = pool_size;
  pool_size = std::min(pool_size, std::max<std::size_t>(fresh_total, 1));

  std::vector<Worker> workers(fresh_total == 0 ? 0 : pool_size);

  const auto record = [&](std::size_t slot, CellResult cell) {
    if (cell.status == CellStatus::kOk) {
      ++health.completed_cells;
    } else {
      ++health.failed_cells;
    }
    if (journal != nullptr) journal->append(slot, cell);
    results[slot] = std::move(cell);
    --unresolved;
    ++fresh_done;
    if (options.progress) options.progress(fresh_done, fresh_total, *results[slot]);
  };

  const auto handle_attempt_failure = [&](std::uint32_t slot, std::uint32_t attempt) {
    if (attempt < options.max_retries) {
      ++health.retries;
      const double backoff =
          std::min(options.max_backoff,
                   options.backoff_base * std::pow(options.backoff_factor,
                                                   static_cast<double>(attempt)));
      ready.push_back({slot, attempt + 1,
                       Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                          std::chrono::duration<double>(backoff))});
    } else {
      CellResult failed;
      failed.policy = slots[slot].policy;
      failed.intensity = slots[slot].intensity;
      failed.status = CellStatus::kFailed;
      failed.attempts = attempt + 1;
      record(slot, std::move(failed));
    }
  };

  /// Reaps a dead (or about-to-be-killed) worker; a cell in flight is
  /// requeued (or failed) unless the worker was idle.
  const auto reap = [&](Worker& worker, bool charge_attempt) {
    (void)util::wait_for_exit(worker.pid);
    worker.alive = false;
    const bool was_busy = worker.busy;
    worker.busy = false;
    worker.cmd.reset();
    worker.res.reset();
    if (was_busy && charge_attempt) handle_attempt_failure(worker.slot, worker.attempt);
  };

  const auto kill_all = [&] {
    for (Worker& worker : workers) {
      if (!worker.alive) continue;
      ::kill(worker.pid, SIGKILL);
      (void)util::wait_for_exit(worker.pid);
      worker.alive = false;
    }
  };

  try {
    for (Worker& worker : workers) {
      if (ready.size() <= static_cast<std::size_t>(&worker - workers.data())) break;
      spawn_worker(worker, workers, spec, slots);
    }

    while (unresolved > 0) {
      const bool draining = g_drain_requested != 0;
      if (draining) ready.clear();

      // Respawn dead workers while undispatched work remains.
      if (!draining && !ready.empty()) {
        std::size_t deficit = ready.size();
        for (const Worker& worker : workers) {
          if (worker.alive && !worker.busy) {
            if (deficit == 0) break;
            --deficit;
          }
        }
        for (Worker& worker : workers) {
          if (deficit == 0) break;
          if (!worker.alive) {
            spawn_worker(worker, workers, spec, slots);
            --deficit;
          }
        }
      }

      // Dispatch released cells to idle workers.
      const auto now = Clock::now();
      for (Worker& worker : workers) {
        if (!worker.alive || worker.busy) continue;
        const auto next = std::find_if(ready.begin(), ready.end(), [&](const ReadyCell& cell) {
          return cell.release <= now;
        });
        if (next == ready.end()) break;
        const ReadyCell cell = *next;
        ready.erase(next);
        util::ByteWriter dispatch;
        dispatch.u32(cell.slot);
        dispatch.u32(cell.attempt);
        try {
          util::write_frame(worker.cmd->write_fd(), dispatch.bytes());
        } catch (const IoError&) {
          // Worker died while idle (e.g. an external kill -9): the attempt
          // was never started, so it is not charged against the cell.
          ready.push_front(cell);
          reap(worker, /*charge_attempt=*/false);
          continue;
        }
        worker.busy = true;
        worker.slot = cell.slot;
        worker.attempt = cell.attempt;
        worker.started = now;
      }

      if (draining) {
        const bool any_busy = std::any_of(workers.begin(), workers.end(),
                                          [](const Worker& w) { return w.busy; });
        if (!any_busy) break;  // in-flight cells done; leave the rest unrun
      }

      // Poll timeout: the nearest of cell deadline, backoff release, or a
      // 200 ms responsiveness cap (drain requests must not wait long).
      int timeout_ms = 200;
      const auto clamp_timeout = [&](Clock::time_point when) {
        const auto remaining =
            std::chrono::duration_cast<std::chrono::milliseconds>(when - Clock::now())
                .count();
        timeout_ms = std::max(0, std::min<int>(timeout_ms, static_cast<int>(
                                                               std::max<long long>(0, remaining))));
      };
      if (options.cell_timeout > 0.0) {
        for (const Worker& worker : workers) {
          if (worker.alive && worker.busy) {
            clamp_timeout(worker.started + std::chrono::duration_cast<Clock::duration>(
                                               std::chrono::duration<double>(
                                                   options.cell_timeout)));
          }
        }
      }
      for (const ReadyCell& cell : ready) clamp_timeout(cell.release);

      std::vector<pollfd> fds;
      std::vector<Worker*> fd_owner;
      for (Worker& worker : workers) {
        if (!worker.alive) continue;
        fds.push_back({worker.res->read_fd(), POLLIN, 0});
        fd_owner.push_back(&worker);
      }
      const int rc = ::poll(fds.data(), static_cast<nfds_t>(fds.size()), timeout_ms);
      if (rc < 0 && errno != EINTR) {
        throw IoError(std::string("process pool: poll failed: ") + std::strerror(errno));
      }

      if (rc > 0) {
        for (std::size_t i = 0; i < fds.size(); ++i) {
          if (fds[i].revents == 0) continue;
          Worker& worker = *fd_owner[i];
          bool dead = false;
          if ((fds[i].revents & POLLIN) != 0) {
            try {
              const auto frame = util::read_frame(worker.res->read_fd());
              if (frame.has_value()) {
                util::ByteReader reader(*frame);
                const std::uint32_t slot = reader.u32();
                require(worker.busy && slot == worker.slot,
                        "process pool: result frame for unexpected slot");
                CellResult cell = decode_cell(reader.str());
                worker.busy = false;
                record(slot, std::move(cell));
              } else {
                dead = true;
              }
            } catch (const IoError&) {
              dead = true;  // torn frame: the worker crashed mid-write
            } catch (const InputError&) {
              dead = true;  // undecodable payload: treat like a crash
            }
          } else if ((fds[i].revents & (POLLHUP | POLLERR | POLLNVAL)) != 0) {
            dead = true;
          }
          if (dead) reap(worker, /*charge_attempt=*/true);
        }
      }

      // Per-cell wall-clock timeout: SIGKILL and requeue.
      if (options.cell_timeout > 0.0) {
        const auto deadline_now = Clock::now();
        for (Worker& worker : workers) {
          if (!worker.alive || !worker.busy) continue;
          const double elapsed =
              std::chrono::duration<double>(deadline_now - worker.started).count();
          if (elapsed >= options.cell_timeout) {
            ::kill(worker.pid, SIGKILL);
            reap(worker, /*charge_attempt=*/true);
          }
        }
      }
    }

    // Shut the pool down: ask nicely, then close the queue.
    for (Worker& worker : workers) {
      if (!worker.alive) continue;
      util::ByteWriter terminate;
      terminate.u32(kTerminateSlot);
      terminate.u32(0);
      try {
        util::write_frame(worker.cmd->write_fd(), terminate.bytes());
      } catch (const IoError&) {
        // Already dead; reaped below.
      }
      worker.cmd.reset();
    }
    for (Worker& worker : workers) {
      if (!worker.alive) continue;
      (void)util::wait_for_exit(worker.pid);
      worker.alive = false;
    }
  } catch (...) {
    kill_all();
    throw;
  }

  health.drained = g_drain_requested != 0;

  ExperimentResult result;
  result.spec = spec;
  result.health = health;
  result.cells.reserve(cells_total);
  for (std::size_t slot = 0; slot < cells_total; ++slot) {
    if (results[slot]) result.cells.push_back(std::move(*results[slot]));
  }
  return result;
}

}  // namespace e2c::exp
