/// \file cell_codec.hpp
/// \brief Binary serialization of CellResult for pipes and the sweep journal.
///
/// Worker processes ship each finished cell to the supervising parent as one
/// frame, and the journal persists the identical payload (hex-armored) so a
/// resumed sweep restores bit-exact metrics — every double travels as its
/// raw 8 bytes, never through a decimal print, which is what keeps resumed
/// and uninterrupted runs byte-identical in the result CSV.
#pragma once

#include <string>
#include <string_view>

#include "exp/experiment.hpp"

namespace e2c::exp {

/// Encodes a cell (policy, intensity, status, attempts, every Metrics field
/// of every replication) into a self-contained byte payload.
[[nodiscard]] std::string encode_cell(const CellResult& cell);

/// Inverse of encode_cell. Throws e2c::InputError on a truncated, overlong,
/// or wrong-version payload.
[[nodiscard]] CellResult decode_cell(std::string_view payload);

/// Encodes one replication's Metrics as a self-contained payload — the unit
/// the serve backend ships per (cell, replication) work item. Same field
/// layout (and the same bit-exact doubles guarantee) as the per-run records
/// inside encode_cell, with its own leading version byte.
[[nodiscard]] std::string encode_metrics_payload(const reports::Metrics& metrics);

/// Inverse of encode_metrics_payload. Throws e2c::InputError on a truncated,
/// overlong, or wrong-version payload.
[[nodiscard]] reports::Metrics decode_metrics_payload(std::string_view payload);

}  // namespace e2c::exp
