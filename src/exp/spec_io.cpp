#include "exp/spec_io.hpp"

#include "exp/scenario.hpp"
#include "fault/fault_model.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/string_util.hpp"
#include "viz/bar_chart_svg.hpp"

namespace e2c::exp {

namespace {

workload::Intensity parse_intensity(const std::string& name) {
  if (util::iequals(name, "low")) return workload::Intensity::kLow;
  if (util::iequals(name, "medium")) return workload::Intensity::kMedium;
  if (util::iequals(name, "high")) return workload::Intensity::kHigh;
  throw InputError("experiment config: unknown intensity '" + name + "'");
}

bool parse_flag(const std::string& value, const std::string& what) {
  if (util::iequals(value, "true") || util::iequals(value, "yes") ||
      util::iequals(value, "on") || value == "1") {
    return true;
  }
  if (util::iequals(value, "false") || util::iequals(value, "no") ||
      util::iequals(value, "off") || value == "0") {
    return false;
  }
  throw InputError("experiment config: " + what + " must be a boolean, got '" + value +
                   "'");
}

void faults_from_ini(const util::IniFile& ini, fault::FaultConfig& faults) {
  if (!ini.has_section("faults")) return;
  faults.enabled = true;
  if (const auto enabled = ini.get("faults", "enabled")) {
    faults.enabled = parse_flag(*enabled, "faults.enabled");
  }
  if (const auto trace = ini.get("faults", "trace")) {
    faults.mode = fault::FaultMode::kTrace;
    faults.trace = fault::load_fault_trace_csv(*trace);
  }
  // Value checks happen here, with the defining line in the message, so a
  // typo is reported when the config loads — not replications later
  // mid-sweep (FaultConfig::validate stays as the programmatic backstop).
  if (const auto mtbf = ini.get_double("faults", "mtbf")) {
    require_input(*mtbf > 0.0, "experiment config: faults.mtbf must be > 0 (" +
                                   ini.where("faults", "mtbf") + ")");
    faults.mtbf = *mtbf;
  }
  if (const auto mttr = ini.get_double("faults", "mttr")) {
    require_input(*mttr > 0.0, "experiment config: faults.mttr must be > 0 (" +
                                   ini.where("faults", "mttr") + ")");
    faults.mttr = *mttr;
  }
  if (const auto seed = ini.get_int("faults", "seed")) {
    faults.seed = static_cast<std::uint64_t>(*seed);
  }
  if (const auto retries = ini.get_int("faults", "max_retries")) {
    require_input(*retries >= 0, "experiment config: faults.max_retries must be >= 0 (" +
                                     ini.where("faults", "max_retries") + ")");
    faults.retry.max_retries = static_cast<std::size_t>(*retries);
  }
  if (const auto backoff = ini.get_double("faults", "backoff")) {
    require_input(*backoff >= 0.0, "experiment config: faults.backoff must be >= 0 (" +
                                       ini.where("faults", "backoff") + ")");
    faults.retry.backoff_base = *backoff;
  }
  if (const auto factor = ini.get_double("faults", "backoff_factor")) {
    require_input(*factor >= 1.0,
                  "experiment config: faults.backoff_factor must be >= 1 (" +
                      ini.where("faults", "backoff_factor") + ")");
    faults.retry.backoff_factor = *factor;
  }
  if (const auto cap = ini.get_double("faults", "max_backoff")) {
    require_input(*cap > 0.0, "experiment config: faults.max_backoff must be > 0 (" +
                                  ini.where("faults", "max_backoff") + ")");
    faults.retry.max_backoff = *cap;
  }
}

void recovery_from_ini(const util::IniFile& ini, fault::FaultConfig& faults,
                       std::size_t machine_count) {
  if (!ini.has_section("recovery")) return;
  require_input(ini.has_section("faults"),
                "experiment config: [recovery] needs a [faults] section — recovery "
                "strategies only act on injected failures");
  fault::RecoveryConfig& recovery = faults.recovery;
  if (const auto strategy = ini.get("recovery", "strategy")) {
    recovery.strategy = fault::parse_recovery_strategy(*strategy);
  }
  if (const auto interval = ini.get_double("recovery", "checkpoint_interval")) {
    require_input(*interval >= 0.0,
                  "experiment config: recovery.checkpoint_interval must be >= 0, 0 "
                  "derives the Young/Daly optimum (" +
                      ini.where("recovery", "checkpoint_interval") + ")");
    recovery.checkpoint_interval = *interval;
  }
  if (const auto cost = ini.get_double("recovery", "checkpoint_cost")) {
    require_input(*cost >= 0.0,
                  "experiment config: recovery.checkpoint_cost must be >= 0 (" +
                      ini.where("recovery", "checkpoint_cost") + ")");
    recovery.checkpoint_cost = *cost;
  }
  if (const auto cost = ini.get_double("recovery", "restart_cost")) {
    require_input(*cost >= 0.0,
                  "experiment config: recovery.restart_cost must be >= 0 (" +
                      ini.where("recovery", "restart_cost") + ")");
    recovery.restart_cost = *cost;
  }
  if (const auto replicas = ini.get_int("recovery", "replicas")) {
    require_input(*replicas >= 1, "experiment config: recovery.replicas must be >= 1 (" +
                                      ini.where("recovery", "replicas") + ")");
    require_input(static_cast<std::size_t>(*replicas) <= machine_count,
                  "experiment config: recovery.replicas (" + std::to_string(*replicas) +
                      ") exceed the machine count (" + std::to_string(machine_count) +
                      "); replicas must run on distinct machines (" +
                      ini.where("recovery", "replicas") + ")");
    recovery.replicas = static_cast<std::size_t>(*replicas);
  }
}

void io_from_ini(const util::IniFile& ini, fault::FaultConfig& faults) {
  if (!ini.has_section("io")) return;
  require_input(ini.has_section("recovery"),
                "experiment config: [io] needs a [recovery] section with the "
                "checkpoint strategy — the channel carries checkpoint/restart "
                "traffic only");
  fault::IoConfig& io = faults.io;
  io.enabled = true;
  const auto bandwidth = ini.get_double("io", "bandwidth");
  require_input(bandwidth.has_value(),
                "experiment config: io.bandwidth is required (bytes/second of the "
                "shared checkpoint channel)");
  require_input(*bandwidth > 0.0, "experiment config: io.bandwidth must be > 0 (" +
                                      ini.where("io", "bandwidth") + ")");
  io.bandwidth = *bandwidth;
  if (const auto bytes = ini.get_double("io", "checkpoint_bytes")) {
    require_input(*bytes >= 0.0,
                  "experiment config: io.checkpoint_bytes must be >= 0, 0 derives "
                  "checkpoint_cost x bandwidth (" +
                      ini.where("io", "checkpoint_bytes") + ")");
    io.checkpoint_bytes = *bytes;
  }
  if (const auto bytes = ini.get_double("io", "restart_bytes")) {
    require_input(*bytes >= 0.0,
                  "experiment config: io.restart_bytes must be >= 0, 0 derives "
                  "restart_cost x bandwidth (" +
                      ini.where("io", "restart_bytes") + ")");
    io.restart_bytes = *bytes;
  }
  if (const auto strategy = ini.get("io", "strategy")) {
    io.strategy = fault::parse_io_strategy(*strategy);
  }
  if (const auto writers = ini.get_int("io", "max_writers")) {
    require_input(*writers >= 1, "experiment config: io.max_writers must be >= 1 (" +
                                     ini.where("io", "max_writers") + ")");
    io.max_writers = static_cast<std::size_t>(*writers);
  }
}

}  // namespace

ExperimentSpec spec_from_ini(const util::IniFile& ini) {
  ExperimentSpec spec;

  // [system]
  const std::string scenario = ini.get_or("system", "scenario", "heterogeneous");
  const auto queue_size = ini.get_int("system", "queue_size");
  const std::size_t queue =
      queue_size ? static_cast<std::size_t>(*queue_size) : std::size_t{2};
  if (const auto eet_path = ini.get("system", "eet")) {
    spec.system =
        sched::make_default_system(hetero::EetMatrix::load_csv(*eet_path), queue);
  } else if (util::iequals(scenario, "heterogeneous")) {
    spec.system = heterogeneous_classroom(queue);
  } else if (util::iequals(scenario, "homogeneous")) {
    spec.system = homogeneous_classroom(queue);
  } else {
    throw InputError("experiment config: unknown scenario '" + scenario +
                     "' (heterogeneous | homogeneous | eet = file.csv)");
  }

  // [faults] — presence of the section enables fault injection unless
  // `enabled = false` opts out explicitly. Validate here so a bad value is
  // reported when the config loads, not replications later mid-sweep.
  faults_from_ini(ini, spec.system.faults);
  // [recovery] — checkpoint/replicate parameters; needs [faults] to matter.
  recovery_from_ini(ini, spec.system.faults, spec.system.machines.size());
  // [io] — shared checkpoint-I/O channel; needs [recovery]'s checkpoint
  // strategy (FaultConfig::validate enforces the combination).
  io_from_ini(ini, spec.system.faults);
  spec.system.faults.validate(spec.system.machines.size());

  // [sweep]
  spec.policies = ini.get_list("sweep", "policies");
  require_input(!spec.policies.empty(), "experiment config: sweep.policies is required");
  const auto intensities = ini.get_list("sweep", "intensities");
  require_input(!intensities.empty(), "experiment config: sweep.intensities is required");
  spec.intensities.clear();
  for (const std::string& name : intensities) {
    spec.intensities.push_back(parse_intensity(name));
  }
  if (const auto reps = ini.get_int("sweep", "replications")) {
    require_input(*reps > 0, "experiment config: replications must be > 0");
    spec.replications = static_cast<std::size_t>(*reps);
  }
  if (const auto duration = ini.get_double("sweep", "duration")) {
    require_input(*duration > 0, "experiment config: duration must be > 0");
    spec.duration = *duration;
  }
  if (const auto seed = ini.get_int("sweep", "seed")) {
    spec.base_seed = static_cast<std::uint64_t>(*seed);
  }
  if (const auto arrival = ini.get("sweep", "arrival")) {
    spec.arrival = workload::parse_arrival_kind(*arrival);
  }
  if (const auto lo = ini.get_double("sweep", "deadline_lo")) spec.deadline_factor_lo = *lo;
  if (const auto hi = ini.get_double("sweep", "deadline_hi")) spec.deadline_factor_hi = *hi;
  require_input(spec.deadline_factor_lo > 0 &&
                    spec.deadline_factor_hi >= spec.deadline_factor_lo,
                "experiment config: deadline factors must satisfy 0 < lo <= hi");
  return spec;
}

ExperimentOutputs outputs_from_ini(const util::IniFile& ini) {
  ExperimentOutputs outputs;
  outputs.title = ini.get_or("output", "title", "experiment");
  if (const auto csv = ini.get("output", "csv")) outputs.csv_path = *csv;
  if (const auto svg = ini.get("output", "chart_svg")) outputs.chart_svg_path = *svg;
  return outputs;
}

ExperimentResult run_experiment_file(const std::string& path, std::size_t workers,
                                     const ProgressFn& progress) {
  return run_experiment_file(util::IniFile::load(path), workers, progress);
}

ExperimentResult run_experiment_file(const util::IniFile& ini, std::size_t workers,
                                     const ProgressFn& progress) {
  RunOptions options;
  options.workers = workers;
  options.progress = progress;
  return run_experiment_file(ini, options);
}

ExperimentResult run_experiment_file(const util::IniFile& ini,
                                     const RunOptions& options) {
  const ExperimentSpec spec = spec_from_ini(ini);
  const ExperimentOutputs outputs = outputs_from_ini(ini);
  ExperimentResult result = run_experiment(spec, options);
  if (outputs.csv_path) {
    util::write_csv_file(*outputs.csv_path, result_csv(result));
  }
  if (outputs.chart_svg_path) {
    viz::save_bar_chart_svg(completion_chart(result, outputs.title),
                            *outputs.chart_svg_path);
  }
  return result;
}

}  // namespace e2c::exp
