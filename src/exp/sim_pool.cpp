#include "exp/sim_pool.hpp"

#include <algorithm>
#include <vector>

namespace e2c::exp {

namespace {

struct LeaseEntry {
  std::shared_ptr<const sched::SystemConfig> config;  ///< keeps the key alive
  sched::PolicyMode mode;
  std::unique_ptr<sched::Simulation> simulation;
};

/// A sweep uses one SystemConfig and at most two modes, so the cache is a
/// tiny linear-scanned vector, never a map. Thread-local: no locks, no
/// sharing; the worker owns its engines outright (CP.2).
std::vector<LeaseEntry>& lease_cache() {
  thread_local std::vector<LeaseEntry> cache;
  return cache;
}

}  // namespace

sched::Simulation& lease_simulation(
    const std::shared_ptr<const sched::SystemConfig>& config,
    std::unique_ptr<sched::Policy> policy) {
  std::vector<LeaseEntry>& cache = lease_cache();
  const sched::PolicyMode mode = policy->mode();
  for (LeaseEntry& entry : cache) {
    if (entry.config.get() == config.get() && entry.mode == mode) {
      entry.simulation->reset(std::move(policy));
      return *entry.simulation;
    }
  }
  cache.push_back(
      {config, mode, std::make_unique<sched::Simulation>(config, std::move(policy))});
  return *cache.back().simulation;
}

void purge_simulations(const sched::SystemConfig* config) noexcept {
  std::vector<LeaseEntry>& cache = lease_cache();
  cache.erase(std::remove_if(cache.begin(), cache.end(),
                             [config](const LeaseEntry& entry) {
                               return entry.config.get() == config;
                             }),
              cache.end());
}

}  // namespace e2c::exp
