/// \file journal.hpp
/// \brief Crash-safe sweep journal: append-only per-cell records, fsync'd.
///
/// Format (line-oriented text; binary payloads hex-armored):
///
///   e2c-sweep-journal v1 digest=<16 hex> cells=<N>
///   cell <slot> <hex of encode_cell payload>
///   cell <slot> <hex>
///   ...
///
/// `slot` is the cell's index in (policy-major, intensity-minor) order;
/// `digest` is exp::spec_digest of the sweep, so --resume refuses a journal
/// written by a different sweep. Every append is one write() followed by
/// fsync(), so a SIGKILL'd invocation leaves at worst one torn final line —
/// the reader drops a malformed last line and keeps everything before it.
/// When a slot appears more than once (a resumed run re-ran a failed cell),
/// the last record wins.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "exp/experiment.hpp"

namespace e2c::exp {

/// Append handle on a sweep journal. Move-only; closes the fd on destruction.
class SweepJournal {
 public:
  /// Creates (or truncates) \p path and writes a fresh header.
  [[nodiscard]] static SweepJournal create(const std::string& path,
                                           std::uint64_t digest,
                                           std::size_t cells_total);

  /// Opens an existing journal for appending after validating its header
  /// against \p digest / \p cells_total (the --resume path).
  [[nodiscard]] static SweepJournal append_to(const std::string& path,
                                              std::uint64_t digest,
                                              std::size_t cells_total);

  /// Appends one cell record: a single write() of the whole line, then
  /// fsync(). Throws e2c::IoError on failure.
  void append(std::size_t slot, const CellResult& cell);

  SweepJournal(SweepJournal&& other) noexcept;
  SweepJournal(const SweepJournal&) = delete;
  SweepJournal& operator=(const SweepJournal&) = delete;
  SweepJournal& operator=(SweepJournal&&) = delete;
  ~SweepJournal();

 private:
  explicit SweepJournal(int fd) noexcept : fd_(fd) {}

  int fd_ = -1;
};

/// Everything a journal recorded. `cells` holds the last record per slot.
struct JournalContents {
  std::uint64_t digest = 0;
  std::size_t cells_total = 0;
  std::map<std::size_t, CellResult> cells;
};

/// Parses a journal file. Throws e2c::IoError if unreadable and
/// e2c::InputError on a malformed header or corrupt interior record; a
/// torn final record (the crash case) is dropped silently.
[[nodiscard]] JournalContents read_journal(const std::string& path);

}  // namespace e2c::exp
