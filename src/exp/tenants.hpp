/// \file tenants.hpp
/// \brief Multi-tenant workloads: several independent tenants sharing one
/// machine set (and, with [io], one checkpoint-I/O channel).
///
/// The interference study (ROADMAP open item 4) needs several *tenants* —
/// independently generated workload streams — submitted to a single system so
/// their recovery traffic collides on the shared I/O channel. A tenant is a
/// (name, offered load, duration, seed) tuple; each generates its own trace,
/// every task is stamped with its tenant index, and the traces are merged
/// into one arrival-ordered workload with dense task ids. After the run the
/// waste decomposition (useful / lost / checkpoint overhead / machine
/// seconds) is re-aggregated per tenant, which is what the interference sweep
/// and the per-tenant report rows consume.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sched/simulation.hpp"
#include "workload/workload.hpp"

namespace e2c::exp {

/// One tenant: an independent workload stream against the shared system.
struct TenantSpec {
  std::string name;            ///< display name ("tenantA", a team, a lab)
  double rho = 1.0;            ///< offered load vs. the *whole* system's capacity
  core::SimTime duration = 100.0;  ///< arrival window [0, duration)
  std::uint64_t seed = 1;      ///< workload generator seed
};

/// Generates every tenant's trace and merges them into one workload: tasks
/// are stamped with their tenant index (position in \p tenants), sorted by
/// arrival and renumbered with dense ids 0..n-1. Throws e2c::InputError when
/// \p tenants is empty or a tenant's parameters are invalid.
[[nodiscard]] workload::Workload make_multi_tenant_workload(
    const sched::SystemConfig& system, const std::vector<TenantSpec>& tenants);

/// Display names of \p tenants, for Simulation::set_tenant_names.
[[nodiscard]] std::vector<std::string> tenant_names(
    const std::vector<TenantSpec>& tenants);

/// Per-tenant outcome aggregation — the waste invariant holds per tenant:
/// useful + lost + checkpoint_overhead == machine_seconds.
struct TenantOutcome {
  std::string name;
  std::size_t tasks = 0;      ///< submitted tasks (replica clones excluded)
  std::size_t completed = 0;  ///< finished on time
  double useful_seconds = 0.0;
  double lost_seconds = 0.0;
  double checkpoint_overhead_seconds = 0.0;
  double machine_seconds = 0.0;
  std::size_t checkpoints = 0;  ///< commits across the tenant's tasks

  /// Machine-seconds that bought nothing: lost work + checkpoint overhead.
  [[nodiscard]] double waste_seconds() const noexcept {
    return lost_seconds + checkpoint_overhead_seconds;
  }
};

/// Aggregates the finished simulation's task records by tenant index. Names
/// come from simulation.tenant_names(); tenants beyond the roster (or the
/// whole list, when no names were set) fall back to "tenant<i>". The result
/// always covers indices 0..max-tenant-seen.
[[nodiscard]] std::vector<TenantOutcome> tenant_outcomes(
    const sched::Simulation& simulation);

/// Tenant Report rows (header first): one row per tenant with the waste
/// decomposition — companion to the four report kinds in reports/report.hpp
/// for multi-tenant runs (e2c_run --tenant-report).
[[nodiscard]] std::vector<std::vector<std::string>> tenant_report_rows(
    const sched::Simulation& simulation);

}  // namespace e2c::exp
