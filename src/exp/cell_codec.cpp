#include "exp/cell_codec.hpp"

#include "util/error.hpp"
#include "util/framing.hpp"

namespace e2c::exp {

namespace {

/// Bump when the payload layout changes; decode rejects other versions so a
/// stale journal fails loudly instead of mis-parsing.
constexpr std::uint8_t kCellCodecVersion = 1;

void encode_doubles(util::ByteWriter& writer, const std::vector<double>& values) {
  writer.u32(static_cast<std::uint32_t>(values.size()));
  for (const double value : values) writer.f64(value);
}

std::vector<double> decode_doubles(util::ByteReader& reader) {
  const std::uint32_t count = reader.u32();
  std::vector<double> values;
  values.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) values.push_back(reader.f64());
  return values;
}

void encode_metrics(util::ByteWriter& writer, const reports::Metrics& m) {
  writer.u64(m.total_tasks);
  writer.u64(m.completed);
  writer.u64(m.cancelled);
  writer.u64(m.dropped);
  writer.u64(m.failed);
  writer.u64(m.requeued);
  writer.f64(m.completion_percent);
  writer.f64(m.cancelled_percent);
  writer.f64(m.dropped_percent);
  writer.f64(m.failed_percent);
  writer.f64(m.makespan);
  writer.f64(m.mean_wait);
  writer.f64(m.mean_response);
  writer.f64(m.total_energy_joules);
  writer.f64(m.energy_per_completed_task);
  writer.f64(m.dynamic_energy_joules);
  writer.f64(m.dynamic_energy_per_completed_task);
  encode_doubles(writer, m.machine_utilization);
  encode_doubles(writer, m.type_completion_rate);
  writer.f64(m.type_fairness_jain);
  writer.f64(m.lost_work_seconds);
  writer.f64(m.checkpoint_overhead_seconds);
  writer.f64(m.cancelled_replica_seconds);
  writer.u64(m.checkpoints_taken);
  writer.u64(m.replicas_cancelled);
}

reports::Metrics decode_metrics(util::ByteReader& reader) {
  reports::Metrics m;
  m.total_tasks = reader.u64();
  m.completed = reader.u64();
  m.cancelled = reader.u64();
  m.dropped = reader.u64();
  m.failed = reader.u64();
  m.requeued = reader.u64();
  m.completion_percent = reader.f64();
  m.cancelled_percent = reader.f64();
  m.dropped_percent = reader.f64();
  m.failed_percent = reader.f64();
  m.makespan = reader.f64();
  m.mean_wait = reader.f64();
  m.mean_response = reader.f64();
  m.total_energy_joules = reader.f64();
  m.energy_per_completed_task = reader.f64();
  m.dynamic_energy_joules = reader.f64();
  m.dynamic_energy_per_completed_task = reader.f64();
  m.machine_utilization = decode_doubles(reader);
  m.type_completion_rate = decode_doubles(reader);
  m.type_fairness_jain = reader.f64();
  m.lost_work_seconds = reader.f64();
  m.checkpoint_overhead_seconds = reader.f64();
  m.cancelled_replica_seconds = reader.f64();
  m.checkpoints_taken = reader.u64();
  m.replicas_cancelled = reader.u64();
  return m;
}

}  // namespace

std::string encode_cell(const CellResult& cell) {
  util::ByteWriter writer;
  writer.u8(kCellCodecVersion);
  writer.str(cell.policy);
  writer.u32(static_cast<std::uint32_t>(cell.intensity));
  writer.u8(cell.status == CellStatus::kOk ? 0 : 1);
  writer.u32(cell.attempts);
  writer.u32(static_cast<std::uint32_t>(cell.runs.size()));
  for (const reports::Metrics& m : cell.runs) encode_metrics(writer, m);
  return writer.take();
}

CellResult decode_cell(std::string_view payload) {
  util::ByteReader reader(payload);
  require_input(reader.u8() == kCellCodecVersion,
                "cell payload: unsupported codec version");
  CellResult cell;
  cell.policy = reader.str();
  const std::uint32_t intensity = reader.u32();
  require_input(intensity <= static_cast<std::uint32_t>(workload::Intensity::kHigh),
                "cell payload: intensity out of range");
  cell.intensity = static_cast<workload::Intensity>(intensity);
  cell.status = reader.u8() == 0 ? CellStatus::kOk : CellStatus::kFailed;
  cell.attempts = reader.u32();
  const std::uint32_t runs = reader.u32();
  cell.runs.reserve(runs);
  for (std::uint32_t i = 0; i < runs; ++i) cell.runs.push_back(decode_metrics(reader));
  require_input(reader.exhausted(), "cell payload: trailing bytes");
  return cell;
}

std::string encode_metrics_payload(const reports::Metrics& metrics) {
  util::ByteWriter writer;
  writer.u8(kCellCodecVersion);
  encode_metrics(writer, metrics);
  return writer.take();
}

reports::Metrics decode_metrics_payload(std::string_view payload) {
  util::ByteReader reader(payload);
  require_input(reader.u8() == kCellCodecVersion,
                "metrics payload: unsupported codec version");
  reports::Metrics metrics = decode_metrics(reader);
  require_input(reader.exhausted(), "metrics payload: trailing bytes");
  return metrics;
}

}  // namespace e2c::exp
