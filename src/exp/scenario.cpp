#include "exp/scenario.hpp"

#include "hetero/machine_catalog.hpp"

namespace e2c::exp {

namespace {

const std::vector<std::string>& task_type_names() {
  // T1 object detection, T2 noise removal, T3 image enhancement,
  // T4 speech recognition, T5 face recognition (the paper's IoT example).
  static const std::vector<std::string> names{"T1", "T2", "T3", "T4", "T5"};
  return names;
}

sched::SystemConfig build(hetero::EetMatrix eet, std::size_t queue_capacity) {
  sched::SystemConfig config;
  config.machine_queue_capacity = queue_capacity;
  const auto names = eet.machine_type_names();
  config.eet = std::move(eet);
  const auto specs = hetero::resolve_machine_types(names);
  for (std::size_t i = 0; i < names.size(); ++i) {
    config.machines.push_back(sched::MachineInstance{"m" + std::to_string(i + 1), i,
                                                     specs[i]});
  }
  return config;
}

}  // namespace

sched::SystemConfig homogeneous_classroom(std::size_t machine_queue_capacity) {
  // Four identical CPUs; per-type base times chosen so the mean service time
  // matches the heterogeneous system's scale (≈6 s per task).
  const std::vector<std::string> machines{"cpu-1", "cpu-2", "cpu-3", "cpu-4"};
  const std::vector<double> base_times{6.0, 5.0, 7.0, 5.0, 6.0};
  hetero::EetMatrix eet =
      hetero::EetMatrix::homogeneous(task_type_names(), machines, base_times);
  sched::SystemConfig config = build(std::move(eet), machine_queue_capacity);
  // Identical machines share one power profile.
  for (auto& machine : config.machines) {
    machine.power = hetero::MachineTypeSpec{machine.name, 20.0, 95.0};
  }
  return config;
}

sched::SystemConfig heterogeneous_classroom(std::size_t machine_queue_capacity) {
  // Inconsistent EET (seconds): each machine type wins somewhere —
  //   GPU dominates vision types, FPGA wins noise removal and speech,
  //   ASIC is a specialized object-detection/face-recognition part but
  //   poor at everything else, the CPU is the mediocre generalist.
  const std::vector<std::string> machines{"x86-cpu", "gpu", "fpga", "asic"};
  const std::vector<std::vector<double>> values{
      // x86-cpu  gpu   fpga  asic
      {12.0, 2.5, 6.0, 1.2},   // T1 object detection
      {6.0, 3.0, 2.0, 14.0},   // T2 noise removal
      {8.0, 2.0, 9.0, 10.0},   // T3 image enhancement
      {4.0, 6.0, 4.5, 9.0},    // T4 speech recognition (CPU's win)
      {10.0, 3.0, 5.0, 2.0},   // T5 face recognition
  };
  hetero::EetMatrix eet(task_type_names(), machines, values);
  return build(std::move(eet), machine_queue_capacity);
}

std::vector<hetero::MachineTypeId> machine_types_of(const sched::SystemConfig& config) {
  std::vector<hetero::MachineTypeId> types;
  types.reserve(config.machines.size());
  for (const auto& machine : config.machines) types.push_back(machine.type);
  return types;
}

}  // namespace e2c::exp
