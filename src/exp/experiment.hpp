/// \file experiment.hpp
/// \brief Policy x intensity sweeps with replications — the engine behind
/// every figure of the paper's evaluation.
///
/// Workloads are *paired*: for a given (intensity, replication) every policy
/// sees the identical trace, exactly as the students ran the same CSV
/// workload through each scheduling method. Replications vary the seed so
/// the reported completion percentages carry confidence intervals.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "reports/metrics.hpp"
#include "sched/simulation.hpp"
#include "viz/bar_chart.hpp"
#include "workload/generator.hpp"

namespace e2c::exp {

/// Full sweep description.
struct ExperimentSpec {
  sched::SystemConfig system;
  std::vector<std::string> policies;              ///< registry names
  std::vector<workload::Intensity> intensities;   ///< low/medium/high presets
  std::size_t replications = 10;
  core::SimTime duration = 400.0;                 ///< arrival window per run
  std::uint64_t base_seed = 42;
  workload::ArrivalKind arrival = workload::ArrivalKind::kPoisson;
  double deadline_factor_lo = 2.0;
  double deadline_factor_hi = 4.0;
};

/// Results of one (policy, intensity) cell across replications.
struct CellResult {
  std::string policy;
  workload::Intensity intensity = workload::Intensity::kLow;
  std::vector<reports::Metrics> runs;  ///< one Metrics per replication

  /// Mean across replications of a metric extracted by \p field.
  [[nodiscard]] double mean_of(double (*field)(const reports::Metrics&)) const;

  /// Mean completion percentage across replications.
  [[nodiscard]] double mean_completion_percent() const;

  /// ~95% CI half-width of the completion percentage.
  [[nodiscard]] double ci95_completion_percent() const;

  /// Mean total energy (J) across replications.
  [[nodiscard]] double mean_energy_joules() const;

  /// Mean Jain fairness across task types.
  [[nodiscard]] double mean_type_fairness() const;
};

/// All cells of a sweep, in (policy-major, intensity-minor) order.
struct ExperimentResult {
  ExperimentSpec spec;
  std::vector<CellResult> cells;

  /// The cell for (policy, intensity); throws e2c::InputError if absent.
  [[nodiscard]] const CellResult& cell(const std::string& policy,
                                       workload::Intensity intensity) const;
};

/// Deterministic seed of the workload shared by all policies for one
/// (intensity, replication) pair.
[[nodiscard]] std::uint64_t workload_seed(std::uint64_t base_seed,
                                          workload::Intensity intensity,
                                          std::size_t replication) noexcept;

/// How the sweep provisions workloads and simulations.
enum class DataPlane {
  /// Each paired trace is generated once per (intensity, replication) and
  /// shared read-only by every policy cell; each cell runs on one Simulation
  /// that is reset between replications. This is the default: same results,
  /// a fraction of the setup cost.
  kShared,
  /// Every replication regenerates its trace and builds a fresh Simulation —
  /// the pre-sharing data plane, kept as the honest baseline for the
  /// experiment-throughput bench and for A/B validation.
  kPerRun,
};

/// Invoked after each (policy, intensity) cell finishes, from the thread
/// collecting results (never concurrently): cells done so far, total cells,
/// and the cell just completed.
using ProgressFn = std::function<void(
    std::size_t cells_done, std::size_t cells_total, const CellResult& cell)>;

/// Runs the sweep. \p workers selects thread-pool size (0 = hardware
/// concurrency). No mutable state is shared across threads: under kShared
/// each worker owns one Simulation per cell and only aliases immutable
/// traces/config; under kPerRun each replication builds everything afresh.
/// Cell results arrive in (policy-major, intensity-minor) order either way.
[[nodiscard]] ExperimentResult run_experiment(const ExperimentSpec& spec,
                                              std::size_t workers = 0,
                                              DataPlane plane = DataPlane::kShared,
                                              const ProgressFn& progress = {});

/// Builds the grouped bar chart of completion % — the layout of Figs. 5-7
/// (groups = intensities, series = policies).
[[nodiscard]] viz::BarChart completion_chart(const ExperimentResult& result,
                                             std::string title);

/// Emits the result as CSV rows: policy, intensity, mean/ci completion %,
/// mean energy, mean fairness, replications.
[[nodiscard]] std::vector<std::vector<std::string>> result_csv(
    const ExperimentResult& result);

}  // namespace e2c::exp
