/// \file experiment.hpp
/// \brief Policy x intensity sweeps with replications — the engine behind
/// every figure of the paper's evaluation.
///
/// Workloads are *paired*: for a given (intensity, replication) every policy
/// sees the identical trace, exactly as the students ran the same CSV
/// workload through each scheduling method. Replications vary the seed so
/// the reported completion percentages carry confidence intervals.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "reports/metrics.hpp"
#include "sched/simulation.hpp"
#include "viz/bar_chart.hpp"
#include "workload/generator.hpp"

namespace e2c::exp {

/// Full sweep description.
struct ExperimentSpec {
  sched::SystemConfig system;
  std::vector<std::string> policies;              ///< registry names
  std::vector<workload::Intensity> intensities;   ///< low/medium/high presets
  std::size_t replications = 10;
  core::SimTime duration = 400.0;                 ///< arrival window per run
  std::uint64_t base_seed = 42;
  workload::ArrivalKind arrival = workload::ArrivalKind::kPoisson;
  double deadline_factor_lo = 2.0;
  double deadline_factor_hi = 4.0;
};

/// Terminal state of one sweep cell. A cell fails on the process backend
/// after its worker crashed or timed out more than `max_retries` times, and
/// on the threads backend when a replication throws — either way the sweep
/// degrades gracefully: the cell is recorded with empty runs and the rest
/// of the sweep completes.
enum class CellStatus { kOk, kFailed };

/// Display name ("ok" / "failed") — the `status` column of the result CSV.
[[nodiscard]] const char* cell_status_name(CellStatus status) noexcept;

/// Results of one (policy, intensity) cell across replications.
struct CellResult {
  std::string policy;
  workload::Intensity intensity = workload::Intensity::kLow;
  std::vector<reports::Metrics> runs;  ///< one Metrics per replication
  CellStatus status = CellStatus::kOk;
  /// Dispatch attempts this cell consumed (1 on a clean first run; the
  /// process backend increments it per crash/timeout requeue).
  std::uint32_t attempts = 1;

  /// Mean across replications of a metric extracted by \p field.
  [[nodiscard]] double mean_of(double (*field)(const reports::Metrics&)) const;

  /// Mean completion percentage across replications.
  [[nodiscard]] double mean_completion_percent() const;

  /// ~95% CI half-width of the completion percentage.
  [[nodiscard]] double ci95_completion_percent() const;

  /// Mean total energy (J) across replications.
  [[nodiscard]] double mean_energy_joules() const;

  /// Mean Jain fairness across task types.
  [[nodiscard]] double mean_type_fairness() const;
};

/// Supervision counters of a finished (or drained) sweep — how many cells
/// completed, how many were given up on, and how much retrying it took.
struct SweepHealth {
  std::size_t completed_cells = 0;  ///< cells with CellStatus::kOk
  std::size_t failed_cells = 0;     ///< cells recorded failed after max_retries
  std::size_t retries = 0;          ///< total crash/timeout re-dispatches
  std::size_t resumed_cells = 0;    ///< taken from the journal, not recomputed
  /// Resolved worker count the sweep actually ran with (thread-pool size on
  /// the threads backend, process-slot count on procs). A requested 0 is
  /// normalized once through util::ThreadPool::resolve_worker_count, so the
  /// CLI summary and the pools always agree on what 0 means.
  std::size_t workers = 0;
  /// True when SIGINT/SIGTERM cut the sweep short: in-flight cells were
  /// finished and journaled, undispatched cells are absent from `cells`.
  bool drained = false;
};

/// All cells of a sweep, in (policy-major, intensity-minor) order.
struct ExperimentResult {
  ExperimentSpec spec;
  std::vector<CellResult> cells;
  SweepHealth health;

  /// The cell for (policy, intensity); throws e2c::InputError if absent.
  [[nodiscard]] const CellResult& cell(const std::string& policy,
                                       workload::Intensity intensity) const;
};

/// Deterministic seed of the workload shared by all policies for one
/// (intensity, replication) pair.
[[nodiscard]] std::uint64_t workload_seed(std::uint64_t base_seed,
                                          workload::Intensity intensity,
                                          std::size_t replication) noexcept;

/// How the sweep provisions workloads and simulations.
enum class DataPlane {
  /// Each paired trace is generated once per (intensity, replication) and
  /// shared read-only by every policy cell; each cell runs on one Simulation
  /// that is reset between replications. This is the default: same results,
  /// a fraction of the setup cost.
  kShared,
  /// Every replication regenerates its trace and builds a fresh Simulation —
  /// the pre-sharing data plane, kept as the honest baseline for the
  /// experiment-throughput bench and for A/B validation.
  kPerRun,
};

/// Invoked after each (policy, intensity) cell finishes, from the thread
/// collecting results (never concurrently): cells done so far, total cells,
/// and the cell just completed. On the threads backend cells report in
/// (policy-major, intensity-minor) order; on the process backend they report
/// in completion order. Cells restored from a resume journal do not fire.
using ProgressFn = std::function<void(
    std::size_t cells_done, std::size_t cells_total, const CellResult& cell)>;

/// Execution backend of the sweep.
enum class Backend {
  /// In-process thread pool (the PR-5 data plane). Fastest setup; one
  /// wedged or crashing cell takes the whole invocation down.
  kThreads,
  /// One worker OS process per slot, cells sharded over a work queue,
  /// results serialized back over pipes. The parent supervises: per-cell
  /// wall-clock timeouts, crash detection, retry with backoff, graceful
  /// degradation to CellStatus::kFailed. Fault-free sweeps produce
  /// byte-identical result CSVs to kThreads.
  kProcs,
};

/// Display name ("threads" / "procs").
[[nodiscard]] const char* backend_name(Backend backend) noexcept;

/// Parses a backend name; throws e2c::InputError listing the registered
/// roster with a nearest-match suggestion (the --policy/--recovery
/// convention).
[[nodiscard]] Backend parse_backend(const std::string& name);

/// Everything run_experiment needs beyond the spec. The defaults reproduce
/// the plain threads sweep.
struct RunOptions {
  std::size_t workers = 0;              ///< 0 = hardware concurrency
  DataPlane plane = DataPlane::kShared; ///< threads backend only
  Backend backend = Backend::kThreads;
  /// Process backend: wall-clock budget (s) per cell attempt; the worker is
  /// SIGKILL'd and the cell requeued when exceeded. 0 disables the timeout.
  double cell_timeout = 0.0;
  /// Process backend: crash/timeout re-dispatches per cell before it is
  /// recorded as failed and the sweep moves on.
  std::size_t max_retries = 2;
  double backoff_base = 0.05;   ///< delay (s) before the first requeue
  double backoff_factor = 2.0;  ///< multiplier per further requeue
  double max_backoff = 1.0;     ///< ceiling (s) for any single backoff
  /// Crash-safe sweep journal: append-only per-cell records, fsync'd after
  /// each cell. Empty disables journaling.
  std::string journal_path;
  /// Skip cells already recorded ok in the journal (which must exist and
  /// match this spec's digest); their results merge into the output.
  bool resume = false;
  /// Process backend: install SIGINT/SIGTERM handlers that drain the sweep
  /// (finish in-flight cells, flush the journal, return partial results)
  /// instead of killing the invocation. CLI-facing; library callers that
  /// own their signal handling leave this off.
  bool drain_on_signals = false;
  ProgressFn progress;
};

/// Runs the sweep with full supervision options.
[[nodiscard]] ExperimentResult run_experiment(const ExperimentSpec& spec,
                                              const RunOptions& options);

/// Runs the sweep. \p workers selects thread-pool size (0 = hardware
/// concurrency). Work is sharded per (cell, replication) — not per cell —
/// so a handful of cells still feeds every worker. No mutable state is
/// shared across threads: under kShared each worker leases its own
/// thread-local Simulation (reset between replications) and only aliases
/// immutable traces/config; under kPerRun each replication builds
/// everything afresh. Replications merge back into cells in deterministic
/// (policy-major, intensity-minor, replication) order, so the result CSV is
/// byte-identical across worker counts.
[[nodiscard]] ExperimentResult run_experiment(const ExperimentSpec& spec,
                                              std::size_t workers = 0,
                                              DataPlane plane = DataPlane::kShared,
                                              const ProgressFn& progress = {});

/// Stable digest of the sweep-shaping fields of a spec (policies,
/// intensities, replications, duration, seed, arrival, deadline factors,
/// machine count). The journal header records it so `--resume` refuses to
/// merge results produced by a different sweep.
[[nodiscard]] std::uint64_t spec_digest(const ExperimentSpec& spec) noexcept;

namespace detail {
/// Computes one (policy, intensity) cell from scratch: regenerates the
/// paired traces (a pure function of the spec) and runs every replication
/// on one reused Simulation — the shared-plane semantics, so results are
/// byte-identical to the threads backend. Worker processes call this.
[[nodiscard]] CellResult compute_cell(const ExperimentSpec& spec,
                                      const std::string& policy,
                                      workload::Intensity intensity);

/// Regenerates the paired trace of one (intensity, replication) — a pure
/// function of the spec, identical across every policy, data plane, and
/// backend. \p machine_types must be machine_types_of(spec.system). The
/// serve workers call this per (cell, replication) work unit and cache the
/// result, so repeat submissions of one sweep never regenerate traces.
[[nodiscard]] workload::Workload generate_trace(
    const ExperimentSpec& spec, const std::vector<hetero::MachineTypeId>& machine_types,
    workload::Intensity intensity, std::size_t replication);
}  // namespace detail

/// Builds the grouped bar chart of completion % — the layout of Figs. 5-7
/// (groups = intensities, series = policies).
[[nodiscard]] viz::BarChart completion_chart(const ExperimentResult& result,
                                             std::string title);

/// Emits the result as CSV rows: policy, intensity, mean/ci completion %,
/// mean energy, mean fairness, replications.
[[nodiscard]] std::vector<std::vector<std::string>> result_csv(
    const ExperimentResult& result);

}  // namespace e2c::exp
