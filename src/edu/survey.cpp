#include "edu/survey.hpp"

#include <algorithm>
#include <cmath>

#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"
#include "util/string_util.hpp"

namespace e2c::edu {

SurveyDataset::SurveyDataset(std::vector<SurveyResponse> responses)
    : responses_(std::move(responses)) {}

MetricAggregate SurveyDataset::aggregate(
    const std::string& name,
    const std::function<std::optional<double>(const SurveyResponse&)>& value) const {
  MetricAggregate aggregate;
  aggregate.metric = name;
  std::vector<double> all;
  util::RunningStats female;
  util::RunningStats male;
  for (const SurveyResponse& response : responses_) {
    const auto v = value(response);
    if (!v) continue;
    all.push_back(*v);
    (response.gender == Gender::kFemale ? female : male).add(*v);
  }
  aggregate.respondents = all.size();
  aggregate.mean = util::mean(all);
  aggregate.median = util::median(all);
  aggregate.female_mean = female.mean();
  aggregate.male_mean = male.mean();
  return aggregate;
}

SurveySummary SurveyDataset::summarize() const {
  SurveySummary summary;
  const auto field = [](double SurveyResponse::* member) {
    return [member](const SurveyResponse& r) -> std::optional<double> {
      return r.*member;
    };
  };

  summary.user_experience = {
      aggregate("installation", field(&SurveyResponse::install)),
      aggregate("intuitive GUI", field(&SurveyResponse::gui)),
      aggregate("ease of use", field(&SurveyResponse::ease_of_use)),
      aggregate("reports", field(&SurveyResponse::reports)),
      aggregate("custom scheduling",
                [](const SurveyResponse& r) { return r.custom_scheduling; }),
      aggregate("recommend to others", field(&SurveyResponse::recommend)),
  };
  summary.learning_outcomes = {
      aggregate("scheduling in heterogeneous systems",
                field(&SurveyResponse::hetero_scheduling)),
      aggregate("scheduling in homogeneous systems",
                field(&SurveyResponse::homog_scheduling)),
      aggregate("impact of arrival rate", field(&SurveyResponse::arrival_rate_impact)),
      aggregate("overall usefulness", field(&SurveyResponse::overall_usefulness)),
  };

  std::vector<double> pre;
  std::vector<double> post;
  std::vector<double> years;
  std::size_t female = 0;
  std::size_t graduate = 0;
  std::size_t passed_os = 0;
  for (const SurveyResponse& response : responses_) {
    pre.push_back(response.quiz_pre);
    post.push_back(response.quiz_post);
    years.push_back(response.programming_years);
    if (response.gender == Gender::kFemale) ++female;
    if (response.level == Level::kGraduate) ++graduate;
    if (response.passed_os_course) ++passed_os;
  }
  summary.quiz_pre_mean = util::mean(pre);
  summary.quiz_post_mean = util::mean(post);
  summary.quiz_improvement_percent =
      util::percent_improvement(summary.quiz_pre_mean, summary.quiz_post_mean).value_or(0.0);
  const auto n = static_cast<double>(responses_.size());
  if (!responses_.empty()) {
    summary.female_fraction = static_cast<double>(female) / n;
    summary.male_fraction = 1.0 - summary.female_fraction;
    summary.graduate_fraction = static_cast<double>(graduate) / n;
    summary.undergraduate_fraction = 1.0 - summary.graduate_fraction;
    summary.passed_os_fraction = static_cast<double>(passed_os) / n;
  }
  summary.programming_years_mean = util::mean(years);
  summary.programming_years_median = util::median(years);
  return summary;
}

namespace {

/// Zero-sum linear ramp of \p n deltas with amplitude \p amp: the group mean
/// stays exactly on target while individual answers vary.
std::vector<double> ramp(std::size_t n, double amp) {
  std::vector<double> deltas(n, 0.0);
  if (n < 2) return deltas;
  for (std::size_t i = 0; i < n; ++i) {
    deltas[i] = amp * (2.0 * static_cast<double>(i) / static_cast<double>(n - 1) - 1.0);
  }
  return deltas;
}

/// Spread amplitude that keeps target +/- amp inside [0, 10].
double safe_amp(double target) {
  return std::min({0.7, 10.0 - target, target});
}

/// Assigns a score metric: female respondents get female_target +/- ramp,
/// male respondents male_target +/- ramp; group means match the targets
/// exactly (the calibration DESIGN.md documents).
void fill_metric(std::vector<SurveyResponse>& responses, double SurveyResponse::* member,
                 double female_target, double male_target) {
  std::vector<SurveyResponse*> females;
  std::vector<SurveyResponse*> males;
  for (SurveyResponse& response : responses) {
    (response.gender == Gender::kFemale ? females : males).push_back(&response);
  }
  const auto female_deltas = ramp(females.size(), safe_amp(female_target));
  for (std::size_t i = 0; i < females.size(); ++i) {
    females[i]->*member = female_target + female_deltas[i];
  }
  const auto male_deltas = ramp(males.size(), safe_amp(male_target));
  for (std::size_t i = 0; i < males.size(); ++i) {
    males[i]->*member = male_target + male_deltas[i];
  }
}

}  // namespace

std::vector<std::vector<std::string>> SurveyDataset::to_csv_rows() const {
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"gender", "level", "programming_years", "passed_os", "install", "gui",
                  "ease_of_use", "reports", "custom_scheduling", "recommend",
                  "hetero_scheduling", "homog_scheduling", "arrival_rate_impact",
                  "overall_usefulness", "quiz_pre", "quiz_post"});
  for (const SurveyResponse& r : responses_) {
    rows.push_back(
        {r.gender == Gender::kFemale ? "female" : "male",
         r.level == Level::kGraduate ? "graduate" : "undergraduate",
         util::format_fixed(r.programming_years, 2), r.passed_os_course ? "1" : "0",
         util::format_fixed(r.install, 4), util::format_fixed(r.gui, 4),
         util::format_fixed(r.ease_of_use, 4), util::format_fixed(r.reports, 4),
         r.custom_scheduling ? util::format_fixed(*r.custom_scheduling, 4) : std::string{},
         util::format_fixed(r.recommend, 4), util::format_fixed(r.hetero_scheduling, 4),
         util::format_fixed(r.homog_scheduling, 4),
         util::format_fixed(r.arrival_rate_impact, 4),
         util::format_fixed(r.overall_usefulness, 4), util::format_fixed(r.quiz_pre, 4),
         util::format_fixed(r.quiz_post, 4)});
  }
  return rows;
}

SurveyDataset SurveyDataset::from_csv_rows(
    const std::vector<std::vector<std::string>>& rows) {
  require_input(!rows.empty(), "survey CSV: missing header");
  require_input(rows.front().size() == 16, "survey CSV: expected 16 columns");
  std::vector<SurveyResponse> responses;
  responses.reserve(rows.size() - 1);
  const auto number = [](const std::string& field, const char* what) {
    const auto value = util::parse_double(field);
    require_input(value.has_value(), std::string("survey CSV: bad ") + what);
    return *value;
  };
  for (std::size_t i = 1; i < rows.size(); ++i) {
    const auto& row = rows[i];
    require_input(row.size() == 16,
                  "survey CSV: row " + std::to_string(i + 1) + " has wrong field count");
    SurveyResponse r;
    if (util::iequals(row[0], "female")) r.gender = Gender::kFemale;
    else if (util::iequals(row[0], "male")) r.gender = Gender::kMale;
    else throw InputError("survey CSV: unknown gender '" + row[0] + "'");
    if (util::iequals(row[1], "graduate")) r.level = Level::kGraduate;
    else if (util::iequals(row[1], "undergraduate")) r.level = Level::kUndergraduate;
    else throw InputError("survey CSV: unknown level '" + row[1] + "'");
    r.programming_years = number(row[2], "programming_years");
    r.passed_os_course = row[3] == "1";
    r.install = number(row[4], "install");
    r.gui = number(row[5], "gui");
    r.ease_of_use = number(row[6], "ease_of_use");
    r.reports = number(row[7], "reports");
    if (!util::trim(row[8]).empty()) r.custom_scheduling = number(row[8], "custom");
    r.recommend = number(row[9], "recommend");
    r.hetero_scheduling = number(row[10], "hetero_scheduling");
    r.homog_scheduling = number(row[11], "homog_scheduling");
    r.arrival_rate_impact = number(row[12], "arrival_rate_impact");
    r.overall_usefulness = number(row[13], "overall_usefulness");
    r.quiz_pre = number(row[14], "quiz_pre");
    r.quiz_post = number(row[15], "quiz_post");
    responses.push_back(r);
  }
  return SurveyDataset(std::move(responses));
}

SurveyDataset SurveyDataset::load_csv(const std::string& path) {
  return from_csv_rows(util::read_csv_file(path).rows);
}

void SurveyDataset::save_csv(const std::string& path) const {
  util::write_csv_file(path, to_csv_rows());
}

SurveyDataset SurveyDataset::bundled() {
  // Demographics of §5: 23 students, 17 male / 6 female (73.9% / 26.1%),
  // 14 undergraduate / 9 graduate (60.9% / 39.1%), 10 passed OS (43.5%),
  // programming experience mean 3.8 / median 3 years.
  std::vector<SurveyResponse> responses(23);
  for (std::size_t i = 0; i < responses.size(); ++i) {
    responses[i].gender = i < 6 ? Gender::kFemale : Gender::kMale;
    // Graduates: 4 female (indices 0-3) + 5 male (indices 6-10).
    responses[i].level =
        (i < 4 || (i >= 6 && i < 11)) ? Level::kGraduate : Level::kUndergraduate;
    responses[i].passed_os_course = i % 2 == 0 && i < 20;  // exactly 10 of 23
  }
  const double years[23] = {1, 1, 2, 2, 2, 2, 2, 3, 3, 3, 3, 3,
                            4, 4, 4, 5, 5, 5, 6, 6, 7, 7, 8};  // mean 3.83, median 3
  for (std::size_t i = 0; i < responses.size(); ++i) {
    responses[i].programming_years = years[i];
  }

  // Fig. 8a targets (overall / female / male as reported in §5).
  fill_metric(responses, &SurveyResponse::install, 8.3, 8.3);
  fill_metric(responses, &SurveyResponse::gui, 9.3, 8.0);          // overall 8.35
  fill_metric(responses, &SurveyResponse::ease_of_use, 9.3, 7.9);  // overall 8.3
  fill_metric(responses, &SurveyResponse::reports, 4.8, 5.9);      // overall 5.7
  fill_metric(responses, &SurveyResponse::recommend, 9.7, 7.8);    // overall 8.3

  // Custom scheduling was answered by the 9 graduate students only
  // (female 9.2 / male 7.4 per the paper).
  {
    std::vector<SurveyResponse*> grad_f;
    std::vector<SurveyResponse*> grad_m;
    for (SurveyResponse& response : responses) {
      if (response.level != Level::kGraduate) continue;
      (response.gender == Gender::kFemale ? grad_f : grad_m).push_back(&response);
    }
    const auto f_deltas = ramp(grad_f.size(), safe_amp(9.2));
    for (std::size_t i = 0; i < grad_f.size(); ++i) {
      grad_f[i]->custom_scheduling = 9.2 + f_deltas[i];
    }
    const auto m_deltas = ramp(grad_m.size(), safe_amp(7.4));
    for (std::size_t i = 0; i < grad_m.size(); ++i) {
      grad_m[i]->custom_scheduling = 7.4 + m_deltas[i];
    }
  }

  // Fig. 8b targets.
  fill_metric(responses, &SurveyResponse::hetero_scheduling, 9.8, 8.2);
  fill_metric(responses, &SurveyResponse::homog_scheduling, 9.5, 8.4);
  fill_metric(responses, &SurveyResponse::arrival_rate_impact, 9.7, 8.2);
  fill_metric(responses, &SurveyResponse::overall_usefulness, 9.5, 8.6);

  // Pre/post quiz: means 7.6 -> 8.94 out of 12 (improvement 17.6%).
  {
    const auto pre_deltas = ramp(responses.size(), 2.0);
    const auto post_deltas = ramp(responses.size(), 1.8);
    for (std::size_t i = 0; i < responses.size(); ++i) {
      responses[i].quiz_pre = 7.6 + pre_deltas[i];
      responses[i].quiz_post = 8.94 + post_deltas[i];
    }
  }
  return SurveyDataset(std::move(responses));
}

}  // namespace e2c::edu
