/// \file survey.hpp
/// \brief Survey dataset model and the aggregation pipeline behind Fig. 8.
///
/// The paper's learning-outcome numbers come from a 23-student survey we
/// cannot re-collect (human data). What this module reproduces is (a) the
/// exact aggregation pipeline — per-metric overall and per-gender means,
/// medians, and the pre/post quiz improvement percentage — and (b) a
/// bundled synthetic respondent set calibrated so every published aggregate
/// is matched, letting the Fig. 8 benches regenerate the figures end to
/// end. DESIGN.md documents this substitution.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace e2c::edu {

/// Respondent demographics (the paper's §5 breakdown).
enum class Gender { kMale, kFemale };
enum class Level { kUndergraduate, kGraduate };

/// One survey response; scores are on the paper's 0-10 scale.
struct SurveyResponse {
  Gender gender = Gender::kMale;
  Level level = Level::kUndergraduate;
  double programming_years = 0.0;
  bool passed_os_course = false;

  // Fig. 8a — user experience.
  double install = 0.0;
  double gui = 0.0;
  double ease_of_use = 0.0;
  double reports = 0.0;
  std::optional<double> custom_scheduling;  ///< graduate students only
  double recommend = 0.0;

  // Fig. 8b — learning outcomes.
  double hetero_scheduling = 0.0;
  double homog_scheduling = 0.0;
  double arrival_rate_impact = 0.0;
  double overall_usefulness = 0.0;

  // Pre/post quiz scores out of 12.
  double quiz_pre = 0.0;
  double quiz_post = 0.0;
};

/// Aggregates for one metric: what each bar group of Fig. 8 shows.
struct MetricAggregate {
  std::string metric;
  double mean = 0.0;
  double median = 0.0;
  double female_mean = 0.0;
  double male_mean = 0.0;
  std::size_t respondents = 0;
};

/// The whole-survey summary (Fig. 8a + Fig. 8b + quiz improvement).
struct SurveySummary {
  std::vector<MetricAggregate> user_experience;   ///< Fig. 8a bars
  std::vector<MetricAggregate> learning_outcomes; ///< Fig. 8b bars
  double quiz_pre_mean = 0.0;
  double quiz_post_mean = 0.0;
  double quiz_improvement_percent = 0.0;  ///< (post-pre)/pre * 100
  double male_fraction = 0.0;
  double female_fraction = 0.0;
  double undergraduate_fraction = 0.0;
  double graduate_fraction = 0.0;
  double programming_years_mean = 0.0;
  double programming_years_median = 0.0;
  double passed_os_fraction = 0.0;
};

/// A set of survey responses with the aggregation pipeline.
class SurveyDataset {
 public:
  SurveyDataset() = default;
  explicit SurveyDataset(std::vector<SurveyResponse> responses);

  /// The bundled 23-respondent dataset (14 undergraduate / 9 graduate,
  /// 17 male / 6 female) calibrated to the paper's reported aggregates.
  [[nodiscard]] static SurveyDataset bundled();

  /// Responses (immutable view).
  [[nodiscard]] const std::vector<SurveyResponse>& responses() const noexcept {
    return responses_;
  }

  [[nodiscard]] std::size_t size() const noexcept { return responses_.size(); }

  /// Runs the full aggregation pipeline.
  [[nodiscard]] SurveySummary summarize() const;

  /// Aggregate for one metric via an extractor; skips respondents for whom
  /// \p value returns nullopt (e.g. custom scheduling for undergraduates).
  [[nodiscard]] MetricAggregate aggregate(
      const std::string& name,
      const std::function<std::optional<double>(const SurveyResponse&)>& value) const;

  // ---- persistence (one row per respondent) -------------------------------

  /// Serializes as CSV rows (header first).
  [[nodiscard]] std::vector<std::vector<std::string>> to_csv_rows() const;

  /// Parses CSV rows produced by to_csv_rows(). Throws e2c::InputError on
  /// malformed content.
  [[nodiscard]] static SurveyDataset from_csv_rows(
      const std::vector<std::vector<std::string>>& rows);

  /// Loads a respondent CSV file.
  [[nodiscard]] static SurveyDataset load_csv(const std::string& path);

  /// Writes a respondent CSV file.
  void save_csv(const std::string& path) const;

 private:
  std::vector<SurveyResponse> responses_;
};

}  // namespace e2c::edu
