/// \file quiz.hpp
/// \brief The pre/post scheduling quiz of the paper's evaluation (§5).
///
/// "The quizzes asked the students to map three arriving tasks to four
/// heterogeneous machines via the following scheduling methods: MEET, MECT,
/// MM, and MSD" — 12 points total (3 tasks x 4 methods). This module
/// reproduces the computational core: it derives the ground-truth mappings
/// by running the actual policies on the quiz scenario and auto-grades
/// answer sheets, which is precisely how the instructors graded.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "hetero/eet_matrix.hpp"
#include "workload/task.hpp"

namespace e2c::edu {

/// The quiz's static situation: tasks present at time zero, idle machines.
struct QuizScenario {
  hetero::EetMatrix eet;                ///< 3 task types x 4 machines
  std::vector<workload::TaskDef> tasks; ///< the three arriving tasks (with deadlines)
};

/// The default quiz used in the course: three tasks, four machines with an
/// inconsistent EET, deadlines chosen so MSD and MM order differently.
[[nodiscard]] QuizScenario default_quiz();

/// A (task -> machine) mapping for one scheduling method.
using MethodAnswer = std::map<workload::TaskId, hetero::MachineId>;

/// A full answer sheet: method name -> mapping. Methods are the quiz's four:
/// "MEET", "MECT", "MM", "MSD".
using AnswerSheet = std::map<std::string, MethodAnswer>;

/// The quiz's method list, in grading order.
[[nodiscard]] const std::vector<std::string>& quiz_methods();

/// Computes the correct mapping for \p method by running the real policy on
/// the scenario (machines idle, all tasks in the batch queue). Throws
/// e2c::InputError for methods outside quiz_methods().
[[nodiscard]] MethodAnswer solve_method(const QuizScenario& scenario,
                                        const std::string& method);

/// The full ground-truth answer sheet.
[[nodiscard]] AnswerSheet solve_quiz(const QuizScenario& scenario);

/// Grades an answer sheet: one point per (method, task) whose machine
/// matches the ground truth; maximum = methods x tasks (12 for the default
/// quiz). Missing methods/tasks score zero for the missing entries.
[[nodiscard]] int grade(const QuizScenario& scenario, const AnswerSheet& answers);

/// Maximum attainable score for a scenario.
[[nodiscard]] int max_score(const QuizScenario& scenario);

}  // namespace e2c::edu
