#include "edu/quiz.hpp"

#include <algorithm>

#include "sched/registry.hpp"
#include "util/error.hpp"

namespace e2c::edu {

QuizScenario default_quiz() {
  QuizScenario scenario;
  // Three task types on four machines with CONTENTION: T1 and T3 share the
  // same fastest machine (m4), so load-aware methods divert one of them
  // while MEET does not — the quiz discriminates between the methods, and a
  // student who always picks the fastest machine cannot score full marks.
  scenario.eet = hetero::EetMatrix(
      {"T1", "T2", "T3"}, {"m1", "m2", "m3", "m4"},
      {
          {10.0, 4.0, 7.0, 3.0},  // T1: fastest on m4, runner-up m2
          {5.0, 8.0, 2.0, 9.0},   // T2: fastest on m3
          {6.0, 5.0, 8.0, 2.0},   // T3: fastest on m4 too (contention)
      });

  workload::TaskDef t1;
  t1.id = 1;
  t1.type = 0;
  t1.arrival = 0.0;
  t1.deadline = 12.0;
  workload::TaskDef t2;
  t2.id = 2;
  t2.type = 1;
  t2.arrival = 0.0;
  t2.deadline = 6.0;  // soonest deadline: MSD maps it first
  workload::TaskDef t3;
  t3.id = 3;
  t3.type = 2;
  t3.arrival = 0.0;
  t3.deadline = 9.0;
  scenario.tasks = {t1, t2, t3};
  return scenario;
}

const std::vector<std::string>& quiz_methods() {
  static const std::vector<std::string> methods{"MEET", "MECT", "MM", "MSD"};
  return methods;
}

MethodAnswer solve_method(const QuizScenario& scenario, const std::string& method) {
  require_input(std::find(quiz_methods().begin(), quiz_methods().end(), method) !=
                    quiz_methods().end(),
                "quiz: method '" + method + "' is not part of the quiz");

  // Idle machines, one free slot per task so batch policies can map all.
  std::vector<sched::MachineView> machines;
  for (std::size_t m = 0; m < scenario.eet.machine_type_count(); ++m) {
    sched::MachineView view;
    view.id = m;
    view.type = m;
    view.ready_time = 0.0;
    view.free_slots = scenario.tasks.size();
    machines.push_back(view);
  }
  std::vector<const workload::TaskDef*> queue;
  queue.reserve(scenario.tasks.size());
  for (const workload::TaskDef& task : scenario.tasks) queue.push_back(&task);

  sched::SchedulingContext context(0.0, scenario.eet, std::move(machines),
                                   std::move(queue), {});
  const auto policy = sched::make_policy(method);
  const std::vector<sched::Assignment> assignments = policy->schedule(context);

  MethodAnswer answer;
  for (const sched::Assignment& assignment : assignments) {
    answer[assignment.task] = assignment.machine;
  }
  return answer;
}

AnswerSheet solve_quiz(const QuizScenario& scenario) {
  AnswerSheet sheet;
  for (const std::string& method : quiz_methods()) {
    sheet[method] = solve_method(scenario, method);
  }
  return sheet;
}

int grade(const QuizScenario& scenario, const AnswerSheet& answers) {
  const AnswerSheet truth = solve_quiz(scenario);
  int score = 0;
  for (const auto& [method, correct] : truth) {
    const auto submitted = answers.find(method);
    if (submitted == answers.end()) continue;
    for (const auto& [task, machine] : correct) {
      const auto pick = submitted->second.find(task);
      if (pick != submitted->second.end() && pick->second == machine) ++score;
    }
  }
  return score;
}

int max_score(const QuizScenario& scenario) {
  return static_cast<int>(quiz_methods().size() * scenario.tasks.size());
}

}  // namespace e2c::edu
