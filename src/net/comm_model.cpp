#include "net/comm_model.hpp"

#include "util/error.hpp"

namespace e2c::net {

namespace {
void validate_link(const LinkSpec& link) {
  require_input(link.latency_seconds >= 0.0, "comm: link latency must be >= 0");
  require_input(link.bandwidth_mb_per_s > 0.0, "comm: link bandwidth must be > 0");
}
}  // namespace

CommModel::CommModel(std::vector<double> payload_mb, std::vector<LinkSpec> links)
    : payload_mb_(std::move(payload_mb)), links_(std::move(links)) {
  for (double mb : payload_mb_) {
    require_input(mb >= 0.0, "comm: payload size must be >= 0");
  }
  for (const LinkSpec& link : links_) validate_link(link);
}

CommModel CommModel::instantaneous(std::size_t task_types, std::size_t machine_types) {
  return CommModel(std::vector<double>(task_types, 0.0),
                   std::vector<LinkSpec>(machine_types, LinkSpec{0.0, 1000.0}));
}

CommModel CommModel::uniform(std::size_t task_types, std::size_t machine_types,
                             double payload_mb, LinkSpec link) {
  return CommModel(std::vector<double>(task_types, payload_mb),
                   std::vector<LinkSpec>(machine_types, link));
}

double CommModel::payload_mb(hetero::TaskTypeId type) const {
  require_input(type < payload_mb_.size(), "comm: task type out of range");
  return payload_mb_[type];
}

const LinkSpec& CommModel::link(hetero::MachineTypeId machine_type) const {
  require_input(machine_type < links_.size(), "comm: machine type out of range");
  return links_[machine_type];
}

core::SimTime CommModel::transfer_time(hetero::TaskTypeId type,
                                       hetero::MachineTypeId machine_type) const {
  const LinkSpec& spec = link(machine_type);
  return spec.latency_seconds + payload_mb(type) / spec.bandwidth_mb_per_s;
}

void CommModel::set_payload_mb(hetero::TaskTypeId type, double mb) {
  require_input(type < payload_mb_.size(), "comm: task type out of range");
  require_input(mb >= 0.0, "comm: payload size must be >= 0");
  payload_mb_[type] = mb;
}

void CommModel::set_link(hetero::MachineTypeId machine_type, LinkSpec link) {
  require_input(machine_type < links_.size(), "comm: machine type out of range");
  validate_link(link);
  links_[machine_type] = link;
}

}  // namespace e2c::net
