/// \file comm_model.hpp
/// \brief Communication (data transfer) model — the paper's stated future
/// work ("we plan to extend E2C with ... various communication paradigms").
///
/// Each task type carries an input payload; each machine type is reached
/// over a link with a fixed latency and bandwidth. When a scheduler maps a
/// task, its payload must transfer before execution can start. Transfers do
/// NOT occupy the machine's executor (DMA/NIC model): the machine keeps
/// executing other tasks while a mapped task's data is in flight, but the
/// in-flight task holds its reserved queue slot.
///
/// transfer_time(type, machine) = latency(machine) + size(type) / bandwidth(machine)
#pragma once

#include <vector>

#include "core/sim_time.hpp"
#include "hetero/types.hpp"

namespace e2c::net {

/// Link description for one machine type.
struct LinkSpec {
  double latency_seconds = 0.0;       ///< fixed per-transfer latency (>= 0)
  double bandwidth_mb_per_s = 1000.0; ///< link bandwidth (> 0)
};

/// Data-transfer model for a system: payload sizes per task type, link specs
/// per machine type.
class CommModel {
 public:
  CommModel() = default;

  /// \param payload_mb input payload of each task type (MB, >= 0)
  /// \param links link spec of each machine type
  /// Throws e2c::InputError on negative sizes or non-positive bandwidth.
  CommModel(std::vector<double> payload_mb, std::vector<LinkSpec> links);

  /// A model where every transfer is instantaneous (the no-network case the
  /// base simulator assumes).
  [[nodiscard]] static CommModel instantaneous(std::size_t task_types,
                                               std::size_t machine_types);

  /// A model with one payload size for every task type and one link spec for
  /// every machine type.
  [[nodiscard]] static CommModel uniform(std::size_t task_types, std::size_t machine_types,
                                         double payload_mb, LinkSpec link);

  /// Number of task types covered.
  [[nodiscard]] std::size_t task_type_count() const noexcept { return payload_mb_.size(); }

  /// Number of machine types covered.
  [[nodiscard]] std::size_t machine_type_count() const noexcept { return links_.size(); }

  /// Payload of a task type (MB).
  [[nodiscard]] double payload_mb(hetero::TaskTypeId type) const;

  /// Link spec of a machine type.
  [[nodiscard]] const LinkSpec& link(hetero::MachineTypeId machine_type) const;

  /// Seconds to move a task's payload onto a machine of the given type.
  [[nodiscard]] core::SimTime transfer_time(hetero::TaskTypeId type,
                                            hetero::MachineTypeId machine_type) const;

  /// Mutators for scenario building (validated).
  void set_payload_mb(hetero::TaskTypeId type, double mb);
  void set_link(hetero::MachineTypeId machine_type, LinkSpec link);

 private:
  std::vector<double> payload_mb_;
  std::vector<LinkSpec> links_;
};

}  // namespace e2c::net
