/// \file types.hpp
/// \brief Identifier aliases for task types and machines.
///
/// Task types are the "applications" of the paper (object detection, noise
/// removal, ...). Machine types are hardware flavours (x86 CPU, GPU, FPGA,
/// ASIC, ...). A concrete system instantiates N machines, each referencing a
/// machine type; heterogeneity lives entirely in the EET matrix, which maps
/// (task type, machine type) to an expected execution time.
#pragma once

#include <cstddef>
#include <string>

namespace e2c::hetero {

/// Index of a task type (row of the EET matrix).
using TaskTypeId = std::size_t;

/// Index of a machine type (column of the EET matrix).
using MachineTypeId = std::size_t;

/// Index of a concrete machine instance in the simulated system.
using MachineId = std::size_t;

/// Static description of one machine type, including its power model.
/// Energy integration follows the common two-state model: a machine draws
/// idle_watts when no task is running and busy_watts while executing.
struct MachineTypeSpec {
  std::string name;          ///< e.g. "gpu"
  double idle_watts = 10.0;  ///< power draw when idle (W)
  double busy_watts = 100.0; ///< power draw when executing (W)
};

}  // namespace e2c::hetero
