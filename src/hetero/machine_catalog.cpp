#include "hetero/machine_catalog.hpp"

#include "util/string_util.hpp"

namespace e2c::hetero {

const std::vector<MachineTypeSpec>& builtin_machine_types() {
  static const std::vector<MachineTypeSpec> presets{
      {"x86-cpu", 20.0, 95.0},
      {"arm-cpu", 5.0, 15.0},
      {"gpu", 25.0, 250.0},
      {"fpga", 10.0, 40.0},
      {"asic", 2.0, 8.0},
  };
  return presets;
}

std::optional<MachineTypeSpec> find_machine_type(const std::string& name) {
  for (const auto& spec : builtin_machine_types()) {
    if (util::iequals(spec.name, name)) return spec;
  }
  return std::nullopt;
}

MachineTypeSpec generic_machine_type(const std::string& name) {
  return MachineTypeSpec{name, 10.0, 100.0};
}

std::vector<MachineTypeSpec> resolve_machine_types(const std::vector<std::string>& names) {
  std::vector<MachineTypeSpec> specs;
  specs.reserve(names.size());
  for (const auto& name : names) {
    if (auto preset = find_machine_type(name)) {
      specs.push_back(*preset);
    } else {
      specs.push_back(generic_machine_type(name));
    }
  }
  return specs;
}

}  // namespace e2c::hetero
