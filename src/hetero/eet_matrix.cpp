#include "hetero/eet_matrix.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/string_util.hpp"

namespace e2c::hetero {

EetMatrix::EetMatrix(std::vector<std::string> task_type_names,
                     std::vector<std::string> machine_type_names,
                     std::vector<std::vector<double>> values)
    : task_names_(std::move(task_type_names)),
      machine_names_(std::move(machine_type_names)) {
  // Flatten to row-major before validating so validate() sees final storage.
  require_input(values.size() == task_names_.size(),
                "EET: row count does not match task type count");
  values_.reserve(task_names_.size() * machine_names_.size());
  for (std::size_t r = 0; r < values.size(); ++r) {
    require_input(values[r].size() == machine_names_.size(),
                  "EET: row '" + task_names_[r] + "' has wrong column count");
    values_.insert(values_.end(), values[r].begin(), values[r].end());
  }
  validate();
}

void EetMatrix::validate() const {
  require_input(!task_names_.empty(), "EET: at least one task type required");
  require_input(!machine_names_.empty(), "EET: at least one machine type required");
  for (std::size_t r = 0; r < task_names_.size(); ++r) {
    for (double v : row(r)) {
      require_input(std::isfinite(v) && v > 0.0,
                    "EET: entries must be finite and > 0 (row '" + task_names_[r] + "')");
    }
  }
  // Duplicate names would make CSV round-trips ambiguous.
  auto has_duplicates = [](std::vector<std::string> names) {
    std::sort(names.begin(), names.end());
    return std::adjacent_find(names.begin(), names.end()) != names.end();
  };
  require_input(!has_duplicates(task_names_), "EET: duplicate task type names");
  require_input(!has_duplicates(machine_names_), "EET: duplicate machine type names");
}

double EetMatrix::eet(TaskTypeId task_type, MachineTypeId machine_type) const {
  require_input(task_type < task_names_.size(), "EET: task type index out of range");
  require_input(machine_type < machine_names_.size(), "EET: machine type index out of range");
  return eet_unchecked(task_type, machine_type);
}

void EetMatrix::set_eet(TaskTypeId task_type, MachineTypeId machine_type, double value) {
  require_input(task_type < task_names_.size(), "EET: task type index out of range");
  require_input(machine_type < machine_names_.size(), "EET: machine type index out of range");
  require_input(std::isfinite(value) && value > 0.0, "EET: entry must be finite and > 0");
  values_[task_type * machine_names_.size() + machine_type] = value;
}

const std::string& EetMatrix::task_type_name(TaskTypeId id) const {
  require_input(id < task_names_.size(), "EET: task type index out of range");
  return task_names_[id];
}

const std::string& EetMatrix::machine_type_name(MachineTypeId id) const {
  require_input(id < machine_names_.size(), "EET: machine type index out of range");
  return machine_names_[id];
}

TaskTypeId EetMatrix::task_type_index(std::string_view name) const {
  for (std::size_t i = 0; i < task_names_.size(); ++i) {
    if (task_names_[i] == name) return i;
  }
  throw InputError("EET: unknown task type '" + std::string(name) +
                   "' (workload must conform to the EET matrix)");
}

bool EetMatrix::has_task_type(const std::string& name) const noexcept {
  return std::find(task_names_.begin(), task_names_.end(), name) != task_names_.end();
}

MachineTypeId EetMatrix::machine_type_index(const std::string& name) const {
  for (std::size_t i = 0; i < machine_names_.size(); ++i) {
    if (machine_names_[i] == name) return i;
  }
  throw InputError("EET: unknown machine type '" + name + "'");
}

double EetMatrix::row_mean(TaskTypeId task_type) const {
  require_input(task_type < task_names_.size(), "EET: task type index out of range");
  const auto r = row(task_type);
  return std::accumulate(r.begin(), r.end(), 0.0) / static_cast<double>(r.size());
}

double EetMatrix::row_min(TaskTypeId task_type) const {
  require_input(task_type < task_names_.size(), "EET: task type index out of range");
  const auto r = row(task_type);
  return *std::min_element(r.begin(), r.end());
}

bool EetMatrix::is_homogeneous() const noexcept {
  for (std::size_t r = 0; r < task_names_.size(); ++r) {
    for (double v : row(r)) {
      if (v != row(r).front()) return false;
    }
  }
  return true;
}

bool EetMatrix::is_consistent() const noexcept {
  if (values_.empty()) return true;
  // Consistency means: for every pair of machines, their speed order is the
  // same in every row. Comparing pairwise (rather than sorted index lists)
  // tolerates ties.
  for (std::size_t a = 0; a < machine_names_.size(); ++a) {
    for (std::size_t b = a + 1; b < machine_names_.size(); ++b) {
      int sign = 0;  // -1: a faster, +1: b faster
      for (std::size_t r = 0; r < task_names_.size(); ++r) {
        const auto values = row(r);
        int s = values[a] < values[b] ? -1 : (values[a] > values[b] ? 1 : 0);
        if (s == 0) continue;
        if (sign == 0) sign = s;
        else if (sign != s) return false;
      }
    }
  }
  return true;
}

namespace {

EetMatrix eet_from_doc(const util::CsvDoc& doc) {
  require_input(doc.row_count() >= 2, "EET CSV: need a header row and at least one task row");
  const auto header = doc.row(0);
  require_input(header.size() >= 2, "EET CSV: header needs task_type plus machine columns (" +
                                        doc.where(0) + ")");

  std::vector<std::string> machine_names;
  machine_names.reserve(header.size() - 1);
  for (std::size_t c = 1; c < header.size(); ++c) {
    machine_names.emplace_back(util::trim(header[c]));
  }

  std::vector<std::string> task_names;
  std::vector<std::vector<double>> values;
  for (std::size_t r = 1; r < doc.row_count(); ++r) {
    const auto row = doc.row(r);
    require_input(row.size() == header.size(),
                  "EET CSV: wrong field count at " + doc.where(r));
    task_names.emplace_back(util::trim(row[0]));
    std::vector<double> row_values;
    row_values.reserve(row.size() - 1);
    for (std::size_t c = 1; c < row.size(); ++c) {
      const auto value = util::parse_double(row[c]);
      require_input(value.has_value(), "EET CSV: non-numeric entry '" + std::string(row[c]) +
                                           "' at " + doc.where(r));
      row_values.push_back(*value);
    }
    values.push_back(std::move(row_values));
  }
  return EetMatrix(std::move(task_names), std::move(machine_names), std::move(values));
}

}  // namespace

EetMatrix EetMatrix::from_csv_text(const std::string& text) {
  return eet_from_doc(util::parse_csv_doc(text));
}

EetMatrix EetMatrix::load_csv(const std::string& path) {
  return eet_from_doc(util::read_csv_doc(path));
}

std::string EetMatrix::to_csv_text() const {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> header{"task_type"};
  header.insert(header.end(), machine_names_.begin(), machine_names_.end());
  rows.push_back(std::move(header));
  for (std::size_t r = 0; r < task_names_.size(); ++r) {
    std::vector<std::string> csv_row{task_names_[r]};
    for (double v : row(r)) csv_row.push_back(util::format_fixed(v, 4));
    rows.push_back(std::move(csv_row));
  }
  return util::to_csv(rows);
}

void EetMatrix::save_csv(const std::string& path) const {
  std::vector<std::vector<std::string>> rows = util::parse_csv(to_csv_text()).rows;
  util::write_csv_file(path, rows);
}

EetMatrix EetMatrix::homogeneous(std::vector<std::string> task_type_names,
                                 std::vector<std::string> machine_type_names,
                                 const std::vector<double>& base_times) {
  require_input(base_times.size() == task_type_names.size(),
                "EET::homogeneous: one base time per task type required");
  std::vector<std::vector<double>> values;
  values.reserve(task_type_names.size());
  for (double t : base_times) {
    values.emplace_back(machine_type_names.size(), t);
  }
  return EetMatrix(std::move(task_type_names), std::move(machine_type_names),
                   std::move(values));
}

EetMatrix EetMatrix::random(std::vector<std::string> task_type_names,
                            std::vector<std::string> machine_type_names, double base,
                            double task_range, double machine_range, bool inconsistent,
                            util::Rng& rng) {
  require_input(base > 0.0, "EET::random: base must be > 0");
  require_input(task_range >= 1.0 && machine_range >= 1.0,
                "EET::random: ranges must be >= 1");
  const std::size_t rows = task_type_names.size();
  const std::size_t cols = machine_type_names.size();
  std::vector<double> task_weight(rows);
  for (auto& u : task_weight) u = rng.uniform(1.0, task_range);
  std::vector<double> machine_weight(cols);
  for (auto& v : machine_weight) v = rng.uniform(1.0, machine_range);

  std::vector<std::vector<double>> values(rows, std::vector<double>(cols, 0.0));
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      const double v =
          inconsistent ? rng.uniform(1.0, machine_range) : machine_weight[c];
      values[r][c] = base * task_weight[r] * v;
    }
  }
  return EetMatrix(std::move(task_type_names), std::move(machine_type_names),
                   std::move(values));
}

}  // namespace e2c::hetero
