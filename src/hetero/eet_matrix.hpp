/// \file eet_matrix.hpp
/// \brief The Expected Execution Time (EET) matrix — E2C's heterogeneity model.
///
/// Following the paper (§3) and Ali et al. [4], system heterogeneity is
/// captured by a matrix giving the expected execution time of each task type
/// on each machine type. A homogeneous system is the degenerate case where
/// every row is constant. The matrix is the single source of truth consulted
/// by every scheduling policy.
///
/// Storage is contiguous row-major (one flat array, row = task type): the
/// scheduling hot path reads EET cells millions of times per simulated run,
/// and the policies iterate whole rows per candidate task. eet() keeps the
/// bounds-checked contract for user-facing code; eet_unchecked()/row() are
/// the inline fast path for validated indices inside the scheduler.
///
/// File format (matches E2C-Sim's CSV):
///   task_type,m1,m2,...
///   T1,12.0,3.5,...
///   T2,...
#pragma once

#include <cassert>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "hetero/types.hpp"
#include "util/rng.hpp"

namespace e2c::hetero {

/// Expected Execution Time matrix: rows are task types, columns machine types.
/// All entries must be finite and strictly positive (a zero execution time is
/// physically meaningless and would break event ordering).
class EetMatrix {
 public:
  EetMatrix() = default;

  /// Builds a matrix from names and values. values[row][col] is seconds of
  /// execution for task type \p row on machine type \p col.
  /// Throws e2c::InputError on dimension mismatch or non-positive entries.
  EetMatrix(std::vector<std::string> task_type_names,
            std::vector<std::string> machine_type_names,
            std::vector<std::vector<double>> values);

  /// Number of task types (rows).
  [[nodiscard]] std::size_t task_type_count() const noexcept { return task_names_.size(); }

  /// Number of machine types (columns).
  [[nodiscard]] std::size_t machine_type_count() const noexcept {
    return machine_names_.size();
  }

  /// Expected execution time of \p task_type on \p machine_type (seconds).
  /// Bounds-checked; throws e2c::InputError on out-of-range indices.
  [[nodiscard]] double eet(TaskTypeId task_type, MachineTypeId machine_type) const;

  /// Unchecked fast path for indices already validated against the matrix
  /// shape (machine instances and task records are checked at construction).
  [[nodiscard]] double eet_unchecked(TaskTypeId task_type,
                                     MachineTypeId machine_type) const noexcept {
    assert(task_type < task_names_.size() && machine_type < machine_names_.size());
    return values_[task_type * machine_names_.size() + machine_type];
  }

  /// The EET row of a task type (one entry per machine type, column order),
  /// for policies that scan all machines for one task. Unchecked.
  [[nodiscard]] std::span<const double> row(TaskTypeId task_type) const noexcept {
    assert(task_type < task_names_.size());
    const std::size_t cols = machine_names_.size();
    return {values_.data() + task_type * cols, cols};
  }

  /// Overwrites one entry (the GUI "Edit" path). Throws e2c::InputError on
  /// out-of-range indices or a non-positive value.
  void set_eet(TaskTypeId task_type, MachineTypeId machine_type, double value);

  /// Display name of a task type row.
  [[nodiscard]] const std::string& task_type_name(TaskTypeId id) const;

  /// Display name of a machine type column.
  [[nodiscard]] const std::string& machine_type_name(MachineTypeId id) const;

  /// All task type names, row order.
  [[nodiscard]] const std::vector<std::string>& task_type_names() const noexcept {
    return task_names_;
  }

  /// All machine type names, column order.
  [[nodiscard]] const std::vector<std::string>& machine_type_names() const noexcept {
    return machine_names_;
  }

  /// Index of the task type named \p name; throws e2c::InputError if absent.
  /// The workload loader uses this to enforce the paper's compatibility rule
  /// ("no task type within the workload that is not defined within the EET").
  /// Accepts a view so zero-copy CSV ingest resolves names without copying.
  [[nodiscard]] TaskTypeId task_type_index(std::string_view name) const;

  /// True if the named task type exists.
  [[nodiscard]] bool has_task_type(const std::string& name) const noexcept;

  /// Index of the machine type named \p name; throws e2c::InputError if absent.
  [[nodiscard]] MachineTypeId machine_type_index(const std::string& name) const;

  /// Mean EET of a task type across all machine types (used for deadline
  /// assignment and load calibration).
  [[nodiscard]] double row_mean(TaskTypeId task_type) const;

  /// Minimum EET of a task type across machine types (its best-case time).
  [[nodiscard]] double row_min(TaskTypeId task_type) const;

  /// True if every row is constant: every task type runs equally fast on
  /// every machine type (a homogeneous system).
  [[nodiscard]] bool is_homogeneous() const noexcept;

  /// True if all task types order the machine types identically by speed —
  /// "consistent" heterogeneity in the Ali et al. taxonomy. An inconsistent
  /// matrix (some machine is faster for one task type, slower for another)
  /// is what GPUs/FPGAs/ASICs produce and what iCanCloud-style simulators
  /// cannot model (Table 1 of the paper).
  [[nodiscard]] bool is_consistent() const noexcept;

  // ---- persistence -------------------------------------------------------

  /// Parses the E2C CSV format. Throws e2c::InputError on malformed content.
  [[nodiscard]] static EetMatrix from_csv_text(const std::string& text);

  /// Loads from a CSV file.
  [[nodiscard]] static EetMatrix load_csv(const std::string& path);

  /// Serializes to the E2C CSV format.
  [[nodiscard]] std::string to_csv_text() const;

  /// Writes to a CSV file.
  void save_csv(const std::string& path) const;

  // ---- synthesis ---------------------------------------------------------

  /// Generates a homogeneous matrix: EET[i][j] = base_times[i] for all j.
  [[nodiscard]] static EetMatrix homogeneous(std::vector<std::string> task_type_names,
                                             std::vector<std::string> machine_type_names,
                                             const std::vector<double>& base_times);

  /// Range-based synthesis of Ali et al. [4]: task weight u_i ~ U(1, task_range)
  /// and machine weight v_j ~ U(1, machine_range) give EET = base * u_i * v_j
  /// (consistent). When \p inconsistent is true the machine weight is
  /// re-sampled per cell, producing inconsistent heterogeneity.
  [[nodiscard]] static EetMatrix random(std::vector<std::string> task_type_names,
                                        std::vector<std::string> machine_type_names,
                                        double base, double task_range,
                                        double machine_range, bool inconsistent,
                                        util::Rng& rng);

 private:
  void validate() const;

  std::vector<std::string> task_names_;
  std::vector<std::string> machine_names_;
  /// Row-major [task_type * machine_type_count + machine_type].
  std::vector<double> values_;
};

}  // namespace e2c::hetero
