/// \file machine_catalog.hpp
/// \brief Preset machine types with power models.
///
/// The paper motivates E2C with systems mixing general-purpose CPUs with
/// GPUs, FPGAs and ASICs. This catalog provides named presets whose power
/// figures are representative of each class (edge-scale parts), so course
/// scenarios and the energy experiments have realistic relative magnitudes.
/// Values are deliberately round numbers: E2C teaches *relative* behaviour,
/// not vendor benchmarking.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "hetero/types.hpp"

namespace e2c::hetero {

/// Returns the built-in machine-type presets:
///   x86-cpu  (idle 20 W, busy 95 W)   — general-purpose server CPU
///   arm-cpu  (idle  5 W, busy 15 W)   — low-power edge CPU
///   gpu      (idle 25 W, busy 250 W)  — discrete accelerator
///   fpga     (idle 10 W, busy 40 W)   — reconfigurable fabric
///   asic     (idle  2 W, busy  8 W)   — domain-specific accelerator
[[nodiscard]] const std::vector<MachineTypeSpec>& builtin_machine_types();

/// Looks up a preset by (case-insensitive) name.
[[nodiscard]] std::optional<MachineTypeSpec> find_machine_type(const std::string& name);

/// A generic spec for machine type names with no preset: mid-range power
/// (idle 10 W, busy 100 W). Used when a student's EET CSV invents its own
/// machine names (m1, m2, ...).
[[nodiscard]] MachineTypeSpec generic_machine_type(const std::string& name);

/// Resolves a list of machine-type names to specs: preset if known,
/// generic otherwise. This is what the CLI does with EET CSV headers.
[[nodiscard]] std::vector<MachineTypeSpec> resolve_machine_types(
    const std::vector<std::string>& names);

}  // namespace e2c::hetero
