/// \file pet_matrix.hpp
/// \brief Probabilistic Execution Time (PET) model — stochastic extension of
/// the EET matrix.
///
/// The E2C authors' research line (Gentry et al. IPDPS'19 [10], Denninnart
/// et al. JPDC'20 [8], Mokhtari et al. IPDPSW'20 [14]) models task execution
/// times as *distributions* rather than scalars; the EET matrix is the
/// deterministic expectation of this model. E2C-Sim++ supports both: a
/// simulation configured with a PET matrix samples the actual execution time
/// of each dispatch, while schedulers keep planning on the EET expectations
/// — exactly the mismatch that makes probabilistic task pruning worthwhile.
#pragma once

#include <string>
#include <vector>

#include "hetero/eet_matrix.hpp"
#include "util/rng.hpp"

namespace e2c::hetero {

/// Distribution family of one PET cell.
enum class PetKind : int {
  kDeterministic,  ///< always exactly the mean (reduces to EET)
  kNormal,         ///< truncated normal (floor at a small positive epsilon)
  kUniform,        ///< uniform on [mean*(1-sqrt(3)cv), mean*(1+sqrt(3)cv)]
  kExponential,    ///< exponential with the given mean (cv fixed at 1)
  kLognormal,      ///< lognormal matched to the given mean and cv
};

/// Display name ("deterministic", "normal", ...).
[[nodiscard]] const char* pet_kind_name(PetKind kind) noexcept;

/// Parses a case-insensitive kind name; throws e2c::InputError if unknown.
[[nodiscard]] PetKind parse_pet_kind(const std::string& name);

/// One stochastic execution-time cell: family + mean + coefficient of
/// variation (stddev / mean).
struct PetCell {
  PetKind kind = PetKind::kDeterministic;
  double mean = 1.0;
  double cv = 0.0;  ///< ignored for deterministic; forced to 1 for exponential

  /// Draws one execution time (> 0).
  [[nodiscard]] double sample(util::Rng& rng) const;

  /// Standard deviation implied by (kind, mean, cv).
  [[nodiscard]] double stddev() const noexcept;
};

/// Matrix of PET cells aligned with an EET matrix's shape. The EET value of
/// each cell is the PET mean, so any simulation/policy that only understands
/// EET remains consistent with the stochastic ground truth.
class PetMatrix {
 public:
  PetMatrix() = default;

  /// Builds a PET with every cell deterministic at the EET values.
  [[nodiscard]] static PetMatrix deterministic(const EetMatrix& eet);

  /// Builds a PET where every cell has the EET value as mean and the given
  /// family/cv. Throws e2c::InputError on cv < 0.
  [[nodiscard]] static PetMatrix homoscedastic(const EetMatrix& eet, PetKind kind,
                                               double cv);

  /// Number of task types (rows).
  [[nodiscard]] std::size_t task_type_count() const noexcept { return cells_.size(); }

  /// Number of machine types (columns).
  [[nodiscard]] std::size_t machine_type_count() const noexcept {
    return cells_.empty() ? 0 : cells_.front().size();
  }

  /// The cell for (task type, machine type); throws e2c::InputError when out
  /// of range.
  [[nodiscard]] const PetCell& cell(TaskTypeId task_type, MachineTypeId machine_type) const;

  /// Overwrites one cell. Throws e2c::InputError on invalid parameters.
  void set_cell(TaskTypeId task_type, MachineTypeId machine_type, PetCell cell);

  /// Samples an execution time for (task type, machine type).
  [[nodiscard]] double sample(TaskTypeId task_type, MachineTypeId machine_type,
                              util::Rng& rng) const;

  /// The expectation matrix: an EetMatrix whose entries are the PET means.
  /// Useful to hand planners the expectations the PET implies.
  [[nodiscard]] EetMatrix to_eet(std::vector<std::string> task_type_names,
                                 std::vector<std::string> machine_type_names) const;

 private:
  std::vector<std::vector<PetCell>> cells_;
};

}  // namespace e2c::hetero
