#include "hetero/pet_matrix.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/string_util.hpp"

namespace e2c::hetero {

namespace {
constexpr double kMinExec = 1e-6;  // execution times must stay positive
}

const char* pet_kind_name(PetKind kind) noexcept {
  switch (kind) {
    case PetKind::kDeterministic: return "deterministic";
    case PetKind::kNormal: return "normal";
    case PetKind::kUniform: return "uniform";
    case PetKind::kExponential: return "exponential";
    case PetKind::kLognormal: return "lognormal";
  }
  return "unknown";
}

PetKind parse_pet_kind(const std::string& name) {
  for (PetKind kind : {PetKind::kDeterministic, PetKind::kNormal, PetKind::kUniform,
                       PetKind::kExponential, PetKind::kLognormal}) {
    if (util::iequals(name, pet_kind_name(kind))) return kind;
  }
  throw InputError("unknown PET distribution: '" + name + "'");
}

double PetCell::sample(util::Rng& rng) const {
  switch (kind) {
    case PetKind::kDeterministic:
      return mean;
    case PetKind::kNormal:
      return std::max(kMinExec, rng.normal(mean, cv * mean));
    case PetKind::kUniform: {
      // Half-width sqrt(3)*sigma gives the requested cv exactly.
      const double half = std::sqrt(3.0) * cv * mean;
      return std::max(kMinExec, rng.uniform(mean - half, mean + half));
    }
    case PetKind::kExponential:
      return std::max(kMinExec, rng.exponential(1.0 / mean));
    case PetKind::kLognormal: {
      // Match mean and cv: sigma^2 = ln(1+cv^2), mu = ln(mean) - sigma^2/2.
      const double sigma_sq = std::log(1.0 + cv * cv);
      const double mu = std::log(mean) - 0.5 * sigma_sq;
      return std::max(kMinExec, rng.lognormal(mu, std::sqrt(sigma_sq)));
    }
  }
  return mean;
}

double PetCell::stddev() const noexcept {
  switch (kind) {
    case PetKind::kDeterministic: return 0.0;
    case PetKind::kExponential: return mean;
    default: return cv * mean;
  }
}

PetMatrix PetMatrix::deterministic(const EetMatrix& eet) {
  return homoscedastic(eet, PetKind::kDeterministic, 0.0);
}

PetMatrix PetMatrix::homoscedastic(const EetMatrix& eet, PetKind kind, double cv) {
  require_input(cv >= 0.0, "PET: cv must be >= 0");
  PetMatrix pet;
  pet.cells_.resize(eet.task_type_count());
  for (std::size_t r = 0; r < eet.task_type_count(); ++r) {
    pet.cells_[r].resize(eet.machine_type_count());
    for (std::size_t c = 0; c < eet.machine_type_count(); ++c) {
      pet.cells_[r][c] = PetCell{kind, eet.eet(r, c), cv};
    }
  }
  return pet;
}

const PetCell& PetMatrix::cell(TaskTypeId task_type, MachineTypeId machine_type) const {
  require_input(task_type < cells_.size(), "PET: task type index out of range");
  require_input(machine_type < cells_[task_type].size(),
                "PET: machine type index out of range");
  return cells_[task_type][machine_type];
}

void PetMatrix::set_cell(TaskTypeId task_type, MachineTypeId machine_type, PetCell value) {
  require_input(task_type < cells_.size(), "PET: task type index out of range");
  require_input(machine_type < cells_[task_type].size(),
                "PET: machine type index out of range");
  require_input(std::isfinite(value.mean) && value.mean > 0.0, "PET: mean must be > 0");
  require_input(value.cv >= 0.0, "PET: cv must be >= 0");
  cells_[task_type][machine_type] = value;
}

double PetMatrix::sample(TaskTypeId task_type, MachineTypeId machine_type,
                         util::Rng& rng) const {
  return cell(task_type, machine_type).sample(rng);
}

EetMatrix PetMatrix::to_eet(std::vector<std::string> task_type_names,
                            std::vector<std::string> machine_type_names) const {
  std::vector<std::vector<double>> values(task_type_count());
  for (std::size_t r = 0; r < task_type_count(); ++r) {
    values[r].resize(machine_type_count());
    for (std::size_t c = 0; c < machine_type_count(); ++c) {
      values[r][c] = cells_[r][c].mean;
    }
  }
  return EetMatrix(std::move(task_type_names), std::move(machine_type_names),
                   std::move(values));
}

}  // namespace e2c::hetero
