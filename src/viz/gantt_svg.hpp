/// \file gantt_svg.hpp
/// \brief SVG Gantt-chart export of a finished simulation.
///
/// One lane per machine; one rectangle per executed task span, colored by
/// task type; hatched (semi-transparent) rectangles for partially executed
/// tasks that were dropped at their deadline. Together with the ANSI live
/// view this replaces the Qt animation with a publishable artifact students
/// can embed in their assignment write-ups.
#pragma once

#include <string>

#include "sched/simulation.hpp"

namespace e2c::viz {

/// SVG rendering options.
struct GanttOptions {
  int width_px = 960;
  int lane_height_px = 28;
  int margin_px = 60;
  bool show_deadline_marks = true;  ///< red tick at each dropped task's miss time
};

/// Renders the simulation's execution history as an SVG document.
/// Tasks that never started do not appear (they never occupied a machine).
[[nodiscard]] std::string render_gantt_svg(const sched::Simulation& simulation,
                                           const GanttOptions& options = {});

/// Writes render_gantt_svg() output to \p path. Throws e2c::IoError.
void save_gantt_svg(const sched::Simulation& simulation, const std::string& path,
                    const GanttOptions& options = {});

}  // namespace e2c::viz
