/// \file bar_chart_svg.hpp
/// \brief SVG rendering of the grouped bar charts (Figs. 5-7 as artifacts).
///
/// The ASCII renderer (bar_chart.hpp) serves the terminal; this renderer
/// produces the same chart as a standalone SVG a student can embed in an
/// assignment write-up — the deliverable the paper's §4 asks for ("students
/// then created bar graphs to depict the percentage of completed tasks").
#pragma once

#include <string>

#include "viz/bar_chart.hpp"

namespace e2c::viz {

/// SVG chart options.
struct BarChartSvgOptions {
  int width_px = 720;
  int height_px = 420;
  bool y_grid = true;  ///< horizontal gridlines every 20% of the axis
};

/// Renders the chart as a vertical grouped bar chart (groups on the x axis,
/// one colored bar per series, legend on top). Throws e2c::InputError on a
/// series/group size mismatch.
[[nodiscard]] std::string render_bar_chart_svg(const BarChart& chart,
                                               const BarChartSvgOptions& options = {});

/// Writes render_bar_chart_svg() output to \p path. Throws e2c::IoError.
void save_bar_chart_svg(const BarChart& chart, const std::string& path,
                        const BarChartSvgOptions& options = {});

}  // namespace e2c::viz
