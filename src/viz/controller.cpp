#include "viz/controller.hpp"

#include <thread>

#include "util/error.hpp"

namespace e2c::viz {

const char* run_state_name(RunState state) noexcept {
  switch (state) {
    case RunState::kReady: return "ready";
    case RunState::kRunning: return "running";
    case RunState::kPaused: return "paused";
    case RunState::kFinished: return "finished";
  }
  return "unknown";
}

SimulationController::SimulationController(SimulationFactory factory)
    : factory_(std::move(factory)),
      sleeper_([](std::chrono::duration<double> d) { std::this_thread::sleep_for(d); }) {
  require_input(static_cast<bool>(factory_), "controller: factory must not be null");
  simulation_ = factory_();
  require_input(simulation_ != nullptr, "controller: factory returned null");
}

void SimulationController::set_speed(double sim_seconds_per_wall_second) {
  require_input(sim_seconds_per_wall_second > 0.0, "controller: speed must be > 0");
  speed_ = sim_seconds_per_wall_second;
}

void SimulationController::play(const FrameCallback& frame) {
  if (state_ == RunState::kFinished) return;
  state_ = RunState::kRunning;
  while (state_ == RunState::kRunning) {
    const core::SimTime before = simulation_->engine().now();
    if (!simulation_->step()) {
      state_ = RunState::kFinished;
      break;
    }
    const core::SimTime advanced = simulation_->engine().now() - before;
    if (advanced > 0.0) {
      sleeper_(std::chrono::duration<double>(advanced / speed_));
    }
    if (frame && !frame(*simulation_)) {
      state_ = RunState::kPaused;
      break;
    }
  }
  refresh_state();
}

void SimulationController::pause() noexcept {
  if (state_ == RunState::kRunning) state_ = RunState::kPaused;
}

bool SimulationController::increment() {
  if (state_ == RunState::kFinished) return false;
  const bool stepped = simulation_->step();
  state_ = stepped ? RunState::kPaused : RunState::kFinished;
  refresh_state();
  return stepped;
}

void SimulationController::run_to_completion() {
  simulation_->run();
  state_ = RunState::kFinished;
}

void SimulationController::reset() {
  simulation_ = factory_();
  require_input(simulation_ != nullptr, "controller: factory returned null on reset");
  state_ = RunState::kReady;
}

void SimulationController::set_sleeper(Sleeper sleeper) {
  require_input(static_cast<bool>(sleeper), "controller: sleeper must not be null");
  sleeper_ = std::move(sleeper);
}

void SimulationController::refresh_state() noexcept {
  if (simulation_->engine().pending_count() == 0 &&
      (state_ == RunState::kRunning || state_ == RunState::kPaused)) {
    state_ = RunState::kFinished;
  }
}

}  // namespace e2c::viz
