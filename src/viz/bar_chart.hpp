/// \file bar_chart.hpp
/// \brief ASCII grouped bar charts — the figures of the class assignment.
///
/// The assignment has students plot completion percentage per scheduling
/// method and intensity (the paper's Figures 5-7). This renderer produces
/// the same grouped-bar layout in a terminal so the benches can print the
/// figures directly.
#pragma once

#include <string>
#include <vector>

namespace e2c::viz {

/// One series (e.g. one scheduling policy) of a grouped bar chart.
struct BarSeries {
  std::string name;            ///< legend label, e.g. "MECT"
  std::vector<double> values;  ///< one value per group (e.g. low/med/high)
};

/// Chart description.
struct BarChart {
  std::string title;
  std::vector<std::string> groups;  ///< x-axis group labels
  std::vector<BarSeries> series;    ///< bars within each group
  double max_value = 100.0;         ///< axis maximum (completion % -> 100)
  std::size_t width = 40;           ///< bar length in characters at max_value
  std::string unit = "%";
};

/// Renders the chart as horizontal grouped bars. Throws e2c::InputError if a
/// series' value count does not match the group count.
[[nodiscard]] std::string render_bar_chart(const BarChart& chart);

}  // namespace e2c::viz
