/// \file html_report.hpp
/// \brief Self-contained HTML report page: summary tables + embedded Gantt.
///
/// Addresses the paper's own finding that the report section scored lowest
/// in the student survey (5.7/10, "students could not find their required
/// reports easily"): instead of a menu of separate CSVs, one page shows the
/// summary, the per-machine table, the missed-task panel and the Gantt
/// together. The CSV exports remain available for plotting.
#pragma once

#include <string>

#include "sched/simulation.hpp"

namespace e2c::viz {

/// Renders a single-file HTML report for a finished simulation.
[[nodiscard]] std::string render_html_report(const sched::Simulation& simulation);

/// Writes render_html_report() output to \p path. Throws e2c::IoError.
void save_html_report(const sched::Simulation& simulation, const std::string& path);

}  // namespace e2c::viz
