#include "viz/gantt_svg.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "util/error.hpp"
#include "util/string_util.hpp"

namespace e2c::viz {

namespace {

/// Distinct fill colors per task type (cycled).
const char* kTypeFills[] = {"#4e9fd1", "#e0a33c", "#b06fc4", "#62b36a", "#5b6ee1", "#d1605e"};

const char* fill_for_type(std::size_t type) {
  return kTypeFills[type % (sizeof(kTypeFills) / sizeof(kTypeFills[0]))];
}

}  // namespace

std::string render_gantt_svg(const sched::Simulation& simulation,
                             const GanttOptions& options) {
  const workload::TaskStateSoA& state = simulation.task_state();
  core::SimTime horizon = simulation.engine().now();
  for (std::size_t i = 0; i < state.size(); ++i) {
    if (core::time_set(state.completion_time[i])) {
      horizon = std::max(horizon, state.completion_time[i]);
    }
    if (core::time_set(state.missed_time[i])) {
      horizon = std::max(horizon, state.missed_time[i]);
    }
  }
  if (horizon <= 0.0) horizon = 1.0;

  const int lanes = static_cast<int>(simulation.machine_count());
  const int chart_width = options.width_px - 2 * options.margin_px;
  const int height = options.margin_px * 2 + lanes * options.lane_height_px;
  const auto x_of = [&](core::SimTime t) {
    return options.margin_px + t / horizon * chart_width;
  };

  std::ostringstream svg;
  svg << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << options.width_px
      << "\" height=\"" << height << "\" font-family=\"sans-serif\" font-size=\"11\">\n";
  svg << "<text x=\"" << options.margin_px << "\" y=\"18\" font-size=\"14\">E2C Gantt — "
      << simulation.policy().name() << "</text>\n";

  // Lanes + machine labels.
  for (int lane = 0; lane < lanes; ++lane) {
    const int y = options.margin_px + lane * options.lane_height_px;
    svg << "<line x1=\"" << options.margin_px << "\" y1=\"" << y + options.lane_height_px
        << "\" x2=\"" << options.width_px - options.margin_px << "\" y2=\""
        << y + options.lane_height_px << "\" stroke=\"#ccc\"/>\n";
    svg << "<text x=\"4\" y=\"" << y + options.lane_height_px / 2 + 4 << "\">"
        << simulation.machine(static_cast<std::size_t>(lane)).name() << "</text>\n";
  }

  // Failure intervals: hatch the lane red while the machine was down so
  // aborted work and the recovery gap are visible at a glance.
  for (int lane = 0; lane < lanes; ++lane) {
    const machines::Machine& machine = simulation.machine(static_cast<std::size_t>(lane));
    for (const machines::FailureSpan& span : machine.failure_spans()) {
      const core::SimTime start = std::min(span.start, horizon);
      const core::SimTime end = std::min(span.end, horizon);
      if (end <= start) continue;
      const double x = x_of(start);
      const double w = std::max(1.0, x_of(end) - x);
      const int y = options.margin_px + lane * options.lane_height_px + 1;
      svg << "<rect x=\"" << util::format_fixed(x, 1) << "\" y=\"" << y << "\" width=\""
          << util::format_fixed(w, 1) << "\" height=\"" << options.lane_height_px - 2
          << "\" fill=\"#d1605e\" opacity=\"0.25\" stroke=\"#d1605e\""
          << " stroke-dasharray=\"3,2\"><title>" << machine.name() << " FAILED "
          << util::format_fixed(start, 2) << "-" << util::format_fixed(end, 2)
          << "</title></rect>\n";
    }
  }

  // Execution spans.
  for (std::size_t i = 0; i < state.size(); ++i) {
    if (!core::time_set(state.start_time[i]) ||
        state.machine[i] == workload::kNoMachine) {
      continue;
    }
    const core::SimTime start = state.start_time[i];
    const workload::TaskStatus status = state.status[i];
    core::SimTime end;
    bool dropped_midrun = false;
    if (core::time_set(state.completion_time[i])) {
      end = state.completion_time[i];
    } else if (core::time_set(state.missed_time[i]) &&
               status == workload::TaskStatus::kDropped) {
      end = state.missed_time[i];
      dropped_midrun = true;
    } else if (core::time_set(state.missed_time[i]) &&
               status == workload::TaskStatus::kReplicaCancelled) {
      end = state.missed_time[i];  // a losing replica cut short mid-run
    } else {
      continue;  // queued-but-dropped tasks never executed
    }
    if (end <= start) continue;
    const bool replica_cancelled = status == workload::TaskStatus::kReplicaCancelled;
    const int lane = static_cast<int>(state.machine[i]);
    const double x = x_of(start);
    const double w = std::max(1.0, x_of(end) - x);
    const int y = options.margin_px + lane * options.lane_height_px + 3;
    svg << "<rect x=\"" << util::format_fixed(x, 1) << "\" y=\"" << y << "\" width=\""
        << util::format_fixed(w, 1) << "\" height=\"" << options.lane_height_px - 6
        << "\" fill=\"" << fill_for_type(state.type(i)) << "\" opacity=\""
        << (dropped_midrun ? "0.45" : (replica_cancelled ? "0.3" : "0.9")) << "\"";
    if (replica_cancelled) svg << " stroke=\"#888\" stroke-dasharray=\"4,2\"";
    svg << "><title>task " << state.id(i) << " ("
        << simulation.eet().task_type_name(state.type(i)) << ") ";
    // Tenant label only on multi-tenant runs, so single-tenant SVGs (and any
    // golden expectations over them) stay byte-identical.
    if (state.tenant(i) < simulation.tenant_names().size() &&
        simulation.tenant_names().size() > 1) {
      svg << simulation.tenant_names()[state.tenant(i)] << " ";
    }
    svg << util::format_fixed(start, 2) << "-" << util::format_fixed(end, 2)
        << (dropped_midrun ? " DROPPED" : "");
    if (replica_cancelled && state.has_replica_column() &&
        state.replica_of[i] != workload::kNoTaskId) {
      svg << " replica of " << state.replica_of[i] << " REPLICA-CANCELLED";
    }
    svg << "</title></rect>\n";
    if (dropped_midrun && options.show_deadline_marks) {
      svg << "<line x1=\"" << util::format_fixed(x + w, 1) << "\" y1=\"" << y
          << "\" x2=\"" << util::format_fixed(x + w, 1) << "\" y2=\""
          << y + options.lane_height_px - 6 << "\" stroke=\"red\" stroke-width=\"2\"/>\n";
    }
  }

  // Checkpoint commits: short dark ticks at the bottom of each lane, so the
  // checkpoint cadence (and what a crash rolls back to) is visible.
  for (int lane = 0; lane < lanes; ++lane) {
    const machines::Machine& machine = simulation.machine(static_cast<std::size_t>(lane));
    for (const machines::CheckpointMark& mark : machine.checkpoint_marks()) {
      if (mark.time > horizon) continue;
      const double x = x_of(mark.time);
      const int y = options.margin_px + (lane + 1) * options.lane_height_px;
      svg << "<line x1=\"" << util::format_fixed(x, 1) << "\" y1=\"" << y - 8
          << "\" x2=\"" << util::format_fixed(x, 1) << "\" y2=\"" << y
          << "\" stroke=\"#222\" stroke-width=\"1.5\"><title>checkpoint task "
          << mark.task << " @ " << util::format_fixed(mark.time, 2)
          << "</title></line>\n";
    }
  }

  // Time axis ticks (5 divisions).
  for (int i = 0; i <= 5; ++i) {
    const double t = horizon * i / 5.0;
    const double x = x_of(t);
    svg << "<text x=\"" << util::format_fixed(x - 8, 1) << "\" y=\"" << height - 28
        << "\" fill=\"#555\">" << util::format_fixed(t, 1) << "</text>\n";
  }
  svg << "</svg>\n";
  return svg.str();
}

void save_gantt_svg(const sched::Simulation& simulation, const std::string& path,
                    const GanttOptions& options) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw IoError("cannot open SVG file for writing: " + path);
  out << render_gantt_svg(simulation, options);
  if (!out) throw IoError("failed writing SVG file: " + path);
}

}  // namespace e2c::viz
