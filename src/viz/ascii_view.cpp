#include "viz/ascii_view.hpp"

#include <sstream>

#include "util/string_util.hpp"

namespace e2c::viz {

namespace {

/// Cycle of ANSI foreground colors, one per task type (mirrors the GUI's
/// per-type machine colors in Fig. 1).
const char* type_color(std::size_t type, bool use_color) {
  if (!use_color) return "";
  static const char* kColors[] = {"\033[36m", "\033[33m", "\033[35m",
                                  "\033[32m", "\033[34m", "\033[31m"};
  return kColors[type % (sizeof(kColors) / sizeof(kColors[0]))];
}

const char* reset_color(bool use_color) { return use_color ? "\033[0m" : ""; }

std::string task_chip(const sched::Simulation& simulation, workload::TaskId id,
                      const AsciiViewOptions& options) {
  // Find the task to color it by type; linear scan is fine for display sizes.
  const workload::TaskStateSoA& state = simulation.task_state();
  for (std::size_t i = 0; i < state.size(); ++i) {
    if (state.id(i) != id) continue;
    std::ostringstream out;
    out << type_color(state.type(i), options.use_color) << "["
        << simulation.eet().task_type_name(state.type(i)) << "#" << id << "]"
        << reset_color(options.use_color);
    return out.str();
  }
  return "[?#" + std::to_string(id) + "]";
}

}  // namespace

std::string render_frame(const sched::Simulation& simulation,
                         const AsciiViewOptions& options) {
  std::ostringstream out;
  if (options.clear_screen) out << "\033[H\033[2J";

  out << "E2C  t=" << util::format_fixed(simulation.engine().now(), 2)
      << "  policy=" << simulation.policy().name()
      << "  events=" << simulation.engine().processed_count() << "\n";

  // Batch queue (Fig. 1: tasks waiting for the scheduler).
  const auto batch = simulation.batch_queue_ids();
  out << "  batch queue (" << batch.size() << "): ";
  for (std::size_t i = 0; i < batch.size() && i < options.queue_display; ++i) {
    out << task_chip(simulation, batch[i], options) << " ";
  }
  if (batch.size() > options.queue_display) out << "…";
  out << "\n  scheduler --> machines\n";

  // Machines with running task + local queue.
  for (std::size_t m = 0; m < simulation.machine_count(); ++m) {
    const machines::Machine& machine = simulation.machine(m);
    out << "  " << util::pad_right(machine.name(), 10) << " ";
    if (machine.failed()) {
      out << (options.use_color ? "\033[31mFAILED\033[0m" : "FAILED");
    } else if (const auto running = machine.running_task_id()) {
      out << "RUN " << task_chip(simulation, *running, options);
    } else if (!machine.online()) {
      out << "off";
    } else {
      out << "idle";
    }
    const auto queued = machine.queued_task_ids();
    out << "  queue(" << queued.size() << "):";
    for (std::size_t i = 0; i < queued.size() && i < options.queue_display; ++i) {
      out << " " << task_chip(simulation, queued[i], options);
    }
    if (queued.size() > options.queue_display) out << " …";
    out << "\n";
  }

  const auto& counters = simulation.counters();
  out << "  completed=" << counters.completed << "  cancelled=" << counters.cancelled
      << "  missed=" << counters.dropped << "  failed=" << counters.failed
      << "  total=" << counters.total << "\n";
  if (simulation.fault_config().enabled) {
    out << "  waste: lost=" << util::format_fixed(simulation.lost_work_seconds(), 1)
        << "s ckpt=" << util::format_fixed(simulation.checkpoint_overhead_seconds(), 1)
        << "s replicas="
        << util::format_fixed(counters.cancelled_replica_seconds, 1) << "s\n";
    if (const fault::IoChannel* channel = simulation.io_channel()) {
      out << "  io: active=" << channel->active_count()
          << " waiting=" << channel->waiting_count()
          << " writes=" << channel->writes_completed()
          << " reads=" << channel->reads_completed()
          << " peak=" << channel->peak_concurrent() << "\n";
    }
  }
  // Per-tenant waste lines only on multi-tenant runs, so single-tenant
  // frames (and their golden expectations) are untouched.
  if (simulation.tenant_names().size() > 1) {
    std::vector<double> lost(simulation.tenant_names().size(), 0.0);
    std::vector<double> ckpt(lost.size(), 0.0);
    const workload::TaskStateSoA& state = simulation.task_state();
    for (std::size_t i = 0; i < state.size(); ++i) {
      const std::uint32_t tenant = state.tenant(i);
      if (tenant >= lost.size()) continue;
      lost[tenant] += state.lost_seconds[i];
      ckpt[tenant] += state.checkpoint_overhead_seconds[i];
    }
    for (std::size_t i = 0; i < lost.size(); ++i) {
      out << "  " << simulation.tenant_names()[i]
          << ": lost=" << util::format_fixed(lost[i], 1)
          << "s ckpt=" << util::format_fixed(ckpt[i], 1) << "s\n";
    }
  }
  return out.str();
}

std::string render_missed_panel(const sched::Simulation& simulation, std::size_t max_rows) {
  std::ostringstream out;
  out << "Missed Tasks\n";
  out << util::pad_right("task", 7) << util::pad_right("type", 6)
      << util::pad_right("machine", 9) << util::pad_right("arrival", 9)
      << util::pad_right("start", 9) << util::pad_right("missed", 9) << "\n";
  std::size_t shown = 0;
  const workload::TaskStateSoA& state = simulation.task_state();
  for (const std::size_t i : simulation.missed_tasks()) {
    if (shown++ >= max_rows) {
      out << "…\n";
      break;
    }
    const std::string machine = state.machine[i] != workload::kNoMachine
                                    ? simulation.machine(state.machine[i]).name()
                                    : "-";
    out << util::pad_right(std::to_string(state.id(i)), 7)
        << util::pad_right(simulation.eet().task_type_name(state.type(i)), 6)
        << util::pad_right(machine, 9)
        << util::pad_right(util::format_fixed(state.arrival(i), 2), 9)
        << util::pad_right(core::time_set(state.start_time[i])
                               ? util::format_fixed(state.start_time[i], 2)
                               : "-",
                           9)
        << util::pad_right(core::time_set(state.missed_time[i])
                               ? util::format_fixed(state.missed_time[i], 2)
                               : "-",
                           9)
        << "\n";
  }
  return out.str();
}

}  // namespace e2c::viz
