/// \file controller.hpp
/// \brief SimulationController: the control surface behind the GUI buttons.
///
/// The paper's GUI exposes Play (toggle run/pause), Increment (single step
/// while paused), Reset (start over, optionally with new inputs) and a speed
/// dial. This controller implements exactly those semantics over a headless
/// Simulation; the ANSI renderer (ascii_view.hpp) and the examples drive it
/// the same way the Qt front-end drove the original. Substituting the GUI at
/// this API boundary is what DESIGN.md documents.
#pragma once

#include <chrono>
#include <functional>
#include <memory>

#include "sched/simulation.hpp"

namespace e2c::viz {

/// Controller run states.
enum class RunState { kReady, kRunning, kPaused, kFinished };

/// Display name ("ready", "running", ...).
[[nodiscard]] const char* run_state_name(RunState state) noexcept;

/// Factory that builds a fresh Simulation with its workload loaded; invoked
/// at construction and on every reset() (the GUI lets the user re-submit new
/// EET/workload CSVs before pressing Play again).
using SimulationFactory = std::function<std::unique_ptr<sched::Simulation>()>;

/// Frame callback: invoked after every processed event during play()/
/// run_to_completion() so a renderer can redraw. Return false to request a
/// pause (the renderer's own stop button).
using FrameCallback = std::function<bool(const sched::Simulation&)>;

/// Sleep hook, injectable for tests (virtual time instead of wall time).
using Sleeper = std::function<void(std::chrono::duration<double>)>;

/// The Play/Pause/Increment/Reset/speed control surface.
class SimulationController {
 public:
  /// Builds the first simulation via \p factory.
  explicit SimulationController(SimulationFactory factory);

  /// The live simulation (rebuilt on reset()).
  [[nodiscard]] sched::Simulation& simulation() noexcept { return *simulation_; }
  [[nodiscard]] const sched::Simulation& simulation() const noexcept { return *simulation_; }

  /// Current state.
  [[nodiscard]] RunState state() const noexcept { return state_; }

  /// Speed dial: simulated seconds advanced per wall-clock second during
  /// play(). Defaults to 10. Must be > 0. Higher is faster.
  void set_speed(double sim_seconds_per_wall_second);
  [[nodiscard]] double speed() const noexcept { return speed_; }

  /// The "Play" button: runs events, throttled to the speed dial, invoking
  /// \p frame after each one, until finished or the callback requests pause.
  /// Synchronous; returns when paused or finished.
  void play(const FrameCallback& frame = {});

  /// The "Play" button pressed during a run (handled by the frame callback
  /// returning false in a real-time front-end): marks the controller paused.
  void pause() noexcept;

  /// The "Increment" button: processes exactly one event while paused (or
  /// ready). Returns false when the simulation has no more events.
  bool increment();

  /// Runs to completion at full speed, no throttling, no frames.
  void run_to_completion();

  /// The "Reset" button: discards the simulation and builds a fresh one via
  /// the factory. State returns to kReady.
  void reset();

  /// Injects a sleep function (tests pass a recorder; default is
  /// std::this_thread::sleep_for).
  void set_sleeper(Sleeper sleeper);

 private:
  void refresh_state() noexcept;

  SimulationFactory factory_;
  std::unique_ptr<sched::Simulation> simulation_;
  RunState state_ = RunState::kReady;
  double speed_ = 10.0;
  Sleeper sleeper_;
};

}  // namespace e2c::viz
