/// \file ascii_view.hpp
/// \brief ANSI terminal rendering of the live simulation — the counterpart
/// of the GUI's animated main window (Fig. 1).
///
/// Renders, per frame: the current time, the batch queue, the scheduler
/// label, every machine with its running task and local queue, and the
/// Completed / Cancelled / Missed counters the GUI shows as components.
#pragma once

#include <string>

#include "sched/simulation.hpp"

namespace e2c::viz {

/// Rendering options.
struct AsciiViewOptions {
  bool use_color = true;          ///< ANSI colors per task type (like Fig. 1's hues)
  std::size_t queue_display = 8;  ///< max queued tasks shown per queue before "…"
  bool clear_screen = false;      ///< prefix with cursor-home + clear (live mode)
};

/// Renders one frame of the simulation state as text.
[[nodiscard]] std::string render_frame(const sched::Simulation& simulation,
                                       const AsciiViewOptions& options = {});

/// Renders the Missed Tasks panel (Fig. 4) as an aligned text table.
[[nodiscard]] std::string render_missed_panel(const sched::Simulation& simulation,
                                              std::size_t max_rows = 10);

}  // namespace e2c::viz
