#include "viz/bar_chart.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"
#include "util/string_util.hpp"

namespace e2c::viz {

std::string render_bar_chart(const BarChart& chart) {
  require_input(chart.max_value > 0.0, "bar chart: max_value must be > 0");
  for (const BarSeries& series : chart.series) {
    require_input(series.values.size() == chart.groups.size(),
                  "bar chart: series '" + series.name + "' has " +
                      std::to_string(series.values.size()) + " values for " +
                      std::to_string(chart.groups.size()) + " groups");
  }

  std::size_t label_width = 0;
  for (const BarSeries& series : chart.series) {
    label_width = std::max(label_width, series.name.size());
  }

  std::ostringstream out;
  out << chart.title << "\n";
  for (std::size_t g = 0; g < chart.groups.size(); ++g) {
    out << chart.groups[g] << ":\n";
    for (const BarSeries& series : chart.series) {
      const double value = std::clamp(series.values[g], 0.0, chart.max_value);
      const auto filled = static_cast<std::size_t>(
          value / chart.max_value * static_cast<double>(chart.width) + 0.5);
      out << "  " << util::pad_right(series.name, label_width) << " |"
          << std::string(filled, '#') << std::string(chart.width - filled, ' ') << "| "
          << util::format_fixed(series.values[g], 1) << chart.unit << "\n";
    }
  }
  return out.str();
}

}  // namespace e2c::viz
