#include "viz/bar_chart_svg.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "util/error.hpp"
#include "util/string_util.hpp"

namespace e2c::viz {

namespace {

const char* kSeriesFills[] = {"#4e9fd1", "#e0a33c", "#b06fc4", "#62b36a",
                              "#5b6ee1", "#d1605e", "#7f8c8d", "#2c9c8f"};

const char* fill_for(std::size_t series) {
  return kSeriesFills[series % (sizeof(kSeriesFills) / sizeof(kSeriesFills[0]))];
}

}  // namespace

std::string render_bar_chart_svg(const BarChart& chart, const BarChartSvgOptions& options) {
  require_input(chart.max_value > 0.0, "bar chart svg: max_value must be > 0");
  require_input(!chart.groups.empty(), "bar chart svg: at least one group required");
  require_input(!chart.series.empty(), "bar chart svg: at least one series required");
  for (const BarSeries& series : chart.series) {
    require_input(series.values.size() == chart.groups.size(),
                  "bar chart svg: series '" + series.name + "' size mismatch");
  }

  const int margin_left = 56;
  const int margin_right = 16;
  const int margin_top = 56;   // title + legend
  const int margin_bottom = 36;
  const double plot_w = options.width_px - margin_left - margin_right;
  const double plot_h = options.height_px - margin_top - margin_bottom;
  const double group_w = plot_w / static_cast<double>(chart.groups.size());
  const double bar_w =
      group_w * 0.8 / static_cast<double>(chart.series.size());

  std::ostringstream svg;
  svg << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << options.width_px
      << "\" height=\"" << options.height_px
      << "\" font-family=\"sans-serif\" font-size=\"12\">\n";
  svg << "<text x=\"" << margin_left << "\" y=\"20\" font-size=\"15\">" << chart.title
      << "</text>\n";

  // Legend.
  double legend_x = margin_left;
  for (std::size_t s = 0; s < chart.series.size(); ++s) {
    svg << "<rect x=\"" << util::format_fixed(legend_x, 1)
        << "\" y=\"30\" width=\"12\" height=\"12\" fill=\"" << fill_for(s) << "\"/>\n";
    svg << "<text x=\"" << util::format_fixed(legend_x + 16, 1) << "\" y=\"41\">"
        << chart.series[s].name << "</text>\n";
    legend_x += 24.0 + 8.0 * static_cast<double>(chart.series[s].name.size());
  }

  // Y axis with gridlines and labels.
  for (int i = 0; i <= 5; ++i) {
    const double fraction = static_cast<double>(i) / 5.0;
    const double y = margin_top + plot_h * (1.0 - fraction);
    if (options.y_grid && i > 0) {
      svg << "<line x1=\"" << margin_left << "\" y1=\"" << util::format_fixed(y, 1)
          << "\" x2=\"" << options.width_px - margin_right << "\" y2=\""
          << util::format_fixed(y, 1) << "\" stroke=\"#ddd\"/>\n";
    }
    svg << "<text x=\"" << margin_left - 8 << "\" y=\"" << util::format_fixed(y + 4, 1)
        << "\" text-anchor=\"end\" fill=\"#555\">"
        << util::format_fixed(chart.max_value * fraction, 0) << chart.unit << "</text>\n";
  }
  svg << "<line x1=\"" << margin_left << "\" y1=\"" << margin_top << "\" x2=\""
      << margin_left << "\" y2=\"" << margin_top + plot_h
      << "\" stroke=\"#333\"/>\n";
  svg << "<line x1=\"" << margin_left << "\" y1=\""
      << util::format_fixed(margin_top + plot_h, 1) << "\" x2=\""
      << options.width_px - margin_right << "\" y2=\""
      << util::format_fixed(margin_top + plot_h, 1) << "\" stroke=\"#333\"/>\n";

  // Bars + group labels.
  for (std::size_t g = 0; g < chart.groups.size(); ++g) {
    const double group_x =
        margin_left + group_w * static_cast<double>(g) + group_w * 0.1;
    for (std::size_t s = 0; s < chart.series.size(); ++s) {
      const double value =
          std::clamp(chart.series[s].values[g], 0.0, chart.max_value);
      const double h = plot_h * value / chart.max_value;
      const double x = group_x + bar_w * static_cast<double>(s);
      const double y = margin_top + plot_h - h;
      svg << "<rect x=\"" << util::format_fixed(x, 1) << "\" y=\""
          << util::format_fixed(y, 1) << "\" width=\"" << util::format_fixed(bar_w * 0.9, 1)
          << "\" height=\"" << util::format_fixed(h, 1) << "\" fill=\"" << fill_for(s)
          << "\"><title>" << chart.series[s].name << " @ " << chart.groups[g] << ": "
          << util::format_fixed(chart.series[s].values[g], 1) << chart.unit
          << "</title></rect>\n";
    }
    svg << "<text x=\""
        << util::format_fixed(margin_left + group_w * (static_cast<double>(g) + 0.5), 1)
        << "\" y=\"" << options.height_px - 12 << "\" text-anchor=\"middle\">"
        << chart.groups[g] << "</text>\n";
  }
  svg << "</svg>\n";
  return svg.str();
}

void save_bar_chart_svg(const BarChart& chart, const std::string& path,
                        const BarChartSvgOptions& options) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw IoError("cannot open SVG file for writing: " + path);
  out << render_bar_chart_svg(chart, options);
  if (!out) throw IoError("failed writing SVG file: " + path);
}

}  // namespace e2c::viz
