#include "viz/html_report.hpp"

#include <fstream>
#include <sstream>

#include "reports/report.hpp"
#include "util/error.hpp"
#include "viz/gantt_svg.hpp"

namespace e2c::viz {

namespace {

std::string html_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      default: out.push_back(c); break;
    }
  }
  return out;
}

void emit_table(std::ostringstream& out, const std::string& caption,
                const std::vector<std::vector<std::string>>& rows) {
  out << "<h2>" << html_escape(caption) << "</h2>\n<table>\n";
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const char* cell = r == 0 ? "th" : "td";
    out << "<tr>";
    for (const std::string& field : rows[r]) {
      out << "<" << cell << ">" << html_escape(field) << "</" << cell << ">";
    }
    out << "</tr>\n";
  }
  out << "</table>\n";
}

}  // namespace

std::string render_html_report(const sched::Simulation& simulation) {
  std::ostringstream out;
  out << "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n"
      << "<title>E2C report — " << html_escape(simulation.policy().name())
      << "</title>\n<style>\n"
      << "body{font-family:sans-serif;margin:2em;max-width:1100px}\n"
      << "table{border-collapse:collapse;margin:1em 0}\n"
      << "th,td{border:1px solid #bbb;padding:3px 9px;text-align:left;font-size:13px}\n"
      << "th{background:#eee}\n</style></head><body>\n"
      << "<h1>E2C simulation report</h1>\n";

  emit_table(out, "Summary Report", reports::summary_report(simulation));
  emit_table(out, "Machine Report", reports::machine_report(simulation));
  emit_table(out, "Missed Tasks", reports::missed_report(simulation));
  out << "<h2>Execution Gantt</h2>\n" << render_gantt_svg(simulation);
  out << "</body></html>\n";
  return out.str();
}

void save_html_report(const sched::Simulation& simulation, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw IoError("cannot open HTML file for writing: " + path);
  out << render_html_report(simulation);
  if (!out) throw IoError("failed writing HTML file: " + path);
}

}  // namespace e2c::viz
