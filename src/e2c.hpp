/// \file e2c.hpp
/// \brief Umbrella header: the full public API of E2C-Sim++.
///
/// Include this to get the simulator (engine + machines + scheduler), the
/// heterogeneity model (EET), workload generation, reports, visualization
/// and the experiment/education substrates. Individual headers remain
/// includable for finer-grained builds.
#pragma once

#include "core/engine.hpp"            // discrete-event engine
#include "core/trace.hpp"             // event trace recorder
#include "edu/quiz.hpp"               // pre/post scheduling quiz
#include "edu/survey.hpp"             // survey dataset + Fig. 8 pipeline
#include "exp/experiment.hpp"         // policy x intensity sweeps
#include "exp/scenario.hpp"           // classroom scenarios
#include "exp/spec_io.hpp"            // config-file experiment specs
#include "hetero/eet_matrix.hpp"      // EET heterogeneity model
#include "hetero/machine_catalog.hpp" // machine-type presets
#include "hetero/pet_matrix.hpp"      // stochastic execution times (PET)
#include "machines/machine.hpp"       // machine model
#include "mem/model_cache.hpp"        // multi-tenant memory substrate
#include "net/comm_model.hpp"         // communication / data-transfer model
#include "sched/pam.hpp"              // probabilistic pruning policy
#include "reports/metrics.hpp"        // aggregate metrics
#include "reports/report.hpp"         // the four report kinds
#include "sched/registry.hpp"         // policy registry (extension point)
#include "sched/simulation.hpp"       // the simulation itself
#include "util/csv.hpp"               // CSV IO helpers
#include "util/error.hpp"             // exception hierarchy
#include "util/ini.hpp"               // INI config parsing
#include "util/rng.hpp"               // deterministic RNG
#include "util/stats.hpp"             // descriptive statistics
#include "util/string_util.hpp"       // formatting helpers
#include "viz/ascii_view.hpp"         // terminal animation frames
#include "viz/bar_chart.hpp"          // assignment-style bar charts
#include "viz/bar_chart_svg.hpp"      // the same charts as SVG artifacts
#include "viz/controller.hpp"         // play/pause/step/speed controller
#include "viz/gantt_svg.hpp"          // SVG Gantt export
#include "viz/html_report.hpp"        // one-page HTML report
#include "workload/generator.hpp"     // workload generation
#include "workload/trace_stats.hpp"   // workload trace analysis
#include "workload/workload.hpp"      // workload traces
