/// \file mapper_scratch.hpp
/// \brief Per-policy scratch state for the incremental batch mappers.
///
/// The fast mappers (DESIGN.md §8) cache per-task / per-type best-pair
/// picks across the rounds of one schedule() invocation. The backing
/// vectors live on the policy instance so steady-state invocations reuse
/// their capacity instead of re-allocating every scheduler round (policies
/// are per-simulation and single-threaded, like the simulation itself).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace e2c::sched {

/// Lifecycle of a batch-queue entry within one schedule() invocation.
/// Order-preserving skip marks replace mid-vector erases: the scan walks
/// the arrival-ordered queue and skips resolved entries, so the FCFS
/// tie-break (earlier arrival wins on equal keys) is preserved bit-for-bit.
enum class MapSlot : std::uint8_t {
  kActive = 0,    ///< still competing for a machine
  kCommitted = 1, ///< mapped this invocation
  kDeferred = 2,  ///< infeasible everywhere; monotone within an invocation
                  ///< (ready times only grow, slots only shrink), so the
                  ///< mark is permanent until the next invocation
};

/// Scratch for the MM/MMU/MSD family: the best (machine, completion) pair
/// is a function of the task *type* alone, so the cache is per type.
struct BatchMapperScratch {
  std::vector<MapSlot> state;            ///< per batch-queue entry
  std::vector<std::size_t> type_machine; ///< cached argmin machine, or sentinels
  std::vector<double> type_completion;   ///< completion on the cached machine
};

/// Scratch for ELARE/FELARE: scores mix energy and completion against
/// per-invocation normalization maxima, and feasibility depends on each
/// task's deadline, so the cache is per task on top of per-(type, machine)
/// pair tables.
struct ElareMapperScratch {
  std::vector<MapSlot> state;          ///< per batch-queue entry
  std::vector<double> factor;          ///< fairness factor, lazily cached (<0 = unset)
  std::vector<std::size_t> best_machine;  ///< cached best feasible pair
  std::vector<double> best_score;
  std::vector<std::uint32_t> epoch;    ///< pair-table generation the cache matches
  std::vector<std::size_t> type_count; ///< uncommitted tasks per type (live types)
  std::vector<double> pair_completion; ///< [type * machines + machine]
  std::vector<double> pair_score;      ///< unfactored score of the pair
};

}  // namespace e2c::sched
