/// \file pam.hpp
/// \brief PAM — Pruning-Aware Mapper for stochastic execution times.
///
/// Reproduces the core idea of the E2C authors' task-dropping line
/// (Mokhtari et al., "Autonomous Task Dropping Mechanism to Achieve
/// Robustness in Heterogeneous Computing Systems", IPDPSW'20 [14], building
/// on Gentry et al. IPDPS'19 [10]): when execution times are random, a task
/// should only be mapped if its probability of completing on time clears a
/// threshold; otherwise mapping it merely wastes machine time that on-time
/// tasks need, lowering system robustness.
///
/// This implementation is Min-Min-shaped: each round it picks, among tasks
/// whose best machine gives success probability >= threshold, the pair with
/// the smallest expected completion time. The success probability uses a
/// normal approximation N(completion_mean, stddev(task, machine)) — a
/// documented simplification of the full convolution in [14] (we take the
/// dispatch-time uncertainty of the task itself; queued work ahead is
/// already reflected in the projected ready time).
#pragma once

#include "sched/policy.hpp"

namespace e2c::sched {

/// Probabilistic batch policy with task pruning.
class PamPolicy final : public Policy {
 public:
  /// \param success_threshold minimum P(completion <= deadline) required to
  /// map a task, in [0, 1]. 0 never prunes (reduces to Min-Min with the
  /// deterministic feasibility rule); 0.9 is the robustness-oriented default
  /// of the published evaluations.
  explicit PamPolicy(double success_threshold = 0.9);

  [[nodiscard]] std::string name() const override { return "PAM"; }
  [[nodiscard]] PolicyMode mode() const override { return PolicyMode::kBatch; }
  void schedule_into(SchedulingContext& context, std::vector<Assignment>& out) override;

  /// P(completion <= deadline) for \p task on machine view \p m under the
  /// context's PET model (normal approximation; deterministic systems give
  /// a 0/1 step at the deadline).
  [[nodiscard]] static double success_probability(const SchedulingContext& context,
                                                  const workload::TaskDef& task,
                                                  const MachineView& m);

 private:
  double success_threshold_;
};

}  // namespace e2c::sched
