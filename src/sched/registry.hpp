/// \file registry.hpp
/// \brief Policy registry: name -> factory, with the built-ins pre-loaded.
///
/// This is the extension point the paper advertises: a student registers a
/// factory for their policy once and every E2C surface (CLI, experiments,
/// benches) can select it by name, exactly like the built-ins in the GUI's
/// scheduler drop-down.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sched/policy.hpp"

namespace e2c::sched {

/// Creates a fresh policy instance.
using PolicyFactory = std::function<std::unique_ptr<Policy>()>;

/// Global registry of scheduling policies. Thread-compatible: registration
/// happens at startup, lookups afterwards.
class PolicyRegistry {
 public:
  /// The process-wide registry, pre-populated with the paper's built-ins:
  /// immediate FCFS, MEET, MECT; batch MM, MMU, MSD, ELARE, FELARE,
  /// FairShare.
  static PolicyRegistry& instance();

  /// Registers (or replaces) a factory under \p name (case-insensitive
  /// lookup). Throws e2c::InputError on an empty name.
  void register_policy(const std::string& name, PolicyFactory factory);

  /// True if \p name is registered.
  [[nodiscard]] bool contains(const std::string& name) const noexcept;

  /// Instantiates the policy registered under \p name.
  /// Throws e2c::UnknownPolicyError for unknown names.
  [[nodiscard]] std::unique_ptr<Policy> create(const std::string& name) const;

  /// Registered names in registration order (the GUI drop-down contents).
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  PolicyRegistry();
  struct Entry {
    std::string name;
    PolicyFactory factory;
  };
  std::vector<Entry> entries_;
};

/// Convenience: create a policy from the global registry.
[[nodiscard]] std::unique_ptr<Policy> make_policy(const std::string& name);

/// Convenience: the built-in immediate policy names (Fig. 3's left column).
[[nodiscard]] std::vector<std::string> immediate_policy_names();

/// Convenience: the built-in batch policy names (Fig. 3's right column).
[[nodiscard]] std::vector<std::string> batch_policy_names();

}  // namespace e2c::sched
