#include "sched/registry.hpp"

#include "sched/batch.hpp"
#include "sched/elare.hpp"
#include "sched/fair_share.hpp"
#include "sched/immediate.hpp"
#include "sched/pam.hpp"
#include "util/error.hpp"
#include "util/string_util.hpp"

namespace e2c::sched {

PolicyRegistry::PolicyRegistry() {
  register_policy("FCFS", [] { return std::make_unique<FcfsPolicy>(); });
  register_policy("MEET", [] { return std::make_unique<MeetPolicy>(); });
  register_policy("MECT", [] { return std::make_unique<MectPolicy>(); });
  register_policy("FTMIN-EET", [] { return std::make_unique<FtMinEetPolicy>(); });
  register_policy("MM", [] { return std::make_unique<MinMinPolicy>(); });
  register_policy("MMU", [] { return std::make_unique<MaxUrgencyPolicy>(); });
  register_policy("MSD", [] { return std::make_unique<SoonestDeadlinePolicy>(); });
  register_policy("ELARE", [] { return std::make_unique<ElarePolicy>(); });
  register_policy("FELARE", [] { return std::make_unique<FelarePolicy>(); });
  register_policy("FairShare", [] { return std::make_unique<FairSharePolicy>(); });
  register_policy("PAM", [] { return std::make_unique<PamPolicy>(); });
}

PolicyRegistry& PolicyRegistry::instance() {
  static PolicyRegistry registry;
  return registry;
}

void PolicyRegistry::register_policy(const std::string& name, PolicyFactory factory) {
  require_input(!name.empty(), "policy registry: empty policy name");
  require_input(static_cast<bool>(factory), "policy registry: null factory");
  for (Entry& entry : entries_) {
    if (util::iequals(entry.name, name)) {
      entry.factory = std::move(factory);
      return;
    }
  }
  entries_.push_back(Entry{name, std::move(factory)});
}

bool PolicyRegistry::contains(const std::string& name) const noexcept {
  for (const Entry& entry : entries_) {
    if (util::iequals(entry.name, name)) return true;
  }
  return false;
}

std::unique_ptr<Policy> PolicyRegistry::create(const std::string& name) const {
  for (const Entry& entry : entries_) {
    if (util::iequals(entry.name, name)) return entry.factory();
  }
  std::string message = "unknown scheduling policy: '" + name + "'";
  if (const auto suggestion = util::nearest_match(name, names())) {
    message += " — did you mean '" + *suggestion + "'?";
  }
  message += " (registered:";
  for (const Entry& entry : entries_) message += " " + entry.name;
  message += ")";
  throw UnknownPolicyError(message);
}

std::vector<std::string> PolicyRegistry::names() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const Entry& entry : entries_) names.push_back(entry.name);
  return names;
}

std::unique_ptr<Policy> make_policy(const std::string& name) {
  return PolicyRegistry::instance().create(name);
}

std::vector<std::string> immediate_policy_names() {
  return {"FCFS", "FTMIN-EET", "MECT", "MEET"};
}

std::vector<std::string> batch_policy_names() {
  return {"MM", "MMU", "MSD", "ELARE", "FELARE", "PAM"};
}

}  // namespace e2c::sched
