#include "sched/pam.hpp"

#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace e2c::sched {

PamPolicy::PamPolicy(double success_threshold) : success_threshold_(success_threshold) {
  require_input(success_threshold >= 0.0 && success_threshold <= 1.0,
                "PAM: success_threshold must be in [0, 1]");
}

double PamPolicy::success_probability(const SchedulingContext& context,
                                      const workload::TaskDef& task, const MachineView& m) {
  const core::SimTime mean_completion = context.completion_time(task, m);
  const double sigma = context.exec_stddev(task, m);
  const double slack = task.deadline - mean_completion;
  if (sigma <= 0.0) return slack >= 0.0 ? 1.0 : 0.0;
  // Phi(slack / sigma) via erfc for numerical stability in the tails.
  return 0.5 * std::erfc(-slack / (sigma * std::numbers::sqrt2));
}

void PamPolicy::schedule_into(SchedulingContext& context,
                              std::vector<Assignment>& assignments) {
  assignments.clear();
  const auto& queue = context.batch_queue();
  // Order-preserving skip marks instead of O(n) mid-vector erases: the scan
  // walks the arrival-ordered queue, so the arrival tie-break is untouched.
  std::vector<bool> mapped(queue.size(), false);
  std::size_t remaining = queue.size();

  while (remaining > 0) {
    std::size_t best_task = queue.size();
    std::size_t best_machine = context.machines().size();
    core::SimTime best_completion = 0.0;

    for (std::size_t i = 0; i < queue.size(); ++i) {
      if (mapped[i]) continue;
      const workload::TaskDef& task = *queue[i];
      // The task's best machine by expected completion among those clearing
      // the success threshold.
      for (std::size_t j = 0; j < context.machines().size(); ++j) {
        const MachineView& m = context.machines()[j];
        if (m.free_slots == 0) continue;
        if (success_probability(context, task, m) < success_threshold_) continue;
        const core::SimTime completion = context.completion_time(task, m);
        if (best_task == queue.size() || completion < best_completion) {
          best_task = i;
          best_machine = j;
          best_completion = completion;
        }
      }
    }
    if (best_task == queue.size()) break;  // everything pruned or saturated

    const workload::TaskDef& task = *queue[best_task];
    assignments.push_back(Assignment{task.id, context.machines()[best_machine].id});
    context.commit(task, best_machine);
    mapped[best_task] = true;
    --remaining;
  }
}

}  // namespace e2c::sched
