/// \file simulation.hpp
/// \brief The E2C simulation: Fig. 1's pipeline wired onto the event engine.
///
/// A Simulation owns the engine, the machines, the task records and the
/// batch queue, and drives the selected scheduling policy:
///
///   workload --arrival events--> batch queue --policy--> machine queues
///        cancelled (deadline before mapping)   dropped (deadline after)
///
/// The simulation is the single writer of task records; policies only see
/// const views. One Simulation per thread (engines are not thread-safe);
/// parallel experiments build one Simulation per worker and reset() it
/// between replications.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include <optional>

#include "core/engine.hpp"
#include "fault/fault_model.hpp"
#include "fault/io_channel.hpp"
#include "hetero/eet_matrix.hpp"
#include "hetero/pet_matrix.hpp"
#include "machines/machine.hpp"
#include "mem/model_cache.hpp"
#include "net/comm_model.hpp"
#include "sched/policy.hpp"
#include "sched/task_index_queue.hpp"
#include "util/rng.hpp"
#include "workload/workload.hpp"

namespace e2c::sched {

/// Elasticity controller configuration (the "scalability" dimension the
/// paper's abstract names). When enabled, the simulation periodically
/// inspects the batch queue: sustained backlog powers on an offline machine
/// (after a boot delay); an empty queue powers off idle machines down to
/// min_online. Offline machines draw no power and accept no work.
struct AutoscalerConfig {
  bool enabled = false;
  core::SimTime interval = 5.0;     ///< seconds between control decisions
  std::size_t queue_high = 8;       ///< batch-queue length that triggers scale-out
  std::size_t queue_low = 1;        ///< batch-queue length that allows scale-in
  core::SimTime boot_delay = 2.0;   ///< power-on latency
  std::size_t min_online = 1;       ///< never scale below this many machines
  /// Machines started offline (indices into SystemConfig::machines); they
  /// join only when the autoscaler powers them on.
  std::vector<std::size_t> initially_offline;
};

/// One machine instance to build: display name + type (EET column) + power.
struct MachineInstance {
  std::string name;
  hetero::MachineTypeId type = 0;
  hetero::MachineTypeSpec power;
};

/// Static description of the simulated system.
struct SystemConfig {
  hetero::EetMatrix eet;
  std::vector<MachineInstance> machines;
  /// Waiting-slot capacity of each machine's local queue for batch policies
  /// (the paper's "machine queue size"); immediate policies always run
  /// unbounded (Fig. 3). machines::kUnboundedQueue disables the limit.
  std::size_t machine_queue_capacity = 2;

  /// Stochastic execution times (PET). When set, each dispatch samples its
  /// actual execution time from the PET cell while schedulers keep planning
  /// on the EET expectations. Must match the EET's shape.
  std::optional<hetero::PetMatrix> pet;
  /// Seed for the PET sampling stream (independent of workload seeds).
  std::uint64_t sampling_seed = 0xE2CE2CE2CULL;

  /// Data-transfer model. When set, a mapped task's payload must transfer
  /// (holding its reserved queue slot, not the executor) before it can
  /// enter the machine queue. Must cover the EET's task/machine types.
  std::optional<net::CommModel> comm;

  /// Multi-tenant memory model (Edge-MultiAI substrate, paper ref [22]).
  /// When set, each machine gets a warm-model cache sized by its machine
  /// type; cold starts extend execution by the model-load penalty.
  std::optional<mem::MemoryModel> memory;

  /// Elasticity controller (off by default).
  AutoscalerConfig autoscaler;

  /// Fault injection (off by default). When enabled, machines crash per the
  /// injector's schedule: the running task and local queue are aborted into
  /// retry (or FAILED once out of retries) and the machine rejoins the pool
  /// at its repair time.
  fault::FaultConfig faults;
};

/// Builds a SystemConfig with one machine instance per EET machine-type
/// column, named after the column, with catalog/generic power specs.
[[nodiscard]] SystemConfig make_default_system(hetero::EetMatrix eet,
                                               std::size_t machine_queue_capacity = 2);

/// Aggregate outcome counters (the Summary Report's headline numbers).
struct SimulationCounters {
  std::size_t total = 0;
  std::size_t completed = 0;
  std::size_t cancelled = 0;  ///< deadline passed before mapping
  std::size_t dropped = 0;    ///< deadline passed after mapping
  std::size_t failed = 0;     ///< lost to machine failures (retries exhausted
                              ///< or deadline passed while waiting on retry)
  std::size_t requeued = 0;   ///< fault-abort retries (events, not tasks)
  std::size_t replicas_cancelled = 0;  ///< losing replicas cancelled by a winner
  /// Wallclock the losing replicas spent *running* before a sibling's
  /// completion cancelled them — the honest price of active replication.
  double cancelled_replica_seconds = 0.0;

  /// Completed / total in percent; 0 for an empty workload.
  [[nodiscard]] double completion_percent() const noexcept {
    return total == 0 ? 0.0
                      : 100.0 * static_cast<double>(completed) / static_cast<double>(total);
  }
};

/// A full simulation run bound to one workload and one policy.
class Simulation final : public machines::MachineListener {
 public:
  /// Builds the system. Throws e2c::InputError on an empty machine list or a
  /// machine referencing a type outside the EET matrix.
  Simulation(SystemConfig config, std::unique_ptr<Policy> policy);

  /// Same, but shares one immutable SystemConfig across many simulations —
  /// the experiment data plane builds the config once per sweep and every
  /// cell/worker aliases it instead of copying EET/PET/comm tables.
  Simulation(std::shared_ptr<const SystemConfig> config, std::unique_ptr<Policy> policy);

  ~Simulation() override;

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Loads the workload (validated against the EET matrix) and schedules all
  /// arrival events up front. Call exactly once before run()/stepping.
  void load(const workload::Workload& workload);

  /// Shared-trace load: aliases an immutable workload instead of copying it
  /// and keeps only one arrival event in the calendar at a time (a cursor
  /// that re-arms itself), so the event heap stays at in-system size instead
  /// of trace size. Event pop order is identical to the copying overload.
  void load(std::shared_ptr<const workload::Workload> workload);

  /// Runs to completion (every task reaches a terminal state).
  void run();

  /// Processes a single event — the GUI "Increment" button. Returns false
  /// when nothing is pending (simulation finished).
  bool step();

  /// Returns the simulation to its just-constructed state so the next load()
  /// can run a fresh replication without rebuilding machines/caches. The new
  /// policy must have the same mode (batch/immediate) as the old one because
  /// the machine-queue capacity is baked in at construction; throws
  /// e2c::InputError otherwise.
  void reset(std::unique_ptr<Policy> policy);

  /// True once every loaded task is terminal.
  [[nodiscard]] bool finished() const noexcept;

  // ---- inspection ---------------------------------------------------------

  /// The engine (exposed for observers/visualizers; do not schedule into it).
  [[nodiscard]] core::Engine& engine() noexcept { return engine_; }
  [[nodiscard]] const core::Engine& engine() const noexcept { return engine_; }

  /// The EET matrix in use.
  [[nodiscard]] const hetero::EetMatrix& eet() const noexcept { return config_->eet; }

  /// The policy in use.
  [[nodiscard]] const Policy& policy() const noexcept { return *policy_; }

  /// The SoA per-run task state (arrival order / row index order), with live
  /// status columns; `task_state().defs` is the immutable definitions view.
  [[nodiscard]] const workload::TaskStateSoA& task_state() const noexcept {
    return state_;
  }

  /// Number of machine instances.
  [[nodiscard]] std::size_t machine_count() const noexcept { return machines_.size(); }

  /// Machine instance \p index.
  [[nodiscard]] const machines::Machine& machine(std::size_t index) const {
    return *machines_.at(index);
  }

  /// Ids of tasks currently waiting in the batch queue, arrival order.
  [[nodiscard]] std::vector<workload::TaskId> batch_queue_ids() const;

  /// Outcome counters so far.
  [[nodiscard]] const SimulationCounters& counters() const noexcept { return counters_; }

  /// Number of scheduler invocations (batch rounds) run so far — the
  /// denominator for scheduler-throughput measurements.
  [[nodiscard]] std::uint64_t scheduler_invocations() const noexcept {
    return scheduler_invocations_;
  }

  /// Row indices of tasks that were cancelled or dropped, in the order they
  /// missed — the Missed Tasks panel of Fig. 4.
  [[nodiscard]] std::vector<std::size_t> missed_tasks() const;

  /// Observed on-time completion rate of a task type (1.0 before any task of
  /// the type reached a terminal state). Drives fairness-aware policies.
  [[nodiscard]] double type_ontime_rate(hetero::TaskTypeId type) const;

  /// Total energy (J) across machines over [0, horizon]; horizon defaults to
  /// the current simulated time.
  [[nodiscard]] double total_energy_joules() const;
  [[nodiscard]] double total_energy_joules(core::SimTime horizon) const;

  /// Dynamic (execution-only) energy across machines — excludes idle draw.
  [[nodiscard]] double total_dynamic_energy_joules(core::SimTime horizon) const;

  /// Number of machines currently online (powered).
  [[nodiscard]] std::size_t online_machine_count() const noexcept;

  /// Number of tasks whose payload is currently in flight to \p machine.
  [[nodiscard]] std::size_t in_flight_count(hetero::MachineId machine) const;

  /// The warm-model cache of \p machine, or nullptr when the system has no
  /// memory model.
  [[nodiscard]] const mem::ModelCache* model_cache(hetero::MachineId machine) const;

  /// The fault configuration in effect (recovery strategy, retry policy).
  [[nodiscard]] const fault::FaultConfig& fault_config() const noexcept {
    return config_->faults;
  }

  /// The shared checkpoint-I/O channel, or nullptr when the run has no
  /// bandwidth-arbitrated I/O ([io] unconfigured, or recovery != checkpoint).
  [[nodiscard]] const fault::IoChannel* io_channel() const noexcept {
    return io_channel_.get();
  }

  /// Tenant display names for multi-tenant runs; empty for single-tenant
  /// workloads (every task carries tenant 0). Set by the experiment layer
  /// right after construction; reports/viz use it to label the per-tenant
  /// waste decomposition.
  void set_tenant_names(std::vector<std::string> names) {
    tenant_names_ = std::move(names);
  }
  [[nodiscard]] const std::vector<std::string>& tenant_names() const noexcept {
    return tenant_names_;
  }

  /// Executed work discarded by crashes/aborts, summed over all tasks (s).
  [[nodiscard]] double lost_work_seconds() const;

  /// Time spent writing checkpoints and reloading them, summed over tasks (s).
  [[nodiscard]] double checkpoint_overhead_seconds() const;

  /// Number of checkpoints committed across all tasks and machines.
  [[nodiscard]] std::size_t checkpoints_taken() const;

  // ---- MachineListener ----------------------------------------------------
  void on_task_completed(std::size_t task, hetero::MachineId machine) override;
  void on_slot_freed(hetero::MachineId machine) override;

 private:
  /// "Not part of any replica group" marker for group_of_.
  static constexpr std::uint32_t kNoGroup = ~std::uint32_t{0};

  [[nodiscard]] const SystemConfig& cfg() const noexcept { return *config_; }
  /// \p aliased: the workload outlives this simulation (shared-trace load),
  /// so the definitions can be aliased instead of copied.
  void init_tasks(const workload::Workload& workload, bool aliased);
  void init_task_state();
  void schedule_control_events();
  void schedule_next_arrival();
  void on_arrival(std::size_t task_index);
  void on_deadline(std::size_t task_index);
  void on_transfer_complete(std::size_t task_index);
  void schedule_next_failure(std::size_t machine_index, double from);
  void on_machine_failure(std::size_t machine_index, double repair_time);
  void on_machine_repair(std::size_t machine_index);
  void handle_fault_abort(std::size_t task_index);
  void on_retry_ready(std::size_t task_index);
  [[nodiscard]] bool all_terminal() const noexcept;
  void request_schedule();
  void run_scheduler();
  void apply_assignment(const Assignment& assignment);
  void autoscaler_tick();
  void scale_out();
  void scale_in();
  [[nodiscard]] std::size_t task_index(workload::TaskId id) const;
  void mark_terminal(std::size_t task_index);
  void record_outcome(std::size_t task_index, workload::TaskId display_id);
  void replicate_workload(std::size_t replicas);

  std::shared_ptr<const SystemConfig> config_;
  std::unique_ptr<Policy> policy_;
  std::string policy_name_;  ///< cached: stable storage for lazy event labels
  core::Engine engine_;
  std::vector<std::unique_ptr<machines::Machine>> machines_;

  /// SoA per-run task state: dense mutable columns over an aliased (or, for
  /// replication/tenant rewrites, adopted) immutable definitions trace.
  workload::TaskStateSoA state_;
  /// Generated traces carry ids 0..n-1 in arrival order; then index == id and
  /// task_index() is a bounds check. index_map_ is the fallback for traces
  /// with arbitrary ids (hand-written CSVs, replica clones).
  bool dense_ids_ = false;
  std::unordered_map<workload::TaskId, std::size_t> index_map_;
  /// Pending deadline-check event per task index (kNoEvent when none).
  std::vector<core::EventId> deadline_event_;
  /// Batch queue over task indices: O(1) membership/removal, arrival order
  /// preserved (see TaskIndexQueue).
  TaskIndexQueue batch_queue_;
  std::vector<workload::TaskId> missed_order_;

  // Per-round scheduler scratch, recycled through SchedulingContext's
  // release_buffers() so run_scheduler() allocates nothing at steady state.
  std::vector<MachineView> views_scratch_;
  std::vector<const workload::TaskDef*> queue_view_scratch_;
  std::vector<double> rates_scratch_;
  std::vector<Assignment> assignments_scratch_;

  SimulationCounters counters_;
  std::uint64_t scheduler_invocations_ = 0;
  std::vector<std::size_t> completed_by_type_;
  std::vector<std::size_t> terminal_by_type_;

  // Stochastic execution sampling stream (unused without a PET).
  util::Rng sampling_rng_;

  // Per-task in-flight transfer reservations (comm model only), indexed like
  // task rows; event == kNoEvent means no reservation. The transfer-complete
  // event id lets a machine failure (or deadline) cancel the arrival so a
  // later re-assignment cannot race a stale event.
  struct InFlight {
    hetero::MachineId machine = 0;
    double exec_seconds = 0.0;
    core::EventId event = core::kNoEvent;
  };
  std::vector<InFlight> in_flight_;
  std::vector<std::size_t> in_flight_count_;
  std::vector<double> in_flight_exec_;

  // Autoscaler state.
  std::vector<bool> booting_;

  // Fault-injection state (null/empty when faults are disabled). Each
  // machine has at most one pending failure *or* repair event; ids are kept
  // so the calendar can be drained once every task is terminal.
  std::unique_ptr<fault::FaultInjector> injector_;
  std::vector<core::EventId> pending_fault_event_;
  /// Pending retry-ready event per task index (kNoEvent when none).
  std::vector<core::EventId> retry_event_;

  // Recovery-strategy state. The checkpoint spec lives here (Simulation is
  // non-movable, so its address is stable for the machines). Each replica
  // group is a primary plus its clones (task row indices); the group
  // yields exactly one outcome — the first completion wins and cancels the
  // siblings, or the group fails once every member is terminal.
  std::optional<machines::CheckpointSpec> checkpoint_spec_;
  /// Shared checkpoint-I/O channel (checkpoint strategy + [io] enabled only).
  std::unique_ptr<fault::IoChannel> io_channel_;
  /// Tenant roster for multi-tenant runs (empty when single-tenant).
  std::vector<std::string> tenant_names_;
  struct ReplicaGroup {
    std::vector<std::size_t> members;  ///< task row indices, primary first
    bool resolved = false;             ///< outcome already counted
  };
  std::vector<ReplicaGroup> groups_;
  /// Replica-group index per task index (kNoGroup when unreplicated).
  std::vector<std::uint32_t> group_of_;
  void resolve_replica_group(ReplicaGroup& group, std::size_t task_index);
  void cancel_replica_siblings(ReplicaGroup& group, workload::TaskId winner_id);

  // Per-machine warm-model caches (memory model only).
  std::vector<std::unique_ptr<mem::ModelCache>> model_caches_;

  // Shared-trace load state: the aliased workload and the next arrival to arm.
  std::shared_ptr<const workload::Workload> shared_trace_;
  std::size_t arrival_cursor_ = 0;

  bool loaded_ = false;
  bool schedule_pending_ = false;
};

}  // namespace e2c::sched
