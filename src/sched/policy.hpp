/// \file policy.hpp
/// \brief The pluggable scheduling-policy interface.
///
/// E2C's modularity promise (§3: "providing the ability for the user to
/// modify the existing scheduling methods or adding their own
/// custom-designed scheduling methods") maps to this interface plus the
/// registry in registry.hpp. A policy sees a snapshot of the system (batch
/// queue + projected machine states) and returns the mappings it wants; the
/// simulation applies them. Policies never touch engine internals, so a
/// student's policy cannot corrupt the simulation.
#pragma once

#include <cstddef>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "core/sim_time.hpp"
#include "hetero/eet_matrix.hpp"
#include "hetero/pet_matrix.hpp"
#include "workload/task.hpp"

namespace e2c::sched {

/// One mapping decision: put task onto machine.
struct Assignment {
  workload::TaskId task = 0;
  hetero::MachineId machine = 0;
};

/// Which mapper implementation the batch policies run.
///
/// kFast is the incremental hot path (cached best-pair selection, see
/// DESIGN.md §8); kReference is the original full-rescan code retained as
/// the decision-equivalence oracle. Both emit the identical assignment
/// sequence — kReference exists so anyone can A/B the two on their own
/// workload (`--sched-impl`) and so the differential tests have an oracle.
enum class SchedImpl { kFast, kReference };

/// The process-wide default implementation new batch policies pick up
/// (kFast unless overridden). Set once at startup (CLI flag), read from
/// worker threads afterwards.
[[nodiscard]] SchedImpl default_sched_impl() noexcept;
void set_default_sched_impl(SchedImpl impl) noexcept;

/// Registered implementation names, selection order: {"fast", "reference"}.
[[nodiscard]] std::vector<std::string> sched_impl_names();

/// Display name of an implementation ("fast" / "reference").
[[nodiscard]] const char* sched_impl_name(SchedImpl impl) noexcept;

/// Parses an implementation name (case-insensitive). Throws e2c::InputError
/// listing the registered names on an unknown value.
[[nodiscard]] SchedImpl parse_sched_impl(const std::string& name);

/// Snapshot of one machine as the policy sees it. ready_time and free_slots
/// are *projections*: helper methods update them as the policy commits
/// assignments inside a single scheduler invocation, so multi-task batch
/// policies account for their own earlier picks.
struct MachineView {
  hetero::MachineId id = 0;
  hetero::MachineTypeId type = 0;
  core::SimTime ready_time = 0.0;
  /// Remaining queue slots; kUnlimitedSlots when the queue is unbounded.
  std::size_t free_slots = 0;
  double idle_watts = 0.0;
  double busy_watts = 0.0;
  /// Observed availability in [0, 1]: fraction of elapsed simulated time the
  /// machine was not failed. 1.0 without fault injection. Fault-aware
  /// policies (FTMIN-EET) discount flaky machines by this.
  double availability = 1.0;
};

/// Sentinel for unbounded machine queues.
inline constexpr std::size_t kUnlimitedSlots = std::numeric_limits<std::size_t>::max();

/// Everything a policy may consult while deciding. The context is a
/// per-invocation copy: policies are free to mutate machine views through
/// commit() and to reorder/filter their own working copies of the queue.
class SchedulingContext {
 public:
  SchedulingContext(core::SimTime now, const hetero::EetMatrix& eet,
                    std::vector<MachineView> machines,
                    std::vector<const workload::TaskDef*> batch_queue,
                    std::vector<double> type_ontime_rate,
                    const hetero::PetMatrix* pet = nullptr)
      : now_(now),
        eet_(&eet),
        pet_(pet),
        machines_(std::move(machines)),
        batch_queue_(std::move(batch_queue)),
        type_ontime_rate_(std::move(type_ontime_rate)) {}

  /// Current simulated time.
  [[nodiscard]] core::SimTime now() const noexcept { return now_; }

  /// The system's EET matrix.
  [[nodiscard]] const hetero::EetMatrix& eet() const noexcept { return *eet_; }

  /// Machine snapshots (projected; see commit()).
  [[nodiscard]] const std::vector<MachineView>& machines() const noexcept {
    return machines_;
  }

  /// Unmapped tasks in arrival order (the batch queue of Fig. 1).
  [[nodiscard]] const std::vector<const workload::TaskDef*>& batch_queue() const noexcept {
    return batch_queue_;
  }

  /// Expected execution time of \p task on machine view \p m. Machine views
  /// and task records are validated against the EET shape at construction,
  /// so this takes the unchecked inline path.
  [[nodiscard]] double exec_time(const workload::TaskDef& task, const MachineView& m) const {
    return eet_->eet_unchecked(task.type, m.type);
  }

  /// The EET row of a task type (indexed by MachineView::type), for mappers
  /// that scan all machines for one task without per-cell accessor calls.
  [[nodiscard]] std::span<const double> eet_row(hetero::TaskTypeId type) const noexcept {
    return eet_->row(type);
  }

  /// Projected completion time of \p task on machine view \p m.
  [[nodiscard]] core::SimTime completion_time(const workload::TaskDef& task,
                                              const MachineView& m) const {
    return m.ready_time + exec_time(task, m);
  }

  /// Standard deviation of the execution time of \p task on machine view
  /// \p m under the system's PET model; 0 when the system is deterministic
  /// (no PET configured). Probabilistic policies (PAM) use this to assess
  /// deadline risk.
  [[nodiscard]] double exec_stddev(const workload::TaskDef& task, const MachineView& m) const {
    return pet_ ? pet_->cell(task.type, m.type).stddev() : 0.0;
  }

  /// True when the system runs with stochastic execution times.
  [[nodiscard]] bool stochastic() const noexcept { return pet_ != nullptr; }

  /// Projected energy (J) to execute \p task on \p m: exec * busy_watts.
  /// The two-state power model attributes idle power to the machine, not the
  /// task, so the marginal task energy is the busy-power integral.
  [[nodiscard]] double exec_energy(const workload::TaskDef& task, const MachineView& m) const {
    return exec_time(task, m) * m.busy_watts;
  }

  /// On-time completion rate observed so far for a task type (1.0 before any
  /// task of the type finished). Fairness-oriented policies (FELARE, custom
  /// assignments) use this to find suffering task types.
  [[nodiscard]] double type_ontime_rate(hetero::TaskTypeId type) const {
    return type < type_ontime_rate_.size() ? type_ontime_rate_[type] : 1.0;
  }

  /// Records an assignment into the projection: advances the machine's
  /// ready_time by the task's execution time and consumes one queue slot.
  /// Policies call this after each pick so later picks see the load.
  void commit(const workload::TaskDef& task, std::size_t machine_index) {
    MachineView& m = machines_.at(machine_index);
    m.ready_time += exec_time(task, m);
    if (m.free_slots != kUnlimitedSlots && m.free_slots > 0) --m.free_slots;
  }

  /// Hands the context's buffers back to the caller after schedule() so a
  /// per-round driver (Simulation::run_scheduler) can recycle their capacity
  /// instead of reallocating three vectors on every scheduler invocation.
  /// The context must not be used afterwards.
  void release_buffers(std::vector<MachineView>& machines,
                       std::vector<const workload::TaskDef*>& batch_queue,
                       std::vector<double>& type_ontime_rate) noexcept {
    machines = std::move(machines_);
    batch_queue = std::move(batch_queue_);
    type_ontime_rate = std::move(type_ontime_rate_);
  }

 private:
  core::SimTime now_;
  const hetero::EetMatrix* eet_;
  const hetero::PetMatrix* pet_ = nullptr;
  std::vector<MachineView> machines_;
  std::vector<const workload::TaskDef*> batch_queue_;
  std::vector<double> type_ontime_rate_;
};

/// Scheduling mode, mirroring the GUI's immediate/batch selector (Fig. 3).
enum class PolicyMode { kImmediate, kBatch };

/// Base class for all scheduling policies.
class Policy {
 public:
  virtual ~Policy() = default;

  /// Registry name, e.g. "MECT".
  [[nodiscard]] virtual std::string name() const = 0;

  /// Immediate policies run with unbounded machine queues; batch policies
  /// respect the configured queue size.
  [[nodiscard]] virtual PolicyMode mode() const = 0;

  /// Decides mappings for the current invocation, appended to \p out (which
  /// is cleared first). The assignments are applied in order; each must
  /// reference a task from the batch queue and a machine with a free
  /// (projected) slot. Tasks not assigned stay in the batch queue for the
  /// next invocation (or cancellation).
  ///
  /// The out-parameter is the hot-path form: the simulation lends the same
  /// scratch vector to every invocation, so a steady-state scheduler round
  /// never touches the allocator. The by-value schedule() wrapper below is
  /// the convenience form for tests and tools.
  virtual void schedule_into(SchedulingContext& context, std::vector<Assignment>& out) = 0;

  /// Convenience wrapper over schedule_into returning a fresh vector.
  [[nodiscard]] std::vector<Assignment> schedule(SchedulingContext& context) {
    std::vector<Assignment> out;
    schedule_into(context, out);
    return out;
  }
};

/// Shared helper: index of the machine view minimizing completion time for
/// \p task among views with a free slot; returns machines.size() when no
/// machine has space. Ties break to the lower machine id (deterministic).
[[nodiscard]] std::size_t argmin_completion(const SchedulingContext& context,
                                            const workload::TaskDef& task);

/// Shared helper: index of the machine view minimizing raw EET for \p task
/// among views with a free slot; machines.size() when none has space.
[[nodiscard]] std::size_t argmin_exec(const SchedulingContext& context,
                                      const workload::TaskDef& task);

/// Shared helper: index of the machine view with the earliest ready time
/// among views with a free slot; machines.size() when none has space.
[[nodiscard]] std::size_t argmin_ready(const SchedulingContext& context);

}  // namespace e2c::sched
