/// \file immediate.hpp
/// \brief The immediate-mode scheduling policies of the paper:
/// FCFS, MEET and MECT.
///
/// Immediate mode (Maheswaran et al. [13]): an arriving task is mapped as
/// soon as it arrives, with unbounded machine queues. Each invocation of
/// these policies therefore maps every task currently in the batch queue
/// (normally exactly the one that just arrived), in arrival order.
#pragma once

#include "sched/policy.hpp"

namespace e2c::sched {

/// First-Come-First-Serve: the arriving task goes to the machine that will
/// be available soonest (minimum ready time), ignoring execution-time
/// heterogeneity. This is the pedagogical baseline the class assignment
/// compares against: it load-balances queue *time* but wastes fast machines.
class FcfsPolicy final : public Policy {
 public:
  [[nodiscard]] std::string name() const override { return "FCFS"; }
  [[nodiscard]] PolicyMode mode() const override { return PolicyMode::kImmediate; }
  void schedule_into(SchedulingContext& context, std::vector<Assignment>& out) override;
};

/// Minimum Expected Execution Time: the arriving task goes to the machine
/// type that executes its task type fastest, ignoring current load. Strong
/// at low intensity on heterogeneous systems; at high intensity it herds all
/// tasks of a type onto one machine and saturates it.
class MeetPolicy final : public Policy {
 public:
  [[nodiscard]] std::string name() const override { return "MEET"; }
  [[nodiscard]] PolicyMode mode() const override { return PolicyMode::kImmediate; }
  void schedule_into(SchedulingContext& context, std::vector<Assignment>& out) override;
};

/// Minimum Expected Completion Time: the arriving task goes to the machine
/// minimizing ready_time + EET — the load-and-speed-aware immediate policy
/// that the assignment expects to beat FCFS on heterogeneous systems.
class MectPolicy final : public Policy {
 public:
  [[nodiscard]] std::string name() const override { return "MECT"; }
  [[nodiscard]] PolicyMode mode() const override { return PolicyMode::kImmediate; }
  void schedule_into(SchedulingContext& context, std::vector<Assignment>& out) override;
};

/// Fault-Tolerant Minimum Expected Execution Time: MECT's completion-time
/// objective divided by the machine's observed availability, so machines
/// that keep crashing look proportionally slower and attract fewer tasks.
/// With fault injection disabled every availability is 1.0 and FTMIN-EET
/// decides exactly like MECT. Availability is floored at 5% so a machine
/// that failed early in a run is discounted, never excluded outright.
class FtMinEetPolicy final : public Policy {
 public:
  [[nodiscard]] std::string name() const override { return "FTMIN-EET"; }
  [[nodiscard]] PolicyMode mode() const override { return PolicyMode::kImmediate; }
  void schedule_into(SchedulingContext& context, std::vector<Assignment>& out) override;
};

}  // namespace e2c::sched
