#include "sched/batch.hpp"

#include <algorithm>
#include <limits>

namespace e2c::sched {

namespace {

/// Reference iterative batch mapper shared by MM/MMU/MSD. \p key computes
/// the selection score of a task given its best completion time; the task
/// with the smallest score is mapped each round (ties break to the earlier
/// arrival, which is the batch-queue order).
///
/// Tasks whose best-case completion already misses their deadline are
/// *deferred* (left in the batch queue), following the task-pruning line of
/// the E2C authors (Gentry/Denninnart/Mokhtari et al.): mapping doomed work
/// only burns machine time that on-time tasks need, and the deferred task is
/// cancelled by its deadline event anyway. Without this, MMU in particular
/// inverts at high load — the most-negative-slack (already doomed) tasks
/// count as "most urgent" and starve the feasible ones.
///
/// This is the decision-equivalence oracle for iterative_map_fast below:
/// O(rounds x pending x machines), kept verbatim and selectable via
/// SchedImpl::kReference.
template <typename Key>
void iterative_map_reference(SchedulingContext& context, Key key,
                             std::vector<Assignment>& assignments) {
  assignments.clear();
  std::vector<const workload::TaskDef*> pending = context.batch_queue();

  while (!pending.empty()) {
    std::size_t best_task = pending.size();
    std::size_t best_machine = context.machines().size();
    double best_key = 0.0;

    for (std::size_t i = 0; i < pending.size(); ++i) {
      const workload::TaskDef& task = *pending[i];
      const std::size_t machine_index = argmin_completion(context, task);
      if (machine_index >= context.machines().size()) continue;  // no slot anywhere
      const core::SimTime completion =
          context.completion_time(task, context.machines()[machine_index]);
      if (completion > task.deadline) continue;  // infeasible: defer (prune)
      const double k = key(task, completion);
      if (best_task == pending.size() || k < best_key) {
        best_task = i;
        best_machine = machine_index;
        best_key = k;
      }
    }
    if (best_task == pending.size()) break;  // saturated or only infeasible left

    const workload::TaskDef& task = *pending[best_task];
    assignments.push_back(Assignment{task.id, context.machines()[best_machine].id});
    context.commit(task, best_machine);
    pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(best_task));
  }
}

/// Sentinel for a stale per-type cache entry (distinct from machines.size(),
/// which a refresh produces when no machine has a free slot).
constexpr std::size_t kStale = std::numeric_limits<std::size_t>::max();

/// Incremental mapper, decision-equivalent to iterative_map_reference.
///
/// The best (machine, completion) pair of a task is a function of its *type*
/// alone — every task of a type shares one EET row — so the argmin over
/// machines is cached per type. After a commit only the committed machine's
/// projection changed, and it changed for the worse (ready_time grew, a slot
/// was consumed), so a cached pair on any *other* machine is still the
/// argmin; only types cached on the committed machine re-scan the machines.
/// Tasks whose best-case completion misses their deadline are skip-marked
/// permanently: their best completion is monotone non-decreasing within an
/// invocation (ready times only grow, the slot set only shrinks), so the
/// reference would re-reject them every round anyway.
///
/// Per invocation: O(types x machines) refreshes amortized over rounds plus
/// an O(pending) selection scan per round, vs the reference's
/// O(pending x machines) per round.
template <typename Key>
void iterative_map_fast(SchedulingContext& context, Key key, BatchMapperScratch& scratch,
                        std::vector<Assignment>& assignments) {
  assignments.clear();
  const auto& queue = context.batch_queue();
  const auto& machines = context.machines();
  const std::size_t task_count = queue.size();
  const std::size_t machine_count = machines.size();
  const std::size_t type_count = context.eet().task_type_count();

  scratch.state.assign(task_count, MapSlot::kActive);
  scratch.type_machine.assign(type_count, kStale);
  scratch.type_completion.assign(type_count, 0.0);
  std::size_t active = task_count;

  const auto refresh_type = [&](hetero::TaskTypeId type) {
    const std::span<const double> row = context.eet_row(type);
    std::size_t best = machine_count;
    double best_completion = 0.0;
    for (std::size_t j = 0; j < machine_count; ++j) {
      if (machines[j].free_slots == 0) continue;
      const double completion = machines[j].ready_time + row[machines[j].type];
      if (best == machine_count || completion < best_completion) {
        best = j;
        best_completion = completion;
      }
    }
    scratch.type_machine[type] = best;
    scratch.type_completion[type] = best_completion;
  };

  while (active > 0) {
    std::size_t best_task = task_count;
    std::size_t best_machine = machine_count;
    double best_key = 0.0;

    for (std::size_t i = 0; i < task_count; ++i) {
      if (scratch.state[i] != MapSlot::kActive) continue;
      const workload::TaskDef& task = *queue[i];
      if (scratch.type_machine[task.type] == kStale) refresh_type(task.type);
      const std::size_t machine_index = scratch.type_machine[task.type];
      if (machine_index >= machine_count) continue;  // no slot anywhere
      const double completion = scratch.type_completion[task.type];
      if (completion > task.deadline) {  // infeasible: defer (prune)
        scratch.state[i] = MapSlot::kDeferred;
        --active;
        continue;
      }
      const double k = key(task, completion);
      if (best_task == task_count || k < best_key) {
        best_task = i;
        best_machine = machine_index;
        best_key = k;
      }
    }
    if (best_task == task_count) break;  // saturated or only infeasible left

    const workload::TaskDef& task = *queue[best_task];
    assignments.push_back(Assignment{task.id, machines[best_machine].id});
    context.commit(task, best_machine);
    scratch.state[best_task] = MapSlot::kCommitted;
    --active;
    // Only the committed machine's projection changed (and only for the
    // worse), so caches pointing elsewhere stay valid.
    for (std::size_t t = 0; t < type_count; ++t) {
      if (scratch.type_machine[t] == best_machine) scratch.type_machine[t] = kStale;
    }
  }
}

template <typename Key>
void iterative_map(SchedulingContext& context, SchedImpl impl, BatchMapperScratch& scratch,
                   Key key, std::vector<Assignment>& out) {
  impl == SchedImpl::kReference ? iterative_map_reference(context, key, out)
                                : iterative_map_fast(context, key, scratch, out);
}

}  // namespace

void MinMinPolicy::schedule_into(SchedulingContext& context, std::vector<Assignment>& out) {
  iterative_map(context, impl_, scratch_,
                [](const workload::TaskDef&, core::SimTime completion) {
                  return completion;
                },
                out);
}

void MaxUrgencyPolicy::schedule_into(SchedulingContext& context,
                                     std::vector<Assignment>& out) {
  // Smallest slack first == max urgency.
  iterative_map(context, impl_, scratch_,
                [](const workload::TaskDef& task, core::SimTime completion) {
                  return task.deadline - completion;
                },
                out);
}

void SoonestDeadlinePolicy::schedule_into(SchedulingContext& context,
                                          std::vector<Assignment>& out) {
  iterative_map(context, impl_, scratch_,
                [](const workload::TaskDef& task, core::SimTime) { return task.deadline; },
                out);
}

}  // namespace e2c::sched
