#include "sched/batch.hpp"

#include <algorithm>

namespace e2c::sched {

namespace {

/// Iterative batch mapper shared by MM/MMU/MSD. \p key computes the
/// selection score of a task given its best completion time; the task with
/// the smallest score is mapped each round (ties break to the earlier
/// arrival, which is the batch-queue order).
///
/// Tasks whose best-case completion already misses their deadline are
/// *deferred* (left in the batch queue), following the task-pruning line of
/// the E2C authors (Gentry/Denninnart/Mokhtari et al.): mapping doomed work
/// only burns machine time that on-time tasks need, and the deferred task is
/// cancelled by its deadline event anyway. Without this, MMU in particular
/// inverts at high load — the most-negative-slack (already doomed) tasks
/// count as "most urgent" and starve the feasible ones.
template <typename Key>
std::vector<Assignment> iterative_map(SchedulingContext& context, Key key) {
  std::vector<Assignment> assignments;
  std::vector<const workload::Task*> pending = context.batch_queue();

  while (!pending.empty()) {
    std::size_t best_task = pending.size();
    std::size_t best_machine = context.machines().size();
    double best_key = 0.0;

    for (std::size_t i = 0; i < pending.size(); ++i) {
      const workload::Task& task = *pending[i];
      const std::size_t machine_index = argmin_completion(context, task);
      if (machine_index >= context.machines().size()) continue;  // no slot anywhere
      const core::SimTime completion =
          context.completion_time(task, context.machines()[machine_index]);
      if (completion > task.deadline) continue;  // infeasible: defer (prune)
      const double k = key(task, completion);
      if (best_task == pending.size() || k < best_key) {
        best_task = i;
        best_machine = machine_index;
        best_key = k;
      }
    }
    if (best_task == pending.size()) break;  // saturated or only infeasible left

    const workload::Task& task = *pending[best_task];
    assignments.push_back(Assignment{task.id, context.machines()[best_machine].id});
    context.commit(task, best_machine);
    pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(best_task));
  }
  return assignments;
}

}  // namespace

std::vector<Assignment> MinMinPolicy::schedule(SchedulingContext& context) {
  return iterative_map(context, [](const workload::Task&, core::SimTime completion) {
    return completion;
  });
}

std::vector<Assignment> MaxUrgencyPolicy::schedule(SchedulingContext& context) {
  // Smallest slack first == max urgency.
  return iterative_map(context, [](const workload::Task& task, core::SimTime completion) {
    return task.deadline - completion;
  });
}

std::vector<Assignment> SoonestDeadlinePolicy::schedule(SchedulingContext& context) {
  return iterative_map(context, [](const workload::Task& task, core::SimTime) {
    return task.deadline;
  });
}

}  // namespace e2c::sched
