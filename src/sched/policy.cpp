#include "sched/policy.hpp"

namespace e2c::sched {

namespace {
template <typename Score>
std::size_t argmin_with_space(const SchedulingContext& context, Score score) {
  const auto& machines = context.machines();
  std::size_t best = machines.size();
  double best_score = 0.0;
  for (std::size_t i = 0; i < machines.size(); ++i) {
    if (machines[i].free_slots == 0) continue;
    const double s = score(machines[i]);
    if (best == machines.size() || s < best_score) {
      best = i;
      best_score = s;
    }
  }
  return best;
}
}  // namespace

std::size_t argmin_completion(const SchedulingContext& context, const workload::Task& task) {
  return argmin_with_space(context, [&](const MachineView& m) {
    return context.completion_time(task, m);
  });
}

std::size_t argmin_exec(const SchedulingContext& context, const workload::Task& task) {
  // Ties on raw EET are broken by current load (ready time): on a
  // homogeneous system every machine ties, and without this MEET would herd
  // every task onto machine 0 while the rest sit idle. With the load
  // tie-break MEET degenerates to least-loaded there, and is unchanged on
  // heterogeneous systems where EETs differ.
  const auto& machines = context.machines();
  std::size_t best = machines.size();
  for (std::size_t i = 0; i < machines.size(); ++i) {
    if (machines[i].free_slots == 0) continue;
    if (best == machines.size()) {
      best = i;
      continue;
    }
    const double exec_i = context.exec_time(task, machines[i]);
    const double exec_b = context.exec_time(task, machines[best]);
    if (exec_i < exec_b ||
        (exec_i == exec_b && machines[i].ready_time < machines[best].ready_time)) {
      best = i;
    }
  }
  return best;
}

std::size_t argmin_ready(const SchedulingContext& context) {
  return argmin_with_space(context, [](const MachineView& m) { return m.ready_time; });
}

}  // namespace e2c::sched
