#include "sched/policy.hpp"

#include "util/error.hpp"
#include "util/string_util.hpp"

namespace e2c::sched {

namespace {

// Startup-written, read-only afterwards (parallel experiment workers create
// policies concurrently, but never while a CLI is still parsing flags).
SchedImpl g_default_sched_impl = SchedImpl::kFast;

template <typename Score>
std::size_t argmin_with_space(const SchedulingContext& context, Score score) {
  const auto& machines = context.machines();
  std::size_t best = machines.size();
  double best_score = 0.0;
  for (std::size_t i = 0; i < machines.size(); ++i) {
    if (machines[i].free_slots == 0) continue;
    const double s = score(machines[i]);
    if (best == machines.size() || s < best_score) {
      best = i;
      best_score = s;
    }
  }
  return best;
}

}  // namespace

SchedImpl default_sched_impl() noexcept { return g_default_sched_impl; }

void set_default_sched_impl(SchedImpl impl) noexcept { g_default_sched_impl = impl; }

std::vector<std::string> sched_impl_names() { return {"fast", "reference"}; }

const char* sched_impl_name(SchedImpl impl) noexcept {
  return impl == SchedImpl::kFast ? "fast" : "reference";
}

SchedImpl parse_sched_impl(const std::string& name) {
  if (util::iequals(name, "fast")) return SchedImpl::kFast;
  if (util::iequals(name, "reference")) return SchedImpl::kReference;
  std::string message = "unknown scheduler implementation: '" + name + "' (registered:";
  for (const std::string& known : sched_impl_names()) message += " " + known;
  message += ")";
  throw InputError(message);
}

std::size_t argmin_completion(const SchedulingContext& context, const workload::TaskDef& task) {
  // Hand-rolled over the task's EET row: one contiguous read per machine
  // instead of a per-cell accessor call. Same strict-< / lower-index
  // tie-break as argmin_with_space.
  const auto& machines = context.machines();
  const std::span<const double> row = context.eet_row(task.type);
  std::size_t best = machines.size();
  double best_completion = 0.0;
  for (std::size_t i = 0; i < machines.size(); ++i) {
    if (machines[i].free_slots == 0) continue;
    const double completion = machines[i].ready_time + row[machines[i].type];
    if (best == machines.size() || completion < best_completion) {
      best = i;
      best_completion = completion;
    }
  }
  return best;
}

std::size_t argmin_exec(const SchedulingContext& context, const workload::TaskDef& task) {
  // Ties on raw EET are broken by current load (ready time): on a
  // homogeneous system every machine ties, and without this MEET would herd
  // every task onto machine 0 while the rest sit idle. With the load
  // tie-break MEET degenerates to least-loaded there, and is unchanged on
  // heterogeneous systems where EETs differ.
  const auto& machines = context.machines();
  const std::span<const double> row = context.eet_row(task.type);
  std::size_t best = machines.size();
  for (std::size_t i = 0; i < machines.size(); ++i) {
    if (machines[i].free_slots == 0) continue;
    if (best == machines.size()) {
      best = i;
      continue;
    }
    const double exec_i = row[machines[i].type];
    const double exec_b = row[machines[best].type];
    if (exec_i < exec_b ||
        (exec_i == exec_b && machines[i].ready_time < machines[best].ready_time)) {
      best = i;
    }
  }
  return best;
}

std::size_t argmin_ready(const SchedulingContext& context) {
  return argmin_with_space(context, [](const MachineView& m) { return m.ready_time; });
}

}  // namespace e2c::sched
