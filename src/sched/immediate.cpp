#include "sched/immediate.hpp"

namespace e2c::sched {

namespace {
/// Maps every task in the batch queue, in arrival order, to the machine
/// selected by \p pick (a member-style selector). Shared by all immediate
/// policies, which differ only in the selector.
template <typename Pick>
std::vector<Assignment> map_all_in_order(SchedulingContext& context, Pick pick) {
  std::vector<Assignment> assignments;
  for (const workload::Task* task : context.batch_queue()) {
    const std::size_t machine_index = pick(context, *task);
    if (machine_index >= context.machines().size()) continue;  // no space anywhere
    assignments.push_back(
        Assignment{task->id, context.machines()[machine_index].id});
    context.commit(*task, machine_index);
  }
  return assignments;
}
}  // namespace

std::vector<Assignment> FcfsPolicy::schedule(SchedulingContext& context) {
  return map_all_in_order(context, [](const SchedulingContext& ctx, const workload::Task&) {
    return argmin_ready(ctx);
  });
}

std::vector<Assignment> MeetPolicy::schedule(SchedulingContext& context) {
  return map_all_in_order(context,
                          [](const SchedulingContext& ctx, const workload::Task& task) {
                            return argmin_exec(ctx, task);
                          });
}

std::vector<Assignment> MectPolicy::schedule(SchedulingContext& context) {
  return map_all_in_order(context,
                          [](const SchedulingContext& ctx, const workload::Task& task) {
                            return argmin_completion(ctx, task);
                          });
}

}  // namespace e2c::sched
