#include "sched/immediate.hpp"

#include <algorithm>

namespace e2c::sched {

namespace {
/// Maps every task in the batch queue, in arrival order, to the machine
/// selected by \p pick (a member-style selector). Shared by all immediate
/// policies, which differ only in the selector.
template <typename Pick>
void map_all_in_order(SchedulingContext& context, Pick pick,
                      std::vector<Assignment>& assignments) {
  assignments.clear();
  for (const workload::TaskDef* task : context.batch_queue()) {
    const std::size_t machine_index = pick(context, *task);
    if (machine_index >= context.machines().size()) continue;  // no space anywhere
    assignments.push_back(
        Assignment{task->id, context.machines()[machine_index].id});
    context.commit(*task, machine_index);
  }
}
}  // namespace

void FcfsPolicy::schedule_into(SchedulingContext& context, std::vector<Assignment>& out) {
  map_all_in_order(
      context,
      [](const SchedulingContext& ctx, const workload::TaskDef&) {
        return argmin_ready(ctx);
      },
      out);
}

void MeetPolicy::schedule_into(SchedulingContext& context, std::vector<Assignment>& out) {
  map_all_in_order(
      context,
      [](const SchedulingContext& ctx, const workload::TaskDef& task) {
        return argmin_exec(ctx, task);
      },
      out);
}

void MectPolicy::schedule_into(SchedulingContext& context, std::vector<Assignment>& out) {
  map_all_in_order(
      context,
      [](const SchedulingContext& ctx, const workload::TaskDef& task) {
        return argmin_completion(ctx, task);
      },
      out);
}

void FtMinEetPolicy::schedule_into(SchedulingContext& context, std::vector<Assignment>& out) {
  map_all_in_order(
      context,
      [](const SchedulingContext& ctx, const workload::TaskDef& task) {
        // Availability-discounted completion time: only the execution term is
        // inflated (a machine up `a` of the time effectively runs at speed
        // `a`), not the already-committed queue backlog — discounting the
        // whole completion overreacts to one early crash and starves the
        // repaired machine. With equal availabilities this degenerates to
        // MECT exactly. The floor keeps a mostly-down machine rankable.
        constexpr double kAvailabilityFloor = 0.05;
        const auto& machines = ctx.machines();
        std::size_t best = machines.size();
        double best_score = 0.0;
        for (std::size_t m = 0; m < machines.size(); ++m) {
          if (machines[m].free_slots == 0) continue;
          const double score =
              machines[m].ready_time +
              ctx.exec_time(task, machines[m]) /
                  std::max(machines[m].availability, kAvailabilityFloor);
          if (best == machines.size() || score < best_score) {
            best = m;
            best_score = score;
          }
        }
        return best;
      },
      out);
}

}  // namespace e2c::sched
