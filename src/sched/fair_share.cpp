#include "sched/fair_share.hpp"

#include <algorithm>

namespace e2c::sched {

std::vector<Assignment> FairSharePolicy::schedule(SchedulingContext& context) {
  std::vector<Assignment> assignments;
  std::vector<const workload::Task*> pending = context.batch_queue();

  while (!pending.empty()) {
    // Pick the pending task of the most-suffering type; break ties by
    // soonest deadline, then arrival order (stable).
    std::size_t best_task = pending.size();
    for (std::size_t i = 0; i < pending.size(); ++i) {
      if (best_task == pending.size()) {
        best_task = i;
        continue;
      }
      const double rate_i = context.type_ontime_rate(pending[i]->type);
      const double rate_b = context.type_ontime_rate(pending[best_task]->type);
      if (rate_i < rate_b ||
          (rate_i == rate_b && pending[i]->deadline < pending[best_task]->deadline)) {
        best_task = i;
      }
    }

    const workload::Task& task = *pending[best_task];
    const std::size_t machine_index = argmin_completion(context, task);
    if (machine_index >= context.machines().size()) break;  // saturated

    assignments.push_back(Assignment{task.id, context.machines()[machine_index].id});
    context.commit(task, machine_index);
    pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(best_task));
  }
  return assignments;
}

}  // namespace e2c::sched
