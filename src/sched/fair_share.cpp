#include "sched/fair_share.hpp"

#include <algorithm>

namespace e2c::sched {

void FairSharePolicy::schedule_into(SchedulingContext& context,
                                    std::vector<Assignment>& assignments) {
  assignments.clear();
  const auto& queue = context.batch_queue();
  // Order-preserving skip marks instead of O(n) mid-vector erases: the scan
  // walks the arrival-ordered queue, so the arrival tie-break is untouched.
  std::vector<bool> mapped(queue.size(), false);
  std::size_t remaining = queue.size();

  while (remaining > 0) {
    // Pick the pending task of the most-suffering type; break ties by
    // soonest deadline, then arrival order (stable).
    std::size_t best_task = queue.size();
    for (std::size_t i = 0; i < queue.size(); ++i) {
      if (mapped[i]) continue;
      if (best_task == queue.size()) {
        best_task = i;
        continue;
      }
      const double rate_i = context.type_ontime_rate(queue[i]->type);
      const double rate_b = context.type_ontime_rate(queue[best_task]->type);
      if (rate_i < rate_b ||
          (rate_i == rate_b && queue[i]->deadline < queue[best_task]->deadline)) {
        best_task = i;
      }
    }

    const workload::TaskDef& task = *queue[best_task];
    const std::size_t machine_index = argmin_completion(context, task);
    if (machine_index >= context.machines().size()) break;  // saturated

    assignments.push_back(Assignment{task.id, context.machines()[machine_index].id});
    context.commit(task, machine_index);
    mapped[best_task] = true;
    --remaining;
  }
}

}  // namespace e2c::sched
