/// \file task_index_queue.hpp
/// \brief Order-preserving O(1) membership queue over dense task indices.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/error.hpp"

namespace e2c::sched {

/// The batch queue's backing structure: an intrusive doubly-linked list
/// threaded through two flat arrays indexed by task index (tasks are dense
/// 0..n-1). push_back/erase/contains are O(1) and iteration preserves
/// arrival (insertion) order — replacing the vector + std::find/erase paths
/// that made every deadline drop, assignment and replica cancel O(queue).
///
/// A task index may re-enter the queue after leaving it (fault retries).
class TaskIndexQueue {
 public:
  /// Sizes the structure for task indices [0, count) and empties it.
  void reset(std::size_t count) {
    next_.assign(count, kNil);
    prev_.assign(count, kNil);
    member_.assign(count, 0);
    head_ = kNil;
    tail_ = kNil;
    size_ = 0;
  }

  /// Appends \p index. Requires index < capacity and not already enqueued.
  void push_back(std::size_t index) {
    require(index < member_.size(), "TaskIndexQueue::push_back: index out of range");
    require(member_[index] == 0, "TaskIndexQueue::push_back: index already enqueued");
    const auto node = static_cast<std::int32_t>(index);
    member_[index] = 1;
    next_[index] = kNil;
    prev_[index] = tail_;
    if (tail_ != kNil) {
      next_[static_cast<std::size_t>(tail_)] = node;
    } else {
      head_ = node;
    }
    tail_ = node;
    ++size_;
  }

  /// Unlinks \p index; returns false when it is not in the queue.
  bool erase(std::size_t index) {
    if (index >= member_.size() || member_[index] == 0) return false;
    const std::int32_t before = prev_[index];
    const std::int32_t after = next_[index];
    if (before != kNil) {
      next_[static_cast<std::size_t>(before)] = after;
    } else {
      head_ = after;
    }
    if (after != kNil) {
      prev_[static_cast<std::size_t>(after)] = before;
    } else {
      tail_ = before;
    }
    member_[index] = 0;
    next_[index] = kNil;
    prev_[index] = kNil;
    --size_;
    return true;
  }

  [[nodiscard]] bool contains(std::size_t index) const noexcept {
    return index < member_.size() && member_[index] != 0;
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  /// Calls \p fn with each enqueued task index, oldest first.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::int32_t node = head_; node != kNil;
         node = next_[static_cast<std::size_t>(node)]) {
      fn(static_cast<std::size_t>(node));
    }
  }

 private:
  static constexpr std::int32_t kNil = -1;
  std::vector<std::int32_t> next_;
  std::vector<std::int32_t> prev_;
  std::vector<std::uint8_t> member_;
  std::int32_t head_ = kNil;
  std::int32_t tail_ = kNil;
  std::size_t size_ = 0;
};

}  // namespace e2c::sched
