/// \file elare.hpp
/// \brief ELARE and FELARE: energy-&-latency-aware batch policies.
///
/// These reproduce the policies of Mokhtari et al., "FELARE: Fair Scheduling
/// of Machine Learning Applications on Heterogeneous Edge Systems"
/// (IEEE Cloud '22), which the paper lists among E2C's batch options.
///
/// ELARE scores each feasible (task, machine) pair by a convex combination
/// of normalized expected energy and normalized expected completion time and
/// repeatedly commits the lowest-scoring pair. A pair is feasible when the
/// projected completion meets the task's deadline; tasks that are infeasible
/// on every machine are *deferred* (left unmapped) so they do not burn
/// energy on a machine only to be dropped — the task-pruning idea of the
/// FELARE line of work.
///
/// FELARE adds fairness across task types: the score of a task type that is
/// observably suffering (low on-time completion rate so far) is discounted,
/// pulling its tasks forward in the mapping order.
///
/// The structure follows the published description; the exact normalization
/// constants below are this implementation's (documented) choices.
///
/// Two implementations are selectable at construction (see SchedImpl): the
/// incremental fast path (cached best pairs, incrementally maintained
/// normalization maxima — DESIGN.md §8) and the original full-rescan
/// reference, retained as the decision-equivalence oracle.
#pragma once

#include "sched/mapper_scratch.hpp"
#include "sched/policy.hpp"

namespace e2c::sched {

/// Energy-Latency-Aware Resource allocation (batch mode).
class ElarePolicy : public Policy {
 public:
  /// \param energy_weight weight of the energy term in [0, 1]; the latency
  /// term gets 1 - energy_weight. The published evaluation balances the two.
  explicit ElarePolicy(double energy_weight = 0.5,
                       SchedImpl impl = default_sched_impl());

  [[nodiscard]] std::string name() const override { return "ELARE"; }
  [[nodiscard]] PolicyMode mode() const override { return PolicyMode::kBatch; }
  void schedule_into(SchedulingContext& context, std::vector<Assignment>& out) override;

 protected:
  /// Fairness discount multiplier for a task's score; 1.0 in plain ELARE,
  /// overridden by FELARE. The fast path caches the factor per task for the
  /// duration of one invocation, so overrides must not depend on the
  /// machine projections (which change as the mapper commits picks) — both
  /// built-ins depend only on invocation-constant inputs.
  [[nodiscard]] virtual double fairness_factor(const SchedulingContext& context,
                                               const workload::TaskDef& task) const;

 private:
  void schedule_reference(SchedulingContext& context, std::vector<Assignment>& out);
  void schedule_fast(SchedulingContext& context, std::vector<Assignment>& out);

  double energy_weight_;
  SchedImpl impl_;
  ElareMapperScratch scratch_;
};

/// Fair ELARE: boosts task types with the worst observed on-time rate.
class FelarePolicy final : public ElarePolicy {
 public:
  explicit FelarePolicy(double energy_weight = 0.5,
                        SchedImpl impl = default_sched_impl())
      : ElarePolicy(energy_weight, impl) {}
  [[nodiscard]] std::string name() const override { return "FELARE"; }

 protected:
  [[nodiscard]] double fairness_factor(const SchedulingContext& context,
                                       const workload::TaskDef& task) const override;
};

}  // namespace e2c::sched
