#include "sched/elare.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace e2c::sched {

ElarePolicy::ElarePolicy(double energy_weight) : energy_weight_(energy_weight) {
  require_input(energy_weight >= 0.0 && energy_weight <= 1.0,
                "ELARE: energy_weight must be in [0, 1]");
}

double ElarePolicy::fairness_factor(const SchedulingContext&, const workload::Task&) const {
  return 1.0;
}

std::vector<Assignment> ElarePolicy::schedule(SchedulingContext& context) {
  std::vector<Assignment> assignments;
  std::vector<const workload::Task*> pending = context.batch_queue();

  // Normalization bases so the energy and latency terms are comparable:
  // the worst (largest) energy and completion values over all pairs in this
  // invocation. Recomputed per round because commits move ready times.
  while (!pending.empty()) {
    double max_energy = 0.0;
    core::SimTime max_completion = 0.0;
    bool any_slot = false;
    for (const workload::Task* task : pending) {
      for (const MachineView& m : context.machines()) {
        if (m.free_slots == 0) continue;
        any_slot = true;
        max_energy = std::max(max_energy, context.exec_energy(*task, m));
        max_completion = std::max(max_completion, context.completion_time(*task, m));
      }
    }
    if (!any_slot || max_energy <= 0.0 || max_completion <= 0.0) break;

    std::size_t best_task = pending.size();
    std::size_t best_machine = context.machines().size();
    double best_score = 0.0;

    for (std::size_t i = 0; i < pending.size(); ++i) {
      const workload::Task& task = *pending[i];
      const double factor = fairness_factor(context, task);
      for (std::size_t j = 0; j < context.machines().size(); ++j) {
        const MachineView& m = context.machines()[j];
        if (m.free_slots == 0) continue;
        const core::SimTime completion = context.completion_time(task, m);
        if (completion > task.deadline) continue;  // infeasible: defer, don't waste
        const double score = factor * (energy_weight_ * context.exec_energy(task, m) /
                                           max_energy +
                                       (1.0 - energy_weight_) * completion / max_completion);
        if (best_task == pending.size() || score < best_score) {
          best_task = i;
          best_machine = j;
          best_score = score;
        }
      }
    }
    if (best_task == pending.size()) break;  // every remaining task is infeasible

    const workload::Task& task = *pending[best_task];
    assignments.push_back(Assignment{task.id, context.machines()[best_machine].id});
    context.commit(task, best_machine);
    pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(best_task));
  }
  return assignments;
}

double FelarePolicy::fairness_factor(const SchedulingContext& context,
                                     const workload::Task& task) const {
  // A type completing only 40% on time gets factor ~0.4+eps: its score
  // shrinks, so its tasks win ties against well-served types. The floor
  // keeps starved types from monopolizing the mapper outright.
  constexpr double kFloor = 0.2;
  const double rate = context.type_ontime_rate(task.type);
  return std::max(kFloor, rate);
}

}  // namespace e2c::sched
