#include "sched/elare.hpp"

#include <algorithm>
#include <limits>

#include "util/error.hpp"

namespace e2c::sched {

ElarePolicy::ElarePolicy(double energy_weight, SchedImpl impl)
    : energy_weight_(energy_weight), impl_(impl) {
  require_input(energy_weight >= 0.0 && energy_weight <= 1.0,
                "ELARE: energy_weight must be in [0, 1]");
}

double ElarePolicy::fairness_factor(const SchedulingContext&, const workload::TaskDef&) const {
  return 1.0;
}

void ElarePolicy::schedule_into(SchedulingContext& context, std::vector<Assignment>& out) {
  impl_ == SchedImpl::kReference ? schedule_reference(context, out)
                                 : schedule_fast(context, out);
}

/// The original full-rescan mapper, kept verbatim as the decision-
/// equivalence oracle for schedule_fast: O(rounds x pending x machines)
/// twice over (normalization rescan plus pair scan) per invocation.
void ElarePolicy::schedule_reference(SchedulingContext& context,
                                     std::vector<Assignment>& assignments) {
  assignments.clear();
  std::vector<const workload::TaskDef*> pending = context.batch_queue();

  // Normalization bases so the energy and latency terms are comparable:
  // the worst (largest) energy and completion values over all pairs in this
  // invocation. Recomputed per round because commits move ready times.
  while (!pending.empty()) {
    double max_energy = 0.0;
    core::SimTime max_completion = 0.0;
    bool any_slot = false;
    for (const workload::TaskDef* task : pending) {
      for (const MachineView& m : context.machines()) {
        if (m.free_slots == 0) continue;
        any_slot = true;
        max_energy = std::max(max_energy, context.exec_energy(*task, m));
        max_completion = std::max(max_completion, context.completion_time(*task, m));
      }
    }
    if (!any_slot || max_energy <= 0.0 || max_completion <= 0.0) break;

    std::size_t best_task = pending.size();
    std::size_t best_machine = context.machines().size();
    double best_score = 0.0;

    for (std::size_t i = 0; i < pending.size(); ++i) {
      const workload::TaskDef& task = *pending[i];
      const double factor = fairness_factor(context, task);
      for (std::size_t j = 0; j < context.machines().size(); ++j) {
        const MachineView& m = context.machines()[j];
        if (m.free_slots == 0) continue;
        const core::SimTime completion = context.completion_time(task, m);
        if (completion > task.deadline) continue;  // infeasible: defer, don't waste
        const double score = factor * (energy_weight_ * context.exec_energy(task, m) /
                                           max_energy +
                                       (1.0 - energy_weight_) * completion / max_completion);
        if (best_task == pending.size() || score < best_score) {
          best_task = i;
          best_machine = j;
          best_score = score;
        }
      }
    }
    if (best_task == pending.size()) break;  // every remaining task is infeasible

    const workload::TaskDef& task = *pending[best_task];
    assignments.push_back(Assignment{task.id, context.machines()[best_machine].id});
    context.commit(task, best_machine);
    pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(best_task));
  }
}

/// Incremental mapper, decision-equivalent to schedule_reference.
///
/// Three observations make the hot path cheap without changing a single
/// pick:
///  - The normalization maxima range over (pending task, machine-with-slot)
///    pairs, but both exec_energy and completion depend on the task only
///    through its *type*. The maxima are therefore maxima over
///    (live type, machine) — O(types x machines) per round instead of
///    O(pending x machines) — where a type is live while any uncommitted
///    task of it remains (deferred tasks keep normalizing, exactly like the
///    reference's still-pending infeasible tasks). max is exact over
///    doubles, so the reduced value set gives the bit-identical base.
///  - The unfactored pair score is also a pure function of (type, machine),
///    so it lives in a per-type pair table rebuilt only when a
///    normalization base or the free-slot set changed; after an ordinary
///    commit only the committed machine's column is recomputed.
///  - A task's cached best feasible pair stays the argmin while the pair
///    tables' epoch is unchanged and its machine is not the committed one:
///    the committed machine's completion (hence score, energy_weight < 1)
///    only grew, and infeasibility is monotone within an invocation.
///
/// Fairness factors multiply the whole pair score with an
/// invocation-constant positive per-task value, so they are computed once
/// per task; the per-pair comparison still uses the factored score so
/// rounding ties resolve exactly like the reference.
void ElarePolicy::schedule_fast(SchedulingContext& context,
                                std::vector<Assignment>& assignments) {
  constexpr std::size_t kNoMachine = std::numeric_limits<std::size_t>::max();
  assignments.clear();
  const auto& queue = context.batch_queue();
  const auto& machines = context.machines();
  const std::size_t task_count = queue.size();
  const std::size_t machine_count = machines.size();
  const std::size_t type_count = context.eet().task_type_count();
  ElareMapperScratch& s = scratch_;

  s.state.assign(task_count, MapSlot::kActive);
  s.factor.assign(task_count, -1.0);
  s.best_machine.assign(task_count, kNoMachine);
  s.best_score.assign(task_count, 0.0);
  s.epoch.assign(task_count, 0);
  s.type_count.assign(type_count, 0);
  for (const workload::TaskDef* task : queue) ++s.type_count[task->type];
  s.pair_completion.assign(type_count * machine_count, 0.0);
  s.pair_score.assign(type_count * machine_count, 0.0);

  std::size_t active = task_count;
  std::uint32_t table_epoch = 0;  // epoch 0 never matches a cache entry
  double prev_max_energy = -1.0;
  double prev_max_completion = -1.0;
  std::size_t dirty_machine = kNoMachine;  // machine committed last round
  bool slots_changed = false;              // a machine ran out of slots

  while (active > 0) {
    // Normalization bases over (live type, machine-with-slot) pairs; the
    // same value set the reference's pending x machines rescan maximizes.
    double max_energy = 0.0;
    core::SimTime max_completion = 0.0;
    bool any_slot = false;
    for (std::size_t j = 0; j < machine_count; ++j) {
      const MachineView& m = machines[j];
      if (m.free_slots == 0) continue;
      any_slot = true;
      for (std::size_t t = 0; t < type_count; ++t) {
        if (s.type_count[t] == 0) continue;
        const double exec = context.eet().eet_unchecked(t, m.type);
        max_energy = std::max(max_energy, exec * m.busy_watts);
        max_completion = std::max(max_completion, m.ready_time + exec);
      }
    }
    if (!any_slot || max_energy <= 0.0 || max_completion <= 0.0) break;

    // Refresh the pair tables. A changed base (or slot set) re-scores every
    // pair; otherwise only the committed machine's column moved.
    const bool full_rebuild = max_energy != prev_max_energy ||
                              max_completion != prev_max_completion || slots_changed ||
                              table_epoch == 0;
    const auto score_pair = [&](std::size_t t, std::size_t j) {
      const MachineView& m = machines[j];
      const double exec = context.eet().eet_unchecked(t, m.type);
      const core::SimTime completion = m.ready_time + exec;
      s.pair_completion[t * machine_count + j] = completion;
      // Same expression shape as the reference's score (divisions block
      // FMA contraction), evaluated on identical operands.
      s.pair_score[t * machine_count + j] =
          energy_weight_ * (exec * m.busy_watts) / max_energy +
          (1.0 - energy_weight_) * completion / max_completion;
    };
    if (full_rebuild) {
      ++table_epoch;
      for (std::size_t t = 0; t < type_count; ++t) {
        if (s.type_count[t] == 0) continue;
        for (std::size_t j = 0; j < machine_count; ++j) {
          if (machines[j].free_slots == 0) continue;
          score_pair(t, j);
        }
      }
    } else if (dirty_machine != kNoMachine) {
      for (std::size_t t = 0; t < type_count; ++t) {
        if (s.type_count[t] == 0) continue;
        score_pair(t, dirty_machine);
      }
    }
    prev_max_energy = max_energy;
    prev_max_completion = max_completion;

    std::size_t best_task = task_count;
    std::size_t best_machine = machine_count;
    double best_score = 0.0;

    for (std::size_t i = 0; i < task_count; ++i) {
      if (s.state[i] != MapSlot::kActive) continue;
      const workload::TaskDef& task = *queue[i];
      const bool stale = s.epoch[i] != table_epoch ||
                         (!full_rebuild && s.best_machine[i] == dirty_machine);
      if (stale) {
        if (s.factor[i] < 0.0) s.factor[i] = fairness_factor(context, task);
        const double factor = s.factor[i];
        const double* pair_score = &s.pair_score[task.type * machine_count];
        const double* pair_completion = &s.pair_completion[task.type * machine_count];
        std::size_t pick = machine_count;
        double pick_score = 0.0;
        for (std::size_t j = 0; j < machine_count; ++j) {
          if (machines[j].free_slots == 0) continue;
          if (pair_completion[j] > task.deadline) continue;  // infeasible pair
          const double score = factor * pair_score[j];
          if (pick == machine_count || score < pick_score) {
            pick = j;
            pick_score = score;
          }
        }
        if (pick == machine_count) {  // infeasible everywhere: defer (prune)
          s.state[i] = MapSlot::kDeferred;
          --active;
          continue;
        }
        s.best_machine[i] = pick;
        s.best_score[i] = pick_score;
        s.epoch[i] = table_epoch;
      }
      if (best_task == task_count || s.best_score[i] < best_score) {
        best_task = i;
        best_machine = s.best_machine[i];
        best_score = s.best_score[i];
      }
    }
    if (best_task == task_count) break;  // every remaining task is infeasible

    const workload::TaskDef& task = *queue[best_task];
    assignments.push_back(Assignment{task.id, machines[best_machine].id});
    const std::size_t slots_before = machines[best_machine].free_slots;
    context.commit(task, best_machine);
    s.state[best_task] = MapSlot::kCommitted;
    --active;
    --s.type_count[task.type];
    dirty_machine = best_machine;
    slots_changed = slots_before != kUnlimitedSlots && slots_before <= 1;
  }
}

double FelarePolicy::fairness_factor(const SchedulingContext& context,
                                     const workload::TaskDef& task) const {
  // A type completing only 40% on time gets factor ~0.4+eps: its score
  // shrinks, so its tasks win ties against well-served types. The floor
  // keeps starved types from monopolizing the mapper outright.
  constexpr double kFloor = 0.2;
  const double rate = context.type_ontime_rate(task.type);
  return std::max(kFloor, rate);
}

}  // namespace e2c::sched
