/// \file fair_share.hpp
/// \brief Example custom policy: the graduate-assignment solution.
///
/// Part 3 of the paper's class assignment asks graduate students to "create
/// and implement their own scheduling method for the heterogeneous system
/// that enabled fairness across various task types". This policy is a
/// reference solution, shipped both as a usable policy and as the worked
/// example of extending E2C through the registry (see examples/
/// custom_scheduler.cpp, which registers a variant from scratch).
///
/// Strategy: batch-mode iterative mapping where the next task is chosen by
/// *sufferage across task types* — among pending tasks, prefer the type with
/// the lowest observed on-time completion rate; within a type, soonest
/// deadline first. The machine is the completion-time minimizer, skipping
/// mappings that cannot meet the deadline when a feasible alternative
/// exists.
#pragma once

#include "sched/policy.hpp"

namespace e2c::sched {

/// Fairness-first batch policy (reference solution to assignment part 3).
class FairSharePolicy final : public Policy {
 public:
  [[nodiscard]] std::string name() const override { return "FairShare"; }
  [[nodiscard]] PolicyMode mode() const override { return PolicyMode::kBatch; }
  void schedule_into(SchedulingContext& context, std::vector<Assignment>& out) override;
};

}  // namespace e2c::sched
