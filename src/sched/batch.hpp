/// \file batch.hpp
/// \brief The batch-mode mapping heuristics of the paper: MM, MMU and MSD.
///
/// Batch mode (Maheswaran et al. [13], Mokhtari et al. [14]): tasks buffer
/// in the batch queue and the scheduler maps possibly several of them per
/// invocation, against bounded machine queues. All three policies share the
/// iterative structure of Min-Min: repeatedly pick a (task, machine) pair,
/// commit it to the projection, and continue until the batch queue drains or
/// no machine has a free slot. They differ in *which task* is picked next.
///
/// All three defer tasks whose best-case completion already misses the
/// deadline (the E2C authors' task-pruning mechanism [8]/[10]/[14]): doomed
/// work stays in the batch queue and is cancelled at its deadline instead of
/// occupying a machine until the drop.
#pragma once

#include "sched/policy.hpp"

namespace e2c::sched {

/// MinCompletion-MinCompletion (classic Min-Min): next pick is the task
/// whose best-case completion time is smallest. Maximizes short-term
/// throughput; long tasks can starve under load.
class MinMinPolicy final : public Policy {
 public:
  [[nodiscard]] std::string name() const override { return "MM"; }
  [[nodiscard]] PolicyMode mode() const override { return PolicyMode::kBatch; }
  [[nodiscard]] std::vector<Assignment> schedule(SchedulingContext& context) override;
};

/// MinCompletion-MaxUrgency: next pick is the task with the smallest slack
/// (deadline minus best completion time); the mapping machine is still the
/// completion-time minimizer. Prioritizes tasks about to miss.
class MaxUrgencyPolicy final : public Policy {
 public:
  [[nodiscard]] std::string name() const override { return "MMU"; }
  [[nodiscard]] PolicyMode mode() const override { return PolicyMode::kBatch; }
  [[nodiscard]] std::vector<Assignment> schedule(SchedulingContext& context) override;
};

/// MinCompletion-SoonestDeadline: next pick is the task with the earliest
/// absolute deadline (EDF flavour); machine is the completion-time
/// minimizer.
class SoonestDeadlinePolicy final : public Policy {
 public:
  [[nodiscard]] std::string name() const override { return "MSD"; }
  [[nodiscard]] PolicyMode mode() const override { return PolicyMode::kBatch; }
  [[nodiscard]] std::vector<Assignment> schedule(SchedulingContext& context) override;
};

}  // namespace e2c::sched
