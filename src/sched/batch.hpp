/// \file batch.hpp
/// \brief The batch-mode mapping heuristics of the paper: MM, MMU and MSD.
///
/// Batch mode (Maheswaran et al. [13], Mokhtari et al. [14]): tasks buffer
/// in the batch queue and the scheduler maps possibly several of them per
/// invocation, against bounded machine queues. All three policies share the
/// iterative structure of Min-Min: repeatedly pick a (task, machine) pair,
/// commit it to the projection, and continue until the batch queue drains or
/// no machine has a free slot. They differ in *which task* is picked next.
///
/// All three defer tasks whose best-case completion already misses the
/// deadline (the E2C authors' task-pruning mechanism [8]/[10]/[14]): doomed
/// work stays in the batch queue and is cancelled at its deadline instead of
/// occupying a machine until the drop.
///
/// Each policy carries two implementations selected at construction (see
/// SchedImpl): the incremental fast path and the original full-rescan
/// reference. They emit identical assignment sequences by construction;
/// the run-digest goldens and the differential fuzz test enforce it.
#pragma once

#include "sched/mapper_scratch.hpp"
#include "sched/policy.hpp"

namespace e2c::sched {

/// MinCompletion-MinCompletion (classic Min-Min): next pick is the task
/// whose best-case completion time is smallest. Maximizes short-term
/// throughput; long tasks can starve under load.
class MinMinPolicy final : public Policy {
 public:
  explicit MinMinPolicy(SchedImpl impl = default_sched_impl()) : impl_(impl) {}
  [[nodiscard]] std::string name() const override { return "MM"; }
  [[nodiscard]] PolicyMode mode() const override { return PolicyMode::kBatch; }
  void schedule_into(SchedulingContext& context, std::vector<Assignment>& out) override;

 private:
  SchedImpl impl_;
  BatchMapperScratch scratch_;
};

/// MinCompletion-MaxUrgency: next pick is the task with the smallest slack
/// (deadline minus best completion time); the mapping machine is still the
/// completion-time minimizer. Prioritizes tasks about to miss.
class MaxUrgencyPolicy final : public Policy {
 public:
  explicit MaxUrgencyPolicy(SchedImpl impl = default_sched_impl()) : impl_(impl) {}
  [[nodiscard]] std::string name() const override { return "MMU"; }
  [[nodiscard]] PolicyMode mode() const override { return PolicyMode::kBatch; }
  void schedule_into(SchedulingContext& context, std::vector<Assignment>& out) override;

 private:
  SchedImpl impl_;
  BatchMapperScratch scratch_;
};

/// MinCompletion-SoonestDeadline: next pick is the task with the earliest
/// absolute deadline (EDF flavour); machine is the completion-time
/// minimizer.
class SoonestDeadlinePolicy final : public Policy {
 public:
  explicit SoonestDeadlinePolicy(SchedImpl impl = default_sched_impl()) : impl_(impl) {}
  [[nodiscard]] std::string name() const override { return "MSD"; }
  [[nodiscard]] PolicyMode mode() const override { return PolicyMode::kBatch; }
  void schedule_into(SchedulingContext& context, std::vector<Assignment>& out) override;

 private:
  SchedImpl impl_;
  BatchMapperScratch scratch_;
};

}  // namespace e2c::sched
