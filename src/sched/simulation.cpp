#include "sched/simulation.hpp"

#include <algorithm>

#include "hetero/machine_catalog.hpp"
#include "util/error.hpp"

namespace e2c::sched {

SystemConfig make_default_system(hetero::EetMatrix eet, std::size_t machine_queue_capacity) {
  SystemConfig config;
  config.machine_queue_capacity = machine_queue_capacity;
  const auto names = eet.machine_type_names();
  config.eet = std::move(eet);
  config.machines.reserve(names.size());
  const auto specs = hetero::resolve_machine_types(names);
  for (std::size_t i = 0; i < names.size(); ++i) {
    config.machines.push_back(MachineInstance{names[i], i, specs[i]});
  }
  return config;
}

Simulation::Simulation(SystemConfig config, std::unique_ptr<Policy> policy)
    : Simulation(std::make_shared<const SystemConfig>(std::move(config)),
                 std::move(policy)) {}

Simulation::Simulation(std::shared_ptr<const SystemConfig> config,
                       std::unique_ptr<Policy> policy)
    : config_(std::move(config)),
      policy_(std::move(policy)),
      sampling_rng_(config_ ? config_->sampling_seed : 0) {
  require_input(config_ != nullptr, "Simulation: config must not be null");
  require_input(policy_ != nullptr, "Simulation: policy must not be null");
  policy_name_ = policy_->name();
  require_input(!cfg().machines.empty(), "Simulation: at least one machine required");
  if (cfg().pet) {
    require_input(cfg().pet->task_type_count() == cfg().eet.task_type_count() &&
                      cfg().pet->machine_type_count() == cfg().eet.machine_type_count(),
                  "Simulation: PET shape must match the EET matrix");
  }
  if (cfg().comm) {
    require_input(cfg().comm->task_type_count() >= cfg().eet.task_type_count() &&
                      cfg().comm->machine_type_count() >= cfg().eet.machine_type_count(),
                  "Simulation: comm model must cover the EET's task/machine types");
  }

  // Immediate policies always run with unbounded machine queues (Fig. 3:
  // "machine queue size is limited to infinite for immediate policies").
  const std::size_t capacity = policy_->mode() == PolicyMode::kImmediate
                                   ? machines::kUnboundedQueue
                                   : cfg().machine_queue_capacity;

  machines_.reserve(cfg().machines.size());
  for (std::size_t i = 0; i < cfg().machines.size(); ++i) {
    const MachineInstance& instance = cfg().machines[i];
    require_input(instance.type < cfg().eet.machine_type_count(),
                  "Simulation: machine '" + instance.name +
                      "' references a type outside the EET matrix");
    machines_.push_back(std::make_unique<machines::Machine>(
        engine_, i, instance.name, instance.type, instance.power, capacity));
    machines_.back()->set_listener(this);
    // state_ is a member of a non-movable class: its address is stable.
    machines_.back()->set_task_state(&state_);
  }

  if (cfg().memory) {
    const mem::MemoryModel& memory = *cfg().memory;
    require_input(memory.model_mb.size() == cfg().eet.task_type_count() &&
                      memory.load_seconds.size() == cfg().eet.task_type_count(),
                  "Simulation: memory model needs one entry per task type");
    require_input(memory.machine_memory_mb.size() == cfg().eet.machine_type_count(),
                  "Simulation: memory model needs one capacity per machine type");
    model_caches_.reserve(machines_.size());
    for (const auto& machine : machines_) {
      model_caches_.push_back(std::make_unique<mem::ModelCache>(
          memory.machine_memory_mb[machine->type()], memory.model_mb,
          memory.load_seconds, memory.eviction));
      machine->set_model_cache(model_caches_.back().get());
    }
  }

  completed_by_type_.assign(cfg().eet.task_type_count(), 0);
  terminal_by_type_.assign(cfg().eet.task_type_count(), 0);
  rates_scratch_.assign(cfg().eet.task_type_count(), 1.0);
  in_flight_count_.assign(machines_.size(), 0);
  in_flight_exec_.assign(machines_.size(), 0.0);
  booting_.assign(machines_.size(), false);
  pending_fault_event_.assign(machines_.size(), core::kNoEvent);
  if (cfg().faults.enabled) {
    injector_ = std::make_unique<fault::FaultInjector>(cfg().faults, machines_.size());
    if (cfg().faults.recovery.strategy == fault::RecoveryStrategy::kCheckpoint) {
      // The spec lives in the simulation (non-movable, stable address); all
      // machines of one run share the same τ/C/R.
      checkpoint_spec_ = machines::CheckpointSpec{
          cfg().faults.effective_checkpoint_interval(),
          cfg().faults.recovery.checkpoint_cost,
          cfg().faults.recovery.restart_cost};
      for (const auto& machine : machines_) {
        machine->set_checkpoint_spec(&*checkpoint_spec_);
      }
      if (cfg().faults.io.enabled) {
        // Finite shared bandwidth: checkpoint writes and restart reads become
        // transfers on one channel, stretching with contention.
        io_channel_ = std::make_unique<fault::IoChannel>(
            engine_, cfg().faults.io, cfg().faults.recovery.checkpoint_cost,
            cfg().faults.recovery.restart_cost);
        for (const auto& machine : machines_) {
          machine->set_io_channel(io_channel_.get());
        }
      }
    }
  }

  const AutoscalerConfig& scaler = cfg().autoscaler;
  if (scaler.enabled) {
    require_input(scaler.interval > 0.0, "autoscaler: interval must be > 0");
    require_input(scaler.boot_delay >= 0.0, "autoscaler: boot_delay must be >= 0");
    require_input(scaler.min_online >= 1, "autoscaler: min_online must be >= 1");
    require_input(scaler.min_online <= machines_.size(),
                  "autoscaler: min_online exceeds the machine count");
  }
  for (std::size_t index : scaler.initially_offline) {
    require_input(index < machines_.size(), "autoscaler: initially_offline out of range");
    machines_[index]->set_online(false, 0.0);
  }
  if (scaler.enabled) {
    require_input(online_machine_count() >= scaler.min_online,
                  "autoscaler: fewer machines online at start than min_online");
  } else {
    require_input(scaler.initially_offline.empty() ||
                      online_machine_count() >= 1,
                  "Simulation: at least one machine must start online");
  }
}

Simulation::~Simulation() = default;

void Simulation::init_tasks(const workload::Workload& workload, bool aliased) {
  // One outcome per *submitted* task: replica clones never add to the total.
  counters_.total = workload.tasks().size();
  const fault::RecoveryConfig& recovery = cfg().faults.recovery;
  const bool replicate = cfg().faults.enabled &&
                         recovery.strategy == fault::RecoveryStrategy::kReplicate &&
                         recovery.replicas > 1;
  if (replicate) {
    // Bind first (no copy); replicate_workload adopts the expanded clone set
    // before the caller's trace can go away.
    state_.bind(workload.tasks());
    replicate_workload(recovery.replicas);
  } else if (aliased) {
    state_.bind(workload.tasks());
  } else {
    state_.adopt(workload.tasks());
  }
  if (checkpoint_spec_) state_.enable_checkpoint_column();
  init_task_state();
}

void Simulation::init_task_state() {
  // Generated traces carry ids 0..n-1 in arrival order, so index == id and
  // task_index() degenerates to a bounds check; arbitrary ids (hand-written
  // CSVs, replica clones) fall back to the hash map.
  dense_ids_ = true;
  for (std::size_t i = 0; i < state_.size(); ++i) {
    if (state_.id(i) != i) {
      dense_ids_ = false;
      break;
    }
  }
  index_map_.clear();
  if (!dense_ids_) {
    index_map_.reserve(state_.size());
    for (std::size_t i = 0; i < state_.size(); ++i) {
      require_input(index_map_.emplace(state_.id(i), i).second,
                    "Simulation: duplicate task id " + std::to_string(state_.id(i)));
    }
  }
  deadline_event_.assign(state_.size(), core::kNoEvent);
  retry_event_.assign(state_.size(), core::kNoEvent);
  in_flight_.assign(state_.size(), InFlight{});
  group_of_.assign(state_.size(), kNoGroup);
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    for (std::size_t member : groups_[g].members) {
      group_of_[member] = static_cast<std::uint32_t>(g);
    }
  }
  batch_queue_.reset(state_.size());
}

void Simulation::schedule_control_events() {
  if (cfg().autoscaler.enabled && state_.size() != 0) {
    engine_.schedule_at(cfg().autoscaler.interval, core::EventPriority::kControl,
                        "autoscaler tick", [this] { autoscaler_tick(); });
  }
  if (injector_ && state_.size() != 0) {
    for (std::size_t m = 0; m < machines_.size(); ++m) schedule_next_failure(m, 0.0);
  }
}

void Simulation::load(const workload::Workload& workload) {
  require_input(!loaded_, "Simulation: load() may only be called once");
  workload.validate_against(cfg().eet);
  loaded_ = true;
  init_tasks(workload, /*aliased=*/false);
  for (std::size_t i = 0; i < state_.size(); ++i) {
    engine_.schedule_at(state_.arrival(i), core::EventPriority::kArrival,
                        core::EventLabel("arrival task=", state_.id(i)),
                        [this, i] { on_arrival(i); });
  }
  schedule_control_events();
}

void Simulation::load(std::shared_ptr<const workload::Workload> workload) {
  require_input(!loaded_, "Simulation: load() may only be called once");
  require_input(workload != nullptr, "Simulation: workload must not be null");
  workload->validate_against(cfg().eet);
  loaded_ = true;
  shared_trace_ = std::move(workload);
  init_tasks(*shared_trace_, /*aliased=*/true);
  arrival_cursor_ = 0;
  schedule_next_arrival();
  schedule_control_events();
}

void Simulation::schedule_next_arrival() {
  // The task rows are sorted by arrival (Workload guarantees it;
  // replicate_workload preserves it), so arming one arrival at a time keeps
  // the calendar at in-system size while popping events in exactly the order
  // the eager overload would: ties at one instant resolve by priority first,
  // and the next arrival's later insertion sequence only competes with other
  // arrivals — of which the cursor keeps exactly one pending.
  if (arrival_cursor_ >= state_.size()) return;
  const std::size_t i = arrival_cursor_;
  engine_.schedule_at(state_.arrival(i), core::EventPriority::kArrival,
                      core::EventLabel("arrival task=", state_.id(i)), [this, i] {
                        ++arrival_cursor_;
                        schedule_next_arrival();
                        on_arrival(i);
                      });
}

void Simulation::run() {
  require_input(loaded_, "Simulation: call load() before run()");
  engine_.run();
}

bool Simulation::step() {
  require_input(loaded_, "Simulation: call load() before step()");
  return engine_.step();
}

void Simulation::reset(std::unique_ptr<Policy> policy) {
  require_input(policy != nullptr, "Simulation: policy must not be null");
  require_input(policy->mode() == policy_->mode(),
                "Simulation: reset() needs a policy of the same mode (the machine "
                "queue capacity is fixed at construction)");
  policy_ = std::move(policy);
  policy_name_ = policy_->name();

  engine_.reset();
  if (io_channel_) io_channel_->reset();
  for (const auto& machine : machines_) machine->reset();
  for (std::size_t index : cfg().autoscaler.initially_offline) {
    machines_[index]->set_online(false, 0.0);
  }
  for (const auto& cache : model_caches_) cache->reset();

  state_.bind({});
  dense_ids_ = false;
  index_map_.clear();
  deadline_event_.clear();
  retry_event_.clear();
  in_flight_.clear();
  group_of_.clear();
  groups_.clear();
  batch_queue_.reset(0);
  missed_order_.clear();
  counters_ = SimulationCounters{};
  scheduler_invocations_ = 0;
  std::fill(completed_by_type_.begin(), completed_by_type_.end(), 0);
  std::fill(terminal_by_type_.begin(), terminal_by_type_.end(), 0);
  // assign, not fill: a run abandoned by an exception can leave the lent
  // scratch buffer moved-out, and reset() promises just-constructed state.
  rates_scratch_.assign(cfg().eet.task_type_count(), 1.0);
  sampling_rng_ = util::Rng(cfg().sampling_seed);
  std::fill(in_flight_count_.begin(), in_flight_count_.end(), 0);
  std::fill(in_flight_exec_.begin(), in_flight_exec_.end(), 0.0);
  std::fill(booting_.begin(), booting_.end(), false);
  std::fill(pending_fault_event_.begin(), pending_fault_event_.end(), core::kNoEvent);
  if (cfg().faults.enabled) {
    // The injector owns per-machine RNG streams; a fresh replication needs
    // the same schedule a fresh Simulation would draw.
    injector_ = std::make_unique<fault::FaultInjector>(cfg().faults, machines_.size());
  }
  shared_trace_.reset();
  arrival_cursor_ = 0;
  loaded_ = false;
  schedule_pending_ = false;
}

bool Simulation::finished() const noexcept {
  return std::all_of(state_.status.begin(), state_.status.end(),
                     [](workload::TaskStatus status) { return is_terminal(status); });
}

std::vector<workload::TaskId> Simulation::batch_queue_ids() const {
  std::vector<workload::TaskId> ids;
  ids.reserve(batch_queue_.size());
  batch_queue_.for_each([&](std::size_t index) { ids.push_back(state_.id(index)); });
  return ids;
}

std::vector<std::size_t> Simulation::missed_tasks() const {
  std::vector<std::size_t> missed;
  missed.reserve(missed_order_.size());
  for (workload::TaskId id : missed_order_) missed.push_back(task_index(id));
  return missed;
}

double Simulation::type_ontime_rate(hetero::TaskTypeId type) const {
  require_input(type < terminal_by_type_.size(), "type_ontime_rate: type out of range");
  if (terminal_by_type_[type] == 0) return 1.0;
  return static_cast<double>(completed_by_type_[type]) /
         static_cast<double>(terminal_by_type_[type]);
}

double Simulation::total_energy_joules() const { return total_energy_joules(engine_.now()); }

double Simulation::total_energy_joules(core::SimTime horizon) const {
  double joules = 0.0;
  for (const auto& machine : machines_) joules += machine->energy_joules(horizon);
  return joules;
}

double Simulation::total_dynamic_energy_joules(core::SimTime horizon) const {
  double joules = 0.0;
  for (const auto& machine : machines_) joules += machine->dynamic_energy_joules(horizon);
  return joules;
}

void Simulation::on_arrival(std::size_t index) {
  state_.status[index] = workload::TaskStatus::kInBatchQueue;
  batch_queue_.push_back(index);
  const core::SimTime deadline = state_.deadline(index);
  if (deadline < core::kTimeInfinity) {
    const core::SimTime when = std::max(deadline, engine_.now());
    deadline_event_[index] = engine_.schedule_at(
        when, core::EventPriority::kDeadline,
        core::EventLabel("deadline task=", state_.id(index)),
        [this, index] { on_deadline(index); });
  }
  request_schedule();
}

void Simulation::on_deadline(std::size_t index) {
  deadline_event_[index] = core::kNoEvent;
  switch (state_.status[index]) {
    case workload::TaskStatus::kCompleted:
    case workload::TaskStatus::kCancelled:
    case workload::TaskStatus::kDropped:
    case workload::TaskStatus::kFailed:
    case workload::TaskStatus::kReplicaCancelled:
      return;  // already terminal (completion at the same instant ran first)
    case workload::TaskStatus::kRetryWait: {
      // Deadline passed while the task waited out a retry backoff: the
      // machine failure ultimately cost the task, so it counts as failed.
      require(retry_event_[index] != core::kNoEvent,
              "deadline: retry-wait task has no retry event");
      engine_.cancel(retry_event_[index]);
      retry_event_[index] = core::kNoEvent;
      state_.status[index] = workload::TaskStatus::kFailed;
      state_.missed_time[index] = engine_.now();
      mark_terminal(index);
      return;
    }
    case workload::TaskStatus::kInBatchQueue: {
      // Deadline before mapping: cancelled (paper §3).
      require(batch_queue_.erase(index), "deadline: task missing from batch queue");
      state_.status[index] = workload::TaskStatus::kCancelled;
      state_.missed_time[index] = engine_.now();
      mark_terminal(index);
      return;
    }
    case workload::TaskStatus::kTransferring: {
      // Deadline while the payload was still in flight: the task was mapped,
      // so this counts as dropped; release the reserved queue slot.
      InFlight& reservation = in_flight_[index];
      require(reservation.event != core::kNoEvent,
              "deadline: transferring task has no reservation");
      engine_.cancel(reservation.event);
      --in_flight_count_[reservation.machine];
      in_flight_exec_[reservation.machine] -= reservation.exec_seconds;
      reservation = InFlight{};
      state_.status[index] = workload::TaskStatus::kDropped;
      state_.missed_time[index] = engine_.now();
      mark_terminal(index);
      request_schedule();  // the freed slot may unblock a batch-queue task
      return;
    }
    case workload::TaskStatus::kInMachineQueue:
    case workload::TaskStatus::kRunning: {
      // Deadline after mapping: dropped from the machine (paper §3). A
      // checkpointed task is no exception — committed progress never
      // resurrects a task past its deadline.
      require(state_.machine[index] != workload::kNoMachine,
              "deadline: mapped task has no machine");
      const bool removed = machines_[state_.machine[index]]->remove(index);
      require(removed, "deadline: task not found on its assigned machine");
      state_.status[index] = workload::TaskStatus::kDropped;
      state_.missed_time[index] = engine_.now();
      mark_terminal(index);
      return;
    }
    case workload::TaskStatus::kPending:
      throw InvariantError("deadline fired for a task that never arrived");
  }
}

void Simulation::request_schedule() {
  if (schedule_pending_ || batch_queue_.empty()) return;
  schedule_pending_ = true;
  engine_.schedule_at(engine_.now(), core::EventPriority::kSchedule,
                      core::EventLabel::join("invoke scheduler (", policy_name_.c_str(), ")"),
                      [this] { run_scheduler(); });
}

void Simulation::run_scheduler() {
  schedule_pending_ = false;
  if (batch_queue_.empty()) return;
  ++scheduler_invocations_;

  // The three context buffers are scratch members: run_scheduler fires once
  // per batch round, and reusing their capacity avoids three heap
  // allocations per round on the hot path.
  std::vector<MachineView>& views = views_scratch_;
  views.clear();
  views.reserve(machines_.size());
  const bool unbounded = policy_->mode() == PolicyMode::kImmediate ||
                         cfg().machine_queue_capacity == machines::kUnboundedQueue;
  for (std::size_t m = 0; m < machines_.size(); ++m) {
    const machines::Machine& machine = *machines_[m];
    MachineView view;
    view.id = machine.id();
    view.type = machine.type();
    // Projected ready time includes work whose payload is still in flight.
    view.ready_time = machine.ready_time() + in_flight_exec_[m];
    const std::size_t used = machine.queue_length() + in_flight_count_[m];
    if (!machine.online() || (!unbounded && used >= cfg().machine_queue_capacity)) {
      view.free_slots = 0;
    } else {
      view.free_slots =
          unbounded ? kUnlimitedSlots : cfg().machine_queue_capacity - used;
    }
    view.idle_watts = machine.power().idle_watts;
    view.busy_watts = machine.power().busy_watts;
    view.availability = machine.availability(engine_.now());
    views.push_back(view);
  }

  std::vector<const workload::TaskDef*>& queue_view = queue_view_scratch_;
  queue_view.clear();
  queue_view.reserve(batch_queue_.size());
  batch_queue_.for_each([&](std::size_t index) { queue_view.push_back(&state_.def(index)); });

  // Maintained incrementally by record_outcome(); identical to recomputing
  // type_ontime_rate(t) for every type here, without the O(types) sweep.
  std::vector<double>& rates = rates_scratch_;

  SchedulingContext context(engine_.now(), cfg().eet, std::move(views),
                            std::move(queue_view), std::move(rates),
                            cfg().pet ? &*cfg().pet : nullptr);
  // Lent like the context buffers above: schedule_into clears and refills
  // it, so a steady-state scheduler round makes zero allocator calls.
  std::vector<Assignment>& assignments = assignments_scratch_;
  try {
    policy_->schedule_into(context, assignments);
  } catch (...) {
    // The scratch buffers were lent to the context by move; a throwing
    // policy must not leave them moved-out-empty, or the next
    // record_outcome() writes rates_scratch_[type] past a zero-size
    // vector (reset() only re-fills, it does not re-size).
    context.release_buffers(views_scratch_, queue_view_scratch_, rates_scratch_);
    throw;
  }
  context.release_buffers(views_scratch_, queue_view_scratch_, rates_scratch_);
  for (const Assignment& assignment : assignments) apply_assignment(assignment);
}

void Simulation::apply_assignment(const Assignment& assignment) {
  const std::size_t index = task_index(assignment.task);
  require_input(state_.status[index] == workload::TaskStatus::kInBatchQueue, [&] {
    return "policy '" + policy_name_ + "' assigned task " +
           std::to_string(assignment.task) + " which is not in the batch queue";
  });
  require_input(assignment.machine < machines_.size(), [&] {
    return "policy '" + policy_name_ + "' assigned to unknown machine";
  });
  machines::Machine& machine = *machines_[assignment.machine];
  require_input(machine.has_queue_space(), [&] {
    return "policy '" + policy_name_ + "' overflowed queue of machine '" +
           machine.name() + "'";
  });
  const bool bounded = policy_->mode() != PolicyMode::kImmediate &&
                       cfg().machine_queue_capacity != machines::kUnboundedQueue;
  require_input(!bounded || machine.queue_length() + in_flight_count_[assignment.machine] <
                                cfg().machine_queue_capacity,
                [&] {
                  return "policy '" + policy_name_ +
                         "' overflowed reserved (in-flight) capacity of machine '" +
                         machine.name() + "'";
                });

  // Replicas must run on distinct machines: skip an assignment that would
  // co-locate two live copies of the same task. The task simply stays in the
  // batch queue and is re-offered on the next scheduling round (triggered by
  // the next slot-free/repair/completion event), so no deadlock arises.
  const std::uint32_t group_index = group_of_.empty() ? kNoGroup : group_of_[index];
  if (group_index != kNoGroup) {
    for (std::size_t member : groups_[group_index].members) {
      if (member == index || state_.finished(member)) continue;
      const workload::TaskStatus sibling_status = state_.status[member];
      const bool mapped = sibling_status == workload::TaskStatus::kTransferring ||
                          sibling_status == workload::TaskStatus::kInMachineQueue ||
                          sibling_status == workload::TaskStatus::kRunning;
      if (mapped && state_.machine[member] != workload::kNoMachine &&
          state_.machine[member] == assignment.machine) {
        return;
      }
    }
  }

  require(batch_queue_.erase(index), "assignment: task missing from batch queue");

  // Actual execution time: sampled under a PET, the EET expectation otherwise.
  const hetero::TaskTypeId type = state_.type(index);
  const double exec = cfg().pet
                          ? cfg().pet->sample(type, machine.type(), sampling_rng_)
                          : cfg().eet.eet_unchecked(type, machine.type());

  const core::SimTime transfer =
      cfg().comm ? cfg().comm->transfer_time(type, machine.type()) : 0.0;
  if (transfer > 0.0) {
    state_.status[index] = workload::TaskStatus::kTransferring;
    state_.machine[index] = static_cast<std::uint32_t>(machine.id());
    state_.assignment_time[index] = engine_.now();
    const core::EventId event = engine_.schedule_in(
        transfer, core::EventPriority::kControl,
        core::EventLabel("transfer done task=", state_.id(index), " machine=",
                         machine.name().c_str()),
        [this, index] { on_transfer_complete(index); });
    in_flight_[index] = InFlight{machine.id(), exec, event};
    ++in_flight_count_[machine.id()];
    in_flight_exec_[machine.id()] += exec;
  } else {
    machine.enqueue(index, exec);
  }
}

void Simulation::on_transfer_complete(std::size_t index) {
  // Deadline drops and machine failures cancel the transfer event, so a
  // firing event always finds its reservation intact.
  require(state_.status[index] == workload::TaskStatus::kTransferring,
          "transfer completed for a task no longer transferring");
  require(in_flight_[index].event != core::kNoEvent, "transfer: missing reservation");
  const InFlight in_flight = in_flight_[index];
  in_flight_[index] = InFlight{};
  --in_flight_count_[in_flight.machine];
  in_flight_exec_[in_flight.machine] -= in_flight.exec_seconds;
  machines_[in_flight.machine]->enqueue(index, in_flight.exec_seconds);
}

void Simulation::schedule_next_failure(std::size_t m, double from) {
  const auto span = injector_->next(m, from);
  if (!span) {
    pending_fault_event_[m] = core::kNoEvent;  // trace exhausted for this machine
    return;
  }
  const double repair_time = span->repair_time;
  pending_fault_event_[m] = engine_.schedule_at(
      span->fail_time, core::EventPriority::kControl,
      core::EventLabel::join("machine failure ", machines_[m]->name().c_str()),
      [this, m, repair_time] { on_machine_failure(m, repair_time); });
}

void Simulation::on_machine_failure(std::size_t m, double repair_time) {
  pending_fault_event_[m] = core::kNoEvent;
  machines::Machine& machine = *machines_[m];
  if (!machine.online()) {
    // A parked (powered-off) machine cannot crash; resume the failure
    // process once this span would have ended.
    schedule_next_failure(m, repair_time);
    return;
  }

  // Abort the committed work: running task first, then local queue, then
  // payloads still in flight toward the crashed machine (sorted by id so the
  // retry order is stable regardless of how reservations are stored).
  std::vector<std::size_t> evicted = machine.fail(engine_.now());
  std::vector<std::size_t> transferring;
  for (std::size_t i = 0; i < in_flight_.size(); ++i) {
    if (in_flight_[i].event != core::kNoEvent && in_flight_[i].machine == m) {
      transferring.push_back(i);
    }
  }
  std::sort(transferring.begin(), transferring.end(), [this](std::size_t a, std::size_t b) {
    return state_.id(a) < state_.id(b);
  });
  for (std::size_t i : transferring) {
    engine_.cancel(in_flight_[i].event);
    --in_flight_count_[m];
    in_flight_exec_[m] -= in_flight_[i].exec_seconds;
    in_flight_[i] = InFlight{};
    evicted.push_back(i);
  }
  // Schedule the repair before aborting tasks: if an abort ends the last
  // live task, mark_terminal drains this event so run() ends promptly.
  pending_fault_event_[m] = engine_.schedule_at(
      repair_time, core::EventPriority::kControl,
      core::EventLabel::join("machine repair ", machine.name().c_str()),
      [this, m] { on_machine_repair(m); });
  for (std::size_t task : evicted) handle_fault_abort(task);
}

void Simulation::on_machine_repair(std::size_t m) {
  pending_fault_event_[m] = core::kNoEvent;
  machines_[m]->repair(engine_.now());
  if (!all_terminal()) {
    schedule_next_failure(m, engine_.now());
    request_schedule();  // the repaired machine may unblock the batch queue
  }
}

void Simulation::handle_fault_abort(std::size_t index) {
  // The mapping is void; a retry starts from a clean record.
  state_.machine[index] = workload::kNoMachine;
  state_.assignment_time[index] = core::kTimeUnset;
  state_.start_time[index] = core::kTimeUnset;

  const fault::RetryPolicy& retry = cfg().faults.retry;
  if (state_.retries[index] >= retry.max_retries) {
    state_.status[index] = workload::TaskStatus::kFailed;
    state_.missed_time[index] = engine_.now();
    if (deadline_event_[index] != core::kNoEvent) {
      engine_.cancel(deadline_event_[index]);
      deadline_event_[index] = core::kNoEvent;
    }
    mark_terminal(index);
    return;
  }
  ++state_.retries[index];
  ++counters_.requeued;
  state_.status[index] = workload::TaskStatus::kRetryWait;
  retry_event_[index] = engine_.schedule_in(
      retry.delay(state_.retries[index]), core::EventPriority::kControl,
      core::EventLabel("retry task=", state_.id(index)),
      [this, index] { on_retry_ready(index); });
}

void Simulation::on_retry_ready(std::size_t index) {
  retry_event_[index] = core::kNoEvent;
  require(state_.status[index] == workload::TaskStatus::kRetryWait,
          "retry fired for a task not waiting on retry");
  state_.status[index] = workload::TaskStatus::kInBatchQueue;
  batch_queue_.push_back(index);
  request_schedule();
}

bool Simulation::all_terminal() const noexcept {
  return counters_.completed + counters_.cancelled + counters_.dropped +
             counters_.failed ==
         counters_.total;
}

std::size_t Simulation::online_machine_count() const noexcept {
  std::size_t count = 0;
  for (const auto& machine : machines_) {
    if (machine->online()) ++count;
  }
  return count;
}

std::size_t Simulation::in_flight_count(hetero::MachineId machine) const {
  require_input(machine < in_flight_count_.size(), "in_flight_count: machine out of range");
  return in_flight_count_[machine];
}

const mem::ModelCache* Simulation::model_cache(hetero::MachineId machine) const {
  require_input(machine < machines_.size(), "model_cache: machine out of range");
  return machine < model_caches_.size() ? model_caches_[machine].get() : nullptr;
}

void Simulation::autoscaler_tick() {
  const AutoscalerConfig& scaler = cfg().autoscaler;
  if (batch_queue_.size() >= scaler.queue_high) {
    scale_out();
  } else if (batch_queue_.size() <= scaler.queue_low) {
    scale_in();
  }
  // all_terminal() is the counter-based equivalent of finished(): both hold
  // exactly when every submitted task reached a terminal outcome, and the
  // counter check is O(1) instead of scanning every task per tick.
  if (!all_terminal()) {
    engine_.schedule_in(scaler.interval, core::EventPriority::kControl,
                        "autoscaler tick", [this] { autoscaler_tick(); });
  }
}

void Simulation::scale_out() {
  for (std::size_t m = 0; m < machines_.size(); ++m) {
    // A failed machine cannot be booted; only repair brings it back.
    if (machines_[m]->online() || machines_[m]->failed() || booting_[m]) continue;
    booting_[m] = true;
    engine_.schedule_in(cfg().autoscaler.boot_delay, core::EventPriority::kControl,
                        core::EventLabel::join("machine online ",
                                               machines_[m]->name().c_str()),
                        [this, m] {
                          booting_[m] = false;
                          machines_[m]->set_online(true, engine_.now());
                          request_schedule();
                        });
    return;  // one machine per control decision
  }
}

void Simulation::scale_in() {
  std::size_t online = online_machine_count();
  for (std::size_t b = 0; b < booting_.size(); ++b) {
    if (booting_[b]) ++online;  // about to join; counts against min_online
  }
  if (online <= cfg().autoscaler.min_online) return;
  // Candidates: fully idle machines (nothing running, queued or in flight).
  // Keep one idle machine as headroom — powering off the only idle machine
  // while its peers are saturated causes boot-lag thrash on the next burst.
  std::vector<std::size_t> idle;
  for (std::size_t m = 0; m < machines_.size(); ++m) {
    const machines::Machine& machine = *machines_[m];
    if (machine.online() && !machine.busy() && machine.queue_length() == 0 &&
        in_flight_count_[m] == 0) {
      idle.push_back(m);
    }
  }
  if (idle.size() < 2) return;
  machines_[idle.back()]->set_online(false, engine_.now());
}

std::size_t Simulation::task_index(workload::TaskId id) const {
  if (dense_ids_) {
    require(id < state_.size(), [id] { return "unknown task id " + std::to_string(id); });
    return static_cast<std::size_t>(id);
  }
  const auto it = index_map_.find(id);
  require(it != index_map_.end(),
          [id] { return "unknown task id " + std::to_string(id); });
  return it->second;
}

void Simulation::record_outcome(std::size_t index, workload::TaskId display_id) {
  const hetero::TaskTypeId type = state_.type(index);
  ++terminal_by_type_[type];
  switch (state_.status[index]) {
    case workload::TaskStatus::kCompleted:
      ++counters_.completed;
      ++completed_by_type_[type];
      break;
    case workload::TaskStatus::kCancelled:
      ++counters_.cancelled;
      missed_order_.push_back(display_id);
      break;
    case workload::TaskStatus::kDropped:
      ++counters_.dropped;
      missed_order_.push_back(display_id);
      break;
    case workload::TaskStatus::kFailed:
      ++counters_.failed;
      missed_order_.push_back(display_id);
      break;
    default:
      throw InvariantError("record_outcome: task " + std::to_string(state_.id(index)) +
                           " has no countable terminal status");
  }
  // Keep the scheduler's ontime-rate view current incrementally: a type's
  // rate only moves at terminal transitions, so run_scheduler() can hand the
  // cached vector to the SchedulingContext instead of recomputing all
  // task_type_count() rates on every invocation.
  rates_scratch_[type] = type_ontime_rate(type);
}

void Simulation::resolve_replica_group(ReplicaGroup& group, std::size_t index) {
  if (group.resolved) return;
  const std::size_t primary = group.members.front();
  if (state_.status[index] == workload::TaskStatus::kCompleted) {
    // First completion wins the group; the siblings' work is now waste.
    group.resolved = true;
    record_outcome(index, state_.id(primary));
    cancel_replica_siblings(group, state_.id(index));
    return;
  }
  // A losing member alone decides nothing: the group's outcome stays open
  // until every copy is terminal, then the primary's fate is the group's.
  for (std::size_t member : group.members) {
    if (!state_.finished(member)) return;
  }
  group.resolved = true;
  record_outcome(primary, state_.id(primary));
}

void Simulation::cancel_replica_siblings(ReplicaGroup& group, workload::TaskId winner_id) {
  for (std::size_t member : group.members) {
    if (state_.id(member) == winner_id || state_.finished(member)) continue;
    if (deadline_event_[member] != core::kNoEvent) {
      engine_.cancel(deadline_event_[member]);
      deadline_event_[member] = core::kNoEvent;
    }
    switch (state_.status[member]) {
      case workload::TaskStatus::kInBatchQueue: {
        require(batch_queue_.erase(member), "replica cancel: task missing from batch queue");
        break;
      }
      case workload::TaskStatus::kTransferring: {
        InFlight& reservation = in_flight_[member];
        require(reservation.event != core::kNoEvent,
                "replica cancel: missing transfer reservation");
        engine_.cancel(reservation.event);
        --in_flight_count_[reservation.machine];
        in_flight_exec_[reservation.machine] -= reservation.exec_seconds;
        reservation = InFlight{};
        break;
      }
      case workload::TaskStatus::kInMachineQueue:
      case workload::TaskStatus::kRunning: {
        require(state_.machine[member] != workload::kNoMachine,
                "replica cancel: mapped sibling has no machine");
        if (state_.status[member] == workload::TaskStatus::kRunning &&
            core::time_set(state_.start_time[member])) {
          counters_.cancelled_replica_seconds +=
              engine_.now() - state_.start_time[member];
        }
        const bool removed = machines_[state_.machine[member]]->remove(member);
        require(removed, "replica cancel: sibling not found on its machine");
        break;
      }
      case workload::TaskStatus::kRetryWait: {
        require(retry_event_[member] != core::kNoEvent,
                "replica cancel: missing retry event");
        engine_.cancel(retry_event_[member]);
        retry_event_[member] = core::kNoEvent;
        break;
      }
      default:
        // kPending is impossible: every replica arrives at the same instant
        // as its primary, strictly before any copy can complete.
        throw InvariantError("replica cancel: unexpected sibling status");
    }
    state_.status[member] = workload::TaskStatus::kReplicaCancelled;
    state_.missed_time[member] = engine_.now();
    ++counters_.replicas_cancelled;
  }
}

void Simulation::mark_terminal(std::size_t index) {
  const std::uint32_t group_index = group_of_.empty() ? kNoGroup : group_of_[index];
  if (group_index == kNoGroup) {
    record_outcome(index, state_.id(index));
  } else {
    resolve_replica_group(groups_[group_index], index);
  }
  if (injector_ && all_terminal()) {
    // Nothing left to disturb: drain pending failure/repair events so the
    // calendar empties and run() terminates at the last task's finish.
    for (core::EventId& event : pending_fault_event_) {
      if (event != core::kNoEvent) {
        engine_.cancel(event);
        event = core::kNoEvent;
      }
    }
  }
}

void Simulation::replicate_workload(std::size_t replicas) {
  const std::span<const workload::TaskDef> defs = state_.defs;
  workload::TaskId next_id = 0;
  for (const workload::TaskDef& def : defs) next_id = std::max(next_id, def.id + 1);
  std::vector<workload::TaskDef> expanded;
  std::vector<workload::TaskId> replica_of;  // parallel to expanded
  expanded.reserve(defs.size() * replicas);
  replica_of.reserve(defs.size() * replicas);
  groups_.reserve(defs.size());
  for (const workload::TaskDef& primary : defs) {
    ReplicaGroup group;
    group.members.push_back(expanded.size());
    expanded.push_back(primary);
    replica_of.push_back(workload::kNoTaskId);
    for (std::size_t k = 1; k < replicas; ++k) {
      workload::TaskDef clone = primary;
      clone.id = next_id++;
      group.members.push_back(expanded.size());
      expanded.push_back(clone);
      replica_of.push_back(primary.id);
    }
    groups_.push_back(std::move(group));
  }
  state_.adopt(std::move(expanded));
  state_.replica_of = std::move(replica_of);
}

double Simulation::lost_work_seconds() const {
  double total = 0.0;
  for (double lost : state_.lost_seconds) total += lost;
  return total;
}

double Simulation::checkpoint_overhead_seconds() const {
  double total = 0.0;
  for (double overhead : state_.checkpoint_overhead_seconds) total += overhead;
  return total;
}

std::size_t Simulation::checkpoints_taken() const {
  std::size_t total = 0;
  for (const auto& times : state_.checkpoint_times) total += times.size();
  return total;
}

void Simulation::on_task_completed(std::size_t index, hetero::MachineId) {
  // The deadline check is no longer needed; keep the calendar lean.
  if (deadline_event_[index] != core::kNoEvent) {
    engine_.cancel(deadline_event_[index]);
    deadline_event_[index] = core::kNoEvent;
  }
  mark_terminal(index);
}

void Simulation::on_slot_freed(hetero::MachineId) { request_schedule(); }

}  // namespace e2c::sched
