#include "sched/simulation.hpp"

#include <algorithm>

#include "hetero/machine_catalog.hpp"
#include "util/error.hpp"

namespace e2c::sched {

SystemConfig make_default_system(hetero::EetMatrix eet, std::size_t machine_queue_capacity) {
  SystemConfig config;
  config.machine_queue_capacity = machine_queue_capacity;
  const auto names = eet.machine_type_names();
  config.eet = std::move(eet);
  config.machines.reserve(names.size());
  const auto specs = hetero::resolve_machine_types(names);
  for (std::size_t i = 0; i < names.size(); ++i) {
    config.machines.push_back(MachineInstance{names[i], i, specs[i]});
  }
  return config;
}

Simulation::Simulation(SystemConfig config, std::unique_ptr<Policy> policy)
    : config_(std::move(config)),
      policy_(std::move(policy)),
      sampling_rng_(config_.sampling_seed) {
  require_input(policy_ != nullptr, "Simulation: policy must not be null");
  policy_name_ = policy_->name();
  require_input(!config_.machines.empty(), "Simulation: at least one machine required");
  if (config_.pet) {
    require_input(config_.pet->task_type_count() == config_.eet.task_type_count() &&
                      config_.pet->machine_type_count() == config_.eet.machine_type_count(),
                  "Simulation: PET shape must match the EET matrix");
  }
  if (config_.comm) {
    require_input(config_.comm->task_type_count() >= config_.eet.task_type_count() &&
                      config_.comm->machine_type_count() >= config_.eet.machine_type_count(),
                  "Simulation: comm model must cover the EET's task/machine types");
  }

  // Immediate policies always run with unbounded machine queues (Fig. 3:
  // "machine queue size is limited to infinite for immediate policies").
  const std::size_t capacity = policy_->mode() == PolicyMode::kImmediate
                                   ? machines::kUnboundedQueue
                                   : config_.machine_queue_capacity;

  machines_.reserve(config_.machines.size());
  for (std::size_t i = 0; i < config_.machines.size(); ++i) {
    const MachineInstance& instance = config_.machines[i];
    require_input(instance.type < config_.eet.machine_type_count(),
                  "Simulation: machine '" + instance.name +
                      "' references a type outside the EET matrix");
    machines_.push_back(std::make_unique<machines::Machine>(
        engine_, i, instance.name, instance.type, instance.power, capacity));
    machines_.back()->set_listener(this);
  }

  if (config_.memory) {
    const mem::MemoryModel& memory = *config_.memory;
    require_input(memory.model_mb.size() == config_.eet.task_type_count() &&
                      memory.load_seconds.size() == config_.eet.task_type_count(),
                  "Simulation: memory model needs one entry per task type");
    require_input(memory.machine_memory_mb.size() == config_.eet.machine_type_count(),
                  "Simulation: memory model needs one capacity per machine type");
    model_caches_.reserve(machines_.size());
    for (const auto& machine : machines_) {
      model_caches_.push_back(std::make_unique<mem::ModelCache>(
          memory.machine_memory_mb[machine->type()], memory.model_mb,
          memory.load_seconds, memory.eviction));
      machine->set_model_cache(model_caches_.back().get());
    }
  }

  completed_by_type_.assign(config_.eet.task_type_count(), 0);
  terminal_by_type_.assign(config_.eet.task_type_count(), 0);
  in_flight_count_.assign(machines_.size(), 0);
  in_flight_exec_.assign(machines_.size(), 0.0);
  booting_.assign(machines_.size(), false);
  pending_fault_event_.assign(machines_.size(), core::kNoEvent);
  if (config_.faults.enabled) {
    injector_ = std::make_unique<fault::FaultInjector>(config_.faults, machines_.size());
    if (config_.faults.recovery.strategy == fault::RecoveryStrategy::kCheckpoint) {
      // The spec lives in the simulation (non-movable, stable address); all
      // machines of one run share the same τ/C/R.
      checkpoint_spec_ = machines::CheckpointSpec{
          config_.faults.effective_checkpoint_interval(),
          config_.faults.recovery.checkpoint_cost,
          config_.faults.recovery.restart_cost};
      for (const auto& machine : machines_) {
        machine->set_checkpoint_spec(&*checkpoint_spec_);
      }
    }
  }

  const AutoscalerConfig& scaler = config_.autoscaler;
  if (scaler.enabled) {
    require_input(scaler.interval > 0.0, "autoscaler: interval must be > 0");
    require_input(scaler.boot_delay >= 0.0, "autoscaler: boot_delay must be >= 0");
    require_input(scaler.min_online >= 1, "autoscaler: min_online must be >= 1");
    require_input(scaler.min_online <= machines_.size(),
                  "autoscaler: min_online exceeds the machine count");
  }
  for (std::size_t index : scaler.initially_offline) {
    require_input(index < machines_.size(), "autoscaler: initially_offline out of range");
    machines_[index]->set_online(false, 0.0);
  }
  if (scaler.enabled) {
    require_input(online_machine_count() >= scaler.min_online,
                  "autoscaler: fewer machines online at start than min_online");
  } else {
    require_input(scaler.initially_offline.empty() ||
                      online_machine_count() >= 1,
                  "Simulation: at least one machine must start online");
  }
}

Simulation::~Simulation() = default;

void Simulation::load(const workload::Workload& workload) {
  require_input(!loaded_, "Simulation: load() may only be called once");
  workload.validate_against(config_.eet);
  loaded_ = true;

  tasks_ = workload.tasks();  // copy; the simulation owns the mutable records
  // One outcome per *submitted* task: replica clones never add to the total.
  counters_.total = tasks_.size();
  const fault::RecoveryConfig& recovery = config_.faults.recovery;
  if (config_.faults.enabled &&
      recovery.strategy == fault::RecoveryStrategy::kReplicate &&
      recovery.replicas > 1) {
    replicate_workload(recovery.replicas);
  }
  index_of_.reserve(tasks_.size());
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    require_input(index_of_.emplace(tasks_[i].id, i).second,
                  "Simulation: duplicate task id " + std::to_string(tasks_[i].id));
  }
  batch_queue_.reset(tasks_.size());
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    const workload::Task& task = tasks_[i];
    engine_.schedule_at(task.arrival, core::EventPriority::kArrival,
                        core::EventLabel("arrival task=", task.id),
                        [this, i] { on_arrival(i); });
  }
  if (config_.autoscaler.enabled && !tasks_.empty()) {
    engine_.schedule_at(config_.autoscaler.interval, core::EventPriority::kControl,
                        "autoscaler tick", [this] { autoscaler_tick(); });
  }
  if (injector_ && !tasks_.empty()) {
    for (std::size_t m = 0; m < machines_.size(); ++m) schedule_next_failure(m, 0.0);
  }
}

void Simulation::run() {
  require_input(loaded_, "Simulation: call load() before run()");
  engine_.run();
}

bool Simulation::step() {
  require_input(loaded_, "Simulation: call load() before step()");
  return engine_.step();
}

bool Simulation::finished() const noexcept {
  return std::all_of(tasks_.begin(), tasks_.end(),
                     [](const workload::Task& task) { return task.finished(); });
}

std::vector<workload::TaskId> Simulation::batch_queue_ids() const {
  std::vector<workload::TaskId> ids;
  ids.reserve(batch_queue_.size());
  batch_queue_.for_each([&](std::size_t index) { ids.push_back(tasks_[index].id); });
  return ids;
}

std::vector<const workload::Task*> Simulation::missed_tasks() const {
  std::vector<const workload::Task*> missed;
  missed.reserve(missed_order_.size());
  for (workload::TaskId id : missed_order_) {
    missed.push_back(&tasks_[task_index(id)]);
  }
  return missed;
}

double Simulation::type_ontime_rate(hetero::TaskTypeId type) const {
  require_input(type < terminal_by_type_.size(), "type_ontime_rate: type out of range");
  if (terminal_by_type_[type] == 0) return 1.0;
  return static_cast<double>(completed_by_type_[type]) /
         static_cast<double>(terminal_by_type_[type]);
}

double Simulation::total_energy_joules() const { return total_energy_joules(engine_.now()); }

double Simulation::total_energy_joules(core::SimTime horizon) const {
  double joules = 0.0;
  for (const auto& machine : machines_) joules += machine->energy_joules(horizon);
  return joules;
}

double Simulation::total_dynamic_energy_joules(core::SimTime horizon) const {
  double joules = 0.0;
  for (const auto& machine : machines_) joules += machine->dynamic_energy_joules(horizon);
  return joules;
}

void Simulation::on_arrival(std::size_t index) {
  workload::Task& task = tasks_[index];
  task.status = workload::TaskStatus::kInBatchQueue;
  batch_queue_.push_back(index);
  if (task.deadline < core::kTimeInfinity) {
    const core::SimTime when = std::max(task.deadline, engine_.now());
    deadline_event_[task.id] = engine_.schedule_at(
        when, core::EventPriority::kDeadline, core::EventLabel("deadline task=", task.id),
        [this, index] { on_deadline(index); });
  }
  request_schedule();
}

void Simulation::on_deadline(std::size_t index) {
  workload::Task& task = tasks_[index];
  deadline_event_.erase(task.id);
  switch (task.status) {
    case workload::TaskStatus::kCompleted:
    case workload::TaskStatus::kCancelled:
    case workload::TaskStatus::kDropped:
    case workload::TaskStatus::kFailed:
    case workload::TaskStatus::kReplicaCancelled:
      return;  // already terminal (completion at the same instant ran first)
    case workload::TaskStatus::kRetryWait: {
      // Deadline passed while the task waited out a retry backoff: the
      // machine failure ultimately cost the task, so it counts as failed.
      const auto rit = retry_event_.find(task.id);
      require(rit != retry_event_.end(), "deadline: retry-wait task has no retry event");
      engine_.cancel(rit->second);
      retry_event_.erase(rit);
      task.status = workload::TaskStatus::kFailed;
      task.missed_time = engine_.now();
      mark_terminal(task);
      return;
    }
    case workload::TaskStatus::kInBatchQueue: {
      // Deadline before mapping: cancelled (paper §3).
      require(batch_queue_.erase(index), "deadline: task missing from batch queue");
      task.status = workload::TaskStatus::kCancelled;
      task.missed_time = engine_.now();
      mark_terminal(task);
      return;
    }
    case workload::TaskStatus::kTransferring: {
      // Deadline while the payload was still in flight: the task was mapped,
      // so this counts as dropped; release the reserved queue slot.
      const auto it = in_flight_.find(task.id);
      require(it != in_flight_.end(), "deadline: transferring task has no reservation");
      engine_.cancel(it->second.event);
      --in_flight_count_[it->second.machine];
      in_flight_exec_[it->second.machine] -= it->second.exec_seconds;
      in_flight_.erase(it);
      task.status = workload::TaskStatus::kDropped;
      task.missed_time = engine_.now();
      mark_terminal(task);
      request_schedule();  // the freed slot may unblock a batch-queue task
      return;
    }
    case workload::TaskStatus::kInMachineQueue:
    case workload::TaskStatus::kRunning: {
      // Deadline after mapping: dropped from the machine (paper §3). A
      // checkpointed task is no exception — committed progress never
      // resurrects a task past its deadline.
      require(task.assigned_machine.has_value(), "deadline: mapped task has no machine");
      const bool removed = machines_[*task.assigned_machine]->remove(task.id);
      require(removed, "deadline: task not found on its assigned machine");
      task.status = workload::TaskStatus::kDropped;
      task.missed_time = engine_.now();
      mark_terminal(task);
      return;
    }
    case workload::TaskStatus::kPending:
      throw InvariantError("deadline fired for a task that never arrived");
  }
}

void Simulation::request_schedule() {
  if (schedule_pending_ || batch_queue_.empty()) return;
  schedule_pending_ = true;
  engine_.schedule_at(engine_.now(), core::EventPriority::kSchedule,
                      core::EventLabel::join("invoke scheduler (", policy_name_.c_str(), ")"),
                      [this] { run_scheduler(); });
}

void Simulation::run_scheduler() {
  schedule_pending_ = false;
  if (batch_queue_.empty()) return;
  ++scheduler_invocations_;

  // The three context buffers are scratch members: run_scheduler fires once
  // per batch round, and reusing their capacity avoids three heap
  // allocations per round on the hot path.
  std::vector<MachineView>& views = views_scratch_;
  views.clear();
  views.reserve(machines_.size());
  const bool unbounded = policy_->mode() == PolicyMode::kImmediate ||
                         config_.machine_queue_capacity == machines::kUnboundedQueue;
  for (std::size_t m = 0; m < machines_.size(); ++m) {
    const machines::Machine& machine = *machines_[m];
    MachineView view;
    view.id = machine.id();
    view.type = machine.type();
    // Projected ready time includes work whose payload is still in flight.
    view.ready_time = machine.ready_time() + in_flight_exec_[m];
    const std::size_t used = machine.queue_length() + in_flight_count_[m];
    if (!machine.online() || (!unbounded && used >= config_.machine_queue_capacity)) {
      view.free_slots = 0;
    } else {
      view.free_slots =
          unbounded ? kUnlimitedSlots : config_.machine_queue_capacity - used;
    }
    view.idle_watts = machine.power().idle_watts;
    view.busy_watts = machine.power().busy_watts;
    view.availability = machine.availability(engine_.now());
    views.push_back(view);
  }

  std::vector<const workload::Task*>& queue_view = queue_view_scratch_;
  queue_view.clear();
  queue_view.reserve(batch_queue_.size());
  batch_queue_.for_each([&](std::size_t index) { queue_view.push_back(&tasks_[index]); });

  std::vector<double>& rates = rates_scratch_;
  rates.assign(config_.eet.task_type_count(), 1.0);
  for (std::size_t t = 0; t < rates.size(); ++t) rates[t] = type_ontime_rate(t);

  SchedulingContext context(engine_.now(), config_.eet, std::move(views),
                            std::move(queue_view), std::move(rates),
                            config_.pet ? &*config_.pet : nullptr);
  const std::vector<Assignment> assignments = policy_->schedule(context);
  context.release_buffers(views_scratch_, queue_view_scratch_, rates_scratch_);
  for (const Assignment& assignment : assignments) apply_assignment(assignment);
}

void Simulation::apply_assignment(const Assignment& assignment) {
  const std::size_t index = task_index(assignment.task);
  workload::Task& task = tasks_[index];
  require_input(task.status == workload::TaskStatus::kInBatchQueue, [&] {
    return "policy '" + policy_name_ + "' assigned task " +
           std::to_string(assignment.task) + " which is not in the batch queue";
  });
  require_input(assignment.machine < machines_.size(), [&] {
    return "policy '" + policy_name_ + "' assigned to unknown machine";
  });
  machines::Machine& machine = *machines_[assignment.machine];
  require_input(machine.has_queue_space(), [&] {
    return "policy '" + policy_name_ + "' overflowed queue of machine '" +
           machine.name() + "'";
  });
  const bool bounded = policy_->mode() != PolicyMode::kImmediate &&
                       config_.machine_queue_capacity != machines::kUnboundedQueue;
  require_input(!bounded || machine.queue_length() + in_flight_count_[assignment.machine] <
                                config_.machine_queue_capacity,
                [&] {
                  return "policy '" + policy_name_ +
                         "' overflowed reserved (in-flight) capacity of machine '" +
                         machine.name() + "'";
                });

  // Replicas must run on distinct machines: skip an assignment that would
  // co-locate two live copies of the same task. The task simply stays in the
  // batch queue and is re-offered on the next scheduling round (triggered by
  // the next slot-free/repair/completion event), so no deadlock arises.
  const auto git = group_of_.find(task.id);
  if (git != group_of_.end()) {
    for (std::size_t member : groups_[git->second].members) {
      const workload::Task& sibling = tasks_[member];
      if (sibling.id == task.id || sibling.finished()) continue;
      const bool mapped = sibling.status == workload::TaskStatus::kTransferring ||
                          sibling.status == workload::TaskStatus::kInMachineQueue ||
                          sibling.status == workload::TaskStatus::kRunning;
      if (mapped && sibling.assigned_machine &&
          *sibling.assigned_machine == assignment.machine) {
        return;
      }
    }
  }

  require(batch_queue_.erase(index), "assignment: task missing from batch queue");

  // Actual execution time: sampled under a PET, the EET expectation otherwise.
  const double exec = config_.pet
                          ? config_.pet->sample(task.type, machine.type(), sampling_rng_)
                          : config_.eet.eet_unchecked(task.type, machine.type());

  const core::SimTime transfer =
      config_.comm ? config_.comm->transfer_time(task.type, machine.type()) : 0.0;
  if (transfer > 0.0) {
    task.status = workload::TaskStatus::kTransferring;
    task.assigned_machine = machine.id();
    task.assignment_time = engine_.now();
    const core::EventId event = engine_.schedule_in(
        transfer, core::EventPriority::kControl,
        core::EventLabel("transfer done task=", task.id, " machine=",
                         machine.name().c_str()),
        [this, index] { on_transfer_complete(index); });
    in_flight_.emplace(task.id, InFlight{machine.id(), exec, event});
    ++in_flight_count_[machine.id()];
    in_flight_exec_[machine.id()] += exec;
  } else {
    machine.enqueue(task, exec);
  }
}

void Simulation::on_transfer_complete(std::size_t index) {
  workload::Task& task = tasks_[index];
  // Deadline drops and machine failures cancel the transfer event, so a
  // firing event always finds its reservation intact.
  require(task.status == workload::TaskStatus::kTransferring,
          "transfer completed for a task no longer transferring");
  const auto it = in_flight_.find(task.id);
  require(it != in_flight_.end(), "transfer: missing reservation");
  const InFlight in_flight = it->second;
  in_flight_.erase(it);
  --in_flight_count_[in_flight.machine];
  in_flight_exec_[in_flight.machine] -= in_flight.exec_seconds;
  machines_[in_flight.machine]->enqueue(task, in_flight.exec_seconds);
}

void Simulation::schedule_next_failure(std::size_t m, double from) {
  const auto span = injector_->next(m, from);
  if (!span) {
    pending_fault_event_[m] = core::kNoEvent;  // trace exhausted for this machine
    return;
  }
  const double repair_time = span->repair_time;
  pending_fault_event_[m] = engine_.schedule_at(
      span->fail_time, core::EventPriority::kControl,
      core::EventLabel::join("machine failure ", machines_[m]->name().c_str()),
      [this, m, repair_time] { on_machine_failure(m, repair_time); });
}

void Simulation::on_machine_failure(std::size_t m, double repair_time) {
  pending_fault_event_[m] = core::kNoEvent;
  machines::Machine& machine = *machines_[m];
  if (!machine.online()) {
    // A parked (powered-off) machine cannot crash; resume the failure
    // process once this span would have ended.
    schedule_next_failure(m, repair_time);
    return;
  }

  // Abort the committed work: running task first, then local queue, then
  // payloads still in flight toward the crashed machine (sorted by id so the
  // retry order never depends on hash-map iteration).
  std::vector<workload::Task*> evicted = machine.fail(engine_.now());
  std::vector<workload::TaskId> transferring;
  for (const auto& [id, reservation] : in_flight_) {
    if (reservation.machine == m) transferring.push_back(id);
  }
  std::sort(transferring.begin(), transferring.end());
  for (workload::TaskId id : transferring) {
    const auto it = in_flight_.find(id);
    engine_.cancel(it->second.event);
    --in_flight_count_[m];
    in_flight_exec_[m] -= it->second.exec_seconds;
    in_flight_.erase(it);
    evicted.push_back(&tasks_[task_index(id)]);
  }
  // Schedule the repair before aborting tasks: if an abort ends the last
  // live task, mark_terminal drains this event so run() ends promptly.
  pending_fault_event_[m] = engine_.schedule_at(
      repair_time, core::EventPriority::kControl,
      core::EventLabel::join("machine repair ", machine.name().c_str()),
      [this, m] { on_machine_repair(m); });
  for (workload::Task* task : evicted) handle_fault_abort(*task);
}

void Simulation::on_machine_repair(std::size_t m) {
  pending_fault_event_[m] = core::kNoEvent;
  machines_[m]->repair(engine_.now());
  if (!all_terminal()) {
    schedule_next_failure(m, engine_.now());
    request_schedule();  // the repaired machine may unblock the batch queue
  }
}

void Simulation::handle_fault_abort(workload::Task& task) {
  // The mapping is void; a retry starts from a clean record.
  task.assigned_machine.reset();
  task.assignment_time.reset();
  task.start_time.reset();

  const fault::RetryPolicy& retry = config_.faults.retry;
  if (task.retries >= retry.max_retries) {
    task.status = workload::TaskStatus::kFailed;
    task.missed_time = engine_.now();
    const auto it = deadline_event_.find(task.id);
    if (it != deadline_event_.end()) {
      engine_.cancel(it->second);
      deadline_event_.erase(it);
    }
    mark_terminal(task);
    return;
  }
  ++task.retries;
  ++counters_.requeued;
  task.status = workload::TaskStatus::kRetryWait;
  const std::size_t index = task_index(task.id);
  retry_event_[task.id] = engine_.schedule_in(
      retry.delay(task.retries), core::EventPriority::kControl,
      core::EventLabel("retry task=", task.id), [this, index] { on_retry_ready(index); });
}

void Simulation::on_retry_ready(std::size_t index) {
  workload::Task& task = tasks_[index];
  retry_event_.erase(task.id);
  require(task.status == workload::TaskStatus::kRetryWait,
          "retry fired for a task not waiting on retry");
  task.status = workload::TaskStatus::kInBatchQueue;
  batch_queue_.push_back(index);
  request_schedule();
}

bool Simulation::all_terminal() const noexcept {
  return counters_.completed + counters_.cancelled + counters_.dropped +
             counters_.failed ==
         counters_.total;
}

std::size_t Simulation::online_machine_count() const noexcept {
  std::size_t count = 0;
  for (const auto& machine : machines_) {
    if (machine->online()) ++count;
  }
  return count;
}

std::size_t Simulation::in_flight_count(hetero::MachineId machine) const {
  require_input(machine < in_flight_count_.size(), "in_flight_count: machine out of range");
  return in_flight_count_[machine];
}

const mem::ModelCache* Simulation::model_cache(hetero::MachineId machine) const {
  require_input(machine < machines_.size(), "model_cache: machine out of range");
  return machine < model_caches_.size() ? model_caches_[machine].get() : nullptr;
}

void Simulation::autoscaler_tick() {
  const AutoscalerConfig& scaler = config_.autoscaler;
  if (batch_queue_.size() >= scaler.queue_high) {
    scale_out();
  } else if (batch_queue_.size() <= scaler.queue_low) {
    scale_in();
  }
  // all_terminal() is the counter-based equivalent of finished(): both hold
  // exactly when every submitted task reached a terminal outcome, and the
  // counter check is O(1) instead of scanning every task per tick.
  if (!all_terminal()) {
    engine_.schedule_in(scaler.interval, core::EventPriority::kControl,
                        "autoscaler tick", [this] { autoscaler_tick(); });
  }
}

void Simulation::scale_out() {
  for (std::size_t m = 0; m < machines_.size(); ++m) {
    // A failed machine cannot be booted; only repair brings it back.
    if (machines_[m]->online() || machines_[m]->failed() || booting_[m]) continue;
    booting_[m] = true;
    engine_.schedule_in(config_.autoscaler.boot_delay, core::EventPriority::kControl,
                        core::EventLabel::join("machine online ",
                                               machines_[m]->name().c_str()),
                        [this, m] {
                          booting_[m] = false;
                          machines_[m]->set_online(true, engine_.now());
                          request_schedule();
                        });
    return;  // one machine per control decision
  }
}

void Simulation::scale_in() {
  std::size_t online = online_machine_count();
  for (std::size_t b = 0; b < booting_.size(); ++b) {
    if (booting_[b]) ++online;  // about to join; counts against min_online
  }
  if (online <= config_.autoscaler.min_online) return;
  // Candidates: fully idle machines (nothing running, queued or in flight).
  // Keep one idle machine as headroom — powering off the only idle machine
  // while its peers are saturated causes boot-lag thrash on the next burst.
  std::vector<std::size_t> idle;
  for (std::size_t m = 0; m < machines_.size(); ++m) {
    const machines::Machine& machine = *machines_[m];
    if (machine.online() && !machine.busy() && machine.queue_length() == 0 &&
        in_flight_count_[m] == 0) {
      idle.push_back(m);
    }
  }
  if (idle.size() < 2) return;
  machines_[idle.back()]->set_online(false, engine_.now());
}

std::size_t Simulation::task_index(workload::TaskId id) const {
  const auto it = index_of_.find(id);
  require(it != index_of_.end(),
          [id] { return "unknown task id " + std::to_string(id); });
  return it->second;
}

void Simulation::record_outcome(const workload::Task& task, workload::TaskId display_id) {
  ++terminal_by_type_[task.type];
  switch (task.status) {
    case workload::TaskStatus::kCompleted:
      ++counters_.completed;
      ++completed_by_type_[task.type];
      break;
    case workload::TaskStatus::kCancelled:
      ++counters_.cancelled;
      missed_order_.push_back(display_id);
      break;
    case workload::TaskStatus::kDropped:
      ++counters_.dropped;
      missed_order_.push_back(display_id);
      break;
    case workload::TaskStatus::kFailed:
      ++counters_.failed;
      missed_order_.push_back(display_id);
      break;
    default:
      throw InvariantError("record_outcome: task " + std::to_string(task.id) +
                           " has no countable terminal status");
  }
}

void Simulation::resolve_replica_group(ReplicaGroup& group, const workload::Task& task) {
  if (group.resolved) return;
  const workload::Task& primary = tasks_[group.members.front()];
  if (task.status == workload::TaskStatus::kCompleted) {
    // First completion wins the group; the siblings' work is now waste.
    group.resolved = true;
    record_outcome(task, primary.id);
    cancel_replica_siblings(group, task.id);
    return;
  }
  // A losing member alone decides nothing: the group's outcome stays open
  // until every copy is terminal, then the primary's fate is the group's.
  for (std::size_t member : group.members) {
    if (!tasks_[member].finished()) return;
  }
  group.resolved = true;
  record_outcome(primary, primary.id);
}

void Simulation::cancel_replica_siblings(ReplicaGroup& group, workload::TaskId winner_id) {
  for (std::size_t member : group.members) {
    workload::Task& sibling = tasks_[member];
    if (sibling.id == winner_id || sibling.finished()) continue;
    const auto dit = deadline_event_.find(sibling.id);
    if (dit != deadline_event_.end()) {
      engine_.cancel(dit->second);
      deadline_event_.erase(dit);
    }
    switch (sibling.status) {
      case workload::TaskStatus::kInBatchQueue: {
        require(batch_queue_.erase(member), "replica cancel: task missing from batch queue");
        break;
      }
      case workload::TaskStatus::kTransferring: {
        const auto it = in_flight_.find(sibling.id);
        require(it != in_flight_.end(), "replica cancel: missing transfer reservation");
        engine_.cancel(it->second.event);
        --in_flight_count_[it->second.machine];
        in_flight_exec_[it->second.machine] -= it->second.exec_seconds;
        in_flight_.erase(it);
        break;
      }
      case workload::TaskStatus::kInMachineQueue:
      case workload::TaskStatus::kRunning: {
        require(sibling.assigned_machine.has_value(),
                "replica cancel: mapped sibling has no machine");
        if (sibling.status == workload::TaskStatus::kRunning && sibling.start_time) {
          counters_.cancelled_replica_seconds += engine_.now() - *sibling.start_time;
        }
        const bool removed = machines_[*sibling.assigned_machine]->remove(sibling.id);
        require(removed, "replica cancel: sibling not found on its machine");
        break;
      }
      case workload::TaskStatus::kRetryWait: {
        const auto rit = retry_event_.find(sibling.id);
        require(rit != retry_event_.end(), "replica cancel: missing retry event");
        engine_.cancel(rit->second);
        retry_event_.erase(rit);
        break;
      }
      default:
        // kPending is impossible: every replica arrives at the same instant
        // as its primary, strictly before any copy can complete.
        throw InvariantError("replica cancel: unexpected sibling status");
    }
    sibling.status = workload::TaskStatus::kReplicaCancelled;
    sibling.missed_time = engine_.now();
    ++counters_.replicas_cancelled;
  }
}

void Simulation::mark_terminal(const workload::Task& task) {
  const auto git = group_of_.find(task.id);
  if (git == group_of_.end()) {
    record_outcome(task, task.id);
  } else {
    resolve_replica_group(groups_[git->second], task);
  }
  if (injector_ && all_terminal()) {
    // Nothing left to disturb: drain pending failure/repair events so the
    // calendar empties and run() terminates at the last task's finish.
    for (core::EventId& event : pending_fault_event_) {
      if (event != core::kNoEvent) {
        engine_.cancel(event);
        event = core::kNoEvent;
      }
    }
  }
}

void Simulation::replicate_workload(std::size_t replicas) {
  workload::TaskId next_id = 0;
  for (const workload::Task& task : tasks_) next_id = std::max(next_id, task.id + 1);
  std::vector<workload::Task> expanded;
  expanded.reserve(tasks_.size() * replicas);
  groups_.reserve(tasks_.size());
  for (const workload::Task& primary : tasks_) {
    ReplicaGroup group;
    const std::size_t group_index = groups_.size();
    group.members.push_back(expanded.size());
    group_of_.emplace(primary.id, group_index);
    expanded.push_back(primary);
    for (std::size_t k = 1; k < replicas; ++k) {
      workload::Task clone = primary;
      clone.id = next_id++;
      clone.replica_of = primary.id;
      group.members.push_back(expanded.size());
      group_of_.emplace(clone.id, group_index);
      expanded.push_back(clone);
    }
    groups_.push_back(std::move(group));
  }
  tasks_ = std::move(expanded);
}

double Simulation::lost_work_seconds() const {
  double total = 0.0;
  for (const workload::Task& task : tasks_) total += task.lost_seconds;
  return total;
}

double Simulation::checkpoint_overhead_seconds() const {
  double total = 0.0;
  for (const workload::Task& task : tasks_) total += task.checkpoint_overhead_seconds;
  return total;
}

std::size_t Simulation::checkpoints_taken() const {
  std::size_t total = 0;
  for (const workload::Task& task : tasks_) total += task.checkpoint_times.size();
  return total;
}

void Simulation::on_task_completed(workload::Task& task, hetero::MachineId) {
  // The deadline check is no longer needed; keep the calendar lean.
  const auto it = deadline_event_.find(task.id);
  if (it != deadline_event_.end()) {
    engine_.cancel(it->second);
    deadline_event_.erase(it);
  }
  mark_terminal(task);
}

void Simulation::on_slot_freed(hetero::MachineId) { request_schedule(); }

}  // namespace e2c::sched
