/// \file report.hpp
/// \brief The four report kinds of the paper's Reports menu, as CSV tables.
///
/// "There is an option for a 'Full Report,' 'Task Report,' 'Machine Report,'
/// and 'Summary Report'" (§3). Each builder returns rows (header first) that
/// can be saved with e2c::util::write_csv_file — the "save the report as a
/// CSV file" workflow students used for their bar charts.
#pragma once

#include <string>
#include <vector>

#include "sched/simulation.hpp"

namespace e2c::reports {

/// Report kinds selectable in the Reports menu.
enum class ReportKind { kTask, kMachine, kSummary, kFull, kMissed };

/// Display name ("task", "machine", ...).
[[nodiscard]] const char* report_kind_name(ReportKind kind) noexcept;

/// Task Report: one row per task — id, type, status, assigned machine,
/// arrival/start/completion/missed times, wait and response.
[[nodiscard]] std::vector<std::vector<std::string>> task_report(
    const sched::Simulation& simulation);

/// Machine Report: one row per machine — name, type, tasks completed/
/// dropped, busy seconds, utilization, energy.
[[nodiscard]] std::vector<std::vector<std::string>> machine_report(
    const sched::Simulation& simulation);

/// Summary Report: key/value rows of the aggregate metrics.
[[nodiscard]] std::vector<std::vector<std::string>> summary_report(
    const sched::Simulation& simulation);

/// Full Report: the task report joined with per-task machine columns —
/// "all data related to each task and how each machine performed on it",
/// i.e. the task's EET on every machine type alongside its actual record.
[[nodiscard]] std::vector<std::vector<std::string>> full_report(
    const sched::Simulation& simulation);

/// Missed Tasks panel (Fig. 4): task id, type, assigned machine, arrival,
/// start, and missed time for every cancelled/dropped task, in miss order.
[[nodiscard]] std::vector<std::vector<std::string>> missed_report(
    const sched::Simulation& simulation);

/// Builds a report by kind.
[[nodiscard]] std::vector<std::vector<std::string>> build_report(
    const sched::Simulation& simulation, ReportKind kind);

/// Saves a report as CSV at \p path.
void save_report_csv(const sched::Simulation& simulation, ReportKind kind,
                     const std::string& path);

}  // namespace e2c::reports
