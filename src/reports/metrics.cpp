#include "reports/metrics.hpp"

#include <algorithm>

#include "util/stats.hpp"

namespace e2c::reports {

Metrics compute_metrics(const sched::Simulation& simulation) {
  Metrics metrics;
  const auto& counters = simulation.counters();
  metrics.total_tasks = counters.total;
  metrics.completed = counters.completed;
  metrics.cancelled = counters.cancelled;
  metrics.dropped = counters.dropped;
  metrics.failed = counters.failed;
  metrics.requeued = counters.requeued;

  const auto pct = [&](std::size_t n) {
    return counters.total == 0
               ? 0.0
               : 100.0 * static_cast<double>(n) / static_cast<double>(counters.total);
  };
  metrics.completion_percent = pct(counters.completed);
  metrics.cancelled_percent = pct(counters.cancelled);
  metrics.dropped_percent = pct(counters.dropped);
  metrics.failed_percent = pct(counters.failed);

  util::RunningStats waits;
  util::RunningStats responses;
  const workload::TaskStateSoA& state = simulation.task_state();
  for (std::size_t i = 0; i < state.size(); ++i) {
    if (const core::SimTime wait = state.wait_time(i); core::time_set(wait)) waits.add(wait);
    if (const core::SimTime response = state.response_time(i); core::time_set(response)) {
      responses.add(response);
    }
    if (core::time_set(state.completion_time[i])) {
      metrics.makespan = std::max(metrics.makespan, state.completion_time[i]);
    }
  }
  metrics.mean_wait = waits.mean();
  metrics.mean_response = responses.mean();

  const core::SimTime horizon = simulation.engine().now();
  metrics.total_energy_joules = simulation.total_energy_joules(horizon);
  metrics.energy_per_completed_task =
      counters.completed == 0
          ? 0.0
          : metrics.total_energy_joules / static_cast<double>(counters.completed);
  metrics.dynamic_energy_joules = simulation.total_dynamic_energy_joules(horizon);
  metrics.dynamic_energy_per_completed_task =
      counters.completed == 0
          ? 0.0
          : metrics.dynamic_energy_joules / static_cast<double>(counters.completed);

  metrics.machine_utilization.reserve(simulation.machine_count());
  for (std::size_t i = 0; i < simulation.machine_count(); ++i) {
    metrics.machine_utilization.push_back(
        simulation.machine(i).finalize_stats(horizon).utilization());
  }

  const std::size_t type_count = simulation.eet().task_type_count();
  metrics.type_completion_rate.reserve(type_count);
  for (std::size_t t = 0; t < type_count; ++t) {
    metrics.type_completion_rate.push_back(simulation.type_ontime_rate(t));
  }
  metrics.type_fairness_jain = util::jain_fairness(metrics.type_completion_rate);

  metrics.lost_work_seconds = simulation.lost_work_seconds();
  metrics.checkpoint_overhead_seconds = simulation.checkpoint_overhead_seconds();
  metrics.cancelled_replica_seconds = counters.cancelled_replica_seconds;
  metrics.checkpoints_taken = simulation.checkpoints_taken();
  metrics.replicas_cancelled = counters.replicas_cancelled;
  return metrics;
}

}  // namespace e2c::reports
