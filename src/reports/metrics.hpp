/// \file metrics.hpp
/// \brief Aggregate metrics derived from a finished simulation.
///
/// These are the quantities the paper's class assignment asks students to
/// chart (completion percentage per policy and intensity) plus the
/// energy/fairness outputs §3 advertises for researchers.
#pragma once

#include <vector>

#include "sched/simulation.hpp"

namespace e2c::reports {

/// Everything the Summary Report prints, as numbers.
struct Metrics {
  std::size_t total_tasks = 0;
  std::size_t completed = 0;
  std::size_t cancelled = 0;
  std::size_t dropped = 0;
  std::size_t failed = 0;    ///< lost to machine failures
  std::size_t requeued = 0;  ///< fault-abort retries (events)

  double completion_percent = 0.0;  ///< completed / total * 100
  double cancelled_percent = 0.0;
  double dropped_percent = 0.0;
  double failed_percent = 0.0;

  double makespan = 0.0;            ///< last completion time
  double mean_wait = 0.0;           ///< mean (start - arrival) over started tasks
  double mean_response = 0.0;       ///< mean (completion - arrival) over completed
  double total_energy_joules = 0.0; ///< two-state power model, all machines
  double energy_per_completed_task = 0.0;
  /// Execution-only (dynamic) energy; excludes the idle draw that accrues
  /// with wall time regardless of scheduling decisions.
  double dynamic_energy_joules = 0.0;
  double dynamic_energy_per_completed_task = 0.0;

  std::vector<double> machine_utilization;   ///< per machine instance
  std::vector<double> type_completion_rate;  ///< per task type, in [0,1]
  double type_fairness_jain = 1.0;           ///< Jain index over type rates

  // Recovery waste decomposition (all zero when faults are disabled).
  double lost_work_seconds = 0.0;           ///< executed work discarded by aborts
  double checkpoint_overhead_seconds = 0.0; ///< checkpoint writes + restarts
  double cancelled_replica_seconds = 0.0;   ///< runtime of losing replicas
  std::size_t checkpoints_taken = 0;        ///< committed checkpoints
  std::size_t replicas_cancelled = 0;       ///< losing replicas cancelled
};

/// Computes metrics for \p simulation (normally after run(); partial runs
/// yield partial numbers). Energy and utilization use the current simulated
/// time as the horizon.
[[nodiscard]] Metrics compute_metrics(const sched::Simulation& simulation);

}  // namespace e2c::reports
