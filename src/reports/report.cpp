#include "reports/report.hpp"

#include "reports/metrics.hpp"
#include "util/csv.hpp"
#include "util/string_util.hpp"

namespace e2c::reports {

namespace {

std::string opt_time(core::SimTime value) {
  return core::time_set(value) ? util::format_fixed(value, 2) : std::string{};
}

std::string machine_name_of(const sched::Simulation& simulation, std::uint32_t machine) {
  if (machine == workload::kNoMachine) return {};
  return simulation.machine(machine).name();
}

}  // namespace

const char* report_kind_name(ReportKind kind) noexcept {
  switch (kind) {
    case ReportKind::kTask: return "task";
    case ReportKind::kMachine: return "machine";
    case ReportKind::kSummary: return "summary";
    case ReportKind::kFull: return "full";
    case ReportKind::kMissed: return "missed";
  }
  return "unknown";
}

std::vector<std::vector<std::string>> task_report(const sched::Simulation& simulation) {
  const workload::TaskStateSoA& state = simulation.task_state();
  std::vector<std::vector<std::string>> rows;
  rows.reserve(state.size() + 1);
  rows.push_back({"task_id", "task_type", "status", "assigned_machine", "arrival_time",
                  "deadline", "start_time", "completion_time", "missed_time",
                  "wait_time", "response_time", "retries", "useful_s", "lost_s",
                  "ckpt_overhead_s", "replica_of"});
  for (std::size_t i = 0; i < state.size(); ++i) {
    const workload::TaskDef& def = state.def(i);
    const workload::TaskId primary =
        state.has_replica_column() ? state.replica_of[i] : workload::kNoTaskId;
    rows.push_back({std::to_string(def.id),
                    simulation.eet().task_type_name(def.type),
                    workload::task_status_name(state.status[i]),
                    machine_name_of(simulation, state.machine[i]),
                    util::format_fixed(def.arrival, 2),
                    def.deadline == core::kTimeInfinity
                        ? std::string{}
                        : util::format_fixed(def.deadline, 2),
                    opt_time(state.start_time[i]), opt_time(state.completion_time[i]),
                    opt_time(state.missed_time[i]),
                    opt_time(state.wait_time(i)),
                    opt_time(state.response_time(i)),
                    std::to_string(state.retries[i]),
                    util::format_fixed(state.useful_seconds[i], 2),
                    util::format_fixed(state.lost_seconds[i], 2),
                    util::format_fixed(state.checkpoint_overhead_seconds[i], 2),
                    primary == workload::kNoTaskId ? std::string{}
                                                   : std::to_string(primary)});
  }
  return rows;
}

std::vector<std::vector<std::string>> machine_report(const sched::Simulation& simulation) {
  const core::SimTime horizon = simulation.engine().now();
  std::vector<std::vector<std::string>> rows;
  rows.reserve(simulation.machine_count() + 1);
  rows.push_back({"machine", "machine_type", "tasks_completed", "tasks_dropped",
                  "tasks_aborted", "failures", "availability", "busy_seconds",
                  "utilization", "energy_joules"});
  for (std::size_t i = 0; i < simulation.machine_count(); ++i) {
    const machines::Machine& machine = simulation.machine(i);
    const machines::MachineStats stats = machine.finalize_stats(horizon);
    rows.push_back({machine.name(),
                    simulation.eet().machine_type_name(machine.type()),
                    std::to_string(stats.tasks_completed),
                    std::to_string(stats.tasks_dropped),
                    std::to_string(stats.tasks_aborted),
                    std::to_string(stats.failures),
                    util::format_fixed(machine.availability(horizon), 4),
                    util::format_fixed(stats.busy_seconds, 2),
                    util::format_fixed(stats.utilization(), 4),
                    util::format_fixed(machine.energy_joules(horizon), 2)});
  }
  return rows;
}

std::vector<std::vector<std::string>> summary_report(const sched::Simulation& simulation) {
  const Metrics metrics = compute_metrics(simulation);
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"metric", "value"});
  rows.push_back({"policy", simulation.policy().name()});
  rows.push_back({"total_tasks", std::to_string(metrics.total_tasks)});
  rows.push_back({"completed", std::to_string(metrics.completed)});
  rows.push_back({"cancelled", std::to_string(metrics.cancelled)});
  rows.push_back({"dropped", std::to_string(metrics.dropped)});
  rows.push_back({"failed", std::to_string(metrics.failed)});
  rows.push_back({"requeued", std::to_string(metrics.requeued)});
  if (simulation.fault_config().enabled) {
    rows.push_back({"recovery_strategy",
                    fault::recovery_strategy_name(
                        simulation.fault_config().recovery.strategy)});
  }
  rows.push_back({"lost_work_seconds", util::format_fixed(metrics.lost_work_seconds, 2)});
  rows.push_back({"checkpoint_overhead_seconds",
                  util::format_fixed(metrics.checkpoint_overhead_seconds, 2)});
  rows.push_back({"cancelled_replica_seconds",
                  util::format_fixed(metrics.cancelled_replica_seconds, 2)});
  rows.push_back({"checkpoints_taken", std::to_string(metrics.checkpoints_taken)});
  // Shared-channel rows only when the [io] channel is configured, so every
  // pre-existing summary (and its golden expectations) is unchanged.
  if (const fault::IoChannel* channel = simulation.io_channel()) {
    rows.push_back({"io_bandwidth_bytes_per_s",
                    util::format_fixed(channel->config().bandwidth, 2)});
    rows.push_back({"io_strategy", fault::io_strategy_name(channel->config().strategy)});
    rows.push_back({"io_writes_completed", std::to_string(channel->writes_completed())});
    rows.push_back({"io_reads_completed", std::to_string(channel->reads_completed())});
    rows.push_back({"io_peak_concurrent", std::to_string(channel->peak_concurrent())});
  }
  rows.push_back({"replicas_cancelled", std::to_string(metrics.replicas_cancelled)});
  rows.push_back({"completion_percent", util::format_fixed(metrics.completion_percent, 2)});
  rows.push_back({"cancelled_percent", util::format_fixed(metrics.cancelled_percent, 2)});
  rows.push_back({"dropped_percent", util::format_fixed(metrics.dropped_percent, 2)});
  rows.push_back({"failed_percent", util::format_fixed(metrics.failed_percent, 2)});
  rows.push_back({"makespan", util::format_fixed(metrics.makespan, 2)});
  rows.push_back({"mean_wait", util::format_fixed(metrics.mean_wait, 2)});
  rows.push_back({"mean_response", util::format_fixed(metrics.mean_response, 2)});
  rows.push_back({"total_energy_joules", util::format_fixed(metrics.total_energy_joules, 2)});
  rows.push_back({"energy_per_completed_task",
                  util::format_fixed(metrics.energy_per_completed_task, 2)});
  rows.push_back({"dynamic_energy_joules",
                  util::format_fixed(metrics.dynamic_energy_joules, 2)});
  rows.push_back({"dynamic_energy_per_completed_task",
                  util::format_fixed(metrics.dynamic_energy_per_completed_task, 2)});
  rows.push_back({"type_fairness_jain", util::format_fixed(metrics.type_fairness_jain, 4)});
  for (std::size_t t = 0; t < metrics.type_completion_rate.size(); ++t) {
    rows.push_back({"completion_rate[" + simulation.eet().task_type_name(t) + "]",
                    util::format_fixed(metrics.type_completion_rate[t], 4)});
  }
  for (std::size_t m = 0; m < metrics.machine_utilization.size(); ++m) {
    rows.push_back({"utilization[" + simulation.machine(m).name() + "]",
                    util::format_fixed(metrics.machine_utilization[m], 4)});
  }
  return rows;
}

std::vector<std::vector<std::string>> full_report(const sched::Simulation& simulation) {
  std::vector<std::vector<std::string>> rows = task_report(simulation);
  // Extend the header and every row with the task's EET on every machine
  // type — "how each machine performed on it".
  const auto& eet = simulation.eet();
  for (const std::string& machine_type : eet.machine_type_names()) {
    rows[0].push_back("eet_" + machine_type);
  }
  for (std::size_t r = 1; r < rows.size(); ++r) {
    const hetero::TaskTypeId type = simulation.task_state().type(r - 1);
    for (std::size_t c = 0; c < eet.machine_type_count(); ++c) {
      rows[r].push_back(util::format_fixed(eet.eet(type, c), 2));
    }
  }
  return rows;
}

std::vector<std::vector<std::string>> missed_report(const sched::Simulation& simulation) {
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"task_id", "task_type", "assigned_machine", "arrival_time", "start_time",
                  "missed_time", "outcome"});
  const workload::TaskStateSoA& state = simulation.task_state();
  for (const std::size_t i : simulation.missed_tasks()) {
    rows.push_back({std::to_string(state.id(i)),
                    simulation.eet().task_type_name(state.type(i)),
                    machine_name_of(simulation, state.machine[i]),
                    util::format_fixed(state.arrival(i), 2), opt_time(state.start_time[i]),
                    opt_time(state.missed_time[i]),
                    workload::task_status_name(state.status[i])});
  }
  return rows;
}

std::vector<std::vector<std::string>> build_report(const sched::Simulation& simulation,
                                                   ReportKind kind) {
  switch (kind) {
    case ReportKind::kTask: return task_report(simulation);
    case ReportKind::kMachine: return machine_report(simulation);
    case ReportKind::kSummary: return summary_report(simulation);
    case ReportKind::kFull: return full_report(simulation);
    case ReportKind::kMissed: return missed_report(simulation);
  }
  return {};
}

void save_report_csv(const sched::Simulation& simulation, ReportKind kind,
                     const std::string& path) {
  util::write_csv_file(path, build_report(simulation, kind));
}

}  // namespace e2c::reports
