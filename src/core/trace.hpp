/// \file trace.hpp
/// \brief Event trace recorder: the machine-readable counterpart of the
/// GUI's live animation.
///
/// Attach a TraceRecorder to an Engine to capture every processed event.
/// Tests use it to assert ordering invariants; the visualizer uses it to
/// replay a finished run; the CLI can dump it as CSV for students who want
/// to inspect every simulation action (the paper's step-by-step analysis
/// use-case).
#pragma once

#include <string>
#include <vector>

#include "core/engine.hpp"

namespace e2c::core {

/// Records every event an engine processes, in order.
class TraceRecorder final : public EngineObserver {
 public:
  /// Attaches to \p engine for its lifetime (caller removes on teardown).
  explicit TraceRecorder(Engine& engine);
  ~TraceRecorder() override;

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  void on_event(const EventRecord& record) override;

  /// All recorded events, oldest first.
  [[nodiscard]] const std::vector<EventRecord>& records() const noexcept {
    return records_;
  }

  /// Forgets all recorded events.
  void clear() noexcept { records_.clear(); }

  /// Renders the trace as CSV rows: time,priority,label.
  [[nodiscard]] std::vector<std::vector<std::string>> to_csv_rows() const;

  /// True if recorded timestamps are non-decreasing AND same-time events of
  /// the pre-scheduled classes (completion, deadline, arrival) are ordered
  /// by priority class. Those three are always inserted strictly before
  /// their fire time, so the calendar guarantees their relative order;
  /// schedule/control events may legitimately be injected mid-timestamp by
  /// a handler (e.g. a machine coming online requests a scheduler pass at
  /// the same instant) and are exempt from the priority check.
  [[nodiscard]] bool is_monotonic() const noexcept;

 private:
  Engine& engine_;
  std::vector<EventRecord> records_;
};

}  // namespace e2c::core
