#include "core/trace.hpp"

#include "util/string_util.hpp"

namespace e2c::core {

TraceRecorder::TraceRecorder(Engine& engine) : engine_(engine) {
  engine_.add_observer(this);
}

TraceRecorder::~TraceRecorder() { engine_.remove_observer(this); }

void TraceRecorder::on_event(const EventRecord& record) { records_.push_back(record); }

std::vector<std::vector<std::string>> TraceRecorder::to_csv_rows() const {
  std::vector<std::vector<std::string>> rows;
  rows.reserve(records_.size() + 1);
  rows.push_back({"time", "priority", "label"});
  for (const auto& record : records_) {
    rows.push_back({util::format_fixed(record.time, 4),
                    event_priority_name(record.priority), record.label});
  }
  return rows;
}

bool TraceRecorder::is_monotonic() const noexcept {
  const auto pre_scheduled = [](EventPriority priority) {
    return priority <= EventPriority::kArrival;
  };
  for (std::size_t i = 1; i < records_.size(); ++i) {
    const auto& prev = records_[i - 1];
    const auto& curr = records_[i];
    if (curr.time < prev.time) return false;
    if (curr.time == prev.time && pre_scheduled(curr.priority) &&
        pre_scheduled(prev.priority) && curr.priority < prev.priority) {
      return false;
    }
  }
  return true;
}

}  // namespace e2c::core
