/// \file sim_time.hpp
/// \brief Simulation time representation and helpers.
///
/// E2C uses continuous simulated seconds, matching the original simulator's
/// display (e.g. arrival 12.90, start 42.21). Determinism is achieved by a
/// total event ordering (time, priority class, insertion sequence) rather
/// than by quantizing time.
#pragma once

#include <limits>

namespace e2c::core {

/// Simulated seconds since the start of the run.
using SimTime = double;

/// Sentinel meaning "never" / unbounded horizon.
inline constexpr SimTime kTimeInfinity = std::numeric_limits<SimTime>::infinity();

/// Sentinel meaning "not recorded yet" for per-task timestamps (assignment,
/// start, completion, missed). Simulated time is always >= 0, so -inf can
/// never collide with a real instant; the SoA task-state columns store this
/// instead of a std::optional engaged flag (one double per timestamp, no
/// padding byte). Compare with `t == kTimeUnset` / `t != kTimeUnset`.
inline constexpr SimTime kTimeUnset = -std::numeric_limits<SimTime>::infinity();

/// True when a timestamp has been recorded (is not kTimeUnset).
[[nodiscard]] constexpr bool time_set(SimTime t) noexcept { return t != kTimeUnset; }

/// Tolerance used when comparing computed simulation times that should be
/// mathematically equal (guards against floating-point drift in tests and
/// deadline comparisons are done with <= so an exact tie counts as on-time).
inline constexpr SimTime kTimeEpsilon = 1e-9;

/// True if two times are equal within kTimeEpsilon.
[[nodiscard]] constexpr bool time_close(SimTime a, SimTime b) noexcept {
  const SimTime diff = a > b ? a - b : b - a;
  return diff <= kTimeEpsilon;
}

}  // namespace e2c::core
