/// \file event.hpp
/// \brief Event identity, ordering and metadata for the discrete-event core.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "core/sim_time.hpp"

namespace e2c::core {

/// Ordering class for events that share a timestamp. Lower values execute
/// first. The order encodes E2C's simulation semantics:
///  - a task completing exactly at its deadline counts as completed, so
///    completions run before deadline checks;
///  - deadline checks run before new arrivals so a stale task never occupies
///    a queue slot an arriving task could use;
///  - scheduler invocations run after the arrivals that triggered them.
enum class EventPriority : std::uint8_t {
  kCompletion = 0,   ///< task finishes executing on a machine
  kDeadline = 1,     ///< deadline check (cancel / drop)
  kArrival = 2,      ///< task arrives into the batch queue
  kSchedule = 3,     ///< scheduler invocation
  kControl = 4,      ///< bookkeeping (end-of-run, observers, snapshots)
};

/// Display name of a priority class ("completion", "arrival", ...).
[[nodiscard]] const char* event_priority_name(EventPriority priority) noexcept;

/// Unique handle for a scheduled event; used for cancellation.
using EventId = std::uint64_t;

/// Reserved id meaning "no event".
inline constexpr EventId kNoEvent = 0;

/// Callback executed when an event fires. Runs with the engine clock already
/// advanced to the event's time.
using EventFn = std::function<void()>;

/// Immutable metadata describing one processed (or pending) event; consumed
/// by observers, the trace recorder and the step-mode visualizer.
struct EventRecord {
  EventId id = kNoEvent;
  SimTime time = 0.0;
  EventPriority priority = EventPriority::kControl;
  std::string label;  ///< human-readable description, e.g. "arrival task=7"
};

}  // namespace e2c::core
