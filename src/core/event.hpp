/// \file event.hpp
/// \brief Event identity, ordering and metadata for the discrete-event core.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <string>
#include <type_traits>
#include <utility>

#include "core/sim_time.hpp"

namespace e2c::core {

/// Ordering class for events that share a timestamp. Lower values execute
/// first. The order encodes E2C's simulation semantics:
///  - a task completing exactly at its deadline counts as completed, so
///    completions run before deadline checks;
///  - deadline checks run before new arrivals so a stale task never occupies
///    a queue slot an arriving task could use;
///  - scheduler invocations run after the arrivals that triggered them.
enum class EventPriority : std::uint8_t {
  kCompletion = 0,   ///< task finishes executing on a machine
  kDeadline = 1,     ///< deadline check (cancel / drop)
  kArrival = 2,      ///< task arrives into the batch queue
  kSchedule = 3,     ///< scheduler invocation
  kControl = 4,      ///< bookkeeping (end-of-run, observers, snapshots)
};

/// Display name of a priority class ("completion", "arrival", ...).
[[nodiscard]] const char* event_priority_name(EventPriority priority) noexcept;

/// Unique handle for a scheduled event; used for cancellation.
using EventId = std::uint64_t;

/// Reserved id meaning "no event".
inline constexpr EventId kNoEvent = 0;

/// Callback executed when an event fires. Runs with the engine clock already
/// advanced to the event's time.
///
/// A fixed-capacity inline closure instead of std::function: event callbacks
/// are small captures (a `this` pointer plus a couple of scalars), and the
/// calendar schedules millions of them per large run. Storing the closure
/// in-place inside the event slot removes the per-event heap allocation and
/// makes the whole slot trivially copyable, so the slab allocator can recycle
/// slots with plain byte copies. Closures must be trivially copyable and
/// destructible and fit kInlineSize — violations fail at compile time, which
/// is the contract: an event callback that wants to own heap state should
/// capture a pointer into model-layer storage instead.
class EventFn {
 public:
  /// Maximum closure size: a vtable-free `this` + several scalars with room
  /// to spare (the largest closure in the tree captures this + 2 doubles).
  static constexpr std::size_t kInlineSize = 48;

  constexpr EventFn() noexcept = default;
  constexpr EventFn(std::nullptr_t) noexcept {}  // NOLINT: mirrors std::function

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, EventFn> &&
                                        !std::is_same_v<std::decay_t<F>, std::nullptr_t>>>
  EventFn(F&& f) {  // NOLINT: implicit, like std::function
    using Fn = std::decay_t<F>;
    static_assert(sizeof(Fn) <= kInlineSize,
                  "EventFn closure too large: capture a pointer to model-layer "
                  "state instead of copying it into the event");
    static_assert(std::is_trivially_copyable_v<Fn> && std::is_trivially_destructible_v<Fn>,
                  "EventFn closures must be trivially copyable/destructible so "
                  "event slots can be recycled with byte copies");
    ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
    invoke_ = [](void* storage) { (*static_cast<Fn*>(storage))(); };
  }

  EventFn& operator=(std::nullptr_t) noexcept {
    invoke_ = nullptr;
    return *this;
  }

  void operator()() { invoke_(storage_); }

  [[nodiscard]] explicit operator bool() const noexcept { return invoke_ != nullptr; }

 private:
  void (*invoke_)(void*) = nullptr;
  alignas(std::max_align_t) unsigned char storage_[kInlineSize] = {};
};

/// Lazy event label: a small POD of string-literal pieces plus an optional
/// number, materialized into a std::string only when someone (a trace
/// observer, the step-mode visualizer) actually asks for the text.
///
/// Eagerly formatted labels cost one heap-allocated std::string per event —
/// millions per large run — while headless sweeps never read them. The
/// pieces are NOT owned: callers pass string literals or pointers into
/// storage that outlives the event (a machine's name, the simulation's
/// cached policy name).
class EventLabel {
 public:
  constexpr EventLabel() noexcept = default;

  /// A fixed label ("autoscaler tick"). Implicit so literal call sites stay
  /// as cheap to write as the old std::string overloads were.
  constexpr EventLabel(const char* text) noexcept : prefix_(text) {}  // NOLINT

  /// "<prefix><number>" with optional trailing pieces, covering every label
  /// shape the model layer emits: "arrival task=7",
  /// "complete task=7 machine=gpu", ...
  constexpr EventLabel(const char* prefix, std::uint64_t number, const char* mid = "",
                       const char* text = "") noexcept
      : prefix_(prefix), mid_(mid), text_(text), number_(number), has_number_(true) {}

  /// "<prefix><text><suffix>" without a number: "invoke scheduler (FCFS)".
  [[nodiscard]] static constexpr EventLabel join(const char* prefix, const char* text,
                                                const char* suffix = "") noexcept {
    EventLabel label(prefix);
    label.mid_ = text;
    label.text_ = suffix;
    return label;
  }

  /// Materializes the label text (the only place that allocates).
  [[nodiscard]] std::string str() const;

 private:
  const char* prefix_ = "";
  const char* mid_ = "";
  const char* text_ = "";
  std::uint64_t number_ = 0;
  bool has_number_ = false;
};

/// Immutable metadata describing one processed (or pending) event; consumed
/// by observers, the trace recorder and the step-mode visualizer. The label
/// is materialized at record-construction time (see EventLabel).
struct EventRecord {
  EventId id = kNoEvent;
  SimTime time = 0.0;
  EventPriority priority = EventPriority::kControl;
  std::string label;  ///< human-readable description, e.g. "arrival task=7"
};

}  // namespace e2c::core
