/// \file event.hpp
/// \brief Event identity, ordering and metadata for the discrete-event core.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "core/sim_time.hpp"

namespace e2c::core {

/// Ordering class for events that share a timestamp. Lower values execute
/// first. The order encodes E2C's simulation semantics:
///  - a task completing exactly at its deadline counts as completed, so
///    completions run before deadline checks;
///  - deadline checks run before new arrivals so a stale task never occupies
///    a queue slot an arriving task could use;
///  - scheduler invocations run after the arrivals that triggered them.
enum class EventPriority : std::uint8_t {
  kCompletion = 0,   ///< task finishes executing on a machine
  kDeadline = 1,     ///< deadline check (cancel / drop)
  kArrival = 2,      ///< task arrives into the batch queue
  kSchedule = 3,     ///< scheduler invocation
  kControl = 4,      ///< bookkeeping (end-of-run, observers, snapshots)
};

/// Display name of a priority class ("completion", "arrival", ...).
[[nodiscard]] const char* event_priority_name(EventPriority priority) noexcept;

/// Unique handle for a scheduled event; used for cancellation.
using EventId = std::uint64_t;

/// Reserved id meaning "no event".
inline constexpr EventId kNoEvent = 0;

/// Callback executed when an event fires. Runs with the engine clock already
/// advanced to the event's time.
using EventFn = std::function<void()>;

/// Lazy event label: a small POD of string-literal pieces plus an optional
/// number, materialized into a std::string only when someone (a trace
/// observer, the step-mode visualizer) actually asks for the text.
///
/// Eagerly formatted labels cost one heap-allocated std::string per event —
/// millions per large run — while headless sweeps never read them. The
/// pieces are NOT owned: callers pass string literals or pointers into
/// storage that outlives the event (a machine's name, the simulation's
/// cached policy name).
class EventLabel {
 public:
  constexpr EventLabel() noexcept = default;

  /// A fixed label ("autoscaler tick"). Implicit so literal call sites stay
  /// as cheap to write as the old std::string overloads were.
  constexpr EventLabel(const char* text) noexcept : prefix_(text) {}  // NOLINT

  /// "<prefix><number>" with optional trailing pieces, covering every label
  /// shape the model layer emits: "arrival task=7",
  /// "complete task=7 machine=gpu", ...
  constexpr EventLabel(const char* prefix, std::uint64_t number, const char* mid = "",
                       const char* text = "") noexcept
      : prefix_(prefix), mid_(mid), text_(text), number_(number), has_number_(true) {}

  /// "<prefix><text><suffix>" without a number: "invoke scheduler (FCFS)".
  [[nodiscard]] static constexpr EventLabel join(const char* prefix, const char* text,
                                                const char* suffix = "") noexcept {
    EventLabel label(prefix);
    label.mid_ = text;
    label.text_ = suffix;
    return label;
  }

  /// Materializes the label text (the only place that allocates).
  [[nodiscard]] std::string str() const;

 private:
  const char* prefix_ = "";
  const char* mid_ = "";
  const char* text_ = "";
  std::uint64_t number_ = 0;
  bool has_number_ = false;
};

/// Immutable metadata describing one processed (or pending) event; consumed
/// by observers, the trace recorder and the step-mode visualizer. The label
/// is materialized at record-construction time (see EventLabel).
struct EventRecord {
  EventId id = kNoEvent;
  SimTime time = 0.0;
  EventPriority priority = EventPriority::kControl;
  std::string label;  ///< human-readable description, e.g. "arrival task=7"
};

}  // namespace e2c::core
