/// \file engine.hpp
/// \brief The discrete-event engine: clock, calendar, observers, stepping.
///
/// The engine is deliberately model-agnostic: machines, schedulers and
/// workloads (higher layers) interact with it only through schedule()/
/// cancel() and the clock. The GUI-replacement visualizer and the trace
/// recorder attach as observers.
#pragma once

#include <cstdint>
#include <vector>

#include "core/event.hpp"
#include "core/event_queue.hpp"

namespace e2c::core {

/// Receives notifications as the engine processes events. Observers must not
/// mutate the engine (they may schedule follow-up work via the model layer).
class EngineObserver {
 public:
  virtual ~EngineObserver() = default;

  /// Called immediately before an event's callback executes.
  virtual void on_event(const EventRecord& record) = 0;

  /// Called when run()/run_until()/step() finishes a processing burst.
  virtual void on_idle(SimTime now) { (void)now; }
};

/// Discrete-event simulation engine.
///
/// Not thread-safe: one engine per thread. Experiment replications each own
/// a private engine (C++ Core Guidelines CP.2/CP.3 — no shared mutable
/// state between parallel replications).
class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time.
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedules \p fn at absolute time \p time. Requires time >= now().
  /// The label is lazy (see EventLabel): pass a literal or a cheap piece-wise
  /// label; it is only formatted when an observer or the step UI reads it.
  EventId schedule_at(SimTime time, EventPriority priority, EventLabel label, EventFn fn);

  /// Schedules \p fn at now() + delay. Requires delay >= 0.
  EventId schedule_in(SimTime delay, EventPriority priority, EventLabel label, EventFn fn);

  /// Cancels a pending event; false if already fired or unknown.
  bool cancel(EventId id);

  /// Processes exactly one event if any is pending. This is the backing of
  /// the GUI "Increment" button. Returns true if an event was processed.
  bool step();

  /// Runs until the calendar is empty or \p horizon is passed. Events at
  /// exactly \p horizon are processed.
  void run_until(SimTime horizon);

  /// Runs until the calendar is empty.
  void run();

  /// Clears the calendar and rewinds the clock to zero (GUI "Reset"; the
  /// model layer rebuilds its state and reschedules arrivals afterwards).
  void reset();

  /// Registers an observer (not owned; must outlive the engine or be
  /// removed). Duplicate registration is ignored.
  void add_observer(EngineObserver* observer);

  /// Unregisters an observer; no-op if absent.
  void remove_observer(EngineObserver* observer) noexcept;

  /// Number of events processed since construction/reset.
  [[nodiscard]] std::uint64_t processed_count() const noexcept { return processed_; }

  /// Number of pending events.
  [[nodiscard]] std::size_t pending_count() const noexcept { return queue_.size(); }

  /// Metadata of the next pending event (for the step-mode UI), if any.
  [[nodiscard]] std::optional<EventRecord> peek_next() const { return queue_.peek(); }

 private:
  void dispatch_one();

  EventQueue queue_;
  SimTime now_ = 0.0;
  std::uint64_t processed_ = 0;
  std::vector<EngineObserver*> observers_;
};

}  // namespace e2c::core
