#include "core/engine.hpp"

#include <algorithm>
#include <string>

#include "util/error.hpp"

namespace e2c::core {

EventId Engine::schedule_at(SimTime time, EventPriority priority, EventLabel label,
                            EventFn fn) {
  e2c::require(time >= now_ - kTimeEpsilon, [&] {
    return "Engine::schedule_at in the past: t=" + std::to_string(time) +
           " now=" + std::to_string(now_);
  });
  // Clamp tiny negative drift so the calendar never goes backwards.
  const SimTime when = std::max(time, now_);
  return queue_.schedule(when, priority, label, std::move(fn));
}

EventId Engine::schedule_in(SimTime delay, EventPriority priority, EventLabel label,
                            EventFn fn) {
  e2c::require(delay >= 0.0, "Engine::schedule_in negative delay");
  return schedule_at(now_ + delay, priority, label, std::move(fn));
}

bool Engine::cancel(EventId id) { return queue_.cancel(id); }

void Engine::dispatch_one() {
  auto popped = queue_.pop();
  now_ = popped.time;
  ++processed_;
  if (!observers_.empty()) {
    // Labels materialize only here: headless runs never pay for the string.
    const EventRecord record{popped.id, popped.time, popped.priority, popped.label.str()};
    for (EngineObserver* observer : observers_) observer->on_event(record);
  }
  if (popped.fn) popped.fn();
}

bool Engine::step() {
  if (queue_.empty()) return false;
  dispatch_one();
  for (EngineObserver* observer : observers_) observer->on_idle(now_);
  return true;
}

void Engine::run_until(SimTime horizon) {
  // Fast lane while no observers are attached: inline pop → clock → call with
  // no label materialization and no per-event observer check beyond the loop
  // condition. Falls through to dispatch_one() the moment a callback attaches
  // an observer mid-run (the step-mode UI does exactly that).
  while (observers_.empty() && !queue_.empty() && *queue_.next_time() <= horizon) {
    auto popped = queue_.pop_lean();
    now_ = popped.time;
    ++processed_;
    if (popped.fn) popped.fn();
  }
  while (!queue_.empty() && *queue_.next_time() <= horizon) dispatch_one();
  if (now_ < horizon && horizon < kTimeInfinity) now_ = horizon;
  for (EngineObserver* observer : observers_) observer->on_idle(now_);
}

void Engine::run() {
  // Same fast-lane split as run_until (see comment there).
  while (observers_.empty() && !queue_.empty()) {
    auto popped = queue_.pop_lean();
    now_ = popped.time;
    ++processed_;
    if (popped.fn) popped.fn();
  }
  while (!queue_.empty()) dispatch_one();
  for (EngineObserver* observer : observers_) observer->on_idle(now_);
}

void Engine::reset() {
  queue_.clear();
  now_ = 0.0;
  processed_ = 0;
}

void Engine::add_observer(EngineObserver* observer) {
  if (observer == nullptr) return;
  if (std::find(observers_.begin(), observers_.end(), observer) != observers_.end()) return;
  observers_.push_back(observer);
}

void Engine::remove_observer(EngineObserver* observer) noexcept {
  observers_.erase(std::remove(observers_.begin(), observers_.end(), observer),
                   observers_.end());
}

}  // namespace e2c::core
