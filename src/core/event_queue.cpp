#include "core/event_queue.hpp"

#include <bit>
#include <utility>

#include "util/error.hpp"

namespace e2c::core {

const char* event_priority_name(EventPriority priority) noexcept {
  switch (priority) {
    case EventPriority::kCompletion: return "completion";
    case EventPriority::kDeadline: return "deadline";
    case EventPriority::kArrival: return "arrival";
    case EventPriority::kSchedule: return "schedule";
    case EventPriority::kControl: return "control";
  }
  return "unknown";
}

std::string EventLabel::str() const {
  std::string text;
  text.reserve(48);
  text += prefix_;
  if (has_number_) text += std::to_string(number_);
  text += mid_;
  text += text_;
  return text;
}

EventQueue::OrderKey EventQueue::make_key(SimTime time, EventPriority priority,
                                          std::uint64_t sequence) noexcept {
  // Monotone map from double to uint64: flip all bits of negatives, set the
  // sign bit of non-negatives. `time + 0.0` folds -0.0 into +0.0 first so
  // the two zeros (numerically equal, so ordered by priority/sequence under
  // the old compare) cannot order by sign bit here.
  const auto bits = std::bit_cast<std::uint64_t>(time + 0.0);
  const std::uint64_t ordered =
      (bits & 0x8000000000000000ull) != 0 ? ~bits : bits | 0x8000000000000000ull;
  return (static_cast<OrderKey>(ordered) << 64) |
         (static_cast<std::uint64_t>(priority) << kPriorityShift) | sequence;
}

EventId EventQueue::schedule(SimTime time, EventPriority priority, EventLabel label,
                             EventFn fn) {
  e2c::require(next_sequence_ < kMaxSequence, "EventQueue sequence space exhausted");
  std::uint32_t slot_index;
  if (free_slots_.empty()) {
    slot_index = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  } else {
    slot_index = free_slots_.back();
    free_slots_.pop_back();
  }
  Slot& slot = slots_[slot_index];
  // The id carries its own slot reference: (generation << 32) | (slot + 1).
  // The +1 keeps the id from ever being kNoEvent (slot 0, generation 0);
  // the generation half makes ids from a recycled slot distinct, so cancel()
  // can validate a stale id in O(1) without any id→slot lookup table.
  const EventId id =
      (static_cast<EventId>(slot.generation) << 32) | (slot_index + 1);
  slot.id = id;
  slot.live = true;
  slot.label = label;
  slot.fn = fn;

  heap_.push_back(
      HeapNode{make_key(time, priority, next_sequence_++), time, slot_index, slot.generation});
  sift_up(heap_.size() - 1);
  ++live_;
  return id;
}

bool EventQueue::cancel(EventId id) {
  if (id == kNoEvent) return false;
  const std::uint32_t slot_index = static_cast<std::uint32_t>(id & 0xFFFFFFFFu) - 1;
  if (slot_index >= slots_.size()) return false;
  Slot& slot = slots_[slot_index];
  if (!slot.live || slot.id != id) return false;
  // Free the slot now: the generation bump turns the slot's heap node into a
  // tombstone and the slot can be reused immediately. The payload is left in
  // place — it is trivially destructible by construction, and the next
  // schedule() into this slot overwrites it wholesale.
  slot.live = false;
  ++slot.generation;
  free_slots_.push_back(slot_index);
  --live_;
  ++tombstones_;
  prune_top();
  maybe_compact();
  return true;
}

std::optional<SimTime> EventQueue::next_time() const noexcept {
  if (live_ == 0) return std::nullopt;
  return heap_.front().time;  // prune_top keeps the root live
}

std::optional<EventRecord> EventQueue::peek() const {
  if (live_ == 0) return std::nullopt;
  const HeapNode& top = heap_.front();
  const Slot& slot = slots_[top.slot];
  return EventRecord{slot.id, top.time, top.priority(), slot.label.str()};
}

EventQueue::PoppedEvent EventQueue::pop() {
  e2c::require(live_ != 0, "EventQueue::pop on empty queue");
  const HeapNode top = heap_.front();
  Slot& slot = slots_[top.slot];
  PoppedEvent popped{slot.id, top.time, top.priority(), slot.label, slot.fn};
  slot.live = false;
  ++slot.generation;
  free_slots_.push_back(top.slot);
  --live_;
  remove_root();
  prune_top();
  return popped;
}

EventQueue::LeanEvent EventQueue::pop_lean() {
  e2c::require(live_ != 0, "EventQueue::pop on empty queue");
  const HeapNode top = heap_.front();
  Slot& slot = slots_[top.slot];
  LeanEvent popped{top.time, slot.fn};
  slot.live = false;
  ++slot.generation;
  free_slots_.push_back(top.slot);
  --live_;
  remove_root();
  prune_top();
  return popped;
}

void EventQueue::clear() noexcept {
  heap_.clear();
  free_slots_.clear();
  // Keep the slots (the slab is the arena — reuse it across resets) but bump
  // the generation of every live one so ids handed out before the clear can
  // never alias an event scheduled after it.
  for (std::uint32_t i = 0; i < slots_.size(); ++i) {
    Slot& slot = slots_[i];
    if (slot.live) {
      slot.live = false;
      ++slot.generation;
    }
    free_slots_.push_back(i);
  }
  live_ = 0;
  tombstones_ = 0;
}

void EventQueue::remove_root() noexcept {
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
}

void EventQueue::prune_top() noexcept {
  // With no tombstones anywhere every node is live; skip the slot lookup
  // that node_live would do on each pop.
  if (tombstones_ == 0) return;
  while (!heap_.empty() && !node_live(heap_.front())) {
    remove_root();
    --tombstones_;
  }
}

void EventQueue::maybe_compact() {
  // Rebuild once tombstones dominate; the slack constant keeps small queues
  // from compacting on every cancel. O(n) Floyd heapify, amortized O(1).
  if (tombstones_ <= live_ + 64) return;
  std::size_t kept = 0;
  for (const HeapNode& node : heap_) {
    if (node_live(node)) heap_[kept++] = node;
  }
  heap_.resize(kept);
  tombstones_ = 0;
  for (std::size_t i = heap_.size() / kArity + 1; i-- > 0;) sift_down(i);
}

void EventQueue::sift_up(std::size_t index) noexcept {
  const HeapNode node = heap_[index];
  while (index > 0) {
    const std::size_t parent = (index - 1) / kArity;
    if (!node.precedes(heap_[parent])) break;
    heap_[index] = heap_[parent];
    index = parent;
  }
  heap_[index] = node;
}

void EventQueue::sift_down(std::size_t index) noexcept {
  const HeapNode node = heap_[index];
  const std::size_t count = heap_.size();
  while (true) {
    const std::size_t first_child = index * kArity + 1;
    if (first_child >= count) break;
    std::size_t best = first_child;
    const std::size_t last_child =
        first_child + kArity < count ? first_child + kArity : count;
    for (std::size_t child = first_child + 1; child < last_child; ++child) {
      if (heap_[child].precedes(heap_[best])) best = child;
    }
    if (!heap_[best].precedes(node)) break;
    heap_[index] = heap_[best];
    index = best;
  }
  heap_[index] = node;
}

}  // namespace e2c::core
