#include "core/event_queue.hpp"

#include <utility>

#include "util/error.hpp"

namespace e2c::core {

const char* event_priority_name(EventPriority priority) noexcept {
  switch (priority) {
    case EventPriority::kCompletion: return "completion";
    case EventPriority::kDeadline: return "deadline";
    case EventPriority::kArrival: return "arrival";
    case EventPriority::kSchedule: return "schedule";
    case EventPriority::kControl: return "control";
  }
  return "unknown";
}

EventId EventQueue::schedule(SimTime time, EventPriority priority, std::string label,
                             EventFn fn) {
  const EventId id = next_id_++;
  const OrderKey key{time, priority, next_sequence_++};
  by_order_.emplace(key, Entry{id, std::move(label), std::move(fn)});
  by_id_.emplace(id, key);
  return id;
}

bool EventQueue::cancel(EventId id) {
  const auto it = by_id_.find(id);
  if (it == by_id_.end()) return false;
  by_order_.erase(it->second);
  by_id_.erase(it);
  return true;
}

std::optional<SimTime> EventQueue::next_time() const noexcept {
  if (by_order_.empty()) return std::nullopt;
  return by_order_.begin()->first.time;
}

std::optional<EventRecord> EventQueue::peek() const {
  if (by_order_.empty()) return std::nullopt;
  const auto& [key, entry] = *by_order_.begin();
  return EventRecord{entry.id, key.time, key.priority, entry.label};
}

EventQueue::PoppedEvent EventQueue::pop() {
  e2c::require(!by_order_.empty(), "EventQueue::pop on empty queue");
  auto first = by_order_.begin();
  PoppedEvent popped{EventRecord{first->second.id, first->first.time,
                                 first->first.priority, std::move(first->second.label)},
                     std::move(first->second.fn)};
  by_id_.erase(first->second.id);
  by_order_.erase(first);
  return popped;
}

void EventQueue::clear() noexcept {
  by_order_.clear();
  by_id_.clear();
}

}  // namespace e2c::core
