#include "core/event_queue.hpp"

#include <utility>

#include "util/error.hpp"

namespace e2c::core {

const char* event_priority_name(EventPriority priority) noexcept {
  switch (priority) {
    case EventPriority::kCompletion: return "completion";
    case EventPriority::kDeadline: return "deadline";
    case EventPriority::kArrival: return "arrival";
    case EventPriority::kSchedule: return "schedule";
    case EventPriority::kControl: return "control";
  }
  return "unknown";
}

std::string EventLabel::str() const {
  std::string text;
  text.reserve(48);
  text += prefix_;
  if (has_number_) text += std::to_string(number_);
  text += mid_;
  text += text_;
  return text;
}

EventId EventQueue::schedule(SimTime time, EventPriority priority, EventLabel label,
                             EventFn fn) {
  const EventId id = next_id_++;
  std::uint32_t slot_index;
  if (free_slots_.empty()) {
    slot_index = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  } else {
    slot_index = free_slots_.back();
    free_slots_.pop_back();
  }
  Slot& slot = slots_[slot_index];
  slot.id = id;
  slot.live = true;
  slot.label = label;
  slot.fn = std::move(fn);

  heap_.push_back(HeapNode{time, next_sequence_++, slot_index, slot.generation, priority});
  sift_up(heap_.size() - 1);
  slot_of_.emplace(id, slot_index);
  ++live_;
  return id;
}

bool EventQueue::cancel(EventId id) {
  const auto it = slot_of_.find(id);
  if (it == slot_of_.end()) return false;
  Slot& slot = slots_[it->second];
  // Free the slot now: the payload dies, the generation bump turns the slot's
  // heap node into a tombstone, and the slot can be reused immediately.
  slot.live = false;
  ++slot.generation;
  slot.fn = nullptr;
  slot.label = EventLabel{};
  free_slots_.push_back(it->second);
  slot_of_.erase(it);
  --live_;
  ++tombstones_;
  prune_top();
  maybe_compact();
  return true;
}

std::optional<SimTime> EventQueue::next_time() const noexcept {
  if (live_ == 0) return std::nullopt;
  return heap_.front().time;  // prune_top keeps the root live
}

std::optional<EventRecord> EventQueue::peek() const {
  if (live_ == 0) return std::nullopt;
  const HeapNode& top = heap_.front();
  const Slot& slot = slots_[top.slot];
  return EventRecord{slot.id, top.time, top.priority, slot.label.str()};
}

EventQueue::PoppedEvent EventQueue::pop() {
  e2c::require(live_ != 0, "EventQueue::pop on empty queue");
  const HeapNode top = heap_.front();
  Slot& slot = slots_[top.slot];
  PoppedEvent popped{slot.id, top.time, top.priority, slot.label, std::move(slot.fn)};
  slot_of_.erase(slot.id);
  slot.live = false;
  ++slot.generation;
  slot.fn = nullptr;
  slot.label = EventLabel{};
  free_slots_.push_back(top.slot);
  --live_;
  remove_root();
  prune_top();
  return popped;
}

void EventQueue::clear() noexcept {
  heap_.clear();
  slots_.clear();
  free_slots_.clear();
  slot_of_.clear();
  live_ = 0;
  tombstones_ = 0;
}

void EventQueue::remove_root() noexcept {
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
}

void EventQueue::prune_top() noexcept {
  while (!heap_.empty() && !node_live(heap_.front())) {
    remove_root();
    --tombstones_;
  }
}

void EventQueue::maybe_compact() {
  // Rebuild once tombstones dominate; the slack constant keeps small queues
  // from compacting on every cancel. O(n) Floyd heapify, amortized O(1).
  if (tombstones_ <= live_ + 64) return;
  std::size_t kept = 0;
  for (const HeapNode& node : heap_) {
    if (node_live(node)) heap_[kept++] = node;
  }
  heap_.resize(kept);
  tombstones_ = 0;
  for (std::size_t i = heap_.size() / kArity + 1; i-- > 0;) sift_down(i);
}

void EventQueue::sift_up(std::size_t index) noexcept {
  const HeapNode node = heap_[index];
  while (index > 0) {
    const std::size_t parent = (index - 1) / kArity;
    if (!node.precedes(heap_[parent])) break;
    heap_[index] = heap_[parent];
    index = parent;
  }
  heap_[index] = node;
}

void EventQueue::sift_down(std::size_t index) noexcept {
  const HeapNode node = heap_[index];
  const std::size_t count = heap_.size();
  while (true) {
    const std::size_t first_child = index * kArity + 1;
    if (first_child >= count) break;
    std::size_t best = first_child;
    const std::size_t last_child =
        first_child + kArity < count ? first_child + kArity : count;
    for (std::size_t child = first_child + 1; child < last_child; ++child) {
      if (heap_[child].precedes(heap_[best])) best = child;
    }
    if (!heap_[best].precedes(node)) break;
    heap_[index] = heap_[best];
    index = best;
  }
  heap_[index] = node;
}

}  // namespace e2c::core
