/// \file event_queue.hpp
/// \brief Pending-event calendar with deterministic total ordering and
/// O(log n) cancellation.
#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "core/event.hpp"

namespace e2c::core {

/// Priority calendar ordered by (time, priority class, insertion sequence).
///
/// The insertion sequence is the tiebreaker of last resort, which makes the
/// processing order a deterministic function of the schedule() call order —
/// the property E2C's replay/step debugging relies on.
///
/// Implemented over std::map keyed by the ordering tuple: pop-min, insert and
/// cancel are all O(log n), and cancellation physically removes the entry
/// (no tombstones), keeping size() exact for the GUI's pending-event count.
class EventQueue {
 public:
  /// Inserts an event; returns its unique id (never kNoEvent).
  EventId schedule(SimTime time, EventPriority priority, std::string label, EventFn fn);

  /// Removes a pending event. Returns false if the id is unknown or the
  /// event already fired.
  bool cancel(EventId id);

  /// Time of the earliest pending event, or nullopt when empty.
  [[nodiscard]] std::optional<SimTime> next_time() const noexcept;

  /// Metadata of the earliest pending event without removing it.
  [[nodiscard]] std::optional<EventRecord> peek() const;

  /// Removes and returns the earliest pending event (record + callback).
  /// Requires !empty().
  struct PoppedEvent {
    EventRecord record;
    EventFn fn;
  };
  [[nodiscard]] PoppedEvent pop();

  /// Number of pending events.
  [[nodiscard]] std::size_t size() const noexcept { return by_order_.size(); }

  /// True when no events are pending.
  [[nodiscard]] bool empty() const noexcept { return by_order_.empty(); }

  /// Discards all pending events (used by reset).
  void clear() noexcept;

 private:
  struct OrderKey {
    SimTime time;
    EventPriority priority;
    std::uint64_t sequence;
    bool operator<(const OrderKey& other) const noexcept {
      if (time != other.time) return time < other.time;
      if (priority != other.priority) return priority < other.priority;
      return sequence < other.sequence;
    }
  };
  struct Entry {
    EventId id;
    std::string label;
    EventFn fn;
  };

  std::map<OrderKey, Entry> by_order_;
  std::map<EventId, OrderKey> by_id_;
  std::uint64_t next_sequence_ = 1;
  EventId next_id_ = 1;
};

}  // namespace e2c::core
