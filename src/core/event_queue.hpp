/// \file event_queue.hpp
/// \brief Pending-event calendar: cache-friendly d-ary heap with
/// generation-stamped lazy cancellation.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/event.hpp"

namespace e2c::core {

/// Priority calendar ordered by (time, priority class, insertion sequence).
///
/// The insertion sequence is the tiebreaker of last resort, which makes the
/// processing order a deterministic function of the schedule() call order —
/// the property E2C's replay/step debugging relies on. The key comparison is
/// a strict total order, so the pop sequence is independent of the heap's
/// internal layout: any correct heap produces the bit-identical event order
/// the run-digest tests pin down.
///
/// Implementation: a 4-ary min-heap of small key nodes over a slab of
/// fixed-size slots that own the payloads (label + inline callback). Slots
/// are recycled through a free list — no per-event allocation once the slab
/// reached the run's in-system high-water mark. cancel() is O(1) lazy: the
/// slot is freed immediately (payload cleared, generation bumped) and the
/// heap node becomes a tombstone that pop() discards when it surfaces. The
/// heap top is always live, so peek()/next_time() stay const and exact;
/// size() counts live events only (the GUI's pending-event panel). When
/// tombstones outnumber live entries the heap is compacted in place, so
/// cancel-heavy workloads (deadline drops, replica cancels, fault drains)
/// cannot grow the heap without bound.
///
/// Event ids encode their own slot reference — (generation << 32) |
/// (slot + 1), never kNoEvent — so cancel() decodes and validates in O(1)
/// with zero auxiliary lookup structure (the id→slot hash map this replaced
/// cost an allocation-heavy insert+erase per event).
class EventQueue {
 public:
  /// Inserts an event; returns its unique id (never kNoEvent).
  EventId schedule(SimTime time, EventPriority priority, EventLabel label, EventFn fn);

  /// Removes a pending event. Returns false if the id is unknown or the
  /// event already fired. O(1): the payload dies now, the heap node later.
  bool cancel(EventId id);

  /// Time of the earliest pending event, or nullopt when empty.
  [[nodiscard]] std::optional<SimTime> next_time() const noexcept;

  /// Metadata of the earliest pending event without removing it (the label
  /// is materialized — this is the step-mode UI path, not the hot path).
  [[nodiscard]] std::optional<EventRecord> peek() const;

  /// Removes and returns the earliest pending event. Requires !empty().
  /// The label stays lazy; the engine materializes it only for observers.
  struct PoppedEvent {
    EventId id = kNoEvent;
    SimTime time = 0.0;
    EventPriority priority = EventPriority::kControl;
    EventLabel label;
    EventFn fn;
  };
  [[nodiscard]] PoppedEvent pop();

  /// pop() for the headless fast lane: only what the engine's observer-free
  /// loop consumes (clock + callback), skipping the id/label copy.
  struct LeanEvent {
    SimTime time = 0.0;
    EventFn fn;
  };
  [[nodiscard]] LeanEvent pop_lean();

  /// Number of pending (live) events.
  [[nodiscard]] std::size_t size() const noexcept { return live_; }

  /// True when no events are pending.
  [[nodiscard]] bool empty() const noexcept { return live_ == 0; }

  /// Discards all pending events (used by reset).
  void clear() noexcept;

  /// Heap nodes currently allocated, including tombstones — introspection
  /// for the compaction tests; not part of the calendar's semantics.
  [[nodiscard]] std::size_t debug_heap_size() const noexcept { return heap_.size(); }

 private:
  static constexpr std::size_t kArity = 4;
  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;

  /// One heap element: the full ordering key plus a generation-stamped
  /// reference into the slot pool. Keys live in the node so sift compares
  /// never touch the (colder, payload-bearing) slots.
  ///
  /// The (time, priority, sequence) order is packed into one 128-bit
  /// integer — monotone-transformed time bits in the high half, priority
  /// then sequence in the low half — so precedes() is a single integer
  /// compare instead of a three-branch cascade. sift_down runs ~5 compares
  /// per level and dominates the pop path of large runs; the packed key is
  /// what keeps it branch-lean. The transform preserves IEEE ordering
  /// exactly (and normalizes -0.0 to +0.0, which compare equal anyway), so
  /// the pop order — and with it the run digests — is bit-identical to the
  /// field-by-field compare.
  __extension__ typedef unsigned __int128 OrderKey;  // GCC/Clang extension

  struct HeapNode {
    OrderKey key;
    SimTime time;  ///< kept unpacked: next_time()/pop() read it verbatim
    std::uint32_t slot;
    std::uint32_t generation;

    [[nodiscard]] bool precedes(const HeapNode& other) const noexcept {
      return key < other.key;
    }
    [[nodiscard]] EventPriority priority() const noexcept {
      return static_cast<EventPriority>(
          static_cast<std::uint64_t>(key) >> kPriorityShift);
    }
  };

  /// Sequence bits below the priority byte; 2^56 events is centuries of
  /// simulated work, and schedule() checks the bound anyway.
  static constexpr unsigned kPriorityShift = 56;
  static constexpr std::uint64_t kMaxSequence = std::uint64_t{1} << kPriorityShift;

  [[nodiscard]] static OrderKey make_key(SimTime time, EventPriority priority,
                                         std::uint64_t sequence) noexcept;

  /// Payload storage; generation detects stale heap nodes after slot reuse.
  struct Slot {
    EventId id = kNoEvent;
    std::uint32_t generation = 0;
    bool live = false;
    EventLabel label;
    EventFn fn;
  };

  void sift_up(std::size_t index) noexcept;
  void sift_down(std::size_t index) noexcept;
  [[nodiscard]] bool node_live(const HeapNode& node) const noexcept {
    const Slot& slot = slots_[node.slot];
    return slot.live && slot.generation == node.generation;
  }
  /// Drops tombstones off the heap top so the root is always live.
  void prune_top() noexcept;
  /// Rebuilds the heap from its live nodes once tombstones dominate.
  void maybe_compact();
  void remove_root() noexcept;

  std::vector<HeapNode> heap_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::size_t live_ = 0;
  std::size_t tombstones_ = 0;  ///< dead nodes still inside heap_
  std::uint64_t next_sequence_ = 1;
};

}  // namespace e2c::core
