#include "workload/task.hpp"

namespace e2c::workload {

const char* task_status_name(TaskStatus status) noexcept {
  switch (status) {
    case TaskStatus::kPending: return "pending";
    case TaskStatus::kInBatchQueue: return "batch-queue";
    case TaskStatus::kTransferring: return "transferring";
    case TaskStatus::kInMachineQueue: return "machine-queue";
    case TaskStatus::kRunning: return "running";
    case TaskStatus::kRetryWait: return "retry-wait";
    case TaskStatus::kCompleted: return "completed";
    case TaskStatus::kCancelled: return "cancelled";
    case TaskStatus::kDropped: return "dropped";
    case TaskStatus::kFailed: return "failed";
    case TaskStatus::kReplicaCancelled: return "replica-cancelled";
  }
  return "unknown";
}

bool is_terminal(TaskStatus status) noexcept {
  return status == TaskStatus::kCompleted || status == TaskStatus::kCancelled ||
         status == TaskStatus::kDropped || status == TaskStatus::kFailed ||
         status == TaskStatus::kReplicaCancelled;
}

}  // namespace e2c::workload
