/// \file trace_stats.hpp
/// \brief Workload-trace analysis: what a loaded CSV actually contains.
///
/// Students receive or generate workload traces as CSVs; before running
/// them, the natural questions are "how intense is this trace for my
/// system?" and "what does the task mix look like?". This module answers
/// them: arrival-rate and inter-arrival statistics, per-type mix, deadline
/// tightness, and the implied offered load against a given system.
#pragma once

#include <vector>

#include "hetero/eet_matrix.hpp"
#include "workload/workload.hpp"

namespace e2c::workload {

/// Descriptive statistics of one workload trace.
struct TraceStats {
  std::size_t task_count = 0;
  core::SimTime span = 0.0;            ///< last arrival - first arrival
  double arrival_rate = 0.0;           ///< tasks per second over the span
  double interarrival_mean = 0.0;
  double interarrival_cv = 0.0;        ///< ~1 for Poisson, <1 regular, >1 bursty
  std::vector<std::size_t> type_counts;       ///< per task type
  std::vector<double> type_fractions;         ///< per task type, sums to 1
  double deadline_factor_mean = 0.0;   ///< mean (deadline-arrival)/row_mean(type)
  std::size_t infinite_deadlines = 0;  ///< tasks with no deadline
};

/// Computes trace statistics against the EET the trace conforms to.
/// Throws e2c::InputError if the trace references unknown task types.
[[nodiscard]] TraceStats compute_trace_stats(const Workload& workload,
                                             const hetero::EetMatrix& eet);

/// Offered load of the trace on a system: arrival_rate / system_capacity,
/// where capacity uses the trace's own type mix. 0 for an empty trace.
/// The intensity presets invert this: a trace generated at Intensity::kHigh
/// reports an offered load near 2.0.
[[nodiscard]] double offered_load(const Workload& workload, const hetero::EetMatrix& eet,
                                  const std::vector<hetero::MachineTypeId>& machine_types);

/// Renders the stats as CSV key/value rows (header first).
[[nodiscard]] std::vector<std::vector<std::string>> trace_stats_csv(
    const TraceStats& stats, const hetero::EetMatrix& eet);

}  // namespace e2c::workload
