/// \file generator.hpp
/// \brief Seeded workload generator with calibrated intensity presets.
///
/// The class assignment of the paper (§4) uses "three workload traces with
/// arrival intensities ranging from low, medium, to high to stress the
/// system at different levels". We make intensity quantitative: the offered
/// load rho is the ratio of the aggregate arrival rate to the system's
/// aggregate service capacity, so rho = 0.5 under-loads, 1.0 saturates and
/// 2.0 over-loads any system regardless of its EET matrix.
#pragma once

#include <cstdint>
#include <vector>

#include "hetero/eet_matrix.hpp"
#include "workload/arrival.hpp"
#include "workload/workload.hpp"

namespace e2c::workload {

/// The three intensity levels of the class assignment.
enum class Intensity : int { kLow, kMedium, kHigh };

/// Display name ("low", "medium", "high").
[[nodiscard]] const char* intensity_name(Intensity intensity) noexcept;

/// Offered-load fraction for a preset: low=0.5, medium=1.0, high=2.0.
[[nodiscard]] double intensity_offered_load(Intensity intensity) noexcept;

/// Arrival process of ONE task type, for the paper's per-type workload
/// definition ("the task types, arrival distribution for each task type,
/// and their arrival duration").
struct TypeArrivalSpec {
  ArrivalKind kind = ArrivalKind::kPoisson;
  double rate = 1.0;  ///< arrivals per second of this task type (> 0)
};

/// Everything the generator needs besides the EET matrix.
struct GeneratorConfig {
  ArrivalKind arrival = ArrivalKind::kPoisson;
  double rate = 1.0;                ///< aggregate arrivals per second (> 0)
  core::SimTime duration = 100.0;   ///< arrival window [0, duration)
  std::vector<double> type_weights; ///< per-type mix; empty = uniform
  /// Per-type arrival processes (one entry per task type). When non-empty
  /// this supersedes (arrival, rate, type_weights): each type gets its own
  /// independent stream and the streams are merged by arrival time.
  std::vector<TypeArrivalSpec> per_type_arrivals;
  /// Deadline = arrival + factor * mean-EET(type), factor uniform in
  /// [deadline_factor_lo, deadline_factor_hi]. A factor comfortably above 1
  /// leaves slack for queueing; tight factors create urgency.
  double deadline_factor_lo = 2.0;
  double deadline_factor_hi = 4.0;
  std::uint64_t seed = 1;
};

/// Aggregate service capacity (tasks/second) of a system: the sum over
/// machine instances of the reciprocal of the mix-weighted mean EET on that
/// machine's type. \p machine_types lists the machine type of each instance.
/// Empty \p type_weights means a uniform mix.
[[nodiscard]] double system_capacity(const hetero::EetMatrix& eet,
                                     const std::vector<hetero::MachineTypeId>& machine_types,
                                     const std::vector<double>& type_weights);

/// Generates a workload trace from \p config against \p eet. Task ids are
/// assigned in arrival order starting at 0. Deterministic in config.seed.
[[nodiscard]] Workload generate_workload(const hetero::EetMatrix& eet,
                                         const GeneratorConfig& config);

/// Builds a config whose rate realizes offered load \p rho on the system
/// described by (eet, machine_types): rate = rho * system_capacity.
[[nodiscard]] GeneratorConfig config_for_offered_load(
    const hetero::EetMatrix& eet, const std::vector<hetero::MachineTypeId>& machine_types,
    double rho, core::SimTime duration, std::uint64_t seed);

/// Convenience: config for an intensity preset (low/medium/high).
[[nodiscard]] GeneratorConfig config_for_intensity(
    const hetero::EetMatrix& eet, const std::vector<hetero::MachineTypeId>& machine_types,
    Intensity intensity, core::SimTime duration, std::uint64_t seed);

}  // namespace e2c::workload
