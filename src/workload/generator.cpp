#include "workload/generator.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace e2c::workload {

const char* intensity_name(Intensity intensity) noexcept {
  switch (intensity) {
    case Intensity::kLow: return "low";
    case Intensity::kMedium: return "medium";
    case Intensity::kHigh: return "high";
  }
  return "unknown";
}

double intensity_offered_load(Intensity intensity) noexcept {
  switch (intensity) {
    case Intensity::kLow: return 0.5;
    case Intensity::kMedium: return 1.0;
    case Intensity::kHigh: return 2.0;
  }
  return 1.0;
}

double system_capacity(const hetero::EetMatrix& eet,
                       const std::vector<hetero::MachineTypeId>& machine_types,
                       const std::vector<double>& type_weights) {
  require_input(!machine_types.empty(), "system_capacity: no machines");
  const std::size_t types = eet.task_type_count();
  std::vector<double> weights = type_weights;
  if (weights.empty()) weights.assign(types, 1.0);
  require_input(weights.size() == types,
                "system_capacity: type_weights size must match EET task types");
  double weight_sum = 0.0;
  for (double w : weights) {
    require_input(w >= 0.0, "system_capacity: negative type weight");
    weight_sum += w;
  }
  require_input(weight_sum > 0.0, "system_capacity: all type weights are zero");

  double capacity = 0.0;
  for (hetero::MachineTypeId machine_type : machine_types) {
    double mean_service = 0.0;
    for (std::size_t t = 0; t < types; ++t) {
      mean_service += weights[t] / weight_sum * eet.eet(t, machine_type);
    }
    capacity += 1.0 / mean_service;
  }
  return capacity;
}

namespace {

/// One (arrival time, type) pair prior to id assignment.
struct PendingArrival {
  core::SimTime time;
  hetero::TaskTypeId type;
};

/// Aggregate mode: one arrival stream, types drawn from the weighted mix.
std::vector<PendingArrival> aggregate_arrivals(const hetero::EetMatrix& eet,
                                               const GeneratorConfig& config,
                                               util::Rng& rng) {
  require_input(config.rate > 0.0, "generator: rate must be > 0");
  const std::size_t types = eet.task_type_count();
  std::vector<double> weights = config.type_weights;
  if (weights.empty()) weights.assign(types, 1.0);
  require_input(weights.size() == types,
                "generator: type_weights size must match EET task types");

  util::Rng arrivals_rng = rng.split();
  util::Rng types_rng = rng.split();
  const std::vector<core::SimTime> times =
      generate_arrivals(config.arrival, config.rate, config.duration, arrivals_rng);
  std::vector<PendingArrival> arrivals;
  arrivals.reserve(times.size());
  for (core::SimTime t : times) {
    arrivals.push_back(PendingArrival{t, types_rng.weighted_index(weights)});
  }
  return arrivals;
}

/// Per-type mode (the paper's "arrival distribution for each task type"):
/// independent streams, merged by time.
std::vector<PendingArrival> per_type_arrivals(const hetero::EetMatrix& eet,
                                              const GeneratorConfig& config,
                                              util::Rng& rng) {
  require_input(config.per_type_arrivals.size() == eet.task_type_count(),
                "generator: per_type_arrivals needs one spec per task type");
  std::vector<PendingArrival> arrivals;
  for (std::size_t type = 0; type < config.per_type_arrivals.size(); ++type) {
    const TypeArrivalSpec& spec = config.per_type_arrivals[type];
    require_input(spec.rate > 0.0, "generator: per-type rate must be > 0 (type " +
                                       eet.task_type_name(type) + ")");
    util::Rng stream_rng = rng.split();
    for (core::SimTime t :
         generate_arrivals(spec.kind, spec.rate, config.duration, stream_rng)) {
      arrivals.push_back(PendingArrival{t, type});
    }
  }
  std::stable_sort(arrivals.begin(), arrivals.end(),
                   [](const PendingArrival& a, const PendingArrival& b) {
                     return a.time < b.time;
                   });
  return arrivals;
}

}  // namespace

Workload generate_workload(const hetero::EetMatrix& eet, const GeneratorConfig& config) {
  require_input(config.duration > 0.0, "generator: duration must be > 0");
  require_input(config.deadline_factor_lo > 0.0 &&
                    config.deadline_factor_hi >= config.deadline_factor_lo,
                "generator: deadline factors must satisfy 0 < lo <= hi");

  util::Rng rng(config.seed);
  const std::vector<PendingArrival> arrivals = config.per_type_arrivals.empty()
                                                   ? aggregate_arrivals(eet, config, rng)
                                                   : per_type_arrivals(eet, config, rng);
  util::Rng deadlines_rng = rng.split();

  std::vector<TaskDef> tasks;
  tasks.reserve(arrivals.size());
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    TaskDef task;
    task.id = static_cast<TaskId>(i);
    task.type = arrivals[i].type;
    task.arrival = arrivals[i].time;
    const double factor =
        deadlines_rng.uniform(config.deadline_factor_lo, config.deadline_factor_hi);
    task.deadline = task.arrival + factor * eet.row_mean(task.type);
    tasks.push_back(task);
  }
  return Workload(std::move(tasks));
}

GeneratorConfig config_for_offered_load(
    const hetero::EetMatrix& eet, const std::vector<hetero::MachineTypeId>& machine_types,
    double rho, core::SimTime duration, std::uint64_t seed) {
  require_input(rho > 0.0, "config_for_offered_load: rho must be > 0");
  GeneratorConfig config;
  config.rate = rho * system_capacity(eet, machine_types, {});
  config.duration = duration;
  config.seed = seed;
  return config;
}

GeneratorConfig config_for_intensity(
    const hetero::EetMatrix& eet, const std::vector<hetero::MachineTypeId>& machine_types,
    Intensity intensity, core::SimTime duration, std::uint64_t seed) {
  return config_for_offered_load(eet, machine_types, intensity_offered_load(intensity),
                                 duration, seed);
}

}  // namespace e2c::workload
