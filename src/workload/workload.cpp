#include "workload/workload.hpp"

#include <algorithm>

#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/string_util.hpp"

namespace e2c::workload {

Workload::Workload(std::vector<Task> tasks) : tasks_(std::move(tasks)) {
  std::stable_sort(tasks_.begin(), tasks_.end(), [](const Task& a, const Task& b) {
    if (a.arrival != b.arrival) return a.arrival < b.arrival;
    return a.id < b.id;
  });
  for (const Task& task : tasks_) {
    require_input(task.deadline >= task.arrival,
                  "workload: task " + std::to_string(task.id) +
                      " has a deadline before its arrival");
    require_input(task.arrival >= 0.0, "workload: task " + std::to_string(task.id) +
                                           " has a negative arrival time");
  }
}

core::SimTime Workload::last_arrival() const noexcept {
  return tasks_.empty() ? 0.0 : tasks_.back().arrival;
}

void Workload::validate_against(const hetero::EetMatrix& eet) const {
  for (const Task& task : tasks_) {
    require_input(task.type < eet.task_type_count(),
                  "workload: task " + std::to_string(task.id) +
                      " references task type id " + std::to_string(task.type) +
                      " that is not defined within the EET matrix");
  }
}

std::vector<std::size_t> Workload::type_histogram(std::size_t type_count) const {
  std::vector<std::size_t> histogram(type_count, 0);
  for (const Task& task : tasks_) {
    if (task.type < type_count) ++histogram[task.type];
  }
  return histogram;
}

namespace {

Workload workload_from_table(const util::CsvTable& table, const hetero::EetMatrix& eet) {
  require_input(!table.empty(), "workload CSV: file is empty" +
                                    (table.source.empty() ? "" : " (" + table.source + ")"));
  const auto& header = table.rows.front();
  require_input(header.size() >= 3,
                "workload CSV: expected header task_id,task_type,arrival_time[,deadline] (" +
                    table.where(0) + ")");
  const bool has_deadline = header.size() >= 4;

  std::vector<Task> tasks;
  tasks.reserve(table.row_count() - 1);
  for (std::size_t r = 1; r < table.row_count(); ++r) {
    const auto& row = table.rows[r];
    require_input(row.size() >= 3,
                  "workload CSV: too few fields at " + table.where(r));
    const auto id = util::parse_int(row[0]);
    require_input(id.has_value() && *id >= 0,
                  "workload CSV: bad task_id '" + row[0] + "' at " + table.where(r));
    const std::string type_name{util::trim(row[1])};
    const auto arrival = util::parse_double(row[2]);
    require_input(arrival.has_value(),
                  "workload CSV: bad arrival_time '" + row[2] + "' at " + table.where(r));

    Task task;
    task.id = static_cast<TaskId>(*id);
    task.type = eet.task_type_index(type_name);  // throws if unknown (paper rule)
    task.arrival = *arrival;
    if (has_deadline && row.size() >= 4 && !util::trim(row[3]).empty()) {
      const auto deadline = util::parse_double(row[3]);
      require_input(deadline.has_value(),
                    "workload CSV: bad deadline '" + row[3] + "' at " + table.where(r));
      task.deadline = *deadline;
    }
    tasks.push_back(task);
  }
  return Workload(std::move(tasks));
}

}  // namespace

Workload Workload::from_csv_text(const std::string& text, const hetero::EetMatrix& eet) {
  return workload_from_table(util::parse_csv(text), eet);
}

Workload Workload::load_csv(const std::string& path, const hetero::EetMatrix& eet) {
  return workload_from_table(util::read_csv_file(path), eet);
}

std::string Workload::to_csv_text(const hetero::EetMatrix& eet) const {
  std::vector<std::vector<std::string>> rows;
  rows.reserve(tasks_.size() + 1);
  rows.push_back({"task_id", "task_type", "arrival_time", "deadline"});
  for (const Task& task : tasks_) {
    rows.push_back({std::to_string(task.id), eet.task_type_name(task.type),
                    util::format_fixed(task.arrival, 4),
                    task.deadline == core::kTimeInfinity
                        ? std::string{}
                        : util::format_fixed(task.deadline, 4)});
  }
  return util::to_csv(rows);
}

void Workload::save_csv(const std::string& path, const hetero::EetMatrix& eet) const {
  util::write_csv_file(path, util::parse_csv(to_csv_text(eet)).rows);
}

}  // namespace e2c::workload
