#include "workload/workload.hpp"

#include <algorithm>
#include <string_view>
#include <unordered_map>

#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/string_util.hpp"

namespace e2c::workload {

Workload::Workload(std::vector<TaskDef> defs) : defs_(std::move(defs)) {
  std::stable_sort(defs_.begin(), defs_.end(), [](const TaskDef& a, const TaskDef& b) {
    if (a.arrival != b.arrival) return a.arrival < b.arrival;
    return a.id < b.id;
  });
  for (const TaskDef& task : defs_) {
    require_input(task.deadline >= task.arrival,
                  "workload: task " + std::to_string(task.id) +
                      " has a deadline before its arrival");
    require_input(task.arrival >= 0.0, "workload: task " + std::to_string(task.id) +
                                           " has a negative arrival time");
    max_type_ = std::max(max_type_, task.type);
  }
}

core::SimTime Workload::last_arrival() const noexcept {
  return defs_.empty() ? 0.0 : defs_.back().arrival;
}

void Workload::validate_against(const hetero::EetMatrix& eet) const {
  if (defs_.empty() || max_type_ < eet.task_type_count()) return;
  // Out of range: find the first offender (arrival order) so the message
  // points at the same task the per-record scan used to.
  for (const TaskDef& task : defs_) {
    require_input(task.type < eet.task_type_count(),
                  "workload: task " + std::to_string(task.id) +
                      " references task type id " + std::to_string(task.type) +
                      " that is not defined within the EET matrix");
  }
}

std::vector<std::size_t> Workload::type_histogram(std::size_t type_count) const {
  std::vector<std::size_t> histogram(type_count, 0);
  for (const TaskDef& task : defs_) {
    if (task.type < type_count) ++histogram[task.type];
  }
  return histogram;
}

namespace {

Workload workload_from_doc(const util::CsvDoc& doc, const hetero::EetMatrix& eet) {
  require_input(!doc.empty(), "workload CSV: file is empty" +
                                  (doc.source().empty() ? "" : " (" + doc.source() + ")"));
  const auto header = doc.row(0);
  require_input(header.size() >= 3,
                "workload CSV: expected header task_id,task_type,arrival_time[,deadline] (" +
                    doc.where(0) + ")");
  const bool has_deadline = header.size() >= 4;

  // Intern task-type names once at the ingest boundary: repeated names skip
  // the EET's linear name scan.
  std::unordered_map<std::string_view, hetero::TaskTypeId> type_ids;

  std::vector<TaskDef> defs;
  defs.reserve(doc.row_count() - 1);
  for (std::size_t r = 1; r < doc.row_count(); ++r) {
    const auto row = doc.row(r);
    require_input(row.size() >= 3, "workload CSV: too few fields at " + doc.where(r));
    const auto id = util::parse_int(row[0]);
    require_input(id.has_value() && *id >= 0,
                  "workload CSV: bad task_id '" + std::string(row[0]) + "' at " + doc.where(r));
    const std::string_view type_name = util::trim(row[1]);
    const auto arrival = util::parse_double(row[2]);
    require_input(arrival.has_value(), "workload CSV: bad arrival_time '" +
                                           std::string(row[2]) + "' at " + doc.where(r));

    TaskDef task;
    task.id = static_cast<TaskId>(*id);
    const auto interned = type_ids.find(type_name);
    if (interned != type_ids.end()) {
      task.type = interned->second;
    } else {
      task.type = eet.task_type_index(type_name);  // throws if unknown (paper rule)
      type_ids.emplace(type_name, task.type);
    }
    task.arrival = *arrival;
    if (has_deadline && row.size() >= 4 && !util::trim(row[3]).empty()) {
      const auto deadline = util::parse_double(row[3]);
      require_input(deadline.has_value(), "workload CSV: bad deadline '" +
                                              std::string(row[3]) + "' at " + doc.where(r));
      task.deadline = *deadline;
    }
    defs.push_back(task);
  }
  return Workload(std::move(defs));
}

}  // namespace

Workload Workload::from_csv_text(const std::string& text, const hetero::EetMatrix& eet) {
  return workload_from_doc(util::parse_csv_doc(text), eet);
}

Workload Workload::load_csv(const std::string& path, const hetero::EetMatrix& eet) {
  return workload_from_doc(util::read_csv_doc(path), eet);
}

std::string Workload::to_csv_text(const hetero::EetMatrix& eet) const {
  std::vector<std::vector<std::string>> rows;
  rows.reserve(defs_.size() + 1);
  rows.push_back({"task_id", "task_type", "arrival_time", "deadline"});
  for (const TaskDef& task : defs_) {
    rows.push_back({std::to_string(task.id), eet.task_type_name(task.type),
                    util::format_fixed(task.arrival, 4),
                    task.deadline == core::kTimeInfinity
                        ? std::string{}
                        : util::format_fixed(task.deadline, 4)});
  }
  return util::to_csv(rows);
}

void Workload::save_csv(const std::string& path, const hetero::EetMatrix& eet) const {
  util::write_csv_file(path, util::parse_csv(to_csv_text(eet)).rows);
}

}  // namespace e2c::workload
