#include "workload/arrival.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/string_util.hpp"

namespace e2c::workload {

const char* arrival_kind_name(ArrivalKind kind) noexcept {
  switch (kind) {
    case ArrivalKind::kPoisson: return "poisson";
    case ArrivalKind::kUniform: return "uniform";
    case ArrivalKind::kNormal: return "normal";
    case ArrivalKind::kConstant: return "constant";
    case ArrivalKind::kBurst: return "burst";
  }
  return "unknown";
}

ArrivalKind parse_arrival_kind(const std::string& name) {
  for (ArrivalKind kind : {ArrivalKind::kPoisson, ArrivalKind::kUniform,
                           ArrivalKind::kNormal, ArrivalKind::kConstant,
                           ArrivalKind::kBurst}) {
    if (util::iequals(name, arrival_kind_name(kind))) return kind;
  }
  throw InputError("unknown arrival process: '" + name + "'");
}

std::vector<core::SimTime> generate_arrivals(ArrivalKind kind, double rate,
                                             core::SimTime duration, util::Rng& rng) {
  require_input(rate > 0.0, "arrivals: rate must be > 0");
  require_input(duration > 0.0, "arrivals: duration must be > 0");
  constexpr double kMinGap = 1e-6;  // keeps inter-arrivals strictly positive

  std::vector<core::SimTime> times;
  const double mean_gap = 1.0 / rate;
  core::SimTime t = 0.0;

  switch (kind) {
    case ArrivalKind::kPoisson:
      for (t = rng.exponential(rate); t < duration; t += rng.exponential(rate)) {
        times.push_back(t);
      }
      break;
    case ArrivalKind::kUniform:
      for (t = rng.uniform(kMinGap, 2.0 * mean_gap); t < duration;
           t += rng.uniform(kMinGap, 2.0 * mean_gap)) {
        times.push_back(t);
      }
      break;
    case ArrivalKind::kNormal:
      for (t = std::max(kMinGap, rng.normal(mean_gap, 0.25 * mean_gap)); t < duration;
           t += std::max(kMinGap, rng.normal(mean_gap, 0.25 * mean_gap))) {
        times.push_back(t);
      }
      break;
    case ArrivalKind::kConstant:
      for (t = mean_gap; t < duration; t += mean_gap) {
        times.push_back(t);
      }
      break;
    case ArrivalKind::kBurst: {
      // On/off process tuned to preserve the requested mean rate:
      // bursts of ~8 tasks at 4x rate, separated by quiet gaps sized so the
      // long-run average remains `rate`.
      constexpr double kBurstSize = 8.0;
      constexpr double kSpeedup = 4.0;
      const double burst_gap = mean_gap / kSpeedup;
      const double burst_span = kBurstSize * burst_gap;
      const double cycle_span = kBurstSize * mean_gap;  // time a burst "covers"
      const double quiet_gap = cycle_span - burst_span;
      while (t < duration) {
        const auto burst_count =
            static_cast<std::size_t>(rng.uniform_int(4, 12));
        for (std::size_t i = 0; i < burst_count && t < duration; ++i) {
          t += rng.exponential(1.0 / burst_gap);
          if (t < duration) times.push_back(t);
        }
        t += std::max(kMinGap, rng.normal(quiet_gap, 0.25 * quiet_gap));
      }
      break;
    }
  }
  return times;
}

}  // namespace e2c::workload
