#include "workload/trace_stats.hpp"

#include "util/stats.hpp"
#include "util/string_util.hpp"
#include "workload/generator.hpp"

namespace e2c::workload {

TraceStats compute_trace_stats(const Workload& workload, const hetero::EetMatrix& eet) {
  workload.validate_against(eet);
  TraceStats stats;
  stats.task_count = workload.size();
  stats.type_counts = workload.type_histogram(eet.task_type_count());
  stats.type_fractions.assign(eet.task_type_count(), 0.0);
  if (workload.empty()) return stats;

  const auto& tasks = workload.tasks();
  stats.span = tasks.back().arrival - tasks.front().arrival;
  if (stats.span > 0.0) {
    stats.arrival_rate = static_cast<double>(stats.task_count) / stats.span;
  }

  std::vector<double> gaps;
  gaps.reserve(tasks.size());
  for (std::size_t i = 1; i < tasks.size(); ++i) {
    gaps.push_back(tasks[i].arrival - tasks[i - 1].arrival);
  }
  stats.interarrival_mean = util::mean(gaps);
  if (stats.interarrival_mean > 0.0) {
    stats.interarrival_cv = util::stddev(gaps) / stats.interarrival_mean;
  }

  for (std::size_t t = 0; t < stats.type_counts.size(); ++t) {
    stats.type_fractions[t] = static_cast<double>(stats.type_counts[t]) /
                              static_cast<double>(stats.task_count);
  }

  util::RunningStats factors;
  for (const TaskDef& task : tasks) {
    if (task.deadline == core::kTimeInfinity) {
      ++stats.infinite_deadlines;
      continue;
    }
    factors.add((task.deadline - task.arrival) / eet.row_mean(task.type));
  }
  stats.deadline_factor_mean = factors.mean();
  return stats;
}

double offered_load(const Workload& workload, const hetero::EetMatrix& eet,
                    const std::vector<hetero::MachineTypeId>& machine_types) {
  if (workload.empty()) return 0.0;
  const TraceStats stats = compute_trace_stats(workload, eet);
  if (stats.arrival_rate <= 0.0) return 0.0;
  std::vector<double> weights(stats.type_fractions.begin(), stats.type_fractions.end());
  const double capacity = system_capacity(eet, machine_types, weights);
  return stats.arrival_rate / capacity;
}

std::vector<std::vector<std::string>> trace_stats_csv(const TraceStats& stats,
                                                      const hetero::EetMatrix& eet) {
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"metric", "value"});
  rows.push_back({"task_count", std::to_string(stats.task_count)});
  rows.push_back({"span_seconds", util::format_fixed(stats.span, 2)});
  rows.push_back({"arrival_rate", util::format_fixed(stats.arrival_rate, 4)});
  rows.push_back({"interarrival_mean", util::format_fixed(stats.interarrival_mean, 4)});
  rows.push_back({"interarrival_cv", util::format_fixed(stats.interarrival_cv, 4)});
  rows.push_back({"deadline_factor_mean",
                  util::format_fixed(stats.deadline_factor_mean, 2)});
  rows.push_back({"infinite_deadlines", std::to_string(stats.infinite_deadlines)});
  for (std::size_t t = 0; t < stats.type_counts.size(); ++t) {
    rows.push_back({"count[" + eet.task_type_name(t) + "]",
                    std::to_string(stats.type_counts[t])});
  }
  return rows;
}

}  // namespace e2c::workload
