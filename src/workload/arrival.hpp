/// \file arrival.hpp
/// \brief Arrival processes for workload generation.
///
/// The paper's workload component lets the user pick an arrival distribution
/// per task type. E2C-Sim++ implements the standard set used in scheduling
/// studies: Poisson (exponential inter-arrivals), uniform, normal
/// (truncated at a small positive floor), constant spacing, and an on/off
/// burst process for stress scenarios.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/sim_time.hpp"
#include "util/rng.hpp"

namespace e2c::workload {

/// Kinds of arrival processes available to the generator.
enum class ArrivalKind : int {
  kPoisson,   ///< exponential inter-arrival times (memoryless)
  kUniform,   ///< inter-arrivals uniform in [0, 2/rate]
  kNormal,    ///< inter-arrivals normal(1/rate, 0.25/rate), floored at epsilon
  kConstant,  ///< fixed spacing 1/rate
  kBurst,     ///< on/off: bursts of rapid arrivals separated by quiet gaps
};

/// Display name ("poisson", "uniform", ...).
[[nodiscard]] const char* arrival_kind_name(ArrivalKind kind) noexcept;

/// Parses a case-insensitive name; throws e2c::InputError on unknown names.
[[nodiscard]] ArrivalKind parse_arrival_kind(const std::string& name);

/// Generates arrival timestamps in [0, duration) with mean rate \p rate
/// (tasks per simulated second) using process \p kind. The realized count is
/// stochastic for all kinds except kConstant. Requires rate > 0 and
/// duration > 0.
[[nodiscard]] std::vector<core::SimTime> generate_arrivals(ArrivalKind kind, double rate,
                                                           core::SimTime duration,
                                                           util::Rng& rng);

}  // namespace e2c::workload
