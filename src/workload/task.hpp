/// \file task.hpp
/// \brief The task model and its status lifecycle.
///
/// A task is one request for an application (task type). Its lifecycle
/// follows the paper's Figure 1 flow:
///
///   arrival -> batch queue -> (scheduler) -> machine queue -> running -> completed
///                 |                             |               |
///                 v                             v               v
///              CANCELLED                     DROPPED          DROPPED
///        (deadline before mapping)   (deadline in queue)  (deadline mid-run)
///
/// With fault injection enabled, a machine failure aborts mapped tasks into
/// RETRY_WAIT (backoff, then back to the batch queue) until the retry budget
/// is exhausted or the deadline passes, which ends in FAILED.
#pragma once

#include <cstdint>

#include "core/sim_time.hpp"
#include "hetero/types.hpp"

namespace e2c::workload {

/// Unique task identifier within one workload.
using TaskId = std::uint64_t;

/// Where a task currently is in its lifecycle.
enum class TaskStatus : std::uint8_t {
  kPending,        ///< generated, not yet arrived
  kInBatchQueue,   ///< arrived, waiting for the scheduler
  kTransferring,   ///< mapped, input payload in flight to the machine
  kInMachineQueue, ///< mapped, waiting in a machine's local queue
  kRunning,        ///< executing on a machine
  kRetryWait,      ///< aborted by a machine failure, waiting out the retry backoff
  kCompleted,      ///< finished before its deadline
  kCancelled,      ///< deadline passed while still unmapped (batch queue)
  kDropped,        ///< deadline passed after mapping (transfer, queue or run)
  kFailed,         ///< aborted by machine failure(s) and out of retries
  kReplicaCancelled, ///< replica sibling finished first; this copy was cancelled
};

/// Display name of a status ("completed", "cancelled", ...).
[[nodiscard]] const char* task_status_name(TaskStatus status) noexcept;

/// True for the terminal states (completed, cancelled, dropped, failed,
/// replica-cancelled).
[[nodiscard]] bool is_terminal(TaskStatus status) noexcept;

/// The immutable definition of one task, as it appears in the workload trace:
/// identity, application (task type — the EET row it executes at, and the key
/// the comm/memory models derive payload sizes and footprints from), arrival
/// and deadline. A Workload is a vector of these; it carries no per-run
/// state, so one trace can be shared read-only across concurrent runs.
struct TaskDef {
  TaskId id = 0;
  hetero::TaskTypeId type = 0;
  core::SimTime arrival = 0.0;
  core::SimTime deadline = core::kTimeInfinity;
  /// Owning tenant for multi-tenant runs (index into the experiment's tenant
  /// roster); 0 for single-tenant workloads. Carried through to the task
  /// record so waste decomposes per tenant.
  std::uint32_t tenant = 0;
};

}  // namespace e2c::workload
