/// \file task.hpp
/// \brief The task model and its status lifecycle.
///
/// A task is one request for an application (task type). Its lifecycle
/// follows the paper's Figure 1 flow:
///
///   arrival -> batch queue -> (scheduler) -> machine queue -> running -> completed
///                 |                             |               |
///                 v                             v               v
///              CANCELLED                     DROPPED          DROPPED
///        (deadline before mapping)   (deadline in queue)  (deadline mid-run)
///
/// With fault injection enabled, a machine failure aborts mapped tasks into
/// RETRY_WAIT (backoff, then back to the batch queue) until the retry budget
/// is exhausted or the deadline passes, which ends in FAILED.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/sim_time.hpp"
#include "hetero/types.hpp"

namespace e2c::workload {

/// Unique task identifier within one workload.
using TaskId = std::uint64_t;

/// Where a task currently is in its lifecycle.
enum class TaskStatus : std::uint8_t {
  kPending,        ///< generated, not yet arrived
  kInBatchQueue,   ///< arrived, waiting for the scheduler
  kTransferring,   ///< mapped, input payload in flight to the machine
  kInMachineQueue, ///< mapped, waiting in a machine's local queue
  kRunning,        ///< executing on a machine
  kRetryWait,      ///< aborted by a machine failure, waiting out the retry backoff
  kCompleted,      ///< finished before its deadline
  kCancelled,      ///< deadline passed while still unmapped (batch queue)
  kDropped,        ///< deadline passed after mapping (transfer, queue or run)
  kFailed,         ///< aborted by machine failure(s) and out of retries
  kReplicaCancelled, ///< replica sibling finished first; this copy was cancelled
};

/// Display name of a status ("completed", "cancelled", ...).
[[nodiscard]] const char* task_status_name(TaskStatus status) noexcept;

/// True for the terminal states (completed, cancelled, dropped, failed,
/// replica-cancelled).
[[nodiscard]] bool is_terminal(TaskStatus status) noexcept;

/// The immutable definition of one task, as it appears in the workload trace:
/// identity, application (task type — the EET row it executes at, and the key
/// the comm/memory models derive payload sizes and footprints from), arrival
/// and deadline. A Workload is a vector of these; it carries no per-run
/// state, so one trace can be shared read-only across concurrent runs.
struct TaskDef {
  TaskId id = 0;
  hetero::TaskTypeId type = 0;
  core::SimTime arrival = 0.0;
  core::SimTime deadline = core::kTimeInfinity;
  /// Owning tenant for multi-tenant runs (index into the experiment's tenant
  /// roster); 0 for single-tenant workloads. Carried through to the task
  /// record so waste decomposes per tenant.
  std::uint32_t tenant = 0;
};

/// One task: identity, requirements and (mutable) execution record.
///
/// The immutable head (id, type, arrival, deadline) mirrors a TaskDef from
/// the workload trace; the rest is the per-run record filled in by the
/// simulation (which owns these), and is what the Task Report exports.
struct Task {
  TaskId id = 0;
  hetero::TaskTypeId type = 0;
  core::SimTime arrival = 0.0;
  core::SimTime deadline = core::kTimeInfinity;
  std::uint32_t tenant = 0;  ///< owning tenant (0 for single-tenant runs)

  // --- simulation record ---
  TaskStatus status = TaskStatus::kPending;
  std::optional<hetero::MachineId> assigned_machine;  ///< set on mapping
  std::optional<core::SimTime> assignment_time;       ///< when mapped
  std::optional<core::SimTime> start_time;            ///< execution start
  std::optional<core::SimTime> completion_time;       ///< on-time finish
  std::optional<core::SimTime> missed_time;           ///< when cancelled/dropped/failed
  std::size_t retries = 0;                            ///< requeues after machine failures

  // --- recovery record ---
  // The waste decomposition the reports export. For every machine the task
  // touched, useful + lost + checkpoint_overhead == machine_seconds (wallclock
  // the task occupied a slot), whether the run ended in completion, a crash,
  // a deadline drop or a replica cancel.
  double completed_fraction = 0.0;   ///< committed progress in [0,1] (checkpoint strategy)
  double useful_seconds = 0.0;       ///< executed work that was kept (committed or finished)
  double lost_seconds = 0.0;         ///< executed work discarded by crashes/aborts
  double checkpoint_overhead_seconds = 0.0;  ///< time writing checkpoints + restarting
  double machine_seconds = 0.0;      ///< total wallclock occupying machine slots
  std::vector<core::SimTime> checkpoint_times;        ///< commit instants, in order
  std::optional<TaskId> replica_of;  ///< primary's id when this task is a clone

  /// True once the task reached a terminal state.
  [[nodiscard]] bool finished() const noexcept { return is_terminal(status); }

  /// True if the task completed on time.
  [[nodiscard]] bool completed() const noexcept {
    return status == TaskStatus::kCompleted;
  }

  /// Urgency at time \p now: remaining slack until the deadline.
  [[nodiscard]] core::SimTime slack(core::SimTime now) const noexcept {
    return deadline - now;
  }

  /// Response time (completion - arrival) when completed.
  [[nodiscard]] std::optional<core::SimTime> response_time() const noexcept {
    if (!completion_time) return std::nullopt;
    return *completion_time - arrival;
  }

  /// Waiting time before execution started, when it started.
  [[nodiscard]] std::optional<core::SimTime> wait_time() const noexcept {
    if (!start_time) return std::nullopt;
    return *start_time - arrival;
  }
};

}  // namespace e2c::workload
