/// \file workload.hpp
/// \brief The workload trace: an ordered collection of task definitions plus
/// CSV IO.
///
/// File format (matches E2C-Sim's workload CSV):
///   task_id,task_type,arrival_time,deadline
///   0,T1,0.52,12.40
///   ...
/// Task type names must exist in the EET matrix the workload is used with —
/// the paper's compatibility rule. Validation happens at load/bind time.
///
/// A Workload holds only immutable TaskDef records (no per-run state), so a
/// single trace can be validated once and then shared read-only — e.g. via
/// std::shared_ptr<const Workload> — across every policy cell of a sweep and
/// across thread-pool workers. Simulations keep their mutable per-run record
/// in a TaskStateSoA whose definition span aliases the trace.
#pragma once

#include <string>
#include <vector>

#include "hetero/eet_matrix.hpp"
#include "workload/task.hpp"

namespace e2c::workload {

/// An immutable trace of task definitions sorted by arrival time.
class Workload {
 public:
  Workload() = default;

  /// Takes ownership of the definitions; sorts them by (arrival, id) and
  /// validates that deadlines are not before arrivals.
  explicit Workload(std::vector<TaskDef> defs);

  /// Number of tasks.
  [[nodiscard]] std::size_t size() const noexcept { return defs_.size(); }

  /// True when there are no tasks.
  [[nodiscard]] bool empty() const noexcept { return defs_.empty(); }

  /// Task definitions in arrival order.
  [[nodiscard]] const std::vector<TaskDef>& tasks() const noexcept { return defs_; }

  /// Arrival time of the last task (0 for an empty workload).
  [[nodiscard]] core::SimTime last_arrival() const noexcept;

  /// Throws e2c::InputError if any task references a type id outside the
  /// matrix, enforcing "there can be no task type within the workload that
  /// is not defined within the EET". O(1) on the success path (the maximum
  /// referenced type id is cached at construction).
  void validate_against(const hetero::EetMatrix& eet) const;

  /// Tally of tasks per task type id (index = type id; sized to \p type_count).
  [[nodiscard]] std::vector<std::size_t> type_histogram(std::size_t type_count) const;

  // ---- persistence -------------------------------------------------------

  /// Parses the workload CSV, resolving task type names through \p eet.
  /// The deadline column is optional; absent deadlines are infinite.
  [[nodiscard]] static Workload from_csv_text(const std::string& text,
                                              const hetero::EetMatrix& eet);

  /// Loads a workload CSV file.
  [[nodiscard]] static Workload load_csv(const std::string& path,
                                         const hetero::EetMatrix& eet);

  /// Serializes as CSV with type names from \p eet.
  [[nodiscard]] std::string to_csv_text(const hetero::EetMatrix& eet) const;

  /// Writes a CSV file.
  void save_csv(const std::string& path, const hetero::EetMatrix& eet) const;

 private:
  std::vector<TaskDef> defs_;
  /// Largest type id referenced (0 for an empty trace): validate_against is
  /// one comparison instead of a per-task scan.
  hetero::TaskTypeId max_type_ = 0;
};

}  // namespace e2c::workload
