/// \file task_state.hpp
/// \brief Structure-of-arrays per-run task state, owned by the Simulation.
///
/// The mutable execution record that used to live inside a per-task struct
/// (status, assigned machine, four timestamps, waste accumulators) is stored
/// here as parallel dense vectors indexed by task row. The scheduler round,
/// the terminal-transition bookkeeping and the report generators walk
/// contiguous columns instead of striding over ~200-byte task objects, and
/// each timestamp is one double (kTimeUnset sentinel) instead of a
/// std::optional's value + engaged flag + padding.
///
/// The immutable task definitions are NOT copied in: `defs` is a span
/// aliasing the (possibly shared, read-only) workload trace. When a run
/// needs its own definitions — replication clones tasks, the multi-tenant
/// merger rewrites tenants — adopt() takes ownership of a private vector and
/// the span aliases that instead.
///
/// Sentinels (one convention across columns, reports and the digest tests):
///  - timestamps:  core::kTimeUnset (-inf; real instants are always >= 0)
///  - machine:     kNoMachine
///  - replica_of:  kNoTaskId
///
/// The `replica_of` and `checkpoint_times` columns are lazy: empty unless
/// the run uses replication / checkpointing, so the common path never
/// touches (or allocates) them.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "core/sim_time.hpp"
#include "hetero/types.hpp"
#include "workload/task.hpp"

namespace e2c::workload {

/// Column value meaning "not mapped to any machine".
inline constexpr std::uint32_t kNoMachine = 0xFFFFFFFFu;

/// Column value meaning "not a replica" in the replica_of column.
inline constexpr TaskId kNoTaskId = ~TaskId{0};

/// Parallel dense vectors holding the mutable per-run state of every task,
/// plus a non-owning view of the immutable definitions.
struct TaskStateSoA {
  // --- immutable definitions (aliased, never mutated) ---
  std::span<const TaskDef> defs;

  // --- simulation record, one entry per task row ---
  std::vector<TaskStatus> status;
  std::vector<std::uint32_t> machine;           ///< kNoMachine until mapped
  std::vector<core::SimTime> assignment_time;   ///< kTimeUnset until mapped
  std::vector<core::SimTime> start_time;        ///< kTimeUnset until execution starts
  std::vector<core::SimTime> completion_time;   ///< kTimeUnset unless completed
  std::vector<core::SimTime> missed_time;       ///< kTimeUnset unless cancelled/dropped/failed
  std::vector<std::uint32_t> retries;           ///< requeues after machine failures

  // --- recovery record ---
  // The waste decomposition the reports export: for every machine the task
  // touched, useful + lost + checkpoint_overhead == machine_seconds.
  std::vector<double> completed_fraction;
  std::vector<double> useful_seconds;
  std::vector<double> lost_seconds;
  std::vector<double> checkpoint_overhead_seconds;
  std::vector<double> machine_seconds;

  // --- lazy columns (empty unless the feature is active) ---
  std::vector<TaskId> replica_of;  ///< primary's id, kNoTaskId for non-replicas
  std::vector<std::vector<core::SimTime>> checkpoint_times;  ///< commit instants

  /// Number of task rows.
  [[nodiscard]] std::size_t size() const noexcept { return status.size(); }

  /// Points the definitions at a shared read-only trace (no copy) and
  /// (re)initializes every mutable column.
  void bind(std::span<const TaskDef> trace) {
    owned_.clear();
    owned_.shrink_to_fit();
    defs = trace;
    reset();
  }

  /// Takes ownership of run-private definitions (replication clones,
  /// tenant-rewritten merges) and (re)initializes every mutable column.
  void adopt(std::vector<TaskDef> trace) {
    owned_ = std::move(trace);
    defs = owned_;
    reset();
  }

  /// Refills every mutable column with its initial value, sized to defs.
  /// Lazy columns are dropped; callers re-enable the ones they use.
  void reset() {
    const std::size_t n = defs.size();
    status.assign(n, TaskStatus::kPending);
    machine.assign(n, kNoMachine);
    assignment_time.assign(n, core::kTimeUnset);
    start_time.assign(n, core::kTimeUnset);
    completion_time.assign(n, core::kTimeUnset);
    missed_time.assign(n, core::kTimeUnset);
    retries.assign(n, 0);
    completed_fraction.assign(n, 0.0);
    useful_seconds.assign(n, 0.0);
    lost_seconds.assign(n, 0.0);
    checkpoint_overhead_seconds.assign(n, 0.0);
    machine_seconds.assign(n, 0.0);
    replica_of.clear();
    checkpoint_times.clear();
  }

  /// Sizes the replica_of column (all kNoTaskId). Called once per run when
  /// the replicate strategy is active.
  void enable_replica_column() { replica_of.assign(size(), kNoTaskId); }

  /// Sizes the checkpoint_times column. Called once per run when the
  /// checkpoint strategy is active.
  void enable_checkpoint_column() { checkpoint_times.assign(size(), {}); }

  [[nodiscard]] bool has_replica_column() const noexcept { return !replica_of.empty(); }
  [[nodiscard]] bool has_checkpoint_column() const noexcept {
    return !checkpoint_times.empty();
  }

  // --- row helpers over the immutable definitions ---
  [[nodiscard]] const TaskDef& def(std::size_t i) const noexcept { return defs[i]; }
  [[nodiscard]] TaskId id(std::size_t i) const noexcept { return defs[i].id; }
  [[nodiscard]] hetero::TaskTypeId type(std::size_t i) const noexcept {
    return defs[i].type;
  }
  [[nodiscard]] core::SimTime arrival(std::size_t i) const noexcept {
    return defs[i].arrival;
  }
  [[nodiscard]] core::SimTime deadline(std::size_t i) const noexcept {
    return defs[i].deadline;
  }
  [[nodiscard]] std::uint32_t tenant(std::size_t i) const noexcept {
    return defs[i].tenant;
  }

  // --- row helpers over the mutable record ---
  /// True once the task reached a terminal state.
  [[nodiscard]] bool finished(std::size_t i) const noexcept {
    return is_terminal(status[i]);
  }

  /// True if the task completed on time.
  [[nodiscard]] bool completed(std::size_t i) const noexcept {
    return status[i] == TaskStatus::kCompleted;
  }

  /// Response time (completion - arrival); kTimeUnset when not completed.
  [[nodiscard]] core::SimTime response_time(std::size_t i) const noexcept {
    const core::SimTime t = completion_time[i];
    return core::time_set(t) ? t - defs[i].arrival : core::kTimeUnset;
  }

  /// Waiting time before execution started; kTimeUnset when never started.
  [[nodiscard]] core::SimTime wait_time(std::size_t i) const noexcept {
    const core::SimTime t = start_time[i];
    return core::time_set(t) ? t - defs[i].arrival : core::kTimeUnset;
  }

 private:
  std::vector<TaskDef> owned_;  ///< backing storage when adopt() was used
};

}  // namespace e2c::workload
