/// \file fault_model.hpp
/// \brief Machine fault injection: stochastic failure/repair processes and
/// trace-driven failure schedules.
///
/// Real edge deployments lose nodes — power loss, thermal shutdown, network
/// partition. The fault subsystem lets students study how each scheduling
/// policy degrades when machines crash mid-run: a FaultInjector produces, per
/// machine, a sequence of (fail_time, repair_time) spans either from
/// exponential MTBF/MTTR distributions (kStochastic) or verbatim from a CSV
/// trace (kTrace). The simulation layer turns each span into a machine
/// failure event (abort + queue flush) and a later repair event.
///
/// Determinism: the stochastic mode draws from per-machine Rng streams that
/// are split() off one master seed at construction, so the sampled failure
/// schedule is independent of event interleaving and bit-identical across
/// runs with the same seed.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace e2c::fault {

/// How failure spans are produced.
enum class FaultMode : std::uint8_t {
  kStochastic,  ///< exponential inter-failure (MTBF) and repair (MTTR) times
  kTrace,       ///< spans read verbatim from a CSV trace
};

/// One failure interval for one machine, as produced by the injector.
struct FaultSpan {
  double fail_time = 0.0;    ///< when the machine crashes
  double repair_time = 0.0;  ///< when it comes back online (> fail_time)
};

/// One row of a fault trace CSV (header: machine,fail_time,repair_time).
struct FaultTraceEntry {
  std::size_t machine = 0;  ///< 0-based machine index
  double fail_time = 0.0;
  double repair_time = 0.0;
  /// Source locator ("path:line") filled by the CSV loader; empty for entries
  /// built in code. validate() cites it so a bad row in a 10k-line trace is
  /// findable without bisection.
  std::string where;

  FaultTraceEntry() = default;
  FaultTraceEntry(std::size_t machine_index, double fail, double repair,
                  std::string locator = {})
      : machine(machine_index),
        fail_time(fail),
        repair_time(repair),
        where(std::move(locator)) {}
};

/// Retry semantics for tasks aborted by a machine failure.
///
/// An aborted task waits out an exponential backoff —
/// backoff_base * backoff_factor^(retries-1), capped at max_backoff — before
/// becoming eligible for the batch queue again. Once retries exceed
/// max_retries the task is marked FAILED and leaves the system. The cap
/// matters: uncapped, the power overflows to +inf around retry 1024 and a
/// task with a generous retry budget would silently never come back.
struct RetryPolicy {
  std::size_t max_retries = 3;   ///< requeues allowed per task
  double backoff_base = 1.0;     ///< seconds before the first retry
  double backoff_factor = 2.0;   ///< multiplier per successive retry
  double max_backoff = 300.0;    ///< ceiling in seconds for any single backoff

  /// Backoff before retry number \p retry (1-based). Requires retry >= 1.
  /// Never exceeds max_backoff, even where the exponential overflows.
  [[nodiscard]] double delay(std::size_t retry) const;
};

/// How the system recovers work lost to machine failures.
enum class RecoveryStrategy : std::uint8_t {
  kResubmit,    ///< re-run the whole task from scratch (PR 1 behaviour)
  kCheckpoint,  ///< checkpoint every τ work-seconds; restart from the last one
  kReplicate,   ///< run k replicas on distinct machines; first completion wins
};

/// Display name of a strategy ("resubmit", "checkpoint", "replicate").
[[nodiscard]] const char* recovery_strategy_name(RecoveryStrategy strategy) noexcept;

/// Parses a strategy name (case-insensitive). Throws e2c::InputError listing
/// the valid names, with a nearest-match suggestion for plausible typos.
[[nodiscard]] RecoveryStrategy parse_recovery_strategy(const std::string& name);

/// Young/Daly first-order optimal checkpoint interval √(2·C·MTBF) for
/// checkpoint cost C (seconds) and mean time between failures MTBF (seconds).
/// Throws e2c::InputError unless both are > 0.
[[nodiscard]] double young_daly_interval(double checkpoint_cost, double mtbf);

/// Recovery-strategy configuration, carried inside FaultConfig. Only one
/// strategy is active per experiment; recovery has no effect unless fault
/// injection is enabled.
struct RecoveryConfig {
  RecoveryStrategy strategy = RecoveryStrategy::kResubmit;
  /// τ: work seconds between checkpoint writes; 0 derives the Young/Daly
  /// optimum from checkpoint_cost and the stochastic MTBF.
  double checkpoint_interval = 0.0;
  double checkpoint_cost = 0.5;  ///< C: seconds to write one checkpoint
  double restart_cost = 0.5;     ///< R: seconds to reload the last checkpoint
  std::size_t replicas = 2;      ///< k: copies per task for kReplicate
};

/// How checkpoint writers behave on a contended I/O channel.
enum class IoStrategy : std::uint8_t {
  kSelfish,      ///< write the moment τ elapses; fair-share with everyone else
  kCooperative,  ///< at most max_writers concurrent writes; defer the rest
};

/// Display name of an I/O strategy ("selfish", "cooperative").
[[nodiscard]] const char* io_strategy_name(IoStrategy strategy) noexcept;

/// Parses an I/O strategy name (case-insensitive). Throws e2c::InputError
/// listing the valid names, with a nearest-match suggestion for typos.
[[nodiscard]] IoStrategy parse_io_strategy(const std::string& name);

/// Shared checkpoint-I/O channel configuration, carried inside FaultConfig.
///
/// When enabled, checkpoint writes and restart reads stop costing fixed
/// seconds and become transfers of checkpoint_bytes / restart_bytes over one
/// shared channel of `bandwidth` bytes/s, fair-shared across everything in
/// flight. Disabled (the default) preserves the PR-2 fixed-cost path
/// bit-identically.
struct IoConfig {
  bool enabled = false;
  double bandwidth = 0.0;         ///< aggregate channel bandwidth, bytes/s (> 0)
  double checkpoint_bytes = 0.0;  ///< image size per write; 0 derives C·bandwidth
  double restart_bytes = 0.0;     ///< image size per read; 0 derives R·bandwidth
  IoStrategy strategy = IoStrategy::kSelfish;
  std::size_t max_writers = 1;  ///< k: concurrent writer cap for kCooperative

  /// Bytes per checkpoint write: the explicit size, or checkpoint_cost ·
  /// bandwidth so an uncontended write takes exactly C seconds.
  [[nodiscard]] double effective_checkpoint_bytes(double checkpoint_cost) const noexcept {
    return checkpoint_bytes > 0.0 ? checkpoint_bytes : checkpoint_cost * bandwidth;
  }
  /// Bytes per restart read, derived from restart_cost the same way.
  [[nodiscard]] double effective_restart_bytes(double restart_cost) const noexcept {
    return restart_bytes > 0.0 ? restart_bytes : restart_cost * bandwidth;
  }
};

/// Full fault-injection configuration, carried inside SystemConfig.
struct FaultConfig {
  bool enabled = false;
  FaultMode mode = FaultMode::kStochastic;
  double mtbf = 100.0;  ///< mean time between failures, seconds (> 0)
  double mttr = 5.0;    ///< mean time to repair, seconds (> 0)
  std::uint64_t seed = 0xFA17FA17ULL;  ///< master seed for stochastic mode
  std::vector<FaultTraceEntry> trace;  ///< used when mode == kTrace
  RetryPolicy retry;
  RecoveryConfig recovery;
  IoConfig io;

  /// Validates parameters against the system's machine count.
  /// Throws e2c::InputError on bad values, malformed trace spans (negative
  /// fail_time, repair <= fail, out-of-range machine, overlapping spans on
  /// one machine — each cited with its path:line locator when known), an
  /// inconsistent recovery configuration (negative τ/C/R, k < 1, k > machine
  /// count, Young/Daly auto-τ without a stochastic MTBF), or an I/O channel
  /// without bandwidth / outside the checkpoint strategy.
  void validate(std::size_t machine_count) const;

  /// The checkpoint interval the simulation will actually use: the fixed
  /// recovery.checkpoint_interval when > 0, else the Young/Daly optimum
  /// derived from recovery.checkpoint_cost and this config's MTBF.
  [[nodiscard]] double effective_checkpoint_interval() const;
};

/// Produces the failure schedule for each machine.
///
/// Stateless queries are not supported: next() advances the per-machine
/// stream (stochastic) or cursor (trace), so call it exactly once per
/// consumed span, in simulated-time order per machine.
class FaultInjector {
 public:
  /// \throws e2c::InputError when config.validate(machine_count) fails.
  FaultInjector(const FaultConfig& config, std::size_t machine_count);

  /// Next failure span for \p machine starting at or after \p from.
  /// Stochastic mode always yields a span (fail = from + Exp(1/mtbf)); trace
  /// mode returns nullopt once the machine's trace is exhausted.
  [[nodiscard]] std::optional<FaultSpan> next(std::size_t machine, double from);

  /// The configuration this injector was built from.
  [[nodiscard]] const FaultConfig& config() const noexcept { return config_; }

 private:
  FaultConfig config_;
  std::vector<util::Rng> streams_;                    ///< stochastic mode
  std::vector<std::vector<FaultSpan>> trace_spans_;   ///< trace mode, sorted
  std::vector<std::size_t> cursors_;                  ///< trace mode
};

/// Parses a fault trace from CSV text (header machine,fail_time,repair_time;
/// machine is a 0-based index). Throws e2c::InputError with a file:line
/// locator on malformed rows; requires 0 <= fail_time < repair_time.
[[nodiscard]] std::vector<FaultTraceEntry> fault_trace_from_csv_text(
    const std::string& text);

/// Reads and parses a fault trace CSV file. Throws e2c::IoError if the file
/// is unreadable, e2c::InputError on malformed content.
[[nodiscard]] std::vector<FaultTraceEntry> load_fault_trace_csv(
    const std::string& path);

}  // namespace e2c::fault
