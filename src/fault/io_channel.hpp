/// \file io_channel.hpp
/// \brief Shared checkpoint-I/O channel: fair-share bandwidth arbitration for
/// concurrent checkpoint writes and restart reads.
///
/// PR 2 charged every checkpoint a fixed wallclock cost, so recovery never
/// interfered with itself. Real shared-platform deployments (the SMURFS-style
/// interfering-checkpoints literature, ROADMAP open item 4) funnel every
/// tenant's checkpoint traffic through one burst buffer or parallel file
/// system: n concurrent transfers each progress at bandwidth/n, so a machine
/// checkpointing alone finishes in C seconds but finishes in ~n·C when n
/// machines write together.
///
/// The channel models exactly that: each checkpoint write / restart read
/// becomes a *transfer* of a fixed byte size. Whenever the set of in-flight
/// transfers changes (a transfer starts, finishes, or is cancelled by a
/// machine crash), the channel settles every active transfer's remaining
/// bytes at the old rate and re-stamps its completion event at the new rate —
/// cancel + reschedule is cheap on the generation-stamped calendar (PR 3).
///
/// Two admission strategies (IoStrategy):
///  - selfish: every transfer is admitted immediately and fair-shares;
///  - cooperative: at most max_writers checkpoint *writes* are in flight;
///    excess writers queue FIFO and are admitted as writers drain. Restart
///    reads are never deferred — a machine holding a task hostage to be
///    polite would be strictly worse.
///
/// Determinism: active transfers are kept in begin() order and re-stamped in
/// that order, so equal-time completion events retain a platform-independent
/// insertion sequence.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/engine.hpp"
#include "fault/fault_model.hpp"

namespace e2c::fault {

/// Handle for an in-flight (or queued) transfer; used for cancellation.
using TransferId = std::uint64_t;

/// Reserved id meaning "no transfer".
inline constexpr TransferId kNoTransfer = 0;

/// The shared checkpoint-I/O channel. One instance per simulation; machines
/// route checkpoint writes and restart reads through it when configured.
/// Not thread-safe (one engine per thread).
class IoChannel {
 public:
  /// What a transfer moves over the channel.
  enum class TransferKind : std::uint8_t {
    kCheckpointWrite,  ///< persisting a checkpoint image
    kRestartRead,      ///< reloading the last checkpoint image
  };

  /// \param engine the simulation's engine (events are scheduled on it).
  /// \param config validated I/O configuration (config.enabled must be true).
  /// \param checkpoint_cost / restart_cost the fixed-path costs, used to
  ///        derive transfer sizes when the config leaves bytes at 0.
  IoChannel(core::Engine& engine, const IoConfig& config, double checkpoint_cost,
            double restart_cost);

  IoChannel(const IoChannel&) = delete;
  IoChannel& operator=(const IoChannel&) = delete;

  /// Starts a checkpoint write for \p task. Under kCooperative the transfer
  /// may be deferred (queued) until a writer slot frees; \p on_complete fires
  /// when the full image has been written. \p machine_name is not owned and
  /// must outlive the transfer (a machine's name string).
  TransferId begin_checkpoint_write(std::uint64_t task, const char* machine_name,
                                    std::function<void()> on_complete);

  /// Starts a restart read for \p task. Never deferred.
  TransferId begin_restart_read(std::uint64_t task, const char* machine_name,
                                std::function<void()> on_complete);

  /// Cancels an in-flight or queued transfer (machine crash / task removal).
  /// The completion callback is dropped. Returns false when the transfer
  /// already completed or is unknown.
  bool cancel(TransferId id);

  /// Returns the channel to its initial empty state. Requires the owning
  /// engine to have been rewound (pending transfer events are gone with it).
  void reset();

  /// Transfers currently moving bytes.
  [[nodiscard]] std::size_t active_count() const noexcept { return active_.size(); }

  /// Cooperative writers waiting for an admission slot.
  [[nodiscard]] std::size_t waiting_count() const noexcept { return waiting_.size(); }

  /// Completed checkpoint writes / restart reads since construction or reset.
  [[nodiscard]] std::uint64_t writes_completed() const noexcept { return writes_done_; }
  [[nodiscard]] std::uint64_t reads_completed() const noexcept { return reads_done_; }

  /// Largest number of simultaneously active transfers observed — the
  /// contention headline for reports.
  [[nodiscard]] std::size_t peak_concurrent() const noexcept { return peak_active_; }

  /// Wallclock a write/read takes with the channel to itself; machines use
  /// these for ready-time projections (actual completions depend on load).
  [[nodiscard]] double uncontended_write_seconds() const noexcept {
    return checkpoint_bytes_ / config_.bandwidth;
  }
  [[nodiscard]] double uncontended_read_seconds() const noexcept {
    return restart_bytes_ / config_.bandwidth;
  }

  /// The configuration this channel was built from.
  [[nodiscard]] const IoConfig& config() const noexcept { return config_; }

 private:
  struct Transfer {
    TransferId id = kNoTransfer;
    TransferKind kind = TransferKind::kCheckpointWrite;
    std::uint64_t task = 0;
    const char* machine = "";  ///< not owned; outlives the transfer
    double remaining_bytes = 0.0;
    core::EventId event = core::kNoEvent;
    std::function<void()> on_complete;
  };

  TransferId begin(TransferKind kind, std::uint64_t task, const char* machine_name,
                   std::function<void()> on_complete);
  /// Drains progress since the last settle at the pre-change rate.
  void settle(core::SimTime now);
  /// Moves queued cooperative writers into the active set while slots remain.
  void admit_waiting();
  /// Cancels and reschedules every active transfer's completion at the
  /// post-change fair-share rate.
  void restamp(core::SimTime now);
  void on_transfer_done(TransferId id);
  [[nodiscard]] std::size_t active_writers() const noexcept;

  core::Engine& engine_;
  IoConfig config_;
  double checkpoint_bytes_ = 0.0;  ///< resolved transfer size per write
  double restart_bytes_ = 0.0;     ///< resolved transfer size per read
  std::vector<Transfer> active_;   ///< in begin() order (determinism)
  std::vector<Transfer> waiting_;  ///< FIFO of deferred cooperative writers
  core::SimTime last_settle_ = 0.0;
  TransferId next_id_ = 1;
  std::uint64_t writes_done_ = 0;
  std::uint64_t reads_done_ = 0;
  std::size_t peak_active_ = 0;
};

}  // namespace e2c::fault
