#include "fault/io_channel.hpp"

#include <algorithm>
#include <utility>

#include "util/error.hpp"

namespace e2c::fault {

IoChannel::IoChannel(core::Engine& engine, const IoConfig& config,
                     double checkpoint_cost, double restart_cost)
    : engine_(engine),
      config_(config),
      checkpoint_bytes_(config.effective_checkpoint_bytes(checkpoint_cost)),
      restart_bytes_(config.effective_restart_bytes(restart_cost)) {
  require(config_.enabled, "IoChannel: config must be enabled");
  require(config_.bandwidth > 0.0, "IoChannel: bandwidth must be > 0");
  require(checkpoint_bytes_ > 0.0, "IoChannel: checkpoint transfer size must be > 0");
}

TransferId IoChannel::begin_checkpoint_write(std::uint64_t task,
                                             const char* machine_name,
                                             std::function<void()> on_complete) {
  return begin(TransferKind::kCheckpointWrite, task, machine_name,
               std::move(on_complete));
}

TransferId IoChannel::begin_restart_read(std::uint64_t task, const char* machine_name,
                                         std::function<void()> on_complete) {
  return begin(TransferKind::kRestartRead, task, machine_name, std::move(on_complete));
}

std::size_t IoChannel::active_writers() const noexcept {
  std::size_t writers = 0;
  for (const Transfer& transfer : active_) {
    if (transfer.kind == TransferKind::kCheckpointWrite) ++writers;
  }
  return writers;
}

TransferId IoChannel::begin(TransferKind kind, std::uint64_t task,
                            const char* machine_name,
                            std::function<void()> on_complete) {
  const core::SimTime now = engine_.now();
  settle(now);

  Transfer transfer;
  transfer.id = next_id_++;
  transfer.kind = kind;
  transfer.task = task;
  transfer.machine = machine_name;
  transfer.remaining_bytes =
      kind == TransferKind::kCheckpointWrite ? checkpoint_bytes_ : restart_bytes_;
  transfer.on_complete = std::move(on_complete);
  const TransferId id = transfer.id;

  // Cooperative admission defers checkpoint *writes* beyond the writer cap;
  // restart reads always go through — deferring a restart only lengthens the
  // outage it is recovering from.
  const bool defer = kind == TransferKind::kCheckpointWrite &&
                     config_.strategy == IoStrategy::kCooperative &&
                     active_writers() >= config_.max_writers;
  if (defer) {
    waiting_.push_back(std::move(transfer));
    return id;
  }

  // A zero-byte transfer (restart_bytes resolved to 0) completes instantly —
  // mirror the fixed path's synchronous cost==0 shortcut, but only when the
  // channel is otherwise untouched so no restamp is owed.
  if (transfer.remaining_bytes <= 0.0 && active_.empty()) {
    std::function<void()> callback = std::move(transfer.on_complete);
    ++reads_done_;
    if (callback) callback();
    return id;
  }

  active_.push_back(std::move(transfer));
  peak_active_ = std::max(peak_active_, active_.size());
  restamp(now);
  return id;
}

void IoChannel::settle(core::SimTime now) {
  if (!active_.empty()) {
    const double elapsed = std::max(0.0, now - last_settle_);
    if (elapsed > 0.0) {
      const double rate = config_.bandwidth / static_cast<double>(active_.size());
      for (Transfer& transfer : active_) {
        transfer.remaining_bytes =
            std::max(0.0, transfer.remaining_bytes - rate * elapsed);
      }
    }
  }
  last_settle_ = now;
}

void IoChannel::admit_waiting() {
  while (!waiting_.empty() && active_writers() < config_.max_writers) {
    active_.push_back(std::move(waiting_.front()));
    waiting_.erase(waiting_.begin());
  }
  peak_active_ = std::max(peak_active_, active_.size());
}

void IoChannel::restamp(core::SimTime now) {
  if (active_.empty()) return;
  const double rate = config_.bandwidth / static_cast<double>(active_.size());
  for (Transfer& transfer : active_) {
    if (transfer.event != core::kNoEvent) engine_.cancel(transfer.event);
    const char* verb = transfer.kind == TransferKind::kCheckpointWrite
                           ? "io write task="
                           : "io read task=";
    transfer.event = engine_.schedule_at(
        now + transfer.remaining_bytes / rate, core::EventPriority::kCompletion,
        core::EventLabel(verb, transfer.task, " machine=", transfer.machine),
        [this, id = transfer.id] { on_transfer_done(id); });
  }
}

void IoChannel::on_transfer_done(TransferId id) {
  const core::SimTime now = engine_.now();
  settle(now);
  const auto it = std::find_if(active_.begin(), active_.end(),
                               [id](const Transfer& t) { return t.id == id; });
  require(it != active_.end(), "IoChannel: completion for unknown transfer");
  Transfer done = std::move(*it);
  active_.erase(it);
  if (done.kind == TransferKind::kCheckpointWrite) {
    ++writes_done_;
  } else {
    ++reads_done_;
  }
  admit_waiting();
  restamp(now);
  // The callback runs after the channel is consistent: it may immediately
  // begin the machine's next transfer (restart → work → checkpoint).
  if (done.on_complete) done.on_complete();
}

bool IoChannel::cancel(TransferId id) {
  const auto active_it = std::find_if(active_.begin(), active_.end(),
                                      [id](const Transfer& t) { return t.id == id; });
  if (active_it != active_.end()) {
    const core::SimTime now = engine_.now();
    settle(now);
    engine_.cancel(active_it->event);
    active_.erase(active_it);
    admit_waiting();
    restamp(now);
    return true;
  }
  const auto waiting_it = std::find_if(waiting_.begin(), waiting_.end(),
                                       [id](const Transfer& t) { return t.id == id; });
  if (waiting_it != waiting_.end()) {
    waiting_.erase(waiting_it);
    return true;
  }
  return false;
}

void IoChannel::reset() {
  active_.clear();
  waiting_.clear();
  last_settle_ = 0.0;
  next_id_ = 1;
  writes_done_ = 0;
  reads_done_ = 0;
  peak_active_ = 0;
}

}  // namespace e2c::fault
