#include "fault/fault_model.hpp"

#include <algorithm>
#include <cmath>

#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/string_util.hpp"

namespace e2c::fault {

double RetryPolicy::delay(std::size_t retry) const {
  require(retry >= 1, "RetryPolicy::delay: retry numbers are 1-based");
  const double raw =
      backoff_base * std::pow(backoff_factor, static_cast<double>(retry - 1));
  // The uncapped power overflows to +inf near retry 1024; the cap keeps every
  // backoff finite and bounded.
  if (!std::isfinite(raw)) return max_backoff;
  return std::min(raw, max_backoff);
}

const char* recovery_strategy_name(RecoveryStrategy strategy) noexcept {
  switch (strategy) {
    case RecoveryStrategy::kResubmit: return "resubmit";
    case RecoveryStrategy::kCheckpoint: return "checkpoint";
    case RecoveryStrategy::kReplicate: return "replicate";
  }
  return "unknown";
}

RecoveryStrategy parse_recovery_strategy(const std::string& name) {
  if (util::iequals(name, "resubmit")) return RecoveryStrategy::kResubmit;
  if (util::iequals(name, "checkpoint")) return RecoveryStrategy::kCheckpoint;
  if (util::iequals(name, "replicate")) return RecoveryStrategy::kReplicate;
  std::string message = "unknown recovery strategy: '" + name + "'";
  if (const auto suggestion =
          util::nearest_match(name, {"resubmit", "checkpoint", "replicate"})) {
    message += " — did you mean '" + *suggestion + "'?";
  }
  message += " (valid: resubmit | checkpoint | replicate)";
  throw InputError(message);
}

const char* io_strategy_name(IoStrategy strategy) noexcept {
  switch (strategy) {
    case IoStrategy::kSelfish: return "selfish";
    case IoStrategy::kCooperative: return "cooperative";
  }
  return "unknown";
}

IoStrategy parse_io_strategy(const std::string& name) {
  if (util::iequals(name, "selfish")) return IoStrategy::kSelfish;
  if (util::iequals(name, "cooperative")) return IoStrategy::kCooperative;
  std::string message = "unknown io strategy: '" + name + "'";
  if (const auto suggestion = util::nearest_match(name, {"selfish", "cooperative"})) {
    message += " — did you mean '" + *suggestion + "'?";
  }
  message += " (valid: selfish | cooperative)";
  throw InputError(message);
}

double young_daly_interval(double checkpoint_cost, double mtbf) {
  require_input(checkpoint_cost > 0.0 && mtbf > 0.0,
                "young_daly_interval: checkpoint cost and MTBF must be > 0");
  return std::sqrt(2.0 * checkpoint_cost * mtbf);
}

void FaultConfig::validate(std::size_t machine_count) const {
  if (!enabled) return;
  if (mode == FaultMode::kStochastic) {
    require_input(mtbf > 0.0, "fault config: mtbf must be > 0");
    require_input(mttr > 0.0, "fault config: mttr must be > 0");
  } else {
    const auto locate = [this](std::size_t index) {
      const FaultTraceEntry& entry = trace[index];
      return entry.where.empty() ? "trace entry #" + std::to_string(index)
                                 : entry.where;
    };
    for (std::size_t i = 0; i < trace.size(); ++i) {
      const FaultTraceEntry& entry = trace[i];
      require_input(entry.machine < machine_count,
                    "fault trace: machine index " + std::to_string(entry.machine) +
                        " out of range (system has " +
                        std::to_string(machine_count) + " machines) at " + locate(i));
      require_input(entry.fail_time >= 0.0,
                    "fault trace: fail_time must be >= 0 at " + locate(i));
      require_input(entry.repair_time > entry.fail_time,
                    "fault trace: repair_time must be after fail_time at " + locate(i));
    }
    // Overlapping spans on one machine would mean failing an already-failed
    // machine; the injector would silently skip the second span, so reject
    // the trace up front. Back-to-back spans (fail == previous repair) are
    // fine: the machine crashes again the instant it comes back.
    std::vector<std::size_t> order(trace.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [this](std::size_t a, std::size_t b) {
      if (trace[a].machine != trace[b].machine) return trace[a].machine < trace[b].machine;
      return trace[a].fail_time < trace[b].fail_time;
    });
    for (std::size_t k = 1; k < order.size(); ++k) {
      const FaultTraceEntry& prev = trace[order[k - 1]];
      const FaultTraceEntry& curr = trace[order[k]];
      if (prev.machine != curr.machine) continue;
      require_input(curr.fail_time >= prev.repair_time,
                    "fault trace: overlapping spans on machine " +
                        std::to_string(curr.machine) + ": span at " + locate(order[k]) +
                        " fails at " + std::to_string(curr.fail_time) +
                        " before the span at " + locate(order[k - 1]) +
                        " repairs at " + std::to_string(prev.repair_time));
    }
  }
  require_input(retry.backoff_base >= 0.0,
                "fault config: retry backoff must be >= 0");
  require_input(retry.backoff_factor >= 1.0,
                "fault config: retry backoff factor must be >= 1");
  require_input(retry.max_backoff > 0.0,
                "fault config: retry max_backoff must be > 0");
  require_input(recovery.checkpoint_interval >= 0.0,
                "fault config: recovery checkpoint interval must be >= 0");
  require_input(recovery.checkpoint_cost >= 0.0,
                "fault config: recovery checkpoint cost must be >= 0");
  require_input(recovery.restart_cost >= 0.0,
                "fault config: recovery restart cost must be >= 0");
  if (recovery.strategy == RecoveryStrategy::kCheckpoint &&
      recovery.checkpoint_interval == 0.0) {
    // Auto-τ is the Young/Daly optimum, which needs a cost and an MTBF.
    require_input(mode == FaultMode::kStochastic,
                  "fault config: the Young/Daly auto checkpoint interval needs a "
                  "stochastic MTBF; set an explicit interval for trace-driven faults");
    require_input(recovery.checkpoint_cost > 0.0,
                  "fault config: the Young/Daly auto checkpoint interval needs a "
                  "checkpoint cost > 0");
  }
  if (recovery.strategy == RecoveryStrategy::kReplicate) {
    require_input(recovery.replicas >= 1, "fault config: replicas must be >= 1");
    require_input(recovery.replicas <= machine_count,
                  "fault config: replicas (" + std::to_string(recovery.replicas) +
                      ") exceed the machine count (" + std::to_string(machine_count) +
                      "); replicas must run on distinct machines");
  }
  if (io.enabled) {
    require_input(recovery.strategy == RecoveryStrategy::kCheckpoint,
                  "fault config: the io channel models checkpoint/restart traffic; "
                  "it requires recovery strategy 'checkpoint'");
    require_input(io.bandwidth > 0.0, "fault config: io bandwidth must be > 0");
    require_input(io.checkpoint_bytes >= 0.0,
                  "fault config: io checkpoint_bytes must be >= 0");
    require_input(io.restart_bytes >= 0.0,
                  "fault config: io restart_bytes must be >= 0");
    require_input(io.effective_checkpoint_bytes(recovery.checkpoint_cost) > 0.0,
                  "fault config: io checkpoint transfer size is 0; set "
                  "checkpoint_bytes or a checkpoint cost > 0");
    if (io.strategy == IoStrategy::kCooperative) {
      require_input(io.max_writers >= 1,
                    "fault config: io max_writers must be >= 1 for the "
                    "cooperative strategy");
    }
  }
}

double FaultConfig::effective_checkpoint_interval() const {
  if (recovery.checkpoint_interval > 0.0) return recovery.checkpoint_interval;
  return young_daly_interval(recovery.checkpoint_cost, mtbf);
}

FaultInjector::FaultInjector(const FaultConfig& config, std::size_t machine_count)
    : config_(config) {
  config_.validate(machine_count);
  if (config_.mode == FaultMode::kStochastic) {
    util::Rng master(config_.seed);
    streams_.reserve(machine_count);
    for (std::size_t m = 0; m < machine_count; ++m) streams_.push_back(master.split());
  } else {
    trace_spans_.resize(machine_count);
    cursors_.assign(machine_count, 0);
    for (const FaultTraceEntry& entry : config_.trace) {
      trace_spans_[entry.machine].push_back(
          FaultSpan{entry.fail_time, entry.repair_time});
    }
    for (auto& spans : trace_spans_) {
      std::sort(spans.begin(), spans.end(), [](const FaultSpan& a, const FaultSpan& b) {
        return a.fail_time < b.fail_time;
      });
    }
  }
}

std::optional<FaultSpan> FaultInjector::next(std::size_t machine, double from) {
  if (config_.mode == FaultMode::kStochastic) {
    require(machine < streams_.size(), "FaultInjector::next: machine out of range");
    util::Rng& rng = streams_[machine];
    FaultSpan span;
    span.fail_time = from + rng.exponential(1.0 / config_.mtbf);
    span.repair_time = span.fail_time + rng.exponential(1.0 / config_.mttr);
    return span;
  }
  require(machine < trace_spans_.size(), "FaultInjector::next: machine out of range");
  const auto& spans = trace_spans_[machine];
  std::size_t& cursor = cursors_[machine];
  while (cursor < spans.size() && spans[cursor].fail_time < from) ++cursor;
  if (cursor >= spans.size()) return std::nullopt;
  return spans[cursor++];
}

namespace {

std::vector<FaultTraceEntry> trace_from_table(const util::CsvTable& table) {
  require_input(!table.empty(),
                "fault trace CSV: file is empty" +
                    (table.source.empty() ? "" : " (" + table.source + ")"));
  const auto& header = table.rows.front();
  require_input(header.size() >= 3,
                "fault trace CSV: expected header machine,fail_time,repair_time (" +
                    table.where(0) + ")");

  std::vector<FaultTraceEntry> entries;
  entries.reserve(table.row_count() - 1);
  for (std::size_t r = 1; r < table.row_count(); ++r) {
    const auto& row = table.rows[r];
    require_input(row.size() >= 3,
                  "fault trace CSV: too few fields at " + table.where(r));
    const auto machine = util::parse_int(row[0]);
    require_input(machine.has_value() && *machine >= 0,
                  "fault trace CSV: bad machine '" + row[0] + "' at " + table.where(r));
    const auto fail = util::parse_double(row[1]);
    require_input(fail.has_value(),
                  "fault trace CSV: bad fail_time '" + row[1] + "' at " + table.where(r));
    const auto repair = util::parse_double(row[2]);
    require_input(repair.has_value(), "fault trace CSV: bad repair_time '" + row[2] +
                                          "' at " + table.where(r));
    require_input(*fail >= 0.0,
                  "fault trace CSV: fail_time must be >= 0 at " + table.where(r));
    require_input(*repair > *fail,
                  "fault trace CSV: repair_time must be after fail_time at " +
                      table.where(r));
    entries.push_back(FaultTraceEntry{static_cast<std::size_t>(*machine), *fail, *repair,
                                      table.where(r)});
  }
  return entries;
}

}  // namespace

std::vector<FaultTraceEntry> fault_trace_from_csv_text(const std::string& text) {
  return trace_from_table(util::parse_csv(text));
}

std::vector<FaultTraceEntry> load_fault_trace_csv(const std::string& path) {
  return trace_from_table(util::read_csv_file(path));
}

}  // namespace e2c::fault
