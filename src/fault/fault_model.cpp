#include "fault/fault_model.hpp"

#include <algorithm>
#include <cmath>

#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/string_util.hpp"

namespace e2c::fault {

double RetryPolicy::delay(std::size_t retry) const {
  require(retry >= 1, "RetryPolicy::delay: retry numbers are 1-based");
  return backoff_base * std::pow(backoff_factor, static_cast<double>(retry - 1));
}

void FaultConfig::validate(std::size_t machine_count) const {
  if (!enabled) return;
  if (mode == FaultMode::kStochastic) {
    require_input(mtbf > 0.0, "fault config: mtbf must be > 0");
    require_input(mttr > 0.0, "fault config: mttr must be > 0");
  } else {
    for (const FaultTraceEntry& entry : trace) {
      require_input(entry.machine < machine_count,
                    "fault trace: machine index " + std::to_string(entry.machine) +
                        " out of range (system has " +
                        std::to_string(machine_count) + " machines)");
    }
  }
  require_input(retry.backoff_base >= 0.0,
                "fault config: retry backoff must be >= 0");
  require_input(retry.backoff_factor >= 1.0,
                "fault config: retry backoff factor must be >= 1");
}

FaultInjector::FaultInjector(const FaultConfig& config, std::size_t machine_count)
    : config_(config) {
  config_.validate(machine_count);
  if (config_.mode == FaultMode::kStochastic) {
    util::Rng master(config_.seed);
    streams_.reserve(machine_count);
    for (std::size_t m = 0; m < machine_count; ++m) streams_.push_back(master.split());
  } else {
    trace_spans_.resize(machine_count);
    cursors_.assign(machine_count, 0);
    for (const FaultTraceEntry& entry : config_.trace) {
      trace_spans_[entry.machine].push_back(
          FaultSpan{entry.fail_time, entry.repair_time});
    }
    for (auto& spans : trace_spans_) {
      std::sort(spans.begin(), spans.end(), [](const FaultSpan& a, const FaultSpan& b) {
        return a.fail_time < b.fail_time;
      });
    }
  }
}

std::optional<FaultSpan> FaultInjector::next(std::size_t machine, double from) {
  if (config_.mode == FaultMode::kStochastic) {
    require(machine < streams_.size(), "FaultInjector::next: machine out of range");
    util::Rng& rng = streams_[machine];
    FaultSpan span;
    span.fail_time = from + rng.exponential(1.0 / config_.mtbf);
    span.repair_time = span.fail_time + rng.exponential(1.0 / config_.mttr);
    return span;
  }
  require(machine < trace_spans_.size(), "FaultInjector::next: machine out of range");
  const auto& spans = trace_spans_[machine];
  std::size_t& cursor = cursors_[machine];
  while (cursor < spans.size() && spans[cursor].fail_time < from) ++cursor;
  if (cursor >= spans.size()) return std::nullopt;
  return spans[cursor++];
}

namespace {

std::vector<FaultTraceEntry> trace_from_table(const util::CsvTable& table) {
  require_input(!table.empty(),
                "fault trace CSV: file is empty" +
                    (table.source.empty() ? "" : " (" + table.source + ")"));
  const auto& header = table.rows.front();
  require_input(header.size() >= 3,
                "fault trace CSV: expected header machine,fail_time,repair_time (" +
                    table.where(0) + ")");

  std::vector<FaultTraceEntry> entries;
  entries.reserve(table.row_count() - 1);
  for (std::size_t r = 1; r < table.row_count(); ++r) {
    const auto& row = table.rows[r];
    require_input(row.size() >= 3,
                  "fault trace CSV: too few fields at " + table.where(r));
    const auto machine = util::parse_int(row[0]);
    require_input(machine.has_value() && *machine >= 0,
                  "fault trace CSV: bad machine '" + row[0] + "' at " + table.where(r));
    const auto fail = util::parse_double(row[1]);
    require_input(fail.has_value(),
                  "fault trace CSV: bad fail_time '" + row[1] + "' at " + table.where(r));
    const auto repair = util::parse_double(row[2]);
    require_input(repair.has_value(), "fault trace CSV: bad repair_time '" + row[2] +
                                          "' at " + table.where(r));
    require_input(*fail >= 0.0,
                  "fault trace CSV: fail_time must be >= 0 at " + table.where(r));
    require_input(*repair > *fail,
                  "fault trace CSV: repair_time must be after fail_time at " +
                      table.where(r));
    entries.push_back(FaultTraceEntry{static_cast<std::size_t>(*machine), *fail, *repair});
  }
  return entries;
}

}  // namespace

std::vector<FaultTraceEntry> fault_trace_from_csv_text(const std::string& text) {
  return trace_from_table(util::parse_csv(text));
}

std::vector<FaultTraceEntry> load_fault_trace_csv(const std::string& path) {
  return trace_from_table(util::read_csv_file(path));
}

}  // namespace e2c::fault
