// Unit tests for the machine model (machines/machine.hpp).
#include "machines/machine.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/engine.hpp"
#include "util/error.hpp"
#include "workload/task_state.hpp"

namespace {

using e2c::core::Engine;
using e2c::hetero::MachineTypeSpec;
using e2c::machines::kUnboundedQueue;
using e2c::machines::Machine;
using e2c::workload::TaskDef;
using e2c::workload::TaskStatus;
using e2c::workload::TaskStateSoA;

class RecordingListener final : public e2c::machines::MachineListener {
 public:
  void on_task_completed(std::size_t task, e2c::hetero::MachineId machine) override {
    completed.push_back({task, machine});
  }
  void on_slot_freed(e2c::hetero::MachineId machine) override {
    slots_freed.push_back(machine);
  }
  std::vector<std::pair<std::size_t, e2c::hetero::MachineId>> completed;
  std::vector<e2c::hetero::MachineId> slots_freed;
};

/// A task-state table of \p count rows (task id == row index, type 0,
/// arrival 0) — machines address tasks by row.
struct TaskTable {
  explicit TaskTable(std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) {
      TaskDef def;
      def.id = i;
      def.type = 0;
      def.arrival = 0.0;
      defs.push_back(def);
    }
    state.adopt(defs);
  }
  std::vector<TaskDef> defs;
  TaskStateSoA state;
};

MachineTypeSpec power_spec() { return MachineTypeSpec{"test", 10.0, 110.0}; }

TEST(Machine, RunsTasksSequentially) {
  Engine engine;
  Machine machine(engine, 0, "m1", 0, power_spec(), kUnboundedQueue);
  RecordingListener listener;
  machine.set_listener(&listener);
  TaskTable table(2);
  machine.set_task_state(&table.state);

  machine.enqueue(0, 3.0);
  machine.enqueue(1, 2.0);
  EXPECT_TRUE(machine.busy());
  EXPECT_EQ(machine.queue_length(), 1u);

  engine.run();
  EXPECT_EQ(table.state.status[0], TaskStatus::kCompleted);
  EXPECT_EQ(table.state.status[1], TaskStatus::kCompleted);
  EXPECT_DOUBLE_EQ(table.state.completion_time[0], 3.0);
  EXPECT_DOUBLE_EQ(table.state.completion_time[1], 5.0);  // waited for task 0
  EXPECT_DOUBLE_EQ(table.state.start_time[1], 3.0);
  ASSERT_EQ(listener.completed.size(), 2u);
  EXPECT_EQ(listener.completed[0].first, 0u);
}

TEST(Machine, TaskRecordUpdatedOnEnqueue) {
  Engine engine;
  Machine machine(engine, 3, "m4", 1, power_spec(), kUnboundedQueue);
  TaskTable table(1);
  machine.set_task_state(&table.state);
  machine.enqueue(0, 2.0);
  // Idle machine: task starts immediately (status running).
  EXPECT_EQ(table.state.status[0], TaskStatus::kRunning);
  EXPECT_EQ(table.state.machine[0], 3u);
  EXPECT_DOUBLE_EQ(table.state.assignment_time[0], 0.0);
  EXPECT_DOUBLE_EQ(table.state.start_time[0], 0.0);
}

TEST(Machine, QueuedTaskStatusIsMachineQueue) {
  Engine engine;
  Machine machine(engine, 0, "m1", 0, power_spec(), kUnboundedQueue);
  TaskTable table(2);
  machine.set_task_state(&table.state);
  machine.enqueue(0, 5.0);
  machine.enqueue(1, 1.0);
  EXPECT_EQ(table.state.status[1], TaskStatus::kInMachineQueue);
  EXPECT_EQ(machine.queued_task_ids(), std::vector<e2c::workload::TaskId>{1});
  EXPECT_EQ(machine.running_task_id().value(), 0u);
}

TEST(Machine, BoundedQueueCapacity) {
  Engine engine;
  Machine machine(engine, 0, "m1", 0, power_spec(), /*queue_capacity=*/1);
  TaskTable table(3);
  machine.set_task_state(&table.state);
  machine.enqueue(0, 5.0);  // starts; queue empty
  EXPECT_TRUE(machine.has_queue_space());
  machine.enqueue(1, 5.0);  // occupies the single waiting slot
  EXPECT_FALSE(machine.has_queue_space());
  EXPECT_THROW(machine.enqueue(2, 5.0), e2c::InvariantError);
}

TEST(Machine, ReadyTimeAccountsForQueue) {
  Engine engine;
  Machine machine(engine, 0, "m1", 0, power_spec(), kUnboundedQueue);
  TaskTable table(2);
  machine.set_task_state(&table.state);
  EXPECT_DOUBLE_EQ(machine.ready_time(), 0.0);  // idle
  machine.enqueue(0, 4.0);
  EXPECT_DOUBLE_EQ(machine.ready_time(), 4.0);
  machine.enqueue(1, 2.5);
  EXPECT_DOUBLE_EQ(machine.ready_time(), 6.5);
  EXPECT_DOUBLE_EQ(machine.expected_completion(1.0), 7.5);
}

TEST(Machine, RemoveRunningTaskCancelsCompletion) {
  Engine engine;
  Machine machine(engine, 0, "m1", 0, power_spec(), kUnboundedQueue);
  RecordingListener listener;
  machine.set_listener(&listener);
  TaskTable table(2);
  machine.set_task_state(&table.state);
  machine.enqueue(0, 10.0);
  machine.enqueue(1, 2.0);

  // Advance to t=4 via a control event, then drop the running task.
  (void)engine.schedule_at(4.0, e2c::core::EventPriority::kControl, "drop",
                           [&] { EXPECT_TRUE(machine.remove(0)); });
  engine.run();
  // Task 0 never completed; task 1 ran right after the drop: 4 + 2 = 6.
  EXPECT_FALSE(e2c::core::time_set(table.state.completion_time[0]));
  EXPECT_EQ(table.state.status[1], TaskStatus::kCompleted);
  EXPECT_DOUBLE_EQ(table.state.start_time[1], 4.0);
  EXPECT_DOUBLE_EQ(table.state.completion_time[1], 6.0);
  ASSERT_EQ(listener.completed.size(), 1u);
  EXPECT_EQ(listener.completed[0].first, 1u);
}

TEST(Machine, RemoveQueuedTask) {
  Engine engine;
  Machine machine(engine, 0, "m1", 0, power_spec(), kUnboundedQueue);
  TaskTable table(2);
  machine.set_task_state(&table.state);
  machine.enqueue(0, 5.0);
  machine.enqueue(1, 5.0);
  EXPECT_TRUE(machine.remove(1));
  EXPECT_EQ(machine.queue_length(), 0u);
  EXPECT_FALSE(machine.remove(1));   // already gone
  EXPECT_FALSE(machine.remove(99));  // never there
}

TEST(Machine, StatsCountCompletionsAndDrops) {
  Engine engine;
  Machine machine(engine, 0, "m1", 0, power_spec(), kUnboundedQueue);
  TaskTable table(2);
  machine.set_task_state(&table.state);
  machine.enqueue(0, 3.0);
  machine.enqueue(1, 3.0);
  (void)engine.schedule_at(4.0, e2c::core::EventPriority::kControl, "drop",
                           [&] { (void)machine.remove(1); });
  engine.run();
  const auto stats = machine.finalize_stats(engine.now());
  EXPECT_EQ(stats.tasks_completed, 1u);
  EXPECT_EQ(stats.tasks_dropped, 1u);
  // Task 0 ran 3 s; task 1 ran from 3 to 4 before the drop.
  EXPECT_DOUBLE_EQ(stats.busy_seconds, 4.0);
}

TEST(Machine, UtilizationAndEnergy) {
  Engine engine;
  Machine machine(engine, 0, "m1", 0, power_spec(), kUnboundedQueue);
  TaskTable table(1);
  machine.set_task_state(&table.state);
  machine.enqueue(0, 4.0);
  engine.run();
  const double horizon = 10.0;
  const auto stats = machine.finalize_stats(horizon);
  EXPECT_DOUBLE_EQ(stats.utilization(), 0.4);
  // 4 s busy at 110 W + 6 s idle at 10 W = 440 + 60 = 500 J.
  EXPECT_DOUBLE_EQ(machine.energy_joules(horizon), 500.0);
}

TEST(Machine, EnergyOfIdleMachine) {
  Engine engine;
  Machine machine(engine, 0, "m1", 0, power_spec(), kUnboundedQueue);
  EXPECT_DOUBLE_EQ(machine.energy_joules(100.0), 1000.0);  // all idle
}

TEST(Machine, InFlightBusyTimeCountedAtHorizon) {
  Engine engine;
  Machine machine(engine, 0, "m1", 0, power_spec(), kUnboundedQueue);
  TaskTable table(1);
  machine.set_task_state(&table.state);
  machine.enqueue(0, 10.0);
  // Don't run the engine: the task is mid-flight at t=0, horizon 4 counts
  // min(horizon, finish) - start = 4 busy seconds.
  const auto stats = machine.finalize_stats(4.0);
  EXPECT_DOUBLE_EQ(stats.busy_seconds, 4.0);
}

TEST(Machine, EnqueueValidatesExecTime) {
  Engine engine;
  Machine machine(engine, 0, "m1", 0, power_spec(), kUnboundedQueue);
  TaskTable table(1);
  machine.set_task_state(&table.state);
  EXPECT_THROW(machine.enqueue(0, 0.0), e2c::InvariantError);
  EXPECT_THROW(machine.enqueue(0, -2.0), e2c::InvariantError);
}

TEST(Machine, SlotFreedFiredWhenQueuedTaskStarts) {
  Engine engine;
  Machine machine(engine, 0, "m1", 0, power_spec(), 2);
  RecordingListener listener;
  machine.set_listener(&listener);
  TaskTable table(2);
  machine.set_task_state(&table.state);
  machine.enqueue(0, 1.0);  // starts immediately -> slot event
  machine.enqueue(1, 1.0);  // waits
  const auto initial = listener.slots_freed.size();
  engine.run();  // task 0 completes, task 1 starts -> another slot event
  EXPECT_GT(listener.slots_freed.size(), initial);
}

}  // namespace
