// Unit tests for the machine model (machines/machine.hpp).
#include "machines/machine.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/engine.hpp"
#include "util/error.hpp"

namespace {

using e2c::core::Engine;
using e2c::hetero::MachineTypeSpec;
using e2c::machines::kUnboundedQueue;
using e2c::machines::Machine;
using e2c::workload::Task;
using e2c::workload::TaskStatus;

class RecordingListener final : public e2c::machines::MachineListener {
 public:
  void on_task_completed(Task& task, e2c::hetero::MachineId machine) override {
    completed.push_back({task.id, machine});
  }
  void on_slot_freed(e2c::hetero::MachineId machine) override {
    slots_freed.push_back(machine);
  }
  std::vector<std::pair<e2c::workload::TaskId, e2c::hetero::MachineId>> completed;
  std::vector<e2c::hetero::MachineId> slots_freed;
};

Task make_task(std::uint64_t id) {
  Task task;
  task.id = id;
  task.type = 0;
  task.arrival = 0.0;
  return task;
}

MachineTypeSpec power_spec() { return MachineTypeSpec{"test", 10.0, 110.0}; }

TEST(Machine, RunsTasksSequentially) {
  Engine engine;
  Machine machine(engine, 0, "m1", 0, power_spec(), kUnboundedQueue);
  RecordingListener listener;
  machine.set_listener(&listener);

  Task t1 = make_task(1);
  Task t2 = make_task(2);
  machine.enqueue(t1, 3.0);
  machine.enqueue(t2, 2.0);
  EXPECT_TRUE(machine.busy());
  EXPECT_EQ(machine.queue_length(), 1u);

  engine.run();
  EXPECT_EQ(t1.status, TaskStatus::kCompleted);
  EXPECT_EQ(t2.status, TaskStatus::kCompleted);
  EXPECT_DOUBLE_EQ(t1.completion_time.value(), 3.0);
  EXPECT_DOUBLE_EQ(t2.completion_time.value(), 5.0);  // waited for t1
  EXPECT_DOUBLE_EQ(t2.start_time.value(), 3.0);
  ASSERT_EQ(listener.completed.size(), 2u);
  EXPECT_EQ(listener.completed[0].first, 1u);
}

TEST(Machine, TaskRecordUpdatedOnEnqueue) {
  Engine engine;
  Machine machine(engine, 3, "m4", 1, power_spec(), kUnboundedQueue);
  Task task = make_task(7);
  machine.enqueue(task, 2.0);
  // Idle machine: task starts immediately (status running).
  EXPECT_EQ(task.status, TaskStatus::kRunning);
  EXPECT_EQ(task.assigned_machine.value(), 3u);
  EXPECT_DOUBLE_EQ(task.assignment_time.value(), 0.0);
  EXPECT_DOUBLE_EQ(task.start_time.value(), 0.0);
}

TEST(Machine, QueuedTaskStatusIsMachineQueue) {
  Engine engine;
  Machine machine(engine, 0, "m1", 0, power_spec(), kUnboundedQueue);
  Task t1 = make_task(1);
  Task t2 = make_task(2);
  machine.enqueue(t1, 5.0);
  machine.enqueue(t2, 1.0);
  EXPECT_EQ(t2.status, TaskStatus::kInMachineQueue);
  EXPECT_EQ(machine.queued_task_ids(), std::vector<e2c::workload::TaskId>{2});
  EXPECT_EQ(machine.running_task_id().value(), 1u);
}

TEST(Machine, BoundedQueueCapacity) {
  Engine engine;
  Machine machine(engine, 0, "m1", 0, power_spec(), /*queue_capacity=*/1);
  Task t1 = make_task(1);
  Task t2 = make_task(2);
  Task t3 = make_task(3);
  machine.enqueue(t1, 5.0);  // starts; queue empty
  EXPECT_TRUE(machine.has_queue_space());
  machine.enqueue(t2, 5.0);  // occupies the single waiting slot
  EXPECT_FALSE(machine.has_queue_space());
  EXPECT_THROW(machine.enqueue(t3, 5.0), e2c::InvariantError);
}

TEST(Machine, ReadyTimeAccountsForQueue) {
  Engine engine;
  Machine machine(engine, 0, "m1", 0, power_spec(), kUnboundedQueue);
  EXPECT_DOUBLE_EQ(machine.ready_time(), 0.0);  // idle
  Task t1 = make_task(1);
  Task t2 = make_task(2);
  machine.enqueue(t1, 4.0);
  EXPECT_DOUBLE_EQ(machine.ready_time(), 4.0);
  machine.enqueue(t2, 2.5);
  EXPECT_DOUBLE_EQ(machine.ready_time(), 6.5);
  EXPECT_DOUBLE_EQ(machine.expected_completion(1.0), 7.5);
}

TEST(Machine, RemoveRunningTaskCancelsCompletion) {
  Engine engine;
  Machine machine(engine, 0, "m1", 0, power_spec(), kUnboundedQueue);
  RecordingListener listener;
  machine.set_listener(&listener);
  Task t1 = make_task(1);
  Task t2 = make_task(2);
  machine.enqueue(t1, 10.0);
  machine.enqueue(t2, 2.0);

  // Advance to t=4 via a control event, then drop the running task.
  (void)engine.schedule_at(4.0, e2c::core::EventPriority::kControl, "drop",
                           [&] { EXPECT_TRUE(machine.remove(1)); });
  engine.run();
  // t1 never completed; t2 ran right after the drop: 4 + 2 = 6.
  EXPECT_FALSE(t1.completion_time.has_value());
  EXPECT_EQ(t2.status, TaskStatus::kCompleted);
  EXPECT_DOUBLE_EQ(t2.start_time.value(), 4.0);
  EXPECT_DOUBLE_EQ(t2.completion_time.value(), 6.0);
  ASSERT_EQ(listener.completed.size(), 1u);
  EXPECT_EQ(listener.completed[0].first, 2u);
}

TEST(Machine, RemoveQueuedTask) {
  Engine engine;
  Machine machine(engine, 0, "m1", 0, power_spec(), kUnboundedQueue);
  Task t1 = make_task(1);
  Task t2 = make_task(2);
  machine.enqueue(t1, 5.0);
  machine.enqueue(t2, 5.0);
  EXPECT_TRUE(machine.remove(2));
  EXPECT_EQ(machine.queue_length(), 0u);
  EXPECT_FALSE(machine.remove(2));  // already gone
  EXPECT_FALSE(machine.remove(99)); // never there
}

TEST(Machine, StatsCountCompletionsAndDrops) {
  Engine engine;
  Machine machine(engine, 0, "m1", 0, power_spec(), kUnboundedQueue);
  Task t1 = make_task(1);
  Task t2 = make_task(2);
  machine.enqueue(t1, 3.0);
  machine.enqueue(t2, 3.0);
  (void)engine.schedule_at(4.0, e2c::core::EventPriority::kControl, "drop",
                           [&] { (void)machine.remove(2); });
  engine.run();
  const auto stats = machine.finalize_stats(engine.now());
  EXPECT_EQ(stats.tasks_completed, 1u);
  EXPECT_EQ(stats.tasks_dropped, 1u);
  // t1 ran 3 s; t2 ran from 3 to 4 before the drop.
  EXPECT_DOUBLE_EQ(stats.busy_seconds, 4.0);
}

TEST(Machine, UtilizationAndEnergy) {
  Engine engine;
  Machine machine(engine, 0, "m1", 0, power_spec(), kUnboundedQueue);
  Task t1 = make_task(1);
  machine.enqueue(t1, 4.0);
  engine.run();
  const double horizon = 10.0;
  const auto stats = machine.finalize_stats(horizon);
  EXPECT_DOUBLE_EQ(stats.utilization(), 0.4);
  // 4 s busy at 110 W + 6 s idle at 10 W = 440 + 60 = 500 J.
  EXPECT_DOUBLE_EQ(machine.energy_joules(horizon), 500.0);
}

TEST(Machine, EnergyOfIdleMachine) {
  Engine engine;
  Machine machine(engine, 0, "m1", 0, power_spec(), kUnboundedQueue);
  EXPECT_DOUBLE_EQ(machine.energy_joules(100.0), 1000.0);  // all idle
}

TEST(Machine, InFlightBusyTimeCountedAtHorizon) {
  Engine engine;
  Machine machine(engine, 0, "m1", 0, power_spec(), kUnboundedQueue);
  Task t1 = make_task(1);
  machine.enqueue(t1, 10.0);
  // Don't run the engine: the task is mid-flight at t=0, horizon 4 counts
  // min(horizon, finish) - start = 4 busy seconds.
  const auto stats = machine.finalize_stats(4.0);
  EXPECT_DOUBLE_EQ(stats.busy_seconds, 4.0);
}

TEST(Machine, EnqueueValidatesExecTime) {
  Engine engine;
  Machine machine(engine, 0, "m1", 0, power_spec(), kUnboundedQueue);
  Task t1 = make_task(1);
  EXPECT_THROW(machine.enqueue(t1, 0.0), e2c::InvariantError);
  EXPECT_THROW(machine.enqueue(t1, -2.0), e2c::InvariantError);
}

TEST(Machine, SlotFreedFiredWhenQueuedTaskStarts) {
  Engine engine;
  Machine machine(engine, 0, "m1", 0, power_spec(), 2);
  RecordingListener listener;
  machine.set_listener(&listener);
  Task t1 = make_task(1);
  Task t2 = make_task(2);
  machine.enqueue(t1, 1.0);  // starts immediately -> slot event
  machine.enqueue(t2, 1.0);  // waits
  const auto initial = listener.slots_freed.size();
  engine.run();  // t1 completes, t2 starts -> another slot event
  EXPECT_GT(listener.slots_freed.size(), initial);
}

}  // namespace
