// Unit tests for descriptive statistics (util/stats.hpp).
#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using e2c::util::RunningStats;

TEST(RunningStats, EmptyDefaults) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats stats;
  stats.add(5.0);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.min(), 5.0);
  EXPECT_DOUBLE_EQ(stats.max(), 5.0);
}

TEST(RunningStats, KnownMeanAndVariance) {
  RunningStats stats;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(v);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  RunningStats left;
  RunningStats right;
  RunningStats all;
  for (double v : {1.0, 2.0, 3.0}) {
    left.add(v);
    all.add(v);
  }
  for (double v : {10.0, 20.0}) {
    right.add(v);
    all.add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), 1.0);
  EXPECT_DOUBLE_EQ(left.max(), 20.0);
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats stats;
  stats.add(3.0);
  RunningStats empty;
  stats.merge(empty);
  EXPECT_EQ(stats.count(), 1u);
  empty.merge(stats);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 3.0);
}

TEST(Stats, MeanBasic) {
  EXPECT_DOUBLE_EQ(e2c::util::mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(e2c::util::mean({}), 0.0);
}

TEST(Stats, MedianOddAndEven) {
  EXPECT_DOUBLE_EQ(e2c::util::median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(e2c::util::median({4.0, 1.0, 3.0, 2.0}), 2.5);
  EXPECT_DOUBLE_EQ(e2c::util::median({}), 0.0);
  EXPECT_DOUBLE_EQ(e2c::util::median({7.0}), 7.0);
}

TEST(Stats, StddevKnown) {
  EXPECT_NEAR(e2c::util::stddev({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}),
              std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(e2c::util::stddev({5.0}), 0.0);
}

TEST(Stats, PercentileInterpolation) {
  const std::vector<double> values{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(e2c::util::percentile(values, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(e2c::util::percentile(values, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(e2c::util::percentile(values, 50.0), 25.0);
  EXPECT_DOUBLE_EQ(e2c::util::percentile(values, 25.0), 17.5);
}

TEST(Stats, StudentT95CriticalValues) {
  EXPECT_DOUBLE_EQ(e2c::util::student_t95(0), 0.0);
  EXPECT_DOUBLE_EQ(e2c::util::student_t95(1), 12.706);
  EXPECT_DOUBLE_EQ(e2c::util::student_t95(3), 3.182);
  EXPECT_DOUBLE_EQ(e2c::util::student_t95(30), 2.042);
  EXPECT_DOUBLE_EQ(e2c::util::student_t95(40), 2.021);
  EXPECT_DOUBLE_EQ(e2c::util::student_t95(60), 2.000);
  EXPECT_DOUBLE_EQ(e2c::util::student_t95(120), 1.980);
  EXPECT_DOUBLE_EQ(e2c::util::student_t95(121), 1.96);
  EXPECT_DOUBLE_EQ(e2c::util::student_t95(100000), 1.96);
  // Monotone non-increasing in df.
  for (std::size_t df = 2; df <= 130; ++df) {
    EXPECT_LE(e2c::util::student_t95(df), e2c::util::student_t95(df - 1)) << "df=" << df;
  }
}

TEST(Stats, Ci95HalfWidth) {
  // n=4 -> df=3 -> t=3.182 (not the normal z=1.96).
  EXPECT_NEAR(e2c::util::ci95_half_width({1.0, 2.0, 3.0, 2.0}),
              3.182 * e2c::util::stddev({1.0, 2.0, 3.0, 2.0}) / 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(e2c::util::ci95_half_width({1.0}), 0.0);
  // Large samples converge to the normal approximation.
  std::vector<double> big;
  for (int i = 0; i < 200; ++i) big.push_back(static_cast<double>(i % 7));
  EXPECT_NEAR(e2c::util::ci95_half_width(big),
              1.96 * e2c::util::stddev(big) / std::sqrt(200.0), 1e-12);
}

TEST(Stats, JainFairnessBounds) {
  EXPECT_DOUBLE_EQ(e2c::util::jain_fairness({5.0, 5.0, 5.0}), 1.0);
  // One active out of four -> 1/4.
  EXPECT_NEAR(e2c::util::jain_fairness({1.0, 0.0, 0.0, 0.0}), 0.25, 1e-12);
  EXPECT_DOUBLE_EQ(e2c::util::jain_fairness({}), 1.0);
  EXPECT_DOUBLE_EQ(e2c::util::jain_fairness({0.0, 0.0}), 1.0);
}

TEST(Stats, PercentImprovement) {
  EXPECT_NEAR(e2c::util::percent_improvement(7.6, 8.94).value(), 17.63, 0.01);
  EXPECT_FALSE(e2c::util::percent_improvement(0.0, 5.0).has_value());
  EXPECT_NEAR(e2c::util::percent_improvement(10.0, 5.0).value(), -50.0, 1e-12);
}

}  // namespace
