// End-to-end integration tests across modules: the student workflow
// (CSV in -> simulate -> CSV out), custom-policy plug-in, paired policy
// comparisons and the paper's expected qualitative orderings.
#include <gtest/gtest.h>

#include <cstdio>

#include "e2c.hpp"

namespace {

using e2c::hetero::EetMatrix;
using e2c::sched::Simulation;
using e2c::workload::Intensity;
using e2c::workload::Workload;

TEST(Integration, StudentCsvWorkflow) {
  // 1. Instructor ships an EET CSV; student loads it.
  const std::string eet_path = testing::TempDir() + "/e2c_it_eet.csv";
  const std::string workload_path = testing::TempDir() + "/e2c_it_workload.csv";
  const std::string report_path = testing::TempDir() + "/e2c_it_report.csv";

  e2c::exp::heterogeneous_classroom().eet.save_csv(eet_path);
  const EetMatrix eet = EetMatrix::load_csv(eet_path);
  EXPECT_EQ(eet.task_type_count(), 5u);

  // 2. Student generates a medium-intensity workload and saves it as CSV.
  const auto system = e2c::sched::make_default_system(eet, 2);
  std::vector<e2c::hetero::MachineTypeId> machine_types;
  for (const auto& machine : system.machines) machine_types.push_back(machine.type);
  const auto generator = e2c::workload::config_for_intensity(
      eet, machine_types, Intensity::kMedium, 60.0, 99);
  const Workload generated = e2c::workload::generate_workload(eet, generator);
  generated.save_csv(workload_path, eet);

  // 3. The saved trace reloads identically (round trip within CSV precision).
  const Workload reloaded = Workload::load_csv(workload_path, eet);
  ASSERT_EQ(reloaded.size(), generated.size());

  // 4. Simulate with a batch policy and save the summary report.
  Simulation simulation(system, e2c::sched::make_policy("MM"));
  simulation.load(reloaded);
  simulation.run();
  e2c::reports::save_report_csv(simulation, e2c::reports::ReportKind::kSummary,
                                report_path);

  // 5. The report parses and is self-consistent.
  const auto report = e2c::util::read_csv_file(report_path);
  EXPECT_GT(report.row_count(), 5u);
  bool found_total = false;
  for (const auto& row : report.rows) {
    if (row[0] == "total_tasks") {
      found_total = true;
      EXPECT_EQ(row[1], std::to_string(generated.size()));
    }
  }
  EXPECT_TRUE(found_total);

  std::remove(eet_path.c_str());
  std::remove(workload_path.c_str());
  std::remove(report_path.c_str());
}

// The worked "plug in your own scheduling method" flow: a round-robin policy
// registered at runtime and selected by name, exactly like a student would.
class RoundRobinPolicy final : public e2c::sched::Policy {
 public:
  [[nodiscard]] std::string name() const override { return "IT-RoundRobin"; }
  [[nodiscard]] e2c::sched::PolicyMode mode() const override {
    return e2c::sched::PolicyMode::kImmediate;
  }
  void schedule_into(e2c::sched::SchedulingContext& context,
                     std::vector<e2c::sched::Assignment>& assignments) override {
    assignments.clear();
    for (const auto* task : context.batch_queue()) {
      const std::size_t machine = next_++ % context.machines().size();
      assignments.push_back({task->id, context.machines()[machine].id});
      context.commit(*task, machine);
    }
  }

 private:
  std::size_t next_ = 0;
};

TEST(Integration, CustomPolicyPluginRoundTrip) {
  e2c::sched::PolicyRegistry::instance().register_policy(
      "IT-RoundRobin", [] { return std::make_unique<RoundRobinPolicy>(); });

  auto system = e2c::exp::heterogeneous_classroom();
  const auto machine_types = e2c::exp::machine_types_of(system);
  const auto generator = e2c::workload::config_for_intensity(
      system.eet, machine_types, Intensity::kLow, 40.0, 5);
  const Workload workload = e2c::workload::generate_workload(system.eet, generator);

  Simulation simulation(system, e2c::sched::make_policy("it-roundrobin"));
  simulation.load(workload);
  simulation.run();
  EXPECT_EQ(simulation.counters().total, workload.size());
  EXPECT_GT(simulation.counters().completed, 0u);

  // Round-robin actually rotated across all four machines.
  std::size_t machines_used = 0;
  for (std::size_t m = 0; m < simulation.machine_count(); ++m) {
    const auto stats = simulation.machine(m).finalize_stats(simulation.engine().now());
    if (stats.tasks_completed + stats.tasks_dropped > 0) ++machines_used;
  }
  EXPECT_EQ(machines_used, 4u);
}

TEST(Integration, PairedComparisonMectBeatsFcfsOnHetero) {
  // The class assignment's headline lesson: on a heterogeneous system under
  // load, completion-time-aware mapping beats FCFS. Paired workloads over
  // several replications make this robust.
  e2c::exp::ExperimentSpec spec;
  spec.system = e2c::exp::heterogeneous_classroom();
  spec.policies = {"FCFS", "MECT"};
  spec.intensities = {Intensity::kMedium};
  spec.replications = 6;
  spec.duration = 80.0;
  spec.base_seed = 11;
  const auto result = e2c::exp::run_experiment(spec, 2);
  EXPECT_GT(result.cell("MECT", Intensity::kMedium).mean_completion_percent(),
            result.cell("FCFS", Intensity::kMedium).mean_completion_percent());
}

TEST(Integration, BatchBeatsImmediateOnHeteroHighLoad) {
  // Second lesson: "batch policies outperform immediate scheduling policies
  // for heterogeneous systems" (§4), most visible under load.
  e2c::exp::ExperimentSpec spec;
  spec.system = e2c::exp::heterogeneous_classroom(2);
  spec.policies = {"FCFS", "MM"};
  spec.intensities = {Intensity::kHigh};
  spec.replications = 6;
  spec.duration = 80.0;
  spec.base_seed = 17;
  const auto result = e2c::exp::run_experiment(spec, 2);
  EXPECT_GT(result.cell("MM", Intensity::kHigh).mean_completion_percent(),
            result.cell("FCFS", Intensity::kHigh).mean_completion_percent());
}

TEST(Integration, FelareImprovesFairnessOverMinMin) {
  // FELARE's purpose: fairness across task types on heterogeneous systems.
  e2c::exp::ExperimentSpec spec;
  spec.system = e2c::exp::heterogeneous_classroom(2);
  spec.policies = {"MM", "FELARE"};
  spec.intensities = {Intensity::kHigh};
  spec.replications = 6;
  spec.duration = 80.0;
  spec.base_seed = 23;
  const auto result = e2c::exp::run_experiment(spec, 2);
  EXPECT_GE(result.cell("FELARE", Intensity::kHigh).mean_type_fairness() + 0.02,
            result.cell("MM", Intensity::kHigh).mean_type_fairness());
}

TEST(Integration, TraceCsvExportOfFullRun) {
  auto system = e2c::exp::homogeneous_classroom();
  const auto machine_types = e2c::exp::machine_types_of(system);
  const auto generator = e2c::workload::config_for_intensity(
      system.eet, machine_types, Intensity::kLow, 30.0, 3);
  const Workload workload = e2c::workload::generate_workload(system.eet, generator);

  Simulation simulation(system, e2c::sched::make_policy("MECT"));
  e2c::core::TraceRecorder trace(simulation.engine());
  simulation.load(workload);
  simulation.run();

  const auto rows = trace.to_csv_rows();
  EXPECT_GT(rows.size(), workload.size());
  // Every simulation action is one of the five event classes.
  for (std::size_t r = 1; r < rows.size(); ++r) {
    const std::string& priority = rows[r][1];
    EXPECT_TRUE(priority == "arrival" || priority == "completion" ||
                priority == "deadline" || priority == "schedule" ||
                priority == "control")
        << priority;
  }
}

TEST(Integration, ControllerDrivesFullClassScenario) {
  // GUI workflow end-to-end: build, step a bit, play to completion, reset,
  // run again; both runs agree (determinism through the controller).
  auto factory = [] {
    auto system = e2c::exp::heterogeneous_classroom();
    const auto machine_types = e2c::exp::machine_types_of(system);
    const auto generator = e2c::workload::config_for_intensity(
        system.eet, machine_types, Intensity::kMedium, 40.0, 21);
    const Workload workload = e2c::workload::generate_workload(system.eet, generator);
    auto simulation =
        std::make_unique<Simulation>(system, e2c::sched::make_policy("MSD"));
    simulation->load(workload);
    return simulation;
  };
  e2c::viz::SimulationController controller(factory);
  controller.set_sleeper([](std::chrono::duration<double>) {});
  for (int i = 0; i < 5; ++i) (void)controller.increment();
  controller.play();
  const auto first = controller.simulation().counters().completed;
  controller.reset();
  controller.run_to_completion();
  EXPECT_EQ(controller.simulation().counters().completed, first);
}

TEST(Integration, UmbrellaHeaderCompilesAndExposesEverything) {
  // e2c.hpp included above; touch one symbol from each major namespace.
  EXPECT_FALSE(e2c::sched::PolicyRegistry::instance().names().empty());
  EXPECT_EQ(e2c::edu::max_score(e2c::edu::default_quiz()), 12);
  EXPECT_EQ(e2c::edu::SurveyDataset::bundled().size(), 23u);
  EXPECT_EQ(e2c::hetero::builtin_machine_types().size(), 5u);
}

}  // namespace
