// Unit tests for the immediate policies FCFS / MEET / MECT
// (sched/immediate.hpp), exercised directly on scheduling contexts.
#include "sched/immediate.hpp"

#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace {

using e2c::hetero::EetMatrix;
using e2c::sched::Assignment;
using e2c::sched::FcfsPolicy;
using e2c::sched::MectPolicy;
using e2c::sched::MeetPolicy;
using e2c::sched::PolicyMode;
using e2c::test::make_context;
using e2c::test::queued_task;

// 2 task types x 3 machines; T1 fastest on m1 (index 1), T2 fastest on m2.
EetMatrix eet() {
  return EetMatrix({"T1", "T2"}, {"m0", "m1", "m2"}, {{5.0, 1.0, 3.0}, {4.0, 6.0, 2.0}});
}

TEST(ImmediatePolicies, ModesAndNames) {
  EXPECT_EQ(FcfsPolicy{}.mode(), PolicyMode::kImmediate);
  EXPECT_EQ(MeetPolicy{}.mode(), PolicyMode::kImmediate);
  EXPECT_EQ(MectPolicy{}.mode(), PolicyMode::kImmediate);
  EXPECT_EQ(FcfsPolicy{}.name(), "FCFS");
  EXPECT_EQ(MeetPolicy{}.name(), "MEET");
  EXPECT_EQ(MectPolicy{}.name(), "MECT");
}

TEST(Fcfs, PicksEarliestReadyMachine) {
  const EetMatrix matrix = eet();
  const auto task = queued_task(1, 0);
  auto context = make_context(matrix, {&task}, e2c::sched::kUnlimitedSlots,
                              {4.0, 2.0, 7.0});
  const auto assignments = FcfsPolicy{}.schedule(context);
  ASSERT_EQ(assignments.size(), 1u);
  EXPECT_EQ(assignments[0].machine, 1u);  // ready at 2.0
}

TEST(Fcfs, TieBreaksToLowerMachineId) {
  const EetMatrix matrix = eet();
  const auto task = queued_task(1, 0);
  auto context = make_context(matrix, {&task});
  const auto assignments = FcfsPolicy{}.schedule(context);
  ASSERT_EQ(assignments.size(), 1u);
  EXPECT_EQ(assignments[0].machine, 0u);
}

TEST(Fcfs, IgnoresExecutionTimes) {
  // m0 is slow for T1 (5.0) but becomes ready first: FCFS still picks it.
  const EetMatrix matrix = eet();
  const auto task = queued_task(1, 0);
  auto context = make_context(matrix, {&task}, e2c::sched::kUnlimitedSlots,
                              {1.0, 2.0, 2.0});
  const auto assignments = FcfsPolicy{}.schedule(context);
  EXPECT_EQ(assignments[0].machine, 0u);
}

TEST(Meet, PicksFastestMachineIgnoringLoad) {
  const EetMatrix matrix = eet();
  const auto task = queued_task(1, 0);  // T1 fastest on m1
  auto context = make_context(matrix, {&task}, e2c::sched::kUnlimitedSlots,
                              {0.0, 100.0, 0.0});  // m1 heavily loaded
  const auto assignments = MeetPolicy{}.schedule(context);
  ASSERT_EQ(assignments.size(), 1u);
  EXPECT_EQ(assignments[0].machine, 1u);  // still the EET minimizer
}

TEST(Mect, BalancesLoadAndSpeed) {
  const EetMatrix matrix = eet();
  const auto task = queued_task(1, 0);
  // m1 completes at 100+1, m2 at 0+3, m0 at 0+5 -> m2 wins.
  auto context = make_context(matrix, {&task}, e2c::sched::kUnlimitedSlots,
                              {0.0, 100.0, 0.0});
  const auto assignments = MectPolicy{}.schedule(context);
  ASSERT_EQ(assignments.size(), 1u);
  EXPECT_EQ(assignments[0].machine, 2u);
}

TEST(Mect, EqualsMeetOnIdleMachines) {
  const EetMatrix matrix = eet();
  const auto t1 = queued_task(1, 0);
  const auto t2 = queued_task(2, 1);
  for (const auto* task : {&t1, &t2}) {
    auto meet_ctx = make_context(matrix, {task});
    auto mect_ctx = make_context(matrix, {task});
    EXPECT_EQ(MeetPolicy{}.schedule(meet_ctx)[0].machine,
              MectPolicy{}.schedule(mect_ctx)[0].machine);
  }
}

TEST(ImmediatePolicies, MapEveryQueuedTaskInArrivalOrder) {
  const EetMatrix matrix = eet();
  const auto t1 = queued_task(1, 0);
  const auto t2 = queued_task(2, 0);
  const auto t3 = queued_task(3, 1);
  auto context = make_context(matrix, {&t1, &t2, &t3});
  const auto assignments = MectPolicy{}.schedule(context);
  ASSERT_EQ(assignments.size(), 3u);
  EXPECT_EQ(assignments[0].task, 1u);
  EXPECT_EQ(assignments[1].task, 2u);
  EXPECT_EQ(assignments[2].task, 3u);
}

TEST(Mect, ProjectionSpreadsConsecutiveTasks) {
  // Two T1 tasks: the first goes to m1 (EET 1). With the projection, m1's
  // ready time becomes 1.0; the second task compares m1 at 1+1=2 vs m2 at
  // 0+3 vs m0 at 0+5 and still picks m1. A third picks m1 again (2+1=3 == m2
  // 3: tie to lower id => m1). The projection is what makes this reasoning
  // possible at all within one invocation.
  const EetMatrix matrix = eet();
  const auto t1 = queued_task(1, 0);
  const auto t2 = queued_task(2, 0);
  const auto t3 = queued_task(3, 0);
  const auto t4 = queued_task(4, 0);
  auto context = make_context(matrix, {&t1, &t2, &t3, &t4});
  const auto assignments = MectPolicy{}.schedule(context);
  ASSERT_EQ(assignments.size(), 4u);
  EXPECT_EQ(assignments[0].machine, 1u);
  EXPECT_EQ(assignments[1].machine, 1u);
  EXPECT_EQ(assignments[2].machine, 1u);  // 3 == 3 tie -> lower id is m1? m1=1 < m2=2
  EXPECT_EQ(assignments[3].machine, 2u);  // m1 now 4 > m2 3
}

TEST(Meet, TieBreaksByLoadOnHomogeneousRows) {
  // All machines equal for this task type: MEET must fall back to the
  // least-loaded machine instead of herding everything onto machine 0.
  const EetMatrix homog({"T1"}, {"m0", "m1", "m2"}, {{3.0, 3.0, 3.0}});
  const auto task = queued_task(1, 0);
  auto context = make_context(homog, {&task}, e2c::sched::kUnlimitedSlots,
                              {5.0, 1.0, 9.0});
  const auto assignments = MeetPolicy{}.schedule(context);
  ASSERT_EQ(assignments.size(), 1u);
  EXPECT_EQ(assignments[0].machine, 1u);  // least loaded among the tie
}

TEST(Meet, HomogeneousStreamSpreadsLikeFcfs) {
  const EetMatrix homog({"T1"}, {"m0", "m1"}, {{3.0, 3.0}});
  const auto t1 = queued_task(1, 0);
  const auto t2 = queued_task(2, 0);
  auto meet_ctx = make_context(homog, {&t1, &t2});
  auto fcfs_ctx = make_context(homog, {&t1, &t2});
  const auto meet = MeetPolicy{}.schedule(meet_ctx);
  const auto fcfs = FcfsPolicy{}.schedule(fcfs_ctx);
  ASSERT_EQ(meet.size(), 2u);
  for (std::size_t i = 0; i < meet.size(); ++i) {
    EXPECT_EQ(meet[i].machine, fcfs[i].machine);
  }
}

TEST(ImmediatePolicies, NoSpaceAnywhereMapsNothing) {
  const EetMatrix matrix = eet();
  const auto task = queued_task(1, 0);
  auto context = make_context(matrix, {&task}, /*free_slots=*/0);
  EXPECT_TRUE(FcfsPolicy{}.schedule(context).empty());
  EXPECT_TRUE(MeetPolicy{}.schedule(context).empty());
  EXPECT_TRUE(MectPolicy{}.schedule(context).empty());
}

TEST(ImmediatePolicies, EmptyQueueMapsNothing) {
  const EetMatrix matrix = eet();
  auto context = make_context(matrix, {});
  EXPECT_TRUE(FcfsPolicy{}.schedule(context).empty());
}

}  // namespace
