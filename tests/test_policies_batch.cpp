// Unit tests for the batch policies MM / MMU / MSD (sched/batch.hpp).
#include "sched/batch.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "test_helpers.hpp"

namespace {

using e2c::hetero::EetMatrix;
using e2c::sched::MaxUrgencyPolicy;
using e2c::sched::MinMinPolicy;
using e2c::sched::PolicyMode;
using e2c::sched::SoonestDeadlinePolicy;
using e2c::test::make_context;
using e2c::test::queued_task;

// 3 task types x 2 machines.
EetMatrix eet() {
  return EetMatrix({"T1", "T2", "T3"}, {"m0", "m1"},
                   {{2.0, 8.0}, {6.0, 3.0}, {4.0, 4.0}});
}

TEST(BatchPolicies, ModesAndNames) {
  EXPECT_EQ(MinMinPolicy{}.mode(), PolicyMode::kBatch);
  EXPECT_EQ(MaxUrgencyPolicy{}.mode(), PolicyMode::kBatch);
  EXPECT_EQ(SoonestDeadlinePolicy{}.mode(), PolicyMode::kBatch);
  EXPECT_EQ(MinMinPolicy{}.name(), "MM");
  EXPECT_EQ(MaxUrgencyPolicy{}.name(), "MMU");
  EXPECT_EQ(SoonestDeadlinePolicy{}.name(), "MSD");
}

TEST(MinMin, ShortestCompletionMapsFirst) {
  const EetMatrix matrix = eet();
  const auto t1 = queued_task(1, 1);  // best 3 on m1
  const auto t2 = queued_task(2, 0);  // best 2 on m0 -> picked first
  auto context = make_context(matrix, {&t1, &t2});
  const auto assignments = MinMinPolicy{}.schedule(context);
  ASSERT_EQ(assignments.size(), 2u);
  EXPECT_EQ(assignments[0].task, 2u);
  EXPECT_EQ(assignments[0].machine, 0u);
  EXPECT_EQ(assignments[1].task, 1u);
  EXPECT_EQ(assignments[1].machine, 1u);
}

TEST(MinMin, ProjectionAffectsLaterRounds) {
  // Two T1 tasks (best m0 at 2): the second sees m0 busy until 2 and
  // compares m0 at 4 vs m1 at 8 -> still m0.
  const EetMatrix matrix = eet();
  const auto t1 = queued_task(1, 0);
  const auto t2 = queued_task(2, 0);
  auto context = make_context(matrix, {&t1, &t2});
  const auto assignments = MinMinPolicy{}.schedule(context);
  ASSERT_EQ(assignments.size(), 2u);
  EXPECT_EQ(assignments[0].machine, 0u);
  EXPECT_EQ(assignments[1].machine, 0u);
}

TEST(MaxUrgency, SmallestSlackMapsFirst) {
  const EetMatrix matrix = eet();
  // t1: best completion 3 (m1), deadline 20 -> slack 17.
  // t2: best completion 2 (m0), deadline 4  -> slack 2 (urgent).
  const auto t1 = queued_task(1, 1, /*deadline=*/20.0);
  const auto t2 = queued_task(2, 0, /*deadline=*/4.0);
  auto context = make_context(matrix, {&t1, &t2});
  const auto assignments = MaxUrgencyPolicy{}.schedule(context);
  ASSERT_EQ(assignments.size(), 2u);
  EXPECT_EQ(assignments[0].task, 2u);
}

TEST(MaxUrgency, UrgencyBeatsCompletionOrder) {
  const EetMatrix matrix = eet();
  // t1 completes sooner (2 < 3) but t2 is far more urgent.
  const auto t1 = queued_task(1, 0, /*deadline=*/100.0);
  const auto t2 = queued_task(2, 1, /*deadline=*/3.5);
  auto context = make_context(matrix, {&t1, &t2});
  const auto assignments = MaxUrgencyPolicy{}.schedule(context);
  EXPECT_EQ(assignments[0].task, 2u);
}

TEST(SoonestDeadline, EdfOrdering) {
  const EetMatrix matrix = eet();
  const auto t1 = queued_task(1, 0, /*deadline=*/50.0);
  const auto t2 = queued_task(2, 1, /*deadline=*/10.0);
  const auto t3 = queued_task(3, 2, /*deadline=*/30.0);
  auto context = make_context(matrix, {&t1, &t2, &t3});
  const auto assignments = SoonestDeadlinePolicy{}.schedule(context);
  ASSERT_EQ(assignments.size(), 3u);
  EXPECT_EQ(assignments[0].task, 2u);
  EXPECT_EQ(assignments[1].task, 3u);
  EXPECT_EQ(assignments[2].task, 1u);
}

TEST(SoonestDeadline, MachineIsCompletionMinimizer) {
  const EetMatrix matrix = eet();
  const auto t1 = queued_task(1, 1, /*deadline=*/5.0);  // T2: m1 (3) beats m0 (6)
  auto context = make_context(matrix, {&t1});
  const auto assignments = SoonestDeadlinePolicy{}.schedule(context);
  EXPECT_EQ(assignments[0].machine, 1u);
}

TEST(BatchPolicies, InfeasibleTasksAreDeferredNotMapped) {
  // Best completion of T1 is 2 (m0); a deadline of 1.0 is unmeetable, so the
  // pruning rule defers the task instead of wasting machine time on it.
  const EetMatrix matrix = eet();
  const auto doomed = queued_task(1, 0, /*deadline=*/1.0);
  const auto viable = queued_task(2, 1, /*deadline=*/50.0);
  for (auto mode : {0, 1, 2}) {
    auto context = make_context(matrix, {&doomed, &viable});
    std::vector<e2c::sched::Assignment> assignments;
    if (mode == 0) assignments = MinMinPolicy{}.schedule(context);
    if (mode == 1) assignments = MaxUrgencyPolicy{}.schedule(context);
    if (mode == 2) assignments = SoonestDeadlinePolicy{}.schedule(context);
    ASSERT_EQ(assignments.size(), 1u) << "mode " << mode;
    EXPECT_EQ(assignments[0].task, 2u) << "mode " << mode;
  }
}

TEST(MaxUrgency, DoomedTasksDoNotStarveFeasibleOnes) {
  // Without pruning, the doomed task's hugely negative slack would make it
  // the "most urgent" pick every round.
  const EetMatrix matrix = eet();
  const auto doomed = queued_task(1, 0, /*deadline=*/0.5);
  const auto t2 = queued_task(2, 1, /*deadline=*/4.0);
  const auto t3 = queued_task(3, 2, /*deadline=*/30.0);
  auto context = make_context(matrix, {&doomed, &t2, &t3});
  const auto assignments = MaxUrgencyPolicy{}.schedule(context);
  ASSERT_EQ(assignments.size(), 2u);
  EXPECT_EQ(assignments[0].task, 2u);  // tight but feasible goes first
  EXPECT_EQ(assignments[1].task, 3u);
}

TEST(BatchPolicies, RespectSlotLimits) {
  const EetMatrix matrix = eet();
  const auto t1 = queued_task(1, 0);
  const auto t2 = queued_task(2, 0);
  const auto t3 = queued_task(3, 0);
  // One slot per machine: only two of three tasks can be mapped.
  auto context = make_context(matrix, {&t1, &t2, &t3}, /*free_slots=*/1);
  const auto assignments = MinMinPolicy{}.schedule(context);
  EXPECT_EQ(assignments.size(), 2u);
}

TEST(BatchPolicies, SaturatedSystemMapsNothing) {
  const EetMatrix matrix = eet();
  const auto t1 = queued_task(1, 0);
  auto context = make_context(matrix, {&t1}, /*free_slots=*/0);
  EXPECT_TRUE(MinMinPolicy{}.schedule(context).empty());
  EXPECT_TRUE(MaxUrgencyPolicy{}.schedule(context).empty());
  EXPECT_TRUE(SoonestDeadlinePolicy{}.schedule(context).empty());
}

TEST(BatchPolicies, EveryTaskAssignedExactlyOnce) {
  const EetMatrix matrix = eet();
  std::vector<e2c::workload::TaskDef> tasks;
  for (std::uint64_t i = 0; i < 6; ++i) {
    tasks.push_back(queued_task(i, i % 3, 100.0 + static_cast<double>(i)));
  }
  std::vector<const e2c::workload::TaskDef*> queue;
  for (const auto& task : tasks) queue.push_back(&task);

  std::vector<std::unique_ptr<e2c::sched::Policy>> policies;
  policies.push_back(std::make_unique<MinMinPolicy>());
  policies.push_back(std::make_unique<MaxUrgencyPolicy>());
  policies.push_back(std::make_unique<SoonestDeadlinePolicy>());
  for (const auto& policy : policies) {
    auto context = make_context(matrix, queue);
    const auto assignments = policy->schedule(context);
    EXPECT_EQ(assignments.size(), 6u) << policy->name();
    std::set<e2c::workload::TaskId> seen;
    for (const auto& assignment : assignments) {
      EXPECT_TRUE(seen.insert(assignment.task).second) << policy->name();
    }
  }
}

}  // namespace
