// Unit tests for the pending-event calendar (core/event_queue.hpp).
#include "core/event_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <tuple>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace {

using e2c::core::EventPriority;
using e2c::core::EventQueue;

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue queue;
  (void)queue.schedule(3.0, EventPriority::kArrival, "c", {});
  (void)queue.schedule(1.0, EventPriority::kArrival, "a", {});
  (void)queue.schedule(2.0, EventPriority::kArrival, "b", {});
  EXPECT_EQ(queue.pop().label.str(), "a");
  EXPECT_EQ(queue.pop().label.str(), "b");
  EXPECT_EQ(queue.pop().label.str(), "c");
}

TEST(EventQueue, PriorityBreaksTimeTies) {
  EventQueue queue;
  (void)queue.schedule(5.0, EventPriority::kArrival, "arrival", {});
  (void)queue.schedule(5.0, EventPriority::kCompletion, "completion", {});
  (void)queue.schedule(5.0, EventPriority::kDeadline, "deadline", {});
  (void)queue.schedule(5.0, EventPriority::kSchedule, "schedule", {});
  // completion < deadline < arrival < schedule
  EXPECT_EQ(queue.pop().label.str(), "completion");
  EXPECT_EQ(queue.pop().label.str(), "deadline");
  EXPECT_EQ(queue.pop().label.str(), "arrival");
  EXPECT_EQ(queue.pop().label.str(), "schedule");
}

TEST(EventQueue, InsertionOrderBreaksFullTies) {
  EventQueue queue;
  (void)queue.schedule(1.0, EventPriority::kArrival, "first", {});
  (void)queue.schedule(1.0, EventPriority::kArrival, "second", {});
  (void)queue.schedule(1.0, EventPriority::kArrival, "third", {});
  EXPECT_EQ(queue.pop().label.str(), "first");
  EXPECT_EQ(queue.pop().label.str(), "second");
  EXPECT_EQ(queue.pop().label.str(), "third");
}

TEST(EventQueue, CancelRemovesEvent) {
  EventQueue queue;
  const auto id = queue.schedule(1.0, EventPriority::kArrival, "a", {});
  (void)queue.schedule(2.0, EventPriority::kArrival, "b", {});
  EXPECT_TRUE(queue.cancel(id));
  EXPECT_EQ(queue.size(), 1u);
  EXPECT_EQ(queue.pop().label.str(), "b");
}

TEST(EventQueue, CancelUnknownIdReturnsFalse) {
  EventQueue queue;
  EXPECT_FALSE(queue.cancel(9999));
  const auto id = queue.schedule(1.0, EventPriority::kArrival, "a", {});
  (void)queue.pop();
  EXPECT_FALSE(queue.cancel(id));  // already fired
}

TEST(EventQueue, NextTimeAndPeek) {
  EventQueue queue;
  EXPECT_FALSE(queue.next_time().has_value());
  EXPECT_FALSE(queue.peek().has_value());
  (void)queue.schedule(4.5, EventPriority::kControl, "x", {});
  EXPECT_DOUBLE_EQ(queue.next_time().value(), 4.5);
  EXPECT_EQ(queue.peek().value().label, "x");
  EXPECT_EQ(queue.size(), 1u);  // peek does not remove
}

TEST(EventQueue, PopOnEmptyThrows) {
  EventQueue queue;
  EXPECT_THROW((void)queue.pop(), e2c::InvariantError);
}

TEST(EventQueue, ClearEmptiesEverything) {
  EventQueue queue;
  const auto id = queue.schedule(1.0, EventPriority::kArrival, "a", {});
  queue.clear();
  EXPECT_TRUE(queue.empty());
  EXPECT_FALSE(queue.cancel(id));
}

TEST(EventQueue, CallbackSurvivesPop) {
  EventQueue queue;
  int fired = 0;
  (void)queue.schedule(1.0, EventPriority::kArrival, "a", [&fired] { ++fired; });
  auto popped = queue.pop();
  popped.fn();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, IdsAreUniqueAndNonZero) {
  EventQueue queue;
  std::vector<e2c::core::EventId> ids;
  for (int i = 0; i < 10; ++i) {
    ids.push_back(queue.schedule(1.0, EventPriority::kArrival, "", {}));
  }
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_NE(ids[i], e2c::core::kNoEvent);
    for (std::size_t j = i + 1; j < ids.size(); ++j) EXPECT_NE(ids[i], ids[j]);
  }
}

// Randomized differential test: a mixed schedule/cancel/pop workload must
// match a naive reference model (sorted vector) exactly, across seeds.
class EventQueueFuzzTest : public testing::TestWithParam<std::uint64_t> {};

TEST_P(EventQueueFuzzTest, MatchesReferenceModel) {
  using Key = std::tuple<double, int, std::uint64_t>;  // time, priority, seq
  e2c::util::Rng rng(GetParam());
  EventQueue queue;
  std::vector<std::pair<Key, e2c::core::EventId>> reference;
  std::uint64_t seq = 0;
  std::vector<e2c::core::EventId> live_ids;

  for (int step = 0; step < 2000; ++step) {
    const double action = rng.next_double();
    if (action < 0.55 || queue.empty()) {
      const double time = rng.uniform(0.0, 100.0);
      const auto priority = static_cast<EventPriority>(rng.uniform_int(0, 4));
      const auto id = queue.schedule(time, priority, "", {});
      reference.push_back({Key{time, static_cast<int>(priority), seq++}, id});
      live_ids.push_back(id);
    } else if (action < 0.75 && !live_ids.empty()) {
      // Cancel a random live id (may already have been popped).
      const auto index = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(live_ids.size()) - 1));
      const e2c::core::EventId id = live_ids[index];
      const bool in_reference =
          std::any_of(reference.begin(), reference.end(),
                      [id](const auto& entry) { return entry.second == id; });
      EXPECT_EQ(queue.cancel(id), in_reference);
      reference.erase(std::remove_if(reference.begin(), reference.end(),
                                     [id](const auto& entry) {
                                       return entry.second == id;
                                     }),
                      reference.end());
    } else {
      const auto expected =
          std::min_element(reference.begin(), reference.end(),
                           [](const auto& a, const auto& b) { return a.first < b.first; });
      const auto popped = queue.pop();
      ASSERT_NE(expected, reference.end());
      EXPECT_EQ(popped.id, expected->second);
      reference.erase(expected);
    }
    EXPECT_EQ(queue.size(), reference.size());
  }
  // Drain and verify the final ordering end to end.
  std::sort(reference.begin(), reference.end());
  for (const auto& [key, id] : reference) {
    EXPECT_EQ(queue.pop().id, id);
  }
  EXPECT_TRUE(queue.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventQueueFuzzTest,
                         testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

// Property test against the calendar's previous implementation: an ordered
// std::map keyed by (time, priority, sequence) — the exact structure the
// d-ary heap replaced. The heap must be observationally indistinguishable:
// same pop order, same size() after every step, same cancel() results.
class EventQueueMapModelTest : public testing::TestWithParam<std::uint64_t> {};

TEST_P(EventQueueMapModelTest, BehavesLikeOrderedMapCalendar) {
  using Key = std::tuple<double, int, std::uint64_t>;  // time, priority, seq
  e2c::util::Rng rng(GetParam());
  EventQueue queue;
  std::map<Key, e2c::core::EventId> model;
  std::map<e2c::core::EventId, Key> key_of;  // live events only
  std::uint64_t seq = 0;
  std::vector<e2c::core::EventId> issued;  // every id ever returned

  for (int step = 0; step < 4000; ++step) {
    const double action = rng.next_double();
    if (action < 0.50 || model.empty()) {
      // Times drawn from a small lattice force heavy (time, priority) ties,
      // exercising the sequence tiebreaker rather than luck.
      const double time = static_cast<double>(rng.uniform_int(0, 19)) * 0.5;
      const auto priority = static_cast<EventPriority>(rng.uniform_int(0, 4));
      const auto id = queue.schedule(time, priority, "", {});
      const Key key{time, static_cast<int>(priority), seq++};
      model.emplace(key, id);
      key_of.emplace(id, key);
      issued.push_back(id);
    } else if (action < 0.75) {
      const auto index = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(issued.size()) - 1));
      const e2c::core::EventId id = issued[index];
      const auto it = key_of.find(id);
      const bool live = it != key_of.end();
      EXPECT_EQ(queue.cancel(id), live) << "id=" << id;
      EXPECT_FALSE(queue.cancel(id)) << "double cancel must fail, id=" << id;
      if (live) {
        model.erase(it->second);
        key_of.erase(it);
      }
    } else {
      const auto expected = model.begin();
      ASSERT_NE(expected, model.end());
      const auto popped = queue.pop();
      EXPECT_EQ(popped.id, expected->second);
      EXPECT_DOUBLE_EQ(popped.time, std::get<0>(expected->first));
      EXPECT_EQ(static_cast<int>(popped.priority), std::get<1>(expected->first));
      key_of.erase(expected->second);
      model.erase(expected);
    }
    ASSERT_EQ(queue.size(), model.size());
    ASSERT_EQ(queue.empty(), model.empty());
    if (!model.empty()) {
      ASSERT_TRUE(queue.next_time().has_value());
      EXPECT_DOUBLE_EQ(*queue.next_time(), std::get<0>(model.begin()->first));
    } else {
      EXPECT_FALSE(queue.next_time().has_value());
    }
  }
  while (!model.empty()) {
    EXPECT_EQ(queue.pop().id, model.begin()->second);
    model.erase(model.begin());
  }
  EXPECT_TRUE(queue.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventQueueMapModelTest,
                         testing::Values(11u, 12u, 13u, 14u, 15u, 16u));

TEST(EventQueue, TombstoneCompactionBoundsHeapGrowth) {
  // Cancel-heavy workloads (deadline drops, replica cancels, fault drains)
  // leave tombstones in the heap. Compaction must keep the heap's physical
  // size proportional to the live count, not to the total cancel volume.
  EventQueue queue;
  std::vector<e2c::core::EventId> pinned;
  for (int i = 0; i < 8; ++i) {
    pinned.push_back(queue.schedule(1000.0, EventPriority::kControl, "pin", {}));
  }
  for (int round = 0; round < 5000; ++round) {
    const auto id = queue.schedule(static_cast<double>(round % 97), EventPriority::kArrival,
                                   "", {});
    EXPECT_TRUE(queue.cancel(id));
    EXPECT_EQ(queue.size(), pinned.size());
    // live + tombstone slack (64) + the one transiently pushed node.
    EXPECT_LE(queue.debug_heap_size(), pinned.size() + 64 + 1) << "round=" << round;
  }
  // The pinned events survive the churn in exact order.
  for (const auto id : pinned) {
    EXPECT_EQ(queue.pop().id, id);
  }
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, PriorityNames) {
  EXPECT_STREQ(e2c::core::event_priority_name(EventPriority::kCompletion), "completion");
  EXPECT_STREQ(e2c::core::event_priority_name(EventPriority::kSchedule), "schedule");
}

}  // namespace
