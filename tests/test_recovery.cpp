// Tests for the recovery strategies (fault/fault_model.hpp RecoveryConfig,
// the machines' checkpoint phases, and the simulation's replica groups):
// checkpoint/restart resumes from committed progress, replication's first
// completion wins, and the waste accounting decomposes machine wallclock into
// useful + lost + checkpoint-overhead for every way a run can end.
#include <gtest/gtest.h>

#include <vector>

#include "fault/fault_model.hpp"
#include "reports/report.hpp"
#include "sched/registry.hpp"
#include "sched/simulation.hpp"
#include "workload/workload.hpp"

namespace {

using e2c::fault::FaultConfig;
using e2c::fault::FaultMode;
using e2c::fault::FaultTraceEntry;
using e2c::fault::RecoveryStrategy;
using e2c::hetero::EetMatrix;
using e2c::sched::Simulation;
using e2c::sched::SystemConfig;
using e2c::workload::TaskDef;
using e2c::workload::TaskStatus;
using e2c::workload::Workload;

TaskDef make_task(std::uint64_t id, std::size_t type, double arrival, double deadline) {
  TaskDef task;
  task.id = id;
  task.type = type;
  task.arrival = arrival;
  task.deadline = deadline;
  return task;
}

// One machine where T1 takes exactly 10 s: long enough to cut into
// checkpoint segments and crash mid-run.
SystemConfig one_machine_system() {
  EetMatrix eet({"T1"}, {"m0"}, {{10.0}});
  return e2c::sched::make_default_system(std::move(eet));
}

SystemConfig two_machine_system() {
  EetMatrix eet({"T1", "T2"}, {"m0", "m1"}, {{4.0, 6.0}, {5.0, 2.0}});
  return e2c::sched::make_default_system(std::move(eet));
}

FaultConfig trace_faults(std::vector<FaultTraceEntry> entries) {
  FaultConfig faults;
  faults.enabled = true;
  faults.mode = FaultMode::kTrace;
  faults.trace = std::move(entries);
  return faults;
}

void expect_waste_invariant(const Simulation& simulation) {
  const auto& state = simulation.task_state();
  for (std::size_t i = 0; i < state.size(); ++i) {
    EXPECT_NEAR(state.useful_seconds[i] + state.lost_seconds[i] +
                    state.checkpoint_overhead_seconds[i],
                state.machine_seconds[i], 1e-9)
        << "task " << state.id(i) << " ("
        << e2c::workload::task_status_name(state.status[i]) << ")";
  }
}

// ---- checkpoint / restart -------------------------------------------------

TEST(CheckpointRecovery, ResumesFromLastCheckpointAfterCrash) {
  // exec 10 s, τ = 2, free checkpoints, crash at 5, repair at 7.
  // Commits land at 2 and 4; the crash loses only the 1 s since the last
  // commit. The retry (backoff 1 s) waits out the repair and resumes the
  // remaining 60% at t = 7, completing at 13 — a from-scratch resubmit
  // would finish at 17.
  SystemConfig system = one_machine_system();
  system.faults = trace_faults({{0, 5.0, 7.0}});
  system.faults.recovery.strategy = RecoveryStrategy::kCheckpoint;
  system.faults.recovery.checkpoint_interval = 2.0;
  system.faults.recovery.checkpoint_cost = 0.0;
  system.faults.recovery.restart_cost = 0.0;
  Simulation simulation(system, e2c::sched::make_policy("MECT"));
  simulation.load(Workload({make_task(0, 0, 0.0, 1e9)}));
  simulation.run();

  const auto& state = simulation.task_state();
  EXPECT_EQ(state.status[0], TaskStatus::kCompleted);
  EXPECT_EQ(state.retries[0], 1u);
  EXPECT_DOUBLE_EQ(state.completion_time[0], 13.0);
  EXPECT_DOUBLE_EQ(state.useful_seconds[0], 10.0);
  EXPECT_DOUBLE_EQ(state.lost_seconds[0], 1.0);
  EXPECT_DOUBLE_EQ(state.checkpoint_overhead_seconds[0], 0.0);
  EXPECT_DOUBLE_EQ(state.machine_seconds[0], 11.0);
  // Two commits per run: t = 2, 4 before the crash; t = 9, 11 after.
  ASSERT_TRUE(state.has_checkpoint_column());
  ASSERT_EQ(state.checkpoint_times[0].size(), 4u);
  EXPECT_DOUBLE_EQ(state.checkpoint_times[0][0], 2.0);
  EXPECT_DOUBLE_EQ(state.checkpoint_times[0][1], 4.0);
  EXPECT_DOUBLE_EQ(state.checkpoint_times[0][2], 9.0);
  EXPECT_DOUBLE_EQ(state.checkpoint_times[0][3], 11.0);
  EXPECT_EQ(simulation.checkpoints_taken(), 4u);
  EXPECT_DOUBLE_EQ(simulation.lost_work_seconds(), 1.0);
  expect_waste_invariant(simulation);
}

TEST(CheckpointRecovery, ChargesWriteAndRestartCosts) {
  // τ = 3, C = 0.5, R = 1. One commit (write 3..3.5) lands before the crash
  // at 5; the 1.5 s since is lost. The restart at 7 reloads for 1 s, commits
  // twice more and finishes at 16:
  //   useful 10 + lost 1.5 + overhead (0.5·3 writes + 1 restart) = 14
  // which is exactly the 5 + 9 s the machine spent on the task.
  SystemConfig system = one_machine_system();
  system.faults = trace_faults({{0, 5.0, 7.0}});
  system.faults.recovery.strategy = RecoveryStrategy::kCheckpoint;
  system.faults.recovery.checkpoint_interval = 3.0;
  system.faults.recovery.checkpoint_cost = 0.5;
  system.faults.recovery.restart_cost = 1.0;
  Simulation simulation(system, e2c::sched::make_policy("MECT"));
  simulation.load(Workload({make_task(0, 0, 0.0, 1e9)}));
  simulation.run();

  const auto& state = simulation.task_state();
  EXPECT_EQ(state.status[0], TaskStatus::kCompleted);
  EXPECT_NEAR(state.completion_time[0], 16.0, 1e-9);
  EXPECT_NEAR(state.useful_seconds[0], 10.0, 1e-9);
  EXPECT_NEAR(state.lost_seconds[0], 1.5, 1e-9);
  EXPECT_NEAR(state.checkpoint_overhead_seconds[0], 2.5, 1e-9);
  EXPECT_NEAR(state.machine_seconds[0], 14.0, 1e-9);
  EXPECT_EQ(simulation.checkpoints_taken(), 3u);
  expect_waste_invariant(simulation);
}

TEST(CheckpointRecovery, RestartNeverResurrectsPastDeadline) {
  // Same crash/restart as above (free checkpoints) but the deadline at 8
  // arrives mid-restart-run; committed progress does not buy an extension.
  SystemConfig system = one_machine_system();
  system.faults = trace_faults({{0, 5.0, 7.0}});
  system.faults.recovery.strategy = RecoveryStrategy::kCheckpoint;
  system.faults.recovery.checkpoint_interval = 2.0;
  system.faults.recovery.checkpoint_cost = 0.0;
  system.faults.recovery.restart_cost = 0.0;
  Simulation simulation(system, e2c::sched::make_policy("MECT"));
  simulation.load(Workload({make_task(0, 0, 0.0, 8.0)}));
  simulation.run();

  const auto& state = simulation.task_state();
  EXPECT_EQ(state.status[0], TaskStatus::kDropped);
  EXPECT_DOUBLE_EQ(state.missed_time[0], 8.0);
  EXPECT_GT(state.completed_fraction[0], 0.0);  // it had checkpointed progress...
  EXPECT_LT(state.completed_fraction[0], 1.0);  // ...but never completed
  EXPECT_EQ(simulation.counters().completed, 0u);
  EXPECT_EQ(simulation.counters().dropped, 1u);
  EXPECT_TRUE(simulation.finished());
  expect_waste_invariant(simulation);
}

TEST(CheckpointRecovery, ResumeOnDifferentMachineUsesItsOwnSpeed) {
  // Progress travels as a *fraction*: T1 checkpoints 50% on m0 (eet 4) before
  // the crash, then finishes the remaining 50% on m1 at m1's speed (eet 6).
  SystemConfig system = two_machine_system();
  system.faults = trace_faults({{0, 2.0, 1000.0}});
  system.faults.recovery.strategy = RecoveryStrategy::kCheckpoint;
  system.faults.recovery.checkpoint_interval = 1.0;
  system.faults.recovery.checkpoint_cost = 0.0;
  system.faults.recovery.restart_cost = 0.0;
  Simulation simulation(system, e2c::sched::make_policy("MECT"));
  simulation.load(Workload({make_task(0, 0, 0.0, 1e9)}));
  simulation.run();

  const auto& state = simulation.task_state();
  EXPECT_EQ(state.status[0], TaskStatus::kCompleted);
  EXPECT_EQ(state.machine[0], 1u);
  // Crash at 2 with commits at 1 and 2: fraction 2/4 = 0.5. Retry at 3 maps
  // to m1; the remaining half of T1 there is 0.5 · 6 = 3 s -> done at 6.
  EXPECT_DOUBLE_EQ(state.completion_time[0], 6.0);
  EXPECT_DOUBLE_EQ(state.lost_seconds[0], 0.0);
  expect_waste_invariant(simulation);
}

// ---- replication ----------------------------------------------------------

TEST(ReplicateRecovery, FirstCompletionWinsAndCancelsSiblings) {
  SystemConfig system = two_machine_system();
  system.faults = trace_faults({});  // enabled, but nothing ever crashes
  system.faults.recovery.strategy = RecoveryStrategy::kReplicate;
  system.faults.recovery.replicas = 2;
  Simulation simulation(system, e2c::sched::make_policy("MECT"));
  simulation.load(Workload({make_task(0, 0, 0.0, 1e9)}));
  simulation.run();

  // The workload expanded to primary + clone on distinct machines; the copy
  // on m0 (eet 4) beats the one on m1 (eet 6).
  const auto& state = simulation.task_state();
  ASSERT_EQ(state.size(), 2u);
  ASSERT_TRUE(state.has_replica_column());
  EXPECT_EQ(state.replica_of[0], e2c::workload::kNoTaskId);
  EXPECT_EQ(state.replica_of[1], 0u);

  EXPECT_EQ(simulation.counters().total, 1u);  // one outcome per submitted task
  EXPECT_EQ(simulation.counters().completed, 1u);
  EXPECT_EQ(simulation.counters().replicas_cancelled, 1u);
  const std::size_t winner = state.status[0] == TaskStatus::kCompleted ? 0 : 1;
  const std::size_t loser = 1 - winner;
  EXPECT_EQ(state.status[winner], TaskStatus::kCompleted);
  EXPECT_DOUBLE_EQ(state.completion_time[winner], 4.0);
  EXPECT_EQ(state.status[loser], TaskStatus::kReplicaCancelled);
  EXPECT_DOUBLE_EQ(state.missed_time[loser], 4.0);
  // The loser ran on the other machine for the full 4 s — charged as waste.
  EXPECT_DOUBLE_EQ(simulation.counters().cancelled_replica_seconds, 4.0);
  // The cancel frees the loser's machine slot.
  for (std::size_t m = 0; m < simulation.machine_count(); ++m) {
    EXPECT_FALSE(simulation.machine(m).busy());
    EXPECT_EQ(simulation.machine(m).queue_length(), 0u);
  }
  EXPECT_TRUE(simulation.finished());
  expect_waste_invariant(simulation);
}

TEST(ReplicateRecovery, GroupFailureCountsOnce) {
  // Both machines crash at t = 1 and stay down; no retries. Both copies fail,
  // but the group yields exactly one outcome.
  SystemConfig system = two_machine_system();
  system.faults = trace_faults({{0, 1.0, 1000.0}, {1, 1.0, 1000.0}});
  system.faults.retry.max_retries = 0;
  system.faults.recovery.strategy = RecoveryStrategy::kReplicate;
  system.faults.recovery.replicas = 2;
  Simulation simulation(system, e2c::sched::make_policy("MECT"));
  simulation.load(Workload({make_task(0, 0, 0.0, 1e9)}));
  simulation.run();

  EXPECT_EQ(simulation.counters().total, 1u);
  EXPECT_EQ(simulation.counters().failed, 1u);
  EXPECT_EQ(simulation.counters().completed, 0u);
  EXPECT_EQ(simulation.counters().replicas_cancelled, 0u);
  for (const TaskStatus status : simulation.task_state().status) {
    EXPECT_EQ(status, TaskStatus::kFailed);
  }
  EXPECT_TRUE(simulation.finished());
  expect_waste_invariant(simulation);
}

TEST(ReplicateRecovery, ReplicaSurvivesTheCrashThatKillsThePrimary) {
  // m0 (the faster pick, so the primary lands there) crashes at 2 and stays
  // down; the clone on m1 rides it out and completes at 6. Replication turns
  // what resubmit would recover slowly into an on-time completion.
  SystemConfig system = two_machine_system();
  system.faults = trace_faults({{0, 2.0, 1000.0}});
  system.faults.retry.max_retries = 0;  // the aborted primary is out
  system.faults.recovery.strategy = RecoveryStrategy::kReplicate;
  system.faults.recovery.replicas = 2;
  Simulation simulation(system, e2c::sched::make_policy("MECT"));
  simulation.load(Workload({make_task(0, 0, 0.0, 1e9)}));
  simulation.run();

  EXPECT_EQ(simulation.counters().total, 1u);
  EXPECT_EQ(simulation.counters().completed, 1u);
  EXPECT_EQ(simulation.counters().failed, 0u);  // the group completed
  bool completed_on_m1 = false;
  const auto& state = simulation.task_state();
  for (std::size_t i = 0; i < state.size(); ++i) {
    if (state.status[i] == TaskStatus::kCompleted) {
      completed_on_m1 = state.machine[i] == 1u;
      EXPECT_DOUBLE_EQ(state.completion_time[i], 6.0);
    }
  }
  EXPECT_TRUE(completed_on_m1);
  expect_waste_invariant(simulation);
}

// ---- determinism and stochastic invariants --------------------------------

std::vector<std::vector<std::string>> stochastic_run(RecoveryStrategy strategy) {
  SystemConfig system = two_machine_system();
  system.faults.enabled = true;
  system.faults.mtbf = 12.0;
  system.faults.mttr = 3.0;
  system.faults.seed = 77;
  system.faults.recovery.strategy = strategy;
  system.faults.recovery.checkpoint_interval = 1.0;
  system.faults.recovery.checkpoint_cost = 0.25;
  system.faults.recovery.restart_cost = 0.25;
  system.faults.recovery.replicas = 2;
  Simulation simulation(system, e2c::sched::make_policy("MECT"));
  std::vector<TaskDef> tasks;
  for (std::uint64_t i = 0; i < 30; ++i) {
    tasks.push_back(make_task(i, i % 2, static_cast<double>(i) * 0.6,
                              static_cast<double>(i) * 0.6 + 20.0));
  }
  simulation.load(Workload(std::move(tasks)));
  simulation.run();
  return e2c::reports::task_report(simulation);
}

TEST(RecoveryDeterminism, EveryStrategyIsBitIdenticalUnderSeed) {
  for (const RecoveryStrategy strategy :
       {RecoveryStrategy::kResubmit, RecoveryStrategy::kCheckpoint,
        RecoveryStrategy::kReplicate}) {
    EXPECT_EQ(stochastic_run(strategy), stochastic_run(strategy))
        << e2c::fault::recovery_strategy_name(strategy);
  }
}

TEST(RecoveryWaste, InvariantHoldsUnderStochasticChurn) {
  // Low MTBF means plenty of crashes, retries, checkpoints, deadline drops
  // and replica cancels — the decomposition must hold for every task record
  // no matter how its run ended.
  for (const RecoveryStrategy strategy :
       {RecoveryStrategy::kResubmit, RecoveryStrategy::kCheckpoint,
        RecoveryStrategy::kReplicate}) {
    SystemConfig system = two_machine_system();
    system.faults.enabled = true;
    system.faults.mtbf = 8.0;
    system.faults.mttr = 2.0;
    system.faults.seed = 5;
    system.faults.recovery.strategy = strategy;
    system.faults.recovery.checkpoint_interval = 0.75;
    system.faults.recovery.checkpoint_cost = 0.1;
    system.faults.recovery.restart_cost = 0.2;
    system.faults.recovery.replicas = 2;
    Simulation simulation(system, e2c::sched::make_policy("MM"));
    std::vector<TaskDef> tasks;
    for (std::uint64_t i = 0; i < 40; ++i) {
      tasks.push_back(make_task(i, i % 2, static_cast<double>(i) * 0.5,
                                static_cast<double>(i) * 0.5 + 15.0));
    }
    simulation.load(Workload(std::move(tasks)));
    simulation.run();
    EXPECT_TRUE(simulation.finished())
        << e2c::fault::recovery_strategy_name(strategy);
    const auto& counters = simulation.counters();
    EXPECT_EQ(counters.completed + counters.cancelled + counters.dropped +
                  counters.failed,
              counters.total)
        << e2c::fault::recovery_strategy_name(strategy);
    expect_waste_invariant(simulation);
  }
}

TEST(RecoveryWaste, ResubmitMatchesPriorBehaviourExactly) {
  // With the default resubmit strategy the schedule must be byte-for-byte
  // what it was before recovery strategies existed: same completions, and
  // the whole aborted prefix shows up as lost work.
  SystemConfig system = two_machine_system();
  system.faults = trace_faults({{0, 2.0, 100.0}});
  Simulation simulation(system, e2c::sched::make_policy("MECT"));
  simulation.load(Workload({make_task(0, 0, 0.0, 1e9)}));
  simulation.run();
  const auto& state = simulation.task_state();
  EXPECT_EQ(state.status[0], TaskStatus::kCompleted);
  EXPECT_DOUBLE_EQ(state.completion_time[0], 9.0);  // as in test_fault.cpp
  EXPECT_DOUBLE_EQ(state.lost_seconds[0], 2.0);     // 2 s burned on m0
  EXPECT_DOUBLE_EQ(state.useful_seconds[0], 6.0);   // full T1-on-m1 run
  EXPECT_DOUBLE_EQ(state.checkpoint_overhead_seconds[0], 0.0);
  EXPECT_EQ(simulation.checkpoints_taken(), 0u);
  expect_waste_invariant(simulation);
}

}  // namespace
