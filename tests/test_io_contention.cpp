// Tests for the shared checkpoint-I/O channel (fault/io_channel.hpp): fair-
// share bandwidth arbitration, cooperative admission, transfer cancellation,
// the uncontended path's equivalence to the fixed-cost model, the Daly
// closed-form waste validation, and the waste invariant under multi-tenant
// contention.
#include "fault/io_channel.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "exp/tenants.hpp"
#include "fault/fault_model.hpp"
#include "sched/registry.hpp"
#include "sched/simulation.hpp"
#include "workload/workload.hpp"

namespace {

using e2c::core::Engine;
using e2c::core::EventPriority;
using e2c::fault::FaultConfig;
using e2c::fault::FaultMode;
using e2c::fault::FaultTraceEntry;
using e2c::fault::IoChannel;
using e2c::fault::IoConfig;
using e2c::fault::IoStrategy;
using e2c::fault::RecoveryStrategy;
using e2c::hetero::EetMatrix;
using e2c::sched::Simulation;
using e2c::sched::SystemConfig;
using e2c::workload::TaskDef;
using e2c::workload::TaskStatus;
using e2c::workload::Workload;

IoConfig io_config(double bandwidth, double checkpoint_bytes, double restart_bytes,
                   IoStrategy strategy = IoStrategy::kSelfish,
                   std::size_t max_writers = 1) {
  IoConfig config;
  config.enabled = true;
  config.bandwidth = bandwidth;
  config.checkpoint_bytes = checkpoint_bytes;
  config.restart_bytes = restart_bytes;
  config.strategy = strategy;
  config.max_writers = max_writers;
  return config;
}

TaskDef make_task(std::uint64_t id, std::size_t type, double arrival, double deadline) {
  TaskDef task;
  task.id = id;
  task.type = type;
  task.arrival = arrival;
  task.deadline = deadline;
  return task;
}

void expect_waste_invariant(const Simulation& simulation) {
  const auto& state = simulation.task_state();
  for (std::size_t i = 0; i < state.size(); ++i) {
    EXPECT_NEAR(state.useful_seconds[i] + state.lost_seconds[i] +
                    state.checkpoint_overhead_seconds[i],
                state.machine_seconds[i], 1e-9)
        << "task " << state.id(i) << " ("
        << e2c::workload::task_status_name(state.status[i]) << ")";
  }
}

// ---- channel unit tests ---------------------------------------------------

TEST(IoChannel, SoloTransferTakesBytesOverBandwidth) {
  Engine engine;
  IoChannel channel(engine, io_config(10.0, 100.0, 50.0), 0.5, 0.5);
  EXPECT_DOUBLE_EQ(channel.uncontended_write_seconds(), 10.0);
  EXPECT_DOUBLE_EQ(channel.uncontended_read_seconds(), 5.0);
  double done_at = -1.0;
  (void)channel.begin_checkpoint_write(1, "m0", [&] { done_at = engine.now(); });
  engine.run();
  EXPECT_DOUBLE_EQ(done_at, 10.0);
  EXPECT_EQ(channel.writes_completed(), 1u);
  EXPECT_EQ(channel.peak_concurrent(), 1u);
}

TEST(IoChannel, ConcurrentTransfersFairShareBandwidth) {
  // Two 100-byte writes on a 10 B/s channel: each progresses at 5 B/s, so
  // both take 20 s instead of 10.
  Engine engine;
  IoChannel channel(engine, io_config(10.0, 100.0, 0.0), 0.5, 0.0);
  std::vector<double> done;
  (void)channel.begin_checkpoint_write(1, "m0", [&] { done.push_back(engine.now()); });
  (void)channel.begin_checkpoint_write(2, "m1", [&] { done.push_back(engine.now()); });
  engine.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_DOUBLE_EQ(done[0], 20.0);
  EXPECT_DOUBLE_EQ(done[1], 20.0);
  EXPECT_EQ(channel.peak_concurrent(), 2u);
}

TEST(IoChannel, LateJoinerStretchesTheEarlierTransfer) {
  // A starts at 0 (solo finish would be 10). B joins at 5: A's remaining 50
  // bytes now move at 5 B/s -> A finishes at 15; B's 100 bytes get 5 B/s
  // until 15 (50 bytes) then the full 10 B/s -> B finishes at 20.
  Engine engine;
  IoChannel channel(engine, io_config(10.0, 100.0, 0.0), 0.5, 0.0);
  double a_done = -1.0, b_done = -1.0;
  (void)channel.begin_checkpoint_write(1, "m0", [&] { a_done = engine.now(); });
  engine.schedule_at(5.0, EventPriority::kControl, "start b", [&] {
    (void)channel.begin_checkpoint_write(2, "m1", [&] { b_done = engine.now(); });
  });
  engine.run();
  EXPECT_DOUBLE_EQ(a_done, 15.0);
  EXPECT_DOUBLE_EQ(b_done, 20.0);
}

TEST(IoChannel, CooperativeDefersExcessWriters) {
  // max_writers = 1: the second write waits its turn instead of stretching
  // the first, so the writes complete back to back at 10 and 20.
  Engine engine;
  IoChannel channel(engine,
                    io_config(10.0, 100.0, 0.0, IoStrategy::kCooperative, 1), 0.5,
                    0.0);
  double a_done = -1.0, b_done = -1.0;
  (void)channel.begin_checkpoint_write(1, "m0", [&] { a_done = engine.now(); });
  (void)channel.begin_checkpoint_write(2, "m1", [&] { b_done = engine.now(); });
  EXPECT_EQ(channel.active_count(), 1u);
  EXPECT_EQ(channel.waiting_count(), 1u);
  engine.run();
  EXPECT_DOUBLE_EQ(a_done, 10.0);
  EXPECT_DOUBLE_EQ(b_done, 20.0);
  EXPECT_EQ(channel.peak_concurrent(), 1u);
}

TEST(IoChannel, CooperativeNeverDefersRestartReads) {
  // A write holds the only writer slot; a restart read is still admitted
  // immediately and fair-shares with it.
  Engine engine;
  IoChannel channel(engine,
                    io_config(10.0, 100.0, 100.0, IoStrategy::kCooperative, 1), 0.5,
                    0.5);
  double read_done = -1.0;
  (void)channel.begin_checkpoint_write(1, "m0", [] {});
  (void)channel.begin_restart_read(2, "m1", [&] { read_done = engine.now(); });
  EXPECT_EQ(channel.active_count(), 2u);
  EXPECT_EQ(channel.waiting_count(), 0u);
  engine.run();
  EXPECT_DOUBLE_EQ(read_done, 20.0);
}

TEST(IoChannel, CancelReleasesBandwidthAndSlots) {
  // Two concurrent writes; cancelling one at t = 5 lets the survivor run at
  // full bandwidth: 75 bytes left at 10 B/s -> done at 12.5, not 20.
  Engine engine;
  IoChannel channel(engine, io_config(10.0, 100.0, 0.0), 0.5, 0.0);
  double a_done = -1.0;
  bool b_fired = false;
  (void)channel.begin_checkpoint_write(1, "m0", [&] { a_done = engine.now(); });
  const auto b = channel.begin_checkpoint_write(2, "m1", [&] { b_fired = true; });
  engine.schedule_at(5.0, EventPriority::kControl, "cancel b",
                     [&] { EXPECT_TRUE(channel.cancel(b)); });
  engine.run();
  EXPECT_DOUBLE_EQ(a_done, 12.5);
  EXPECT_FALSE(b_fired);
  EXPECT_FALSE(channel.cancel(b));  // already gone
  EXPECT_EQ(channel.writes_completed(), 1u);
}

TEST(IoChannel, CancellingAWriterAdmitsTheNextWaiter) {
  Engine engine;
  IoChannel channel(engine,
                    io_config(10.0, 100.0, 0.0, IoStrategy::kCooperative, 1), 0.5,
                    0.0);
  double b_done = -1.0;
  const auto a = channel.begin_checkpoint_write(1, "m0", [] {});
  (void)channel.begin_checkpoint_write(2, "m1", [&] { b_done = engine.now(); });
  EXPECT_EQ(channel.waiting_count(), 1u);
  engine.schedule_at(4.0, EventPriority::kControl, "cancel a",
                     [&] { EXPECT_TRUE(channel.cancel(a)); });
  engine.run();
  // B is admitted at 4 and writes its 100 bytes solo -> done at 14.
  EXPECT_DOUBLE_EQ(b_done, 14.0);
}

// ---- uncontended path == fixed-cost path ----------------------------------

TEST(IoContention, UncontendedChannelMatchesFixedCostRun) {
  // The ChargesWriteAndRestartCosts scenario from test_recovery, with the
  // channel enabled on a single machine (never concurrent): derived transfer
  // sizes make an uncontended write take exactly C and a read exactly R, so
  // every task record matches the fixed-cost model.
  EetMatrix eet({"T1"}, {"m0"}, {{10.0}});
  SystemConfig system = e2c::sched::make_default_system(std::move(eet));
  system.faults.enabled = true;
  system.faults.mode = FaultMode::kTrace;
  system.faults.trace = {{0, 5.0, 7.0}};
  system.faults.recovery.strategy = RecoveryStrategy::kCheckpoint;
  system.faults.recovery.checkpoint_interval = 3.0;
  system.faults.recovery.checkpoint_cost = 0.5;
  system.faults.recovery.restart_cost = 1.0;
  system.faults.io = io_config(8.0, 0.0, 0.0);  // bytes derive cost x bandwidth
  Simulation simulation(system, e2c::sched::make_policy("MECT"));
  simulation.load(Workload({make_task(0, 0, 0.0, 1e9)}));
  simulation.run();

  const auto& state = simulation.task_state();
  EXPECT_EQ(state.status[0], TaskStatus::kCompleted);
  EXPECT_NEAR(state.completion_time[0], 16.0, 1e-9);
  EXPECT_NEAR(state.useful_seconds[0], 10.0, 1e-9);
  EXPECT_NEAR(state.lost_seconds[0], 1.5, 1e-9);
  EXPECT_NEAR(state.checkpoint_overhead_seconds[0], 2.5, 1e-9);
  EXPECT_NEAR(state.machine_seconds[0], 14.0, 1e-9);
  ASSERT_NE(simulation.io_channel(), nullptr);
  EXPECT_EQ(simulation.io_channel()->peak_concurrent(), 1u);
  EXPECT_EQ(simulation.io_channel()->reads_completed(), 1u);
  expect_waste_invariant(simulation);
}

// ---- Daly closed-form validation ------------------------------------------

TEST(IoContention, DalyWasteMatchesClosedFormAcrossMtbfSweep) {
  // One machine, Young/Daly auto-τ, R = 0, channel enabled but structurally
  // uncontended (a single machine writes alone). Daly's first-order waste
  // fraction is C/τ + τ/(2M) = √(2C/M) at τ = √(2CM); the measured
  // (lost + overhead) / machine-seconds must land within 25% of it. Tasks
  // are long (500 s) relative to every τ in the sweep, as the closed form
  // assumes.
  for (const double mtbf : {50.0, 100.0, 200.0}) {
    EetMatrix eet({"T1"}, {"m0"}, {{500.0}});
    SystemConfig system = e2c::sched::make_default_system(std::move(eet));
    system.faults.enabled = true;
    system.faults.mtbf = mtbf;
    system.faults.mttr = 0.5;
    system.faults.seed = 1234;
    system.faults.retry.max_retries = 1000;
    system.faults.recovery.strategy = RecoveryStrategy::kCheckpoint;
    system.faults.recovery.checkpoint_interval = 0.0;  // Young/Daly
    system.faults.recovery.checkpoint_cost = 0.5;
    system.faults.recovery.restart_cost = 0.0;
    system.faults.io = io_config(16.0, 0.0, 0.0);
    Simulation simulation(system, e2c::sched::make_policy("MECT"));
    std::vector<TaskDef> tasks;
    for (std::uint64_t i = 0; i < 6; ++i) {
      tasks.push_back(make_task(i, 0, 0.0, 1e12));
    }
    simulation.load(Workload(std::move(tasks)));
    simulation.run();

    double lost = 0.0, overhead = 0.0, machine_seconds = 0.0;
    const auto& state = simulation.task_state();
    for (std::size_t i = 0; i < state.size(); ++i) {
      lost += state.lost_seconds[i];
      overhead += state.checkpoint_overhead_seconds[i];
      machine_seconds += state.machine_seconds[i];
    }
    ASSERT_GT(machine_seconds, 2000.0);
    const double measured = (lost + overhead) / machine_seconds;
    const double predicted = std::sqrt(2.0 * 0.5 / mtbf);
    EXPECT_NEAR(measured, predicted, 0.25 * predicted)
        << "mtbf=" << mtbf << " measured=" << measured
        << " predicted=" << predicted;
    expect_waste_invariant(simulation);
  }
}

// ---- contention ------------------------------------------------------------

// Three machines, three tasks, synchronized checkpoint cadence, channel sized
// so every simultaneous write saturates it.
SystemConfig contended_system(IoStrategy strategy) {
  EetMatrix eet({"T1"}, {"m0", "m1", "m2"}, {{10.0, 10.0, 10.0}});
  SystemConfig system = e2c::sched::make_default_system(std::move(eet));
  system.faults.enabled = true;
  system.faults.mode = FaultMode::kTrace;
  system.faults.trace = {};  // no crashes: isolate the overhead term
  system.faults.recovery.strategy = RecoveryStrategy::kCheckpoint;
  system.faults.recovery.checkpoint_interval = 2.0;
  system.faults.recovery.checkpoint_cost = 0.5;
  system.faults.recovery.restart_cost = 0.5;
  system.faults.io = io_config(8.0, 0.0, 0.0, strategy, 1);
  return system;
}

double total_waste(const Simulation& simulation) {
  double waste = 0.0;
  const auto& state = simulation.task_state();
  for (std::size_t i = 0; i < state.size(); ++i) {
    waste += state.lost_seconds[i] + state.checkpoint_overhead_seconds[i];
  }
  return waste;
}

TEST(IoContention, SelfishWritersStretchEachOther) {
  // All three machines hit their τ = 2 checkpoint together; under selfish
  // fair-sharing each 0.5 s write takes 1.5 s, so the first checkpoint
  // commits at 3.5, not 2.5.
  SystemConfig system = contended_system(IoStrategy::kSelfish);
  Simulation simulation(system, e2c::sched::make_policy("MECT"));
  simulation.load(Workload({make_task(0, 0, 0.0, 1e9), make_task(1, 0, 0.0, 1e9),
                            make_task(2, 0, 0.0, 1e9)}));
  simulation.run();
  const auto& state = simulation.task_state();
  ASSERT_TRUE(state.has_checkpoint_column());
  for (std::size_t i = 0; i < state.size(); ++i) {
    EXPECT_EQ(state.status[i], TaskStatus::kCompleted);
    ASSERT_FALSE(state.checkpoint_times[i].empty());
    EXPECT_NEAR(state.checkpoint_times[i].front(), 3.5, 1e-9);
  }
  ASSERT_NE(simulation.io_channel(), nullptr);
  EXPECT_EQ(simulation.io_channel()->peak_concurrent(), 3u);
  expect_waste_invariant(simulation);
}

TEST(IoContention, CooperativeStrictlyBeatsSelfishAtSaturation) {
  // Selfish: each synchronized round costs 3 x 1.5 = 4.5 machine-seconds of
  // overhead. Cooperative (one writer at a time): 0.5 + 1.0 + 1.5 = 3.0 for
  // the first round, and the stagger decorrelates later rounds further.
  SystemConfig selfish = contended_system(IoStrategy::kSelfish);
  Simulation selfish_run(selfish, e2c::sched::make_policy("MECT"));
  selfish_run.load(Workload({make_task(0, 0, 0.0, 1e9), make_task(1, 0, 0.0, 1e9),
                             make_task(2, 0, 0.0, 1e9)}));
  selfish_run.run();

  SystemConfig cooperative = contended_system(IoStrategy::kCooperative);
  Simulation cooperative_run(cooperative, e2c::sched::make_policy("MECT"));
  cooperative_run.load(Workload({make_task(0, 0, 0.0, 1e9),
                                 make_task(1, 0, 0.0, 1e9),
                                 make_task(2, 0, 0.0, 1e9)}));
  cooperative_run.run();

  expect_waste_invariant(selfish_run);
  expect_waste_invariant(cooperative_run);
  EXPECT_LT(total_waste(cooperative_run), total_waste(selfish_run));
  EXPECT_EQ(cooperative_run.io_channel()->peak_concurrent(), 1u);
}

TEST(IoContention, WasteInvariantHoldsForThreeContendingTenants) {
  // Three tenants' merged workload on two machines, stochastic crashes, a
  // skinny shared channel: transfers stretch, defer, and get cancelled by
  // mid-write crashes — the per-task and per-tenant decompositions must
  // still balance exactly.
  for (const IoStrategy strategy : {IoStrategy::kSelfish, IoStrategy::kCooperative}) {
    EetMatrix eet({"T1", "T2"}, {"m0", "m1"}, {{4.0, 6.0}, {5.0, 2.0}});
    SystemConfig system = e2c::sched::make_default_system(std::move(eet));
    system.faults.enabled = true;
    system.faults.mtbf = 25.0;
    system.faults.mttr = 2.0;
    system.faults.seed = 77;
    system.faults.recovery.strategy = RecoveryStrategy::kCheckpoint;
    system.faults.recovery.checkpoint_interval = 1.5;
    system.faults.recovery.checkpoint_cost = 0.5;
    system.faults.recovery.restart_cost = 0.5;
    system.faults.io = io_config(4.0, 0.0, 0.0, strategy, 1);

    std::vector<e2c::exp::TenantSpec> tenants;
    for (std::size_t i = 0; i < 3; ++i) {
      e2c::exp::TenantSpec spec;
      spec.name = "tenant" + std::to_string(i);
      spec.rho = 0.25;
      spec.duration = 60.0;
      spec.seed = 100 + i;
      tenants.push_back(spec);
    }
    const Workload merged = e2c::exp::make_multi_tenant_workload(system, tenants);
    ASSERT_GT(merged.size(), 10u);

    Simulation simulation(system, e2c::sched::make_policy("MECT"));
    simulation.load(merged);
    simulation.set_tenant_names(e2c::exp::tenant_names(tenants));
    simulation.run();

    expect_waste_invariant(simulation);
    const auto outcomes = e2c::exp::tenant_outcomes(simulation);
    ASSERT_EQ(outcomes.size(), 3u);
    double machine_seconds = 0.0;
    for (const auto& outcome : outcomes) {
      EXPECT_NEAR(outcome.useful_seconds + outcome.lost_seconds +
                      outcome.checkpoint_overhead_seconds,
                  outcome.machine_seconds, 1e-9)
          << outcome.name;
      machine_seconds += outcome.machine_seconds;
    }
    double task_machine_seconds = 0.0;
    const auto& state = simulation.task_state();
    for (std::size_t i = 0; i < state.size(); ++i) {
      task_machine_seconds += state.machine_seconds[i];
    }
    // The tenant decomposition is a partition of the run.
    EXPECT_NEAR(machine_seconds, task_machine_seconds, 1e-9);
  }
}

}  // namespace
