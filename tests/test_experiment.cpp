// Unit tests for the experiment harness (exp/experiment.hpp).
#include "exp/experiment.hpp"

#include <gtest/gtest.h>

#include "exp/scenario.hpp"
#include "util/error.hpp"

namespace {

namespace exp = e2c::exp;
using e2c::workload::Intensity;

exp::ExperimentSpec small_spec() {
  exp::ExperimentSpec spec;
  spec.system = exp::heterogeneous_classroom();
  spec.policies = {"FCFS", "MECT"};
  spec.intensities = {Intensity::kLow, Intensity::kHigh};
  spec.replications = 3;
  spec.duration = 60.0;
  spec.base_seed = 7;
  return spec;
}

TEST(Experiment, ProducesAllCells) {
  const auto result = exp::run_experiment(small_spec(), /*workers=*/2);
  EXPECT_EQ(result.cells.size(), 4u);
  for (const auto& cell : result.cells) {
    EXPECT_EQ(cell.runs.size(), 3u);
    for (const auto& metrics : cell.runs) EXPECT_GT(metrics.total_tasks, 0u);
  }
  EXPECT_NO_THROW((void)result.cell("FCFS", Intensity::kLow));
  EXPECT_THROW((void)result.cell("MM", Intensity::kLow), e2c::InputError);
}

TEST(Experiment, DeterministicAcrossWorkerCounts) {
  // Parallel scheduling must not change results: replications are seeded by
  // (base_seed, intensity, rep) only.
  const auto serial = exp::run_experiment(small_spec(), 1);
  const auto parallel = exp::run_experiment(small_spec(), 4);
  ASSERT_EQ(serial.cells.size(), parallel.cells.size());
  for (std::size_t i = 0; i < serial.cells.size(); ++i) {
    EXPECT_DOUBLE_EQ(serial.cells[i].mean_completion_percent(),
                     parallel.cells[i].mean_completion_percent());
    EXPECT_DOUBLE_EQ(serial.cells[i].mean_energy_joules(),
                     parallel.cells[i].mean_energy_joules());
  }
}

TEST(Experiment, WorkloadSeedPairsPolicies) {
  // Identical for all policies at a given (intensity, rep)...
  EXPECT_EQ(exp::workload_seed(42, Intensity::kLow, 0),
            exp::workload_seed(42, Intensity::kLow, 0));
  // ...different across intensity, rep and base seed.
  EXPECT_NE(exp::workload_seed(42, Intensity::kLow, 0),
            exp::workload_seed(42, Intensity::kHigh, 0));
  EXPECT_NE(exp::workload_seed(42, Intensity::kLow, 0),
            exp::workload_seed(42, Intensity::kLow, 1));
  EXPECT_NE(exp::workload_seed(42, Intensity::kLow, 0),
            exp::workload_seed(43, Intensity::kLow, 0));
}

TEST(Experiment, CompletionDropsWithIntensity) {
  const auto result = exp::run_experiment(small_spec(), 2);
  for (const std::string policy : {"FCFS", "MECT"}) {
    EXPECT_GT(result.cell(policy, Intensity::kLow).mean_completion_percent(),
              result.cell(policy, Intensity::kHigh).mean_completion_percent())
        << policy;
  }
}

TEST(Experiment, ChartHasSeriesPerPolicy) {
  const auto result = exp::run_experiment(small_spec(), 2);
  const auto chart = exp::completion_chart(result, "test chart");
  EXPECT_EQ(chart.title, "test chart");
  EXPECT_EQ(chart.groups.size(), 2u);
  ASSERT_EQ(chart.series.size(), 2u);
  EXPECT_EQ(chart.series[0].name, "FCFS");
  EXPECT_EQ(chart.series[0].values.size(), 2u);
  // Renders without throwing.
  EXPECT_FALSE(e2c::viz::render_bar_chart(chart).empty());
}

TEST(Experiment, ResultCsvShape) {
  const auto result = exp::run_experiment(small_spec(), 2);
  const auto rows = exp::result_csv(result);
  ASSERT_EQ(rows.size(), 5u);  // header + 4 cells
  EXPECT_EQ(rows[0][0], "policy");
  for (const auto& row : rows) EXPECT_EQ(row.size(), rows[0].size());
}

TEST(Experiment, ValidatesSpec) {
  auto spec = small_spec();
  spec.policies.clear();
  EXPECT_THROW((void)exp::run_experiment(spec, 1), e2c::InputError);
  spec = small_spec();
  spec.replications = 0;
  EXPECT_THROW((void)exp::run_experiment(spec, 1), e2c::InputError);
  spec = small_spec();
  spec.policies = {"NOPE"};
  EXPECT_THROW((void)exp::run_experiment(spec, 1), e2c::InputError);
}

TEST(Experiment, CellAggregatesMatchManualAverage) {
  const auto result = exp::run_experiment(small_spec(), 2);
  const auto& cell = result.cell("MECT", Intensity::kLow);
  double manual = 0.0;
  for (const auto& metrics : cell.runs) manual += metrics.completion_percent;
  manual /= static_cast<double>(cell.runs.size());
  EXPECT_DOUBLE_EQ(cell.mean_completion_percent(), manual);
}

}  // namespace
