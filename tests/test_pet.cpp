// Unit + statistical tests for the Probabilistic Execution Time model
// (hetero/pet_matrix.hpp) and its integration into the simulation.
#include "hetero/pet_matrix.hpp"

#include <gtest/gtest.h>

#include "sched/registry.hpp"
#include "sched/simulation.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace {

using e2c::hetero::EetMatrix;
using e2c::hetero::PetCell;
using e2c::hetero::PetKind;
using e2c::hetero::PetMatrix;

EetMatrix sample_eet() {
  return EetMatrix({"T1", "T2"}, {"m0", "m1"}, {{4.0, 2.0}, {6.0, 3.0}});
}

TEST(PetCell, DeterministicAlwaysMean) {
  e2c::util::Rng rng(1);
  const PetCell cell{PetKind::kDeterministic, 5.0, 0.7};
  for (int i = 0; i < 20; ++i) EXPECT_DOUBLE_EQ(cell.sample(rng), 5.0);
  EXPECT_DOUBLE_EQ(cell.stddev(), 0.0);
}

class PetKindTest : public testing::TestWithParam<PetKind> {};

TEST_P(PetKindTest, SamplesArePositive) {
  e2c::util::Rng rng(7);
  const PetCell cell{GetParam(), 3.0, 0.4};
  for (int i = 0; i < 5000; ++i) EXPECT_GT(cell.sample(rng), 0.0);
}

TEST_P(PetKindTest, SampleMeanMatchesConfiguredMean) {
  e2c::util::Rng rng(11);
  const PetCell cell{GetParam(), 3.0, 0.3};
  e2c::util::RunningStats stats;
  for (int i = 0; i < 60000; ++i) stats.add(cell.sample(rng));
  EXPECT_NEAR(stats.mean(), 3.0, 0.05) << pet_kind_name(GetParam());
}

TEST_P(PetKindTest, SampleStddevMatchesConfiguredCv) {
  if (GetParam() == PetKind::kDeterministic) return;
  e2c::util::Rng rng(13);
  const PetCell cell{GetParam(), 3.0, 0.3};
  e2c::util::RunningStats stats;
  for (int i = 0; i < 60000; ++i) stats.add(cell.sample(rng));
  const double expected =
      GetParam() == PetKind::kExponential ? 3.0 : 0.3 * 3.0;  // exp: cv = 1
  EXPECT_NEAR(stats.stddev(), expected, 0.1) << pet_kind_name(GetParam());
  EXPECT_NEAR(cell.stddev(), expected, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, PetKindTest,
                         testing::Values(PetKind::kDeterministic, PetKind::kNormal,
                                         PetKind::kUniform, PetKind::kExponential,
                                         PetKind::kLognormal),
                         [](const testing::TestParamInfo<PetKind>& param_info) {
                           return e2c::hetero::pet_kind_name(param_info.param);
                         });

TEST(PetMatrix, DeterministicMatchesEet) {
  const EetMatrix eet = sample_eet();
  const PetMatrix pet = PetMatrix::deterministic(eet);
  e2c::util::Rng rng(3);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 2; ++c) {
      EXPECT_DOUBLE_EQ(pet.sample(r, c, rng), eet.eet(r, c));
    }
  }
}

TEST(PetMatrix, HomoscedasticShapeAndMeans) {
  const EetMatrix eet = sample_eet();
  const PetMatrix pet = PetMatrix::homoscedastic(eet, PetKind::kNormal, 0.2);
  EXPECT_EQ(pet.task_type_count(), 2u);
  EXPECT_EQ(pet.machine_type_count(), 2u);
  EXPECT_DOUBLE_EQ(pet.cell(1, 0).mean, 6.0);
  EXPECT_DOUBLE_EQ(pet.cell(1, 0).cv, 0.2);
  EXPECT_THROW((void)PetMatrix::homoscedastic(eet, PetKind::kNormal, -0.1),
               e2c::InputError);
}

TEST(PetMatrix, ToEetRecoverMeans) {
  const EetMatrix eet = sample_eet();
  const PetMatrix pet = PetMatrix::homoscedastic(eet, PetKind::kLognormal, 0.5);
  const EetMatrix back = pet.to_eet(eet.task_type_names(), eet.machine_type_names());
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 2; ++c) EXPECT_DOUBLE_EQ(back.eet(r, c), eet.eet(r, c));
  }
}

TEST(PetMatrix, SetCellValidates) {
  PetMatrix pet = PetMatrix::deterministic(sample_eet());
  pet.set_cell(0, 1, PetCell{PetKind::kUniform, 2.5, 0.1});
  EXPECT_EQ(pet.cell(0, 1).kind, PetKind::kUniform);
  EXPECT_THROW(pet.set_cell(0, 1, PetCell{PetKind::kNormal, -1.0, 0.1}), e2c::InputError);
  EXPECT_THROW(pet.set_cell(5, 0, PetCell{}), e2c::InputError);
  EXPECT_THROW((void)pet.cell(0, 9), e2c::InputError);
}

TEST(PetMatrix, ParseKindNames) {
  EXPECT_EQ(e2c::hetero::parse_pet_kind("NORMAL"), PetKind::kNormal);
  EXPECT_EQ(e2c::hetero::parse_pet_kind("lognormal"), PetKind::kLognormal);
  EXPECT_THROW((void)e2c::hetero::parse_pet_kind("weibull"), e2c::InputError);
}

// --- simulation integration ------------------------------------------------

e2c::sched::SystemConfig stochastic_system(double cv) {
  auto config = e2c::sched::make_default_system(sample_eet());
  config.pet = PetMatrix::homoscedastic(config.eet, PetKind::kNormal, cv);
  return config;
}

e2c::workload::Workload single_task_workload(double deadline) {
  e2c::workload::TaskDef task;
  task.id = 0;
  task.type = 0;
  task.arrival = 0.0;
  task.deadline = deadline;
  return e2c::workload::Workload({task});
}

TEST(PetSimulation, ExecutionTimeIsSampledNotExpected) {
  // With cv=0.5 the sampled run time of the single task almost surely
  // differs from the EET expectation (2.0 on m1 for T1 via MECT).
  auto config = stochastic_system(0.5);
  e2c::sched::Simulation simulation(config, e2c::sched::make_policy("MECT"));
  simulation.load(single_task_workload(1e9));
  simulation.run();
  const auto& state = simulation.task_state();
  ASSERT_TRUE(e2c::core::time_set(state.completion_time[0]));
  const double actual = state.completion_time[0] - state.start_time[0];
  EXPECT_NE(actual, 2.0);
  EXPECT_GT(actual, 0.0);
}

TEST(PetSimulation, SamplingSeedReproducible) {
  auto run_once = [&] {
    auto config = stochastic_system(0.5);
    config.sampling_seed = 99;
    e2c::sched::Simulation simulation(config, e2c::sched::make_policy("MECT"));
    simulation.load(single_task_workload(1e9));
    simulation.run();
    return simulation.task_state().completion_time[0];
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

TEST(PetSimulation, DifferentSamplingSeedsDiffer) {
  auto run_with_seed = [&](std::uint64_t seed) {
    auto config = stochastic_system(0.5);
    config.sampling_seed = seed;
    e2c::sched::Simulation simulation(config, e2c::sched::make_policy("MECT"));
    simulation.load(single_task_workload(1e9));
    simulation.run();
    return simulation.task_state().completion_time[0];
  };
  EXPECT_NE(run_with_seed(1), run_with_seed(2));
}

TEST(PetSimulation, MismatchedPetShapeRejected) {
  auto config = e2c::sched::make_default_system(sample_eet());
  const EetMatrix other({"T1"}, {"m0"}, {{1.0}});
  config.pet = PetMatrix::deterministic(other);
  EXPECT_THROW(e2c::sched::Simulation(config, e2c::sched::make_policy("FCFS")),
               e2c::InputError);
}

TEST(PetSimulation, DeterministicPetMatchesPlainEet) {
  // A deterministic PET must reproduce exactly the deterministic simulation.
  auto config_pet = e2c::sched::make_default_system(sample_eet());
  config_pet.pet = PetMatrix::deterministic(config_pet.eet);
  e2c::sched::Simulation with_pet(config_pet, e2c::sched::make_policy("MECT"));
  with_pet.load(single_task_workload(1e9));
  with_pet.run();

  auto config_plain = e2c::sched::make_default_system(sample_eet());
  e2c::sched::Simulation plain(config_plain, e2c::sched::make_policy("MECT"));
  plain.load(single_task_workload(1e9));
  plain.run();

  EXPECT_DOUBLE_EQ(with_pet.task_state().completion_time[0],
                   plain.task_state().completion_time[0]);
}

}  // namespace
