// Unit tests for the workload generator and intensity calibration
// (workload/generator.hpp).
#include "workload/generator.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace {

using e2c::hetero::EetMatrix;
using e2c::workload::GeneratorConfig;
using e2c::workload::Intensity;

EetMatrix sample_eet() {
  return EetMatrix({"T1", "T2"}, {"m1", "m2"}, {{2.0, 4.0}, {6.0, 2.0}});
}

TEST(SystemCapacity, SingleMachineUniformMix) {
  // Machine type 0 services the uniform mix at mean (2+6)/2 = 4 s/task.
  const double capacity = e2c::workload::system_capacity(sample_eet(), {0}, {});
  EXPECT_NEAR(capacity, 0.25, 1e-12);
}

TEST(SystemCapacity, MultipleMachinesAdd) {
  const double one = e2c::workload::system_capacity(sample_eet(), {0}, {});
  const double both = e2c::workload::system_capacity(sample_eet(), {0, 0}, {});
  EXPECT_NEAR(both, 2.0 * one, 1e-12);
}

TEST(SystemCapacity, WeightsChangeServiceMix) {
  // All weight on T1: machine 0 serves at 1/2 task/s.
  const double capacity =
      e2c::workload::system_capacity(sample_eet(), {0}, {1.0, 0.0});
  EXPECT_NEAR(capacity, 0.5, 1e-12);
}

TEST(SystemCapacity, RejectsBadInput) {
  EXPECT_THROW((void)e2c::workload::system_capacity(sample_eet(), {}, {}), e2c::InputError);
  EXPECT_THROW((void)e2c::workload::system_capacity(sample_eet(), {0}, {1.0}),
               e2c::InputError);
  EXPECT_THROW((void)e2c::workload::system_capacity(sample_eet(), {0}, {0.0, 0.0}),
               e2c::InputError);
}

TEST(Generator, DeterministicInSeed) {
  const EetMatrix eet = sample_eet();
  GeneratorConfig config;
  config.rate = 1.0;
  config.duration = 50.0;
  config.seed = 77;
  const auto a = e2c::workload::generate_workload(eet, config);
  const auto b = e2c::workload::generate_workload(eet, config);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.tasks()[i].type, b.tasks()[i].type);
    EXPECT_DOUBLE_EQ(a.tasks()[i].arrival, b.tasks()[i].arrival);
    EXPECT_DOUBLE_EQ(a.tasks()[i].deadline, b.tasks()[i].deadline);
  }
}

TEST(Generator, DifferentSeedsDiffer) {
  const EetMatrix eet = sample_eet();
  GeneratorConfig config;
  config.rate = 1.0;
  config.duration = 100.0;
  config.seed = 1;
  const auto a = e2c::workload::generate_workload(eet, config);
  config.seed = 2;
  const auto b = e2c::workload::generate_workload(eet, config);
  bool identical = a.size() == b.size();
  if (identical) {
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (a.tasks()[i].arrival != b.tasks()[i].arrival) {
        identical = false;
        break;
      }
    }
  }
  EXPECT_FALSE(identical);
}

TEST(Generator, IdsSequentialFromZero) {
  const EetMatrix eet = sample_eet();
  GeneratorConfig config;
  config.rate = 2.0;
  config.duration = 40.0;
  const auto workload = e2c::workload::generate_workload(eet, config);
  for (std::size_t i = 0; i < workload.size(); ++i) {
    EXPECT_EQ(workload.tasks()[i].id, i);
  }
}

TEST(Generator, DeadlinesRespectFactors) {
  const EetMatrix eet = sample_eet();
  GeneratorConfig config;
  config.rate = 2.0;
  config.duration = 100.0;
  config.deadline_factor_lo = 2.0;
  config.deadline_factor_hi = 4.0;
  const auto workload = e2c::workload::generate_workload(eet, config);
  for (const auto& task : workload.tasks()) {
    const double slack = task.deadline - task.arrival;
    const double mean_eet = eet.row_mean(task.type);
    EXPECT_GE(slack, 2.0 * mean_eet - 1e-9);
    EXPECT_LE(slack, 4.0 * mean_eet + 1e-9);
  }
}

TEST(Generator, TypeWeightsBiasTheMix) {
  const EetMatrix eet = sample_eet();
  GeneratorConfig config;
  config.rate = 5.0;
  config.duration = 400.0;
  config.type_weights = {9.0, 1.0};
  const auto workload = e2c::workload::generate_workload(eet, config);
  const auto histogram = workload.type_histogram(2);
  EXPECT_GT(histogram[0], 5 * histogram[1]);
}

TEST(Generator, ValidatesConfig) {
  const EetMatrix eet = sample_eet();
  GeneratorConfig config;
  config.rate = 0.0;
  EXPECT_THROW((void)e2c::workload::generate_workload(eet, config), e2c::InputError);
  config.rate = 1.0;
  config.duration = -5.0;
  EXPECT_THROW((void)e2c::workload::generate_workload(eet, config), e2c::InputError);
  config.duration = 10.0;
  config.deadline_factor_lo = 3.0;
  config.deadline_factor_hi = 2.0;
  EXPECT_THROW((void)e2c::workload::generate_workload(eet, config), e2c::InputError);
  config.deadline_factor_hi = 4.0;
  config.type_weights = {1.0};  // wrong size
  EXPECT_THROW((void)e2c::workload::generate_workload(eet, config), e2c::InputError);
}

TEST(Generator, PerTypeArrivalsProduceIndependentStreams) {
  // The paper's per-type workload definition: T1 arrives 4x as often as T2.
  const EetMatrix eet = sample_eet();
  GeneratorConfig config;
  config.duration = 1000.0;
  config.seed = 21;
  config.per_type_arrivals = {{e2c::workload::ArrivalKind::kPoisson, 2.0},
                              {e2c::workload::ArrivalKind::kPoisson, 0.5}};
  const auto workload = e2c::workload::generate_workload(eet, config);
  const auto histogram = workload.type_histogram(2);
  EXPECT_NEAR(static_cast<double>(histogram[0]) / 1000.0, 2.0, 0.25);
  EXPECT_NEAR(static_cast<double>(histogram[1]) / 1000.0, 0.5, 0.15);
}

TEST(Generator, PerTypeArrivalsCanMixProcessKinds) {
  // Constant spacing for T1, bursty for T2 — each type keeps its signature.
  const EetMatrix eet = sample_eet();
  GeneratorConfig config;
  config.duration = 400.0;
  config.seed = 33;
  config.per_type_arrivals = {{e2c::workload::ArrivalKind::kConstant, 0.5},
                              {e2c::workload::ArrivalKind::kBurst, 0.5}};
  const auto workload = e2c::workload::generate_workload(eet, config);
  // T1 (constant at 0.5/s over 400 s) contributes exactly 199 tasks
  // (arrivals at 2, 4, ..., 398).
  EXPECT_EQ(workload.type_histogram(2)[0], 199u);
  EXPECT_GT(workload.type_histogram(2)[1], 100u);
  // Merged trace is still sorted with sequential ids.
  for (std::size_t i = 1; i < workload.size(); ++i) {
    EXPECT_GE(workload.tasks()[i].arrival, workload.tasks()[i - 1].arrival);
    EXPECT_EQ(workload.tasks()[i].id, i);
  }
}

TEST(Generator, PerTypeArrivalsDeterministic) {
  const EetMatrix eet = sample_eet();
  GeneratorConfig config;
  config.duration = 100.0;
  config.seed = 5;
  config.per_type_arrivals = {{e2c::workload::ArrivalKind::kPoisson, 1.0},
                              {e2c::workload::ArrivalKind::kUniform, 1.5}};
  const auto a = e2c::workload::generate_workload(eet, config);
  const auto b = e2c::workload::generate_workload(eet, config);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.tasks()[i].arrival, b.tasks()[i].arrival);
    EXPECT_EQ(a.tasks()[i].type, b.tasks()[i].type);
  }
}

TEST(Generator, PerTypeArrivalsValidated) {
  const EetMatrix eet = sample_eet();
  GeneratorConfig config;
  config.per_type_arrivals = {{e2c::workload::ArrivalKind::kPoisson, 1.0}};  // one of two
  EXPECT_THROW((void)e2c::workload::generate_workload(eet, config), e2c::InputError);
  config.per_type_arrivals = {{e2c::workload::ArrivalKind::kPoisson, 1.0},
                              {e2c::workload::ArrivalKind::kPoisson, 0.0}};  // bad rate
  EXPECT_THROW((void)e2c::workload::generate_workload(eet, config), e2c::InputError);
}

TEST(Intensity, PresetsScaleRate) {
  const EetMatrix eet = sample_eet();
  const auto low = e2c::workload::config_for_intensity(eet, {0, 1}, Intensity::kLow,
                                                       100.0, 1);
  const auto medium = e2c::workload::config_for_intensity(eet, {0, 1},
                                                          Intensity::kMedium, 100.0, 1);
  const auto high = e2c::workload::config_for_intensity(eet, {0, 1}, Intensity::kHigh,
                                                        100.0, 1);
  EXPECT_NEAR(medium.rate, 2.0 * low.rate, 1e-12);
  EXPECT_NEAR(high.rate, 4.0 * low.rate, 1e-12);
  const double capacity = e2c::workload::system_capacity(eet, {0, 1}, {});
  EXPECT_NEAR(medium.rate, capacity, 1e-12);
}

TEST(Intensity, NamesAndLoads) {
  EXPECT_STREQ(e2c::workload::intensity_name(Intensity::kLow), "low");
  EXPECT_STREQ(e2c::workload::intensity_name(Intensity::kHigh), "high");
  EXPECT_DOUBLE_EQ(e2c::workload::intensity_offered_load(Intensity::kLow), 0.5);
  EXPECT_DOUBLE_EQ(e2c::workload::intensity_offered_load(Intensity::kMedium), 1.0);
  EXPECT_DOUBLE_EQ(e2c::workload::intensity_offered_load(Intensity::kHigh), 2.0);
}

}  // namespace
