// Unit tests for the discrete-event engine (core/engine.hpp).
#include "core/engine.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/error.hpp"

namespace {

using e2c::core::Engine;
using e2c::core::EventPriority;

TEST(Engine, ClockAdvancesToEventTime) {
  Engine engine;
  double seen = -1.0;
  (void)engine.schedule_at(7.5, EventPriority::kControl, "tick",
                           [&] { seen = engine.now(); });
  engine.run();
  EXPECT_DOUBLE_EQ(seen, 7.5);
  EXPECT_DOUBLE_EQ(engine.now(), 7.5);
}

TEST(Engine, ScheduleInIsRelative) {
  Engine engine;
  std::vector<double> times;
  (void)engine.schedule_at(2.0, EventPriority::kControl, "outer", [&] {
    times.push_back(engine.now());
    (void)engine.schedule_in(3.0, EventPriority::kControl, "inner",
                             [&] { times.push_back(engine.now()); });
  });
  engine.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 2.0);
  EXPECT_DOUBLE_EQ(times[1], 5.0);
}

TEST(Engine, SchedulingInThePastThrows) {
  Engine engine;
  (void)engine.schedule_at(5.0, EventPriority::kControl, "x", {});
  engine.run();
  EXPECT_THROW(
      (void)engine.schedule_at(1.0, EventPriority::kControl, "past", {}),
      e2c::InvariantError);
  EXPECT_THROW((void)engine.schedule_in(-1.0, EventPriority::kControl, "neg", {}),
               e2c::InvariantError);
}

TEST(Engine, StepProcessesExactlyOneEvent) {
  Engine engine;
  int fired = 0;
  (void)engine.schedule_at(1.0, EventPriority::kControl, "a", [&] { ++fired; });
  (void)engine.schedule_at(2.0, EventPriority::kControl, "b", [&] { ++fired; });
  EXPECT_TRUE(engine.step());
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(engine.now(), 1.0);
  EXPECT_TRUE(engine.step());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(engine.step());  // nothing left
}

TEST(Engine, RunUntilStopsAtHorizon) {
  Engine engine;
  std::vector<std::string> fired;
  (void)engine.schedule_at(1.0, EventPriority::kControl, "a",
                           [&] { fired.push_back("a"); });
  (void)engine.schedule_at(5.0, EventPriority::kControl, "b",
                           [&] { fired.push_back("b"); });
  (void)engine.schedule_at(9.0, EventPriority::kControl, "c",
                           [&] { fired.push_back("c"); });
  engine.run_until(5.0);  // inclusive
  EXPECT_EQ(fired, (std::vector<std::string>{"a", "b"}));
  EXPECT_DOUBLE_EQ(engine.now(), 5.0);
  EXPECT_EQ(engine.pending_count(), 1u);
  engine.run();
  EXPECT_EQ(fired.size(), 3u);
}

TEST(Engine, RunUntilAdvancesClockWithNoEvents) {
  Engine engine;
  engine.run_until(10.0);
  EXPECT_DOUBLE_EQ(engine.now(), 10.0);
}

TEST(Engine, CancelPreventsExecution) {
  Engine engine;
  int fired = 0;
  const auto id = engine.schedule_at(1.0, EventPriority::kControl, "x", [&] { ++fired; });
  EXPECT_TRUE(engine.cancel(id));
  engine.run();
  EXPECT_EQ(fired, 0);
}

TEST(Engine, ResetRewindsClockAndCalendar) {
  Engine engine;
  (void)engine.schedule_at(3.0, EventPriority::kControl, "x", {});
  engine.run();
  engine.reset();
  EXPECT_DOUBLE_EQ(engine.now(), 0.0);
  EXPECT_EQ(engine.processed_count(), 0u);
  EXPECT_EQ(engine.pending_count(), 0u);
}

TEST(Engine, ProcessedCountTracksEvents) {
  Engine engine;
  for (int i = 0; i < 5; ++i) {
    (void)engine.schedule_at(static_cast<double>(i), EventPriority::kControl, "", {});
  }
  engine.run();
  EXPECT_EQ(engine.processed_count(), 5u);
}

class CountingObserver final : public e2c::core::EngineObserver {
 public:
  void on_event(const e2c::core::EventRecord& record) override {
    labels.push_back(record.label);
  }
  void on_idle(double now) override { idle_times.push_back(now); }
  std::vector<std::string> labels;
  std::vector<double> idle_times;
};

TEST(Engine, ObserverSeesEventsInOrder) {
  Engine engine;
  CountingObserver observer;
  engine.add_observer(&observer);
  (void)engine.schedule_at(2.0, EventPriority::kControl, "late", {});
  (void)engine.schedule_at(1.0, EventPriority::kControl, "early", {});
  engine.run();
  EXPECT_EQ(observer.labels, (std::vector<std::string>{"early", "late"}));
  EXPECT_FALSE(observer.idle_times.empty());
}

TEST(Engine, ObserverRemovable) {
  Engine engine;
  CountingObserver observer;
  engine.add_observer(&observer);
  engine.add_observer(&observer);  // duplicate ignored
  engine.remove_observer(&observer);
  (void)engine.schedule_at(1.0, EventPriority::kControl, "x", {});
  engine.run();
  EXPECT_TRUE(observer.labels.empty());
}

TEST(Engine, PeekNextShowsUpcomingEvent) {
  Engine engine;
  EXPECT_FALSE(engine.peek_next().has_value());
  (void)engine.schedule_at(4.0, EventPriority::kControl, "soon", {});
  ASSERT_TRUE(engine.peek_next().has_value());
  EXPECT_EQ(engine.peek_next()->label, "soon");
}

TEST(Engine, EventsScheduledDuringRunAreProcessed) {
  Engine engine;
  int chain = 0;
  // EventFn only stores trivially-copyable closures, so the recursive
  // std::function is captured by reference through a thin lambda.
  std::function<void()> extend = [&] {
    if (++chain < 10) {
      (void)engine.schedule_in(1.0, EventPriority::kControl, "chain",
                               [&] { extend(); });
    }
  };
  (void)engine.schedule_at(0.0, EventPriority::kControl, "start", [&] { extend(); });
  engine.run();
  EXPECT_EQ(chain, 10);
  EXPECT_DOUBLE_EQ(engine.now(), 9.0);
}

}  // namespace
