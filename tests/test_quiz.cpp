// Unit tests for the quiz engine (edu/quiz.hpp).
#include "edu/quiz.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace {

namespace edu = e2c::edu;

TEST(Quiz, DefaultScenarioShape) {
  const auto scenario = edu::default_quiz();
  EXPECT_EQ(scenario.eet.task_type_count(), 3u);
  EXPECT_EQ(scenario.eet.machine_type_count(), 4u);
  EXPECT_EQ(scenario.tasks.size(), 3u);
  EXPECT_EQ(edu::max_score(scenario), 12);  // 3 tasks x 4 methods, as in §5
}

TEST(Quiz, MeetGroundTruthIsRowMinimum) {
  const auto scenario = edu::default_quiz();
  const auto answer = edu::solve_method(scenario, "MEET");
  ASSERT_EQ(answer.size(), 3u);
  EXPECT_EQ(answer.at(1), 3u);  // T1 fastest on m4 (index 3)
  EXPECT_EQ(answer.at(2), 2u);  // T2 fastest on m3 (index 2)
  EXPECT_EQ(answer.at(3), 3u);  // T3 also fastest on m4 — MEET stacks them
}

TEST(Quiz, MectDivertsTheContendedTask) {
  // MECT maps in arrival order with a load projection: T1 takes m4 (3 s);
  // T3 then sees m4 ready at 3 (completion 5) tie m2 (5) -> lower index m2.
  const auto scenario = edu::default_quiz();
  const auto answer = edu::solve_method(scenario, "MECT");
  EXPECT_EQ(answer.at(1), 3u);  // m4
  EXPECT_EQ(answer.at(2), 2u);  // m3
  EXPECT_EQ(answer.at(3), 1u);  // diverted to m2
  // The whole point of the contention: MECT != MEET.
  EXPECT_NE(answer, edu::solve_method(scenario, "MEET"));
}

TEST(Quiz, MinMinMapsShortestFirstAndDivertsT1) {
  // MM picks the globally smallest completion first: T2 (2 on m3), then T3
  // (2 on m4); T1 now compares m4 at 2+3=5 vs m2 at 4 -> m2.
  const auto scenario = edu::default_quiz();
  const auto answer = edu::solve_method(scenario, "MM");
  EXPECT_EQ(answer.at(2), 2u);
  EXPECT_EQ(answer.at(3), 3u);  // T3 wins the contended m4 under MM
  EXPECT_EQ(answer.at(1), 1u);  // T1 diverted to m2
  // MM and MECT disagree on who gets m4 — the teachable contrast.
  EXPECT_NE(answer, edu::solve_method(scenario, "MECT"));
}

TEST(Quiz, MsdFollowsDeadlinesThenMinCompletion) {
  const auto scenario = edu::default_quiz();
  const auto answer = edu::solve_method(scenario, "MSD");
  // Deadline order T2 (6) < T3 (9) < T1 (12): T2->m3, T3->m4, T1->m2.
  EXPECT_EQ(answer.at(2), 2u);
  EXPECT_EQ(answer.at(3), 3u);
  EXPECT_EQ(answer.at(1), 1u);
}

TEST(Quiz, AllMethodsMapEveryTask) {
  const auto scenario = edu::default_quiz();
  const auto sheet = edu::solve_quiz(scenario);
  ASSERT_EQ(sheet.size(), 4u);
  for (const auto& [method, answer] : sheet) {
    EXPECT_EQ(answer.size(), 3u) << method;
  }
}

TEST(Quiz, PerfectAnswerScoresFull) {
  const auto scenario = edu::default_quiz();
  const auto truth = edu::solve_quiz(scenario);
  EXPECT_EQ(edu::grade(scenario, truth), 12);
}

TEST(Quiz, EmptyAnswerScoresZero) {
  const auto scenario = edu::default_quiz();
  EXPECT_EQ(edu::grade(scenario, {}), 0);
}

TEST(Quiz, PartialAnswerScoresPartially) {
  const auto scenario = edu::default_quiz();
  auto answers = edu::solve_quiz(scenario);
  answers.erase("MM");                 // one method unanswered: -3
  answers.at("MEET").at(1) = 0;        // one wrong pick: -1
  EXPECT_EQ(edu::grade(scenario, answers), 8);
}

TEST(Quiz, NaiveFastestMachineStudentScoresBelowFull) {
  // The classic pre-E2C misconception: map every task to the machine with
  // its minimum EET regardless of the method asked. With the contended m4,
  // that is only fully correct for MEET; MECT loses T3, MM and MSD lose T1
  // -> 3 + 2 + 2 + 2 = 9 of 12.
  const auto scenario = edu::default_quiz();
  const auto meet = edu::solve_method(scenario, "MEET");
  edu::AnswerSheet naive;
  for (const auto& method : edu::quiz_methods()) naive[method] = meet;
  EXPECT_EQ(edu::grade(scenario, naive), 9);
}

TEST(Quiz, UnknownMethodThrows) {
  const auto scenario = edu::default_quiz();
  EXPECT_THROW((void)edu::solve_method(scenario, "FCFS"), e2c::InputError);
}

TEST(Quiz, GradeIsDeterministic) {
  const auto scenario = edu::default_quiz();
  const auto sheet = edu::solve_quiz(scenario);
  EXPECT_EQ(edu::grade(scenario, sheet), edu::grade(scenario, sheet));
}

}  // namespace
