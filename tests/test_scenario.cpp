// Unit tests for the classroom scenarios (exp/scenario.hpp).
#include "exp/scenario.hpp"

#include <gtest/gtest.h>

#include "workload/generator.hpp"

namespace {

namespace exp = e2c::exp;

TEST(Scenario, HomogeneousIsHomogeneous) {
  const auto config = exp::homogeneous_classroom();
  EXPECT_TRUE(config.eet.is_homogeneous());
  EXPECT_EQ(config.machines.size(), 4u);
  EXPECT_EQ(config.eet.task_type_count(), 5u);
}

TEST(Scenario, HomogeneousMachinesShareOnePowerProfile) {
  const auto config = exp::homogeneous_classroom();
  for (const auto& machine : config.machines) {
    EXPECT_DOUBLE_EQ(machine.power.idle_watts, config.machines[0].power.idle_watts);
    EXPECT_DOUBLE_EQ(machine.power.busy_watts, config.machines[0].power.busy_watts);
  }
}

TEST(Scenario, HeterogeneousIsInconsistent) {
  const auto config = exp::heterogeneous_classroom();
  EXPECT_FALSE(config.eet.is_homogeneous());
  // Inconsistent heterogeneity: the case the paper says existing GUI
  // simulators (e.g. iCanCloud) cannot model.
  EXPECT_FALSE(config.eet.is_consistent());
  EXPECT_EQ(config.machines.size(), 4u);
}

TEST(Scenario, HeterogeneousUsesCatalogPower) {
  const auto config = exp::heterogeneous_classroom();
  // Machine 1 is the GPU: catalog busy power 250 W.
  EXPECT_EQ(config.eet.machine_type_name(1), "gpu");
  EXPECT_DOUBLE_EQ(config.machines[1].power.busy_watts, 250.0);
  // Machine 3 is the ASIC: catalog busy power 8 W.
  EXPECT_DOUBLE_EQ(config.machines[3].power.busy_watts, 8.0);
}

TEST(Scenario, EachAcceleratorWinsSomewhere) {
  const auto& eet = exp::heterogeneous_classroom().eet;
  // Every machine type is the fastest for at least one task type — the
  // defining feature of the heterogeneous classroom scenario.
  for (std::size_t m = 0; m < eet.machine_type_count(); ++m) {
    bool wins = false;
    for (std::size_t t = 0; t < eet.task_type_count(); ++t) {
      if (eet.eet(t, m) <= eet.row_min(t)) wins = true;
    }
    EXPECT_TRUE(wins) << eet.machine_type_name(m);
  }
}

TEST(Scenario, QueueCapacityPlumbing) {
  EXPECT_EQ(exp::homogeneous_classroom(7).machine_queue_capacity, 7u);
  EXPECT_EQ(exp::heterogeneous_classroom(3).machine_queue_capacity, 3u);
}

TEST(Scenario, MachineTypesOfListsInstanceTypes) {
  const auto config = exp::heterogeneous_classroom();
  const auto types = exp::machine_types_of(config);
  ASSERT_EQ(types.size(), 4u);
  for (std::size_t i = 0; i < types.size(); ++i) EXPECT_EQ(types[i], i);
}

TEST(Scenario, SimilarServiceScales) {
  // The homogeneous and heterogeneous systems are calibrated to comparable
  // aggregate capacity so intensity presets stress them similarly.
  const auto homog = exp::homogeneous_classroom();
  const auto hetero = exp::heterogeneous_classroom();
  const double cap_homog =
      e2c::workload::system_capacity(homog.eet, exp::machine_types_of(homog), {});
  const double cap_hetero =
      e2c::workload::system_capacity(hetero.eet, exp::machine_types_of(hetero), {});
  EXPECT_GT(cap_homog, 0.0);
  EXPECT_GT(cap_hetero, 0.0);
  EXPECT_LT(cap_homog / cap_hetero, 3.0);
  EXPECT_GT(cap_homog / cap_hetero, 1.0 / 3.0);
}

}  // namespace
