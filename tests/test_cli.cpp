// End-to-end tests of the e2c_run command-line front-end: drives the real
// binary (path injected by CMake) against the shipped data fixtures and
// checks its output and artifacts.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <fstream>
#include <string>

#include "util/csv.hpp"

namespace {

#ifndef E2C_RUN_BIN
#error "E2C_RUN_BIN must be defined by the build"
#endif
#ifndef E2C_EXPERIMENT_BIN
#error "E2C_EXPERIMENT_BIN must be defined by the build"
#endif
#ifndef E2C_DATA_DIR
#error "E2C_DATA_DIR must be defined by the build"
#endif

struct CommandResult {
  int exit_code = -1;
  std::string output;
};

CommandResult run_binary(const std::string& binary, const std::string& args) {
  const std::string command = binary + " " + args + " 2>&1";
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return {};
  CommandResult result;
  std::array<char, 4096> buffer{};
  std::size_t n = 0;
  while ((n = fread(buffer.data(), 1, buffer.size(), pipe)) > 0) {
    result.output.append(buffer.data(), n);
  }
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

CommandResult run_command(const std::string& args) {
  return run_binary(E2C_RUN_BIN, args);
}

CommandResult run_experiment(const std::string& args) {
  return run_binary(E2C_EXPERIMENT_BIN, args);
}

std::string data(const std::string& file) { return std::string(E2C_DATA_DIR) + "/" + file; }

TEST(Cli, HelpExitsZero) {
  const auto result = run_command("--help");
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_NE(result.output.find("--policy"), std::string::npos);
  EXPECT_NE(result.output.find("--autoscale"), std::string::npos);
}

TEST(Cli, ListPoliciesShowsFullRoster) {
  const auto result = run_command("--list-policies");
  EXPECT_EQ(result.exit_code, 0);
  for (const char* name : {"FCFS", "MECT", "MEET", "MM", "MMU", "MSD", "ELARE",
                           "FELARE", "PAM"}) {
    EXPECT_NE(result.output.find(name), std::string::npos) << name;
  }
}

TEST(Cli, RunsFixtureWorkload) {
  const auto result = run_command("--eet " + data("eet_heterogeneous.csv") +
                                  " --workload " + data("workload_medium.csv") +
                                  " --policy MECT");
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_NE(result.output.find("policy=MECT"), std::string::npos);
  EXPECT_NE(result.output.find("tasks=144"), std::string::npos);
}

TEST(Cli, GeneratesWorkloadAndWritesSummary) {
  const std::string out = testing::TempDir() + "/e2c_cli_summary.csv";
  const auto result =
      run_command("--eet " + data("eet_heterogeneous.csv") +
                  " --generate medium --seed 3 --policy MM --summary " + out);
  EXPECT_EQ(result.exit_code, 0);
  const auto rows = e2c::util::read_csv_file(out);
  EXPECT_GT(rows.row_count(), 5u);
  EXPECT_EQ(rows.rows[0][0], "metric");
  std::remove(out.c_str());
}

TEST(Cli, SummaryToStdout) {
  const auto result = run_command("--eet " + data("eet_homogeneous.csv") +
                                  " --generate low --policy FCFS --summary -");
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_NE(result.output.find("completion_percent"), std::string::npos);
}

TEST(Cli, WritesGanttSvg) {
  const std::string out = testing::TempDir() + "/e2c_cli_gantt.svg";
  const auto result = run_command("--eet " + data("eet_heterogeneous.csv") +
                                  " --workload " + data("workload_low.csv") +
                                  " --policy MSD --gantt " + out);
  EXPECT_EQ(result.exit_code, 0);
  std::ifstream svg(out);
  std::string first_line;
  std::getline(svg, first_line);
  EXPECT_NE(first_line.find("<svg"), std::string::npos);
  std::remove(out.c_str());
}

TEST(Cli, TraceStatsReportsOfferedLoad) {
  const auto result = run_command("--eet " + data("eet_heterogeneous.csv") +
                                  " --workload " + data("workload_high.csv") +
                                  " --policy MM --trace-stats -");
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_NE(result.output.find("offered_load"), std::string::npos);
  EXPECT_NE(result.output.find("interarrival_cv"), std::string::npos);
}

TEST(Cli, SubstrateFlagsCompose) {
  const auto result = run_command(
      "--eet " + data("eet_heterogeneous.csv") +
      " --generate low --policy PAM --pet lognormal --pet-cv 0.3 --payload-mb 4 "
      "--bandwidth 32 --autoscale");
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_NE(result.output.find("stochastic execution"), std::string::npos);
  EXPECT_NE(result.output.find("communication model"), std::string::npos);
  EXPECT_NE(result.output.find("autoscaler enabled"), std::string::npos);
}

TEST(Cli, BadArgumentsFailWithMessage) {
  EXPECT_NE(run_command("--bogus-flag").exit_code, 0);
  EXPECT_NE(run_command("--policy MECT").exit_code, 0);  // missing --eet
  const auto unknown_policy = run_command(
      "--eet " + data("eet_homogeneous.csv") + " --generate low --policy NOPE");
  EXPECT_NE(unknown_policy.exit_code, 0);
  EXPECT_NE(unknown_policy.output.find("unknown scheduling policy"), std::string::npos);
}

TEST(Cli, ExitCodeDistinguishesInputFromIoErrors) {
  // Documented contract: 2 = invalid input/flags, 3 = filesystem error,
  // 0 = success.
  EXPECT_EQ(run_command("--bogus-flag").exit_code, 2);
  EXPECT_EQ(run_command("--policy MECT").exit_code, 2);  // missing --eet
  const auto missing_file =
      run_command("--eet /nonexistent/eet.csv --generate low --policy FCFS");
  EXPECT_EQ(missing_file.exit_code, 3);
  EXPECT_NE(missing_file.output.find("e2c_run:"), std::string::npos);
}

TEST(Cli, FaultFlagsRunAndReportFailureCounters) {
  const auto result = run_command("--eet " + data("eet_heterogeneous.csv") +
                                  " --workload " + data("workload_medium.csv") +
                                  " --policy MECT --mtbf 40 --mttr 5 --fault-seed 7");
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_NE(result.output.find("fault injection"), std::string::npos);
  EXPECT_NE(result.output.find("failed="), std::string::npos);
  EXPECT_NE(result.output.find("requeued="), std::string::npos);
}

TEST(Cli, FaultRunIsBitIdenticalUnderSeed) {
  const std::string args = "--eet " + data("eet_heterogeneous.csv") +
                           " --workload " + data("workload_medium.csv") +
                           " --policy MM --mtbf 30 --mttr 4 --fault-seed 99";
  const auto first = run_command(args);
  const auto second = run_command(args);
  ASSERT_EQ(first.exit_code, 0);
  EXPECT_EQ(first.output, second.output);
}

TEST(Cli, RetryFlagsWithoutFaultSourceRejected) {
  const auto result = run_command("--eet " + data("eet_homogeneous.csv") +
                                  " --generate low --policy FCFS --max-retries 5");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("--mtbf or --fault-trace"), std::string::npos);
}

TEST(Cli, SchedImplSelectsReferenceMappers) {
  // Both implementations must produce the identical run; the flag exists so
  // anyone can A/B them (and so CI can time them against each other).
  const std::string base = "--eet " + data("eet_heterogeneous.csv") +
                           " --workload " + data("workload_medium.csv") + " --policy MM";
  const auto fast = run_command(base + " --sched-impl fast");
  const auto reference = run_command(base + " --sched-impl reference");
  ASSERT_EQ(fast.exit_code, 0);
  ASSERT_EQ(reference.exit_code, 0);
  EXPECT_EQ(fast.output, reference.output);
}

TEST(Cli, UnknownSchedImplRejectedWithRoster) {
  const auto result = run_command("--eet " + data("eet_homogeneous.csv") +
                                  " --generate low --policy MM --sched-impl bogus");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("unknown scheduler implementation"), std::string::npos);
  EXPECT_NE(result.output.find("fast"), std::string::npos);
  EXPECT_NE(result.output.find("reference"), std::string::npos);
}

TEST(Cli, UnknownPolicySuggestsNearestMatch) {
  const auto result = run_command("--eet " + data("eet_homogeneous.csv") +
                                  " --generate low --policy MEC");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("unknown scheduling policy"), std::string::npos);
  EXPECT_NE(result.output.find("did you mean"), std::string::npos);
  // The full roster rides along so the user can pick without --list-policies.
  EXPECT_NE(result.output.find("registered:"), std::string::npos);
  EXPECT_NE(result.output.find("FCFS"), std::string::npos);
}

TEST(Cli, RecoveryCheckpointRunsAndPrintsItsParameters) {
  const auto result = run_command(
      "--eet " + data("eet_heterogeneous.csv") + " --workload " +
      data("workload_medium.csv") +
      " --policy MECT --mtbf 40 --mttr 5 --fault-seed 7 --recovery checkpoint"
      " --checkpoint-interval 2 --checkpoint-cost 0.25 --restart-cost 0.25"
      " --summary -");
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_NE(result.output.find("recovery: checkpoint"), std::string::npos);
  // The waste decomposition lands in the summary report.
  EXPECT_NE(result.output.find("recovery_strategy,checkpoint"), std::string::npos);
  EXPECT_NE(result.output.find("lost_work_seconds"), std::string::npos);
  EXPECT_NE(result.output.find("checkpoints_taken"), std::string::npos);
}

TEST(Cli, RecoveryReplicateRunsAndPrintsItsParameters) {
  const auto result = run_command(
      "--eet " + data("eet_heterogeneous.csv") + " --workload " +
      data("workload_low.csv") +
      " --policy MM --mtbf 50 --mttr 5 --recovery replicate --replicas 2");
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_NE(result.output.find("recovery: replicate k=2"), std::string::npos);
}

TEST(Cli, UnknownRecoveryStrategySuggestsNearestMatch) {
  const auto result = run_command(
      "--eet " + data("eet_homogeneous.csv") +
      " --generate low --policy FCFS --mtbf 50 --recovery checkpont");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("did you mean 'checkpoint'"), std::string::npos);
  EXPECT_NE(result.output.find("resubmit"), std::string::npos);
}

TEST(Cli, RecoveryFlagsWithoutFaultSourceRejected) {
  const auto result =
      run_command("--eet " + data("eet_homogeneous.csv") +
                  " --generate low --policy FCFS --recovery checkpoint");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("--mtbf or --fault-trace"), std::string::npos);
}

TEST(Cli, RecoveryRunIsBitIdenticalUnderSeed) {
  const std::string args = "--eet " + data("eet_heterogeneous.csv") +
                           " --workload " + data("workload_medium.csv") +
                           " --policy MM --mtbf 30 --mttr 4 --fault-seed 99"
                           " --recovery checkpoint --checkpoint-interval 1.5";
  const auto first = run_command(args);
  const auto second = run_command(args);
  ASSERT_EQ(first.exit_code, 0);
  EXPECT_EQ(first.output, second.output);
}

TEST(Cli, UnknownIoStrategySuggestsNearestMatch) {
  const auto result = run_command(
      "--eet " + data("eet_homogeneous.csv") +
      " --generate low --policy FCFS --mtbf 50 --recovery checkpoint"
      " --io-bandwidth 100 --io-strategy cooperativ");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("unknown io strategy"), std::string::npos);
  EXPECT_NE(result.output.find("did you mean 'cooperative'"), std::string::npos);
  // The full roster rides along so the user can pick without the docs.
  EXPECT_NE(result.output.find("selfish | cooperative"), std::string::npos);
}

TEST(Cli, IoFlagsWithoutFaultSourceRejected) {
  const auto result =
      run_command("--eet " + data("eet_homogeneous.csv") +
                  " --generate low --policy FCFS --io-bandwidth 100");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("--mtbf or --fault-trace"), std::string::npos);
}

TEST(Cli, IoFlagsWithoutBandwidthRejected) {
  const auto result = run_command(
      "--eet " + data("eet_homogeneous.csv") +
      " --generate low --policy FCFS --mtbf 50 --recovery checkpoint"
      " --io-strategy cooperative");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("--io-bandwidth"), std::string::npos);
}

TEST(Cli, MultiTenantRunPrintsPerTenantWaste) {
  const auto result = run_command(
      "--eet " + data("eet_heterogeneous.csv") +
      " --generate medium --seed 5 --policy MECT --mtbf 40 --mttr 5"
      " --fault-seed 7 --recovery checkpoint --io-bandwidth 100"
      " --io-strategy cooperative --tenants 3 --tenant-report -");
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_NE(result.output.find("io channel: bandwidth=100"), std::string::npos);
  EXPECT_NE(result.output.find("3 tenants"), std::string::npos);
  EXPECT_NE(result.output.find("tenant0:"), std::string::npos);
  EXPECT_NE(result.output.find("tenant2:"), std::string::npos);
  // Tenant Report CSV header and one row per tenant.
  EXPECT_NE(result.output.find("tenant,tasks,completed,useful_s"), std::string::npos);
  EXPECT_NE(result.output.find("tenant1,"), std::string::npos);
}

TEST(Cli, TenantsWithoutGenerateRejected) {
  const auto result = run_command("--eet " + data("eet_heterogeneous.csv") +
                                  " --workload " + data("workload_low.csv") +
                                  " --policy FCFS --tenants 2");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("--tenants needs --generate"), std::string::npos);
}

TEST(ExperimentCli, HelpAndMissingConfig) {
  EXPECT_EQ(run_experiment("--help").exit_code, 0);
  // No config at all is invalid input (2), not an internal error (1).
  EXPECT_EQ(run_experiment("").exit_code, 2);
}

TEST(ExperimentCli, NonNumericWorkersIsInvalidInput) {
  // std::stoul used to throw std::invalid_argument here, which surfaced as
  // exit 1 (internal error) instead of 2 (invalid input).
  const auto result = run_experiment(data("experiment_example.ini") + " banana");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("workers"), std::string::npos);
}

TEST(ExperimentCli, NegativeWorkersIsInvalidInput) {
  // std::stoul used to wrap "-1" to SIZE_MAX and march on.
  const auto result = run_experiment(data("experiment_example.ini") + " -1");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("workers"), std::string::npos);
}

TEST(ExperimentCli, TrailingJunkInWorkersIsInvalidInput) {
  EXPECT_EQ(run_experiment(data("experiment_example.ini") + " 2x").exit_code, 2);
}

TEST(ExperimentCli, MissingConfigFileIsIoError) {
  EXPECT_EQ(run_experiment("/nonexistent/sweep.ini 1").exit_code, 3);
}

TEST(ExperimentCli, UnknownSchedImplRejectedWithRoster) {
  const auto result =
      run_experiment(data("experiment_example.ini") + " 1 --sched-impl bogus");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("unknown scheduler implementation"), std::string::npos);
  EXPECT_NE(result.output.find("fast"), std::string::npos);
  EXPECT_NE(result.output.find("reference"), std::string::npos);
}

TEST(ExperimentCli, UnknownBackendRejectedWithRosterAndSuggestion) {
  const auto result =
      run_experiment(data("experiment_example.ini") + " 1 --backend porcs");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("unknown experiment backend"), std::string::npos);
  EXPECT_NE(result.output.find("did you mean 'procs'"), std::string::npos);
  EXPECT_NE(result.output.find("threads | procs"), std::string::npos);
}

TEST(ExperimentCli, NonPositiveCellTimeoutRejectedWithLocator) {
  for (const char* bad : {"0", "-1", "nope"}) {
    const auto result = run_experiment(data("experiment_example.ini") +
                                       " 1 --backend procs --cell-timeout " + bad);
    EXPECT_EQ(result.exit_code, 2) << bad;
    EXPECT_NE(result.output.find("--cell-timeout must be"), std::string::npos) << bad;
    EXPECT_NE(result.output.find(bad), std::string::npos) << bad;
  }
}

TEST(ExperimentCli, NonPositiveMaxRetriesRejectedWithLocator) {
  for (const char* bad : {"0", "-2", "many"}) {
    const auto result = run_experiment(data("experiment_example.ini") +
                                       " 1 --backend procs --max-retries " + bad);
    EXPECT_EQ(result.exit_code, 2) << bad;
    EXPECT_NE(result.output.find("--max-retries must be"), std::string::npos) << bad;
  }
}

TEST(ExperimentCli, SupervisionFlagsNeedProcsBackend) {
  const auto timeout =
      run_experiment(data("experiment_example.ini") + " 1 --cell-timeout 5");
  EXPECT_EQ(timeout.exit_code, 2);
  EXPECT_NE(timeout.output.find("--cell-timeout needs --backend procs"),
            std::string::npos);
  const auto retries =
      run_experiment(data("experiment_example.ini") + " 1 --max-retries 3");
  EXPECT_EQ(retries.exit_code, 2);
  EXPECT_NE(retries.output.find("--max-retries needs --backend procs"),
            std::string::npos);
}

TEST(ExperimentCli, ResumeNeedsJournal) {
  const auto result = run_experiment(data("experiment_example.ini") + " 1 --resume");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("--resume needs --journal"), std::string::npos);
}

TEST(ExperimentCli, UnknownFlagRejectedWithSuggestion) {
  // A typo'd flag used to be swallowed as a positional argument; it must be
  // exit 2 with a nearest-match hint.
  const auto typo =
      run_experiment(data("experiment_example.ini") + " 1 --cel-timeout 5");
  EXPECT_EQ(typo.exit_code, 2);
  EXPECT_NE(typo.output.find("unknown flag '--cel-timeout'"), std::string::npos);
  EXPECT_NE(typo.output.find("did you mean '--cell-timeout'"), std::string::npos);
  const auto nonsense = run_experiment("--frobnicate");
  EXPECT_EQ(nonsense.exit_code, 2);
  EXPECT_NE(nonsense.output.find("unknown flag '--frobnicate'"), std::string::npos);
}

TEST(ExperimentCli, NonPositiveServeWorkersRejectedWithLocator) {
  for (const char* bad : {"0", "-1", "lots"}) {
    const auto result =
        run_experiment(std::string("--serve /tmp/e2c_cli_test.sock --serve-workers ") +
                       bad);
    EXPECT_EQ(result.exit_code, 2) << bad;
    EXPECT_NE(result.output.find("--serve-workers must be"), std::string::npos) << bad;
    EXPECT_NE(result.output.find("(--serve-workers)"), std::string::npos) << bad;
  }
}

TEST(ExperimentCli, NonPositiveBacklogRejectedWithLocator) {
  for (const char* bad : {"0", "-3", "full"}) {
    const auto result = run_experiment(
        std::string("--serve /tmp/e2c_cli_test.sock --backlog ") + bad);
    EXPECT_EQ(result.exit_code, 2) << bad;
    EXPECT_NE(result.output.find("--backlog must be"), std::string::npos) << bad;
    EXPECT_NE(result.output.find("(--backlog)"), std::string::npos) << bad;
  }
}

TEST(ExperimentCli, SubmitWithoutSocketPathRejected) {
  const auto result = run_experiment("--submit");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("missing value for --submit"), std::string::npos);
}

TEST(ExperimentCli, SubmitWithoutConfigRejected) {
  const auto result = run_experiment("--submit /tmp/e2c_cli_test.sock");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("--submit needs a CONFIG.ini"), std::string::npos);
}

TEST(ExperimentCli, ServeFlagsNeedServeMode) {
  const auto workers =
      run_experiment(data("experiment_example.ini") + " 1 --serve-workers 2");
  EXPECT_EQ(workers.exit_code, 2);
  EXPECT_NE(workers.output.find("--serve-workers needs --serve"), std::string::npos);
  const auto backlog = run_experiment(data("experiment_example.ini") + " 1 --backlog 2");
  EXPECT_EQ(backlog.exit_code, 2);
  EXPECT_NE(backlog.output.find("--backlog needs --serve"), std::string::npos);
}

TEST(ExperimentCli, ServeAndSubmitAreMutuallyExclusive) {
  const auto result = run_experiment("--serve /tmp/a.sock --submit /tmp/b.sock");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("mutually exclusive"), std::string::npos);
}

TEST(ExperimentCli, ServeRejectsPositionalConfig) {
  const auto result =
      run_experiment("--serve /tmp/e2c_cli_test.sock " + data("experiment_example.ini"));
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("--serve takes no CONFIG.ini"), std::string::npos);
}

TEST(ExperimentCli, SubmitToMissingSocketIsInvalidInput) {
  const auto result = run_experiment("--submit /nonexistent/e2c.sock " +
                                     data("experiment_example.ini"));
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("no service socket"), std::string::npos);
}

TEST(ExperimentCli, ReferenceSchedImplMatchesFastSweep) {
  const auto fast =
      run_experiment(data("experiment_example.ini") + " 1 --sched-impl fast");
  const auto reference =
      run_experiment(data("experiment_example.ini") + " 1 --sched-impl reference");
  ASSERT_EQ(fast.exit_code, 0);
  ASSERT_EQ(reference.exit_code, 0);
  EXPECT_EQ(fast.output, reference.output);
}

TEST(Cli, IncompatibleWorkloadRejected) {
  // The quiz EET has task types T1-T3 only; the classroom workload uses
  // T1-T5 — the paper's compatibility rule must reject it.
  const auto result = run_command("--eet " + data("quiz_eet.csv") + " --workload " +
                                  data("workload_low.csv") + " --policy FCFS");
  EXPECT_NE(result.exit_code, 0);
  EXPECT_NE(result.output.find("unknown task type"), std::string::npos);
}

}  // namespace
