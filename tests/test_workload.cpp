// Unit tests for the workload trace container + CSV IO (workload/workload.hpp).
#include "workload/workload.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "util/error.hpp"

namespace {

using e2c::hetero::EetMatrix;
using e2c::workload::TaskDef;
using e2c::workload::Workload;

EetMatrix sample_eet() {
  return EetMatrix({"T1", "T2"}, {"m1", "m2"}, {{2.0, 4.0}, {3.0, 1.0}});
}

TaskDef make_task(std::uint64_t id, std::size_t type, double arrival, double deadline) {
  TaskDef task;
  task.id = id;
  task.type = type;
  task.arrival = arrival;
  task.deadline = deadline;
  return task;
}

TEST(Workload, SortsByArrival) {
  Workload workload({make_task(1, 0, 5.0, 10.0), make_task(2, 1, 1.0, 9.0),
                     make_task(3, 0, 3.0, 8.0)});
  ASSERT_EQ(workload.size(), 3u);
  EXPECT_EQ(workload.tasks()[0].id, 2u);
  EXPECT_EQ(workload.tasks()[1].id, 3u);
  EXPECT_EQ(workload.tasks()[2].id, 1u);
  EXPECT_DOUBLE_EQ(workload.last_arrival(), 5.0);
}

TEST(Workload, TieBrokenById) {
  Workload workload({make_task(9, 0, 2.0, 10.0), make_task(4, 0, 2.0, 10.0)});
  EXPECT_EQ(workload.tasks()[0].id, 4u);
}

TEST(Workload, RejectsDeadlineBeforeArrival) {
  EXPECT_THROW(Workload({make_task(1, 0, 5.0, 4.0)}), e2c::InputError);
}

TEST(Workload, RejectsNegativeArrival) {
  EXPECT_THROW(Workload({make_task(1, 0, -1.0, 4.0)}), e2c::InputError);
}

TEST(Workload, ValidateAgainstEnforcesEetCompatibility) {
  const EetMatrix eet = sample_eet();
  Workload ok({make_task(1, 1, 0.0, 5.0)});
  EXPECT_NO_THROW(ok.validate_against(eet));
  Workload bad({make_task(1, 7, 0.0, 5.0)});  // type 7 not in the EET
  EXPECT_THROW(bad.validate_against(eet), e2c::InputError);
}

TEST(Workload, TypeHistogram) {
  Workload workload({make_task(1, 0, 0.0, 5.0), make_task(2, 1, 1.0, 5.0),
                     make_task(3, 1, 2.0, 6.0)});
  const auto histogram = workload.type_histogram(2);
  EXPECT_EQ(histogram[0], 1u);
  EXPECT_EQ(histogram[1], 2u);
}

TEST(Workload, CsvParseWithDeadline) {
  const EetMatrix eet = sample_eet();
  const Workload workload = Workload::from_csv_text(
      "task_id,task_type,arrival_time,deadline\n0,T1,0.5,4.5\n1,T2,1.25,9\n", eet);
  ASSERT_EQ(workload.size(), 2u);
  EXPECT_EQ(workload.tasks()[0].type, 0u);
  EXPECT_DOUBLE_EQ(workload.tasks()[0].arrival, 0.5);
  EXPECT_DOUBLE_EQ(workload.tasks()[0].deadline, 4.5);
  EXPECT_EQ(workload.tasks()[1].type, 1u);
}

TEST(Workload, CsvParseWithoutDeadlineColumn) {
  const EetMatrix eet = sample_eet();
  const Workload workload =
      Workload::from_csv_text("task_id,task_type,arrival_time\n0,T1,2\n", eet);
  EXPECT_EQ(workload.tasks()[0].deadline, e2c::core::kTimeInfinity);
}

TEST(Workload, CsvEmptyDeadlineFieldMeansInfinite) {
  const EetMatrix eet = sample_eet();
  const Workload workload = Workload::from_csv_text(
      "task_id,task_type,arrival_time,deadline\n0,T1,2,\n", eet);
  EXPECT_EQ(workload.tasks()[0].deadline, e2c::core::kTimeInfinity);
}

TEST(Workload, CsvRejectsUnknownTaskType) {
  // The paper's rule: no workload task type outside the EET.
  const EetMatrix eet = sample_eet();
  EXPECT_THROW((void)Workload::from_csv_text(
                   "task_id,task_type,arrival_time\n0,T9,1\n", eet),
               e2c::InputError);
}

TEST(Workload, CsvRejectsMalformedRows) {
  const EetMatrix eet = sample_eet();
  EXPECT_THROW((void)Workload::from_csv_text("", eet), e2c::InputError);
  EXPECT_THROW((void)Workload::from_csv_text("task_id\n", eet), e2c::InputError);
  EXPECT_THROW((void)Workload::from_csv_text(
                   "task_id,task_type,arrival_time\nx,T1,1\n", eet),
               e2c::InputError);
  EXPECT_THROW((void)Workload::from_csv_text(
                   "task_id,task_type,arrival_time\n0,T1,abc\n", eet),
               e2c::InputError);
}

TEST(Workload, CsvRoundTrip) {
  const EetMatrix eet = sample_eet();
  Workload original({make_task(0, 0, 0.5, 4.0), make_task(1, 1, 2.5, 12.0),
                     make_task(2, 0, 3.0, e2c::core::kTimeInfinity)});
  const Workload parsed = Workload::from_csv_text(original.to_csv_text(eet), eet);
  ASSERT_EQ(parsed.size(), original.size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_EQ(parsed.tasks()[i].id, original.tasks()[i].id);
    EXPECT_EQ(parsed.tasks()[i].type, original.tasks()[i].type);
    EXPECT_NEAR(parsed.tasks()[i].arrival, original.tasks()[i].arrival, 1e-4);
    if (original.tasks()[i].deadline == e2c::core::kTimeInfinity) {
      EXPECT_EQ(parsed.tasks()[i].deadline, e2c::core::kTimeInfinity);
    } else {
      EXPECT_NEAR(parsed.tasks()[i].deadline, original.tasks()[i].deadline, 1e-4);
    }
  }
}

TEST(Workload, SaveAndLoadFile) {
  const EetMatrix eet = sample_eet();
  const std::string path = testing::TempDir() + "/e2c_workload_test.csv";
  Workload original({make_task(0, 0, 1.0, 7.0)});
  original.save_csv(path, eet);
  const Workload loaded = Workload::load_csv(path, eet);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_DOUBLE_EQ(loaded.tasks()[0].arrival, 1.0);
  std::remove(path.c_str());
}

TEST(Workload, EmptyWorkloadBehaves) {
  Workload workload;
  EXPECT_TRUE(workload.empty());
  EXPECT_DOUBLE_EQ(workload.last_arrival(), 0.0);
  EXPECT_NO_THROW(workload.validate_against(sample_eet()));
}

}  // namespace
