// Unit tests for the GUI-substitute SimulationController (viz/controller.hpp).
#include "viz/controller.hpp"

#include <gtest/gtest.h>

#include "sched/registry.hpp"
#include "util/error.hpp"

namespace {

using e2c::hetero::EetMatrix;
using e2c::sched::Simulation;
using e2c::viz::RunState;
using e2c::viz::SimulationController;
using e2c::workload::TaskDef;
using e2c::workload::Workload;

e2c::viz::SimulationFactory make_factory(std::size_t task_count = 5) {
  return [task_count] {
    EetMatrix eet({"T1"}, {"m0", "m1"}, {{2.0, 3.0}});
    auto simulation = std::make_unique<Simulation>(
        e2c::sched::make_default_system(std::move(eet)), e2c::sched::make_policy("MECT"));
    std::vector<TaskDef> tasks;
    for (std::uint64_t i = 0; i < task_count; ++i) {
      TaskDef task;
      task.id = i;
      task.type = 0;
      task.arrival = static_cast<double>(i);
      task.deadline = 1000.0;
      tasks.push_back(task);
    }
    simulation->load(Workload(std::move(tasks)));
    return simulation;
  };
}

TEST(Controller, StartsReady) {
  SimulationController controller(make_factory());
  EXPECT_EQ(controller.state(), RunState::kReady);
  EXPECT_DOUBLE_EQ(controller.simulation().engine().now(), 0.0);
}

TEST(Controller, RunToCompletionFinishes) {
  SimulationController controller(make_factory());
  controller.run_to_completion();
  EXPECT_EQ(controller.state(), RunState::kFinished);
  EXPECT_TRUE(controller.simulation().finished());
}

TEST(Controller, IncrementStepsOneEvent) {
  SimulationController controller(make_factory());
  const auto before = controller.simulation().engine().processed_count();
  EXPECT_TRUE(controller.increment());
  EXPECT_EQ(controller.simulation().engine().processed_count(), before + 1);
  EXPECT_EQ(controller.state(), RunState::kPaused);
}

TEST(Controller, IncrementUntilFinished) {
  SimulationController controller(make_factory(2));
  while (controller.increment()) {
  }
  EXPECT_EQ(controller.state(), RunState::kFinished);
  EXPECT_FALSE(controller.increment());  // stays finished
}

TEST(Controller, PlayRunsToCompletionWithVirtualTime) {
  SimulationController controller(make_factory());
  double slept = 0.0;
  controller.set_sleeper([&](std::chrono::duration<double> d) { slept += d.count(); });
  controller.set_speed(100.0);
  controller.play();
  EXPECT_EQ(controller.state(), RunState::kFinished);
  EXPECT_GT(slept, 0.0);  // throttling happened
}

TEST(Controller, SpeedDialScalesSleep) {
  double slow_sleep = 0.0;
  double fast_sleep = 0.0;
  {
    SimulationController controller(make_factory());
    controller.set_sleeper(
        [&](std::chrono::duration<double> d) { slow_sleep += d.count(); });
    controller.set_speed(10.0);
    controller.play();
  }
  {
    SimulationController controller(make_factory());
    controller.set_sleeper(
        [&](std::chrono::duration<double> d) { fast_sleep += d.count(); });
    controller.set_speed(100.0);
    controller.play();
  }
  EXPECT_NEAR(slow_sleep / fast_sleep, 10.0, 0.2);
}

TEST(Controller, FrameCallbackCanPause) {
  SimulationController controller(make_factory());
  controller.set_sleeper([](std::chrono::duration<double>) {});
  int frames = 0;
  controller.play([&](const Simulation&) { return ++frames < 3; });
  EXPECT_EQ(controller.state(), RunState::kPaused);
  EXPECT_EQ(frames, 3);
  // Resuming play finishes the run.
  controller.play();
  EXPECT_EQ(controller.state(), RunState::kFinished);
}

TEST(Controller, ResetRebuildsSimulation) {
  SimulationController controller(make_factory());
  controller.run_to_completion();
  const auto processed = controller.simulation().engine().processed_count();
  EXPECT_GT(processed, 0u);
  controller.reset();
  EXPECT_EQ(controller.state(), RunState::kReady);
  EXPECT_EQ(controller.simulation().engine().processed_count(), 0u);
  controller.run_to_completion();  // fresh run works
  EXPECT_TRUE(controller.simulation().finished());
}

TEST(Controller, ValidatesInputs) {
  EXPECT_THROW(SimulationController(nullptr), e2c::InputError);
  SimulationController controller(make_factory());
  EXPECT_THROW(controller.set_speed(0.0), e2c::InputError);
  EXPECT_THROW(controller.set_speed(-5.0), e2c::InputError);
  EXPECT_THROW(controller.set_sleeper(nullptr), e2c::InputError);
}

TEST(Controller, RunStateNames) {
  EXPECT_STREQ(e2c::viz::run_state_name(RunState::kReady), "ready");
  EXPECT_STREQ(e2c::viz::run_state_name(RunState::kFinished), "finished");
}

}  // namespace
