// Unit tests for string helpers (util/string_util.hpp).
#include "util/string_util.hpp"

#include <gtest/gtest.h>

namespace {

namespace util = e2c::util;

TEST(Trim, RemovesSurroundingWhitespace) {
  EXPECT_EQ(util::trim("  hi  "), "hi");
  EXPECT_EQ(util::trim("\t\r\nhi\n"), "hi");
  EXPECT_EQ(util::trim("hi"), "hi");
  EXPECT_EQ(util::trim("   "), "");
  EXPECT_EQ(util::trim(""), "");
}

TEST(Split, KeepsEmptyFields) {
  EXPECT_EQ(util::split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(util::split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(util::split(",", ','), (std::vector<std::string>{"", ""}));
  EXPECT_EQ(util::split("", ','), (std::vector<std::string>{""}));
}

TEST(ToLower, AsciiOnly) {
  EXPECT_EQ(util::to_lower("MeCt"), "mect");
  EXPECT_EQ(util::to_lower("already"), "already");
}

TEST(IEquals, CaseInsensitive) {
  EXPECT_TRUE(util::iequals("FCFS", "fcfs"));
  EXPECT_TRUE(util::iequals("MeEt", "mEEt"));
  EXPECT_FALSE(util::iequals("MM", "MMU"));
  EXPECT_FALSE(util::iequals("a", "b"));
}

TEST(ParseDouble, ValidAndInvalid) {
  EXPECT_DOUBLE_EQ(util::parse_double("3.25").value(), 3.25);
  EXPECT_DOUBLE_EQ(util::parse_double("  -4e2 ").value(), -400.0);
  EXPECT_FALSE(util::parse_double("abc").has_value());
  EXPECT_FALSE(util::parse_double("1.2x").has_value());
  EXPECT_FALSE(util::parse_double("").has_value());
  EXPECT_FALSE(util::parse_double("   ").has_value());
}

TEST(ParseInt, ValidAndInvalid) {
  EXPECT_EQ(util::parse_int("42").value(), 42);
  EXPECT_EQ(util::parse_int(" -7 ").value(), -7);
  EXPECT_FALSE(util::parse_int("4.5").has_value());
  EXPECT_FALSE(util::parse_int("x").has_value());
  EXPECT_FALSE(util::parse_int("").has_value());
}

TEST(FormatFixed, Decimals) {
  EXPECT_EQ(util::format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(util::format_fixed(2.0, 0), "2");
  EXPECT_EQ(util::format_fixed(-1.5, 1), "-1.5");
}

TEST(Pad, LeftAndRight) {
  EXPECT_EQ(util::pad_left("ab", 4), "  ab");
  EXPECT_EQ(util::pad_right("ab", 4), "ab  ");
  EXPECT_EQ(util::pad_left("abcdef", 4), "abcdef");  // no truncation
}

TEST(StartsWith, Basic) {
  EXPECT_TRUE(util::starts_with("--policy", "--"));
  EXPECT_FALSE(util::starts_with("-p", "--"));
  EXPECT_TRUE(util::starts_with("abc", ""));
}

}  // namespace
