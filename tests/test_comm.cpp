// Unit tests for the communication model (net/comm_model.hpp) and its
// integration (transfers, slot reservation, drops in flight).
#include "net/comm_model.hpp"

#include <gtest/gtest.h>

#include "sched/registry.hpp"
#include "sched/simulation.hpp"
#include "util/error.hpp"

namespace {

using e2c::hetero::EetMatrix;
using e2c::net::CommModel;
using e2c::net::LinkSpec;
using e2c::workload::TaskDef;
using e2c::workload::TaskStatus;
using e2c::workload::Workload;

TEST(CommModel, TransferTimeFormula) {
  const CommModel comm({10.0, 50.0}, {LinkSpec{0.1, 100.0}, LinkSpec{0.0, 25.0}});
  // latency + size/bandwidth
  EXPECT_DOUBLE_EQ(comm.transfer_time(0, 0), 0.1 + 10.0 / 100.0);
  EXPECT_DOUBLE_EQ(comm.transfer_time(1, 1), 50.0 / 25.0);
}

TEST(CommModel, InstantaneousIsZero) {
  const CommModel comm = CommModel::instantaneous(3, 2);
  for (std::size_t t = 0; t < 3; ++t) {
    for (std::size_t m = 0; m < 2; ++m) EXPECT_DOUBLE_EQ(comm.transfer_time(t, m), 0.0);
  }
}

TEST(CommModel, UniformBuilder) {
  const CommModel comm = CommModel::uniform(2, 3, 20.0, LinkSpec{0.5, 10.0});
  EXPECT_DOUBLE_EQ(comm.transfer_time(0, 2), 0.5 + 2.0);
  EXPECT_EQ(comm.task_type_count(), 2u);
  EXPECT_EQ(comm.machine_type_count(), 3u);
}

TEST(CommModel, Validation) {
  EXPECT_THROW(CommModel({-1.0}, {LinkSpec{}}), e2c::InputError);
  EXPECT_THROW(CommModel({1.0}, {LinkSpec{-0.1, 10.0}}), e2c::InputError);
  EXPECT_THROW(CommModel({1.0}, {LinkSpec{0.0, 0.0}}), e2c::InputError);
  CommModel comm = CommModel::instantaneous(1, 1);
  EXPECT_THROW((void)comm.payload_mb(5), e2c::InputError);
  EXPECT_THROW((void)comm.link(5), e2c::InputError);
  EXPECT_THROW(comm.set_payload_mb(0, -2.0), e2c::InputError);
  comm.set_payload_mb(0, 7.0);
  EXPECT_DOUBLE_EQ(comm.payload_mb(0), 7.0);
  comm.set_link(0, LinkSpec{0.2, 5.0});
  EXPECT_DOUBLE_EQ(comm.link(0).latency_seconds, 0.2);
}

// --- simulation integration ------------------------------------------------

e2c::sched::SystemConfig comm_system(double payload_mb, double bandwidth) {
  EetMatrix eet({"T1"}, {"m0", "m1"}, {{4.0, 4.0}});
  auto config = e2c::sched::make_default_system(std::move(eet));
  config.comm = CommModel::uniform(1, 2, payload_mb, LinkSpec{0.0, bandwidth});
  return config;
}

TaskDef make_task(std::uint64_t id, double arrival, double deadline) {
  TaskDef task;
  task.id = id;
  task.type = 0;
  task.arrival = arrival;
  task.deadline = deadline;
  return task;
}

TEST(CommSimulation, TransferDelaysExecutionStart) {
  // 10 MB over 10 MB/s = 1 s transfer; execution 4 s; completion at 5.
  auto config = comm_system(10.0, 10.0);
  e2c::sched::Simulation simulation(config, e2c::sched::make_policy("MECT"));
  simulation.load(Workload({make_task(0, 0.0, 100.0)}));
  simulation.run();
  const auto& state = simulation.task_state();
  EXPECT_EQ(state.status[0], TaskStatus::kCompleted);
  EXPECT_DOUBLE_EQ(state.start_time[0], 1.0);
  EXPECT_DOUBLE_EQ(state.completion_time[0], 5.0);
  // Assignment happened at arrival even though execution waited.
  EXPECT_DOUBLE_EQ(state.assignment_time[0], 0.0);
}

TEST(CommSimulation, ZeroPayloadBehavesLikeNoComm) {
  auto config = comm_system(0.0, 10.0);
  e2c::sched::Simulation simulation(config, e2c::sched::make_policy("MECT"));
  simulation.load(Workload({make_task(0, 0.0, 100.0)}));
  simulation.run();
  EXPECT_DOUBLE_EQ(simulation.task_state().start_time[0], 0.0);
}

TEST(CommSimulation, DroppedWhileTransferring) {
  // Transfer takes 5 s but the deadline hits at 2: dropped in flight, never
  // started, counted against the assigned machine.
  auto config = comm_system(50.0, 10.0);
  e2c::sched::Simulation simulation(config, e2c::sched::make_policy("MECT"));
  simulation.load(Workload({make_task(0, 0.0, 2.0)}));
  simulation.run();
  const auto& state = simulation.task_state();
  EXPECT_EQ(state.status[0], TaskStatus::kDropped);
  EXPECT_FALSE(e2c::core::time_set(state.start_time[0]));
  ASSERT_NE(state.machine[0], e2c::workload::kNoMachine);
  EXPECT_DOUBLE_EQ(state.missed_time[0], 2.0);
  EXPECT_EQ(simulation.counters().dropped, 1u);
  // The reservation was released.
  EXPECT_EQ(simulation.in_flight_count(state.machine[0]), 0u);
}

TEST(CommSimulation, InFlightTasksReserveQueueSlots) {
  // Batch policy, queue capacity 1, slow transfers: the scheduler must not
  // over-commit a machine whose slot is reserved by an in-flight transfer.
  EetMatrix eet({"T1"}, {"m0"}, {{4.0}});
  auto config = e2c::sched::make_default_system(std::move(eet));
  config.machine_queue_capacity = 1;
  config.comm = CommModel::uniform(1, 1, 10.0, LinkSpec{0.0, 10.0});  // 1 s
  e2c::sched::Simulation simulation(config, e2c::sched::make_policy("MM"));
  simulation.load(Workload({make_task(0, 0.0, 100.0), make_task(1, 0.0, 100.0),
                            make_task(2, 0.0, 100.0)}));
  bool over_reserved = false;
  while (simulation.step()) {
    over_reserved |= simulation.in_flight_count(0) +
                         simulation.machine(0).queue_length() >
                     1;
  }
  EXPECT_FALSE(over_reserved);
  EXPECT_EQ(simulation.counters().completed, 3u);
}

TEST(CommSimulation, CoverageValidatedAtConstruction) {
  EetMatrix eet({"T1", "T2"}, {"m0"}, {{1.0}, {2.0}});
  auto config = e2c::sched::make_default_system(std::move(eet));
  config.comm = CommModel::instantaneous(1, 1);  // too few task types
  EXPECT_THROW(e2c::sched::Simulation(config, e2c::sched::make_policy("FCFS")),
               e2c::InputError);
}

TEST(CommSimulation, SlowLinksReduceCompletionUnderDeadlines) {
  auto run_with_bandwidth = [&](double bandwidth) {
    EetMatrix eet({"T1"}, {"m0", "m1"}, {{2.0, 2.0}});
    auto config = e2c::sched::make_default_system(std::move(eet));
    config.comm = e2c::net::CommModel::uniform(1, 2, 20.0, LinkSpec{0.0, bandwidth});
    e2c::sched::Simulation simulation(config, e2c::sched::make_policy("MECT"));
    std::vector<TaskDef> tasks;
    for (std::uint64_t i = 0; i < 10; ++i) {
      tasks.push_back(make_task(i, static_cast<double>(i), static_cast<double>(i) + 6.0));
    }
    simulation.load(Workload(std::move(tasks)));
    simulation.run();
    return simulation.counters().completion_percent();
  };
  // 20 MB at 4 MB/s = 5 s transfer + 2 s execution > the 6 s relative
  // deadline: slow links must cost completions.
  EXPECT_GT(run_with_bandwidth(1000.0), run_with_bandwidth(4.0));
}

}  // namespace
