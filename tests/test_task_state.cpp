// SoA equivalence suite: the per-status counters the simulation maintains
// incrementally at terminal transitions must equal a full scan of the SoA
// status column, and the waste invariant must hold row-by-row, after
// randomized fault/recovery runs. The run-digest goldens prove the layout
// refactor is observationally pure; this suite proves the two bookkeeping
// paths (incremental counters vs dense columns) can never drift apart.
#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <vector>

#include "exp/scenario.hpp"
#include "fault/fault_model.hpp"
#include "sched/registry.hpp"
#include "sched/simulation.hpp"
#include "util/rng.hpp"
#include "workload/task_state.hpp"
#include "workload/workload.hpp"

namespace {

using e2c::fault::RecoveryStrategy;
using e2c::sched::Simulation;
using e2c::sched::SystemConfig;
using e2c::workload::TaskDef;
using e2c::workload::TaskStatus;
using e2c::workload::Workload;

struct StatusScan {
  std::size_t completed = 0;
  std::size_t cancelled = 0;
  std::size_t dropped = 0;
  std::size_t failed = 0;
  std::size_t replicas_cancelled = 0;
  std::size_t non_terminal = 0;
};

StatusScan scan_statuses(const e2c::workload::TaskStateSoA& state) {
  StatusScan scan;
  for (std::size_t i = 0; i < state.size(); ++i) {
    switch (state.status[i]) {
      case TaskStatus::kCompleted: ++scan.completed; break;
      case TaskStatus::kCancelled: ++scan.cancelled; break;
      case TaskStatus::kDropped: ++scan.dropped; break;
      case TaskStatus::kFailed: ++scan.failed; break;
      case TaskStatus::kReplicaCancelled: ++scan.replicas_cancelled; break;
      default: ++scan.non_terminal; break;
    }
  }
  return scan;
}

void expect_waste_invariant(const Simulation& simulation) {
  const auto& state = simulation.task_state();
  for (std::size_t i = 0; i < state.size(); ++i) {
    EXPECT_NEAR(state.useful_seconds[i] + state.lost_seconds[i] +
                    state.checkpoint_overhead_seconds[i],
                state.machine_seconds[i], 1e-9)
        << "task " << state.id(i) << " ("
        << e2c::workload::task_status_name(state.status[i]) << ")";
  }
}

/// One randomized fault/recovery run: stochastic failures with a random
/// MTBF/MTTR draw, a random policy, and (for checkpoint runs) random τ/C/R.
std::unique_ptr<Simulation> run_randomized(std::uint64_t seed, RecoveryStrategy strategy) {
  e2c::util::Rng rng(seed);
  SystemConfig system = e2c::exp::heterogeneous_classroom(2);
  system.faults.enabled = true;
  system.faults.mtbf = rng.uniform(6.0, 30.0);
  system.faults.mttr = rng.uniform(1.0, 4.0);
  system.faults.seed = seed * 7919 + 13;
  system.faults.recovery.strategy = strategy;
  if (strategy == RecoveryStrategy::kCheckpoint) {
    system.faults.recovery.checkpoint_interval = rng.uniform(0.5, 3.0);
    system.faults.recovery.checkpoint_cost = rng.uniform(0.1, 0.5);
    system.faults.recovery.restart_cost = rng.uniform(0.1, 0.5);
  }
  if (strategy == RecoveryStrategy::kReplicate) {
    system.faults.recovery.replicas = 2;
  }
  const char* policy = rng.bernoulli(0.5) ? "MECT" : "MM";

  std::vector<TaskDef> tasks;
  const std::size_t count = 30 + static_cast<std::size_t>(rng.uniform_int(0, 20));
  const std::size_t types = system.eet.task_type_count();
  for (std::size_t i = 0; i < count; ++i) {
    TaskDef task;
    task.id = i;
    task.type = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(types) - 1));
    task.arrival = static_cast<double>(i) * rng.uniform(0.2, 0.8);
    task.deadline = task.arrival + rng.uniform(5.0, 40.0);
    tasks.push_back(task);
  }

  auto simulation = std::make_unique<Simulation>(std::move(system),
                                                 e2c::sched::make_policy(policy));
  simulation->load(Workload(std::move(tasks)));
  simulation->run();
  return simulation;
}

TEST(TaskStateEquivalence, IncrementalCountersMatchStatusScan) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    for (const RecoveryStrategy strategy :
         {RecoveryStrategy::kResubmit, RecoveryStrategy::kCheckpoint}) {
      const auto simulation_ptr = run_randomized(seed, strategy);
      const Simulation& simulation = *simulation_ptr;
      const auto& counters = simulation.counters();
      const StatusScan scan = scan_statuses(simulation.task_state());
      EXPECT_EQ(scan.non_terminal, 0u) << "seed " << seed;
      EXPECT_EQ(counters.total, simulation.task_state().size()) << "seed " << seed;
      EXPECT_EQ(counters.completed, scan.completed) << "seed " << seed;
      EXPECT_EQ(counters.cancelled, scan.cancelled) << "seed " << seed;
      EXPECT_EQ(counters.dropped, scan.dropped) << "seed " << seed;
      EXPECT_EQ(counters.failed, scan.failed) << "seed " << seed;
      EXPECT_EQ(scan.replicas_cancelled, 0u) << "seed " << seed;
      expect_waste_invariant(simulation);
    }
  }
}

TEST(TaskStateEquivalence, ReplicatedCountersMatchStatusScan) {
  // Replication counts one outcome per submitted task (group), so the scan
  // compares winners and cancelled siblings rather than raw row totals.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto simulation_ptr = run_randomized(seed, RecoveryStrategy::kReplicate);
    const Simulation& simulation = *simulation_ptr;
    const auto& counters = simulation.counters();
    const auto& state = simulation.task_state();
    const StatusScan scan = scan_statuses(state);
    EXPECT_EQ(scan.non_terminal, 0u) << "seed " << seed;
    EXPECT_EQ(counters.completed, scan.completed) << "seed " << seed;
    EXPECT_EQ(counters.replicas_cancelled, scan.replicas_cancelled) << "seed " << seed;
    // Every row is a member of some group; the group count is the primaries.
    ASSERT_TRUE(state.has_replica_column());
    std::size_t primaries = 0;
    for (std::size_t i = 0; i < state.size(); ++i) {
      if (state.replica_of[i] == e2c::workload::kNoTaskId) ++primaries;
    }
    EXPECT_EQ(counters.total, primaries) << "seed " << seed;
    expect_waste_invariant(simulation);
  }
}

}  // namespace
