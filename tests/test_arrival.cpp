// Unit + statistical tests for arrival processes (workload/arrival.hpp).
#include "workload/arrival.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace {

using e2c::util::Rng;
using e2c::workload::ArrivalKind;
using e2c::workload::generate_arrivals;

class ArrivalKindTest : public testing::TestWithParam<ArrivalKind> {};

TEST_P(ArrivalKindTest, TimesWithinWindowAndSorted) {
  Rng rng(99);
  const double duration = 500.0;
  const auto times = generate_arrivals(GetParam(), 1.0, duration, rng);
  ASSERT_FALSE(times.empty());
  double prev = 0.0;
  for (double t : times) {
    EXPECT_GE(t, prev);
    EXPECT_LT(t, duration);
    prev = t;
  }
}

TEST_P(ArrivalKindTest, MeanRateApproximatelyRespected) {
  Rng rng(7);
  const double rate = 2.0;
  const double duration = 2000.0;
  const auto times = generate_arrivals(GetParam(), rate, duration, rng);
  const double realized = static_cast<double>(times.size()) / duration;
  // All processes target the requested long-run rate; burst is noisier.
  EXPECT_NEAR(realized, rate, GetParam() == ArrivalKind::kBurst ? 0.5 : 0.15);
}

TEST_P(ArrivalKindTest, DeterministicInSeed) {
  Rng rng_a(123);
  Rng rng_b(123);
  const auto a = generate_arrivals(GetParam(), 1.5, 100.0, rng_a);
  const auto b = generate_arrivals(GetParam(), 1.5, 100.0, rng_b);
  EXPECT_EQ(a, b);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, ArrivalKindTest,
                         testing::Values(ArrivalKind::kPoisson, ArrivalKind::kUniform,
                                         ArrivalKind::kNormal, ArrivalKind::kConstant,
                                         ArrivalKind::kBurst),
                         [](const testing::TestParamInfo<ArrivalKind>& param_info) {
                           return e2c::workload::arrival_kind_name(param_info.param);
                         });

TEST(Arrival, ConstantSpacingExact) {
  Rng rng(1);
  const auto times = generate_arrivals(ArrivalKind::kConstant, 0.5, 10.0, rng);
  ASSERT_EQ(times.size(), 4u);  // 2, 4, 6, 8
  EXPECT_DOUBLE_EQ(times[0], 2.0);
  EXPECT_DOUBLE_EQ(times[3], 8.0);
}

TEST(Arrival, ParseNames) {
  EXPECT_EQ(e2c::workload::parse_arrival_kind("poisson"), ArrivalKind::kPoisson);
  EXPECT_EQ(e2c::workload::parse_arrival_kind("BURST"), ArrivalKind::kBurst);
  EXPECT_THROW((void)e2c::workload::parse_arrival_kind("zipf"), e2c::InputError);
}

TEST(Arrival, RejectsBadParameters) {
  Rng rng(1);
  EXPECT_THROW((void)generate_arrivals(ArrivalKind::kPoisson, 0.0, 10.0, rng),
               e2c::InputError);
  EXPECT_THROW((void)generate_arrivals(ArrivalKind::kPoisson, 1.0, 0.0, rng),
               e2c::InputError);
}

}  // namespace
