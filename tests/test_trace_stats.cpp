// Unit tests for workload-trace analysis (workload/trace_stats.hpp).
#include "workload/trace_stats.hpp"

#include <gtest/gtest.h>

#include "exp/scenario.hpp"
#include "util/error.hpp"
#include "workload/generator.hpp"

namespace {

using e2c::hetero::EetMatrix;
using e2c::workload::compute_trace_stats;
using e2c::workload::TaskDef;
using e2c::workload::Workload;

EetMatrix sample_eet() {
  return EetMatrix({"T1", "T2"}, {"m0", "m1"}, {{2.0, 4.0}, {6.0, 2.0}});
}

TaskDef make_task(std::uint64_t id, std::size_t type, double arrival, double deadline) {
  TaskDef task;
  task.id = id;
  task.type = type;
  task.arrival = arrival;
  task.deadline = deadline;
  return task;
}

TEST(TraceStats, EmptyTrace) {
  const auto stats = compute_trace_stats(Workload{}, sample_eet());
  EXPECT_EQ(stats.task_count, 0u);
  EXPECT_DOUBLE_EQ(stats.arrival_rate, 0.0);
  EXPECT_EQ(stats.type_counts.size(), 2u);
}

TEST(TraceStats, HandComputedValues) {
  // Arrivals 0, 2, 4, 6: span 6, rate 4/6, gaps all 2 (cv 0).
  const EetMatrix eet = sample_eet();
  Workload workload({
      make_task(0, 0, 0.0, 6.0),   // factor (6-0)/3 = 2
      make_task(1, 0, 2.0, 14.0),  // factor 12/3 = 4
      make_task(2, 1, 4.0, 12.0),  // factor 8/4 = 2
      make_task(3, 1, 6.0, e2c::core::kTimeInfinity),
  });
  const auto stats = compute_trace_stats(workload, eet);
  EXPECT_EQ(stats.task_count, 4u);
  EXPECT_DOUBLE_EQ(stats.span, 6.0);
  EXPECT_NEAR(stats.arrival_rate, 4.0 / 6.0, 1e-12);
  EXPECT_DOUBLE_EQ(stats.interarrival_mean, 2.0);
  EXPECT_DOUBLE_EQ(stats.interarrival_cv, 0.0);
  EXPECT_EQ(stats.type_counts[0], 2u);
  EXPECT_EQ(stats.type_counts[1], 2u);
  EXPECT_DOUBLE_EQ(stats.type_fractions[0], 0.5);
  EXPECT_NEAR(stats.deadline_factor_mean, (2.0 + 4.0 + 2.0) / 3.0, 1e-12);
  EXPECT_EQ(stats.infinite_deadlines, 1u);
}

TEST(TraceStats, PoissonTraceHasCvNearOne) {
  const auto system = e2c::exp::heterogeneous_classroom();
  const auto machine_types = e2c::exp::machine_types_of(system);
  const auto generator = e2c::workload::config_for_intensity(
      system.eet, machine_types, e2c::workload::Intensity::kMedium, 2000.0, 5);
  const auto trace = e2c::workload::generate_workload(system.eet, generator);
  const auto stats = compute_trace_stats(trace, system.eet);
  EXPECT_NEAR(stats.interarrival_cv, 1.0, 0.15);  // memoryless signature
}

TEST(TraceStats, BurstTraceHasCvAboveOne) {
  const auto system = e2c::exp::heterogeneous_classroom();
  const auto machine_types = e2c::exp::machine_types_of(system);
  auto generator = e2c::workload::config_for_intensity(
      system.eet, machine_types, e2c::workload::Intensity::kMedium, 2000.0, 5);
  generator.arrival = e2c::workload::ArrivalKind::kBurst;
  const auto trace = e2c::workload::generate_workload(system.eet, generator);
  const auto stats = compute_trace_stats(trace, system.eet);
  EXPECT_GT(stats.interarrival_cv, 1.1);
}

TEST(TraceStats, OfferedLoadRecoversIntensityPreset) {
  // A trace generated at intensity X must report an offered load near X's
  // fraction — the analysis inverts the generator's calibration.
  const auto system = e2c::exp::heterogeneous_classroom();
  const auto machine_types = e2c::exp::machine_types_of(system);
  for (const auto intensity :
       {e2c::workload::Intensity::kLow, e2c::workload::Intensity::kHigh}) {
    const auto generator = e2c::workload::config_for_intensity(
        system.eet, machine_types, intensity, 3000.0, 11);
    const auto trace = e2c::workload::generate_workload(system.eet, generator);
    const double rho = e2c::workload::offered_load(trace, system.eet, machine_types);
    EXPECT_NEAR(rho, e2c::workload::intensity_offered_load(intensity),
                0.15 * e2c::workload::intensity_offered_load(intensity))
        << e2c::workload::intensity_name(intensity);
  }
}

TEST(TraceStats, CsvRowsWellFormed) {
  const EetMatrix eet = sample_eet();
  Workload workload({make_task(0, 0, 0.0, 6.0), make_task(1, 1, 1.0, 9.0)});
  const auto rows =
      e2c::workload::trace_stats_csv(compute_trace_stats(workload, eet), eet);
  ASSERT_GE(rows.size(), 9u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"metric", "value"}));
  EXPECT_EQ(rows[1][1], "2");  // task_count
}

TEST(TraceStats, RejectsForeignTaskTypes) {
  Workload workload({make_task(0, 9, 0.0, 5.0)});
  EXPECT_THROW((void)compute_trace_stats(workload, sample_eet()), e2c::InputError);
}

}  // namespace
