// Unit tests for the FairShare reference policy (sched/fair_share.hpp) —
// the worked solution to part 3 of the class assignment.
#include "sched/fair_share.hpp"

#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace {

using e2c::hetero::EetMatrix;
using e2c::sched::FairSharePolicy;
using e2c::test::make_context;
using e2c::test::queued_task;

EetMatrix eet() {
  return EetMatrix({"T1", "T2"}, {"m0", "m1"}, {{2.0, 6.0}, {5.0, 3.0}});
}

TEST(FairShare, NameAndMode) {
  EXPECT_EQ(FairSharePolicy{}.name(), "FairShare");
  EXPECT_EQ(FairSharePolicy{}.mode(), e2c::sched::PolicyMode::kBatch);
}

TEST(FairShare, SufferingTypeMapsFirst) {
  const EetMatrix matrix = eet();
  const auto t1 = queued_task(1, 0, /*deadline=*/100.0);
  const auto t2 = queued_task(2, 1, /*deadline=*/200.0);
  // Type 1 has been starved (20% on-time) -> its task maps first even
  // though it arrived later and has the later deadline.
  auto context = make_context(matrix, {&t1, &t2}, e2c::sched::kUnlimitedSlots, {},
                              /*ontime=*/{1.0, 0.2});
  const auto assignments = FairSharePolicy{}.schedule(context);
  ASSERT_EQ(assignments.size(), 2u);
  EXPECT_EQ(assignments[0].task, 2u);
}

TEST(FairShare, EqualRatesFallBackToSoonestDeadline) {
  const EetMatrix matrix = eet();
  const auto t1 = queued_task(1, 0, /*deadline=*/50.0);
  const auto t2 = queued_task(2, 0, /*deadline=*/10.0);
  auto context = make_context(matrix, {&t1, &t2}, e2c::sched::kUnlimitedSlots, {},
                              {1.0, 1.0});
  const auto assignments = FairSharePolicy{}.schedule(context);
  ASSERT_EQ(assignments.size(), 2u);
  EXPECT_EQ(assignments[0].task, 2u);  // soonest deadline
}

TEST(FairShare, MapsToMinCompletionMachine) {
  const EetMatrix matrix = eet();
  const auto t1 = queued_task(1, 1, /*deadline=*/100.0);  // T2: m1 (3) < m0 (5)
  auto context = make_context(matrix, {&t1});
  const auto assignments = FairSharePolicy{}.schedule(context);
  ASSERT_EQ(assignments.size(), 1u);
  EXPECT_EQ(assignments[0].machine, 1u);
}

TEST(FairShare, StopsWhenSaturated) {
  const EetMatrix matrix = eet();
  const auto t1 = queued_task(1, 0, 100.0);
  const auto t2 = queued_task(2, 1, 100.0);
  const auto t3 = queued_task(3, 0, 100.0);
  auto context = make_context(matrix, {&t1, &t2, &t3}, /*free_slots=*/1);
  EXPECT_EQ(FairSharePolicy{}.schedule(context).size(), 2u);  // one per machine
}

TEST(FairShare, EmptyQueueNoAssignments) {
  const EetMatrix matrix = eet();
  auto context = make_context(matrix, {});
  EXPECT_TRUE(FairSharePolicy{}.schedule(context).empty());
}

}  // namespace
