// Unit tests for machine-type presets (hetero/machine_catalog.hpp).
#include "hetero/machine_catalog.hpp"

#include <gtest/gtest.h>

namespace {

namespace hetero = e2c::hetero;

TEST(MachineCatalog, BuiltinsPresent) {
  const auto& presets = hetero::builtin_machine_types();
  ASSERT_EQ(presets.size(), 5u);
  for (const auto& spec : presets) {
    EXPECT_GT(spec.busy_watts, spec.idle_watts) << spec.name;
    EXPECT_GT(spec.idle_watts, 0.0) << spec.name;
  }
}

TEST(MachineCatalog, FindIsCaseInsensitive) {
  ASSERT_TRUE(hetero::find_machine_type("GPU").has_value());
  EXPECT_EQ(hetero::find_machine_type("GPU")->name, "gpu");
  EXPECT_FALSE(hetero::find_machine_type("quantum").has_value());
}

TEST(MachineCatalog, AsicIsLowestPower) {
  const auto asic = hetero::find_machine_type("asic").value();
  for (const auto& spec : hetero::builtin_machine_types()) {
    EXPECT_LE(asic.busy_watts, spec.busy_watts);
  }
}

TEST(MachineCatalog, GenericFallback) {
  const auto spec = hetero::generic_machine_type("m7");
  EXPECT_EQ(spec.name, "m7");
  EXPECT_GT(spec.busy_watts, spec.idle_watts);
}

TEST(MachineCatalog, ResolveMixesPresetsAndGenerics) {
  const auto specs = hetero::resolve_machine_types({"gpu", "m1", "FPGA"});
  ASSERT_EQ(specs.size(), 3u);
  EXPECT_DOUBLE_EQ(specs[0].busy_watts, 250.0);  // gpu preset
  EXPECT_EQ(specs[1].name, "m1");                // generic
  EXPECT_DOUBLE_EQ(specs[2].busy_watts, 40.0);   // fpga preset, case-insensitive
}

}  // namespace
