// Tests for the crash-isolated process backend (exp/process_pool.hpp), the
// cell codec, and the resumable sweep journal. Fault injection uses the
// worker-side E2C_EXP_TEST_* env hooks (see process_pool.cpp) so crashes,
// hangs and slow cells are deterministic — no real faults needed.
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "exp/cell_codec.hpp"
#include "exp/experiment.hpp"
#include "exp/journal.hpp"
#include "exp/scenario.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/framing.hpp"

namespace {

namespace exp = e2c::exp;
using e2c::workload::Intensity;

#ifndef E2C_EXPERIMENT_BIN
#error "E2C_EXPERIMENT_BIN must be defined by the build"
#endif

exp::ExperimentSpec small_spec() {
  exp::ExperimentSpec spec;
  spec.system = exp::heterogeneous_classroom();
  spec.policies = {"FCFS", "MECT"};
  spec.intensities = {Intensity::kLow, Intensity::kHigh};
  spec.replications = 2;
  spec.duration = 60.0;
  spec.base_seed = 7;
  return spec;
}

std::string csv_of(const exp::ExperimentResult& result) {
  return e2c::util::to_csv(exp::result_csv(result));
}

/// Sets an environment variable for the lifetime of a scope; the worker
/// processes fork from this test binary, so they inherit it.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    ::setenv(name, value, /*overwrite=*/1);
  }
  ~ScopedEnv() { ::unsetenv(name_); }
  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

 private:
  const char* name_;
};

std::string temp_path(const std::string& stem) {
  return testing::TempDir() + stem;
}

TEST(CellCodec, RoundTripsBitExactly) {
  const auto source = exp::run_experiment(small_spec(), 2);
  for (const auto& cell : source.cells) {
    const auto decoded = exp::decode_cell(exp::encode_cell(cell));
    EXPECT_EQ(decoded.policy, cell.policy);
    EXPECT_EQ(decoded.intensity, cell.intensity);
    EXPECT_EQ(decoded.status, cell.status);
    EXPECT_EQ(decoded.attempts, cell.attempts);
    ASSERT_EQ(decoded.runs.size(), cell.runs.size());
    for (std::size_t i = 0; i < cell.runs.size(); ++i) {
      // Bit-exact doubles are the point of the codec: mean aggregation over
      // the decoded runs must match the original exactly, not approximately.
      EXPECT_EQ(decoded.runs[i].total_tasks, cell.runs[i].total_tasks);
      EXPECT_EQ(decoded.runs[i].completion_percent, cell.runs[i].completion_percent);
      EXPECT_EQ(decoded.runs[i].total_energy_joules, cell.runs[i].total_energy_joules);
    }
  }
}

TEST(CellCodec, RejectsCorruptPayloads) {
  exp::CellResult cell;
  cell.policy = "FCFS";
  cell.intensity = Intensity::kLow;
  const std::string payload = exp::encode_cell(cell);
  EXPECT_THROW((void)exp::decode_cell(payload.substr(0, payload.size() / 2)),
               e2c::InputError);
  EXPECT_THROW((void)exp::decode_cell(payload + "x"), e2c::InputError);
  EXPECT_THROW((void)exp::decode_cell(""), e2c::InputError);
}

TEST(Framing, HexArmorRoundTripsAndRejectsJunk) {
  const std::string bytes("\x00\xff binary\n", 9);
  EXPECT_EQ(e2c::util::hex_decode(e2c::util::hex_encode(bytes)), bytes);
  EXPECT_THROW((void)e2c::util::hex_decode("abc"), e2c::InputError);   // odd length
  EXPECT_THROW((void)e2c::util::hex_decode("zz"), e2c::InputError);    // non-hex
}

TEST(ProcessPool, MatchesThreadsBackendByteForByte) {
  exp::RunOptions threads;
  threads.workers = 2;
  const auto baseline = exp::run_experiment(small_spec(), threads);

  exp::RunOptions procs;
  procs.workers = 2;
  procs.backend = exp::Backend::kProcs;
  const auto isolated = exp::run_experiment(small_spec(), procs);

  EXPECT_EQ(csv_of(isolated), csv_of(baseline));
  EXPECT_EQ(isolated.health.completed_cells, 4u);
  EXPECT_EQ(isolated.health.failed_cells, 0u);
  EXPECT_EQ(isolated.health.retries, 0u);
}

TEST(ProcessPool, CrashedWorkerIsRetriedAndSweepCompletes) {
  exp::RunOptions options;
  options.workers = 2;
  const auto baseline = exp::run_experiment(small_spec(), options);

  const ScopedEnv crash("E2C_EXP_TEST_CRASH_CELL", "MECT/low");
  options.backend = exp::Backend::kProcs;
  options.backoff_base = 0.01;
  const auto result = exp::run_experiment(small_spec(), options);

  // The SIGKILL'd cell is requeued and recomputed; results stay identical.
  EXPECT_EQ(csv_of(result), csv_of(baseline));
  EXPECT_GE(result.health.retries, 1u);
  EXPECT_EQ(result.health.completed_cells, 4u);
  EXPECT_EQ(result.health.failed_cells, 0u);
  EXPECT_GE(result.cell("MECT", Intensity::kLow).attempts, 2u);
}

TEST(ProcessPool, HangingCellFailsAfterMaxRetriesAndSweepContinues) {
  const ScopedEnv hang("E2C_EXP_TEST_HANG_CELL", "FCFS/high");
  exp::RunOptions options;
  options.workers = 2;
  options.backend = exp::Backend::kProcs;
  options.cell_timeout = 0.3;
  options.max_retries = 1;
  options.backoff_base = 0.01;
  const auto result = exp::run_experiment(small_spec(), options);

  const auto& failed = result.cell("FCFS", Intensity::kHigh);
  EXPECT_EQ(failed.status, exp::CellStatus::kFailed);
  EXPECT_TRUE(failed.runs.empty());
  EXPECT_EQ(failed.attempts, 2u);  // initial dispatch + one retry
  EXPECT_EQ(result.health.failed_cells, 1u);
  EXPECT_EQ(result.health.completed_cells, 3u);
  EXPECT_EQ(result.health.retries, 1u);
  // Graceful degradation: the other cells completed with ok status.
  for (const auto& cell : result.cells) {
    if (&cell != &failed) {
      EXPECT_EQ(cell.status, exp::CellStatus::kOk);
    }
  }
}

TEST(ProcessPool, JournalResumeSkipsCompletedCells) {
  const std::string journal_path = temp_path("resume_journal.txt");
  exp::RunOptions options;
  options.workers = 2;
  options.backend = exp::Backend::kProcs;
  options.journal_path = journal_path;
  const auto full = exp::run_experiment(small_spec(), options);

  // Simulate an interrupted run: keep the header and the first two cell
  // records, as if the supervisor died mid-sweep.
  std::ifstream in(journal_path);
  ASSERT_TRUE(in.good());
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  in.close();
  ASSERT_GE(lines.size(), 5u);  // header + 4 cells
  std::ofstream out(journal_path, std::ios::trunc);
  for (std::size_t i = 0; i < 3; ++i) out << lines[i] << "\n";
  out.close();

  std::size_t progress_calls = 0;
  options.resume = true;
  options.progress = [&progress_calls](std::size_t, std::size_t,
                                       const exp::CellResult&) { ++progress_calls; };
  const auto resumed = exp::run_experiment(small_spec(), options);

  EXPECT_EQ(csv_of(resumed), csv_of(full));
  EXPECT_EQ(resumed.health.resumed_cells, 2u);
  EXPECT_EQ(resumed.health.completed_cells, 4u);
  EXPECT_EQ(progress_calls, 2u);  // only the fresh cells fire progress
}

TEST(ProcessPool, ResumeRejectsJournalFromDifferentSweep) {
  const std::string journal_path = temp_path("mismatch_journal.txt");
  exp::RunOptions options;
  options.backend = exp::Backend::kProcs;
  options.journal_path = journal_path;
  (void)exp::run_experiment(small_spec(), options);

  auto other = small_spec();
  other.base_seed = 8;  // different sweep => different spec digest
  options.resume = true;
  EXPECT_THROW((void)exp::run_experiment(other, options), e2c::InputError);
}

TEST(Journal, DropsTornFinalLineKeepsRest) {
  const std::string journal_path = temp_path("torn_journal.txt");
  exp::RunOptions options;
  options.backend = exp::Backend::kProcs;
  options.journal_path = journal_path;
  (void)exp::run_experiment(small_spec(), options);

  // Chop the file mid-way through its final record — the SIGKILL case.
  std::ifstream in(journal_path);
  std::stringstream whole;
  whole << in.rdbuf();
  in.close();
  const std::string text = whole.str();
  std::ofstream out(journal_path, std::ios::trunc);
  out << text.substr(0, text.size() - 20);
  out.close();

  const auto contents = exp::read_journal(journal_path);
  EXPECT_EQ(contents.cells_total, 4u);
  EXPECT_EQ(contents.cells.size(), 3u);  // torn record dropped, rest intact
}

TEST(Backend, ParseRejectsUnknownWithSuggestion) {
  EXPECT_EQ(exp::parse_backend("threads"), exp::Backend::kThreads);
  EXPECT_EQ(exp::parse_backend("procs"), exp::Backend::kProcs);
  try {
    (void)exp::parse_backend("porcs");
    FAIL() << "expected InputError";
  } catch (const e2c::InputError& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("procs"), std::string::npos) << message;
    EXPECT_NE(message.find("threads"), std::string::npos) << message;
  }
}

// --- CLI-level: SIGTERM graceful drain against the real binary. ------------

TEST(ProcessPool, SigtermDrainExitsCleanlyWithValidPartialJournal) {
  const std::string journal_path = temp_path("drain_journal.txt");
  const std::string ini_path = temp_path("drain_spec.ini");
  const std::string out_path = temp_path("drain_stdout.txt");
  {
    std::ofstream ini(ini_path, std::ios::trunc);
    ini << "[sweep]\n"
           "policies = FCFS, MECT\n"
           "intensities = low, high\n"
           "replications = 2\n"
           "duration = 30\n"
           "seed = 7\n";
  }

  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    FILE* out = std::freopen(out_path.c_str(), "w", stdout);
    if (out == nullptr) _exit(97);
    ::setenv("E2C_EXP_TEST_CELL_DELAY_MS", "400", 1);
    // One worker so the drain provably leaves holes: queued cells are
    // dropped, only the single in-flight cell finishes.
    ::execl(E2C_EXPERIMENT_BIN, E2C_EXPERIMENT_BIN, ini_path.c_str(), "1",
            "--backend", "procs", "--journal", journal_path.c_str(),
            static_cast<char*>(nullptr));
    _exit(98);  // exec failed
  }
  // Let the first wave of cells get in flight, then request a drain.
  ::usleep(600 * 1000);
  ASSERT_EQ(::kill(child, SIGTERM), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);  // drain is a success, not a crash

  std::ifstream out(out_path);
  std::stringstream captured;
  captured << out.rdbuf();
  EXPECT_NE(captured.str().find("drained"), std::string::npos) << captured.str();
  EXPECT_NE(captured.str().find("--resume"), std::string::npos);

  // The partial journal parses and holds only finished cells.
  const auto contents = exp::read_journal(journal_path);
  EXPECT_EQ(contents.cells_total, 4u);
  EXPECT_LT(contents.cells.size(), 4u);  // drained before the sweep finished
  for (const auto& [slot, cell] : contents.cells) {
    EXPECT_LT(slot, 4u);
    EXPECT_EQ(cell.status, exp::CellStatus::kOk);
    EXPECT_EQ(cell.runs.size(), 2u);
  }
}

}  // namespace
