// Unit tests for the INI config parser (util/ini.hpp) and the experiment
// spec loader (exp/spec_io.hpp).
#include "util/ini.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "exp/spec_io.hpp"
#include "util/error.hpp"

namespace {

using e2c::util::IniFile;

TEST(Ini, ParsesSectionsAndPairs) {
  const IniFile ini = IniFile::parse(
      "[system]\n"
      "scenario = heterogeneous\n"
      "queue_size = 2\n"
      "\n"
      "[sweep]\n"
      "policies = FCFS, MECT\n");
  EXPECT_EQ(ini.get("system", "scenario").value(), "heterogeneous");
  EXPECT_EQ(ini.get_int("system", "queue_size").value(), 2);
  EXPECT_TRUE(ini.has_section("sweep"));
  EXPECT_FALSE(ini.has_section("output"));
  EXPECT_EQ(ini.sections(), (std::vector<std::string>{"system", "sweep"}));
}

TEST(Ini, CommentsAndWhitespace) {
  const IniFile ini = IniFile::parse(
      "# full-line comment\n"
      "[a]\n"
      "  key  =  value with spaces   ; trailing comment\n"
      "other = 3.5 # also a comment\n");
  EXPECT_EQ(ini.get("a", "key").value(), "value with spaces");
  EXPECT_DOUBLE_EQ(ini.get_double("a", "other").value(), 3.5);
}

TEST(Ini, CaseInsensitiveLookup) {
  const IniFile ini = IniFile::parse("[Section]\nKey = V\n");
  EXPECT_EQ(ini.get("sEcTiOn", "kEy").value(), "V");
}

TEST(Ini, LastAssignmentWins) {
  const IniFile ini = IniFile::parse("[a]\nk = 1\nk = 2\n");
  EXPECT_EQ(ini.get("a", "k").value(), "2");
}

TEST(Ini, ListsSplitAndTrim) {
  const IniFile ini = IniFile::parse("[s]\nitems = a , b,c ,\n");
  EXPECT_EQ(ini.get_list("s", "items"), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(ini.get_list("s", "missing").empty());
}

TEST(Ini, AccessorsReportAbsence) {
  const IniFile ini = IniFile::parse("[s]\nk = x\n");
  EXPECT_FALSE(ini.get("s", "missing").has_value());
  EXPECT_EQ(ini.get_or("s", "missing", "fallback"), "fallback");
  EXPECT_FALSE(ini.get_double("s", "missing").has_value());
}

TEST(Ini, MalformedInputRejected) {
  EXPECT_THROW((void)IniFile::parse("[unterminated\n"), e2c::InputError);
  EXPECT_THROW((void)IniFile::parse("[s]\nno equals sign here\n"), e2c::InputError);
  EXPECT_THROW((void)IniFile::parse("[s]\n= value\n"), e2c::InputError);
  const IniFile ini = IniFile::parse("[s]\nk = abc\n");
  EXPECT_THROW((void)ini.get_double("s", "k"), e2c::InputError);
  EXPECT_THROW((void)ini.get_int("s", "k"), e2c::InputError);
}

TEST(Ini, LoadMissingFileThrows) {
  EXPECT_THROW((void)IniFile::load("/nonexistent/config.ini"), e2c::IoError);
}

TEST(Ini, WhereLocatesTheDefiningLine) {
  const IniFile ini = IniFile::parse(
      "[a]\n"
      "k = 1\n"
      "\n"
      "[b]\n"
      "k = 2\n"
      "k = 3\n");  // last assignment wins, so line 6 is the defining one
  EXPECT_EQ(ini.where("a", "k"), "line 2");
  EXPECT_EQ(ini.where("b", "k"), "line 6");
  // Unknown keys degrade to a section.key locator instead of a bogus line.
  EXPECT_EQ(ini.where("b", "missing"), "b.missing");
}

TEST(Ini, WhereUsesThePathWhenLoadedFromFile) {
  const std::string path = testing::TempDir() + "/e2c_ini_where.ini";
  {
    std::ofstream out(path);
    out << "[faults]\nmtbf = 50\n";
  }
  const IniFile ini = IniFile::load(path);
  EXPECT_EQ(ini.where("faults", "mtbf"), path + ":2");
  std::remove(path.c_str());
}

// ---- experiment spec loading ----------------------------------------------

const char* kValidConfig =
    "[system]\n"
    "scenario = homogeneous\n"
    "queue_size = 3\n"
    "[sweep]\n"
    "policies = FCFS, MM\n"
    "intensities = low, high\n"
    "replications = 4\n"
    "duration = 80\n"
    "seed = 9\n"
    "arrival = burst\n"
    "deadline_lo = 1.5\n"
    "deadline_hi = 3.0\n"
    "[output]\n"
    "title = spec test\n";

TEST(SpecIo, LoadsFullSpec) {
  const auto spec = e2c::exp::spec_from_ini(IniFile::parse(kValidConfig));
  EXPECT_TRUE(spec.system.eet.is_homogeneous());
  EXPECT_EQ(spec.system.machine_queue_capacity, 3u);
  EXPECT_EQ(spec.policies, (std::vector<std::string>{"FCFS", "MM"}));
  ASSERT_EQ(spec.intensities.size(), 2u);
  EXPECT_EQ(spec.intensities[1], e2c::workload::Intensity::kHigh);
  EXPECT_EQ(spec.replications, 4u);
  EXPECT_DOUBLE_EQ(spec.duration, 80.0);
  EXPECT_EQ(spec.base_seed, 9u);
  EXPECT_EQ(spec.arrival, e2c::workload::ArrivalKind::kBurst);
  EXPECT_DOUBLE_EQ(spec.deadline_factor_lo, 1.5);
}

TEST(SpecIo, DefaultsApplied) {
  const auto spec = e2c::exp::spec_from_ini(IniFile::parse(
      "[sweep]\npolicies = MECT\nintensities = medium\n"));
  EXPECT_FALSE(spec.system.eet.is_homogeneous());  // heterogeneous default
  EXPECT_EQ(spec.replications, 10u);               // ExperimentSpec default
  EXPECT_EQ(spec.arrival, e2c::workload::ArrivalKind::kPoisson);
}

TEST(SpecIo, OutputsParsed) {
  const auto outputs = e2c::exp::outputs_from_ini(IniFile::parse(
      "[output]\ntitle = t\ncsv = a.csv\nchart_svg = b.svg\n"));
  EXPECT_EQ(outputs.title, "t");
  EXPECT_EQ(outputs.csv_path.value(), "a.csv");
  EXPECT_EQ(outputs.chart_svg_path.value(), "b.svg");
}

TEST(SpecIo, FaultsSectionParsed) {
  const auto spec = e2c::exp::spec_from_ini(IniFile::parse(
      "[sweep]\npolicies = MECT\nintensities = medium\n"
      "[faults]\nmtbf = 120\nmttr = 8\nseed = 5\n"
      "max_retries = 2\nbackoff = 0.5\nbackoff_factor = 3\n"));
  const auto& faults = spec.system.faults;
  EXPECT_TRUE(faults.enabled);  // section presence enables
  EXPECT_EQ(faults.mode, e2c::fault::FaultMode::kStochastic);
  EXPECT_DOUBLE_EQ(faults.mtbf, 120.0);
  EXPECT_DOUBLE_EQ(faults.mttr, 8.0);
  EXPECT_EQ(faults.seed, 5u);
  EXPECT_EQ(faults.retry.max_retries, 2u);
  EXPECT_DOUBLE_EQ(faults.retry.backoff_base, 0.5);
  EXPECT_DOUBLE_EQ(faults.retry.backoff_factor, 3.0);

  const auto off = e2c::exp::spec_from_ini(IniFile::parse(
      "[sweep]\npolicies = MECT\nintensities = medium\n"
      "[faults]\nenabled = no\nmtbf = 120\n"));
  EXPECT_FALSE(off.system.faults.enabled);

  const auto none = e2c::exp::spec_from_ini(
      IniFile::parse("[sweep]\npolicies = MECT\nintensities = medium\n"));
  EXPECT_FALSE(none.system.faults.enabled);
}

TEST(SpecIo, FaultsValidationNamesTheDefiningLine) {
  try {
    (void)e2c::exp::spec_from_ini(IniFile::parse(
        "[sweep]\npolicies = MM\nintensities = low\n"
        "[faults]\nmtbf = -1\n"));
    FAIL() << "expected InputError";
  } catch (const e2c::InputError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("faults.mtbf must be > 0"), std::string::npos) << what;
    EXPECT_NE(what.find("line 5"), std::string::npos) << what;
  }
}

TEST(SpecIo, RecoverySectionParsed) {
  const auto spec = e2c::exp::spec_from_ini(IniFile::parse(
      "[sweep]\npolicies = MECT\nintensities = medium\n"
      "[faults]\nmtbf = 120\nmttr = 8\n"
      "[recovery]\nstrategy = checkpoint\ncheckpoint_interval = 2\n"
      "checkpoint_cost = 0.25\nrestart_cost = 0.75\n"));
  const auto& recovery = spec.system.faults.recovery;
  EXPECT_EQ(recovery.strategy, e2c::fault::RecoveryStrategy::kCheckpoint);
  EXPECT_DOUBLE_EQ(recovery.checkpoint_interval, 2.0);
  EXPECT_DOUBLE_EQ(recovery.checkpoint_cost, 0.25);
  EXPECT_DOUBLE_EQ(recovery.restart_cost, 0.75);
}

TEST(SpecIo, RecoveryNeedsFaults) {
  EXPECT_THROW((void)e2c::exp::spec_from_ini(IniFile::parse(
                   "[sweep]\npolicies = MM\nintensities = low\n"
                   "[recovery]\nstrategy = checkpoint\n")),
               e2c::InputError);
}

TEST(SpecIo, RecoveryValidationNamesTheDefiningLine) {
  try {
    (void)e2c::exp::spec_from_ini(IniFile::parse(
        "[sweep]\npolicies = MM\nintensities = low\n"
        "[faults]\nmtbf = 100\n"
        "[recovery]\nstrategy = replicate\nreplicas = 99\n"));
    FAIL() << "expected InputError";
  } catch (const e2c::InputError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("replicas"), std::string::npos) << what;
    EXPECT_NE(what.find("line 8"), std::string::npos) << what;
    EXPECT_NE(what.find("distinct machines"), std::string::npos) << what;
  }
}

TEST(SpecIo, RejectsBadFaultsSection) {
  EXPECT_THROW((void)e2c::exp::spec_from_ini(IniFile::parse(
                   "[sweep]\npolicies = MM\nintensities = low\n"
                   "[faults]\nmtbf = -1\n")),
               e2c::InputError);
  EXPECT_THROW((void)e2c::exp::spec_from_ini(IniFile::parse(
                   "[sweep]\npolicies = MM\nintensities = low\n"
                   "[faults]\nenabled = maybe\n")),
               e2c::InputError);
}

TEST(SpecIo, RejectsInvalidConfigs) {
  EXPECT_THROW((void)e2c::exp::spec_from_ini(IniFile::parse("[sweep]\n")),
               e2c::InputError);  // no policies
  EXPECT_THROW((void)e2c::exp::spec_from_ini(
                   IniFile::parse("[sweep]\npolicies = MM\n")),
               e2c::InputError);  // no intensities
  EXPECT_THROW((void)e2c::exp::spec_from_ini(IniFile::parse(
                   "[system]\nscenario = marsbase\n"
                   "[sweep]\npolicies = MM\nintensities = low\n")),
               e2c::InputError);  // unknown scenario
  EXPECT_THROW((void)e2c::exp::spec_from_ini(IniFile::parse(
                   "[sweep]\npolicies = MM\nintensities = turbo\n")),
               e2c::InputError);  // unknown intensity
}

TEST(SpecIo, EndToEndRunFromFile) {
  const std::string config_path = testing::TempDir() + "/e2c_spec_test.ini";
  const std::string csv_path = testing::TempDir() + "/e2c_spec_test_out.csv";
  const std::string svg_path = testing::TempDir() + "/e2c_spec_test_out.svg";
  {
    std::ofstream out(config_path);
    out << "[system]\nscenario = homogeneous\n"
        << "[sweep]\npolicies = FCFS\nintensities = low\nreplications = 2\n"
        << "duration = 30\n"
        << "[output]\ntitle = e2e\ncsv = " << csv_path << "\nchart_svg = " << svg_path
        << "\n";
  }
  const auto result = e2c::exp::run_experiment_file(config_path, 2);
  EXPECT_EQ(result.cells.size(), 1u);
  std::ifstream csv(csv_path);
  std::ifstream svg(svg_path);
  EXPECT_TRUE(csv.good());
  EXPECT_TRUE(svg.good());
  std::remove(config_path.c_str());
  std::remove(csv_path.c_str());
  std::remove(svg_path.c_str());
}

}  // namespace
