// Differential fuzz: the incremental (fast) batch mappers must emit exactly
// the assignment sequence of their full-rescan reference oracles, on randomized
// scheduling contexts. Values are often drawn from small discrete sets so
// exact floating-point ties occur frequently — the tie-break rules (earlier
// arrival, lower machine index) are where incremental mappers usually drift.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "hetero/eet_matrix.hpp"
#include "hetero/pet_matrix.hpp"
#include "sched/batch.hpp"
#include "sched/elare.hpp"
#include "sched/policy.hpp"
#include "workload/task.hpp"

namespace {

using e2c::sched::Assignment;
using e2c::sched::MachineView;
using e2c::sched::SchedulingContext;

struct FuzzScenario {
  e2c::hetero::EetMatrix eet;
  std::vector<MachineView> machines;
  std::vector<e2c::workload::TaskDef> tasks;
  std::vector<double> ontime_rates;
  std::optional<e2c::hetero::PetMatrix> pet;

  [[nodiscard]] SchedulingContext make_context() const {
    std::vector<const e2c::workload::TaskDef*> queue;
    queue.reserve(tasks.size());
    for (const auto& task : tasks) queue.push_back(&task);
    return SchedulingContext(0.0, eet, machines, std::move(queue), ontime_rates,
                             pet ? &*pet : nullptr);
  }
};

FuzzScenario random_scenario(std::mt19937_64& rng) {
  std::uniform_int_distribution<std::size_t> type_count_dist(1, 6);
  std::uniform_int_distribution<std::size_t> machine_type_dist(1, 4);
  std::uniform_int_distribution<std::size_t> machine_count_dist(1, 8);
  std::uniform_int_distribution<std::size_t> task_count_dist(0, 40);
  std::uniform_int_distribution<int> coin(0, 1);
  std::uniform_int_distribution<int> percent(0, 99);

  const std::size_t task_types = type_count_dist(rng);
  const std::size_t machine_types = machine_type_dist(rng);

  // Half the time EET cells come from a tiny discrete set so distinct
  // (task, machine) pairs collide to bit-equal completions and scores.
  const bool discrete = coin(rng) == 1;
  std::uniform_real_distribution<double> continuous_eet(0.5, 20.0);
  std::uniform_int_distribution<int> discrete_eet(1, 4);
  std::vector<std::vector<double>> cells(task_types, std::vector<double>(machine_types));
  std::vector<std::string> task_names;
  std::vector<std::string> machine_names;
  for (std::size_t t = 0; t < task_types; ++t) {
    task_names.push_back("t" + std::to_string(t));
    for (std::size_t m = 0; m < machine_types; ++m) {
      cells[t][m] = discrete ? static_cast<double>(discrete_eet(rng)) : continuous_eet(rng);
    }
  }
  for (std::size_t m = 0; m < machine_types; ++m) {
    machine_names.push_back("m" + std::to_string(m));
  }

  FuzzScenario scenario{e2c::hetero::EetMatrix(task_names, machine_names, cells),
                        {},
                        {},
                        {},
                        std::nullopt};

  const std::size_t machine_count = machine_count_dist(rng);
  std::uniform_int_distribution<std::size_t> pick_machine_type(0, machine_types - 1);
  std::uniform_int_distribution<int> ready_int(0, 12);
  std::uniform_int_distribution<int> slot_kind(0, 9);
  std::uniform_real_distribution<double> busy_watts(50.0, 200.0);
  for (std::size_t j = 0; j < machine_count; ++j) {
    MachineView view;
    view.id = j;
    view.type = pick_machine_type(rng);
    view.ready_time = static_cast<double>(ready_int(rng));
    // Slot mix: mostly small bounded queues, some exhausted, some unbounded.
    const int kind = slot_kind(rng);
    if (kind == 0) view.free_slots = 0;
    else if (kind <= 2) view.free_slots = e2c::sched::kUnlimitedSlots;
    else view.free_slots = static_cast<std::size_t>(1 + kind % 4);
    view.idle_watts = 10.0;
    view.busy_watts = coin(rng) == 1 ? 100.0 : busy_watts(rng);
    scenario.machines.push_back(view);
  }

  const std::size_t task_count = task_count_dist(rng);
  std::uniform_int_distribution<std::size_t> pick_task_type(0, task_types - 1);
  std::uniform_int_distribution<int> tight_deadline(1, 25);
  for (std::size_t i = 0; i < task_count; ++i) {
    e2c::workload::TaskDef task;
    task.id = i + 1;
    task.type = pick_task_type(rng);
    task.arrival = static_cast<double>(i);
    // ~40% tight (often infeasible -> deferral paths), rest effectively open.
    task.deadline = percent(rng) < 40 ? static_cast<double>(tight_deadline(rng)) : 1e9;
    scenario.tasks.push_back(task);
  }

  std::uniform_real_distribution<double> rate(0.0, 1.0);
  for (std::size_t t = 0; t < task_types; ++t) {
    scenario.ontime_rates.push_back(coin(rng) == 1 ? 1.0 : rate(rng));
  }

  if (percent(rng) < 20) {
    scenario.pet = e2c::hetero::PetMatrix::homoscedastic(
        scenario.eet, e2c::hetero::PetKind::kNormal, 0.3);
  }
  return scenario;
}

void expect_same_decisions(const FuzzScenario& scenario, e2c::sched::Policy& fast,
                           e2c::sched::Policy& reference, std::size_t trial) {
  SchedulingContext fast_context = scenario.make_context();
  SchedulingContext reference_context = scenario.make_context();
  const std::vector<Assignment> got = fast.schedule(fast_context);
  const std::vector<Assignment> want = reference.schedule(reference_context);
  ASSERT_EQ(got.size(), want.size())
      << fast.name() << " trial " << trial << ": assignment counts diverge";
  for (std::size_t k = 0; k < want.size(); ++k) {
    ASSERT_EQ(got[k].task, want[k].task)
        << fast.name() << " trial " << trial << " step " << k;
    ASSERT_EQ(got[k].machine, want[k].machine)
        << fast.name() << " trial " << trial << " step " << k;
  }
}

// One fast/reference pair per mapper, constructed once so the fast path's
// scratch buffers are reused across all trials (as they are in a real run).
struct MapperPair {
  std::unique_ptr<e2c::sched::Policy> fast;
  std::unique_ptr<e2c::sched::Policy> reference;
};

TEST(SchedEquivalenceFuzz, IterativeBatchMappersMatchReference) {
  using e2c::sched::SchedImpl;
  std::vector<MapperPair> pairs;
  pairs.push_back({std::make_unique<e2c::sched::MinMinPolicy>(SchedImpl::kFast),
                   std::make_unique<e2c::sched::MinMinPolicy>(SchedImpl::kReference)});
  pairs.push_back({std::make_unique<e2c::sched::MaxUrgencyPolicy>(SchedImpl::kFast),
                   std::make_unique<e2c::sched::MaxUrgencyPolicy>(SchedImpl::kReference)});
  pairs.push_back(
      {std::make_unique<e2c::sched::SoonestDeadlinePolicy>(SchedImpl::kFast),
       std::make_unique<e2c::sched::SoonestDeadlinePolicy>(SchedImpl::kReference)});

  std::mt19937_64 rng(0xE2CF0221ULL);
  constexpr std::size_t kTrials = 1200;
  for (std::size_t trial = 0; trial < kTrials; ++trial) {
    const FuzzScenario scenario = random_scenario(rng);
    for (MapperPair& pair : pairs) {
      expect_same_decisions(scenario, *pair.fast, *pair.reference, trial);
    }
  }
}

TEST(SchedEquivalenceFuzz, ElareMappersMatchReference) {
  using e2c::sched::SchedImpl;
  std::vector<MapperPair> pairs;
  for (const double weight : {0.0, 0.35, 0.5, 1.0}) {
    pairs.push_back(
        {std::make_unique<e2c::sched::ElarePolicy>(weight, SchedImpl::kFast),
         std::make_unique<e2c::sched::ElarePolicy>(weight, SchedImpl::kReference)});
    pairs.push_back(
        {std::make_unique<e2c::sched::FelarePolicy>(weight, SchedImpl::kFast),
         std::make_unique<e2c::sched::FelarePolicy>(weight, SchedImpl::kReference)});
  }

  std::mt19937_64 rng(0xE2CF0222ULL);
  constexpr std::size_t kTrials = 1200;
  for (std::size_t trial = 0; trial < kTrials; ++trial) {
    const FuzzScenario scenario = random_scenario(rng);
    // Rotate the weight pairs so scratch reuse still sees every trial shape;
    // each (policy, weight) pair sees kTrials / 4 contexts, and each of
    // ELARE/FELARE sees all kTrials.
    MapperPair& elare = pairs[2 * (trial % 4)];
    MapperPair& felare = pairs[2 * (trial % 4) + 1];
    expect_same_decisions(scenario, *elare.fast, *elare.reference, trial);
    expect_same_decisions(scenario, *felare.fast, *felare.reference, trial);
  }
}

// Degenerate shapes the random generator hits only rarely, pinned explicitly.
TEST(SchedEquivalenceFuzz, DegenerateShapes) {
  using e2c::sched::SchedImpl;
  std::mt19937_64 rng(0xE2CF0223ULL);
  for (std::size_t trial = 0; trial < 64; ++trial) {
    FuzzScenario scenario = random_scenario(rng);
    switch (trial % 4) {
      case 0:  // empty queue
        scenario.tasks.clear();
        break;
      case 1:  // every machine exhausted
        for (MachineView& m : scenario.machines) m.free_slots = 0;
        break;
      case 2:  // every task already doomed
        for (auto& task : scenario.tasks) task.deadline = -1.0;
        break;
      case 3:  // single machine, single slot
        scenario.machines.resize(1);
        scenario.machines[0].free_slots = 1;
        break;
    }
    e2c::sched::MinMinPolicy mm_fast(SchedImpl::kFast);
    e2c::sched::MinMinPolicy mm_reference(SchedImpl::kReference);
    expect_same_decisions(scenario, mm_fast, mm_reference, trial);
    e2c::sched::FelarePolicy felare_fast(0.5, SchedImpl::kFast);
    e2c::sched::FelarePolicy felare_reference(0.5, SchedImpl::kReference);
    expect_same_decisions(scenario, felare_fast, felare_reference, trial);
  }
}

}  // namespace
