// Tests for the experiment data plane (exp::DataPlane): the shared
// immutable-workload plane must be indistinguishable, byte for byte, from
// the per-run plane it replaced, across worker counts (the sharded
// per-replication path with worker-local Simulation leases) and across
// backends, the progress callback must fire once per cell in result order,
// and a throwing cell must degrade to a failed status row instead of
// aborting the sweep.
#include <cstddef>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exp/experiment.hpp"
#include "exp/scenario.hpp"
#include "sched/policy.hpp"
#include "sched/registry.hpp"
#include "util/csv.hpp"

namespace {

namespace exp = e2c::exp;
using e2c::workload::Intensity;

exp::ExperimentSpec plane_spec() {
  exp::ExperimentSpec spec;
  spec.system = exp::heterogeneous_classroom();
  // One immediate and one batch policy: the shared plane reuses one
  // Simulation per cell, and the two modes bake different queue behavior
  // into the machines at construction.
  spec.policies = {"MECT", "MM"};
  spec.intensities = {Intensity::kLow, Intensity::kHigh};
  spec.replications = 3;
  spec.duration = 60.0;
  spec.base_seed = 7;
  return spec;
}

exp::ExperimentSpec faulty_spec() {
  exp::ExperimentSpec spec = plane_spec();
  spec.system.faults.enabled = true;
  spec.system.faults.mtbf = 30.0;
  spec.system.faults.mttr = 5.0;
  spec.system.faults.seed = 99;
  return spec;
}

std::string csv_text(const exp::ExperimentResult& result) {
  return e2c::util::to_csv(exp::result_csv(result));
}

TEST(ExperimentPlane, SharedMatchesPerRunByteForByte) {
  const auto shared =
      exp::run_experiment(plane_spec(), 1, exp::DataPlane::kShared);
  const auto per_run =
      exp::run_experiment(plane_spec(), 1, exp::DataPlane::kPerRun);
  EXPECT_EQ(csv_text(shared), csv_text(per_run));
}

TEST(ExperimentPlane, SharedMatchesPerRunUnderFaultInjection) {
  // reset() must rebuild the failure schedule exactly (injector recreated,
  // machines back online) or replications after the first diverge.
  const auto shared =
      exp::run_experiment(faulty_spec(), 1, exp::DataPlane::kShared);
  const auto per_run =
      exp::run_experiment(faulty_spec(), 1, exp::DataPlane::kPerRun);
  EXPECT_EQ(csv_text(shared), csv_text(per_run));
}

TEST(ExperimentPlane, WorkerCountDoesNotChangeResultCsvBytes) {
  // Guards the per-replication sharding against aggregation-order,
  // lease-interleaving, and RNG-stream bugs: any worker count must emit the
  // identical CSV bytes, with and without fault injection. Different worker
  // counts exercise different steal patterns, so each leased Simulation sees
  // a different (policy, trace) reset sequence — results must not care.
  for (const exp::ExperimentSpec& spec : {plane_spec(), faulty_spec()}) {
    const std::string golden = csv_text(exp::run_experiment(spec, 1));
    for (const std::size_t workers : {std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
      EXPECT_EQ(csv_text(exp::run_experiment(spec, workers)), golden)
          << "threads backend diverged at " << workers << " workers";
    }
  }
}

TEST(ExperimentPlane, ProcsBackendMatchesThreadsAcrossWorkerCounts) {
  // The process backend computes whole cells in isolated workers; the
  // threads backend shards per replication onto leased Simulations. Both
  // must produce the same bytes at every worker count.
  for (const exp::ExperimentSpec& spec : {plane_spec(), faulty_spec()}) {
    const std::string golden = csv_text(exp::run_experiment(spec, 1));
    for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
      exp::RunOptions options;
      options.workers = workers;
      options.backend = exp::Backend::kProcs;
      EXPECT_EQ(csv_text(exp::run_experiment(spec, options)), golden)
          << "procs backend diverged at " << workers << " workers";
    }
  }
}

/// Immediate-mode policy that throws out of schedule(): the forcing function
/// for the graceful-degradation path. Registered once per process; the
/// procs backend inherits it across fork().
class ThrowingPolicy final : public e2c::sched::Policy {
 public:
  [[nodiscard]] std::string name() const override { return "ThrowOnSchedule"; }
  [[nodiscard]] e2c::sched::PolicyMode mode() const override {
    return e2c::sched::PolicyMode::kImmediate;
  }
  void schedule_into(e2c::sched::SchedulingContext&,
                     std::vector<e2c::sched::Assignment>&) override {
    throw std::runtime_error("ThrowOnSchedule: forced cell failure");
  }
};

void register_throwing_policy() {
  e2c::sched::PolicyRegistry::instance().register_policy(
      "ThrowOnSchedule", [] { return std::make_unique<ThrowingPolicy>(); });
}

TEST(ExperimentPlane, ThrowingCellDegradesGracefullyAndMatchesProcs) {
  // A cell that throws on the threads backend used to abort the whole sweep
  // out of future::get(); now it must be recorded as a failed cell with
  // empty runs while every other cell completes — the same degradation the
  // procs backend has always had (there the worker dies and retries
  // exhaust). Both backends must emit identical CSV bytes for the mix.
  register_throwing_policy();
  exp::ExperimentSpec spec = plane_spec();
  spec.policies = {"MECT", "ThrowOnSchedule"};
  spec.intensities = {Intensity::kLow};
  spec.replications = 2;

  exp::RunOptions threads_options;
  threads_options.workers = 2;
  const auto threads_result = exp::run_experiment(spec, threads_options);
  ASSERT_EQ(threads_result.cells.size(), 2u);
  const auto& ok_cell = threads_result.cell("MECT", Intensity::kLow);
  const auto& bad_cell = threads_result.cell("ThrowOnSchedule", Intensity::kLow);
  EXPECT_EQ(ok_cell.status, exp::CellStatus::kOk);
  EXPECT_EQ(ok_cell.runs.size(), 2u);
  EXPECT_EQ(bad_cell.status, exp::CellStatus::kFailed);
  EXPECT_TRUE(bad_cell.runs.empty());
  EXPECT_EQ(threads_result.health.completed_cells, 1u);
  EXPECT_EQ(threads_result.health.failed_cells, 1u);

  exp::RunOptions procs_options;
  procs_options.workers = 2;
  procs_options.backend = exp::Backend::kProcs;
  procs_options.max_retries = 1;
  procs_options.backoff_base = 0.01;
  const auto procs_result = exp::run_experiment(spec, procs_options);
  EXPECT_EQ(csv_text(threads_result), csv_text(procs_result));
  EXPECT_EQ(procs_result.health.failed_cells, 1u);
}

TEST(ExperimentPlane, ProgressFiresOncePerCellInResultOrder) {
  for (const exp::DataPlane plane :
       {exp::DataPlane::kShared, exp::DataPlane::kPerRun}) {
    std::vector<std::pair<std::string, Intensity>> seen;
    std::size_t reported_total = 0;
    const auto result = exp::run_experiment(
        plane_spec(), 2, plane,
        [&](std::size_t done, std::size_t total, const exp::CellResult& cell) {
          EXPECT_EQ(done, seen.size() + 1);
          reported_total = total;
          seen.emplace_back(cell.policy, cell.intensity);
        });
    ASSERT_EQ(seen.size(), result.cells.size());
    EXPECT_EQ(reported_total, result.cells.size());
    for (std::size_t i = 0; i < seen.size(); ++i) {
      EXPECT_EQ(seen[i].first, result.cells[i].policy);
      EXPECT_EQ(seen[i].second, result.cells[i].intensity);
    }
  }
}

}  // namespace
