// Tests for the experiment data plane (exp::DataPlane): the shared
// immutable-workload plane must be indistinguishable, byte for byte, from
// the per-run plane it replaced, across worker counts, and the progress
// callback must fire once per cell in result order.
#include <cstddef>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exp/experiment.hpp"
#include "exp/scenario.hpp"
#include "util/csv.hpp"

namespace {

namespace exp = e2c::exp;
using e2c::workload::Intensity;

exp::ExperimentSpec plane_spec() {
  exp::ExperimentSpec spec;
  spec.system = exp::heterogeneous_classroom();
  // One immediate and one batch policy: the shared plane reuses one
  // Simulation per cell, and the two modes bake different queue behavior
  // into the machines at construction.
  spec.policies = {"MECT", "MM"};
  spec.intensities = {Intensity::kLow, Intensity::kHigh};
  spec.replications = 3;
  spec.duration = 60.0;
  spec.base_seed = 7;
  return spec;
}

exp::ExperimentSpec faulty_spec() {
  exp::ExperimentSpec spec = plane_spec();
  spec.system.faults.enabled = true;
  spec.system.faults.mtbf = 30.0;
  spec.system.faults.mttr = 5.0;
  spec.system.faults.seed = 99;
  return spec;
}

std::string csv_text(const exp::ExperimentResult& result) {
  return e2c::util::to_csv(exp::result_csv(result));
}

TEST(ExperimentPlane, SharedMatchesPerRunByteForByte) {
  const auto shared =
      exp::run_experiment(plane_spec(), 1, exp::DataPlane::kShared);
  const auto per_run =
      exp::run_experiment(plane_spec(), 1, exp::DataPlane::kPerRun);
  EXPECT_EQ(csv_text(shared), csv_text(per_run));
}

TEST(ExperimentPlane, SharedMatchesPerRunUnderFaultInjection) {
  // reset() must rebuild the failure schedule exactly (injector recreated,
  // machines back online) or replications after the first diverge.
  const auto shared =
      exp::run_experiment(faulty_spec(), 1, exp::DataPlane::kShared);
  const auto per_run =
      exp::run_experiment(faulty_spec(), 1, exp::DataPlane::kPerRun);
  EXPECT_EQ(csv_text(shared), csv_text(per_run));
}

TEST(ExperimentPlane, WorkerCountDoesNotChangeResultCsvBytes) {
  // Guards the sharing refactor against aggregation-order and RNG-stream
  // bugs: 1 worker vs 8 workers must emit the identical CSV bytes.
  const auto serial = exp::run_experiment(plane_spec(), 1);
  const auto parallel = exp::run_experiment(plane_spec(), 8);
  EXPECT_EQ(csv_text(serial), csv_text(parallel));
}

TEST(ExperimentPlane, ProgressFiresOncePerCellInResultOrder) {
  for (const exp::DataPlane plane :
       {exp::DataPlane::kShared, exp::DataPlane::kPerRun}) {
    std::vector<std::pair<std::string, Intensity>> seen;
    std::size_t reported_total = 0;
    const auto result = exp::run_experiment(
        plane_spec(), 2, plane,
        [&](std::size_t done, std::size_t total, const exp::CellResult& cell) {
          EXPECT_EQ(done, seen.size() + 1);
          reported_total = total;
          seen.emplace_back(cell.policy, cell.intensity);
        });
    ASSERT_EQ(seen.size(), result.cells.size());
    EXPECT_EQ(reported_total, result.cells.size());
    for (std::size_t i = 0; i < seen.size(); ++i) {
      EXPECT_EQ(seen[i].first, result.cells[i].policy);
      EXPECT_EQ(seen[i].second, result.cells[i].intensity);
    }
  }
}

}  // namespace
