// Unit + statistical tests for the deterministic RNG (util/rng.hpp).
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace {

using e2c::util::Rng;

TEST(Rng, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDifferentStreams) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 32; ++i) {
    if (a.next_u64() != b.next_u64()) ++differing;
  }
  EXPECT_GT(differing, 28);
}

TEST(Rng, ZeroSeedIsValid) {
  Rng rng(0);
  // Must not get stuck (the all-zero xoshiro state would emit only zeros).
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 16; ++i) seen.insert(rng.next_u64());
  EXPECT_GT(seen.size(), 10u);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double value = rng.next_double();
    EXPECT_GE(value, 0.0);
    EXPECT_LT(value, 1.0);
  }
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double value = rng.uniform(3.0, 5.0);
    EXPECT_GE(value, 3.0);
    EXPECT_LT(value, 5.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto value = rng.uniform_int(2, 5);
    EXPECT_GE(value, 2);
    EXPECT_LE(value, 5);
    saw_lo |= value == 2;
    saw_hi |= value == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng(13);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(4, 4), 4);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(17);
  const double lambda = 2.0;
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(lambda);
  EXPECT_NEAR(sum / n, 1.0 / lambda, 0.02);
}

TEST(Rng, ExponentialAlwaysPositive) {
  Rng rng(19);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.exponential(0.5), 0.0);
}

TEST(Rng, NormalMeanAndStddev) {
  Rng rng(23);
  const int n = 50000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double value = rng.normal(10.0, 2.0);
    sum += value;
    sum_sq += value * value;
  }
  const double mean = sum / n;
  const double variance = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(variance), 2.0, 0.05);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(29);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, WeightedIndexProportions) {
  Rng rng(31);
  const std::vector<double> weights{1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_EQ(counts[2], 0);  // zero weight never picked
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.02);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.02);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.6, 0.02);
}

TEST(Rng, WeightedIndexAllZeroFallsBackToUniform) {
  Rng rng(37);
  const std::vector<double> weights{0.0, 0.0, 0.0};
  std::set<std::size_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.weighted_index(weights));
  EXPECT_EQ(seen.size(), 3u);
}

TEST(Rng, SplitIsDeterministic) {
  Rng a(41);
  Rng b(41);
  Rng child_a = a.split();
  Rng child_b = b.split();
  for (int i = 0; i < 50; ++i) EXPECT_EQ(child_a.next_u64(), child_b.next_u64());
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(43);
  Rng child = parent.split();
  int differing = 0;
  for (int i = 0; i < 32; ++i) {
    if (parent.next_u64() != child.next_u64()) ++differing;
  }
  EXPECT_GT(differing, 28);
}

TEST(Rng, ShufflePermutes) {
  Rng rng(47);
  std::vector<int> values{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = values;
  rng.shuffle(values);
  std::vector<int> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, original);  // same multiset
}

TEST(Rng, Splitmix64KnownValue) {
  // Reference value from the SplitMix64 reference implementation.
  std::uint64_t state = 0;
  const std::uint64_t first = e2c::util::splitmix64(state);
  EXPECT_EQ(first, 0xE220A8397B1DCDAFULL);
}

}  // namespace
